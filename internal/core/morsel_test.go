package core

import (
	"math/rand"
	"os"
	"strconv"
	"testing"
	"testing/quick"

	"staircase/internal/axis"
)

// quickMax returns the testing/quick iteration count: the default in
// ordinary runs, or STAIRCASE_QUICK_MAX when set (the nightly CI job
// cranks the property suites up through this knob).
func quickMax(def int) int {
	if s := os.Getenv("STAIRCASE_QUICK_MAX"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// drainMorsel drains a morsel cursor with the given batch capacity
// and a constant seek hint, closing it afterwards.
func drainMorsel(t *testing.T, m *MorselCursor, batch int, seek int32) []int32 {
	t.Helper()
	defer m.Close()
	var out []int32
	for {
		b, err := m.Next(make([]int32, 0, batch), seek)
		if err != nil {
			t.Fatalf("morsel Next: %v", err)
		}
		if b == nil {
			return out
		}
		out = append(out, b...)
	}
}

// TestMorselEqualsSerialQuick is the core morsel≡serial differential:
// for random documents, contexts, axes, variants, worker counts and
// batch sizes, the morsel cursor's concatenated output must be
// byte-identical to the batch kernel's.
func TestMorselEqualsSerialQuick(t *testing.T) {
	f := func(seed int64, ctxBits uint16, axisPick, variantPick, workerPick, batchPick uint8) bool {
		d, context := docFromSeed(seed, ctxBits)
		a := allAxes[axisPick%4]
		o := &Options{Variant: []Variant{NoSkip, Skip, SkipEstimate}[variantPick%3]}
		workers := 1 + int(workerPick%8)
		batch := 1 + int(batchPick%64)
		want, err := Join(d, a, context, o)
		if err != nil {
			return false
		}
		m, err := NewMorselJoinCursor(d, a, context, nil, false, workers, o)
		if err != nil {
			return false
		}
		got := drainMorsel(t, m, batch, 0)
		return eq32(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickMax(80)}); err != nil {
		t.Fatal(err)
	}
}

// TestMorselListEqualsSerialQuick is the node-list (index fragment)
// counterpart: morsel output over a pre-sorted list must equal
// JoinNodeList.
func TestMorselListEqualsSerialQuick(t *testing.T) {
	f := func(seed int64, ctxBits uint16, axisPick, variantPick, workerPick uint8) bool {
		d, context := docFromSeed(seed, ctxBits)
		rng := rand.New(rand.NewSource(seed*31 + int64(ctxBits)))
		list := randomContext(rng, d, 1+rng.Intn(d.Size()))
		a := allAxes[axisPick%4]
		o := &Options{Variant: []Variant{NoSkip, Skip, SkipEstimate}[variantPick%3]}
		workers := 1 + int(workerPick%8)
		want, err := JoinNodeList(d, a, list, context, o)
		if err != nil {
			return false
		}
		m, err := NewMorselJoinCursor(d, a, context, list, true, workers, o)
		if err != nil {
			return false
		}
		got := drainMorsel(t, m, 32, 0)
		return eq32(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickMax(80)}); err != nil {
		t.Fatal(err)
	}
}

// TestMorselLargeDocAllAxes exercises the multi-task paths (the range
// splitter only cuts spans above minMorselSpan) on a document large
// enough that every axis produces several morsels.
func TestMorselLargeDocAllAxes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := randomDoc(rng, 8000)
	mid := int32(d.Size() / 2)
	contexts := map[string][]int32{
		"root":      {0},
		"mid":       {mid},
		"scattered": randomContext(rng, d, 40),
	}
	for name, context := range contexts {
		for _, a := range allAxes {
			want, err := Join(d, a, context, nil)
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewMorselJoinCursor(d, a, context, nil, false, 4, nil)
			if err != nil {
				t.Fatal(err)
			}
			tasks := m.Tasks()
			got := drainMorsel(t, m, 256, 0)
			if !eq32(got, want) {
				t.Fatalf("%s/%v: morsel (%d tasks) diverges from serial: got %d nodes, want %d",
					name, a, tasks, len(got), len(want))
			}
		}
	}
	// The single-owner descendant scan from the root must actually
	// fan out: that is the //node() streaming case the morsel path
	// exists for.
	m, err := NewMorselJoinCursor(d, axis.Descendant, []int32{0}, nil, false, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tasks() < 2 || m.Workers() < 2 {
		t.Fatalf("root descendant scan did not parallelise: tasks=%d workers=%d", m.Tasks(), m.Workers())
	}
	drainMorsel(t, m, 256, 0)
}

// TestMorselSeekSkipsPrefix: a constant seek hint must omit exactly
// the result nodes below the seek target (the cursor contract allows
// omitting them; the morsel cursor does so deterministically via
// binary search per task).
func TestMorselSeekSkipsPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := randomDoc(rng, 4000)
	context := randomContext(rng, d, 20)
	for _, a := range allAxes {
		want, err := Join(d, a, context, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 {
			continue
		}
		seek := want[len(want)/2]
		var tail []int32
		for _, v := range want {
			if v >= seek {
				tail = append(tail, v)
			}
		}
		m, err := NewMorselJoinCursor(d, a, context, nil, false, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := drainMorsel(t, m, 64, seek)
		if !eq32(got, tail) {
			t.Fatalf("%v: seek %d: got %d nodes, want %d", a, seek, len(got), len(tail))
		}
	}
}

// TestMorselEarlyClose: closing after a partial drain must wake the
// parked workers (they block on the bounded lookahead window) and
// join them without deadlock; Next afterwards reports exhaustion.
func TestMorselEarlyClose(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := randomDoc(rng, 8000)
	m, err := NewMorselJoinCursor(d, axis.Descendant, []int32{0}, nil, false, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Next(make([]int32, 0, 8), 0)
	if err != nil || len(b) == 0 {
		t.Fatalf("first batch: %v nodes, err %v", len(b), err)
	}
	m.Close()
	m.Close() // idempotent
	if b, err := m.Next(make([]int32, 0, 8), 0); err != nil || b != nil {
		t.Fatalf("Next after Close: %v, %v", b, err)
	}
}

// TestMorselStats: the driver-side counters (context size, workers)
// and the folded per-task result count must match the serial join.
func TestMorselStats(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	d := randomDoc(rng, 8000)
	context := randomContext(rng, d, 50)
	want, err := Join(d, axis.Descendant, context, nil)
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	m, err := NewMorselJoinCursor(d, axis.Descendant, context, nil, false, 4, &Options{Variant: SkipEstimate, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	got := drainMorsel(t, m, 256, 0)
	if !eq32(got, want) {
		t.Fatalf("morsel diverges: %d vs %d nodes", len(got), len(want))
	}
	if st.ContextSize != int64(len(context)) {
		t.Fatalf("ContextSize = %d, want %d", st.ContextSize, len(context))
	}
	if st.Result != int64(len(want)) {
		t.Fatalf("Result = %d, want %d", st.Result, len(want))
	}
	if st.Workers < 2 {
		t.Fatalf("Workers = %d, want >= 2", st.Workers)
	}
}

// TestMorselEmptyContext: no tasks, immediate exhaustion, Close is a
// no-op.
func TestMorselEmptyContext(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d := randomDoc(rng, 100)
	m, err := NewMorselJoinCursor(d, axis.Ancestor, nil, nil, false, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := drainMorsel(t, m, 8, 0); got != nil {
		t.Fatalf("empty context produced %v", got)
	}
}

var _ JoinCursor = (*MorselCursor)(nil)
