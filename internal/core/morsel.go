package core

// Morsel-driven staircase join: the partition-parallel execution of
// parallel.go recast as a JoinCursor, so a single streaming pipeline
// can use every core without giving up bounded batches or document
// order.
//
// The batch Parallel*Join splits the pruned staircase into one chunk
// per worker and concatenates fully materialised results. That shape
// is wrong for streaming twice over: the caller must wait for the
// slowest worker before seeing byte one, and a LIMIT consumer pays
// for the entire document. The morsel cursor instead cuts the work
// into many small tasks ("morsels" in the HyPer sense), each a
// self-contained sub-join over a disjoint ascending pre range. A
// fixed pool of workers pulls task indexes from a shared counter;
// completed task outputs park in a sequence-numbered slot table; Next
// drains slots strictly in task order, so the emitted stream is the
// serial cursor's stream byte for byte. A bounded lookahead window
// (workers may run at most lookahead tasks beyond the emission
// frontier) keeps memory proportional to the worker count rather
// than the document: a slow consumer parks the workers instead of
// buffering the whole answer.
//
// Correctness rests on the same partitioning invariant as
// parallel.go: after pruning, staircase partitions scan pairwise
// disjoint ascending pre ranges, so per-task outputs concatenate —
// already duplicate-free and in document order — into the serial
// answer. Task construction mirrors the Parallel*Join delimiters
// exactly (ScanLimit for descendant chunks, ScanStart for ancestor
// chunks, sliced node lists for the fragment kernels, keep-filtered
// range scans for the single-region axes).
//
// Close is mandatory: workers block on the lookahead window when the
// consumer stalls, so abandoning a cursor without Close would leak
// the pool. Close wakes and joins every worker before returning,
// which also makes the final Stats merge race-free.

import (
	"sort"
	"sync"

	"staircase/internal/axis"
	"staircase/internal/doc"
	"staircase/internal/fault"
)

// morselsPerWorker is the task-count multiplier: more tasks than
// workers smooths skew (a wide staircase step stalls one worker, not
// the pool) at the cost of slightly more slot-table traffic.
const morselsPerWorker = 4

// minMorselSpan is the smallest pre-range span worth a task of its
// own; below it the fan-out overhead outweighs the scan.
const minMorselSpan = 256

// morselTask computes one sub-join. The per-task Stats is folded into
// the cursor's Stats under the cursor lock when the task completes.
type morselTask func(st *Stats) []int32

// MorselCursor is an order-restoring parallel JoinCursor. It is
// created by NewMorselJoinCursor; Next/Close follow the JoinCursor
// contract with one addition: Close must be called exactly once when
// the consumer is done (early or not), or the worker pool leaks.
type MorselCursor struct {
	mu   sync.Mutex
	cond *sync.Cond

	tasks   []morselTask
	results [][]int32
	ready   []bool
	claim   int // next task index a worker may take
	emit    int // next task index Next will drain
	off     int // emitted prefix of results[emit]

	lookahead int
	quit      bool
	err       error // sticky: first task panic, returned by Next
	wg        sync.WaitGroup

	stats *Stats
	// acc parks per-task counters until the consumer folds them into
	// stats. Workers must never write stats directly: the consumer
	// goroutine reads it lock-free (the JoinCursor contract), so the
	// fold happens on the consumer side — at exhaustion or Close.
	acc      Stats
	merged   bool
	nworkers int
}

// NewMorselJoinCursor returns a morsel-driven parallel staircase join
// over one of the four partitioning axes. The context must be fully
// materialised (task construction needs the whole pruned staircase
// up front — this is the price of parallelism, and the plan layer
// only chooses morsel execution when it holds the context anyway).
// With useList set the join runs against the pre-sorted node list
// (fragment) instead of the whole document, like JoinNodeList.
//
// The result stream is byte-identical to the serial cursor / batch
// kernels. opts follows Join: ScanStart/ScanLimit are owned by the
// task builder and must be zero.
func NewMorselJoinCursor(d *doc.Document, a axis.Axis, context, list []int32, useList bool, workers int, opts *Options) (*MorselCursor, error) {
	o := opts.orDefault()
	st := o.Stats
	st.addContext(int64(len(context)))
	if workers < 1 {
		workers = 1
	}
	var tasks []morselTask
	switch a {
	case axis.Descendant:
		tasks = morselDescTasks(d, context, list, useList, workers, o)
	case axis.Ancestor:
		tasks = morselAncTasks(d, context, list, useList, workers, o)
	case axis.Following:
		tasks = morselFolTasks(d, context, list, useList, workers, o)
	case axis.Preceding:
		tasks = morselPrecTasks(d, context, list, useList, workers, o)
	default:
		return nil, errNonPartitioning(a)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if st != nil && workers > 0 {
		st.Workers = int64(workers)
	}
	m := &MorselCursor{
		tasks:     tasks,
		results:   make([][]int32, len(tasks)),
		ready:     make([]bool, len(tasks)),
		lookahead: 2 * workers,
		stats:     st,
		nworkers:  workers,
	}
	m.cond = sync.NewCond(&m.mu)
	m.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go m.worker()
	}
	return m, nil
}

// Tasks returns the number of morsels the join was cut into (0 when
// the context reduced to nothing). For EXPLAIN.
func (m *MorselCursor) Tasks() int { return len(m.tasks) }

// Workers returns the worker-pool size after clamping to the task
// count. For EXPLAIN.
func (m *MorselCursor) Workers() int { return m.nworkers }

// worker claims task indexes within the lookahead window, runs them,
// and publishes results into the slot table.
func (m *MorselCursor) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for !m.quit && m.claim < len(m.tasks) && m.claim >= m.emit+m.lookahead {
			m.cond.Wait()
		}
		if m.quit || m.claim >= len(m.tasks) {
			m.mu.Unlock()
			return
		}
		t := m.claim
		m.claim++
		m.mu.Unlock()

		out, ts, err := m.runTask(t)

		m.mu.Lock()
		if err != nil {
			// A panicking task poisons the cursor: record the first
			// error, stop the pool, and wake the consumer so Next can
			// surface it instead of blocking on a slot that will never
			// fill.
			if m.err == nil {
				m.err = err
			}
			m.quit = true
			m.cond.Broadcast()
			m.mu.Unlock()
			return
		}
		m.results[t] = out
		m.ready[t] = true
		mergeWorkerStats(&m.acc, []Stats{ts})
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}

// runTask executes one morsel with panic containment: a panic in a
// join kernel becomes an error on this cursor rather than a crashed
// process (the worker runs on a raw goroutine, so an uncaught panic
// here would be fatal to the whole server).
func (m *MorselCursor) runTask(t int) (out []int32, ts Stats, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fault.NewPanicError(v)
		}
	}()
	out = m.tasks[t](&ts)
	return out, ts, nil
}

// Next implements JoinCursor: it fills dst (which must have spare
// capacity) with the next run of result nodes in document order,
// blocking until the task at the emission frontier completes. A nil
// return means exhaustion. seekPre skips result nodes below the seek
// target by binary search inside each completed task output.
func (m *MorselCursor) Next(dst []int32, seekPre int32) ([]int32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.err != nil {
			return nil, m.err
		}
		if m.quit || m.emit >= len(m.tasks) {
			if m.emit >= len(m.tasks) {
				// All tasks published, so every worker write to acc has
				// happened-before this point; fold on the consumer side.
				m.foldStats()
			}
			if len(dst) > 0 {
				return dst, nil
			}
			return nil, nil
		}
		for !m.ready[m.emit] && !m.quit {
			m.cond.Wait()
		}
		if m.err != nil {
			return nil, m.err
		}
		if m.quit {
			if len(dst) > 0 {
				return dst, nil
			}
			return nil, nil
		}
		r := m.results[m.emit]
		if seekPre > 0 && m.off < len(r) && r[m.off] < seekPre {
			m.off += sort.Search(len(r)-m.off, func(i int) bool { return r[m.off+i] >= seekPre })
		}
		n := copy(dst[len(dst):cap(dst)], r[m.off:])
		dst = dst[:len(dst)+n]
		m.off += n
		if m.off >= len(r) {
			m.results[m.emit] = nil // drop the slot; the window may advance
			m.emit++
			m.off = 0
			m.cond.Broadcast()
			if len(dst) < cap(dst) {
				continue
			}
		}
		return dst, nil
	}
}

// Close wakes and joins the worker pool. It must be called once the
// consumer is done with the cursor — including early termination —
// and is idempotent. After Close, Next reports exhaustion.
func (m *MorselCursor) Close() {
	m.mu.Lock()
	if m.quit {
		m.mu.Unlock()
		return
	}
	m.quit = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
	m.mu.Lock()
	m.foldStats()
	m.mu.Unlock()
}

// foldStats folds the parked worker counters into the shared Stats
// exactly once. Callers must hold m.mu and run on the consumer
// goroutine: the shared Stats is read lock-free by the pipeline, so
// only the consumer may write it.
func (m *MorselCursor) foldStats() {
	if m.merged || m.stats == nil {
		return
	}
	m.merged = true
	mergeWorkerStats(m.stats, []Stats{m.acc})
}

// --- task builders ---------------------------------------------------------

// morselTaskCount sizes the task list for a pre-range of the given
// span: enough tasks to keep the pool busy, but never more than one
// per minMorselSpan nodes.
func morselTaskCount(span int64, workers int) int {
	n := workers * morselsPerWorker
	if max := span / minMorselSpan; int64(n) > max {
		n = int(max)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// morselChunkOpts copies the driver options for a chunk task, exactly
// like the Parallel*Join workers: the chunk context is already
// pruned, and scan delimiters are owned by the task builder.
func morselChunkOpts(o *Options, st *Stats) Options {
	wo := *o
	wo.AssumePruned = true
	wo.PruneInline = false
	wo.ScanStart = 0
	wo.ScanLimit = 0
	wo.Stats = st
	return wo
}

// morselRangeTasks cuts the half-open index range [lo, hi) into
// near-equal contiguous tasks; each task appends the indexes passing
// keep, mapped through emit (identity for document pre ranges, list
// lookup for fragment scans).
func morselRangeTasks(lo, hi int64, workers int, scan func(from, to int64, st *Stats) []int32) []morselTask {
	if hi <= lo {
		return nil
	}
	n := morselTaskCount(hi-lo, workers)
	span := hi - lo
	tasks := make([]morselTask, 0, n)
	for w := 0; w < n; w++ {
		from := lo + span*int64(w)/int64(n)
		to := lo + span*int64(w+1)/int64(n)
		if to <= from {
			continue
		}
		tasks = append(tasks, func(st *Stats) []int32 {
			return scan(from, to, st)
		})
	}
	return tasks
}

// morselDescTasks builds descendant-axis tasks. Multi-step staircases
// reuse PartitionStaircase with the ParallelDescendantJoin ScanLimit
// delimiters; a single-step staircase (one owner — e.g. //tag from
// the root) would yield one chunk and serialise, so it is cut into
// range scans over the owner's subtree instead: every node in
// (c, c+size(c)] is a descendant, no post comparison needed.
func morselDescTasks(d *doc.Document, context, list []int32, useList bool, workers int, o *Options) []morselTask {
	pruned := context
	if !o.AssumePruned {
		pruned = PruneDescendant(d, context)
	}
	if len(pruned) == 0 {
		return nil
	}
	kind := d.KindSlice()
	if len(pruned) == 1 {
		c := pruned[0]
		o.Stats.addPruned(1)
		sub := int64(c) + 1 + int64(d.SubtreeSize(c))
		if useList {
			lb := int64(searchList(list, c+1))
			ub := int64(searchList(list, int32(sub)))
			return morselRangeTasks(lb, ub, workers, func(from, to int64, st *Stats) []int32 {
				return morselFilterList(list, kind, from, to, o, st, nil)
			})
		}
		return morselRangeTasks(int64(c)+1, sub, workers, func(from, to int64, st *Stats) []int32 {
			return morselFilterRange(kind, from, to, o, st, nil)
		})
	}
	chunks := PartitionStaircase(pruned, workers*morselsPerWorker, pruned[0], int32(d.Size()))
	tasks := make([]morselTask, 0, len(chunks))
	for _, ch := range chunks {
		tasks = append(tasks, func(st *Stats) []int32 {
			wo := morselChunkOpts(o, st)
			if ch.Hi < len(pruned) {
				limit := pruned[ch.Hi] - 1
				if limit <= 0 {
					// Nothing lies between this chunk's owners and the
					// boundary (ScanLimit 0 would mean "unbounded").
					st.PrunedSize += int64(ch.Hi - ch.Lo)
					return nil
				}
				wo.ScanLimit = limit
			}
			if useList {
				lb := searchList(list, pruned[ch.Lo]+1)
				ub := len(list)
				if ch.Hi < len(pruned) {
					ub = searchList(list, pruned[ch.Hi])
				}
				return DescendantJoinNodeList(d, list[lb:ub], pruned[ch.Lo:ch.Hi], &wo)
			}
			return DescendantJoin(d, pruned[ch.Lo:ch.Hi], &wo)
		})
	}
	return tasks
}

// morselAncTasks builds ancestor-axis tasks: PartitionStaircase with
// the ParallelAncestorJoin ScanStart delimiters, or — for a single
// owner — keep-filtered range scans of [0, c) against its post rank.
func morselAncTasks(d *doc.Document, context, list []int32, useList bool, workers int, o *Options) []morselTask {
	pruned := context
	if !o.AssumePruned {
		pruned = PruneAncestor(d, context)
	}
	if len(pruned) == 0 {
		return nil
	}
	post := d.PostSlice()
	kind := d.KindSlice()
	if len(pruned) == 1 {
		c := pruned[0]
		o.Stats.addPruned(1)
		bound := post[c]
		keep := func(v int32) bool { return post[v] > bound }
		if useList {
			ub := int64(searchList(list, c))
			return morselRangeTasks(0, ub, workers, func(from, to int64, st *Stats) []int32 {
				return morselFilterList(list, kind, from, to, o, st, keep)
			})
		}
		return morselRangeTasks(0, int64(c), workers, func(from, to int64, st *Stats) []int32 {
			return morselFilterRange(kind, from, to, o, st, keep)
		})
	}
	chunks := PartitionStaircase(pruned, workers*morselsPerWorker, 0, pruned[len(pruned)-1])
	tasks := make([]morselTask, 0, len(chunks))
	for _, ch := range chunks {
		tasks = append(tasks, func(st *Stats) []int32 {
			wo := morselChunkOpts(o, st)
			if ch.Lo > 0 {
				wo.ScanStart = pruned[ch.Lo-1] + 1
			}
			if useList {
				lb := 0
				if ch.Lo > 0 {
					lb = searchList(list, pruned[ch.Lo-1]+1)
				}
				ub := searchList(list, pruned[ch.Hi-1])
				return AncestorJoinNodeList(d, list[lb:ub], pruned[ch.Lo:ch.Hi], &wo)
			}
			return AncestorJoin(d, pruned[ch.Lo:ch.Hi], &wo)
		})
	}
	return tasks
}

// morselFolTasks builds following-axis tasks: after pruning the axis
// is one region — everything beyond the subtree of the minimum-post
// context node — sliced into keep-filtered range scans.
func morselFolTasks(d *doc.Document, context, list []int32, useList bool, workers int, o *Options) []morselTask {
	c, ok := ReduceFollowing(d, context)
	if !ok {
		return nil
	}
	o.Stats.addPruned(1)
	kind := d.KindSlice()
	start := c + 1 + d.SubtreeSize(c)
	if useList {
		from := int64(searchList(list, start))
		return morselRangeTasks(from, int64(len(list)), workers, func(from, to int64, st *Stats) []int32 {
			return morselFilterList(list, kind, from, to, o, st, nil)
		})
	}
	return morselRangeTasks(int64(start), int64(d.Size()), workers, func(from, to int64, st *Stats) []int32 {
		return morselFilterRange(kind, from, to, o, st, nil)
	})
}

// morselPrecTasks builds preceding-axis tasks: one region — the nodes
// before the maximum-pre context node minus its ancestors — sliced
// into keep-filtered range scans against its post rank.
func morselPrecTasks(d *doc.Document, context, list []int32, useList bool, workers int, o *Options) []morselTask {
	c, ok := ReducePreceding(d, context)
	if !ok {
		return nil
	}
	o.Stats.addPruned(1)
	post := d.PostSlice()
	kind := d.KindSlice()
	bound := post[c]
	keep := func(v int32) bool { return post[v] < bound }
	if useList {
		ub := int64(searchList(list, c))
		return morselRangeTasks(0, ub, workers, func(from, to int64, st *Stats) []int32 {
			return morselFilterList(list, kind, from, to, o, st, keep)
		})
	}
	return morselRangeTasks(0, int64(c), workers, func(from, to int64, st *Stats) []int32 {
		return morselFilterRange(kind, from, to, o, st, keep)
	})
}

// morselFilterRange scans document pre ranks [from, to), applying the
// attribute filter and an optional extra predicate.
func morselFilterRange(kind []doc.Kind, from, to int64, o *Options, st *Stats, keep func(int32) bool) []int32 {
	out := make([]int32, 0, to-from)
	for v := int32(from); v < int32(to); v++ {
		if keep != nil && !keep(v) {
			continue
		}
		if o.KeepAttributes || kind[v] != doc.Attr {
			out = append(out, v)
		}
	}
	st.Scanned += to - from
	if keep != nil {
		st.Compared += to - from
	} else {
		st.Copied += to - from
	}
	st.Result += int64(len(out))
	return out
}

// morselFilterList is morselFilterRange over node-list indexes.
func morselFilterList(list []int32, kind []doc.Kind, from, to int64, o *Options, st *Stats, keep func(int32) bool) []int32 {
	out := make([]int32, 0, to-from)
	for _, v := range list[from:to] {
		if keep != nil && !keep(v) {
			continue
		}
		if o.KeepAttributes || kind[v] != doc.Attr {
			out = append(out, v)
		}
	}
	st.Scanned += to - from
	if keep != nil {
		st.Compared += to - from
	} else {
		st.Copied += to - from
	}
	st.Result += int64(len(out))
	return out
}
