package core

import (
	"math/rand"
	"sort"
	"testing"

	"staircase/internal/axis"
	"staircase/internal/doc"
)

// figure1 shreds the running example of the paper (Figures 1, 2, 4, 8):
// a(b(c), d, e(f(g,h), i(j))).
func figure1(t testing.TB) *doc.Document {
	t.Helper()
	d, err := doc.ShredString(`<a><b><c/></b><d/><e><f><g/><h/></f><i><j/></i></e></a>`)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func pres(names string) []int32 {
	// figure1 tags a..j map to pres 0..9
	out := make([]int32, 0, len(names))
	for _, r := range names {
		out = append(out, int32(r-'a'))
	}
	return out
}

func tagsOf(d *doc.Document, ps []int32) string {
	out := make([]byte, len(ps))
	for i, p := range ps {
		out[i] = byte('a' + p)
	}
	return string(out)
}

func eq32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// specJoin is the specification result: all nodes on axis a of any
// context node, document order, duplicate free, attribute filtering on.
func specJoin(d *doc.Document, a axis.Axis, context []int32) []int32 {
	var out []int32
	for v := int32(0); int(v) < d.Size(); v++ {
		for _, c := range context {
			if axis.In(d, a, c, v) {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

func allVariants() []*Options {
	return []*Options{
		{Variant: NoSkip},
		{Variant: Skip},
		{Variant: SkipEstimate},
		{Variant: NoSkip, PruneInline: true},
		{Variant: Skip, PruneInline: true},
		{Variant: SkipEstimate, PruneInline: true},
		nil, // default
	}
}

func TestPruneDescendantFigure6Style(t *testing.T) {
	d := figure1(t)
	// Context (a, b, f, g): b, g are descendants of earlier nodes,
	// f is a descendant of a => staircase (a) alone.
	got := PruneDescendant(d, pres("abfg"))
	if tagsOf(d, got) != "a" {
		t.Fatalf("prune = %q, want %q", tagsOf(d, got), "a")
	}
	// Context (b, d, f): pairwise preceding/following => untouched.
	got = PruneDescendant(d, pres("bdf"))
	if tagsOf(d, got) != "bdf" {
		t.Fatalf("prune = %q, want %q", tagsOf(d, got), "bdf")
	}
	// Duplicates are removed.
	got = PruneDescendant(d, []int32{1, 1, 3})
	if tagsOf(d, got) != "bd" {
		t.Fatalf("prune dup = %q, want %q", tagsOf(d, got), "bd")
	}
}

func TestPruneAncestorFigure4(t *testing.T) {
	d := figure1(t)
	// Paper Figure 4: context (d, e, f, h, i, j); e, f, i lie on paths
	// from other context nodes to the root and are pruned.
	got := PruneAncestor(d, pres("defhij"))
	if tagsOf(d, got) != "dhj" {
		t.Fatalf("prune = %q, want %q", tagsOf(d, got), "dhj")
	}
	// Pruned staircases have strictly increasing pre and post.
	if !IsStaircaseDesc(d, got) {
		t.Fatal("ancestor-pruned context is not a staircase")
	}
}

func TestFigure4AncestorOrSelfResult(t *testing.T) {
	d := figure1(t)
	context := pres("defhij")
	anc := AncestorJoin(d, context, nil)
	res := MergeOrSelf(anc, context)
	if tagsOf(d, res) != "adefhij" {
		t.Fatalf("ancestor-or-self = %q, want %q", tagsOf(d, res), "adefhij")
	}
}

func TestPaperSection21Example(t *testing.T) {
	// (c)/following/descendant = (f, g, h, i, j) — §2.1.
	d := figure1(t)
	foll := FollowingJoin(d, pres("c"), nil)
	if tagsOf(d, foll) != "defghij"[1:] { // following of c = e,f,g,h,i,j? verify below
		// Computed explicitly instead: see assertions following.
		_ = foll
	}
	// c has pre 2, post 0; following = everything with pre>2, post>0:
	// d,e,f,g,h,i,j.
	if tagsOf(d, foll) != "defghij" {
		t.Fatalf("c/following = %q, want %q", tagsOf(d, foll), "defghij")
	}
	desc := DescendantJoin(d, foll, nil)
	if tagsOf(d, desc) != "fghij" {
		t.Fatalf("c/following/descendant = %q, want %q", tagsOf(d, desc), "fghij")
	}
}

func TestJoinMatchesSpecOnFigure1AllContexts(t *testing.T) {
	d := figure1(t)
	// All 2^10-1 non-empty context subsets is 1023: cheap enough.
	for mask := 1; mask < 1024; mask++ {
		var context []int32
		for b := 0; b < 10; b++ {
			if mask&(1<<b) != 0 {
				context = append(context, int32(b))
			}
		}
		for _, a := range []axis.Axis{axis.Descendant, axis.Ancestor, axis.Following, axis.Preceding} {
			want := specJoin(d, a, context)
			for _, o := range allVariants() {
				got, err := Join(d, a, context, o)
				if err != nil {
					t.Fatal(err)
				}
				if !eq32(got, want) {
					t.Fatalf("mask %d axis %v opts %+v: got %v want %v", mask, a, o, got, want)
				}
			}
		}
	}
}

func TestJoinRejectsNonPartitioningAxis(t *testing.T) {
	d := figure1(t)
	if _, err := Join(d, axis.Child, []int32{0}, nil); err == nil {
		t.Fatal("expected error for child axis")
	}
}

func TestEmptyContext(t *testing.T) {
	d := figure1(t)
	for _, a := range []axis.Axis{axis.Descendant, axis.Ancestor, axis.Following, axis.Preceding} {
		got, err := Join(d, a, nil, nil)
		if err != nil || len(got) != 0 {
			t.Fatalf("axis %v: got %v, %v", a, got, err)
		}
	}
}

func TestReduceFollowingPreceding(t *testing.T) {
	d := figure1(t)
	// Context (b, f): min post is b (post 1) -> following boundary.
	c, ok := ReduceFollowing(d, pres("bf"))
	if !ok || tagsOf(d, []int32{c}) != "b" {
		t.Fatalf("ReduceFollowing = %v,%v", c, ok)
	}
	// Max pre is f.
	c, ok = ReducePreceding(d, pres("bf"))
	if !ok || tagsOf(d, []int32{c}) != "f" {
		t.Fatalf("ReducePreceding = %v,%v", c, ok)
	}
	if _, ok := ReduceFollowing(d, nil); ok {
		t.Fatal("empty context should not reduce")
	}
}

// randomDoc builds a random document with attributes for property tests.
func randomDoc(rng *rand.Rand, n int) *doc.Document {
	b := doc.NewBuilder()
	b.OpenElem("root")
	depth := 1
	tags := []string{"p", "q", "r", "s"}
	for i := 0; i < n; i++ {
		switch r := rng.Intn(10); {
		case r < 5:
			b.OpenElem(tags[rng.Intn(len(tags))])
			for a := rng.Intn(3); a > 0; a-- {
				b.Attr("k", "v")
			}
			depth++
		case r < 7 && depth > 1:
			b.CloseElem()
			depth--
		default:
			b.Text("t")
		}
	}
	for depth > 0 {
		b.CloseElem()
		depth--
	}
	d, err := b.Done()
	if err != nil {
		panic(err)
	}
	return d
}

// randomContext draws a sorted duplicate-free context over d.
func randomContext(rng *rand.Rand, d *doc.Document, k int) []int32 {
	seen := map[int32]bool{}
	for len(seen) < k && len(seen) < d.Size() {
		seen[int32(rng.Intn(d.Size()))] = true
	}
	out := make([]int32, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestPropJoinMatchesSpecOnRandomDocs(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 40; trial++ {
		d := randomDoc(rng, 200)
		context := randomContext(rng, d, 1+rng.Intn(20))
		for _, a := range []axis.Axis{axis.Descendant, axis.Ancestor, axis.Following, axis.Preceding} {
			want := specJoin(d, a, context)
			for _, o := range allVariants() {
				got, err := Join(d, a, context, o)
				if err != nil {
					t.Fatal(err)
				}
				if !eq32(got, want) {
					t.Fatalf("trial %d axis %v opts %+v:\n got %v\nwant %v\ncontext %v",
						trial, a, o, got, want, context)
				}
			}
		}
	}
}

func TestPropResultDocumentOrderNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 30; trial++ {
		d := randomDoc(rng, 300)
		context := randomContext(rng, d, 1+rng.Intn(30))
		for _, a := range []axis.Axis{axis.Descendant, axis.Ancestor, axis.Following, axis.Preceding} {
			got, err := Join(d, a, context, &Options{Variant: SkipEstimate})
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(got); i++ {
				if got[i-1] >= got[i] {
					t.Fatalf("axis %v: result not strictly increasing at %d: %v", a, i, got)
				}
			}
		}
	}
}

func TestPropPrunedContextsAreStaircases(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 30; trial++ {
		d := randomDoc(rng, 250)
		context := randomContext(rng, d, 1+rng.Intn(40))
		if p := PruneDescendant(d, context); !IsStaircaseDesc(d, p) {
			t.Fatalf("descendant prune is not a staircase: %v", p)
		}
		if p := PruneAncestor(d, context); !IsStaircaseDesc(d, p) {
			t.Fatalf("ancestor prune is not a staircase: %v", p)
		}
	}
}

func TestPropPruningPreservesResult(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		d := randomDoc(rng, 250)
		context := randomContext(rng, d, 1+rng.Intn(40))
		// The join over the pruned context equals the spec over the
		// full context (pruning does not change the result, §3.1).
		if want, got := specJoin(d, axis.Descendant, context),
			DescendantJoin(d, PruneDescendant(d, context), &Options{Variant: Skip, AssumePruned: true}); !eq32(got, want) {
			t.Fatalf("descendant pruning changed result")
		}
		if want, got := specJoin(d, axis.Ancestor, context),
			AncestorJoin(d, PruneAncestor(d, context), &Options{Variant: Skip, AssumePruned: true}); !eq32(got, want) {
			t.Fatalf("ancestor pruning changed result")
		}
	}
}

// TestSkipTouchBound verifies §3.3: with skipping, the descendant join
// touches at most |result| + |context| document nodes.
func TestSkipTouchBound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		d := randomDoc(rng, 400)
		context := randomContext(rng, d, 1+rng.Intn(25))
		var st Stats
		res := DescendantJoin(d, context, &Options{Variant: Skip, Stats: &st, KeepAttributes: true})
		if st.Scanned > int64(len(res))+int64(len(context)) {
			t.Fatalf("trial %d: scanned %d > result %d + context %d",
				trial, st.Scanned, len(res), len(context))
		}
	}
}

// TestEstimateComparisonBound verifies §4.2: estimation-based skipping
// restricts post-rank comparisons to at most h × |pruned context| nodes.
func TestEstimateComparisonBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 30; trial++ {
		d := randomDoc(rng, 400)
		context := randomContext(rng, d, 1+rng.Intn(25))
		var st Stats
		DescendantJoin(d, context, &Options{Variant: SkipEstimate, Stats: &st, KeepAttributes: true})
		bound := int64(d.Height()) * st.PrunedSize
		if st.Compared > bound {
			t.Fatalf("trial %d: compared %d > h*|context| = %d", trial, st.Compared, bound)
		}
	}
}

func TestStatsConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	for trial := 0; trial < 20; trial++ {
		d := randomDoc(rng, 300)
		context := randomContext(rng, d, 1+rng.Intn(20))
		for _, v := range []Variant{NoSkip, Skip, SkipEstimate} {
			var st Stats
			res := DescendantJoin(d, context, &Options{Variant: v, Stats: &st})
			if st.Scanned != st.Copied+st.Compared {
				t.Fatalf("variant %v: scanned %d != copied %d + compared %d",
					v, st.Scanned, st.Copied, st.Compared)
			}
			if st.Result != int64(len(res)) {
				t.Fatalf("variant %v: result stat %d != len %d", v, st.Result, len(res))
			}
			if st.PrunedSize > st.ContextSize {
				t.Fatalf("variant %v: pruned %d > context %d", v, st.PrunedSize, st.ContextSize)
			}
		}
	}
}

// TestNoSkipScansMoreThanSkip pins the ordering the paper's Figure 11(c)
// shows: scanned(noskip) >= scanned(skip) >= result size.
func TestNoSkipScansMoreThanSkip(t *testing.T) {
	rng := rand.New(rand.NewSource(2222))
	d := randomDoc(rng, 2000)
	context := randomContext(rng, d, 15)
	counts := map[Variant]int64{}
	for _, v := range []Variant{NoSkip, Skip, SkipEstimate} {
		var st Stats
		DescendantJoin(d, context, &Options{Variant: v, Stats: &st, KeepAttributes: true})
		counts[v] = st.Scanned
	}
	if counts[NoSkip] < counts[Skip] {
		t.Fatalf("noskip scanned %d < skip scanned %d", counts[NoSkip], counts[Skip])
	}
	if counts[Skip] != counts[SkipEstimate] {
		// Estimation changes *how* nodes are touched (copied vs
		// compared), not how many.
		t.Fatalf("skip scanned %d != estimate scanned %d", counts[Skip], counts[SkipEstimate])
	}
}

func TestMergeOrSelf(t *testing.T) {
	got := MergeOrSelf([]int32{1, 3, 5}, []int32{2, 3, 9})
	want := []int32{1, 2, 3, 5, 9}
	if !eq32(got, want) {
		t.Fatalf("MergeOrSelf = %v, want %v", got, want)
	}
	if got := MergeOrSelf(nil, nil); len(got) != 0 {
		t.Fatalf("MergeOrSelf(nil,nil) = %v", got)
	}
	if got := MergeOrSelf([]int32{4}, nil); !eq32(got, []int32{4}) {
		t.Fatalf("MergeOrSelf = %v", got)
	}
}

func TestAttributeContextNodes(t *testing.T) {
	d, err := doc.ShredString(`<r a="1"><x b="2"><y/></x></r>`)
	if err != nil {
		t.Fatal(err)
	}
	// Find the attribute node b.
	var attrB int32 = -1
	for v := int32(0); int(v) < d.Size(); v++ {
		if d.KindOf(v) == doc.Attr && d.Name(v) == "b" {
			attrB = v
		}
	}
	// ancestor of @b = (r, x).
	got := AncestorJoin(d, []int32{attrB}, nil)
	want := specJoin(d, axis.Ancestor, []int32{attrB})
	if !eq32(got, want) {
		t.Fatalf("ancestor of attr = %v, want %v", got, want)
	}
	// descendant of @b is empty.
	if got := DescendantJoin(d, []int32{attrB}, nil); len(got) != 0 {
		t.Fatalf("descendant of attr = %v, want empty", got)
	}
}

func TestVariantString(t *testing.T) {
	if NoSkip.String() != "noskip" || Skip.String() != "skip" || SkipEstimate.String() != "skip-estimate" {
		t.Fatal("variant names wrong")
	}
}
