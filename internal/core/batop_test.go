package core

import (
	"math/rand"
	"testing"

	"staircase/internal/axis"
	"staircase/internal/bat"
)

func TestStaircaseJoinBATMatchesSliceForm(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 10; trial++ {
		d := randomDoc(rng, 300)
		ctx := randomContext(rng, d, 1+rng.Intn(15))
		cb := bat.NewDense(ctx)
		for _, a := range []axis.Axis{axis.Descendant, axis.Ancestor, axis.Following, axis.Preceding} {
			want, err := Join(d, a, ctx, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := StaircaseJoinBAT(d, a, cb, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != len(want) {
				t.Fatalf("axis %v: BAT form %d vs %d", a, got.Len(), len(want))
			}
			if !got.Head().IsVoid() {
				t.Fatalf("axis %v: result head must be void (dense)", a)
			}
			for i, w := range want {
				if got.Tail().Int(i) != w {
					t.Fatalf("axis %v: result[%d] = %d, want %d", a, i, got.Tail().Int(i), w)
				}
			}
		}
	}
}

func TestStaircaseJoinNodeListBAT(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	d := randomDoc(rng, 300)
	ctx := randomContext(rng, d, 8)
	list := randomList(rng, d, 0.4)
	want := DescendantJoinNodeList(d, list, ctx, nil)
	got, err := StaircaseJoinNodeListBAT(d, axis.Descendant, bat.NewDense(list), bat.NewDense(ctx), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != len(want) {
		t.Fatalf("BAT node-list form %d vs %d", got.Len(), len(want))
	}
}

func TestPruneBAT(t *testing.T) {
	d := figure1(t)
	pruned, err := PruneBAT(d, axis.Descendant, bat.NewDense(pres("abfg")))
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Len() != 1 || pruned.Tail().Int(0) != 0 {
		t.Fatalf("PruneBAT = %v", pruned)
	}
	if _, err := PruneBAT(d, axis.Child, bat.NewDense(pres("a"))); err == nil {
		t.Fatal("expected error for non-partitioning axis")
	}
	// Ancestor pruning path.
	pa, err := PruneBAT(d, axis.Ancestor, bat.NewDense(pres("defhij")))
	if err != nil {
		t.Fatal(err)
	}
	if tagsOf(d, pa.Tail().Ints()) != "dhj" {
		t.Fatalf("ancestor PruneBAT = %q", tagsOf(d, pa.Tail().Ints()))
	}
}

func TestBATOperatorRejectsBadContext(t *testing.T) {
	d := figure1(t)
	unsorted := bat.NewDense([]int32{3, 1})
	if _, err := StaircaseJoinBAT(d, axis.Descendant, unsorted, nil); err == nil {
		t.Fatal("expected error for unsorted context")
	}
	strBAT := bat.NewDenseStr([]string{"x"})
	if _, err := StaircaseJoinBAT(d, axis.Descendant, strBAT, nil); err == nil {
		t.Fatal("expected error for string context")
	}
	if _, err := StaircaseJoinNodeListBAT(d, axis.Descendant, strBAT, bat.NewDense([]int32{0}), nil); err == nil {
		t.Fatal("expected error for string node list")
	}
	if _, err := StaircaseJoinBAT(d, axis.Child, bat.NewDense([]int32{0}), nil); err == nil {
		t.Fatal("expected error for non-partitioning axis")
	}
}
