package core

import (
	"fmt"

	"staircase/internal/axis"
	"staircase/internal/bat"
	"staircase/internal/doc"
)

// This file exposes the staircase join with the kernel-level operator
// signature of the paper's §4: Monet sees the document as the BAT group
// doc = [pre(void)|post] ... and the context as a BAT of pre ranks; the
// staircase join is "a local change to the database kernel" — one more
// BAT operator. The engine's slice-based entry points remain the fast
// path; these wrappers let BAT-algebra plans (and the Pathfinder-style
// compilation the paper targets) treat the join like any other kernel
// operator.

// StaircaseJoinBAT evaluates context/axis over the document and returns
// the result as a dense [void|pre] BAT in document order. The context
// BAT's tail must hold pre ranks in strictly increasing order (its head
// is ignored, as Monet operators ignore alignment heads).
func StaircaseJoinBAT(d *doc.Document, a axis.Axis, context bat.BAT, opts *Options) (bat.BAT, error) {
	ctx, err := contextSlice(context)
	if err != nil {
		return bat.BAT{}, err
	}
	res, err := Join(d, a, ctx, opts)
	if err != nil {
		return bat.BAT{}, err
	}
	return bat.NewDense(res), nil
}

// StaircaseJoinNodeListBAT is the pushdown form: the node list is a
// dense BAT of pre ranks (e.g. a tag fragment), mirroring
// staircasejoin_axis(nametest(doc, n), cs) of §4.4.
func StaircaseJoinNodeListBAT(d *doc.Document, a axis.Axis, list, context bat.BAT, opts *Options) (bat.BAT, error) {
	ctx, err := contextSlice(context)
	if err != nil {
		return bat.BAT{}, err
	}
	ls, err := contextSlice(list)
	if err != nil {
		return bat.BAT{}, fmt.Errorf("core: node list: %w", err)
	}
	res, err := JoinNodeList(d, a, ls, ctx, opts)
	if err != nil {
		return bat.BAT{}, err
	}
	return bat.NewDense(res), nil
}

// PruneBAT applies axis pruning to a context BAT, returning the proper
// staircase as a dense BAT (Algorithm 1 at the kernel interface).
func PruneBAT(d *doc.Document, a axis.Axis, context bat.BAT) (bat.BAT, error) {
	ctx, err := contextSlice(context)
	if err != nil {
		return bat.BAT{}, err
	}
	switch a {
	case axis.Descendant, axis.Following:
		return bat.NewDense(PruneDescendant(d, ctx)), nil
	case axis.Ancestor, axis.Preceding:
		return bat.NewDense(PruneAncestor(d, ctx)), nil
	default:
		return bat.BAT{}, fmt.Errorf("core: pruning undefined for axis %v", a)
	}
}

// contextSlice extracts and validates the pre ranks of a context BAT.
func contextSlice(context bat.BAT) ([]int32, error) {
	tail := context.Tail()
	if tail.Type() == bat.Str {
		return nil, fmt.Errorf("core: context tail must be numeric, got %v", tail.Type())
	}
	if !tail.IsStrictlySorted() {
		return nil, fmt.Errorf("core: context must be in document order (strictly increasing pre ranks)")
	}
	return tail.Ints(), nil
}
