package core

import (
	"math/rand"
	"testing"

	"staircase/internal/axis"
	"staircase/internal/doc"
)

var allAxes = []axis.Axis{axis.Descendant, axis.Ancestor, axis.Following, axis.Preceding}

// --- partitioner -----------------------------------------------------------

func checkChunks(t *testing.T, chunks []Chunk, k, workers int) {
	t.Helper()
	if k == 0 {
		if chunks != nil {
			t.Fatalf("empty context produced chunks %v", chunks)
		}
		return
	}
	if len(chunks) == 0 || len(chunks) > workers || len(chunks) > k {
		t.Fatalf("got %d chunks for k=%d workers=%d", len(chunks), k, workers)
	}
	if chunks[0].Lo != 0 || chunks[len(chunks)-1].Hi != k {
		t.Fatalf("chunks %v do not cover [0,%d)", chunks, k)
	}
	for i, ch := range chunks {
		if ch.Lo >= ch.Hi {
			t.Fatalf("empty chunk %v at %d", ch, i)
		}
		if i > 0 && chunks[i-1].Hi != ch.Lo {
			t.Fatalf("chunks %v not adjacent at %d", chunks, i)
		}
	}
}

func TestPartitionStaircase(t *testing.T) {
	// Empty context.
	if got := PartitionStaircase(nil, 4, 0, 100); got != nil {
		t.Fatalf("empty context: %v", got)
	}
	// Single-node context: one chunk regardless of workers.
	one := []int32{7}
	for _, w := range []int{0, 1, 4} {
		got := PartitionStaircase(one, w, 7, 100)
		checkChunks(t, got, 1, 1)
	}
	// K > len(context) clamps to at most one chunk per node (fewer when
	// span balancing merges narrow staircase steps).
	ctx := []int32{2, 5, 9}
	got := PartitionStaircase(ctx, 10, 2, 20)
	checkChunks(t, got, 3, 3)
	// Equidistant staircase steps with K = len(context) do split fully.
	even := []int32{0, 10, 20}
	got = PartitionStaircase(even, 3, 0, 30)
	checkChunks(t, got, 3, 3)
	if len(got) != 3 {
		t.Fatalf("want 3 singleton chunks for even spacing, got %v", got)
	}
	// workers <= 1 degenerates to a single chunk.
	got = PartitionStaircase(ctx, 1, 2, 20)
	if len(got) != 1 || got[0] != (Chunk{0, 3}) {
		t.Fatalf("workers=1: %v", got)
	}
	// Span balancing: a context whose first step covers most of the
	// span must not serialise — the wide step gets its own chunk.
	wide := []int32{0, 900, 950}
	got = PartitionStaircase(wide, 3, 0, 1000)
	checkChunks(t, got, 3, 3)
	if got[0].Hi != 1 {
		t.Fatalf("wide first step not isolated: %v", got)
	}
	// Inverted/degenerate span still covers the context.
	got = PartitionStaircase(ctx, 2, 30, 10)
	checkChunks(t, got, 3, 2)
}

func TestPartitionStaircaseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(50)
		ctx := make([]int32, 0, k)
		pre := int32(0)
		for i := 0; i < k; i++ {
			pre += 1 + int32(rng.Intn(40))
			ctx = append(ctx, pre)
		}
		workers := rng.Intn(12)
		w := workers
		if w < 1 {
			w = 1
		}
		if w > k {
			w = k
		}
		chunks := PartitionStaircase(ctx, workers, ctx[0], pre+int32(rng.Intn(100)))
		checkChunks(t, chunks, k, w)
	}
}

// --- parallel joins: edge cases --------------------------------------------

func TestParallelJoinEmptyContext(t *testing.T) {
	d := randomDoc(rand.New(rand.NewSource(4)), 120)
	for _, a := range allAxes {
		got, err := ParallelJoin(d, a, nil, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatalf("axis %v: empty context gave %v", a, got)
		}
	}
}

func TestParallelJoinSingleNodeContext(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := randomDoc(rng, 300)
	for _, c := range []int32{0, int32(d.Size() / 2), int32(d.Size() - 1)} {
		for _, a := range allAxes {
			want, err := Join(d, a, []int32{c}, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ParallelJoin(d, a, []int32{c}, 6, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !eq32(got, want) {
				t.Fatalf("axis %v context {%d}: got %v want %v", a, c, got, want)
			}
		}
	}
}

func TestParallelJoinContextInsideOneSubtree(t *testing.T) {
	// A context entirely inside one subtree prunes (descendant axis) to
	// that subtree's root: a single staircase partition no matter how
	// many workers are requested.
	rng := rand.New(rand.NewSource(6))
	d := randomDoc(rng, 400)
	// Find an element with a reasonably large subtree.
	var top int32 = -1
	for v := int32(1); int(v) < d.Size(); v++ {
		if d.SubtreeSize(v) >= 10 {
			top = v
			break
		}
	}
	if top < 0 {
		t.Skip("no subtree of size >= 10 in the random document")
	}
	context := []int32{top}
	for v := top + 1; v <= top+d.SubtreeSize(top); v += 3 {
		context = append(context, v)
	}
	if p := PruneDescendant(d, context); len(p) != 1 || p[0] != top {
		t.Fatalf("expected context to prune to subtree root, got %v", p)
	}
	for _, a := range allAxes {
		want, err := Join(d, a, context, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			got, err := ParallelJoin(d, a, context, workers, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !eq32(got, want) {
				t.Fatalf("axis %v workers %d: got %d nodes, want %d", a, workers, len(got), len(want))
			}
		}
	}
}

func TestParallelJoinMoreWorkersThanContext(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := randomDoc(rng, 250)
	context := randomContext(rng, d, 5)
	for _, a := range allAxes {
		want, err := Join(d, a, context, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParallelJoin(d, a, context, 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !eq32(got, want) {
			t.Fatalf("axis %v: K>len(context) mismatch", a)
		}
	}
}

func TestParallelJoinOneWorkerIsSerialPath(t *testing.T) {
	// workers <= 1 must not spawn: it takes the serial code path and
	// leaves the Workers counter untouched.
	rng := rand.New(rand.NewSource(9))
	d := randomDoc(rng, 300)
	context := randomContext(rng, d, 12)
	for _, a := range allAxes {
		var st Stats
		got, err := ParallelJoin(d, a, context, 1, &Options{Variant: SkipEstimate, Stats: &st})
		if err != nil {
			t.Fatal(err)
		}
		want, err := Join(d, a, context, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !eq32(got, want) {
			t.Fatalf("axis %v: workers=1 mismatch", a)
		}
		if st.Workers != 0 {
			t.Fatalf("axis %v: workers=1 recorded Workers=%d", a, st.Workers)
		}
	}
}

func TestParallelJoinDenseLowPres(t *testing.T) {
	// Context nodes at pre 0 and 1: the first chunk's scan range can be
	// empty (ScanLimit would be 0, which the serial join reads as
	// "unbounded") — the dedicated guard must keep results exact.
	rng := rand.New(rand.NewSource(10))
	d := randomDoc(rng, 200)
	context := []int32{0, 1, 2, 3}
	for _, a := range allAxes {
		want, err := Join(d, a, context, nil)
		if err != nil {
			t.Fatal(err)
		}
		for workers := 1; workers <= 5; workers++ {
			got, err := ParallelJoin(d, a, context, workers, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !eq32(got, want) {
				t.Fatalf("axis %v workers %d: got %v want %v", a, workers, got, want)
			}
		}
	}
}

func TestParallelJoinStatsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	d := randomDoc(rng, 1500)
	context := randomContext(rng, d, 40)
	for _, a := range allAxes {
		var ser, par Stats
		want, err := Join(d, a, context, &Options{Variant: SkipEstimate, Stats: &ser})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParallelJoin(d, a, context, 4, &Options{Variant: SkipEstimate, Stats: &par})
		if err != nil {
			t.Fatal(err)
		}
		if !eq32(got, want) {
			t.Fatalf("axis %v: result mismatch", a)
		}
		if par.Result != int64(len(got)) {
			t.Fatalf("axis %v: Result=%d, len=%d", a, par.Result, len(got))
		}
		if par.ContextSize != ser.ContextSize {
			t.Fatalf("axis %v: ContextSize %d vs serial %d", a, par.ContextSize, ser.ContextSize)
		}
		if par.PrunedSize != ser.PrunedSize {
			t.Fatalf("axis %v: PrunedSize %d vs serial %d", a, par.PrunedSize, ser.PrunedSize)
		}
		if par.Workers < 1 {
			t.Fatalf("axis %v: Workers=%d not recorded", a, par.Workers)
		}
	}
}

// TestParallelJoinNoSharedAppend guards the partition disjointness
// invariant end to end: per-worker outputs must be strictly increasing
// and each worker's last pre rank must stay below the next worker's
// first (checked implicitly through the concatenated result).
func TestParallelJoinOutputStrictlyIncreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		d := randomDoc(rng, 200+rng.Intn(600))
		context := randomContext(rng, d, 1+rng.Intn(30))
		for _, a := range allAxes {
			got, err := ParallelJoin(d, a, context, 2+rng.Intn(7), &Options{KeepAttributes: rng.Intn(2) == 0})
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(got); i++ {
				if got[i-1] >= got[i] {
					t.Fatalf("trial %d axis %v: output not strictly increasing at %d: %v", trial, a, i, got)
				}
			}
		}
	}
}

func eqDoc(t *testing.T, d *doc.Document, a axis.Axis, context []int32, workers int, o Options) {
	t.Helper()
	so := o
	want, err := Join(d, a, context, &so)
	if err != nil {
		t.Fatal(err)
	}
	po := o
	got, err := ParallelJoin(d, a, context, workers, &po)
	if err != nil {
		t.Fatal(err)
	}
	if !eq32(got, want) {
		t.Fatalf("axis %v workers %d opts %+v: parallel differs from serial", a, workers, o)
	}
}

func TestParallelJoinAllVariantOptionCombinations(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	d := randomDoc(rng, 900)
	context := randomContext(rng, d, 35)
	for _, a := range allAxes {
		for _, v := range []Variant{NoSkip, Skip, SkipEstimate} {
			for _, keepAttr := range []bool{false, true} {
				for _, workers := range []int{2, 3, 7} {
					eqDoc(t, d, a, context, workers, Options{Variant: v, KeepAttributes: keepAttr})
				}
			}
		}
	}
}
