package core

import (
	"math/rand"
	"sort"
	"testing"

	"staircase/internal/axis"
	"staircase/internal/doc"
)

// specListJoin intersects the specification join with a node list.
func specListJoin(d *doc.Document, a axis.Axis, list, context []int32) []int32 {
	inList := make(map[int32]bool, len(list))
	for _, v := range list {
		inList[v] = true
	}
	var out []int32
	for _, v := range specJoin(d, a, context) {
		if inList[v] {
			out = append(out, v)
		}
	}
	return out
}

// randomList draws a sorted subset of the document's nodes.
func randomList(rng *rand.Rand, d *doc.Document, p float64) []int32 {
	var out []int32
	for v := int32(0); int(v) < d.Size(); v++ {
		if rng.Float64() < p {
			out = append(out, v)
		}
	}
	return out
}

func TestNodeListJoinMatchesSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(888))
	for trial := 0; trial < 30; trial++ {
		d := randomDoc(rng, 250)
		list := randomList(rng, d, 0.3)
		context := randomContext(rng, d, 1+rng.Intn(20))
		for _, a := range []axis.Axis{axis.Descendant, axis.Ancestor, axis.Following, axis.Preceding} {
			want := specListJoin(d, a, list, context)
			for _, o := range []*Options{
				{Variant: NoSkip},
				{Variant: Skip},
				{Variant: SkipEstimate},
				nil,
			} {
				got, err := JoinNodeList(d, a, list, context, o)
				if err != nil {
					t.Fatal(err)
				}
				if !eq32(got, want) {
					t.Fatalf("trial %d axis %v opts %+v:\n got %v\nwant %v\nlist %v\ncontext %v",
						trial, a, o, got, want, list, context)
				}
			}
		}
	}
}

func TestNodeListJoinTagListEquivalence(t *testing.T) {
	// The pushdown equivalence of §4.4: joining against the tag-
	// filtered list equals joining against the document followed by
	// the name test.
	rng := rand.New(rand.NewSource(999))
	for trial := 0; trial < 20; trial++ {
		d := randomDoc(rng, 300)
		// Tag list for "q".
		var list []int32
		for v := int32(0); int(v) < d.Size(); v++ {
			if d.KindOf(v) == doc.Elem && d.Name(v) == "q" {
				list = append(list, v)
			}
		}
		context := randomContext(rng, d, 1+rng.Intn(15))
		for _, a := range []axis.Axis{axis.Descendant, axis.Ancestor} {
			pushed, err := JoinNodeList(d, a, list, context, nil)
			if err != nil {
				t.Fatal(err)
			}
			full, err := Join(d, a, context, nil)
			if err != nil {
				t.Fatal(err)
			}
			var filtered []int32
			for _, v := range full {
				if d.KindOf(v) == doc.Elem && d.Name(v) == "q" {
					filtered = append(filtered, v)
				}
			}
			if !eq32(pushed, filtered) {
				t.Fatalf("trial %d axis %v: pushdown %v != filter %v", trial, a, pushed, filtered)
			}
		}
	}
}

func TestNodeListJoinEmptyInputs(t *testing.T) {
	d := figure1(t)
	for _, a := range []axis.Axis{axis.Descendant, axis.Ancestor, axis.Following, axis.Preceding} {
		if got, _ := JoinNodeList(d, a, nil, []int32{0}, nil); len(got) != 0 {
			t.Fatalf("axis %v: empty list gave %v", a, got)
		}
		if got, _ := JoinNodeList(d, a, []int32{1, 2}, nil, nil); len(got) != 0 {
			t.Fatalf("axis %v: empty context gave %v", a, got)
		}
	}
	if _, err := JoinNodeList(d, axis.Child, []int32{1}, []int32{0}, nil); err == nil {
		t.Fatal("expected error for non-partitioning axis")
	}
}

// TestNodeListSkipTouchesFewerEntries verifies skipping still pays off
// on lists: scanned list entries stay near the result size instead of
// the list size.
func TestNodeListSkipTouchesFewerEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := randomDoc(rng, 5000)
	list := randomList(rng, d, 0.5)
	context := randomContext(rng, d, 3)
	var noskip, skip Stats
	// KeepAttributes: the |result|+|context| bound counts attribute
	// nodes, which are compared before being filtered from the result.
	DescendantJoinNodeList(d, list, context, &Options{Variant: NoSkip, Stats: &noskip, KeepAttributes: true})
	DescendantJoinNodeList(d, list, context, &Options{Variant: Skip, Stats: &skip, KeepAttributes: true})
	if skip.Scanned > noskip.Scanned {
		t.Fatalf("skip scanned %d > noskip scanned %d", skip.Scanned, noskip.Scanned)
	}
	if skip.Scanned > skip.Result+int64(len(context)) {
		t.Fatalf("skip scanned %d > result %d + context %d", skip.Scanned, skip.Result, len(context))
	}
}

func TestNodeListAncestorSkipJumps(t *testing.T) {
	// Chain document whose bottom holds 50 sibling subtrees of 20
	// nodes each, followed by a final leaf. The ancestors of that leaf
	// are the chain; the sibling subtrees precede it and must be
	// *jumped over* (one comparison per subtree root, descendants
	// untouched) by the ancestor skipping of §3.3.
	b := doc.NewBuilder()
	const depth = 200
	const bushes, bushSize = 50, 20
	for i := 0; i < depth; i++ {
		b.OpenElem("n")
	}
	for i := 0; i < bushes; i++ {
		b.OpenElem("bush")
		for j := 0; j < bushSize; j++ {
			b.OpenElem("twig")
			b.CloseElem()
		}
		b.CloseElem()
	}
	b.OpenElem("final")
	b.CloseElem()
	for i := 0; i < depth; i++ {
		b.CloseElem()
	}
	d, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int32, d.Size())
	for i := range all {
		all[i] = int32(i)
	}
	last := int32(d.Size() - 1) // the final leaf
	var st Stats
	got := AncestorJoinNodeList(d, all, []int32{last}, &Options{Variant: Skip, Stats: &st})
	if len(got) != depth {
		t.Fatalf("ancestors = %d, want %d", len(got), depth)
	}
	// Compared: depth chain nodes + one comparison per bush root.
	if st.Compared > int64(depth+bushes)+2 {
		t.Fatalf("compared %d entries, want about %d (skipping broken)", st.Compared, depth+bushes)
	}
	if st.Skipped < int64(bushes*(bushSize-1)) {
		t.Fatalf("skipped only %d entries", st.Skipped)
	}
	// NoSkip must compare every preceding entry.
	var ns Stats
	AncestorJoinNodeList(d, all, []int32{last}, &Options{Variant: NoSkip, Stats: &ns})
	if ns.Compared <= st.Compared {
		t.Fatalf("noskip compared %d <= skip compared %d", ns.Compared, st.Compared)
	}
}

func TestSearchList(t *testing.T) {
	list := []int32{2, 5, 9}
	cases := []struct {
		pre  int32
		want int
	}{{0, 0}, {2, 0}, {3, 1}, {5, 1}, {6, 2}, {9, 2}, {10, 3}}
	for _, c := range cases {
		if got := searchList(list, c.pre); got != c.want {
			t.Errorf("searchList(%d) = %d, want %d", c.pre, got, c.want)
		}
	}
}

func TestNodeListResultsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 20; trial++ {
		d := randomDoc(rng, 400)
		list := randomList(rng, d, 0.4)
		context := randomContext(rng, d, 1+rng.Intn(10))
		for _, a := range []axis.Axis{axis.Descendant, axis.Ancestor, axis.Following, axis.Preceding} {
			got, err := JoinNodeList(d, a, list, context, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
				t.Fatalf("axis %v result unsorted: %v", a, got)
			}
		}
	}
}
