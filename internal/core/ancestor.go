package core

import (
	"staircase/internal/doc"
)

// AncestorJoin evaluates context/ancestor with the staircase join
// (Algorithm 2, staircasejoin_anc). The pruned ancestor staircase
// partitions the plane at the context nodes' pre ranks; partition i is
// scanned against the boundary post rank of its *right* context node
// with the > comparison (ancestors sit above the staircase).
//
// Skipping (§3.3): a node v inside the partition of context node c with
// post(v) < post(c) lies on the preceding axis of c together with all
// of v's descendants, so the scan may jump over the entire subtree of
// v. Equation (1) sizes the jump; the level column makes it exact (the
// paper's estimate post(v)−pre(v) is maximally off by h).
func AncestorJoin(d *doc.Document, context []int32, opts *Options) []int32 {
	o := opts.orDefault()
	st := o.Stats
	if st != nil {
		st.ContextSize += int64(len(context))
	}
	if len(context) == 0 {
		return nil
	}
	if !o.AssumePruned {
		// Ancestor pruning looks one context node ahead, which is
		// awkward to fold into the partition loop; on-the-fly pruning
		// for the ancestor axis therefore also runs as a (cheap)
		// pre-pass. PruneInline and the default behave identically.
		context = PruneAncestor(d, context)
	}
	if st != nil {
		st.PrunedSize += int64(len(context))
	}

	post := d.PostSlice()
	level := d.LevelSlice()
	kind := d.KindSlice()
	result := make([]int32, 0, int(d.Height())*2)

	// First partition: [0, c0-1] against boundary post(c0); subsequent
	// partitions: [c_{i-1}+1, c_i - 1] against boundary post(c_i).
	from := int32(0)
	if o.ScanStart > 0 {
		from = o.ScanStart // parallel execution: earlier partitions
		// belong to another worker.
	}
	for _, c := range context {
		result = scanPartitionAnc(result, post, level, kind, from, c-1, post[c], o, st)
		from = c + 1
	}
	if st != nil {
		st.addResult(int64(len(result)))
	}
	return result
}

// scanPartitionAnc scans doc pres [from, to] against the ancestor
// boundary `bound` (nodes with post > bound qualify) and appends
// qualifying nodes to result.
func scanPartitionAnc(result []int32, post, level []int32, kind []doc.Kind,
	from, to, bound int32, o *Options, st *Stats) []int32 {

	switch o.Variant {
	case NoSkip:
		for i := from; i <= to; i++ {
			if post[i] > bound {
				if o.KeepAttributes || kind[i] != doc.Attr {
					result = append(result, i)
				}
			}
		}
		if n := int64(to - from + 1); n > 0 && st != nil {
			st.Compared += n
			st.Scanned += n
		}
	default: // Skip and SkipEstimate coincide for the ancestor axis
		i := from
		for i <= to {
			if st != nil {
				st.Compared++
				st.Scanned++
			}
			if post[i] > bound {
				if o.KeepAttributes || kind[i] != doc.Attr {
					result = append(result, i)
				}
				i++
				continue
			}
			// v and all its descendants lie on the preceding axis of
			// the boundary context node: jump over the subtree.
			// Exact size via Equation (1): post - pre + level.
			next := i + 1 + (post[i] - i + level[i])
			if next <= i { // defensive: never stall
				next = i + 1
			}
			if st != nil {
				jump := next - i - 1
				if to+1 < next {
					jump = to - i
				}
				if jump > 0 {
					st.Skipped += int64(jump)
				}
			}
			i = next
		}
	}
	return result
}

// FollowingJoin evaluates context/following. After pruning, the context
// degenerates to the single node with minimum postorder rank (§3.1), so
// the join is one region query; the region is materialised by a bulk
// copy of the pre range beyond the context node's subtree (every node
// after the subtree of c follows c).
func FollowingJoin(d *doc.Document, context []int32, opts *Options) []int32 {
	o := opts.orDefault()
	st := o.Stats
	if st != nil {
		st.ContextSize += int64(len(context))
	}
	c, ok := ReduceFollowing(d, context)
	if !ok {
		return nil
	}
	if st != nil {
		st.PrunedSize++
	}
	kind := d.KindSlice()
	n := int32(d.Size())
	start := c + 1 + d.SubtreeSize(c) // first pre after c's subtree
	if st != nil && start < n {
		st.Scanned += int64(n - start)
		st.Copied += int64(n - start)
	}
	result := make([]int32, 0, int(n-start))
	for i := start; i < n; i++ {
		if o.KeepAttributes || kind[i] != doc.Attr {
			result = append(result, i)
		}
	}
	if st != nil {
		st.addResult(int64(len(result)))
	}
	return result
}

// PrecedingJoin evaluates context/preceding. After pruning, the context
// degenerates to the single node with maximum preorder rank (§3.1).
// Every node before c in pre order is either an ancestor of c (at most
// h many) or on the preceding axis, so one scan of [0, c) with an
// ancestor test per node suffices.
func PrecedingJoin(d *doc.Document, context []int32, opts *Options) []int32 {
	o := opts.orDefault()
	st := o.Stats
	if st != nil {
		st.ContextSize += int64(len(context))
	}
	c, ok := ReducePreceding(d, context)
	if !ok {
		return nil
	}
	if st != nil {
		st.PrunedSize++
	}
	post := d.PostSlice()
	kind := d.KindSlice()
	bound := post[c]
	result := make([]int32, 0, int(c))
	for i := int32(0); i < c; i++ {
		if post[i] < bound {
			if o.KeepAttributes || kind[i] != doc.Attr {
				result = append(result, i)
			}
		}
	}
	if st != nil {
		st.Scanned += int64(c)
		st.Compared += int64(c)
		st.addResult(int64(len(result)))
	}
	return result
}

// MergeOrSelf merges a staircase join result with the context sequence
// itself, implementing the -or-self axis variants. Both inputs must be
// strictly increasing; the output is their strictly increasing union.
func MergeOrSelf(result, context []int32) []int32 {
	out := make([]int32, 0, len(result)+len(context))
	i, j := 0, 0
	for i < len(result) && j < len(context) {
		switch {
		case result[i] < context[j]:
			out = append(out, result[i])
			i++
		case result[i] > context[j]:
			out = append(out, context[j])
			j++
		default:
			out = append(out, result[i])
			i++
			j++
		}
	}
	out = append(out, result[i:]...)
	out = append(out, context[j:]...)
	return out
}
