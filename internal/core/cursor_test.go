package core

import (
	"math/rand"
	"testing"

	"staircase/internal/axis"
)

var cursorAxes = []axis.Axis{axis.Descendant, axis.Ancestor, axis.Following, axis.Preceding}

// drainCursor pulls a cursor to exhaustion with the given batch
// capacity, asserting the inter-batch ordering contract.
func drainCursor(t *testing.T, c JoinCursor, batch int) []int32 {
	t.Helper()
	var out []int32
	for {
		got, err := c.Next(make([]int32, 0, batch), 0)
		if err != nil {
			t.Fatalf("cursor error: %v", err)
		}
		if got == nil {
			return out
		}
		if len(got) == 0 {
			t.Fatalf("cursor returned an empty non-nil batch")
		}
		for i, v := range got {
			if len(out) > 0 && i == 0 && v <= out[len(out)-1] {
				t.Fatalf("batch not increasing across batches: %d after %d", v, out[len(out)-1])
			}
			if i > 0 && v <= got[i-1] {
				t.Fatalf("batch not strictly increasing: %v", got)
			}
		}
		out = append(out, got...)
	}
}

// TestJoinCursorEqualsBatchJoin: draining a cursor must reproduce the
// batch kernel's node sequence exactly, for every axis, variant and
// batch size, over full documents and over node lists.
func TestJoinCursorEqualsBatchJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		d, context := docFromSeed(rng.Int63(), uint16(rng.Intn(1<<16)))
		list := randomList(rng, d, 0.3)
		for _, a := range cursorAxes {
			for _, v := range []Variant{NoSkip, Skip, SkipEstimate} {
				batch := 1 + rng.Intn(70)
				o := &Options{Variant: v}
				want, err := Join(d, a, context, o)
				if err != nil {
					t.Fatal(err)
				}
				cur, err := NewJoinCursor(d, a, SliceSource(context), o)
				if err != nil {
					t.Fatal(err)
				}
				if got := drainCursor(t, cur, batch); !eq32(got, want) {
					t.Fatalf("cursor != join for %v/%v batch=%d:\n got %v\nwant %v", a, v, batch, got, want)
				}
				wantList, err := JoinNodeList(d, a, list, context, o)
				if err != nil {
					t.Fatal(err)
				}
				lcur, err := NewJoinNodeListCursor(d, a, list, SliceSource(context), o)
				if err != nil {
					t.Fatal(err)
				}
				if got := drainCursor(t, lcur, batch); !eq32(got, wantList) {
					t.Fatalf("list cursor != list join for %v/%v batch=%d:\n got %v\nwant %v", a, v, batch, got, wantList)
				}
			}
		}
	}
}

// TestJoinCursorSeek: with a seek hint, the cursor may omit results
// below the hint but must reproduce the batch result exactly from the
// hint onward.
func TestJoinCursorSeek(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		d, context := docFromSeed(rng.Int63(), uint16(rng.Intn(1<<16)))
		list := randomList(rng, d, 0.3)
		seek := int32(rng.Intn(d.Size()))
		for _, a := range cursorAxes {
			o := &Options{Variant: SkipEstimate, Stats: &Stats{}}
			want, err := Join(d, a, context, &Options{Variant: SkipEstimate})
			if err != nil {
				t.Fatal(err)
			}
			cur, err := NewJoinCursor(d, a, SliceSource(context), o)
			if err != nil {
				t.Fatal(err)
			}
			checkSeek(t, cur, seek, want, 1+rng.Intn(40))

			wantList, _ := JoinNodeList(d, a, list, context, nil)
			lcur, err := NewJoinNodeListCursor(d, a, list, SliceSource(context), nil)
			if err != nil {
				t.Fatal(err)
			}
			checkSeek(t, lcur, seek, wantList, 1+rng.Intn(40))
		}
	}
}

func checkSeek(t *testing.T, c JoinCursor, seek int32, want []int32, batch int) {
	t.Helper()
	var got []int32
	for {
		b, err := c.Next(make([]int32, 0, batch), seek)
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		got = append(got, b...)
	}
	// The tail of want from the seek point must be produced verbatim;
	// anything before it may or may not be.
	tail := want[searchList(want, seek):]
	if len(got) < len(tail) || !eq32(got[len(got)-len(tail):], tail) {
		t.Fatalf("seek(%d): tail mismatch\n got %v\nwant tail %v", seek, got, tail)
	}
	// Everything produced must be a subset of the full result.
	for _, v := range got {
		i := searchList(want, v)
		if i >= len(want) || want[i] != v {
			t.Fatalf("seek(%d): produced %d not in full result %v", seek, v, want)
		}
	}
}
