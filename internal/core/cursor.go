// Resumable staircase join cursors — the streaming face of the batch
// kernels in staircase.go / ancestor.go / nodelist.go.
//
// A JoinCursor produces the same node sequence as the corresponding
// batch join, but in bounded batches on demand: each Next call fills a
// caller-provided buffer with the next run of result nodes (strictly
// increasing pre ranks, continuing where the previous batch ended) and
// returns, leaving the partition scan suspended mid-flight. Consumers
// that stop early — LIMIT, existence probes, positional predicates —
// therefore never pay for document regions beyond what they consumed:
// the skipping argument of §3.3 extends from "skip what cannot
// qualify" to "never touch what nobody asked for".
//
// Context nodes are pulled lazily through a NodeSource, so a chain of
// cursors evaluates a whole path without materialising intermediate
// node sequences. Pruning (§3.1) folds into the pull loop: descendant
// pruning is a running post-rank maximum, ancestor pruning a
// one-node lookahead — exactly the pre-pass rules, applied on the fly.
//
// Every cursor additionally accepts a seekPre hint on Next: the caller
// promises to ignore result nodes with pre < seekPre, so the cursor
// may jump its scan position (or binary-search its node list) forward
// instead of producing them. Skipped document nodes are accounted in
// Stats.Skipped like the kernels' own empty-region skips.
package core

import (
	"staircase/internal/axis"
	"staircase/internal/doc"
)

// NodeSource yields the next context node in document order (strictly
// increasing pre ranks); ok is false once the context is exhausted.
// Errors propagate out of the cursor's Next.
type NodeSource func() (pre int32, ok bool, err error)

// SliceSource adapts a materialised context sequence to a NodeSource.
func SliceSource(nodes []int32) NodeSource {
	i := 0
	return func() (int32, bool, error) {
		if i >= len(nodes) {
			return 0, false, nil
		}
		v := nodes[i]
		i++
		return v, true, nil
	}
}

// JoinCursor is a resumable staircase join. Next appends result nodes
// to dst (len(dst) == 0, capacity = the batch size) until the buffer
// is full or the join is exhausted, and returns the filled buffer; a
// nil return means exhaustion. Result nodes with pre < seekPre may be
// omitted (the caller's promise to ignore them); passing 0 disables
// seeking. Cursors are single-use and not safe for concurrent use.
type JoinCursor interface {
	Next(dst []int32, seekPre int32) ([]int32, error)
}

// NewJoinCursor returns a resumable staircase join over the full
// document for one of the four partitioning axes. The context arrives
// through src in document order; opts selects variant and stats
// exactly like Join (ScanLimit/ScanStart are not supported — cursors
// are serial by construction).
func NewJoinCursor(d *doc.Document, a axis.Axis, src NodeSource, opts *Options) (JoinCursor, error) {
	o := opts.orDefault()
	switch a {
	case axis.Descendant:
		return &descCursor{
			d: d, post: d.PostSlice(), kind: d.KindSlice(),
			n: int32(d.Size()), src: src, o: o, prevPost: -1,
		}, nil
	case axis.Ancestor:
		return &ancCursor{
			d: d, post: d.PostSlice(), level: d.LevelSlice(), kind: d.KindSlice(),
			src: src, o: o,
		}, nil
	case axis.Following:
		return &folCursor{d: d, kind: d.KindSlice(), n: int32(d.Size()), src: src, o: o}, nil
	case axis.Preceding:
		return &precCursor{d: d, post: d.PostSlice(), kind: d.KindSlice(), src: src, o: o}, nil
	default:
		return nil, errNonPartitioning(a)
	}
}

// NewJoinNodeListCursor returns a resumable staircase join over a
// pre-sorted node list (an index fragment) instead of the whole
// document — the streaming counterpart of JoinNodeList. Partition
// boundaries, copy-phase guarantees and seek targets are located by
// binary search on the list, so a downstream consumer that stops
// early or seeks forward never rescans fragment prefixes.
func NewJoinNodeListCursor(d *doc.Document, a axis.Axis, list []int32, src NodeSource, opts *Options) (JoinCursor, error) {
	o := opts.orDefault()
	switch a {
	case axis.Descendant:
		return &descListCursor{
			d: d, post: d.PostSlice(), kind: d.KindSlice(), list: list,
			src: src, o: o, prevPost: -1,
		}, nil
	case axis.Ancestor:
		return &ancListCursor{
			d: d, post: d.PostSlice(), kind: d.KindSlice(), list: list,
			src: src, o: o,
		}, nil
	case axis.Following:
		return &folListCursor{d: d, kind: d.KindSlice(), list: list, src: src, o: o}, nil
	case axis.Preceding:
		return &precListCursor{d: d, post: d.PostSlice(), kind: d.KindSlice(), list: list, src: src, o: o}, nil
	default:
		return nil, errNonPartitioning(a)
	}
}

// --- shared stat helpers ---------------------------------------------------

func (s *Stats) addContext(n int64) {
	if s != nil {
		s.ContextSize += n
	}
}

func (s *Stats) addPruned(n int64) {
	if s != nil {
		s.PrunedSize += n
	}
}

func (s *Stats) addSkipped(n int64) {
	if s != nil && n > 0 {
		s.Skipped += n
	}
}

func (s *Stats) addCompared(n int64) {
	if s != nil && n > 0 {
		s.Compared += n
		s.Scanned += n
	}
}

func (s *Stats) addCopied(n int64) {
	if s != nil && n > 0 {
		s.Copied += n
		s.Scanned += n
	}
}

// --- descendant, full document --------------------------------------------

// descCursor streams DescendantJoin: partitions delimited by pruned
// context survivors, each scanned copy-phase-then-compare (Algorithm 4)
// and suspended whenever the batch buffer fills.
type descCursor struct {
	d    *doc.Document
	post []int32
	kind []doc.Kind
	n    int32
	src  NodeSource
	o    *Options

	inPart     bool
	pos, to    int32 // current partition scan position and end (inclusive)
	bound, est int32 // boundary post rank; copy-phase end (SkipEstimate)
	prevPost   int32 // pruning state: post rank of the last survivor
	pending    int32 // next survivor (partition lookahead)
	hasPend    bool
	srcDone    bool
	done       bool
}

// nextSurvivor pulls context nodes until one survives descendant
// pruning (strictly increasing post ranks).
func (c *descCursor) nextSurvivor() (int32, bool, error) {
	for {
		v, ok, err := c.src()
		if err != nil || !ok {
			return 0, false, err
		}
		c.o.Stats.addContext(1)
		if c.post[v] > c.prevPost {
			c.prevPost = c.post[v]
			return v, true, nil
		}
	}
}

// startPartition establishes the next partition; false means the
// context is exhausted.
func (c *descCursor) startPartition() (bool, error) {
	var owner int32
	if c.hasPend {
		owner, c.hasPend = c.pending, false
	} else if c.srcDone {
		return false, nil
	} else {
		v, ok, err := c.nextSurvivor()
		if err != nil {
			return false, err
		}
		if !ok {
			c.srcDone = true
			return false, nil
		}
		owner = v
	}
	if !c.srcDone {
		v, ok, err := c.nextSurvivor()
		if err != nil {
			return false, err
		}
		if ok {
			c.pending, c.hasPend = v, true
		} else {
			c.srcDone = true
		}
	}
	c.pos = owner + 1
	c.to = c.n - 1
	if c.hasPend {
		c.to = c.pending - 1
	}
	c.bound = c.post[owner]
	c.est = c.bound // copy phase covers pres <= post(owner) (Equation 1)
	if c.to < c.est {
		c.est = c.to
	}
	c.inPart = true
	c.o.Stats.addPruned(1)
	return true, nil
}

func (c *descCursor) Next(dst []int32, seek int32) ([]int32, error) {
	if c.done {
		return nil, nil
	}
	st := c.o.Stats
	for {
		if !c.inPart {
			ok, err := c.startPartition()
			if err != nil {
				return nil, err
			}
			if !ok {
				c.done = true
				if len(dst) == 0 {
					st.addResult(0)
					return nil, nil
				}
				st.addResult(int64(len(dst)))
				return dst, nil
			}
		}
		if seek > c.pos {
			j := seek
			if j > c.to+1 {
				j = c.to + 1
			}
			st.addSkipped(int64(j - c.pos))
			c.pos = j
		}
		// Copy phase (SkipEstimate): pres in (owner, post(owner)] are
		// guaranteed descendants, no post comparison needed.
		if c.o.Variant == SkipEstimate {
			for c.pos <= c.est && len(dst) < cap(dst) {
				if c.o.KeepAttributes || c.kind[c.pos] != doc.Attr {
					dst = append(dst, c.pos)
				}
				st.addCopied(1)
				c.pos++
			}
			if c.pos <= c.est {
				st.addResult(int64(len(dst)))
				return dst, nil // buffer full mid copy phase
			}
		}
		// Scan phase: compare post ranks against the boundary; Skip and
		// SkipEstimate end the partition at the first non-descendant.
		for c.pos <= c.to && len(dst) < cap(dst) {
			st.addCompared(1)
			if c.post[c.pos] < c.bound {
				if c.o.KeepAttributes || c.kind[c.pos] != doc.Attr {
					dst = append(dst, c.pos)
				}
				c.pos++
				continue
			}
			if c.o.Variant == NoSkip {
				c.pos++
				continue
			}
			st.addSkipped(int64(c.to - c.pos))
			c.pos = c.to + 1
		}
		if c.pos > c.to {
			c.inPart = false
			continue
		}
		st.addResult(int64(len(dst)))
		return dst, nil // buffer full mid scan phase
	}
}

// --- ancestor, full document ----------------------------------------------

// ancCursor streams AncestorJoin: partitions end at each surviving
// context node's pre rank; non-ancestor subtrees are jumped via
// Equation (1) made exact by the level column.
type ancCursor struct {
	d     *doc.Document
	post  []int32
	level []int32
	kind  []doc.Kind
	src   NodeSource
	o     *Options

	inPart  bool
	pos, to int32
	bound   int32
	from    int32 // next partition start
	cand    int32 // pruning lookahead: current candidate
	hasCand bool
	srcDone bool
	done    bool
}

// nextSurvivor applies ancestor pruning with a one-node lookahead: a
// candidate is dropped when the next context node is its descendant
// (or a duplicate).
func (c *ancCursor) nextSurvivor() (int32, bool, error) {
	for {
		if !c.hasCand {
			if c.srcDone {
				return 0, false, nil
			}
			v, ok, err := c.src()
			if err != nil {
				return 0, false, err
			}
			if !ok {
				c.srcDone = true
				return 0, false, nil
			}
			c.o.Stats.addContext(1)
			c.cand, c.hasCand = v, true
		}
		if c.srcDone {
			c.hasCand = false
			return c.cand, true, nil
		}
		nxt, ok, err := c.src()
		if err != nil {
			return 0, false, err
		}
		if !ok {
			c.srcDone = true
			c.hasCand = false
			return c.cand, true, nil
		}
		c.o.Stats.addContext(1)
		if nxt == c.cand || c.post[nxt] < c.post[c.cand] {
			// cand is an ancestor of nxt (or a duplicate): pruned.
			c.cand = nxt
			continue
		}
		survivor := c.cand
		c.cand = nxt
		return survivor, true, nil
	}
}

func (c *ancCursor) Next(dst []int32, seek int32) ([]int32, error) {
	if c.done {
		return nil, nil
	}
	st := c.o.Stats
	for {
		if !c.inPart {
			owner, ok, err := c.nextSurvivor()
			if err != nil {
				return nil, err
			}
			if !ok {
				c.done = true
				if len(dst) == 0 {
					st.addResult(0)
					return nil, nil
				}
				st.addResult(int64(len(dst)))
				return dst, nil
			}
			c.pos = c.from
			c.to = owner - 1
			c.bound = c.post[owner]
			c.from = owner + 1
			c.inPart = true
			st.addPruned(1)
		}
		if seek > c.pos {
			j := seek
			if j > c.to+1 {
				j = c.to + 1
			}
			st.addSkipped(int64(j - c.pos))
			c.pos = j
		}
		for c.pos <= c.to && len(dst) < cap(dst) {
			st.addCompared(1)
			if c.post[c.pos] > c.bound {
				if c.o.KeepAttributes || c.kind[c.pos] != doc.Attr {
					dst = append(dst, c.pos)
				}
				c.pos++
				continue
			}
			if c.o.Variant == NoSkip {
				c.pos++
				continue
			}
			// pos and its whole subtree precede the boundary node: jump.
			next := c.pos + 1 + (c.post[c.pos] - c.pos + c.level[c.pos])
			if next <= c.pos {
				next = c.pos + 1
			}
			jump := next - c.pos - 1
			if c.to+1 < next {
				jump = c.to - c.pos
			}
			st.addSkipped(int64(jump))
			c.pos = next
		}
		if c.pos > c.to {
			c.inPart = false
			continue
		}
		st.addResult(int64(len(dst)))
		return dst, nil
	}
}

// --- following / preceding, full document ---------------------------------

// folCursor streams FollowingJoin: the context reduces to its
// minimum-post node (a full context drain — following cannot emit
// before the last context node is seen), then the cursor copies the
// document suffix beyond that node's subtree batch by batch.
type folCursor struct {
	d    *doc.Document
	kind []doc.Kind
	n    int32
	src  NodeSource
	o    *Options

	pos    int32
	inited bool
	done   bool
}

func (c *folCursor) init() error {
	st := c.o.Stats
	post := c.d.PostSlice()
	best := int32(-1)
	for {
		v, ok, err := c.src()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		st.addContext(1)
		if best < 0 || post[v] < post[best] {
			best = v
		}
	}
	c.inited = true
	if best < 0 {
		c.done = true
		return nil
	}
	st.addPruned(1)
	c.pos = best + 1 + c.d.SubtreeSize(best)
	return nil
}

func (c *folCursor) Next(dst []int32, seek int32) ([]int32, error) {
	if c.done {
		return nil, nil
	}
	if !c.inited {
		if err := c.init(); err != nil {
			return nil, err
		}
		if c.done {
			return nil, nil
		}
	}
	st := c.o.Stats
	if seek > c.pos {
		j := seek
		if j > c.n {
			j = c.n
		}
		st.addSkipped(int64(j - c.pos))
		c.pos = j
	}
	for c.pos < c.n && len(dst) < cap(dst) {
		if c.o.KeepAttributes || c.kind[c.pos] != doc.Attr {
			dst = append(dst, c.pos)
		}
		st.addCopied(1)
		c.pos++
	}
	if c.pos >= c.n && len(dst) < cap(dst) {
		c.done = true
	}
	if len(dst) == 0 {
		c.done = true
		st.addResult(0)
		return nil, nil
	}
	st.addResult(int64(len(dst)))
	return dst, nil
}

// precCursor streams PrecedingJoin: the context reduces to its
// maximum-pre node (again a full drain), then the cursor scans [0, c)
// against the boundary post rank batch by batch.
type precCursor struct {
	d    *doc.Document
	post []int32
	kind []doc.Kind
	src  NodeSource
	o    *Options

	pos, end, bound int32
	inited          bool
	done            bool
}

func (c *precCursor) init() error {
	st := c.o.Stats
	last := int32(-1)
	for {
		v, ok, err := c.src()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		st.addContext(1)
		last = v // document order: the last pulled node has maximum pre
	}
	c.inited = true
	if last < 0 {
		c.done = true
		return nil
	}
	st.addPruned(1)
	c.end = last
	c.bound = c.post[last]
	return nil
}

func (c *precCursor) Next(dst []int32, seek int32) ([]int32, error) {
	if c.done {
		return nil, nil
	}
	if !c.inited {
		if err := c.init(); err != nil {
			return nil, err
		}
		if c.done {
			return nil, nil
		}
	}
	st := c.o.Stats
	if seek > c.pos {
		j := seek
		if j > c.end {
			j = c.end
		}
		st.addSkipped(int64(j - c.pos))
		c.pos = j
	}
	for c.pos < c.end && len(dst) < cap(dst) {
		st.addCompared(1)
		if c.post[c.pos] < c.bound {
			if c.o.KeepAttributes || c.kind[c.pos] != doc.Attr {
				dst = append(dst, c.pos)
			}
		}
		c.pos++
	}
	if c.pos >= c.end && len(dst) < cap(dst) {
		c.done = true
	}
	if len(dst) == 0 {
		c.done = true
		st.addResult(0)
		return nil, nil
	}
	st.addResult(int64(len(dst)))
	return dst, nil
}
