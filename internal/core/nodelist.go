package core

import (
	"sort"

	"staircase/internal/axis"
	"staircase/internal/doc"
)

// This file implements the staircase join over a *node list*: a
// pre-sorted subset of the document (e.g. all elements with a given tag
// name). This is the machinery behind the paper's name-test pushdown
// (§4.4, Experiment 3):
//
//	nametest(staircasejoin_anc(doc, cs), n)
//	  = staircasejoin_anc(nametest(doc, n), cs)
//
// "The tree properties used by the staircase join are entirely based on
// preorder and postorder ranks. Those properties remain valid for a
// subset of nodes." In particular, the skipping argument still holds:
// the first list node outside the boundary of context node c follows c
// in document order, so no later list node in the partition can be a
// descendant of c.

// JoinNodeList evaluates an axis step along a partitioning axis against
// a pre-sorted node list instead of the whole document. The result is
// the intersection of the usual staircase join result with the list.
func JoinNodeList(d *doc.Document, a axis.Axis, list, context []int32, opts *Options) ([]int32, error) {
	switch a {
	case axis.Descendant:
		return DescendantJoinNodeList(d, list, context, opts), nil
	case axis.Ancestor:
		return AncestorJoinNodeList(d, list, context, opts), nil
	case axis.Following:
		return FollowingJoinNodeList(d, list, context, opts), nil
	case axis.Preceding:
		return PrecedingJoinNodeList(d, list, context, opts), nil
	default:
		return nil, errNonPartitioning(a)
	}
}

func errNonPartitioning(a axis.Axis) error {
	return &nonPartitioningError{a}
}

type nonPartitioningError struct{ a axis.Axis }

func (e *nonPartitioningError) Error() string {
	return "core: staircase join does not handle axis " + e.a.String()
}

// searchList returns the smallest index i with list[i] >= pre.
func searchList(list []int32, pre int32) int {
	return sort.Search(len(list), func(i int) bool { return list[i] >= pre })
}

// DescendantJoinNodeList computes context/descendant ∩ list.
func DescendantJoinNodeList(d *doc.Document, list, context []int32, opts *Options) []int32 {
	o := opts.orDefault()
	st := o.Stats
	if st != nil {
		st.ContextSize += int64(len(context))
	}
	if len(context) == 0 || len(list) == 0 {
		return nil
	}
	if !o.AssumePruned {
		context = PruneDescendant(d, context)
	}
	if st != nil {
		st.PrunedSize += int64(len(context))
	}
	post := d.PostSlice()
	kind := d.KindSlice()
	result := make([]int32, 0, 64)

	li := 0
	for i, c := range context {
		// Partition of c in the list: entries with pre > c, up to the
		// next context node.
		if li < len(list) && list[li] <= c {
			li = searchList(list[li:], c+1) + li
		}
		end := len(list)
		if i+1 < len(context) {
			end = searchList(list, context[i+1])
		}
		bound := post[c]
		switch o.Variant {
		case NoSkip:
			for j := li; j < end; j++ {
				v := list[j]
				if post[v] < bound && (o.KeepAttributes || kind[v] != doc.Attr) {
					result = append(result, v)
				}
			}
			if st != nil {
				st.Compared += int64(end - li)
				st.Scanned += int64(end - li)
			}
			li = end
		default: // Skip, SkipEstimate
			j := li
			if o.Variant == SkipEstimate {
				// Copy phase on the list: all entries with pre <= post(c)
				// are guaranteed descendants of c (Equation (1) lower
				// bound); locate the range by binary search.
				guarantee := searchList(list[j:end], bound+1) + j
				for ; j < guarantee; j++ {
					v := list[j]
					if o.KeepAttributes || kind[v] != doc.Attr {
						result = append(result, v)
					}
				}
				if st != nil {
					st.Copied += int64(guarantee - li)
					st.Scanned += int64(guarantee - li)
				}
			}
			for ; j < end; j++ {
				v := list[j]
				if st != nil {
					st.Compared++
					st.Scanned++
				}
				if post[v] < bound {
					if o.KeepAttributes || kind[v] != doc.Attr {
						result = append(result, v)
					}
				} else {
					if st != nil {
						st.Skipped += int64(end - j - 1)
					}
					break
				}
			}
			li = end
		}
	}
	if st != nil {
		st.addResult(int64(len(result)))
	}
	return result
}

// AncestorJoinNodeList computes context/ancestor ∩ list.
func AncestorJoinNodeList(d *doc.Document, list, context []int32, opts *Options) []int32 {
	o := opts.orDefault()
	st := o.Stats
	if st != nil {
		st.ContextSize += int64(len(context))
	}
	if len(context) == 0 || len(list) == 0 {
		return nil
	}
	if !o.AssumePruned {
		context = PruneAncestor(d, context)
	}
	if st != nil {
		st.PrunedSize += int64(len(context))
	}
	post := d.PostSlice()
	kind := d.KindSlice()
	result := make([]int32, 0, 64)

	li := 0
	for _, c := range context {
		end := searchList(list, c) // partition: list entries with pre < c
		bound := post[c]
		j := li
		for j < end {
			v := list[j]
			if st != nil {
				st.Compared++
				st.Scanned++
			}
			if post[v] > bound {
				if o.KeepAttributes || kind[v] != doc.Attr {
					result = append(result, v)
				}
				j++
				continue
			}
			if o.Variant == NoSkip {
				j++
				continue
			}
			// v and its descendants precede c: jump past v's subtree
			// within the list by binary search.
			next := searchList(list[j+1:end], v+1+d.SubtreeSize(v)) + j + 1
			if st != nil {
				st.Skipped += int64(next - j - 1)
			}
			j = next
		}
		li = end
	}
	if st != nil {
		st.addResult(int64(len(result)))
	}
	return result
}

// FollowingJoinNodeList computes context/following ∩ list: the list
// suffix beyond the subtree of the minimum-post context node.
func FollowingJoinNodeList(d *doc.Document, list, context []int32, opts *Options) []int32 {
	o := opts.orDefault()
	st := o.Stats
	if st != nil {
		st.ContextSize += int64(len(context))
	}
	c, ok := ReduceFollowing(d, context)
	if !ok || len(list) == 0 {
		return nil
	}
	if st != nil {
		st.PrunedSize++
	}
	kind := d.KindSlice()
	from := searchList(list, c+1+d.SubtreeSize(c))
	result := make([]int32, 0, len(list)-from)
	for _, v := range list[from:] {
		if o.KeepAttributes || kind[v] != doc.Attr {
			result = append(result, v)
		}
	}
	if st != nil {
		st.Copied += int64(len(list) - from)
		st.Scanned += int64(len(list) - from)
		st.addResult(int64(len(result)))
	}
	return result
}

// PrecedingJoinNodeList computes context/preceding ∩ list: list entries
// before the maximum-pre context node, minus its ancestors.
func PrecedingJoinNodeList(d *doc.Document, list, context []int32, opts *Options) []int32 {
	o := opts.orDefault()
	st := o.Stats
	if st != nil {
		st.ContextSize += int64(len(context))
	}
	c, ok := ReducePreceding(d, context)
	if !ok || len(list) == 0 {
		return nil
	}
	if st != nil {
		st.PrunedSize++
	}
	post := d.PostSlice()
	kind := d.KindSlice()
	bound := post[c]
	end := searchList(list, c)
	result := make([]int32, 0, end)
	for _, v := range list[:end] {
		if st != nil {
			st.Compared++
			st.Scanned++
		}
		if post[v] < bound && (o.KeepAttributes || kind[v] != doc.Attr) {
			result = append(result, v)
		}
	}
	if st != nil {
		st.addResult(int64(len(result)))
	}
	return result
}
