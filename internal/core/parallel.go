package core

// This file implements the partition-parallel staircase join the paper
// sketches in §3.2 and lists under Future Research (§6): "it should be
// obvious that the partitioned pre/post plane naturally leads to a
// parallel XPath execution strategy".
//
// The parallelism rests on the *partitioning invariant* pruning buys:
// after pruning, the staircase partitions of the context nodes scan
// pairwise disjoint, contiguous pre-rank ranges that together cover the
// relevant part of the document exactly once. Splitting the pruned
// staircase into contiguous chunks therefore yields K independent
// sub-joins over disjoint document regions; each worker's result is
// duplicate-free and in document order on its own, and because chunk i
// only ever emits pre ranks strictly below every pre rank chunk i+1 can
// emit, plain concatenation of the per-worker results reconstructs the
// serial answer byte for byte — no merge, no sort, no unique.
//
// The scan delimiters that make the sub-joins independent are the
// ScanLimit/ScanStart fields of Options: a descendant worker stops
// before the next chunk's first context node, an ancestor worker starts
// after the previous chunk's last context node. Following and preceding
// degenerate to a single region query after pruning (§3.1), which is
// parallelised by slicing the region itself.

import (
	"sort"
	"sync"

	"staircase/internal/axis"
	"staircase/internal/doc"
	"staircase/internal/fault"
)

// panicBox collects the first panic of a worker pool so the caller
// can rethrow it on its own goroutine after wg.Wait: the containment
// boundaries above (server evaluation, pace-car drive) can only
// recover panics that unwind the goroutine they run on — a raw panic
// inside a worker would kill the whole process instead of failing one
// query.
type panicBox struct {
	mu  sync.Mutex
	val any
}

// capture must be deferred inside the worker, after wg.Done is
// already deferred (LIFO: capture recovers first, then Done fires).
func (b *panicBox) capture() {
	if v := recover(); v != nil {
		pe := fault.NewPanicError(v) // worker stack captured here
		b.mu.Lock()
		if b.val == nil {
			b.val = pe
		}
		b.mu.Unlock()
	}
}

// rethrow re-raises the first captured panic on the caller's
// goroutine; a no-op when every worker finished cleanly.
func (b *panicBox) rethrow() {
	if b.val != nil {
		panic(b.val)
	}
}

// Chunk is one worker's contiguous share of a pruned staircase:
// context[Lo:Hi]. Chunks produced by PartitionStaircase are non-empty,
// adjacent and cover the whole context.
type Chunk struct {
	Lo, Hi int
}

// PartitionStaircase splits a pruned staircase context into at most
// `workers` contiguous chunks, balancing the document pre range each
// chunk scans rather than the number of context nodes per chunk (a
// single staircase step may cover most of the document; equal-count
// splitting would serialise exactly the expensive inputs).
//
// spanLo and spanHi delimit the total pre range the join will scan:
// (context[0], size) for the descendant axis, [0, context[last]] for
// the ancestor axis. Cut points are placed at equal fractions of that
// span and snapped to the next staircase boundary.
//
// The result is nil for an empty context, and a single chunk when
// workers <= 1 or the context has a single node. K > len(context)
// clamps to one chunk per context node.
func PartitionStaircase(context []int32, workers int, spanLo, spanHi int32) []Chunk {
	k := len(context)
	if k == 0 {
		return nil
	}
	if workers > k {
		workers = k
	}
	if workers < 1 {
		workers = 1
	}
	if spanHi < spanLo {
		spanHi = spanLo
	}
	span := int64(spanHi) - int64(spanLo)
	chunks := make([]Chunk, 0, workers)
	lo := 0
	for w := 0; w < workers && lo < k; w++ {
		hi := k
		if w+1 < workers {
			target := spanLo + int32(span*int64(w+1)/int64(workers))
			// Snap to the first staircase boundary at or beyond the
			// target, but always advance by at least one context node.
			hi = lo + 1 + sort.Search(k-lo-1, func(i int) bool {
				return context[lo+1+i] >= target
			})
		}
		chunks = append(chunks, Chunk{Lo: lo, Hi: hi})
		lo = hi
	}
	return chunks
}

// ParallelJoin evaluates an axis step along one of the four
// partitioning axes with the staircase join, fanning the partitioned
// scan out over at most `workers` goroutines. workers <= 1 degrades to
// the serial Join. Results are guaranteed identical to the serial join:
// workers operate on disjoint pre ranges (see the file comment), so the
// concatenated output is the same duplicate-free document-order
// sequence.
func ParallelJoin(d *doc.Document, a axis.Axis, context []int32, workers int, opts *Options) ([]int32, error) {
	switch a {
	case axis.Descendant:
		return ParallelDescendantJoin(d, context, workers, opts), nil
	case axis.Ancestor:
		return ParallelAncestorJoin(d, context, workers, opts), nil
	case axis.Following:
		return ParallelFollowingJoin(d, context, workers, opts), nil
	case axis.Preceding:
		return ParallelPrecedingJoin(d, context, workers, opts), nil
	default:
		return nil, errNonPartitioning(a)
	}
}

// ParallelDescendantJoin is the partition-parallel variant of
// DescendantJoin. The context is pruned once up front (the staircase
// boundaries are what makes the split sound, so pruning cannot be
// folded into the workers); chunk i's scan is delimited by chunk i+1's
// first context node. Any ScanLimit/ScanStart in opts is owned by the
// driver and ignored.
func ParallelDescendantJoin(d *doc.Document, context []int32, workers int, opts *Options) []int32 {
	o := opts.orDefault()
	if workers <= 1 {
		return DescendantJoin(d, context, o)
	}
	st := o.Stats
	if st != nil {
		st.ContextSize += int64(len(context))
	}
	pruned := context
	if !o.AssumePruned {
		pruned = PruneDescendant(d, context)
	}
	if len(pruned) == 0 {
		return nil
	}
	chunks := PartitionStaircase(pruned, workers, pruned[0], int32(d.Size()))
	if st != nil {
		st.Workers = int64(len(chunks))
	}
	results := make([][]int32, len(chunks))
	stats := make([]Stats, len(chunks))
	var wg sync.WaitGroup
	var pb panicBox
	for i, ch := range chunks {
		wg.Add(1)
		go func(i int, ch Chunk) {
			defer wg.Done()
			defer pb.capture()
			wo := *o
			wo.AssumePruned = true
			wo.PruneInline = false
			wo.ScanStart = 0
			wo.ScanLimit = 0
			wo.Stats = &stats[i]
			if ch.Hi < len(pruned) {
				limit := pruned[ch.Hi] - 1
				if limit <= 0 {
					// The next chunk starts at pre rank 1: nothing lies
					// between this chunk's context nodes and the
					// boundary (and ScanLimit 0 would mean "unbounded").
					stats[i].ContextSize = int64(ch.Hi - ch.Lo)
					stats[i].PrunedSize = int64(ch.Hi - ch.Lo)
					return
				}
				wo.ScanLimit = limit
			}
			results[i] = DescendantJoin(d, pruned[ch.Lo:ch.Hi], &wo)
		}(i, ch)
	}
	wg.Wait()
	pb.rethrow()
	mergeWorkerStats(st, stats)
	return concat32(results)
}

// ParallelAncestorJoin is the partition-parallel variant of
// AncestorJoin: chunk i's first partition starts right after chunk
// i-1's last context node, so the chunks scan disjoint pre ranges.
func ParallelAncestorJoin(d *doc.Document, context []int32, workers int, opts *Options) []int32 {
	o := opts.orDefault()
	if workers <= 1 {
		return AncestorJoin(d, context, o)
	}
	st := o.Stats
	if st != nil {
		st.ContextSize += int64(len(context))
	}
	pruned := context
	if !o.AssumePruned {
		pruned = PruneAncestor(d, context)
	}
	if len(pruned) == 0 {
		return nil
	}
	chunks := PartitionStaircase(pruned, workers, 0, pruned[len(pruned)-1])
	if st != nil {
		st.Workers = int64(len(chunks))
	}
	results := make([][]int32, len(chunks))
	stats := make([]Stats, len(chunks))
	var wg sync.WaitGroup
	var pb panicBox
	for i, ch := range chunks {
		wg.Add(1)
		go func(i int, ch Chunk) {
			defer wg.Done()
			defer pb.capture()
			wo := *o
			wo.AssumePruned = true
			wo.PruneInline = false
			wo.ScanStart = 0
			wo.ScanLimit = 0
			wo.Stats = &stats[i]
			if ch.Lo > 0 {
				// Earlier partitions belong to earlier workers.
				wo.ScanStart = pruned[ch.Lo-1] + 1
			}
			results[i] = AncestorJoin(d, pruned[ch.Lo:ch.Hi], &wo)
		}(i, ch)
	}
	wg.Wait()
	pb.rethrow()
	mergeWorkerStats(st, stats)
	return concat32(results)
}

// ParallelFollowingJoin is the parallel variant of FollowingJoin. After
// pruning the axis is a single region query — every node beyond the
// subtree of the minimum-post context node (§3.1) — so the region
// itself is sliced into near-equal pre ranges, one per worker.
func ParallelFollowingJoin(d *doc.Document, context []int32, workers int, opts *Options) []int32 {
	o := opts.orDefault()
	if workers <= 1 {
		return FollowingJoin(d, context, o)
	}
	st := o.Stats
	if st != nil {
		st.ContextSize += int64(len(context))
	}
	c, ok := ReduceFollowing(d, context)
	if !ok {
		return nil
	}
	if st != nil {
		st.PrunedSize++
	}
	kind := d.KindSlice()
	n := int32(d.Size())
	start := c + 1 + d.SubtreeSize(c) // first pre after c's subtree
	if st != nil && start < n {
		st.Scanned += int64(n - start)
		st.Copied += int64(n - start)
	}
	result := parallelRangeScan(start, n, workers, st, func(v int32) bool {
		return o.KeepAttributes || kind[v] != doc.Attr
	})
	if st != nil {
		st.addResult(int64(len(result)))
	}
	return result
}

// ParallelPrecedingJoin is the parallel variant of PrecedingJoin: the
// single scan of [0, c) against the maximum-pre context node's post
// rank is sliced into near-equal pre ranges, one per worker.
func ParallelPrecedingJoin(d *doc.Document, context []int32, workers int, opts *Options) []int32 {
	o := opts.orDefault()
	if workers <= 1 {
		return PrecedingJoin(d, context, o)
	}
	st := o.Stats
	if st != nil {
		st.ContextSize += int64(len(context))
	}
	c, ok := ReducePreceding(d, context)
	if !ok {
		return nil
	}
	if st != nil {
		st.PrunedSize++
		st.Scanned += int64(c)
		st.Compared += int64(c)
	}
	post := d.PostSlice()
	kind := d.KindSlice()
	bound := post[c]
	result := parallelRangeScan(0, c, workers, st, func(v int32) bool {
		return post[v] < bound && (o.KeepAttributes || kind[v] != doc.Attr)
	})
	if st != nil {
		st.addResult(int64(len(result)))
	}
	return result
}

// parallelRangeScan filters the pre range [lo, hi) through keep on at
// most `workers` goroutines over near-equal contiguous slices and
// concatenates the per-slice outputs (document order is preserved: the
// slices are ascending and disjoint). Records the worker count in st.
func parallelRangeScan(lo, hi int32, workers int, st *Stats, keep func(int32) bool) []int32 {
	if hi <= lo {
		return nil
	}
	size := int64(hi) - int64(lo)
	if int64(workers) > size {
		workers = int(size)
	}
	if st != nil {
		st.Workers = int64(workers)
	}
	results := make([][]int32, workers)
	var wg sync.WaitGroup
	var pb panicBox
	for w := 0; w < workers; w++ {
		from := lo + int32(size*int64(w)/int64(workers))
		to := lo + int32(size*int64(w+1)/int64(workers))
		wg.Add(1)
		go func(w int, from, to int32) {
			defer wg.Done()
			defer pb.capture()
			out := make([]int32, 0, to-from)
			for v := from; v < to; v++ {
				if keep(v) {
					out = append(out, v)
				}
			}
			results[w] = out
		}(w, from, to)
	}
	wg.Wait()
	pb.rethrow()
	return concat32(results)
}

// FilterScanParallel filters the pre range [lo, hi) through keep on up
// to `workers` goroutines, preserving document order — the exported
// face of parallelRangeScan for fragment rebuilds (the NoIndex column
// scans) under morsel-parallel execution. workers <= 1 scans serially.
func FilterScanParallel(lo, hi int32, workers int, keep func(int32) bool) []int32 {
	if workers <= 1 {
		out := make([]int32, 0, 64)
		for v := lo; v < hi; v++ {
			if keep(v) {
				out = append(out, v)
			}
		}
		return out
	}
	return parallelRangeScan(lo, hi, workers, nil, keep)
}

// mergeWorkerStats folds per-worker counters into the caller's Stats.
// ContextSize and Workers are owned by the parallel driver (workers see
// the already-pruned context, so their ContextSize would double count).
func mergeWorkerStats(dst *Stats, parts []Stats) {
	if dst == nil {
		return
	}
	for i := range parts {
		p := &parts[i]
		dst.PrunedSize += p.PrunedSize
		dst.Scanned += p.Scanned
		dst.Copied += p.Copied
		dst.Compared += p.Compared
		dst.Skipped += p.Skipped
		dst.Result += p.Result
	}
}

// concat32 joins per-worker result slices; the workers' pre ranges are
// disjoint and ascending, so concatenation preserves document order.
func concat32(parts [][]int32) []int32 {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]int32, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
