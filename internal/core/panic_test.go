package core

import (
	"strings"
	"sync"
	"testing"

	"staircase/internal/fault"
)

// TestPanicBoxRethrowsFirstWorkerPanic pins the batch-join containment
// contract: a panic on a raw worker goroutine is captured, wrapped as a
// fault.PanicError, and re-raised on the caller's goroutine after
// wg.Wait — never left to crash the process.
func TestPanicBoxRethrowsFirstWorkerPanic(t *testing.T) {
	var pb panicBox
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer pb.capture()
			if i%2 == 0 {
				panic("worker boom")
			}
		}(i)
	}
	wg.Wait()
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("rethrow did not re-raise the worker panic")
		}
		err, ok := v.(error)
		if !ok || !fault.IsPanic(err) {
			t.Fatalf("rethrew %T %v, want *fault.PanicError", v, v)
		}
		if !strings.Contains(err.Error(), "worker boom") {
			t.Fatalf("panic error %q lost the original value", err)
		}
	}()
	pb.rethrow()
	t.Fatal("unreachable: rethrow returned")
}

// TestPanicBoxNoopWithoutPanic pins that rethrow is a no-op on the
// clean path.
func TestPanicBoxNoopWithoutPanic(t *testing.T) {
	var pb panicBox
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer pb.capture()
	}()
	wg.Wait()
	pb.rethrow()
}

// newPanicMorsel builds a MorselCursor over hand-written tasks,
// bypassing the axis task builders, to exercise the worker poisoning
// path deterministically.
func newPanicMorsel(tasks []morselTask, workers int) *MorselCursor {
	m := &MorselCursor{
		tasks:     tasks,
		results:   make([][]int32, len(tasks)),
		ready:     make([]bool, len(tasks)),
		lookahead: 2 * workers,
		nworkers:  workers,
	}
	m.cond = sync.NewCond(&m.mu)
	m.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go m.worker()
	}
	return m
}

// TestMorselPanicPoisonsCursor pins the morsel containment contract: a
// panicking task surfaces from Next as a fault.PanicError instead of
// crashing the pool, the error is sticky, and Close still joins every
// worker.
func TestMorselPanicPoisonsCursor(t *testing.T) {
	tasks := []morselTask{
		func(st *Stats) []int32 { return []int32{1, 2} },
		func(st *Stats) []int32 { panic("task boom") },
		func(st *Stats) []int32 { return []int32{9} },
	}
	m := newPanicMorsel(tasks, 1)
	defer m.Close()
	var firstErr error
	for i := 0; i < len(tasks)+1; i++ {
		b, err := m.Next(make([]int32, 0, 8), 0)
		if err != nil {
			firstErr = err
			break
		}
		if b == nil {
			break
		}
	}
	if firstErr == nil {
		t.Fatal("Next never surfaced the task panic")
	}
	if !fault.IsPanic(firstErr) {
		t.Fatalf("Next returned %v, want *fault.PanicError", firstErr)
	}
	if _, err := m.Next(make([]int32, 0, 8), 0); err == nil {
		t.Fatal("poisoned cursor served another batch; the error must be sticky")
	}
}
