// Package core implements the staircase join of Grust, van Keulen and
// Teubner (VLDB 2003) — the paper's primary contribution.
//
// The staircase join evaluates an XPath axis step for an entire context
// node sequence against a pre/post encoded document in a single
// sequential scan. It encapsulates three pieces of tree knowledge:
//
//  1. Pruning (§3.1): context nodes whose axis regions are covered by
//     other context nodes are removed up front; for descendant/ancestor
//     the survivors form a proper staircase in the pre/post plane, for
//     following/preceding the context degenerates to a single node.
//  2. Partitioned scan (§3.2, Algorithm 2): the staircase splits the
//     plane into partitions, one per context node; scanning each
//     partition once yields the result duplicate-free and in document
//     order — no unique, no sort.
//  3. Skipping (§3.3, Algorithm 3) and estimation-based skipping (§4.2,
//     Algorithm 4): empty-region analysis (Figure 7) ends partition
//     scans early, and Equation (1) turns the bulk of each descendant
//     partition into a comparison-free copy phase, bounding post-rank
//     comparisons by h·|context|.
//  4. Partition-parallel execution (§3.2/§6, parallel.go): the pruned
//     staircase's partitions scan pairwise disjoint pre ranges, so the
//     staircase can be cut into contiguous chunks and joined on
//     independent workers whose results concatenate — already in
//     document order — without a merge. See PartitionStaircase and the
//     Parallel*Join variants.
//
// All functions operate on preorder ranks (int32) against a
// doc.Document; contexts are sequences of pre ranks in document order
// (strictly increasing), as XPath intermediate results always are.
package core

import (
	"fmt"

	"staircase/internal/axis"
	"staircase/internal/doc"
)

// Variant selects the scan strategy inside each staircase partition.
type Variant uint8

const (
	// NoSkip is the basic Algorithm 2: every node of every partition is
	// compared against the staircase boundary.
	NoSkip Variant = iota
	// Skip is Algorithm 3: the partition scan terminates at the first
	// node outside the boundary (descendant), or jumps over skipped
	// subtrees (ancestor), touching at most |result|+|context| nodes.
	Skip
	// SkipEstimate is Algorithm 4: Skip plus the Equation (1) estimate
	// that splits descendant partitions into a comparison-free copy
	// phase and a ≤ h-node scan phase. For axes other than descendant
	// it behaves like Skip.
	SkipEstimate
)

// String returns a short name for the variant.
func (v Variant) String() string {
	switch v {
	case NoSkip:
		return "noskip"
	case Skip:
		return "skip"
	case SkipEstimate:
		return "skip-estimate"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// Stats records the work a staircase join performed. The counters drive
// the paper's Experiment 2 (Figure 11 (c): nodes accessed per variant).
type Stats struct {
	// ContextSize is the context length before pruning.
	ContextSize int64
	// PrunedSize is the context length after pruning (the number of
	// staircase partitions).
	PrunedSize int64
	// Scanned counts document nodes touched by the scan: Copied+Compared.
	Scanned int64
	// Copied counts nodes emitted without a post-rank comparison
	// (estimation-based copy phase only).
	Copied int64
	// Compared counts nodes whose post rank was compared against the
	// staircase boundary.
	Compared int64
	// Skipped counts document nodes jumped over without being touched.
	Skipped int64
	// Result is the number of result nodes produced.
	Result int64
	// Workers is the number of parallel chunks a Parallel*Join actually
	// ran (after clamping to the staircase size and scan range); 0 for
	// serial execution.
	Workers int64
}

// add is a nil-safe counter bump helper used by the join loops.
func (s *Stats) addResult(n int64) {
	if s != nil {
		s.Result += n
	}
}

// Options configures a staircase join invocation. The zero value (and a
// nil *Options) requests the full paper configuration: estimation-based
// skipping, attribute filtering, pruning as a pre-pass.
type Options struct {
	// Variant selects NoSkip, Skip or SkipEstimate (default SkipEstimate
	// ... note: the zero value of Variant is NoSkip, so Options
	// explicitly distinguishes "unset"; use DefaultOptions for the
	// paper configuration).
	Variant Variant
	// KeepAttributes disables the attribute filter, delivering
	// attribute nodes like any other node. The paper filters attributes
	// on every axis but `attribute` (§3).
	KeepAttributes bool
	// PruneInline folds pruning into the partition loop instead of
	// running it as a separate pre-pass over the context (§3.2: the
	// join "is easily adapted to do pruning on-the-fly, thus saving a
	// separate scan over the context table").
	PruneInline bool
	// AssumePruned skips pruning entirely; the caller asserts the
	// context is already a proper staircase. Violating the assertion
	// yields wrong results (the paper: the basic algorithm "only works
	// correctly on proper staircases").
	AssumePruned bool
	// ScanLimit, when positive, bounds the last descendant partition to
	// pre ranks <= ScanLimit instead of the document end. It is the
	// building block of the partition-parallel execution strategy the
	// paper sketches in §3.2/§6: each worker joins a contiguous slice
	// of the staircase, delimited by the next worker's first context
	// node.
	ScanLimit int32
	// ScanStart, when positive, starts the first ancestor partition at
	// this pre rank instead of 0 (the parallel counterpart for the
	// ancestor axis).
	ScanStart int32
	// Stats, when non-nil, accumulates work counters.
	Stats *Stats
}

// DefaultOptions returns the paper's full configuration:
// estimation-based skipping with attribute filtering.
func DefaultOptions() *Options {
	return &Options{Variant: SkipEstimate}
}

func (o *Options) orDefault() *Options {
	if o == nil {
		return DefaultOptions()
	}
	return o
}

// Join evaluates an axis step along one of the four partitioning axes
// (descendant, ancestor, following, preceding) for the given context
// using the staircase join. The context must be in document order
// (strictly increasing pre ranks). The result is duplicate-free and in
// document order.
func Join(d *doc.Document, a axis.Axis, context []int32, opts *Options) ([]int32, error) {
	switch a {
	case axis.Descendant:
		return DescendantJoin(d, context, opts), nil
	case axis.Ancestor:
		return AncestorJoin(d, context, opts), nil
	case axis.Following:
		return FollowingJoin(d, context, opts), nil
	case axis.Preceding:
		return PrecedingJoin(d, context, opts), nil
	default:
		return nil, fmt.Errorf("core: staircase join does not handle axis %v", a)
	}
}

// --- pruning (§3.1, Algorithm 1) ------------------------------------------

// PruneDescendant removes context nodes covered by other context nodes
// for the descendant axis: a node is dropped iff it is a descendant of
// an earlier context node. The surviving sequence has strictly
// increasing pre AND post ranks — a proper staircase. The input must be
// in document order; duplicates are dropped as a side effect.
func PruneDescendant(d *doc.Document, context []int32) []int32 {
	post := d.PostSlice()
	out := make([]int32, 0, len(context))
	prev := int32(-1)
	for _, c := range context {
		if post[c] > prev {
			out = append(out, c)
			prev = post[c]
		}
	}
	return out
}

// PruneAncestor removes context nodes covered for the ancestor axis: a
// node is dropped iff it is an ancestor of a later context node (its
// ancestor-or-self path is a prefix of the other's, Figure 4). The
// surviving staircase again has strictly increasing pre and post ranks.
func PruneAncestor(d *doc.Document, context []int32) []int32 {
	post := d.PostSlice()
	out := make([]int32, 0, len(context))
	for i, c := range context {
		// c is an ancestor of the next context node iff the next node
		// lies in c's descendant window; descendants of c within the
		// context directly follow c (document order), so checking the
		// immediate successor suffices.
		if i+1 < len(context) {
			next := context[i+1]
			if post[next] < post[c] { // next is a descendant of c
				continue
			}
			if next == c { // duplicate
				continue
			}
		}
		out = append(out, c)
	}
	return out
}

// ReduceFollowing returns the single context node that determines the
// whole following-axis result: the node with minimum postorder rank
// (§3.1: "all context nodes can be pruned except ... the minimum
// postorder rank in case of following"). ok is false for empty contexts.
func ReduceFollowing(d *doc.Document, context []int32) (int32, bool) {
	if len(context) == 0 {
		return 0, false
	}
	post := d.PostSlice()
	best := context[0]
	for _, c := range context[1:] {
		if post[c] < post[best] {
			best = c
		}
	}
	return best, true
}

// ReducePreceding returns the single context node that determines the
// whole preceding-axis result: the node with maximum preorder rank.
func ReducePreceding(d *doc.Document, context []int32) (int32, bool) {
	if len(context) == 0 {
		return 0, false
	}
	// Context is in document order: the maximum pre rank is the last.
	return context[len(context)-1], true
}

// IsStaircaseDesc reports whether context is a proper descendant-axis
// staircase: strictly increasing pre and post ranks.
func IsStaircaseDesc(d *doc.Document, context []int32) bool {
	post := d.PostSlice()
	for i := 1; i < len(context); i++ {
		if context[i-1] >= context[i] || post[context[i-1]] >= post[context[i]] {
			return false
		}
	}
	return true
}

// --- descendant staircase join (§3.2–§4.2) --------------------------------

// DescendantJoin evaluates context/descendant with the staircase join.
func DescendantJoin(d *doc.Document, context []int32, opts *Options) []int32 {
	o := opts.orDefault()
	st := o.Stats
	if st != nil {
		st.ContextSize += int64(len(context))
	}
	if len(context) == 0 {
		return nil
	}
	if !o.AssumePruned && !o.PruneInline {
		context = PruneDescendant(d, context)
	}

	post := d.PostSlice()
	kind := d.KindSlice()
	n := int32(d.Size())
	if o.ScanLimit > 0 && o.ScanLimit < n-1 {
		n = o.ScanLimit + 1 // partitions end at pre rank ScanLimit
	}
	// A generous initial capacity: the last staircase step's boundary is
	// an upper bound for how far the scan can reach.
	result := make([]int32, 0, 1024)

	prevPost := int32(-1) // on-the-fly pruning state
	partitions := int64(0)

	emit := func(c int32, from, to int32) { // partition of c covers pres [from, to]
		partitions++
		result = scanPartitionDesc(result, post, kind, from, to, post[c], o, st)
	}

	for i := 0; i < len(context); i++ {
		c := context[i]
		if o.PruneInline && !o.AssumePruned {
			if post[c] <= prevPost {
				continue
			}
			prevPost = post[c]
		}
		// Find the partition end: pre of the next surviving context
		// node minus one, or the end of the document.
		to := n - 1
		for j := i + 1; j < len(context); j++ {
			cn := context[j]
			if o.PruneInline && !o.AssumePruned && post[cn] <= post[c] {
				continue // cn will be pruned; its pre does not bound us
			}
			to = cn - 1
			break
		}
		emit(c, c+1, to)
	}
	if st != nil {
		st.PrunedSize += partitions
		st.addResult(int64(len(result)))
	}
	return result
}

// scanPartitionDesc scans doc pres [from, to] against the descendant
// boundary post rank `bound` and appends qualifying nodes to result.
// It implements Algorithms 2 (NoSkip), 3 (Skip) and 4 (SkipEstimate).
func scanPartitionDesc(result []int32, post []int32, kind []doc.Kind,
	from, to, bound int32, o *Options, st *Stats) []int32 {

	if from > to {
		return result
	}
	i := from
	switch o.Variant {
	case NoSkip:
		for ; i <= to; i++ {
			if post[i] < bound {
				if o.KeepAttributes || kind[i] != doc.Attr {
					result = append(result, i)
				}
			}
		}
		if st != nil {
			st.Compared += int64(to - from + 1)
			st.Scanned += int64(to - from + 1)
		}
	case Skip:
		for ; i <= to; i++ {
			if post[i] < bound {
				if o.KeepAttributes || kind[i] != doc.Attr {
					result = append(result, i)
				}
			} else {
				break // skip: empty region of type Z (Figure 7 (b))
			}
		}
		if st != nil {
			touched := i - from
			if i <= to {
				touched++ // the breaking node was compared too
				st.Skipped += int64(to - i)
			}
			st.Compared += int64(touched)
			st.Scanned += int64(touched)
		}
	case SkipEstimate:
		// Copy phase: the first post(c)−pre(c) nodes after c are
		// guaranteed descendants (Equation (1) lower bound); the
		// partition starts at from = pre(c)+1, so the guaranteed range
		// ends at pre rank `bound` (= post(c)) or the partition end.
		estimate := bound
		if to < estimate {
			estimate = to
		}
		if o.KeepAttributes {
			// Comparison-free bulk emit of the pre range [from, estimate].
			if estimate >= i {
				base := len(result)
				result = append(result, make([]int32, int(estimate-i+1))...)
				for k := range result[base:] {
					result[base+k] = i + int32(k)
				}
				i = estimate + 1
			}
		} else {
			for ; i <= estimate; i++ {
				if kind[i] != doc.Attr {
					result = append(result, i)
				}
			}
		}
		if st != nil {
			copied := estimate - from + 1
			if copied > 0 {
				st.Copied += int64(copied)
				st.Scanned += int64(copied)
			}
		}
		// Scan phase: at most h further descendants.
		scanned := int64(0)
		for ; i <= to; i++ {
			scanned++
			if post[i] < bound {
				if o.KeepAttributes || kind[i] != doc.Attr {
					result = append(result, i)
				}
			} else {
				break
			}
		}
		if st != nil {
			st.Compared += scanned
			st.Scanned += scanned
			if i <= to {
				st.Skipped += int64(to - i)
			}
		}
	}
	return result
}
