package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"staircase/internal/axis"
	"staircase/internal/doc"
)

// testing/quick property tests over seed-generated documents and
// contexts: quick drives the seeds, so shrinking-style exploration of
// the input space is delegated to the deterministic generators.

// docFromSeed derives a random document and a non-empty document-order
// context from quick inputs; ctxBits varies the context density.
func docFromSeed(seed int64, ctxBits uint16) (*doc.Document, []int32) {
	rng := rand.New(rand.NewSource(seed ^ int64(ctxBits)<<17))
	d := randomDoc(rng, 80+int(uint16(seed)%120))
	density := 2 + int(ctxBits%12)
	var context []int32
	for v := 0; v < d.Size(); v++ {
		if rng.Intn(density) == 0 {
			context = append(context, int32(v))
		}
	}
	if len(context) == 0 {
		context = []int32{int32(int(ctxBits) % d.Size())}
	}
	return d, context
}

func TestQuickJoinEqualsSpec(t *testing.T) {
	f := func(seed int64, ctxBits uint16, axisPick uint8, variantPick uint8) bool {
		d, context := docFromSeed(seed, ctxBits)
		a := []axis.Axis{axis.Descendant, axis.Ancestor, axis.Following, axis.Preceding}[axisPick%4]
		v := []Variant{NoSkip, Skip, SkipEstimate}[variantPick%3]
		got, err := Join(d, a, context, &Options{Variant: v})
		if err != nil {
			return false
		}
		return eq32(got, specJoin(d, a, context))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParallelEqualsSerial(t *testing.T) {
	// The partition-parallel join must be byte-identical to the serial
	// join for every axis, variant and worker count: pruning makes the
	// staircase partitions disjoint, which is the whole point (§3.2/§6).
	f := func(seed int64, ctxBits uint16, axisPick, variantPick, workerPick uint8) bool {
		d, context := docFromSeed(seed, ctxBits)
		a := []axis.Axis{axis.Descendant, axis.Ancestor, axis.Following, axis.Preceding}[axisPick%4]
		v := []Variant{NoSkip, Skip, SkipEstimate}[variantPick%3]
		workers := 1 + int(workerPick%16)
		want, err1 := Join(d, a, context, &Options{Variant: v})
		got, err2 := ParallelJoin(d, a, context, workers, &Options{Variant: v})
		if err1 != nil || err2 != nil {
			return false
		}
		return eq32(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPruneIdempotent(t *testing.T) {
	f := func(seed int64, ctxBits uint16) bool {
		d, context := docFromSeed(seed, ctxBits)
		p1 := PruneDescendant(d, context)
		p2 := PruneDescendant(d, p1)
		if !eq32(p1, p2) {
			return false
		}
		a1 := PruneAncestor(d, context)
		a2 := PruneAncestor(d, a1)
		return eq32(a1, a2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickJoinMonotoneInContext(t *testing.T) {
	// Adding context nodes can only grow the result (axis steps are
	// unions of per-node regions).
	f := func(seed int64, ctxBits uint16) bool {
		d, context := docFromSeed(seed, ctxBits)
		if len(context) < 2 {
			return true
		}
		sub := context[:len(context)/2]
		for _, a := range []axis.Axis{axis.Descendant, axis.Ancestor} {
			small, err1 := Join(d, a, sub, nil)
			big, err2 := Join(d, a, context, nil)
			if err1 != nil || err2 != nil {
				return false
			}
			inBig := make(map[int32]bool, len(big))
			for _, v := range big {
				inBig[v] = true
			}
			for _, v := range small {
				if !inBig[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDescAncestorGaloisConnection(t *testing.T) {
	// v ∈ desc(c) ⇔ c ∈ anc(v): spot-check the adjunction through the
	// join results themselves.
	f := func(seed int64, ctxBits uint16) bool {
		d, context := docFromSeed(seed, ctxBits)
		c := context[0]
		desc, err := Join(d, axis.Descendant, []int32{c}, &Options{KeepAttributes: true})
		if err != nil {
			return false
		}
		for i := 0; i < len(desc) && i < 10; i++ {
			anc, err := Join(d, axis.Ancestor, []int32{desc[i]}, &Options{KeepAttributes: true})
			if err != nil {
				return false
			}
			found := false
			for _, u := range anc {
				if u == c {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOrSelfSupersets(t *testing.T) {
	f := func(seed int64, ctxBits uint16) bool {
		d, context := docFromSeed(seed, ctxBits)
		desc, err := Join(d, axis.Descendant, context, nil)
		if err != nil {
			return false
		}
		merged := MergeOrSelf(desc, context)
		// merged is strictly increasing and contains both inputs.
		for i := 1; i < len(merged); i++ {
			if merged[i-1] >= merged[i] {
				return false
			}
		}
		return len(merged) >= len(desc) && len(merged) >= len(context)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
