// Resumable staircase joins over pre-sorted node lists (index
// fragments) — the streaming counterparts of nodelist.go. Partition
// boundaries, copy-phase guarantees, subtree jumps and seek targets
// are all located by binary search on the list, so early-terminating
// consumers touch only the fragment entries they actually consume.

package core

import (
	"staircase/internal/doc"
)

// --- descendant ∩ list -----------------------------------------------------

type descListCursor struct {
	d    *doc.Document
	post []int32
	kind []doc.Kind
	list []int32
	src  NodeSource
	o    *Options

	inPart   bool
	li, end  int // current scan index and partition end (exclusive)
	guar     int // copy-phase end (exclusive; SkipEstimate)
	bound    int32
	prevPost int32
	pending  int32
	hasPend  bool
	srcDone  bool
	done     bool
}

func (c *descListCursor) nextSurvivor() (int32, bool, error) {
	for {
		v, ok, err := c.src()
		if err != nil || !ok {
			return 0, false, err
		}
		c.o.Stats.addContext(1)
		if c.post[v] > c.prevPost {
			c.prevPost = c.post[v]
			return v, true, nil
		}
	}
}

func (c *descListCursor) startPartition() (bool, error) {
	var owner int32
	if c.hasPend {
		owner, c.hasPend = c.pending, false
	} else if c.srcDone {
		return false, nil
	} else {
		v, ok, err := c.nextSurvivor()
		if err != nil {
			return false, err
		}
		if !ok {
			c.srcDone = true
			return false, nil
		}
		owner = v
	}
	if !c.srcDone {
		v, ok, err := c.nextSurvivor()
		if err != nil {
			return false, err
		}
		if ok {
			c.pending, c.hasPend = v, true
		} else {
			c.srcDone = true
		}
	}
	// Partition of owner within the list: entries with pre > owner, up
	// to the next surviving context node.
	if c.li < len(c.list) && c.list[c.li] <= owner {
		c.li = searchList(c.list[c.li:], owner+1) + c.li
	}
	c.end = len(c.list)
	if c.hasPend {
		c.end = searchList(c.list, c.pending)
	}
	c.bound = c.post[owner]
	c.guar = c.li
	if c.o.Variant == SkipEstimate {
		// Copy phase: list entries with pre <= post(owner) are
		// guaranteed descendants (Equation (1) lower bound).
		c.guar = searchList(c.list[c.li:c.end], c.bound+1) + c.li
	}
	c.inPart = true
	c.o.Stats.addPruned(1)
	return true, nil
}

func (c *descListCursor) Next(dst []int32, seek int32) ([]int32, error) {
	if c.done {
		return nil, nil
	}
	if len(c.list) == 0 {
		c.done = true
		return nil, nil
	}
	st := c.o.Stats
	for {
		if !c.inPart {
			ok, err := c.startPartition()
			if err != nil {
				return nil, err
			}
			if !ok {
				c.done = true
				if len(dst) == 0 {
					st.addResult(0)
					return nil, nil
				}
				st.addResult(int64(len(dst)))
				return dst, nil
			}
		}
		if seek > 0 && c.li < c.end && c.list[c.li] < seek {
			j := searchList(c.list[c.li:c.end], seek) + c.li
			st.addSkipped(int64(j - c.li))
			c.li = j
		}
		for c.li < c.guar && len(dst) < cap(dst) {
			v := c.list[c.li]
			if c.o.KeepAttributes || c.kind[v] != doc.Attr {
				dst = append(dst, v)
			}
			st.addCopied(1)
			c.li++
		}
		if c.li < c.guar {
			st.addResult(int64(len(dst)))
			return dst, nil
		}
		for c.li < c.end && len(dst) < cap(dst) {
			v := c.list[c.li]
			st.addCompared(1)
			if c.post[v] < c.bound {
				if c.o.KeepAttributes || c.kind[v] != doc.Attr {
					dst = append(dst, v)
				}
				c.li++
				continue
			}
			if c.o.Variant == NoSkip {
				c.li++
				continue
			}
			st.addSkipped(int64(c.end - c.li - 1))
			c.li = c.end
		}
		if c.li >= c.end {
			c.inPart = false
			continue
		}
		st.addResult(int64(len(dst)))
		return dst, nil
	}
}

// --- ancestor ∩ list -------------------------------------------------------

type ancListCursor struct {
	d    *doc.Document
	post []int32
	kind []doc.Kind
	list []int32
	src  NodeSource
	o    *Options

	inPart  bool
	li, end int
	bound   int32
	cand    int32
	hasCand bool
	srcDone bool
	done    bool
}

func (c *ancListCursor) nextSurvivor() (int32, bool, error) {
	for {
		if !c.hasCand {
			if c.srcDone {
				return 0, false, nil
			}
			v, ok, err := c.src()
			if err != nil {
				return 0, false, err
			}
			if !ok {
				c.srcDone = true
				return 0, false, nil
			}
			c.o.Stats.addContext(1)
			c.cand, c.hasCand = v, true
		}
		if c.srcDone {
			c.hasCand = false
			return c.cand, true, nil
		}
		nxt, ok, err := c.src()
		if err != nil {
			return 0, false, err
		}
		if !ok {
			c.srcDone = true
			c.hasCand = false
			return c.cand, true, nil
		}
		c.o.Stats.addContext(1)
		if nxt == c.cand || c.post[nxt] < c.post[c.cand] {
			c.cand = nxt
			continue
		}
		survivor := c.cand
		c.cand = nxt
		return survivor, true, nil
	}
}

func (c *ancListCursor) Next(dst []int32, seek int32) ([]int32, error) {
	if c.done {
		return nil, nil
	}
	if len(c.list) == 0 {
		c.done = true
		return nil, nil
	}
	st := c.o.Stats
	for {
		if !c.inPart {
			owner, ok, err := c.nextSurvivor()
			if err != nil {
				return nil, err
			}
			if !ok {
				c.done = true
				if len(dst) == 0 {
					st.addResult(0)
					return nil, nil
				}
				st.addResult(int64(len(dst)))
				return dst, nil
			}
			c.end = searchList(c.list, owner) // entries with pre < owner
			c.bound = c.post[owner]
			c.inPart = true
			st.addPruned(1)
		}
		if seek > 0 && c.li < c.end && c.list[c.li] < seek {
			j := searchList(c.list[c.li:c.end], seek) + c.li
			st.addSkipped(int64(j - c.li))
			c.li = j
		}
		for c.li < c.end && len(dst) < cap(dst) {
			v := c.list[c.li]
			st.addCompared(1)
			if c.post[v] > c.bound {
				if c.o.KeepAttributes || c.kind[v] != doc.Attr {
					dst = append(dst, v)
				}
				c.li++
				continue
			}
			if c.o.Variant == NoSkip {
				c.li++
				continue
			}
			// v's whole subtree precedes the boundary node: jump past it
			// within the list by binary search.
			next := searchList(c.list[c.li+1:c.end], v+1+c.d.SubtreeSize(v)) + c.li + 1
			st.addSkipped(int64(next - c.li - 1))
			c.li = next
		}
		if c.li >= c.end {
			c.inPart = false
			continue
		}
		st.addResult(int64(len(dst)))
		return dst, nil
	}
}

// --- following / preceding ∩ list ------------------------------------------

type folListCursor struct {
	d    *doc.Document
	kind []doc.Kind
	list []int32
	src  NodeSource
	o    *Options

	li     int
	inited bool
	done   bool
}

func (c *folListCursor) Next(dst []int32, seek int32) ([]int32, error) {
	if c.done {
		return nil, nil
	}
	st := c.o.Stats
	if !c.inited {
		post := c.d.PostSlice()
		best := int32(-1)
		for {
			v, ok, err := c.src()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			st.addContext(1)
			if best < 0 || post[v] < post[best] {
				best = v
			}
		}
		c.inited = true
		if best < 0 || len(c.list) == 0 {
			c.done = true
			return nil, nil
		}
		st.addPruned(1)
		c.li = searchList(c.list, best+1+c.d.SubtreeSize(best))
	}
	if seek > 0 && c.li < len(c.list) && c.list[c.li] < seek {
		j := searchList(c.list[c.li:], seek) + c.li
		st.addSkipped(int64(j - c.li))
		c.li = j
	}
	for c.li < len(c.list) && len(dst) < cap(dst) {
		v := c.list[c.li]
		if c.o.KeepAttributes || c.kind[v] != doc.Attr {
			dst = append(dst, v)
		}
		st.addCopied(1)
		c.li++
	}
	if c.li >= len(c.list) && len(dst) < cap(dst) {
		c.done = true
	}
	if len(dst) == 0 {
		c.done = true
		st.addResult(0)
		return nil, nil
	}
	st.addResult(int64(len(dst)))
	return dst, nil
}

type precListCursor struct {
	d    *doc.Document
	post []int32
	kind []doc.Kind
	list []int32
	src  NodeSource
	o    *Options

	li, end int
	bound   int32
	inited  bool
	done    bool
}

func (c *precListCursor) Next(dst []int32, seek int32) ([]int32, error) {
	if c.done {
		return nil, nil
	}
	st := c.o.Stats
	if !c.inited {
		last := int32(-1)
		for {
			v, ok, err := c.src()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			st.addContext(1)
			last = v
		}
		c.inited = true
		if last < 0 || len(c.list) == 0 {
			c.done = true
			return nil, nil
		}
		st.addPruned(1)
		c.end = searchList(c.list, last)
		c.bound = c.post[last]
	}
	if seek > 0 && c.li < c.end && c.list[c.li] < seek {
		j := searchList(c.list[c.li:c.end], seek) + c.li
		st.addSkipped(int64(j - c.li))
		c.li = j
	}
	for c.li < c.end && len(dst) < cap(dst) {
		v := c.list[c.li]
		st.addCompared(1)
		if c.post[v] < c.bound {
			if c.o.KeepAttributes || c.kind[v] != doc.Attr {
				dst = append(dst, v)
			}
		}
		c.li++
	}
	if c.li >= c.end && len(dst) < cap(dst) {
		c.done = true
	}
	if len(dst) == 0 {
		c.done = true
		st.addResult(0)
		return nil, nil
	}
	st.addResult(int64(len(dst)))
	return dst, nil
}
