// Benchmark-regression gate: a small, fixed family of staircase-join
// benchmarks that CI measures on every commit and compares against a
// committed baseline (BENCH_baseline.json). The family covers the four
// partitioning-axis joins plus full Q1/Q2 engine evaluation, i.e. the
// hot paths every perf-oriented PR touches. cmd/benchrun drives it via
// -gate / -write-baseline.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"testing"

	"staircase/internal/core"
	"staircase/internal/engine"
)

// BenchPoint is one benchmark measurement, JSON-stable for baselines.
type BenchPoint struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"nsPerOp"`
}

// Baseline is the persisted form of a gate run (BENCH_baseline.json).
type Baseline struct {
	Family string       `json:"family"`
	SizeMB float64      `json:"sizeMB"`
	Runs   int          `json:"runs"`
	Points []BenchPoint `json:"points"`
}

// smokeSizeMB is the document size of the gate family: big enough that
// per-op time is dominated by the join scans, small enough that the
// whole gate (family × runs) finishes in well under a minute.
const smokeSizeMB = 0.5

// smokeFamily enumerates the gated benchmarks over one corpus document.
func smokeFamily(c *Corpus) []struct {
	name string
	fn   func(b *testing.B)
} {
	d := c.Doc(smokeSizeMB)
	cx := getContexts(d)
	e := engine.New(d)
	evalQ := func(q string) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.EvalString(q, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"StaircaseDescendant", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.DescendantJoin(d, cx.profiles, nil)
			}
		}},
		{"StaircaseAncestor", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.AncestorJoin(d, cx.increases, nil)
			}
		}},
		{"StaircaseFollowing", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.FollowingJoin(d, cx.increases, nil)
			}
		}},
		{"StaircasePreceding", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.PrecedingJoin(d, cx.increases, nil)
			}
		}},
		{"EngineQ1", evalQ(Q1)},
		{"EngineQ2", evalQ(Q2)},
	}
}

// RunSmoke measures the gate family. Each benchmark runs `runs` times
// and the fastest run is reported — the same noise-robust statistic
// timeIt uses for the paper experiments: scheduler preemption and
// frequency scaling only ever make code *slower*, so the minimum tracks
// the code's true cost far more stably than the mean (and, on shared
// runners, than the median of few runs).
func RunSmoke(c *Corpus, runs int) []BenchPoint {
	if runs < 1 {
		runs = 1
	}
	var points []BenchPoint
	for _, bm := range smokeFamily(c) {
		samples := make([]float64, 0, runs)
		for r := 0; r < runs; r++ {
			res := testing.Benchmark(bm.fn)
			samples = append(samples, float64(res.NsPerOp()))
		}
		sort.Float64s(samples)
		points = append(points, BenchPoint{Name: bm.name, NsPerOp: samples[0]})
	}
	return points
}

// CheckRegression compares current measurements against a baseline and
// returns one message per benchmark regressing by more than tol
// (0.25 = 25%). Benchmarks missing from the current run also fail;
// benchmarks new since the baseline are ignored (they gate once the
// baseline is regenerated).
//
// The baseline host and the measuring host (a CI runner) generally
// differ in absolute speed, which shifts every benchmark of the family
// by roughly the same factor. The check therefore normalises each
// current/baseline ratio by the family's median ratio before applying
// the tolerance — a code regression hits specific benchmarks and sticks
// out of the family trend, while a uniformly slower machine does not.
// The scale is clamped at 1 so that a uniformly *faster* machine (or a
// PR that genuinely speeds up half the family) never turns unchanged
// benchmarks into false regressions.
func CheckRegression(baseline, current []BenchPoint, tol float64) []string {
	cur := make(map[string]float64, len(current))
	for _, p := range current {
		cur[p.Name] = p.NsPerOp
	}
	var ratios []float64
	for _, b := range baseline {
		if c, ok := cur[b.Name]; ok && b.NsPerOp > 0 {
			ratios = append(ratios, c/b.NsPerOp)
		}
	}
	scale := 1.0
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		if m := ratios[len(ratios)/2]; m > scale {
			scale = m
		}
	}
	var failures []string
	for _, b := range baseline {
		c, ok := cur[b.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but not measured", b.Name))
			continue
		}
		if b.NsPerOp > 0 && c > b.NsPerOp*scale*(1+tol) {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (+%.1f%% after %.2fx machine normalisation, limit +%.0f%%)",
				b.Name, c, b.NsPerOp, 100*(c/(b.NsPerOp*scale)-1), scale, 100*tol))
		}
	}
	return failures
}

// WriteBaseline serializes a gate run.
func WriteBaseline(w io.Writer, points []BenchPoint, runs int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Baseline{
		Family: "staircase-join-smoke",
		SizeMB: smokeSizeMB,
		Runs:   runs,
		Points: points,
	})
}

// ReadBaseline deserializes a gate baseline.
func ReadBaseline(r io.Reader) (Baseline, error) {
	var b Baseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return Baseline{}, err
	}
	if len(b.Points) == 0 {
		return Baseline{}, fmt.Errorf("baseline has no benchmark points")
	}
	return b, nil
}
