package xpath

import "testing"

func TestParseNumber(t *testing.T) {
	cases := []struct {
		in string
		f  float64
		ok bool
	}{
		{"100", 100, true},
		{"10.5", 10.5, true},
		{" 42 ", 42, true},
		{"\t0.25\n", 0.25, true},
		{"-3", -3, true},
		{"1e3", 1000, true},
		{"", 0, false},
		{"abc", 0, false},
		{"12x", 0, false},
		{"NaN", 0, false},
		{"Inf", 0, false},
		{"-Inf", 0, false},
	}
	for _, c := range cases {
		f, ok := ParseNumber(c.in)
		if ok != c.ok || (ok && f != c.f) {
			t.Errorf("ParseNumber(%q) = %v, %v; want %v, %v", c.in, f, ok, c.f, c.ok)
		}
	}
}

func TestCompareValue(t *testing.T) {
	cases := []struct {
		s       string
		op      CompareOp
		lit     string
		numeric bool
		want    bool
	}{
		// String comparisons are bytewise.
		{"abc", OpEq, "abc", false, true},
		{"abc", OpNe, "abc", false, false},
		{"abc", OpLt, "abd", false, true},
		{"10", OpLt, "9", false, true}, // lexicographic, not numeric
		{"b", OpGe, "b", false, true},
		{"b", OpGt, "b", false, false},
		{"", OpLe, "", false, true},
		// Numeric comparisons convert both sides.
		{"100", OpEq, "100.0", true, true},
		{"10", OpLt, "9", true, false},
		{" 99.5 ", OpGt, "99", true, true},
		{"100", OpGe, "100", true, true},
		{"100", OpNe, "100.0", true, false},
		{"7", OpNe, "8", true, true},
		// Non-numeric values never match numerically — under any op.
		{"abc", OpEq, "5", true, false},
		{"abc", OpNe, "5", true, false},
		{"", OpLt, "5", true, false},
		{"NaN", OpEq, "5", true, false},
	}
	for _, c := range cases {
		if got := CompareValue(c.s, c.op, c.lit, c.numeric); got != c.want {
			t.Errorf("CompareValue(%q, %v, %q, numeric=%v) = %v, want %v",
				c.s, c.op, c.lit, c.numeric, got, c.want)
		}
	}
}
