package xpath

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"staircase/internal/axis"
)

// Parse parses a single XPath location path (no top-level union).
// Diagnostics carry the byte offset of the offending token, e.g.
// "xpath: offset 12: trailing input at "]"".
func Parse(input string) (Path, error) {
	p := &parser{lex: newLexer(input)}
	path, err := p.parsePath()
	if err != nil {
		return Path{}, err
	}
	if t := p.lex.peek(); t.kind != tokEOF {
		return Path{}, fmt.Errorf("xpath: offset %d: trailing input at %q", t.off, t.text)
	} else if t.text != "" {
		return Path{}, fmt.Errorf("xpath: offset %d: %s", t.off, t.text)
	}
	return path, nil
}

// ParseQuery parses a top-level expression: one or more location paths
// combined with the '|' union operator. Like Parse, diagnostics carry
// the byte offset of the offending token.
func ParseQuery(input string) (Query, error) {
	p := &parser{lex: newLexer(input)}
	var q Query
	for {
		path, err := p.parsePath()
		if err != nil {
			return Query{}, err
		}
		q.Paths = append(q.Paths, path)
		switch t := p.lex.peek(); t.kind {
		case tokPipe:
			p.lex.next()
		case tokEOF:
			if t.text != "" {
				return Query{}, fmt.Errorf("xpath: offset %d: %s", t.off, t.text)
			}
			return q, nil
		default:
			return Query{}, fmt.Errorf("xpath: offset %d: trailing input at %q", t.off, t.text)
		}
	}
}

// MustParse parses a path and panics on error; for tests and constants.
func MustParse(input string) Path {
	p, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return p
}

// --- lexer -----------------------------------------------------------------

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokSlash
	tokDSlash // //
	tokName
	tokAt      // @
	tokStar    // *
	tokLParen  // (
	tokRParen  // )
	tokLBrack  // [
	tokRBrack  // ]
	tokDot     // .
	tokDotDot  // ..
	tokAxisSep // ::
	tokEq      // =
	tokNe      // !=
	tokLt      // <
	tokLe      // <=
	tokGt      // >
	tokGe      // >=
	tokComma   // ,
	tokString  // 'lit' or "lit"
	tokNumber  // 123 or 123.45
	tokPipe    // |
)

type token struct {
	kind tokKind
	text string
	off  int // byte offset of the token's first character in the input
}

type lexer struct {
	input string
	pos   int
	cur   token
	has   bool
}

func newLexer(in string) *lexer { return &lexer{input: in} }

func (l *lexer) peek() token {
	if !l.has {
		l.cur = l.scan()
		l.has = true
	}
	return l.cur
}

func (l *lexer) next() token {
	t := l.peek()
	l.has = false
	return t
}

func isNameStart(r byte) bool {
	return r == '_' || unicode.IsLetter(rune(r))
}

func isNameChar(r byte) bool {
	return r == '_' || r == '-' || unicode.IsLetter(rune(r)) || unicode.IsDigit(rune(r))
}

func (l *lexer) scan() token {
	for l.pos < len(l.input) && (l.input[l.pos] == ' ' || l.input[l.pos] == '\t' || l.input[l.pos] == '\n') {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, off: start}
	}
	c := l.input[l.pos]
	switch c {
	case '/':
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == '/' {
			l.pos += 2
			return token{kind: tokDSlash, text: "//", off: start}
		}
		l.pos++
		return token{kind: tokSlash, text: "/", off: start}
	case '@':
		l.pos++
		return token{kind: tokAt, text: "@", off: start}
	case '*':
		l.pos++
		return token{kind: tokStar, text: "*", off: start}
	case '(':
		l.pos++
		return token{kind: tokLParen, text: "(", off: start}
	case ')':
		l.pos++
		return token{kind: tokRParen, text: ")", off: start}
	case '[':
		l.pos++
		return token{kind: tokLBrack, text: "[", off: start}
	case ']':
		l.pos++
		return token{kind: tokRBrack, text: "]", off: start}
	case '|':
		l.pos++
		return token{kind: tokPipe, text: "|", off: start}
	case '=':
		l.pos++
		return token{kind: tokEq, text: "=", off: start}
	case '<':
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokLe, text: "<=", off: start}
		}
		l.pos++
		return token{kind: tokLt, text: "<", off: start}
	case '>':
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokGe, text: ">=", off: start}
		}
		l.pos++
		return token{kind: tokGt, text: ">", off: start}
	case ',':
		l.pos++
		return token{kind: tokComma, text: ",", off: start}
	case '!':
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokNe, text: "!=", off: start}
		}
		l.pos++
		return token{kind: tokEOF, text: "!", off: start} // lone '!' surfaces as parse error
	case ':':
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == ':' {
			l.pos += 2
			return token{kind: tokAxisSep, text: "::", off: start}
		}
		l.pos++
		return token{kind: tokEOF, text: ":", off: start}
	case '.':
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == '.' {
			l.pos += 2
			return token{kind: tokDotDot, text: "..", off: start}
		}
		l.pos++
		return token{kind: tokDot, text: ".", off: start}
	case '\'', '"':
		quote := c
		end := l.pos + 1
		for end < len(l.input) && l.input[end] != quote {
			end++
		}
		if end >= len(l.input) {
			return token{kind: tokEOF, text: "unterminated string", off: start}
		}
		s := l.input[l.pos+1 : end]
		l.pos = end + 1
		return token{kind: tokString, text: s, off: start}
	}
	if c >= '0' && c <= '9' {
		end := l.pos
		for end < len(l.input) && l.input[end] >= '0' && l.input[end] <= '9' {
			end++
		}
		// A decimal fraction joins the number only when a digit follows
		// the dot, so "1." stays NUMBER '.' and "1.5" is one token.
		if end+1 < len(l.input) && l.input[end] == '.' && l.input[end+1] >= '0' && l.input[end+1] <= '9' {
			end += 2
			for end < len(l.input) && l.input[end] >= '0' && l.input[end] <= '9' {
				end++
			}
		}
		t := token{kind: tokNumber, text: l.input[l.pos:end], off: start}
		l.pos = end
		return t
	}
	if isNameStart(c) {
		end := l.pos
		for end < len(l.input) && isNameChar(l.input[end]) {
			end++
		}
		t := token{kind: tokName, text: l.input[l.pos:end], off: start}
		l.pos = end
		return t
	}
	bad := string(c)
	l.pos++
	return token{kind: tokEOF, text: "unexpected character " + bad, off: start}
}

// --- parser ----------------------------------------------------------------

type parser struct {
	lex *lexer
}

// errf builds a diagnostic anchored at the byte offset of the token
// the parser is currently looking at.
func (p *parser) errf(format string, args ...any) error {
	return p.errAt(p.lex.peek().off, format, args...)
}

// errAt builds a diagnostic anchored at an explicit byte offset.
func (p *parser) errAt(off int, format string, args ...any) error {
	return fmt.Errorf("xpath: offset %d: "+format, append([]any{off}, args...)...)
}

// parsePath parses an (absolute or relative) location path.
func (p *parser) parsePath() (Path, error) {
	var path Path
	switch p.lex.peek().kind {
	case tokSlash:
		p.lex.next()
		path.Absolute = true
		if p.lex.peek().kind == tokEOF {
			// "/" alone: the root. Represent as absolute self::node().
			path.Steps = append(path.Steps, Step{Axis: axis.Self, Test: NodeTest{Kind: TestNode}})
			return path, nil
		}
	case tokDSlash:
		p.lex.next()
		path.Absolute = true
		path.Steps = append(path.Steps, Step{Axis: axis.DescendantOrSelf, Test: NodeTest{Kind: TestNode}})
	}
	for {
		step, err := p.parseStep()
		if err != nil {
			return Path{}, err
		}
		path.Steps = append(path.Steps, step)
		switch p.lex.peek().kind {
		case tokSlash:
			p.lex.next()
		case tokDSlash:
			p.lex.next()
			path.Steps = append(path.Steps, Step{Axis: axis.DescendantOrSelf, Test: NodeTest{Kind: TestNode}})
		default:
			return path, nil
		}
	}
}

// parseStep parses one location step including predicates.
func (p *parser) parseStep() (Step, error) {
	var step Step
	tok := p.lex.peek()
	switch tok.kind {
	case tokDot:
		p.lex.next()
		step = Step{Axis: axis.Self, Test: NodeTest{Kind: TestNode}}
	case tokDotDot:
		p.lex.next()
		step = Step{Axis: axis.Parent, Test: NodeTest{Kind: TestNode}}
	case tokAt:
		p.lex.next()
		test, err := p.parseNodeTest()
		if err != nil {
			return Step{}, err
		}
		step = Step{Axis: axis.Attribute, Test: test}
	case tokName:
		// Either "axis::..." or a child-axis name test (possibly a
		// kind test like text()).
		name := tok.text
		p.lex.next()
		if p.lex.peek().kind == tokAxisSep {
			p.lex.next()
			a, err := axis.Parse(name)
			if err != nil {
				return Step{}, p.errAt(tok.off, "unknown axis %q", name)
			}
			test, err := p.parseNodeTest()
			if err != nil {
				return Step{}, err
			}
			step = Step{Axis: a, Test: test}
		} else {
			test, err := p.finishNodeTest(name)
			if err != nil {
				return Step{}, err
			}
			step = Step{Axis: axis.Child, Test: test}
		}
	case tokStar:
		p.lex.next()
		step = Step{Axis: axis.Child, Test: NodeTest{Kind: TestAny}}
	default:
		return Step{}, p.errf("expected location step, got %q", tok.text)
	}
	for p.lex.peek().kind == tokLBrack {
		p.lex.next()
		pred, err := p.parsePredicate()
		if err != nil {
			return Step{}, err
		}
		if p.lex.peek().kind != tokRBrack {
			return Step{}, p.errf("expected ']', got %q", p.lex.peek().text)
		}
		p.lex.next()
		step.Preds = append(step.Preds, pred)
	}
	return step, nil
}

// parseNodeTest parses a node test starting at the current token.
func (p *parser) parseNodeTest() (NodeTest, error) {
	tok := p.lex.peek()
	switch tok.kind {
	case tokStar:
		p.lex.next()
		return NodeTest{Kind: TestAny}, nil
	case tokName:
		p.lex.next()
		return p.finishNodeTest(tok.text)
	default:
		return NodeTest{}, p.errf("expected node test, got %q", tok.text)
	}
}

// finishNodeTest resolves a name that may turn out to be a kind test
// such as node() or text().
func (p *parser) finishNodeTest(name string) (NodeTest, error) {
	if p.lex.peek().kind != tokLParen {
		return NodeTest{Kind: TestName, Name: name}, nil
	}
	p.lex.next() // consume '('
	var arg string
	if p.lex.peek().kind == tokString || p.lex.peek().kind == tokName {
		arg = p.lex.next().text
	}
	if p.lex.peek().kind != tokRParen {
		return NodeTest{}, p.errf("expected ')' after %s(", name)
	}
	p.lex.next()
	switch name {
	case "node":
		return NodeTest{Kind: TestNode}, nil
	case "text":
		return NodeTest{Kind: TestText}, nil
	case "comment":
		return NodeTest{Kind: TestComment}, nil
	case "processing-instruction":
		return NodeTest{Kind: TestPI, Name: arg}, nil
	default:
		return NodeTest{}, p.errf("unknown kind test %s()", name)
	}
}

// parsePredicate parses the expression inside [...]: a term chain
// combined with 'and'/'or' ('and' binds tighter, per XPath).
func (p *parser) parsePredicate() (Predicate, error) {
	return p.parseOrExpr()
}

// parseOrExpr parses andExpr ('or' andExpr)*.
func (p *parser) parseOrExpr() (Predicate, error) {
	first, err := p.parseAndExpr()
	if err != nil {
		return nil, err
	}
	preds := []Predicate{first}
	for p.lex.peek().kind == tokName && p.lex.peek().text == "or" {
		p.lex.next()
		next, err := p.parseAndExpr()
		if err != nil {
			return nil, err
		}
		preds = append(preds, next)
	}
	if len(preds) == 1 {
		return first, nil
	}
	return Or{Preds: preds}, nil
}

// parseAndExpr parses term ('and' term)*.
func (p *parser) parseAndExpr() (Predicate, error) {
	first, err := p.parsePredTerm()
	if err != nil {
		return nil, err
	}
	preds := []Predicate{first}
	for p.lex.peek().kind == tokName && p.lex.peek().text == "and" {
		p.lex.next()
		next, err := p.parsePredTerm()
		if err != nil {
			return nil, err
		}
		preds = append(preds, next)
	}
	if len(preds) == 1 {
		return first, nil
	}
	return And{Preds: preds}, nil
}

// parsePredTerm parses a single predicate term.
func (p *parser) parsePredTerm() (Predicate, error) {
	tok := p.lex.peek()
	switch tok.kind {
	case tokNumber:
		p.lex.next()
		n, err := strconv.Atoi(tok.text)
		if err != nil || n < 1 {
			return nil, p.errAt(tok.off, "bad position %q", tok.text)
		}
		return Position{N: n}, nil
	case tokName:
		switch tok.text {
		case "position":
			// position() = N
			save := *p.lex
			p.lex.next()
			if p.lex.peek().kind == tokLParen {
				p.lex.next()
				if p.lex.peek().kind != tokRParen {
					return nil, p.errf("expected ')' after position(")
				}
				p.lex.next()
				if p.lex.peek().kind != tokEq {
					return nil, p.errf("expected '=' after position()")
				}
				p.lex.next()
				num := p.lex.next()
				if num.kind != tokNumber {
					return nil, p.errAt(num.off, "expected number after position()=")
				}
				n, err := strconv.Atoi(num.text)
				if err != nil || n < 1 {
					return nil, p.errAt(num.off, "bad position %q", num.text)
				}
				return Position{N: n}, nil
			}
			*p.lex = save // it was a path starting with element "position"
		case "last":
			save := *p.lex
			p.lex.next()
			if p.lex.peek().kind == tokLParen {
				p.lex.next()
				if p.lex.peek().kind != tokRParen {
					return nil, p.errf("expected ')' after last(")
				}
				p.lex.next()
				return Last{}, nil
			}
			*p.lex = save
		case "not":
			save := *p.lex
			p.lex.next()
			if p.lex.peek().kind == tokLParen {
				p.lex.next()
				inner, err := p.parsePredicate()
				if err != nil {
					return nil, err
				}
				if p.lex.peek().kind != tokRParen {
					return nil, p.errf("expected ')' after not(...")
				}
				p.lex.next()
				return Not{Inner: inner}, nil
			}
			*p.lex = save
		case "contains":
			save := *p.lex
			p.lex.next()
			if p.lex.peek().kind == tokLParen {
				p.lex.next()
				path, err := p.parsePath()
				if err != nil {
					return nil, err
				}
				if p.lex.peek().kind != tokComma {
					return nil, p.errf("expected ',' in contains(...), got %q", p.lex.peek().text)
				}
				p.lex.next()
				lit := p.lex.next()
				if lit.kind != tokString {
					if lit.kind == tokEOF && lit.text != "" {
						return nil, p.errAt(lit.off, "%s", lit.text)
					}
					return nil, p.errAt(lit.off, "expected string literal in contains(...), got %q", lit.text)
				}
				if p.lex.peek().kind != tokRParen {
					return nil, p.errf("expected ')' after contains(...), got %q", p.lex.peek().text)
				}
				p.lex.next()
				return Contains{Path: path, Literal: lit.text}, nil
			}
			*p.lex = save // it was a path starting with element "contains"
		}
	}
	// Otherwise: a relative (or absolute) path, optionally compared to
	// a literal.
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	switch p.lex.peek().kind {
	case tokEq, tokNe, tokLt, tokLe, tokGt, tokGe:
		var op CompareOp
		switch p.lex.next().kind {
		case tokEq:
			op = OpEq
		case tokNe:
			op = OpNe
		case tokLt:
			op = OpLt
		case tokLe:
			op = OpLe
		case tokGt:
			op = OpGt
		case tokGe:
			op = OpGe
		}
		lit := p.lex.next()
		switch lit.kind {
		case tokString:
			return Compare{Path: path, Op: op, Literal: lit.text}, nil
		case tokNumber:
			if _, ok := ParseNumber(lit.text); !ok {
				return nil, p.errAt(lit.off, "bad number %q", lit.text)
			}
			return Compare{Path: path, Op: op, Literal: lit.text, Numeric: true}, nil
		default:
			if lit.kind == tokEOF && lit.text != "" {
				return nil, p.errAt(lit.off, "%s", lit.text) // lexer diagnostic, e.g. unterminated string
			}
			return nil, p.errAt(lit.off, "expected string or number literal after comparison, got %q", lit.text)
		}
	default:
		return Exists{Path: path}, nil
	}
}

// NormalizeSpace is a helper mirroring XPath's normalize-space() for
// string-value comparisons in tests and examples.
func NormalizeSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
