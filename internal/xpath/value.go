// Value-comparison semantics shared by every execution path. The plan
// executor's predicate programs, the legacy per-node interpreter, the
// value index's overflow filter, and the eligibility rules of the
// value-semijoin rewrite all call these two functions, so the three
// ways a comparison predicate can evaluate (index lookup, per-node
// plan filter, legacy interpreter) agree by construction.
package xpath

import (
	"staircase/internal/vindex"
)

// ParseNumber parses a node string value (or literal) as a finite
// number: optional surrounding whitespace around a decimal float.
// NaN and infinities are rejected — they cannot appear as literals and
// admitting them from content would break the total order the value
// index sorts numeric keys by. The definition lives in internal/vindex
// (which derives its numeric partition with it at build and load
// time); re-exporting it here keeps one implementation for index
// lookups and per-node comparison alike.
func ParseNumber(s string) (float64, bool) {
	return vindex.ParseNumber(s)
}

// CompareValue reports whether the node string value s stands in
// relation op to the literal lit. With numeric set (the literal was a
// number), both sides convert via ParseNumber and a value that is not
// a finite number never matches — under any operator, including '!='.
// Without it, the comparison is bytewise over the raw strings ('<' etc.
// order lexicographically).
func CompareValue(s string, op CompareOp, lit string, numeric bool) bool {
	if numeric {
		v, ok := ParseNumber(s)
		if !ok {
			return false
		}
		w, ok := ParseNumber(lit)
		if !ok {
			return false
		}
		switch op {
		case OpEq:
			return v == w
		case OpNe:
			return v != w
		case OpLt:
			return v < w
		case OpLe:
			return v <= w
		case OpGt:
			return v > w
		case OpGe:
			return v >= w
		}
		return false
	}
	switch op {
	case OpEq:
		return s == lit
	case OpNe:
		return s != lit
	case OpLt:
		return s < lit
	case OpLe:
		return s <= lit
	case OpGt:
		return s > lit
	case OpGe:
		return s >= lit
	}
	return false
}
