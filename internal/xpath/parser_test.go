package xpath

import (
	"testing"

	"staircase/internal/axis"
)

func TestParsePaperQueries(t *testing.T) {
	// Q1 and Q2 of the paper's evaluation (Table 1).
	q1, err := Parse("/descendant::profile/descendant::education")
	if err != nil {
		t.Fatal(err)
	}
	if !q1.Absolute || len(q1.Steps) != 2 {
		t.Fatalf("Q1 = %+v", q1)
	}
	if q1.Steps[0].Axis != axis.Descendant || q1.Steps[0].Test.Name != "profile" {
		t.Fatalf("Q1 step 1 = %+v", q1.Steps[0])
	}
	if q1.Steps[1].Axis != axis.Descendant || q1.Steps[1].Test.Name != "education" {
		t.Fatalf("Q1 step 2 = %+v", q1.Steps[1])
	}

	q2, err := Parse("/descendant::increase/ancestor::bidder")
	if err != nil {
		t.Fatal(err)
	}
	if q2.Steps[1].Axis != axis.Ancestor || q2.Steps[1].Test.Name != "bidder" {
		t.Fatalf("Q2 step 2 = %+v", q2.Steps[1])
	}

	// The manual rewrite of Q2 (§4.4, after Olteanu et al.).
	q2r, err := Parse("/descendant::bidder[descendant::increase]")
	if err != nil {
		t.Fatal(err)
	}
	if len(q2r.Steps) != 1 || len(q2r.Steps[0].Preds) != 1 {
		t.Fatalf("Q2 rewrite = %+v", q2r)
	}
	ex, ok := q2r.Steps[0].Preds[0].(Exists)
	if !ok || ex.Path.Steps[0].Axis != axis.Descendant {
		t.Fatalf("Q2 rewrite predicate = %+v", q2r.Steps[0].Preds[0])
	}
}

func TestParseAbbreviations(t *testing.T) {
	p, err := Parse("a/b")
	if err != nil {
		t.Fatal(err)
	}
	if p.Absolute || len(p.Steps) != 2 || p.Steps[0].Axis != axis.Child {
		t.Fatalf("a/b = %+v", p)
	}

	p, err = Parse("//item")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Absolute || len(p.Steps) != 2 {
		t.Fatalf("//item = %+v", p)
	}
	if p.Steps[0].Axis != axis.DescendantOrSelf || p.Steps[0].Test.Kind != TestNode {
		t.Fatalf("// expansion = %+v", p.Steps[0])
	}

	p, err = Parse("a//b")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 3 || p.Steps[1].Axis != axis.DescendantOrSelf {
		t.Fatalf("a//b = %+v", p)
	}

	p, err = Parse("../@id")
	if err != nil {
		t.Fatal(err)
	}
	if p.Steps[0].Axis != axis.Parent || p.Steps[1].Axis != axis.Attribute || p.Steps[1].Test.Name != "id" {
		t.Fatalf("../@id = %+v", p)
	}

	p, err = Parse(".")
	if err != nil {
		t.Fatal(err)
	}
	if p.Steps[0].Axis != axis.Self {
		t.Fatalf(". = %+v", p)
	}

	p, err = Parse("/")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Absolute || p.Steps[0].Axis != axis.Self {
		t.Fatalf("/ = %+v", p)
	}

	p, err = Parse("*")
	if err != nil {
		t.Fatal(err)
	}
	if p.Steps[0].Test.Kind != TestAny {
		t.Fatalf("* = %+v", p)
	}
}

func TestParseKindTests(t *testing.T) {
	cases := map[string]TestKind{
		"text()":                     TestText,
		"comment()":                  TestComment,
		"node()":                     TestNode,
		"processing-instruction()":   TestPI,
		"processing-instruction(xx)": TestPI,
	}
	for in, kind := range cases {
		p, err := Parse("/descendant::" + in)
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		if p.Steps[0].Test.Kind != kind {
			t.Errorf("%s parsed as %v", in, p.Steps[0].Test.Kind)
		}
	}
	p, _ := Parse("/descendant::processing-instruction('tgt')")
	if p.Steps[0].Test.Name != "tgt" {
		t.Errorf("PI target = %q", p.Steps[0].Test.Name)
	}
}

func TestParsePredicates(t *testing.T) {
	p, err := Parse("item[3]")
	if err != nil {
		t.Fatal(err)
	}
	if pos, ok := p.Steps[0].Preds[0].(Position); !ok || pos.N != 3 {
		t.Fatalf("[3] = %+v", p.Steps[0].Preds[0])
	}

	p, err = Parse("item[position()=2]")
	if err != nil {
		t.Fatal(err)
	}
	if pos, ok := p.Steps[0].Preds[0].(Position); !ok || pos.N != 2 {
		t.Fatalf("[position()=2] = %+v", p.Steps[0].Preds[0])
	}

	p, err = Parse("item[last()]")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Steps[0].Preds[0].(Last); !ok {
		t.Fatalf("[last()] = %+v", p.Steps[0].Preds[0])
	}

	p, err = Parse(`person[name = 'Alice']`)
	if err != nil {
		t.Fatal(err)
	}
	cmp, ok := p.Steps[0].Preds[0].(Compare)
	if !ok || cmp.Op != OpEq || cmp.Literal != "Alice" {
		t.Fatalf("compare = %+v", p.Steps[0].Preds[0])
	}

	p, err = Parse(`person[@id != "7"]`)
	if err != nil {
		t.Fatal(err)
	}
	cmp, ok = p.Steps[0].Preds[0].(Compare)
	if !ok || cmp.Op != OpNe || cmp.Path.Steps[0].Axis != axis.Attribute {
		t.Fatalf("compare = %+v", p.Steps[0].Preds[0])
	}

	p, err = Parse("open_auction[not(bidder)]")
	if err != nil {
		t.Fatal(err)
	}
	n, ok := p.Steps[0].Preds[0].(Not)
	if !ok {
		t.Fatalf("not = %+v", p.Steps[0].Preds[0])
	}
	if _, ok := n.Inner.(Exists); !ok {
		t.Fatalf("not inner = %+v", n.Inner)
	}

	// Multiple predicates on one step.
	p, err = Parse("a[b][2]")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps[0].Preds) != 2 {
		t.Fatalf("preds = %+v", p.Steps[0].Preds)
	}

	// Elements named like functions still parse as paths.
	p, err = Parse("a[position]")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Steps[0].Preds[0].(Exists); !ok {
		t.Fatalf("[position] = %+v", p.Steps[0].Preds[0])
	}

	// Absolute path inside a predicate.
	p, err = Parse("a[/root/flag = 'on']")
	if err != nil {
		t.Fatal(err)
	}
	cmp = p.Steps[0].Preds[0].(Compare)
	if !cmp.Path.Absolute {
		t.Fatalf("predicate path should be absolute: %+v", cmp)
	}
}

func TestParseAllAxes(t *testing.T) {
	for _, a := range axis.All() {
		in := "/" + a.String() + "::node()"
		p, err := Parse(in)
		if err != nil {
			t.Errorf("%s: %v", in, err)
			continue
		}
		if p.Steps[0].Axis != a {
			t.Errorf("%s parsed axis %v", in, p.Steps[0].Axis)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"/descendant::",
		"a[",
		"a[]",
		"a[b='unterminated]",
		"a[b=]",
		"foo::bar",
		"a b",
		"a//",
		"a[position()=]",
		"a[position()=0]",
		"//[2]",
		"a[not(b]",
		"a::node()",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	// Canonical rendering must re-parse to the same AST.
	inputs := []string{
		"/descendant::profile/descendant::education",
		"//open_auction[descendant::increase]/child::bidder",
		"child::a[position()=2]/attribute::id",
		"/descendant-or-self::node()/child::item[child::name = 'x']",
		"preceding-sibling::p[last()]",
	}
	for _, in := range inputs {
		p1, err := Parse(in)
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		p2, err := Parse(p1.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", p1.String(), err)
		}
		if p1.String() != p2.String() {
			t.Errorf("round trip: %q -> %q", p1.String(), p2.String())
		}
	}
}

func TestParseUnionQueries(t *testing.T) {
	q, err := ParseQuery("//a | /b/c | descendant::d")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Paths) != 3 {
		t.Fatalf("paths = %d", len(q.Paths))
	}
	if !q.Paths[1].Absolute || q.Paths[1].Steps[0].Test.Name != "b" {
		t.Fatalf("second path = %+v", q.Paths[1])
	}
	// Single path unions are plain paths.
	q, err = ParseQuery("//a")
	if err != nil || len(q.Paths) != 1 {
		t.Fatalf("single path: %+v, %v", q, err)
	}
	// Canonical rendering round-trips.
	q, err = ParseQuery("//a|//b")
	if err != nil {
		t.Fatal(err)
	}
	q2, err := ParseQuery(q.String())
	if err != nil || q2.String() != q.String() {
		t.Fatalf("round trip: %q vs %q (%v)", q.String(), q2.String(), err)
	}
	for _, bad := range []string{"//a |", "| //a", "//a | | //b"} {
		if _, err := ParseQuery(bad); err == nil {
			t.Errorf("ParseQuery(%q) succeeded", bad)
		}
	}
	// Parse (single path) rejects unions.
	if _, err := Parse("//a | //b"); err == nil {
		t.Error("Parse accepted a union")
	}
}

func TestParseBooleanPredicates(t *testing.T) {
	p, err := Parse("a[b and c]")
	if err != nil {
		t.Fatal(err)
	}
	and, ok := p.Steps[0].Preds[0].(And)
	if !ok || len(and.Preds) != 2 {
		t.Fatalf("[b and c] = %+v", p.Steps[0].Preds[0])
	}

	p, err = Parse("a[b or c or d]")
	if err != nil {
		t.Fatal(err)
	}
	or, ok := p.Steps[0].Preds[0].(Or)
	if !ok || len(or.Preds) != 3 {
		t.Fatalf("[b or c or d] = %+v", p.Steps[0].Preds[0])
	}

	// 'and' binds tighter than 'or'.
	p, err = Parse("a[b or c and d]")
	if err != nil {
		t.Fatal(err)
	}
	or, ok = p.Steps[0].Preds[0].(Or)
	if !ok || len(or.Preds) != 2 {
		t.Fatalf("[b or c and d] = %+v", p.Steps[0].Preds[0])
	}
	if _, ok := or.Preds[1].(And); !ok {
		t.Fatalf("right operand should be And: %+v", or.Preds[1])
	}

	// Inside not(...).
	p, err = Parse("a[not(b and c)]")
	if err != nil {
		t.Fatal(err)
	}
	n, ok := p.Steps[0].Preds[0].(Not)
	if !ok {
		t.Fatalf("not = %+v", p.Steps[0].Preds[0])
	}
	if _, ok := n.Inner.(And); !ok {
		t.Fatalf("not inner = %+v", n.Inner)
	}

	// Mixed with comparisons and positions.
	p, err = Parse("a[b = 'x' and position()=1]")
	if err != nil {
		t.Fatal(err)
	}
	and, ok = p.Steps[0].Preds[0].(And)
	if !ok {
		t.Fatalf("mixed = %+v", p.Steps[0].Preds[0])
	}
	if _, ok := and.Preds[0].(Compare); !ok {
		t.Fatalf("left = %+v", and.Preds[0])
	}
	if _, ok := and.Preds[1].(Position); !ok {
		t.Fatalf("right = %+v", and.Preds[1])
	}

	// Elements named 'and'/'or' still work as steps.
	p, err = Parse("and/or")
	if err != nil {
		t.Fatal(err)
	}
	if p.Steps[0].Test.Name != "and" || p.Steps[1].Test.Name != "or" {
		t.Fatalf("and/or path = %+v", p)
	}

	for _, bad := range []string{"a[b and]", "a[or b]", "a[b or]"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestParseRejectsBadCharacters(t *testing.T) {
	for _, bad := range []string{"a$", "a %", "a[b$]"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestNormalizeSpace(t *testing.T) {
	if NormalizeSpace("  a \n b\t c ") != "a b c" {
		t.Fatal("NormalizeSpace broken")
	}
}

// TestParseErrorOffsets pins the byte offsets reported in parser
// diagnostics: every error names the position of the offending token,
// including the trailing-input errors that used to lose it.
func TestParseErrorOffsets(t *testing.T) {
	cases := []struct {
		input string
		want  string
	}{
		{"a b", `xpath: offset 2: trailing input at "b"`},
		{"a//", `xpath: offset 3: expected location step, got ""`},
		{"a[", `xpath: offset 2: expected location step, got ""`},
		{"a]b", `xpath: offset 1: trailing input at "]"`},
		{"//[2]", `xpath: offset 2: expected location step, got "["`},
		{"foo::bar", `xpath: offset 0: unknown axis "foo"`},
		{"a/foo::bar", `xpath: offset 2: unknown axis "foo"`},
		{"a[b='unterminated]", `xpath: offset 4: unterminated string`},
		{"ab[position()=0]", `xpath: offset 14: bad position "0"`},
		{"a[not(b]", `xpath: offset 7: expected ')' after not(...`},
		{"a[b=]", `xpath: offset 4: expected string or number literal after comparison, got "]"`},
		{"a$", `xpath: offset 1: unexpected character $`},
		{"a::node()", `xpath: offset 0: unknown axis "a"`},
	}
	for _, tc := range cases {
		_, err := Parse(tc.input)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want %q", tc.input, tc.want)
			continue
		}
		if err.Error() != tc.want {
			t.Errorf("Parse(%q):\n got %q\nwant %q", tc.input, err.Error(), tc.want)
		}
	}
	// ParseQuery reports union-level trailing input with its offset too.
	if _, err := ParseQuery("a | b )"); err == nil || err.Error() != `xpath: offset 6: trailing input at ")"` {
		t.Errorf("ParseQuery trailing input: got %v", err)
	}
}

// TestParseComparisons covers the typed comparison grammar: all six
// operators, string vs numeric literals, and canonical re-rendering.
func TestParseComparisons(t *testing.T) {
	cases := []struct {
		input   string
		op      CompareOp
		literal string
		numeric bool
		str     string // canonical String() rendering
	}{
		{`a[b = "x"]`, OpEq, "x", false, `child::a[child::b = "x"]`},
		{`a[b != 'x']`, OpNe, "x", false, `child::a[child::b != "x"]`},
		{`a[@id < '5']`, OpLt, "5", false, `child::a[attribute::id < "5"]`},
		{`a[b <= 'zz']`, OpLe, "zz", false, `child::a[child::b <= "zz"]`},
		{`price[. > '100']`, OpGt, "100", false, `child::price[self::node() > "100"]`},
		{`a[b >= "y"]`, OpGe, "y", false, `child::a[child::b >= "y"]`},
		{`a[b = 100]`, OpEq, "100", true, `child::a[child::b = 100]`},
		{`a[b > 100]`, OpGt, "100", true, `child::a[child::b > 100]`},
		{`a[b < 10.5]`, OpLt, "10.5", true, `child::a[child::b < 10.5]`},
		{`a[@n >= 0.25]`, OpGe, "0.25", true, `child::a[attribute::n >= 0.25]`},
		{`a[b != 7]`, OpNe, "7", true, `child::a[child::b != 7]`},
		{`a[text() <= 3]`, OpLe, "3", true, `child::a[child::text() <= 3]`},
	}
	for _, tc := range cases {
		p, err := Parse(tc.input)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.input, err)
			continue
		}
		cmp, ok := p.Steps[0].Preds[0].(Compare)
		if !ok {
			t.Errorf("Parse(%q) predicate = %T, want Compare", tc.input, p.Steps[0].Preds[0])
			continue
		}
		if cmp.Op != tc.op || cmp.Literal != tc.literal || cmp.Numeric != tc.numeric {
			t.Errorf("Parse(%q) = op %v literal %q numeric %v", tc.input, cmp.Op, cmp.Literal, cmp.Numeric)
		}
		if got := p.String(); got != tc.str {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.input, got, tc.str)
		}
		// Canonical renderings must re-parse to the same predicate.
		again, err := Parse(p.String())
		if err != nil {
			t.Errorf("reparse %q: %v", p.String(), err)
		} else if again.String() != p.String() {
			t.Errorf("reparse %q = %q", p.String(), again.String())
		}
	}
}

func TestParseContains(t *testing.T) {
	p, err := Parse(`item[contains(name, 'brutus')]`)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := p.Steps[0].Preds[0].(Contains)
	if !ok || c.Literal != "brutus" || len(c.Path.Steps) != 1 || c.Path.Steps[0].Test.Name != "name" {
		t.Fatalf("contains predicate = %+v", p.Steps[0].Preds[0])
	}
	if got, want := p.String(), `child::item[contains(child::name, "brutus")]`; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if _, err := Parse(p.String()); err != nil {
		t.Fatalf("reparse: %v", err)
	}

	// contains on an attribute path, nested under not().
	p, err = Parse(`a[not(contains(@id, "x"))]`)
	if err != nil {
		t.Fatal(err)
	}
	n := p.Steps[0].Preds[0].(Not)
	if _, ok := n.Inner.(Contains); !ok {
		t.Fatalf("not(contains(...)) inner = %T", n.Inner)
	}

	// An element named "contains" must still parse as a path.
	p, err = Parse(`a[contains]`)
	if err != nil {
		t.Fatal(err)
	}
	if ex, ok := p.Steps[0].Preds[0].(Exists); !ok || ex.Path.Steps[0].Test.Name != "contains" {
		t.Fatalf("a[contains] predicate = %+v", p.Steps[0].Preds[0])
	}
	if _, err = Parse(`a[contains/b = 'x']`); err != nil {
		t.Fatal(err)
	}
}

// TestParseComparisonErrorOffsets pins diagnostics of the extended
// grammar: every error carries the byte offset of the offending token.
func TestParseComparisonErrorOffsets(t *testing.T) {
	cases := []struct {
		input string
		want  string
	}{
		{"a[b>]", `xpath: offset 4: expected string or number literal after comparison, got "]"`},
		{"a[b<='unterminated]", `xpath: offset 5: unterminated string`},
		{"a[b >= ]", `xpath: offset 7: expected string or number literal after comparison, got "]"`},
		{"a[contains(b]", `xpath: offset 12: expected ',' in contains(...), got "]"`},
		{"a[contains(b, ]", `xpath: offset 14: expected string literal in contains(...), got "]"`},
		{"a[contains(b, 5)]", `xpath: offset 14: expected string literal in contains(...), got "5"`},
		{"a[contains(b, 'x']", `xpath: offset 17: expected ')' after contains(...), got "]"`},
		{"a[contains(b, 'unterminated)]", `xpath: offset 14: unterminated string`},
		{"a[1.5]", `xpath: offset 2: bad position "1.5"`},
	}
	for _, tc := range cases {
		_, err := Parse(tc.input)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want %q", tc.input, tc.want)
			continue
		}
		if err.Error() != tc.want {
			t.Errorf("Parse(%q):\n got %q\nwant %q", tc.input, err.Error(), tc.want)
		}
	}
}
