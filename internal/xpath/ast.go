// Package xpath provides a lexer, parser and AST for the XPath subset
// the staircase join reproduction evaluates: location paths over all 13
// axes with name and kind tests, and the predicate forms used by the
// paper's queries and their rewrites (e.g. the manual rewrite of Q2,
// /descendant::bidder[descendant::increase], §4.4).
//
// Supported grammar (abbreviations expand during parsing):
//
//	path      := '/'? step ('/' step)*  |  '//' step (...)
//	step      := axis '::' nodetest predicate*
//	           | nodetest predicate*          (child axis)
//	           | '@' name                     (attribute axis)
//	           | '.' | '..'
//	nodetest  := NAME | '*' | 'node()' | 'text()' | 'comment()'
//	           | 'processing-instruction(' NAME? ')'
//	predicate := '[' expr ']'
//	expr      := path | path cmp literal
//	           | 'contains(' path ',' STRING ')'
//	           | 'position()' '=' NUMBER | NUMBER | 'last()'
//	           | 'not(' expr ')' | expr 'and' expr | expr 'or' expr
//	cmp       := '=' | '!=' | '<' | '<=' | '>' | '>='
//	literal   := STRING | NUMBER
//
// A STRING literal compares string values bytewise; a NUMBER literal
// (digits with an optional decimal fraction) selects numeric
// comparison, where a node whose string value does not parse as a
// finite number never matches (see CompareValue).
package xpath

import (
	"fmt"
	"strings"

	"staircase/internal/axis"
)

// Path is a parsed location path.
type Path struct {
	// Absolute paths start at the document root; relative paths start
	// at the context node(s).
	Absolute bool
	Steps    []Step
}

// String renders the path in canonical (unabbreviated) XPath syntax.
func (p Path) String() string {
	var sb strings.Builder
	if p.Absolute {
		sb.WriteString("/")
	}
	for i, s := range p.Steps {
		if i > 0 {
			sb.WriteString("/")
		}
		sb.WriteString(s.String())
	}
	return sb.String()
}

// Step is one location step: axis, node test, and predicates.
type Step struct {
	Axis  axis.Axis
	Test  NodeTest
	Preds []Predicate
}

// String renders the step in canonical syntax.
func (s Step) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s::%s", s.Axis, s.Test)
	for _, p := range s.Preds {
		fmt.Fprintf(&sb, "[%s]", p)
	}
	return sb.String()
}

// TestKind classifies node tests.
type TestKind uint8

const (
	// TestName matches elements (or attributes, on the attribute axis)
	// with a specific name.
	TestName TestKind = iota
	// TestAny is '*': any node of the axis's principal node kind.
	TestAny
	// TestNode is node(): any node.
	TestNode
	// TestText is text().
	TestText
	// TestComment is comment().
	TestComment
	// TestPI is processing-instruction(), optionally with a target name.
	TestPI
)

// NodeTest filters the nodes delivered by an axis.
type NodeTest struct {
	Kind TestKind
	Name string // for TestName and optionally TestPI
}

// String renders the node test.
func (t NodeTest) String() string {
	switch t.Kind {
	case TestName:
		return t.Name
	case TestAny:
		return "*"
	case TestNode:
		return "node()"
	case TestText:
		return "text()"
	case TestComment:
		return "comment()"
	case TestPI:
		if t.Name != "" {
			return fmt.Sprintf("processing-instruction(%q)", t.Name)
		}
		return "processing-instruction()"
	default:
		return fmt.Sprintf("NodeTest(%d)", uint8(t.Kind))
	}
}

// Predicate is a step qualifier. Implementations: Exists, Compare,
// Contains, Position, Last, Not, And, Or.
type Predicate interface {
	fmt.Stringer
	predicate()
}

// Exists is satisfied when the relative path yields at least one node.
type Exists struct {
	Path Path
}

func (Exists) predicate()       {}
func (e Exists) String() string { return e.Path.String() }

// CompareOp is the comparison operator of a Compare predicate.
type CompareOp uint8

const (
	// OpEq is '='.
	OpEq CompareOp = iota
	// OpNe is '!='.
	OpNe
	// OpLt is '<'.
	OpLt
	// OpLe is '<='.
	OpLe
	// OpGt is '>'.
	OpGt
	// OpGe is '>='.
	OpGe
)

// String renders the operator symbol.
func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CompareOp(%d)", uint8(op))
	}
}

// Compare is satisfied when some node produced by the relative path has
// a string value standing in the given relation to the literal
// (XPath 1.0 existential comparison semantics). Numeric marks a number
// literal: both sides convert to float64 and nodes whose string value
// is not a finite number never match; otherwise the comparison is
// bytewise over strings.
type Compare struct {
	Path    Path
	Op      CompareOp
	Literal string
	Numeric bool
}

func (Compare) predicate() {}
func (c Compare) String() string {
	if c.Numeric {
		return fmt.Sprintf("%s %s %s", c.Path, c.Op, c.Literal)
	}
	return fmt.Sprintf("%s %s %q", c.Path, c.Op, c.Literal)
}

// Contains is satisfied when some node produced by the relative path
// has a string value containing the literal as a substring —
// contains(path, 'lit'), the XPath 1.0 function restricted to a
// string-literal needle.
type Contains struct {
	Path    Path
	Literal string
}

func (Contains) predicate() {}
func (c Contains) String() string {
	return fmt.Sprintf("contains(%s, %q)", c.Path, c.Literal)
}

// Position is [n] or [position()=n]: keeps the n-th node (1-based) of
// the step result per context node, counted in axis direction (reverse
// axes count backwards, per XPath).
type Position struct {
	N int
}

func (Position) predicate()       {}
func (p Position) String() string { return fmt.Sprintf("position()=%d", p.N) }

// Last is [last()]: keeps the last node of the step result per context
// node, in axis direction.
type Last struct{}

func (Last) predicate()     {}
func (Last) String() string { return "last()" }

// Not negates an inner predicate.
type Not struct {
	Inner Predicate
}

func (Not) predicate()       {}
func (n Not) String() string { return fmt.Sprintf("not(%s)", n.Inner) }

// And is satisfied when all operands are (XPath 'and').
type And struct {
	Preds []Predicate
}

func (And) predicate() {}
func (a And) String() string {
	parts := make([]string, len(a.Preds))
	for i, p := range a.Preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " and ")
}

// Or is satisfied when any operand is (XPath 'or').
type Or struct {
	Preds []Predicate
}

func (Or) predicate() {}
func (o Or) String() string {
	parts := make([]string, len(o.Preds))
	for i, p := range o.Preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " or ")
}

// Query is a union of location paths ('|'), the top-level expression
// form. Most queries are single-path unions.
type Query struct {
	Paths []Path
}

// String renders the union in canonical syntax.
func (q Query) String() string {
	parts := make([]string, len(q.Paths))
	for i, p := range q.Paths {
		parts[i] = p.String()
	}
	return strings.Join(parts, " | ")
}
