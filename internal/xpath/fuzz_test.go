package xpath

import (
	"strings"
	"testing"
)

// FuzzParseQuery drives the parser — including the comparison and
// contains() grammar — over arbitrary inputs. Three properties:
// parsing never panics, every rejection names a byte offset, and for
// inputs whose literals survive %q-rendering unchanged the canonical
// String() form re-parses to the same canonical form.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"/descendant::profile/descendant::education",
		"/descendant::increase/ancestor::bidder",
		"//bidder[descendant::increase]",
		"//closed_auction[price > 100]",
		"//item[@id = 'item1']",
		"//person[profile/@income >= 50000.5]",
		"//open_auction[initial < '200']",
		"//item[contains(name, 'brutus')]",
		"//text()[contains(., 'caesar')]",
		"a[b != 7][2] | c[@d <= 'x']",
		"a[not(contains(@id, \"x\")) and b >= 0.25]",
		"a[b > ]",
		"a[contains(b, 5)]",
		"a[contains(b, 'unterminated]",
		"a[1.5]",
		"a[b<='z' or c]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := ParseQuery(input)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "xpath: offset ") {
				t.Fatalf("error without offset for %q: %v", input, err)
			}
			return
		}
		s := q.String()
		// Literals containing quotes, backslashes or non-printable bytes
		// change spelling under %q, so only the plain-ASCII subset is
		// held to canonical round-trip stability.
		for i := 0; i < len(input); i++ {
			if c := input[i]; c < 0x20 || c > 0x7e || c == '"' || c == '\\' {
				return
			}
		}
		q2, err := ParseQuery(s)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", s, input, err)
		}
		if s2 := q2.String(); s2 != s {
			t.Fatalf("canonical form not stable: %q -> %q -> %q", input, s, s2)
		}
	})
}
