package plan

// Unit tests for the greedy ordering pass (order.go), the execution-time
// probe-direction decision (ops.go/value.go) and the adaptive chain
// cursor (adapt.go): probe direction pinned on hand-built fragments,
// empty-intermediate short-circuits terminating without downstream
// work, greedy hoisting of exact-count semijoins, canon invariance
// under ordering (the result-cache key), fragment-list memoization and
// mid-flight re-planning.

import (
	"context"
	"math"
	"strings"
	"testing"

	"staircase/internal/doc"
)

// TestProbeFromInput pins the execution-time probe-direction heuristic:
// input-seek pays one binary search per input node, so it wins only
// when the fragment outnumbers the input by a wide margin.
func TestProbeFromInput(t *testing.T) {
	cases := []struct {
		in, frag int
		want     bool
	}{
		{0, 100, false}, // no input: nothing to probe
		{1, 15, false},
		{1, 16, true},
		{10, 159, false},
		{10, 160, true},
		{100, 100, false},
	}
	for _, c := range cases {
		if got := probeFromInput(c.in, c.frag); got != c.want {
			t.Errorf("probeFromInput(%d, %d) = %v, want %v", c.in, c.frag, got, c.want)
		}
	}
}

// findSemiJoin returns the plan's single exists-semijoin operator.
func findSemiJoin(t *testing.T, p *Plan) *semiJoinOp {
	t.Helper()
	for _, o := range p.ops {
		if sj, ok := o.(*semiJoinOp); ok {
			return sj
		}
	}
	t.Fatal("plan has no semiJoinOp")
	return nil
}

// TestSemiJoinProbeDirection pins the direction the batch executor
// actually takes: a fragment that dwarfs the input is probed per input
// node (input-seek); comparable sizes sweep the fragment. NoReorder
// restores the unconditional sweep.
func TestSemiJoinProbeDirection(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<r><x/>")
	for i := 0; i < 40; i++ {
		sb.WriteString("<f/>")
	}
	sb.WriteString("</r>")
	d := shredString(t, sb.String())
	env := NewEnv(d)

	// 1 input node vs a 40-node fragment: input-seek.
	p := compileQuery(t, env, "//x[following::f]", nil)
	sj := findSemiJoin(t, p)
	res, err := p.RunRoot()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 1 {
		t.Fatalf("nodes = %v", res.Nodes)
	}
	if got := res.ops[sj.opID()].probeDir; got != probeInputSeek {
		t.Errorf("skewed semijoin probeDir = %d, want input-seek", got)
	}

	// NoReorder pins the legacy fragment sweep in the same situation.
	p = compileQuery(t, env, "//x[following::f]", &Options{NoReorder: true})
	sj = findSemiJoin(t, p)
	res, err = p.RunRoot()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.ops[sj.opID()].probeDir; got != probeFragSweep {
		t.Errorf("NoReorder semijoin probeDir = %d, want fragment-sweep", got)
	}

	// Comparable cardinalities on the fixture: fragment sweep.
	env = NewEnv(fixture(t))
	p = compileQuery(t, env, "//person[descendant::name]", nil)
	sj = findSemiJoin(t, p)
	res, err = p.RunRoot()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.ops[sj.opID()].probeDir; got != probeFragSweep {
		t.Errorf("balanced semijoin probeDir = %d, want fragment-sweep", got)
	}
}

// TestEmptyIntermediateShortCircuit: a zero-cardinality fragment on the
// branch spine compiles to an EmptyResult wrapper; execution emits
// nothing, runs no downstream operator and does no staircase work.
func TestEmptyIntermediateShortCircuit(t *testing.T) {
	env := NewEnv(fixture(t))
	p := compileQuery(t, env, "//nosuch/ancestor::person", nil)
	e, ok := p.root.(*emptyOp)
	if !ok {
		t.Fatalf("root is %T, want *emptyOp", p.root)
	}
	if e.reason == "" {
		t.Error("emptyOp has no reason")
	}
	if len(p.orderNotes) == 0 {
		t.Error("empty short-circuit not recorded in order notes")
	}
	res, err := p.RunRoot()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 0 {
		t.Fatalf("nodes = %v, want empty", res.Nodes)
	}
	// actual=0 on the wrapper, no execution below it.
	if ost := res.ops[e.opID()]; !ost.ran || ost.in != 0 || ost.out != 0 {
		t.Errorf("emptyOp stat = %+v, want ran with 0 -> 0", ost)
	}
	var walk func(o op)
	walk = func(o op) {
		if ost := res.ops[o.opID()]; ost.ran {
			t.Errorf("%T below EmptyResult ran (%d -> %d)", o, ost.in, ost.out)
		}
		for _, k := range o.kids() {
			walk(k)
		}
	}
	walk(e.inner)
	for i, st := range res.Steps {
		if st.Core.Scanned != 0 || st.Core.Copied != 0 {
			t.Errorf("step %d did staircase work: %+v", i, st.Core)
		}
	}
	// The streaming executor short-circuits identically.
	lr, err := p.RunLimitRoot(context.Background(), math.MaxInt)
	if err != nil {
		t.Fatal(err)
	}
	if len(lr.Nodes) != 0 {
		t.Fatalf("cursor nodes = %v, want empty", lr.Nodes)
	}
}

// TestGreedyHoistOrder: with exact fragment counts available, the
// smaller-fragment semijoin evaluates first regardless of source
// order, and the result is unchanged.
func TestGreedyHoistOrder(t *testing.T) {
	env := NewEnv(fixture(t))
	q := "//site[descendant::person][descendant::education]"
	before := Reorders()
	p := compileQuery(t, env, q, nil)
	if Reorders() == before {
		t.Error("plan_reorders_total did not move")
	}
	if len(p.orderNotes) == 0 {
		t.Fatal("no order notes on a reordered plan")
	}
	if !strings.Contains(p.orderNotes[0], "[descendant::education] [descendant::person]") {
		t.Errorf("greedy order note = %q, want education hoisted first", p.orderNotes[0])
	}
	if len(p.opOrder) == 0 {
		t.Error("no per-operator order annotations")
	}
	got, err := p.RunRoot()
	if err != nil {
		t.Fatal(err)
	}
	want := run(t, env, q, &Options{NoReorder: true})
	if !equal32(got.Nodes, want) {
		t.Fatalf("reordered %v != source order %v", got.Nodes, want)
	}
}

// TestCanonUnchangedByOrdering is the cache-key invariance check:
// ordering decisions are execution attributes, so the canonical plan
// string — the result-cache and shared-scan key — must be identical
// with and without the greedy pass.
func TestCanonUnchangedByOrdering(t *testing.T) {
	env := NewEnv(fixture(t))
	for _, q := range []string{
		"//site[descendant::person][descendant::education]",
		"//person[profile][name = 'Carol']",
		"//open_auction[current > 10][descendant::bidder]",
		"//nosuch/ancestor::person",
		"//person[profile][name = 'Carol'] | //bidder[descendant::increase]",
	} {
		ordered := compileQuery(t, env, q, nil)
		plain := compileQuery(t, env, q, &Options{NoReorder: true})
		if ordered.Canon() != plain.Canon() {
			t.Errorf("canon differs under ordering for %s:\n ordered %s\n   plain %s",
				q, ordered.Canon(), plain.Canon())
		}
	}
}

// TestFragScanMemoized: the fragment list of a prepared plan is
// resolved once and shared by subsequent executions.
func TestFragScanMemoized(t *testing.T) {
	env := NewEnv(fixture(t))
	p := compileQuery(t, env, "/descendant::person", nil)
	var frag *fragScan
	for _, o := range p.ops {
		if f, ok := o.(*fragScan); ok {
			frag = f
		}
	}
	if frag == nil {
		t.Fatal("plan has no fragScan")
	}
	l1, _, ok1 := frag.resolveWith(env.Doc, &p.opts)
	l2, _, ok2 := frag.resolveWith(env.Doc, &p.opts)
	if !ok1 || !ok2 || len(l1) == 0 {
		t.Fatalf("resolve failed: %v %v %v", l1, ok1, ok2)
	}
	if &l1[0] != &l2[0] {
		t.Error("fragment list resolved twice (not memoized)")
	}
	// Repeated executions stay correct over the shared list.
	a, err := p.RunRoot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.RunRoot()
	if err != nil {
		t.Fatal(err)
	}
	if !equal32(a.Nodes, b.Nodes) {
		t.Fatalf("repeated runs differ: %v vs %v", a.Nodes, b.Nodes)
	}
}

// TestChainCursorMatchesBatch: reordered multi-predicate steps stream
// through the adaptive chain cursor; the drained sequence must be
// byte-identical to batch execution and to the NoReorder plan.
func TestChainCursorMatchesBatch(t *testing.T) {
	env := NewEnv(fixture(t))
	for _, q := range []string{
		"//site[descendant::person][descendant::education]",
		"//person[profile][name = 'Carol']",
		"//open_auction[descendant::bidder][current > 10]",
		"//person[name][profile][descendant::education]",
	} {
		batch := run(t, env, q, nil)
		plain := run(t, env, q, &Options{NoReorder: true})
		if !equal32(batch, plain) {
			t.Fatalf("%s: reordered batch %v != NoReorder %v", q, batch, plain)
		}
		p := compileQuery(t, env, q, nil)
		lr, err := p.RunLimitRoot(context.Background(), math.MaxInt)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !equal32(lr.Nodes, batch) {
			t.Fatalf("%s: chain cursor %v != batch %v", q, lr.Nodes, batch)
		}
	}
}

// TestAdaptiveReplanFires: when a filter's observed selectivity
// diverges from its estimate mid-flight, the chain cursor re-sorts its
// stages, counts the switch and notes it for EXPLAIN. The estimate
// halves its input, so a stage passing everything followed by a stage
// passing nothing diverges after the first batch.
func TestAdaptiveReplanFires(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 600; i++ {
		sb.WriteString("<item><b>t</b></item>")
	}
	sb.WriteString("</r>")
	env := NewEnv(shredString(t, sb.String()))
	q := "//item[child::b][child::c]"
	p := compileQuery(t, env, q, nil)
	before := AdaptiveReplans()
	lr, err := p.RunLimitRoot(context.Background(), math.MaxInt)
	if err != nil {
		t.Fatal(err)
	}
	if len(lr.Nodes) != 0 {
		t.Fatalf("nodes = %d, want 0", len(lr.Nodes))
	}
	if AdaptiveReplans() == before {
		t.Error("adaptive_replans_total did not move")
	}
	if len(lr.replans) == 0 {
		t.Error("no re-plan note on the execution result")
	} else if !strings.Contains(lr.replans[0], "adaptive re-plan") {
		t.Errorf("re-plan note = %q", lr.replans[0])
	}
	// The batch executor (static order) and the adapted cursor agree.
	br, err := p.RunRoot()
	if err != nil {
		t.Fatal(err)
	}
	if !equal32(br.Nodes, lr.Nodes) {
		t.Fatalf("batch %v != adapted cursor %v", br.Nodes, lr.Nodes)
	}
}

// shredString builds a document from literal XML.
func shredString(t testing.TB, s string) *doc.Document {
	t.Helper()
	d, err := doc.ShredString(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// equal32 compares two node sequences.
func equal32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
