// Rule-based logical rewriter: the paper's §4.4 "XPath rewriting laws"
// as explicit, named transformations over the logical plan. Each rule
// is algebraic — valid for every document — and is recorded in
// Logical.Rewrites so EXPLAIN can show what fired. The rules:
//
//	collapse-descendant-or-self
//	    descendant-or-self::node()/child::t      => descendant::t
//	    descendant-or-self::node()/descendant::t => descendant::t
//	    descendant-or-self::node()/descendant-or-self::t
//	                                             => descendant-or-self::t
//	  The '//' abbreviation expands to a descendant-or-self::node()
//	  step that materialises the entire document before the next step
//	  filters it. Collapsing turns the pair into a single partitioning
//	  axis step — one staircase join, eligible for name-test pushdown
//	  into an index scan. Guarded against position-sensitive
//	  predicates on the second step ([1] counts children, not
//	  descendants).
//
//	drop-self-node
//	    .../self::node() => ...
//	  A bare '.' step is the identity on any attribute-free context
//	  (guarded: the preceding step must not be the attribute axis,
//	  since self::node() drops attribute nodes).
//
//	split-and
//	    step[p and q] => step[p][q]
//	  Conjunctions split into filter chains so each conjunct can be
//	  optimised independently (e.g. one conjunct becomes a staircase
//	  semijoin while another stays a per-node filter). Guarded against
//	  position-sensitive predicates, whose proximity positions would
//	  be renumbered between the split filters.
//
// A fourth rewrite, exists-semijoin, is applied during physical
// compilation (compile.go) because its profitability depends on the
// node test being servable by the document's tag/kind index.

package plan

import (
	"staircase/internal/axis"
	"staircase/internal/xpath"
)

// Rewrite applies the logical rewrite rules to fixpoint, records the
// applied rule names in l.Rewrites, and returns them. Rewrite must be
// called once, before the logical plan is shared or compiled.
func Rewrite(l *Logical) []string {
	for pi := range l.Paths {
		p := &l.Paths[pi]
		for {
			if collapseDescendantOrSelf(l, p) {
				continue
			}
			if dropSelfNode(l, p) {
				continue
			}
			break
		}
		splitAnd(l, p)
	}
	for pi := range l.Paths {
		steps := l.Paths[pi].Steps
		for si := range steps {
			steps[si].display = steps[si].step().String()
		}
	}
	return l.Rewrites
}

// applied records one rule application.
func (l *Logical) applied(rule string) { l.Rewrites = append(l.Rewrites, rule) }

// collapseDescendantOrSelf fires the first matching collapse in the
// chain and reports whether it rewrote anything.
func collapseDescendantOrSelf(l *Logical, p *LogicalPath) bool {
	for i := 0; i+1 < len(p.Steps); i++ {
		s, next := &p.Steps[i], &p.Steps[i+1]
		if s.Axis != axis.DescendantOrSelf || s.Test.Kind != xpath.TestNode || len(s.Preds) > 0 {
			continue
		}
		var newAxis axis.Axis
		switch next.Axis {
		case axis.Child, axis.Descendant:
			newAxis = axis.Descendant
		case axis.DescendantOrSelf:
			newAxis = axis.DescendantOrSelf
		default:
			continue
		}
		if next.positional() {
			// [n] counts children of each context node; collapsing
			// would make it count descendants.
			continue
		}
		// The collapsed step starts from the *context set* of the
		// eliminated step, never from the document node: even when the
		// eliminated step was the first step of an absolute path, the
		// intermediate node set it produced contains the root element
		// but not the (unmaterialised) document node, so the combined
		// step is an ordinary join from the root context.
		next.Axis = newAxis
		next.First = false
		p.Steps = append(p.Steps[:i], p.Steps[i+1:]...)
		l.applied("collapse-descendant-or-self")
		return true
	}
	return false
}

// dropSelfNode removes a bare self::node() step whose context is
// guaranteed attribute-free, and reports whether it rewrote anything.
func dropSelfNode(l *Logical, p *LogicalPath) bool {
	for i := 1; i < len(p.Steps); i++ {
		s := &p.Steps[i]
		if s.Axis != axis.Self || s.Test.Kind != xpath.TestNode || len(s.Preds) > 0 {
			continue
		}
		if p.Steps[i-1].Axis == axis.Attribute {
			continue // self::node() would drop the attribute nodes
		}
		p.Steps = append(p.Steps[:i], p.Steps[i+1:]...)
		l.applied("drop-self-node")
		return true
	}
	return false
}

// splitAnd flattens top-level conjunctions in each position-free
// step's predicate list.
func splitAnd(l *Logical, p *LogicalPath) {
	for i := range p.Steps {
		s := &p.Steps[i]
		if s.positional() {
			continue
		}
		split := false
		for _, pred := range s.Preds {
			if _, ok := pred.(xpath.And); ok {
				split = true
				break
			}
		}
		if !split {
			continue
		}
		out := make([]xpath.Predicate, 0, len(s.Preds)+1)
		for _, pred := range s.Preds {
			if a, ok := pred.(xpath.And); ok {
				out = append(out, a.Preds...)
				l.applied("split-and")
				continue
			}
			out = append(out, pred)
		}
		s.Preds = out
	}
}
