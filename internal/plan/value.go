// The value-semijoin rewrite: comparison and contains() predicates
// over a single relative step evaluate set-at-a-time against the
// document's value index instead of one sub-path evaluation per
// candidate node.
//
//	Filter(S, [axis::t op lit])      =>  ValueSemiJoin(S, axis, ValueScan(t, op, lit))
//	Filter(S, [contains(axis::t,l)]) =>  ValueSemiJoin(S, axis, ValueScan(t, contains l))
//
// ValueScan resolves the predicate to a pre-sorted node-list fragment:
// a B-tree range lookup over the index's string or numeric partition
// (typed by the literal), filtered by the predicate's node test, plus
// the re-evaluated overflow nodes (values longer than the index key
// cap). ValueSemiJoin then keeps the input nodes that stand in the
// predicate axis relation to the fragment, decided per input node by
// binary search over the fragment — the exists-semijoin discipline
// extended to value predicates.
//
// The rewrite is applied unconditionally for eligible predicates, so
// the canonical plan string is independent of index availability:
// when the execution environment has no value index (Options.
// NoValueIndex, or a document built without values), the operator
// falls back to per-node predicate evaluation at execution time and
// results are identical by construction.

package plan

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"staircase/internal/axis"
	"staircase/internal/core"
	"staircase/internal/doc"
	"staircase/internal/vindex"
	"staircase/internal/xpath"
)

// valueScan is the fragment leaf of a value semijoin: the pre-sorted
// list of nodes matching axis-test + value predicate, served by the
// document's value index. It appears in the plan tree as a leaf input
// of its semijoin.
type valueScan struct {
	opBase
	// pa is the predicate path's axis; test its node test. The fragment
	// is filtered to nodes passing the test on that axis.
	pa   axis.Axis
	test xpath.NodeTest
	// contains selects contains(path, lit); otherwise op compares.
	contains bool
	op       xpath.CompareOp
	lit      string
	numeric  bool
	// The fragment is a pure function of the plan's document and
	// predicate (both immutable after Compile), so it is materialised
	// at most once per plan and shared read-only by every Run — the
	// B-tree range scan and node-test filter price a prepared plan's
	// first execution, not each one.
	once sync.Once
	frag []int32
}

func (o *valueScan) kids() []op { return nil }

func (o *valueScan) run(ec *execCtx) ([]int32, error) {
	list, _ := o.resolve(ec)
	// Callers own run results; the memoised fragment is shared.
	return append([]int32(nil), list...), nil
}

func (o *valueScan) open(ec *execCtx) (cursor, error) {
	list, _ := o.resolve(ec)
	return &sliceCursor{nodes: append([]int32(nil), list...)}, nil
}

// resolve returns the fragment node list, or ok=false when the value
// index cannot serve this execution (disabled by Options.NoValueIndex,
// or the document was built without values) and the semijoin must fall
// back to per-node evaluation. The returned slice is shared across
// executions: callers must not mutate it.
func (o *valueScan) resolve(ec *execCtx) (list []int32, ok bool) {
	return o.resolveWith(ec.env.Doc, ec.opts)
}

// resolveWith is resolve without an execution context (the greedy
// ordering pass resolves resident fragments at compile time).
func (o *valueScan) resolveWith(d *doc.Document, opts *Options) (list []int32, ok bool) {
	if opts.NoValueIndex || !d.HasValues() {
		return nil, false
	}
	ix := d.ValueIndex()
	if ix == nil {
		return nil, false
	}
	o.once.Do(func() { o.frag = o.materialize(d, ix) })
	return o.frag, true
}

// materialize computes the fragment from the value index.
func (o *valueScan) materialize(d *doc.Document, ix *vindex.Index) []int32 {
	var keyed []int32
	switch {
	case o.contains:
		keyed = ix.ContainsSubstr(o.lit)
	case o.numeric:
		if f, okf := vindex.ParseNumber(o.lit); okf {
			keyed = ix.LookupNumeric(valueOpFor(o.op), f)
		}
		// A non-numeric number literal cannot occur (the parser marks
		// Numeric only for number tokens); no keyed node matches it.
	default:
		keyed = ix.LookupString(valueOpFor(o.op), o.lit)
	}
	// The lookups return fresh slices: filter by the predicate's node
	// test in place.
	keyed = filterTest(d, o.pa, o.test, keyed)
	// Overflow nodes (values past the index key cap) re-evaluate per
	// node, test first so only candidate kinds pay the string rebuild.
	var over []int32
	for _, v := range ix.Overflow() {
		if !nodePassesTest(d, o.pa, o.test, v) {
			continue
		}
		if o.matches(d.StringValue(v)) {
			over = append(over, v)
		}
	}
	if len(over) == 0 {
		return keyed
	}
	return core.MergeOrSelf(keyed, over)
}

// matches applies the value predicate to one string value — the same
// semantics the index lookups implement over keyed values.
func (o *valueScan) matches(s string) bool {
	if o.contains {
		return strings.Contains(s, o.lit)
	}
	return xpath.CompareValue(s, o.op, o.lit, o.numeric)
}

// predString renders the predicate the scan serves (EXPLAIN/canon).
func (o *valueScan) predString() string {
	step := xpath.Step{Axis: o.pa, Test: o.test}
	if o.contains {
		return fmt.Sprintf("contains(%s, %q)", step, o.lit)
	}
	if o.numeric {
		return fmt.Sprintf("%s %s %s", step, o.op, o.lit)
	}
	return fmt.Sprintf("%s %s %q", step, o.op, o.lit)
}

// valueOpFor maps comparison operators onto value-index lookups ('!='
// is not range-servable and never reaches the rewrite).
func valueOpFor(op xpath.CompareOp) vindex.Op {
	switch op {
	case xpath.OpLt:
		return vindex.OpLt
	case xpath.OpLe:
		return vindex.OpLe
	case xpath.OpGt:
		return vindex.OpGt
	case xpath.OpGe:
		return vindex.OpGe
	default:
		return vindex.OpEq
	}
}

// valueSemiJoinOp keeps the input nodes that have at least one
// fragment node on the predicate's axis, probing the value fragment
// per input node by binary search (set-at-a-time over the fragment,
// one probe per candidate instead of one sub-path evaluation per
// candidate). When the fragment cannot be served it degrades to the
// compiled predicate program, node at a time.
type valueSemiJoinOp struct {
	opBase
	in   op
	meta *stepMeta
	// pred is the original predicate rendering (for EXPLAIN).
	pred string
	// pa is the predicate path's axis, which the probes decide.
	pa   axis.Axis
	scan *valueScan
	// prog is the per-node fallback program (NoValueIndex, value-less
	// documents).
	prog *predProg
	est  estimates
	// srcOrd/chain: see predFilterOp.
	srcOrd int
	chain  *chainMeta
}

func (o *valueSemiJoinOp) kids() []op { return []op{o.in, o.scan} }

func (o *valueSemiJoinOp) run(ec *execCtx) ([]int32, error) {
	in, err := o.in.run(ec)
	if err != nil {
		return nil, err
	}
	if err := ec.cancelled(); err != nil {
		return nil, err
	}
	st := &ec.steps[o.meta.ord-1]
	ost := &ec.ops[o.id]
	start := time.Now()
	list, indexed := o.scan.resolve(ec)
	ost.indexed = indexed
	d := ec.env.Doc
	var out []int32
	if indexed && !ec.opts.NoReorder && len(list) > 0 && probeFromInput(len(list), len(in)) {
		// Fragment-side direction: the fragment is far smaller than the
		// input, so derive the certified context nodes from the fragment
		// (the inverse image of valueQualifies) and intersect with the
		// input instead of probing every input node.
		ost.probeDir = probeFragSweep
		out = intersectSorted(in, valueCandidates(d, o.pa, list))
	} else {
		if indexed {
			ost.probeDir = probeInputSeek
		}
		out = in[:0]
		for i, v := range in {
			if i&1023 == 0 {
				if err := ec.cancelled(); err != nil {
					return nil, err
				}
			}
			var ok bool
			if indexed {
				ok = valueQualifies(d, o.pa, list, v)
			} else {
				ok, err = o.prog.holds(ec, v)
				if err != nil {
					return nil, err
				}
			}
			if ok {
				out = append(out, v)
			}
		}
	}
	st.Duration += time.Since(start)
	st.OutputSize = len(out)
	ost.record(len(in), len(out))
	ost.fragSize = len(list)
	return out, nil
}

// valueQualifies decides whether context node c has a fragment node on
// the predicate axis: binary search over the pre-sorted fragment plus
// Equation (1) subtree windows (attributes are inside their element's
// window, so the child/attribute probes scan the fragment∩subtree
// slice checking parenthood).
func valueQualifies(d *doc.Document, pa axis.Axis, list []int32, c int32) bool {
	switch pa {
	case axis.Self:
		i := searchNodes(list, c)
		return i < len(list) && list[i] == c
	case axis.Descendant:
		i := searchNodes(list, c+1)
		return i < len(list) && list[i] <= c+d.SubtreeSize(c)
	case axis.DescendantOrSelf:
		i := searchNodes(list, c)
		return i < len(list) && list[i] <= c+d.SubtreeSize(c)
	default: // axis.Child, axis.Attribute
		end := c + d.SubtreeSize(c)
		for i := searchNodes(list, c+1); i < len(list) && list[i] <= end; i++ {
			if d.Parent(list[i]) == c {
				return true
			}
		}
		return false
	}
}

// valueCandidates derives, from the fragment nodes, every context node
// the predicate axis could certify — the inverse image of
// valueQualifies. Self: the fragment node itself; child/attribute: its
// parent; descendant: its proper ancestors (the parent chain);
// descendant-or-self: itself plus the chain.
func valueCandidates(d *doc.Document, pa axis.Axis, list []int32) []int32 {
	var cands []int32
	for _, f := range list {
		switch pa {
		case axis.Self:
			cands = append(cands, f)
		case axis.Descendant:
			for p := d.Parent(f); p != doc.NoParent; p = d.Parent(p) {
				cands = append(cands, p)
			}
		case axis.DescendantOrSelf:
			cands = append(cands, f)
			for p := d.Parent(f); p != doc.NoParent; p = d.Parent(p) {
				cands = append(cands, p)
			}
		default: // axis.Child, axis.Attribute
			if p := d.Parent(f); p != doc.NoParent {
				cands = append(cands, p)
			}
		}
	}
	return sortDedup(cands)
}

// intersectSorted intersects two strictly increasing sequences,
// writing the result into a's prefix (a is caller-owned).
func intersectSorted(a, b []int32) []int32 {
	out := a[:0]
	if len(b)*16 < len(a) {
		// b is tiny: binary-probe a for each b member. Writes trail the
		// read position (the k-th match sits at index >= k), so the
		// in-place prefix never clobbers unread entries.
		pos := 0
		for _, v := range b {
			i := pos + searchNodes(a[pos:], v)
			if i < len(a) && a[i] == v {
				out = append(out, v)
				i++
			}
			pos = i
		}
		return out
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func (o *valueSemiJoinOp) open(ec *execCtx) (cursor, error) {
	if o.chain != nil {
		return openChain(ec, o.chain)
	}
	in, err := o.in.open(ec)
	if err != nil {
		return nil, err
	}
	st := &ec.steps[o.meta.ord-1]
	ost := &ec.ops[o.id]
	ost.ran = true
	c := &valueSemiJoinCursor{
		ec: ec, o: o, st: st, ost: ost, in: in, d: ec.env.Doc,
	}
	if list, indexed := o.scan.resolve(ec); indexed {
		c.indexed = true
		c.list = list
		ost.indexed = true
		ost.fragSize = len(list)
		ost.probeDir = probeInputSeek // streaming is point-probe by nature
		if len(list) > 0 {
			c.spanHi = list[len(list)-1]
			if o.pa == axis.Self {
				// Only fragment members themselves qualify: input below
				// the span start never can.
				c.minSeek = list[0]
			}
		}
	}
	return c, nil
}

// valueSemiJoinCursor streams the value semijoin: input batches filter
// in place against the fragment probes, with seek hints from the
// fragment span — once the input passes the last fragment node, no
// later context node can have a fragment node on self, child,
// attribute or descendant axes, and the cursor stops pulling input
// entirely (the staircase kernels upstream never scan the rest of the
// document). The fallback mode filters with the predicate program,
// node at a time, and never terminates early.
type valueSemiJoinCursor struct {
	ec  *execCtx
	o   *valueSemiJoinOp
	st  *StepStats
	ost *opStat
	in  cursor
	d   *doc.Document

	indexed bool
	list    []int32
	minSeek int32
	spanHi  int32
	done    bool
}

func (c *valueSemiJoinCursor) next(seek int32) ([]int32, error) {
	if c.done {
		return nil, nil
	}
	if c.indexed && len(c.list) == 0 {
		c.done = true
		return nil, nil
	}
	if err := c.ec.cancelled(); err != nil {
		return nil, err
	}
	start := time.Now()
	defer func() { c.st.Duration += time.Since(start) }()
	for {
		s := seek
		if c.indexed && c.minSeek > s {
			s = c.minSeek
		}
		b, err := c.in.next(s)
		if err != nil {
			return nil, err
		}
		if b == nil {
			c.done = true
			return nil, nil
		}
		// Filter in place: b is the producing operator's batch buffer,
		// released to us until our next pull.
		out := b[:0]
		for _, v := range b {
			var ok bool
			if c.indexed {
				ok = valueQualifies(c.d, c.o.pa, c.list, v)
			} else {
				ok, err = c.o.prog.holds(c.ec, v)
				if err != nil {
					return nil, err
				}
			}
			if ok {
				out = append(out, v)
			}
		}
		c.ost.in += len(b)
		c.st.InputSize = c.ost.in
		// Every supported predicate axis looks at pre ranks >= the
		// context node (self, child, attribute, descendant(-or-self)):
		// past the fragment's last node nothing further qualifies.
		if c.indexed && b[len(b)-1] >= c.spanHi {
			c.done = true
		}
		if len(out) > 0 {
			c.ost.out += len(out)
			c.st.OutputSize = c.ost.out
			return out, nil
		}
		if c.done {
			return nil, nil
		}
	}
}

func (c *valueSemiJoinCursor) close() { c.in.close() }
