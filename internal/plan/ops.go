// Physical operators. A compiled plan is a tree of ops; each op pulls
// its input operator's result and transforms it. Operator kinds:
//
//	Source         initial context ([root] or the caller's nodes)
//	StaircaseJoin  one partitioning-axis step (descendant, ancestor,
//	               following, preceding, and the or-self variants)
//	               via the core staircase join kernels; carries an
//	               optional fragment scan (IndexScan/ColumnScan) as
//	               the §4.4 name/kind-test pushdown candidate
//	AxisStep       the remaining axes: positional parent/child/sibling
//	               and attribute lookups over the encoding's columns
//	SemiJoin       a rewritten existential predicate: keeps the input
//	               nodes that stand in the inverse axis relation to a
//	               fragment, set-at-a-time (no per-node evaluation)
//	PredFilter     a non-positional predicate, node at a time
//	PosFilter      a whole step with position-sensitive predicates,
//	               context node at a time with proximity positions
//	Merge          the '|' union merge (document order, dedup)
//
// The NaiveJoin and SQLJoin strategy baselines reuse the StaircaseJoin
// operator slot with a different strategy tag, mirroring the paper's
// comparison matrix.

package plan

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"staircase/internal/axis"
	"staircase/internal/baseline"
	"staircase/internal/core"
	"staircase/internal/doc"
	"staircase/internal/xpath"
)

// op is one physical operator.
type op interface {
	// run pulls the input operators and evaluates this operator
	// (materializing executor).
	run(ec *execCtx) ([]int32, error)
	// open returns a streaming cursor over the operator's result
	// (cursor executor, cursor.go). The cursor owns its input cursors.
	open(ec *execCtx) (cursor, error)
	// kids returns the input operators (primary input first).
	kids() []op
	// opID is the operator's index into the plan's op table.
	opID() int
	// setID assigns the id at compile time.
	setID(int)
}

// opBase carries the plan-assigned operator id.
type opBase struct{ id int }

func (b *opBase) opID() int   { return b.id }
func (b *opBase) setID(n int) { b.id = n }

// stepMeta links operators back to the location step they implement.
type stepMeta struct {
	ord     int    // 1-based step ordinal across the whole query
	display string // canonical step rendering, including predicates
	axis    axis.Axis
}

// sourceOp emits the initial context: the document root for absolute
// paths, the caller-provided node sequence otherwise.
type sourceOp struct {
	opBase
	docRoot bool
}

func (o *sourceOp) kids() []op { return nil }

func (o *sourceOp) run(ec *execCtx) ([]int32, error) {
	var out []int32
	if o.docRoot {
		out = []int32{ec.env.Doc.Root()}
	} else {
		out = ec.initial
	}
	ec.ops[o.id].record(len(out), len(out))
	return out, nil
}

// fragScan is the pushdown candidate of a join or semijoin: the
// pre-sorted node list of a name or kind test, served by the shared
// tag/kind index (IndexScan) or rebuilt by an O(n) column scan
// (ColumnScan, under Options.NoIndex). It appears in the plan tree as
// a leaf input of its join.
type fragScan struct {
	opBase
	test xpath.NodeTest
	// card is the exact fragment cardinality when the index serves the
	// plan (compile time); -1 when unknown (NoIndex compilation).
	card int64
	// spanLo/spanHi delimit the fragment's pre range (valid when
	// hasSpan).
	spanLo, spanHi int32
	hasSpan        bool
	// The fragment list is a pure function of the plan's document and
	// options (both immutable after Compile), so it is resolved at most
	// once per plan and shared read-only by every Run — repeated
	// executions of a prepared plan stop re-probing the index maps (and
	// NoIndex column rescans stop re-scanning).
	once    sync.Once
	list    []int32
	indexed bool
	ok      bool
}

func (o *fragScan) kids() []op { return nil }

// run resolves the fragment list; used via resolve, never as a chain
// link.
func (o *fragScan) run(ec *execCtx) ([]int32, error) {
	list, _, _ := o.resolve(ec)
	// Callers own run results; the memoised fragment is shared.
	return append([]int32(nil), list...), nil
}

// resolve returns the fragment node list, whether it came from the
// shared index, and whether the test is servable at all. The returned
// slice is shared across executions: callers must not mutate it.
func (o *fragScan) resolve(ec *execCtx) (list []int32, indexed, ok bool) {
	return o.resolveWith(ec.env.Doc, ec.opts)
}

// resolveWith is resolve without an execution context (the greedy
// ordering pass runs at compile time).
func (o *fragScan) resolveWith(d *doc.Document, opts *Options) (list []int32, indexed, ok bool) {
	o.once.Do(func() {
		o.list, o.indexed, o.ok = pushdownList(d, o.test, opts)
	})
	return o.list, o.indexed, o.ok
}

// pushdownList resolves the fragment node list for a pushable node
// test — the nametest(doc, n) (or kind-test) operand of the §4.4
// rewrite. ok is false for tests that cannot be pushed (*, node(), and
// named processing instructions).
func pushdownList(d *doc.Document, test xpath.NodeTest, opts *Options) (list []int32, indexed, ok bool) {
	switch test.Kind {
	case xpath.TestName:
		id, found := d.Names().Lookup(test.Name)
		if !found {
			return nil, !opts.NoIndex, true // absent tag: empty fragment
		}
		if opts.NoIndex {
			return scanTagList(d, id, morselWorkersFor(opts)), false, true
		}
		return d.TagIndex().Tag(id), true, true
	case xpath.TestText:
		return kindFragment(d, doc.Text, opts)
	case xpath.TestComment:
		return kindFragment(d, doc.Comment, opts)
	case xpath.TestPI:
		if test.Name != "" {
			return nil, false, false
		}
		return kindFragment(d, doc.PI, opts)
	default:
		return nil, false, false
	}
}

// pushable reports whether pushdownList can serve the test.
func pushable(test xpath.NodeTest) bool {
	switch test.Kind {
	case xpath.TestName, xpath.TestText, xpath.TestComment:
		return true
	case xpath.TestPI:
		return test.Name == ""
	default:
		return false
	}
}

// scanTagList rebuilds a tag fragment with an O(n) column scan — the
// ColumnScan operator behind Options.NoIndex. Under morsel-parallel
// execution the scan is sliced across the workers (document order is
// preserved by construction); serially it stays a direct loop — the
// per-node closure dispatch of the parallel splitter costs ~2x on this
// hot path (gated by EnginePushdownCold).
func scanTagList(d *doc.Document, nameID int32, workers int) []int32 {
	kind := d.KindSlice()
	name := d.NameSlice()
	if workers > 1 {
		return core.FilterScanParallel(0, int32(d.Size()), workers, func(v int32) bool {
			return kind[v] == doc.Elem && name[v] == nameID
		})
	}
	var list []int32
	for v := 0; v < d.Size(); v++ {
		if kind[v] == doc.Elem && name[v] == nameID {
			list = append(list, int32(v))
		}
	}
	return list
}

// kindFragment serves a non-element kind list from the index or by
// scan (parallel under morsel execution, direct loop serially — see
// scanTagList).
func kindFragment(d *doc.Document, k doc.Kind, opts *Options) (list []int32, indexed, ok bool) {
	if opts.NoIndex {
		kind := d.KindSlice()
		if workers := morselWorkersFor(opts); workers > 1 {
			list = core.FilterScanParallel(0, int32(d.Size()), workers, func(v int32) bool {
				return kind[v] == k
			})
			return list, false, true
		}
		for v := 0; v < d.Size(); v++ {
			if kind[v] == k {
				list = append(list, int32(v))
			}
		}
		return list, false, true
	}
	return d.TagIndex().KindList(uint8(k)), true, true
}

// joinOp evaluates one partitioning-axis step (or an or-self variant)
// with the plan's strategy: the staircase join kernels, the naive
// region-query baseline, or the SQL B-tree semijoin.
type joinOp struct {
	opBase
	in   op
	meta *stepMeta
	// base is the partitioning axis; orSelfAxis is the original
	// or-self axis when orSelf (DescendantOrSelf/AncestorOrSelf).
	base       axis.Axis
	orSelf     bool
	orSelfAxis axis.Axis
	// docNode: first step of an absolute path with document-node
	// semantics (descendant/descendant-or-self only reach joinOp).
	docNode bool
	test    xpath.NodeTest
	variant core.Variant
	frag    *fragScan // pushdown candidate; nil when not pushable
	est     estimates
}

func (o *joinOp) kids() []op {
	if o.frag != nil {
		return []op{o.in, o.frag}
	}
	return []op{o.in}
}

func (o *joinOp) run(ec *execCtx) ([]int32, error) {
	in, err := o.in.run(ec)
	if err != nil {
		return nil, err
	}
	if err := ec.cancelled(); err != nil {
		return nil, err
	}
	st := ec.step(o.meta, len(in))
	ost := &ec.ops[o.id]
	prev, prevFrag := ec.cur, ec.curFrag
	ec.cur, ec.curFrag = ost, o.frag
	skippedBefore := st.Core.Skipped
	start := time.Now()
	var out []int32
	if o.docNode {
		out, err = ec.docRootAxisTest(o.stepAxis(), o.test, st)
	} else {
		out, err = ec.axisTest(o.stepAxis(), o.test, in, st)
	}
	st.Duration += time.Since(start)
	ec.cur, ec.curFrag = prev, prevFrag
	if err != nil {
		return nil, err
	}
	st.OutputSize = len(out)
	ost.record(len(in), len(out))
	ost.skipped += st.Core.Skipped - skippedBefore
	return out, nil
}

// stepAxis returns the axis the operator evaluates (the or-self axis
// when merging self, the partitioning base otherwise).
func (o *joinOp) stepAxis() axis.Axis {
	if o.orSelf {
		return o.orSelfAxis
	}
	return o.base
}

// axisStepOp evaluates the non-partitioning axes: child, parent, self,
// attribute, the sibling axes and namespace, via positional
// parent/size-column lookups. docNode selects the document-node
// semantics of the first step of an absolute path.
type axisStepOp struct {
	opBase
	in      op
	meta    *stepMeta
	a       axis.Axis
	test    xpath.NodeTest
	docNode bool
	est     estimates
}

func (o *axisStepOp) kids() []op { return []op{o.in} }

func (o *axisStepOp) run(ec *execCtx) ([]int32, error) {
	in, err := o.in.run(ec)
	if err != nil {
		return nil, err
	}
	if err := ec.cancelled(); err != nil {
		return nil, err
	}
	st := ec.step(o.meta, len(in))
	start := time.Now()
	var out []int32
	if o.docNode {
		out, err = ec.docRootAxisTest(o.a, o.test, st)
	} else {
		out, err = ec.axisTest(o.a, o.test, in, st)
	}
	st.Duration += time.Since(start)
	if err != nil {
		return nil, err
	}
	st.OutputSize = len(out)
	ec.ops[o.id].record(len(in), len(out))
	return out, nil
}

// predFilterOp filters a document-ordered node set by a non-positional
// predicate, node at a time.
type predFilterOp struct {
	opBase
	in   op
	meta *stepMeta
	pred xpath.Predicate
	prog *predProg
	est  estimates
	// srcOrd is the predicate's source position within its step; the
	// canonical plan string renders commutable filter chains in srcOrd
	// order so ordering decisions never change Canon.
	srcOrd int
	// chain, on the bottom operator of a reordered filter chain, carries
	// the adaptive-execution metadata (order.go); nil otherwise.
	chain *chainMeta
}

func (o *predFilterOp) kids() []op { return []op{o.in} }

func (o *predFilterOp) run(ec *execCtx) ([]int32, error) {
	in, err := o.in.run(ec)
	if err != nil {
		return nil, err
	}
	st := &ec.steps[o.meta.ord-1]
	start := time.Now()
	out := in[:0]
	for i, v := range in {
		if i&1023 == 0 {
			if err := ec.cancelled(); err != nil {
				return nil, err
			}
		}
		ok, err := o.prog.holds(ec, v)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, v)
		}
	}
	st.Duration += time.Since(start)
	st.OutputSize = len(out)
	ec.ops[o.id].record(len(in), len(out))
	return out, nil
}

// semiJoinOp is the exists-semijoin rewrite: keep the input nodes that
// have at least one fragment node on the predicate's axis. Evaluated
// set-at-a-time as a staircase node-list join on the *inverse* axis —
// s has a fragment node among its descendants iff s is an ancestor of
// a fragment node — instead of one predicate evaluation per node.
type semiJoinOp struct {
	opBase
	in   op
	meta *stepMeta
	// pred is the original predicate rendering (for EXPLAIN).
	pred string
	// existsAxis is the predicate's axis; inv its inverse, which the
	// node-list join runs on.
	existsAxis axis.Axis
	inv        axis.Axis
	frag       *fragScan
	variant    core.Variant
	est        estimates
	// srcOrd/chain: see predFilterOp.
	srcOrd int
	chain  *chainMeta
}

func (o *semiJoinOp) kids() []op { return []op{o.in, o.frag} }

func (o *semiJoinOp) run(ec *execCtx) ([]int32, error) {
	in, err := o.in.run(ec)
	if err != nil {
		return nil, err
	}
	if err := ec.cancelled(); err != nil {
		return nil, err
	}
	st := &ec.steps[o.meta.ord-1]
	ost := &ec.ops[o.id]
	start := time.Now()
	skippedBefore := st.Core.Skipped
	list, indexed, _ := o.frag.resolve(ec)
	ost.indexed = indexed
	var out []int32
	if len(in) > 0 && len(list) > 0 {
		if !ec.opts.NoReorder && probeFromInput(len(in), len(list)) {
			// Input-probe direction: the input is far smaller than the
			// fragment, so per-node binary probes (O(n log f)) beat the
			// node-list join's linear sweep (O(n + f)).
			ost.probeDir = probeInputSeek
			pr := newSemiProbe(ec.env.Doc, o.existsAxis, list)
			out = in[:0]
			for _, v := range in {
				if pr.admit(v) {
					out = append(out, v)
				}
				if pr.exhaustedAfter(v) {
					break
				}
			}
		} else {
			ost.probeDir = probeFragSweep
			co := &core.Options{Variant: o.variant, Stats: &st.Core}
			out, err = core.JoinNodeList(ec.env.Doc, o.inv, in, list, co)
		}
	}
	st.Duration += time.Since(start)
	if err != nil {
		return nil, err
	}
	st.OutputSize = len(out)
	ost.record(len(in), len(out))
	ost.fragSize = len(list)
	ost.skipped += st.Core.Skipped - skippedBefore
	return out, nil
}

// posFilterOp evaluates a whole step with position-sensitive
// predicates, context node by context node, maintaining XPath
// proximity positions (reverse axes count backwards). It also carries
// the document-node semantics of a predicated first step of an
// absolute path.
type posFilterOp struct {
	opBase
	in      op
	meta    *stepMeta
	step    xpath.Step
	docNode bool
	progs   []*predProg
	est     estimates
}

func (o *posFilterOp) kids() []op { return []op{o.in} }

func (o *posFilterOp) run(ec *execCtx) ([]int32, error) {
	in, err := o.in.run(ec)
	if err != nil {
		return nil, err
	}
	st := ec.step(o.meta, len(in))
	ost := &ec.ops[o.id]
	prev := ec.cur
	ec.cur = ost
	start := time.Now()
	out, err := o.evalContext(ec, in, st)
	st.Duration += time.Since(start)
	ec.cur = prev
	if err != nil {
		return nil, err
	}
	st.OutputSize = len(out)
	ost.record(len(in), len(out))
	return out, nil
}

// evalContext evaluates the positional step for a whole context
// sequence, context node by context node (shared by the materializing
// run and the blocking modes of the streaming cursor).
func (o *posFilterOp) evalContext(ec *execCtx, in []int32, st *StepStats) ([]int32, error) {
	var all []int32
	// Forward-axis per-context results are strictly increasing, so the
	// concatenation only needs re-sorting when consecutive groups
	// interleave; reverse axes emit per-context results backwards and
	// always re-sort.
	sorted := !o.step.Axis.Reverse()
	for _, c := range in {
		if err := ec.cancelled(); err != nil {
			return nil, err
		}
		nodes, err := o.evalOne(ec, c, st)
		if err != nil {
			return nil, err
		}
		if sorted && len(nodes) > 0 && len(all) > 0 && nodes[0] <= all[len(all)-1] {
			sorted = false
		}
		all = append(all, nodes...)
	}
	// Per-context results are sorted; when they never interleaved
	// (the common case: disjoint context subtrees) the concatenation
	// is already a document-ordered duplicate-free sequence, so the
	// defensive sortDedup decays to the monotonicity counter above.
	if sorted {
		if invariantChecks {
			assertSortedDedup(all)
		}
		return all, nil
	}
	return sortDedup(all), nil
}

// evalOne evaluates the positional step for one context node: axis
// result in proximity order (reverse axes count backwards), then the
// predicates in sequence. (The streaming cursor's evalOneCapped wraps
// this with the [k] early-stop; the materializing executor keeps its
// exact per-step work counters.)
func (o *posFilterOp) evalOne(ec *execCtx, c int32, st *StepStats) ([]int32, error) {
	var nodes []int32
	var err error
	if o.docNode {
		nodes, err = ec.docRootAxisTest(o.step.Axis, o.step.Test, st)
	} else {
		nodes, err = ec.axisTest(o.step.Axis, o.step.Test, []int32{c}, st)
	}
	if err != nil {
		return nil, err
	}
	if o.step.Axis.Reverse() {
		for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
			nodes[i], nodes[j] = nodes[j], nodes[i]
		}
	}
	for _, prog := range o.progs {
		nodes, err = applyPositional(ec, nodes, prog)
		if err != nil {
			return nil, err
		}
	}
	return nodes, nil
}

// firstK returns k when the operator's first predicate is a bare
// position()=k (or [k]) test — the axis result beyond the k-th
// candidate can then never influence the output — and 0 otherwise.
func (o *posFilterOp) firstK() int {
	if len(o.progs) == 0 || o.progs[0].kind != pgPosition {
		return 0
	}
	return o.progs[0].n
}

// applyPositional applies one predicate to an axis-ordered node
// sequence of a single context node, maintaining proximity positions.
func applyPositional(ec *execCtx, nodes []int32, prog *predProg) ([]int32, error) {
	var out []int32
	for i, v := range nodes {
		ok, err := prog.holdsAt(ec, v, i+1, len(nodes))
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, v)
		}
	}
	return out, nil
}

// mergeOp merges the union branches into one document-ordered,
// duplicate-free sequence ('|' semantics).
type mergeOp struct {
	opBase
	ins []op
}

func (o *mergeOp) kids() []op { return o.ins }

func (o *mergeOp) run(ec *execCtx) ([]int32, error) {
	var acc []int32
	total := 0
	for _, in := range o.ins {
		if err := ec.cancelled(); err != nil {
			return nil, err
		}
		nodes, err := in.run(ec)
		if err != nil {
			return nil, err
		}
		total += len(nodes)
		acc = core.MergeOrSelf(acc, nodes)
	}
	ec.ops[o.id].record(total, len(acc))
	return acc, nil
}

// --- shared evaluation helpers (the step interpreter's machinery,
// --- restructured to serve the operators) --------------------------

// step returns the StepStats slot of a step, stamping its input size
// on first touch.
func (ec *execCtx) step(meta *stepMeta, inputSize int) *StepStats {
	st := &ec.steps[meta.ord-1]
	st.InputSize = inputSize
	return st
}

// axisTest evaluates axis::nodetest for the whole context.
func (ec *execCtx) axisTest(a axis.Axis, test xpath.NodeTest, context []int32, st *StepStats) ([]int32, error) {
	d := ec.env.Doc
	switch a {
	case axis.Descendant, axis.Ancestor, axis.Following, axis.Preceding:
		return ec.partitioning(a, test, context, st)
	case axis.DescendantOrSelf, axis.AncestorOrSelf:
		base := axis.Descendant
		if a == axis.AncestorOrSelf {
			base = axis.Ancestor
		}
		nodes, err := ec.partitioning(base, test, context, st)
		if err != nil {
			return nil, err
		}
		selfPart := filterTest(d, a, test, append([]int32(nil), context...))
		return core.MergeOrSelf(nodes, selfPart), nil
	case axis.Child:
		var out []int32
		for _, c := range context {
			out = append(out, d.Children(c)...)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return filterTest(d, a, test, out), nil
	case axis.Parent:
		var out []int32
		for _, c := range context {
			if p := d.Parent(c); p != doc.NoParent {
				out = append(out, p)
			}
		}
		out = sortDedup(out)
		return filterTest(d, a, test, out), nil
	case axis.Self:
		return filterTest(d, a, test, append([]int32(nil), context...)), nil
	case axis.Attribute:
		var out []int32
		for _, c := range context {
			out = append(out, d.Attributes(c)...)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return filterTest(d, a, test, out), nil
	case axis.FollowingSibling:
		var out []int32
		for _, c := range context {
			for s := d.FollowingSibling(c); s != -1; s = d.FollowingSibling(s) {
				out = append(out, s)
			}
		}
		out = sortDedup(out)
		return filterTest(d, a, test, out), nil
	case axis.PrecedingSibling:
		var out []int32
		for _, c := range context {
			p := d.Parent(c)
			if p == doc.NoParent {
				continue
			}
			for _, s := range d.Children(p) {
				if s >= c {
					break
				}
				out = append(out, s)
			}
		}
		out = sortDedup(out)
		return filterTest(d, a, test, out), nil
	case axis.Namespace:
		return nil, nil
	default:
		return nil, fmt.Errorf("plan: unsupported axis %v", a)
	}
}

// docRootAxisTest evaluates a step against the implicit document node
// of an absolute path: its only child is the root element, its
// descendants are all nodes including the root element, and every
// other axis is empty from there.
func (ec *execCtx) docRootAxisTest(a axis.Axis, test xpath.NodeTest, st *StepStats) ([]int32, error) {
	d := ec.env.Doc
	root := d.Root()
	switch a {
	case axis.Child:
		return filterTest(d, a, test, []int32{root}), nil
	case axis.Descendant, axis.DescendantOrSelf:
		return ec.axisTest(axis.DescendantOrSelf, test, []int32{root}, st)
	case axis.Self, axis.AncestorOrSelf:
		if test.Kind == xpath.TestNode {
			return []int32{root}, nil // stand-in for the document node
		}
		return nil, nil
	default:
		// ancestor, parent, siblings, following, preceding, attribute,
		// namespace: empty from the document node.
		return nil, nil
	}
}

// partitioning evaluates one of the four partitioning axes with the
// configured strategy, applying the name test before or after the
// join. The pushdown and parallel-fan-out decisions are made here,
// from the actual context, with the cost model's bounds.
func (ec *execCtx) partitioning(a axis.Axis, test xpath.NodeTest, context []int32, st *StepStats) ([]int32, error) {
	d := ec.env.Doc
	opts := ec.opts
	switch opts.Strategy {
	case Staircase, StaircaseSkip, StaircaseNoSkip:
		co := &core.Options{Variant: variantFor(opts.Strategy)}
		if st != nil {
			co.Stats = &st.Core
		}
		bound := estimateJoinTouches(d, a, context)
		workers := parallelWorkersFor(opts, bound)
		if ec.cur != nil {
			ec.cur.bound = bound
			ec.cur.workersOffered = workers
		}
		if opts.Pushdown != PushNever {
			if list, indexed, ok := ec.fragList(test); ok {
				if ec.cur != nil {
					ec.cur.fragSize = len(list)
				}
				if shouldPush(int64(len(list)), bound, opts.Pushdown, workers) {
					if st != nil {
						st.Pushed = true
						st.Indexed = indexed
					}
					if ec.cur != nil {
						ec.cur.pushed = true
						ec.cur.indexed = indexed
					}
					if len(list) == 0 {
						return nil, nil // tag/kind absent: empty result
					}
					// Fragment joins stay serial: the node list is binary-
					// search bounded and the cost model only chose this
					// path because it beats even the parallel full-
					// document join.
					return core.JoinNodeList(d, a, list, context, co)
				}
			}
		}
		var nodes []int32
		var err error
		if workers > 1 {
			nodes, err = core.ParallelJoin(d, a, context, workers, co)
		} else {
			nodes, err = core.Join(d, a, context, co)
		}
		if err != nil {
			return nil, err
		}
		return filterTest(d, a, test, nodes), nil
	case Naive:
		var nst *baseline.NaiveStats
		if st != nil {
			nst = &st.Naive
		}
		nodes := baseline.NaiveJoin(d, a, context, nst)
		return filterTest(d, a, test, nodes), nil
	case SQL, SQLWindow:
		so := baseline.SQLOptions{UseWindow: opts.Strategy == SQLWindow}
		if test.Kind == xpath.TestName {
			// The paper's DB2 observation: the B-tree uses concatenated
			// (pre, post, tag name) keys, so the name test is early.
			so.Tag = test.Name
			if st != nil {
				st.Pushed = true
			}
			if ec.cur != nil {
				ec.cur.pushed = true
			}
			return ec.env.SQL().Step(a, context, so)
		}
		nodes, err := ec.env.SQL().Step(a, context, so)
		if err != nil {
			return nil, err
		}
		return filterTest(d, a, test, nodes), nil
	default:
		return nil, fmt.Errorf("plan: unknown strategy %v", opts.Strategy)
	}
}

// variantFor maps strategies to staircase join variants.
func variantFor(s Strategy) core.Variant {
	switch s {
	case StaircaseNoSkip:
		return core.NoSkip
	case StaircaseSkip:
		return core.Skip
	default:
		return core.SkipEstimate
	}
}

// filterTest filters nodes by the node test in place (the slice is
// reused) and returns the filtered prefix.
func filterTest(d *doc.Document, a axis.Axis, test xpath.NodeTest, nodes []int32) []int32 {
	out := nodes[:0]
	for _, v := range nodes {
		if nodePassesTest(d, a, test, v) {
			out = append(out, v)
		}
	}
	return out
}

// nodePassesTest decides the node test for one node on one axis.
func nodePassesTest(d *doc.Document, a axis.Axis, test xpath.NodeTest, v int32) bool {
	principal := doc.Elem
	if a == axis.Attribute {
		principal = doc.Attr
	}
	k := d.KindOf(v)
	// Axis-level kind filtering for axes evaluated outside the
	// staircase join (child, self, siblings): attributes appear only
	// on the attribute axis, and the attribute axis holds nothing but
	// attributes (axis.In semantics — value-index fragments rely on
	// this when filtered per axis).
	if a != axis.Attribute && k == doc.Attr {
		return false
	}
	if a == axis.Attribute && k != doc.Attr {
		return false
	}
	switch test.Kind {
	case xpath.TestName:
		return k == principal && d.Name(v) == test.Name
	case xpath.TestAny:
		return k == principal
	case xpath.TestNode:
		return true
	case xpath.TestText:
		return k == doc.Text
	case xpath.TestComment:
		return k == doc.Comment
	case xpath.TestPI:
		return k == doc.PI && (test.Name == "" || d.Name(v) == test.Name)
	default:
		return false
	}
}

// sortDedup sorts a pre-rank slice and removes duplicates in place.
func sortDedup(nodes []int32) []int32 {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	out := nodes[:0]
	for i, v := range nodes {
		if i > 0 && v == nodes[i-1] {
			continue
		}
		out = append(out, v)
	}
	return out
}
