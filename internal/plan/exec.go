// Plan execution: the executor walks the operator tree, pulling node
// sequences through the operators and recording per-operator and
// per-step statistics for EXPLAIN and the engine's step reports.

package plan

import (
	"context"
	"sync"
	"time"

	"staircase/internal/axis"
	"staircase/internal/baseline"
	"staircase/internal/core"
	"staircase/internal/xpath"
)

// StepStats records per-location-step evaluation statistics,
// aggregated over the operators implementing the step (axis operator
// plus its filters).
type StepStats struct {
	// Step is the canonical rendering of the location step.
	Step string
	// Axis of the step.
	Axis axis.Axis
	// InputSize and OutputSize are the context and result sequence
	// lengths (after predicates).
	InputSize, OutputSize int
	// Pushed reports whether the name/kind test was pushed below the
	// join; Indexed reports whether the pushed fragment came from the
	// document's shared tag/kind index (false: name-column scan).
	Pushed, Indexed bool
	// Core holds staircase join work counters (staircase strategies,
	// partitioning axes only).
	Core core.Stats
	// Naive holds naive-strategy counters.
	Naive baseline.NaiveStats
	// Duration is the wall-clock time of the step.
	Duration time.Duration
}

// opStat records per-operator execution facts for EXPLAIN.
type opStat struct {
	ran      bool
	in, out  int
	pushed   bool
	indexed  bool
	fragSize int
	// skipped counts document (or fragment) nodes the operator's
	// staircase kernels jumped over without touching — the §3.3 empty
	// regions plus, under streaming execution, seek jumps and regions
	// never scanned because a downstream consumer stopped early.
	skipped int64
	// bound is the cost model's full-join touch bound from the actual
	// context; workersOffered the worker count the fan-out decision
	// used.
	bound          int64
	workersOffered int
	// morsels/morselWorkers record morsel-driven cursor execution: the
	// number of order-restored tasks the join was cut into and the
	// worker-pool size that drained them (0 for serial cursors).
	morsels       int
	morselWorkers int
	// probeDir records the semijoin probe direction actually taken:
	// probeFragSweep partitions the fragment (one staircase sweep over
	// input+fragment), probeInputSeek probes each input node into the
	// fragment by binary search (chosen when the input is much smaller).
	probeDir int8
}

// Semijoin probe directions (opStat.probeDir).
const (
	probeUnset     int8 = iota
	probeFragSweep      // sweep: fragment partitions the input
	probeInputSeek      // seek: each input node binary-probes the fragment
)

// probeFromInput decides the semijoin probe direction from the actual
// cardinalities: per-input binary probes (O(n log f)) beat the linear
// fragment sweep (O(n + f)) when the fragment dwarfs the input.
func probeFromInput(in, frag int) bool {
	return in > 0 && frag/in >= 16
}

func (s *opStat) record(in, out int) {
	s.ran = true
	s.in = in
	s.out = out
}

// execCtx is one execution of a plan.
type execCtx struct {
	env     *Env
	opts    *Options
	initial []int32
	ops     []opStat
	steps   []StepStats
	// ctx carries cancellation into the execution; operators check it
	// between batches (streaming) and at operator/loop boundaries
	// (materializing), so server timeouts and client disconnects stop
	// running joins. nil means "never cancelled".
	ctx context.Context
	// cur points at the opStat of the operator currently evaluating a
	// partitioning axis, so the shared helpers can record the cost
	// bounds and decisions they compute.
	cur *opStat
	// curFrag is the memoized fragment scan of the join currently
	// evaluating, so the shared partitioning helper reuses its resolved
	// list instead of re-probing the index maps.
	curFrag *fragScan
	// replans collects mid-flight adaptive re-planning notes (cursor
	// executor), surfaced through Result for EXPLAIN's reorder footer.
	replans []string
}

// fragList resolves the fragment list for a node test, serving it from
// the current join's memoized fragment scan when the tests match.
func (ec *execCtx) fragList(test xpath.NodeTest) (list []int32, indexed, ok bool) {
	if f := ec.curFrag; f != nil && f.test == test {
		return f.resolveWith(ec.env.Doc, ec.opts)
	}
	return pushdownList(ec.env.Doc, test, ec.opts)
}

// cancelled reports the execution context's error, if any.
func (ec *execCtx) cancelled() error {
	if ec.ctx == nil {
		return nil
	}
	return ec.ctx.Err()
}

// Result is the outcome of a plan execution.
type Result struct {
	// Nodes is the result sequence: pre ranks in document order,
	// duplicate-free (XPath node-sequence semantics).
	Nodes []int32
	// Steps reports per-step statistics in evaluation order (union
	// branches concatenate).
	Steps []StepStats
	// Truncated reports that a RunLimit execution stopped at its limit
	// while further results may exist (the cursor was not drained).
	Truncated bool

	ops     []opStat // per-operator actuals, consumed by EXPLAIN
	replans []string // adaptive re-plan notes, consumed by EXPLAIN
}

// Plan is a compiled physical plan, bound to one document (via its
// Env) and one Options configuration. Plans are immutable after
// Compile and safe for concurrent Run calls.
type Plan struct {
	env      *Env
	opts     Options
	logical  *Logical
	root     op
	ops      []op        // all operators, indexed by op id
	metas    []*stepMeta // one per location step, in step order
	rewrites []string    // logical + physical rewrites applied

	// orderNotes lists the greedy ordering pass's fired decisions;
	// opOrder maps op ids to per-operator ordering annotations. Both
	// feed EXPLAIN only — ordering is excluded from Canon.
	orderNotes []string
	opOrder    map[int]string

	canonOnce sync.Once
	canon     string // built on first use (lazily: EvalString paths never need it)

	// display caches per-operator detail renderings (predicate and step
	// strings) so repeated Explain calls stop re-rendering shared
	// logical subtrees; queryStr caches the canonical query text.
	displayOnce sync.Once
	display     []string
	queryOnce   sync.Once
	queryStr    string
}

// Options returns the configuration the plan was compiled with.
func (p *Plan) Options() Options { return p.opts }

// Rewrites lists the rewrite rules applied to this plan, in
// application order.
func (p *Plan) Rewrites() []string { return p.rewrites }

// Query returns the source query text in canonical form.
func (p *Plan) Query() string {
	p.queryOnce.Do(func() { p.queryStr = p.logical.Query.String() })
	return p.queryStr
}

// Logical returns the (rewritten) logical plan the physical plan was
// compiled from.
func (p *Plan) Logical() *Logical { return p.logical }

// NumSteps returns the number of location steps across all union
// branches.
func (p *Plan) NumSteps() int { return len(p.metas) }

// Canon returns the canonical string of the optimized plan. Two plans
// with equal canonical strings produce identical result sequences on
// the same document: the string covers the operator tree, axes, node
// tests, predicates, strategy and pushdown policy, and deliberately
// excludes the execution-time attributes that cannot change results
// (parallel worker counts, index-vs-scan fragment source). The query
// server keys its result cache on it, so equivalent query texts share
// cache entries.
func (p *Plan) Canon() string {
	p.canonOnce.Do(func() { p.canon = buildCanon(p) })
	return p.canon
}

// Run executes the plan. The initial context seeds relative union
// branches (absolute branches always start at the document root);
// pass the document root for the conventional whole-document query.
func (p *Plan) Run(initial []int32) (*Result, error) {
	return p.RunCtx(nil, initial)
}

// RunCtx is Run with cancellation: the execution checks ctx at
// operator boundaries and inside per-node loops, returning ctx's
// error once it is cancelled. A nil ctx never cancels.
func (p *Plan) RunCtx(ctx context.Context, initial []int32) (*Result, error) {
	ec := p.newExecCtx(ctx, initial)
	nodes, err := p.root.run(ec)
	if err != nil {
		return nil, err
	}
	return &Result{Nodes: nodes, Steps: ec.steps, ops: ec.ops, replans: ec.replans}, nil
}

// newExecCtx builds the per-execution state shared by the
// materializing and streaming executors.
func (p *Plan) newExecCtx(ctx context.Context, initial []int32) *execCtx {
	ec := &execCtx{
		env:     p.env,
		opts:    &p.opts,
		initial: initial,
		ops:     make([]opStat, len(p.ops)),
		steps:   make([]StepStats, len(p.metas)),
		ctx:     ctx,
	}
	for i, m := range p.metas {
		ec.steps[i].Step = m.display
		ec.steps[i].Axis = m.axis
	}
	return ec
}

// RunRoot executes the plan with the document root as initial context
// (the conventional whole-document evaluation).
func (p *Plan) RunRoot() (*Result, error) {
	return p.Run([]int32{p.env.Doc.Root()})
}
