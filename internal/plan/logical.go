// Logical plan: the typed, document-independent form of a query. The
// logical operators mirror the XPath algebra the engine evaluates —
//
//	DocRoot              initial context of an absolute path
//	Context              caller-provided context of a relative path
//	Step{axis, test}     one location step (axis + node test)
//	Filter{pred}         a non-positional predicate over a node set
//	Positional{step}     a whole step with position-sensitive
//	                     predicates (evaluated context node at a time)
//	Union                '|' of several paths
//	Dedup                sort + duplicate elimination over a union
//
// BuildLogical produces the plan from a parsed query; Rewrite
// (rewrite.go) then applies the algebraic rules. The String rendering
// spells the operator tree; Canon is the stable doc-independent
// canonical form used in cache keys.

package plan

import (
	"strings"

	"staircase/internal/axis"
	"staircase/internal/xpath"
)

// Logical is the logical plan of one query: a union of step chains.
type Logical struct {
	// Query is the parsed source query.
	Query xpath.Query
	// Paths are the union branches, in source order.
	Paths []LogicalPath
	// Rewrites lists the rewrite rules applied, in application order
	// (empty until Rewrite runs).
	Rewrites []string
}

// LogicalPath is one union branch: a chain of steps rooted at DocRoot
// (absolute) or Context (relative).
type LogicalPath struct {
	// Absolute paths start at the document root.
	Absolute bool
	// Steps is the location-step chain.
	Steps []LogicalStep
}

// LogicalStep is one location step of a chain.
type LogicalStep struct {
	// Axis and Test select the nodes the step delivers.
	Axis axis.Axis
	Test xpath.NodeTest
	// Preds are the step qualifiers, in source order.
	Preds []xpath.Predicate
	// First marks the first step of an absolute path: it receives
	// document-node semantics when the document has a materialised
	// root element (resolved against the document at compile time).
	First bool
	// display caches the canonical step rendering (filled once by
	// Rewrite, after the rewrites settle, so per-document compilations
	// don't re-render it).
	display string
}

// displayString returns the canonical step rendering.
func (s *LogicalStep) displayString() string {
	if s.display == "" {
		return s.step().String()
	}
	return s.display
}

// positional reports whether the step needs per-context-node
// evaluation with proximity positions.
func (s *LogicalStep) positional() bool { return hasPositional(s.Preds) }

// hasPositional reports whether any predicate (also inside not(...),
// and(...), or(...)) is position-sensitive.
func hasPositional(preds []xpath.Predicate) bool {
	for _, p := range preds {
		switch q := p.(type) {
		case xpath.Position, xpath.Last:
			return true
		case xpath.Not:
			if hasPositional([]xpath.Predicate{q.Inner}) {
				return true
			}
		case xpath.And:
			if hasPositional(q.Preds) {
				return true
			}
		case xpath.Or:
			if hasPositional(q.Preds) {
				return true
			}
		}
	}
	return false
}

// BuildLogical lowers a parsed query into its logical plan. The result
// is document-independent and, after Rewrite, immutable — it can be
// cached per query text and shared by concurrent compilations.
func BuildLogical(q xpath.Query) *Logical {
	l := &Logical{Query: q, Paths: make([]LogicalPath, 0, len(q.Paths))}
	for _, p := range q.Paths {
		lp := LogicalPath{Absolute: p.Absolute, Steps: make([]LogicalStep, 0, len(p.Steps))}
		for i, s := range p.Steps {
			lp.Steps = append(lp.Steps, LogicalStep{
				Axis:  s.Axis,
				Test:  s.Test,
				Preds: s.Preds,
				First: i == 0 && p.Absolute,
			})
		}
		l.Paths = append(l.Paths, lp)
	}
	return l
}

// step returns the xpath.Step form (for rendering and positional
// evaluation).
func (s *LogicalStep) step() xpath.Step {
	return xpath.Step{Axis: s.Axis, Test: s.Test, Preds: s.Preds}
}

// String renders the logical operator tree, innermost input first:
//
//	Dedup(Union(Filter(Step(DocRoot, descendant::person), [profile]), ...))
func (l *Logical) String() string {
	branches := make([]string, len(l.Paths))
	for i, p := range l.Paths {
		branches[i] = p.String()
	}
	if len(branches) == 1 {
		return branches[0]
	}
	return "Dedup(Union(" + strings.Join(branches, ", ") + "))"
}

// String renders one union branch.
func (p LogicalPath) String() string {
	cur := "Context"
	if p.Absolute {
		cur = "DocRoot"
	}
	for i := range p.Steps {
		s := &p.Steps[i]
		if s.positional() {
			cur = "Positional(" + cur + ", " + s.step().String() + ")"
			continue
		}
		cur = "Step(" + cur + ", " + s.Axis.String() + "::" + s.Test.String() + ")"
		for _, pred := range s.Preds {
			cur = "Filter(" + cur + ", [" + pred.String() + "])"
		}
	}
	return cur
}
