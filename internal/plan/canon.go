// Canonical plan strings. The canonical form identifies the result a
// plan computes (together with the document): operator tree, axes,
// node tests, predicates, strategy and pushdown policy. Execution
// attributes that are property-tested to never change results —
// parallel worker counts, index-vs-scan fragment sourcing — are
// deliberately excluded, so the same canonical string covers a serial
// indexed run and a parallel NoIndex run, and equivalent query texts
// (`//a/b` and `/descendant-or-self::node()/child::a/child::b`,
// `a[b and c]` and `a[b][c]`) canonicalise identically after the
// logical rewrites.

package plan

import (
	"fmt"
	"sort"
	"strings"
)

// buildCanon renders the canonical string of a compiled plan.
func buildCanon(p *Plan) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "strategy=%s,push=%s;", p.opts.Strategy, p.opts.Pushdown)
	canonOp(&sb, p.root)
	return sb.String()
}

func canonOp(sb *strings.Builder, o op) {
	switch t := o.(type) {
	case *sourceOp:
		if t.docRoot {
			sb.WriteString("docroot")
		} else {
			sb.WriteString("context")
		}
	case *joinOp:
		canonOp(sb, t.in)
		fmt.Fprintf(sb, "/join(%s::%s", t.stepAxis(), t.test)
		if t.docNode {
			sb.WriteString(",docnode")
		}
		fmt.Fprintf(sb, ",variant=%s)", t.variant)
	case *axisStepOp:
		canonOp(sb, t.in)
		fmt.Fprintf(sb, "/step(%s::%s", t.a, t.test)
		if t.docNode {
			sb.WriteString(",docnode")
		}
		sb.WriteString(")")
	case *predFilterOp, *semiJoinOp, *valueSemiJoinOp:
		canonChain(sb, o)
	case *emptyOp:
		// Transparent: emptiness is a property of the document binding
		// (an absent tag), not of the result the plan identifies, and
		// must not split cache keys across equivalent spellings.
		canonOp(sb, t.inner)
	case *posFilterOp:
		canonOp(sb, t.in)
		fmt.Fprintf(sb, "/pos(%s", t.step)
		if t.docNode {
			sb.WriteString(",docnode")
		}
		sb.WriteString(")")
	case *mergeOp:
		sb.WriteString("merge(")
		for i, in := range t.ins {
			if i > 0 {
				sb.WriteString(" | ")
			}
			canonOp(sb, in)
		}
		sb.WriteString(")")
	case *fragScan:
		fmt.Fprintf(sb, "frag(%s)", t.test)
	}
}

// canonChain renders a commutable filter chain in *source* order,
// regardless of the evaluation order the greedy ordering pass chose:
// ordering decisions are result-invariant and must not change the
// canonical string the result cache keys on. For unreordered plans
// the source-order sort reproduces the bottom-up rendering exactly.
func canonChain(sb *strings.Builder, top op) {
	var members []op
	cur := top
	for chainable(cur) {
		members = append(members, cur)
		cur = primaryIn(cur)
	}
	canonOp(sb, cur)
	sort.SliceStable(members, func(i, j int) bool {
		return chainSrcOrd(members[i]) < chainSrcOrd(members[j])
	})
	for _, m := range members {
		switch t := m.(type) {
		case *predFilterOp:
			fmt.Fprintf(sb, "/filter[%s]", t.pred)
		case *semiJoinOp:
			fmt.Fprintf(sb, "/semijoin(%s::%s,variant=%s)", t.existsAxis, t.frag.test, t.variant)
		case *valueSemiJoinOp:
			// Deliberately source-free: the same canonical string covers
			// an index-served execution and the per-node fallback
			// (Options.NoValueIndex, value-less documents).
			fmt.Fprintf(sb, "/valuesemijoin[%s]", t.pred)
		}
	}
}

// chainSrcOrd returns a chain member's source position within its
// step's predicate list.
func chainSrcOrd(o op) int {
	switch t := o.(type) {
	case *predFilterOp:
		return t.srcOrd
	case *semiJoinOp:
		return t.srcOrd
	case *valueSemiJoinOp:
		return t.srcOrd
	}
	return 0
}
