// Canonical plan strings. The canonical form identifies the result a
// plan computes (together with the document): operator tree, axes,
// node tests, predicates, strategy and pushdown policy. Execution
// attributes that are property-tested to never change results —
// parallel worker counts, index-vs-scan fragment sourcing — are
// deliberately excluded, so the same canonical string covers a serial
// indexed run and a parallel NoIndex run, and equivalent query texts
// (`//a/b` and `/descendant-or-self::node()/child::a/child::b`,
// `a[b and c]` and `a[b][c]`) canonicalise identically after the
// logical rewrites.

package plan

import (
	"fmt"
	"strings"
)

// buildCanon renders the canonical string of a compiled plan.
func buildCanon(p *Plan) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "strategy=%s,push=%s;", p.opts.Strategy, p.opts.Pushdown)
	canonOp(&sb, p.root)
	return sb.String()
}

func canonOp(sb *strings.Builder, o op) {
	switch t := o.(type) {
	case *sourceOp:
		if t.docRoot {
			sb.WriteString("docroot")
		} else {
			sb.WriteString("context")
		}
	case *joinOp:
		canonOp(sb, t.in)
		fmt.Fprintf(sb, "/join(%s::%s", t.stepAxis(), t.test)
		if t.docNode {
			sb.WriteString(",docnode")
		}
		fmt.Fprintf(sb, ",variant=%s)", t.variant)
	case *axisStepOp:
		canonOp(sb, t.in)
		fmt.Fprintf(sb, "/step(%s::%s", t.a, t.test)
		if t.docNode {
			sb.WriteString(",docnode")
		}
		sb.WriteString(")")
	case *predFilterOp:
		canonOp(sb, t.in)
		fmt.Fprintf(sb, "/filter[%s]", t.pred)
	case *semiJoinOp:
		canonOp(sb, t.in)
		fmt.Fprintf(sb, "/semijoin(%s::%s,variant=%s)", t.existsAxis, t.frag.test, t.variant)
	case *valueSemiJoinOp:
		// Deliberately source-free: the same canonical string covers an
		// index-served execution and the per-node fallback
		// (Options.NoValueIndex, value-less documents).
		canonOp(sb, t.in)
		fmt.Fprintf(sb, "/valuesemijoin[%s]", t.pred)
	case *posFilterOp:
		canonOp(sb, t.in)
		fmt.Fprintf(sb, "/pos(%s", t.step)
		if t.docNode {
			sb.WriteString(",docnode")
		}
		sb.WriteString(")")
	case *mergeOp:
		sb.WriteString("merge(")
		for i, in := range t.ins {
			if i > 0 {
				sb.WriteString(" | ")
			}
			canonOp(sb, in)
		}
		sb.WriteString(")")
	case *fragScan:
		fmt.Fprintf(sb, "frag(%s)", t.test)
	}
}
