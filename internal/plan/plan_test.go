package plan

import (
	"encoding/json"
	"strings"
	"testing"

	"staircase/internal/doc"
	"staircase/internal/xpath"
)

const fixtureXML = `
<site>
  <people>
    <person id="p1"><name>Alice</name><profile><education>PhD</education></profile></person>
    <person id="p2"><name>Bob</name></person>
    <person id="p3"><name>Carol</name><profile><education>MSc</education></profile></person>
  </people>
  <open_auctions>
    <open_auction id="a1">
      <bidder><increase>5</increase></bidder>
      <bidder><increase>10</increase></bidder>
      <current>15</current>
    </open_auction>
    <open_auction id="a2"><current>7</current></open_auction>
  </open_auctions>
</site>`

func fixture(t testing.TB) *doc.Document {
	t.Helper()
	d, err := doc.ShredString(fixtureXML)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// compileQuery builds, rewrites and compiles a query for the fixture.
func compileQuery(t testing.TB, env *Env, q string, opts *Options) *Plan {
	t.Helper()
	pq, err := xpath.ParseQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	l := BuildLogical(pq)
	Rewrite(l)
	p, err := Compile(env, l, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func run(t testing.TB, env *Env, q string, opts *Options) []int32 {
	t.Helper()
	res, err := compileQuery(t, env, q, opts).RunRoot()
	if err != nil {
		t.Fatal(err)
	}
	return res.Nodes
}

func TestPlanBasicQueries(t *testing.T) {
	d := fixture(t)
	env := NewEnv(d)
	cases := []struct {
		q    string
		want int
	}{
		{"/descendant::person", 3},
		{"//person", 3},
		{"//person/name", 3},
		{"/descendant::increase/ancestor::bidder", 2},
		{"/descendant::bidder[descendant::increase]", 2},
		{"//open_auction[bidder]/current", 1},
		{"//person[2]", 1},
		{"//name | //current", 5},
		{"//person/@id", 3},
		{"//nosuchtag", 0},
	}
	for _, tc := range cases {
		got := run(t, env, tc.q, nil)
		if len(got) != tc.want {
			t.Errorf("%s: got %d nodes (%v), want %d", tc.q, len(got), got, tc.want)
		}
	}
}

// TestPlanRewriteCollapse pins the //-collapse rewrite and its
// root-element corner case: //site must NOT return the root element
// (the document node's children are not materialised), matching the
// step interpreter.
func TestPlanRewriteCollapse(t *testing.T) {
	d := fixture(t)
	env := NewEnv(d)
	if got := run(t, env, "//site", nil); len(got) != 0 {
		t.Errorf("//site = %v, want empty (root element is not a child of any node)", got)
	}
	if got := run(t, env, "/descendant::site", nil); len(got) != 1 {
		t.Errorf("/descendant::site = %v, want the root element", got)
	}
	p := compileQuery(t, env, "//person/name", nil)
	joined := strings.Join(p.Rewrites(), ",")
	if !strings.Contains(joined, "collapse-descendant-or-self") {
		t.Errorf("rewrites = %v, want collapse-descendant-or-self", p.Rewrites())
	}
	if p.NumSteps() != 2 {
		t.Errorf("steps = %d, want 2 after collapse", p.NumSteps())
	}
}

// TestPlanCanonEquivalence: equivalent query texts canonicalise to the
// same plan string; different semantics stay distinct.
func TestPlanCanonEquivalence(t *testing.T) {
	d := fixture(t)
	env := NewEnv(d)
	same := [][2]string{
		{"//person/name", "/descendant-or-self::node()/child::person/child::name"},
		{"//bidder", "/descendant-or-self::node()/descendant-or-self::node()/child::bidder"},
		{"//person[profile and name]", "//person[profile][name]"},
		{"descendant::bidder/self::node()", "descendant::bidder"},
	}
	for _, pair := range same {
		a := compileQuery(t, env, pair[0], nil).Canon()
		b := compileQuery(t, env, pair[1], nil).Canon()
		if a != b {
			t.Errorf("canon(%q) != canon(%q):\n %s\n %s", pair[0], pair[1], a, b)
		}
	}
	diff := [][2]string{
		{"//site", "/descendant::site"}, // root element differs
		{"//person", "//person[name]"},
		{"//person", "/descendant::person | //nosuch"},
	}
	for _, pair := range diff {
		a := compileQuery(t, env, pair[0], nil).Canon()
		b := compileQuery(t, env, pair[1], nil).Canon()
		if a == b {
			t.Errorf("canon(%q) == canon(%q) = %s, want distinct", pair[0], pair[1], a)
		}
	}
	// Parallelism and NoIndex are excluded from the canonical string
	// (property-tested to never change results) ...
	a := compileQuery(t, env, "//bidder", &Options{Parallelism: 4}).Canon()
	b := compileQuery(t, env, "//bidder", &Options{NoIndex: true}).Canon()
	if a != b {
		t.Errorf("canon differs across parallel/noindex knobs:\n %s\n %s", a, b)
	}
	// ... while strategy and pushdown policy are included.
	c := compileQuery(t, env, "//bidder", &Options{Strategy: SQL}).Canon()
	if c == a {
		t.Errorf("canon ignores strategy: %s", c)
	}
}

// TestPlanSemiJoin: the exists-semijoin rewrite fires for Q2's
// rewritten form and produces the same nodes as per-node filtering.
func TestPlanSemiJoin(t *testing.T) {
	d := fixture(t)
	env := NewEnv(d)
	p := compileQuery(t, env, "/descendant::bidder[descendant::increase]", nil)
	if !strings.Contains(strings.Join(p.Rewrites(), ","), "exists-semijoin") {
		t.Fatalf("rewrites = %v, want exists-semijoin", p.Rewrites())
	}
	res, err := p.RunRoot()
	if err != nil {
		t.Fatal(err)
	}
	// The naive strategy keeps the per-node PredFilter; results agree.
	want := run(t, env, "/descendant::bidder[descendant::increase]", &Options{Strategy: Naive})
	if len(res.Nodes) != len(want) {
		t.Fatalf("semijoin %v vs predfilter %v", res.Nodes, want)
	}
	for i := range want {
		if res.Nodes[i] != want[i] {
			t.Fatalf("semijoin %v vs predfilter %v", res.Nodes, want)
		}
	}
}

func TestPlanExplainSurfaces(t *testing.T) {
	d := fixture(t)
	env := NewEnv(d)
	p := compileQuery(t, env, "/descendant::increase/ancestor::bidder", nil)
	res, err := p.RunRoot()
	if err != nil {
		t.Fatal(err)
	}
	text := p.ExplainText(res)
	for _, want := range []string{
		"StaircaseJoin", "step 1", "step 2", "cardinality:", "pruning:",
		"staircase join", "no duplicates, document order", "est=2 actual=2 result",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("explain text missing %q:\n%s", want, text)
		}
	}
	out, err := p.ExplainJSON(res)
	if err != nil {
		t.Fatal(err)
	}
	var tree ExplainTree
	if err := json.Unmarshal(out, &tree); err != nil {
		t.Fatalf("explain JSON does not round-trip: %v", err)
	}
	if tree.ResultCount != 2 || tree.Root == nil || tree.Root.Op == "" {
		t.Fatalf("explain JSON incomplete: %+v", tree)
	}
}

// TestPlanStepStats: the per-step reports match the step interpreter's
// conventions (input/output sizes, pushdown flags, staircase work).
func TestPlanStepStats(t *testing.T) {
	d := fixture(t)
	env := NewEnv(d)
	p := compileQuery(t, env, "/descendant::increase/ancestor::bidder", nil)
	res, err := p.RunRoot()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("steps = %d", len(res.Steps))
	}
	s0, s1 := res.Steps[0], res.Steps[1]
	if s0.InputSize != 1 || s0.OutputSize != 2 {
		t.Errorf("step 0 sizes = %d -> %d", s0.InputSize, s0.OutputSize)
	}
	if s1.InputSize != 2 || s1.OutputSize != 2 {
		t.Errorf("step 1 sizes = %d -> %d", s1.InputSize, s1.OutputSize)
	}
	if s0.Core.Scanned == 0 && !s0.Pushed {
		t.Error("no staircase stats and no pushdown on step 0")
	}
}
