// Package plan reifies XPath query evaluation as an explicit
// logical → physical plan — the relational-planner discipline applied
// to the staircase join engine.
//
// The paper's core claim (Grust/van Keulen/Teubner, VLDB 2003) is that
// XPath axes become fast when the *whole step* is handed to one
// set-at-a-time operator. This package makes that explicit: a query is
// compiled into a typed logical plan (DocRoot, Step, Filter,
// Positional, Union, Dedup), rewritten by a small set of algebraic
// rules (the §4.4 "XPath rewriting laws"), and lowered to physical
// operators (IndexScan, ColumnScan, StaircaseJoin, SemiJoin,
// PredFilter, PosFilter, Merge) that execute directly against the
// internal/core staircase kernels and the internal/index tag/kind
// index. What used to be ad hoc decisions inside a recursive Eval —
// name/kind-test pushdown, join-variant selection, partition-parallel
// placement — are now inspectable attributes of plan operators,
// rendered by EXPLAIN in text and JSON form with per-operator fragment
// sources and cardinalities.
//
// The pipeline is
//
//	xpath.Query --BuildLogical--> *Logical --Rewrite--> (rules applied)
//	            --Compile(env)--> *Plan    --Run------> *Result
//
// BuildLogical and Rewrite are document-independent and can be cached
// per query text; Compile binds the logical plan to one document
// (fragment cardinalities, DocRoot semantics) and is cheap enough to
// run per evaluation. Plan.Canon returns a canonical string of the
// optimized plan: two queries with equal canonical strings produce
// identical results, which is what the query server keys its result
// cache on so that equivalent query texts share cache entries.
//
// Cost-model decisions that depend on the runtime context sequence
// (pushdown of a specific step, parallel worker fan-out) are resolved
// by the operators at execution time with exactly the bounds the
// legacy evaluator used, so plan-based execution is result- and
// report-identical to it; the plan records the candidate fragment scan
// and the policy, and EXPLAIN reports the decision actually taken.
package plan

import (
	"fmt"
	"sync"

	"staircase/internal/baseline"
	"staircase/internal/doc"
)

// Strategy selects the axis-step algorithm for partitioning axes.
type Strategy uint8

const (
	// Staircase is the paper's full configuration: staircase join with
	// estimation-based skipping.
	Staircase Strategy = iota
	// StaircaseSkip uses plain skipping (Algorithm 3).
	StaircaseSkip
	// StaircaseNoSkip uses the basic algorithm (Algorithm 2).
	StaircaseNoSkip
	// Naive evaluates one region query per context node and removes
	// duplicates afterwards (Experiment 1's strawman).
	Naive
	// SQL mimics the tree-unaware indexed plan of Figure 3.
	SQL
	// SQLWindow is SQL plus the Equation (1) window predicate (§2.1).
	SQLWindow
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Staircase:
		return "staircase"
	case StaircaseSkip:
		return "staircase-skip"
	case StaircaseNoSkip:
		return "staircase-noskip"
	case Naive:
		return "naive"
	case SQL:
		return "sql"
	case SQLWindow:
		return "sql-window"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// staircase reports whether the strategy is a staircase join variant.
func (s Strategy) staircase() bool {
	return s == Staircase || s == StaircaseSkip || s == StaircaseNoSkip
}

// Pushdown controls name-test pushdown for staircase strategies.
type Pushdown uint8

const (
	// PushAuto decides by tag selectivity (the cost-model heuristic).
	PushAuto Pushdown = iota
	// PushAlways forces pushdown whenever a name test is present.
	PushAlways
	// PushNever evaluates the join first and filters afterwards.
	PushNever
)

// String names the pushdown mode.
func (p Pushdown) String() string {
	switch p {
	case PushAuto:
		return "auto"
	case PushAlways:
		return "always"
	case PushNever:
		return "never"
	default:
		return fmt.Sprintf("Pushdown(%d)", uint8(p))
	}
}

// AutoParallelism requests one staircase-join worker per available CPU
// (runtime.GOMAXPROCS) when assigned to Options.Parallelism.
const AutoParallelism = -1

// Options configures plan compilation and execution. The zero value is
// the paper default: full staircase join with automatic pushdown,
// serial execution.
type Options struct {
	// Strategy selects the physical operator family for the four
	// partitioning axes.
	Strategy Strategy
	// Pushdown is the name/kind-test pushdown policy for staircase
	// strategies.
	Pushdown Pushdown
	// Parallelism is the worker count for partition-parallel staircase
	// joins: 0 or 1 evaluates serially, > 1 uses at most that many
	// workers, negative (canonically AutoParallelism) uses GOMAXPROCS.
	// The cost model may use fewer workers on steps too small to
	// amortise the goroutine fan-out.
	Parallelism int
	// MorselWorkers is the worker count for morsel-driven parallel
	// execution *inside* a streaming cursor pipeline: > 1 makes every
	// staircase-join cursor cut its pruned staircase into many small
	// tasks drained by that many workers through an order-restoring
	// merge, negative (canonically AutoParallelism) uses GOMAXPROCS.
	// Results are byte-identical to serial cursors; only Cursor-based
	// execution is affected (batch Run uses Parallelism). 0 or 1 keeps
	// cursors serial.
	MorselWorkers int
	// NoIndex disables the document's shared tag/kind index: pushdown
	// fragments are rebuilt with an O(n) column scan per step (the
	// ColumnScan operator). Results are identical; the knob exists for
	// ablation and the rescan-baseline benchmarks.
	NoIndex bool
	// NoValueIndex disables the document's value index: comparison and
	// contains() predicates rewritten to value semijoins fall back to
	// per-node predicate evaluation at execution time. Results are
	// identical (the canonical plan string does not change); the knob
	// exists for ablation and the value-rescan benchmarks.
	NoValueIndex bool
	// NoReorder disables the greedy ordering pass and mid-flight
	// adaptive re-planning: commutable predicate filters evaluate in
	// source order, semijoin probe directions stay fixed, and provably
	// empty intermediates are not short-circuited. Results are identical
	// (ordering is excluded from the canonical plan string); the knob
	// exists for ablation and the order benchmarks.
	NoReorder bool
}

// orDefault returns opts, or the zero default when nil.
func (o *Options) orDefault() *Options {
	if o == nil {
		return &Options{}
	}
	return o
}

// Env is the execution environment a plan binds to: the document plus
// the lazily built per-document runtime state the baseline operators
// need (the SQL baseline's B-trees). One Env is shared by every plan
// over a document; it is safe for concurrent use.
type Env struct {
	// Doc is the pre/post encoded document.
	Doc *doc.Document

	mu  sync.Mutex
	sql *baseline.SQLEngine
}

// NewEnv returns an environment over the document.
func NewEnv(d *doc.Document) *Env { return &Env{Doc: d} }

// SQL lazily builds and returns the B-tree indexes of the SQL baseline.
func (e *Env) SQL() *baseline.SQLEngine {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sql == nil {
		e.sql = baseline.NewSQLEngine(e.Doc)
	}
	return e.sql
}
