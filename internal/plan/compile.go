// Physical compilation: lower a rewritten logical plan onto the
// operator set, binding it to one document. Compilation selects the
// operator family from the strategy, resolves document-node semantics
// for the first step of absolute paths, attaches fragment scans
// (IndexScan/ColumnScan) to every join whose node test the tag/kind
// index can serve, picks the staircase variant, applies the
// exists-semijoin rewrite where profitable, and annotates every
// operator with cardinality estimates for EXPLAIN.

package plan

import (
	"staircase/internal/axis"
	"staircase/internal/doc"
	"staircase/internal/index"
	"staircase/internal/xpath"
)

// Compile binds a rewritten logical plan to a document environment
// under the given options. The logical plan is not modified and may be
// shared by concurrent compilations.
func Compile(env *Env, l *Logical, opts *Options) (*Plan, error) {
	o := *opts.orDefault()
	p := &Plan{env: env, opts: o, logical: l}
	p.rewrites = append(p.rewrites, l.Rewrites...)
	c := &compiler{p: p, env: env, opts: &o}

	rootIsElem := env.Doc.KindOf(env.Doc.Root()) != doc.VRoot
	var branches []op
	for pi := range l.Paths {
		lp := &l.Paths[pi]
		cur := op(c.add(&sourceOp{docRoot: lp.Absolute}))
		estIn := int64(1)
		if !lp.Absolute {
			estIn = 4 // relative contexts are small node sets in practice
		}
		for si := range lp.Steps {
			s := &lp.Steps[si]
			var err error
			cur, estIn, err = c.compileStep(cur, s, rootIsElem, estIn)
			if err != nil {
				return nil, err
			}
		}
		branches = append(branches, cur)
	}
	if len(branches) == 1 {
		p.root = branches[0]
	} else {
		p.root = c.add(&mergeOp{ins: branches})
	}
	if o.Strategy.staircase() && !o.NoReorder {
		c.orderPlan()
	}
	return p, nil
}

// compiler threads the op table and step ordinals through compilation.
type compiler struct {
	p    *Plan
	env  *Env
	opts *Options
	// cards memoizes fragCard lookups per node test, so repeated tests
	// across steps (and the ordering pass) probe the index maps once.
	cards map[string]int64
}

// add registers an operator in the plan's op table.
func (c *compiler) add(o op) op {
	o.setID(len(c.p.ops))
	c.p.ops = append(c.p.ops, o)
	return o
}

// meta allocates the next step ordinal.
func (c *compiler) meta(s *LogicalStep) *stepMeta {
	m := &stepMeta{ord: len(c.p.metas) + 1, display: s.displayString(), axis: s.Axis}
	c.p.metas = append(c.p.metas, m)
	return m
}

// compileStep lowers one location step (axis operator plus filters)
// onto the chain ending at `in`.
func (c *compiler) compileStep(in op, s *LogicalStep, rootIsElem bool, estIn int64) (op, int64, error) {
	docNode := s.First && rootIsElem
	meta := c.meta(s)

	// Steps with position-sensitive predicates evaluate context node
	// at a time with proximity positions. (Non-positional predicates
	// decide per node regardless of position, so every other step —
	// document-node steps included — compiles to filters.)
	if s.positional() {
		progs, err := compilePredProgs(c.env, c.opts, s.Preds)
		if err != nil {
			return nil, 0, err
		}
		pf := &posFilterOp{in: in, meta: meta, step: s.step(), docNode: docNode, progs: progs}
		pf.est = estimates{In: estIn, Out: estimateStep(c.env.Doc, s.Axis, c.fragCard(s.Test), estIn)}
		c.add(pf)
		return pf, maxInt64(pf.est.Out/2, 1), nil
	}

	cur := c.compileAxis(in, s, meta, docNode, estIn)
	estOut := opEstimate(cur)

	for pi, pred := range s.Preds {
		if sj := c.trySemiJoin(cur, meta, s.Axis, pred, estOut); sj != nil {
			sj.srcOrd = pi
			cur = sj
			estOut = maxInt64(estOut/2, 1)
			continue
		}
		if vj, err := c.tryValueSemiJoin(cur, meta, s.Axis, pred, estOut); err != nil {
			return nil, 0, err
		} else if vj != nil {
			vj.srcOrd = pi
			cur = vj
			estOut = maxInt64(estOut/2, 1)
			continue
		}
		prog, err := compilePredProg(c.env, c.opts, pred)
		if err != nil {
			return nil, 0, err
		}
		estOut = maxInt64(estOut/2, 1)
		pf := &predFilterOp{in: cur, meta: meta, pred: pred, prog: prog,
			srcOrd: pi,
			est:    estimates{In: opEstimate(cur), Out: estOut}}
		c.add(pf)
		cur = pf
	}
	return cur, estOut, nil
}

// compileAxis lowers the axis::test part of a step: a StaircaseJoin
// (or the naive/SQL baseline in its slot) for the partitioning axes
// and their or-self variants, an AxisStep for everything else.
func (c *compiler) compileAxis(in op, s *LogicalStep, meta *stepMeta, docNode bool, estIn int64) op {
	d := c.env.Doc
	base, orSelf := joinAxis(s.Axis)
	if base != axis.Child && (!docNode || s.Axis == axis.Descendant || s.Axis == axis.DescendantOrSelf) {
		jo := &joinOp{
			in:         in,
			meta:       meta,
			base:       base,
			orSelf:     orSelf || docNode, // document-node descendant includes the root element
			orSelfAxis: orSelfAxis(s.Axis, docNode),
			docNode:    docNode,
			test:       s.Test,
			variant:    variantFor(c.opts.Strategy),
		}
		if c.opts.Strategy.staircase() && pushable(s.Test) && c.opts.Pushdown != PushNever {
			jo.frag = c.newFragScan(s.Test)
		}
		card := c.fragCard(s.Test)
		jo.est = estimates{
			In:    estIn,
			Out:   estimateStep(d, s.Axis, card, estIn),
			Bound: int64(d.Size()),
		}
		c.add(jo)
		return jo
	}
	ao := &axisStepOp{in: in, meta: meta, a: s.Axis, test: s.Test, docNode: docNode}
	ao.est = estimates{In: estIn, Out: estimateStep(d, s.Axis, c.fragCard(s.Test), estIn)}
	c.add(ao)
	return ao
}

// joinAxis maps an axis to its partitioning base when the staircase
// join evaluates it; base == axis.Child means "not a join axis".
func joinAxis(a axis.Axis) (base axis.Axis, orSelf bool) {
	switch a {
	case axis.Descendant, axis.Ancestor, axis.Following, axis.Preceding:
		return a, false
	case axis.DescendantOrSelf:
		return axis.Descendant, true
	case axis.AncestorOrSelf:
		return axis.Ancestor, true
	default:
		return axis.Child, false
	}
}

// orSelfAxis resolves the axis the operator evaluates through the
// shared helpers: or-self variants keep their own axis, document-node
// descendant steps evaluate descendant-or-self of the root element.
func orSelfAxis(a axis.Axis, docNode bool) axis.Axis {
	switch a {
	case axis.DescendantOrSelf, axis.AncestorOrSelf:
		return a
	case axis.Descendant:
		if docNode {
			return axis.Descendant // docRootAxisTest handles the or-self merge
		}
	}
	return a
}

// newFragScan builds the fragment-scan leaf for a pushable node test,
// with exact cardinality and pre span when the index serves this
// compilation (ColumnScan compilations leave them unknown).
func (c *compiler) newFragScan(test xpath.NodeTest) *fragScan {
	fs := &fragScan{test: test, card: -1}
	if !c.opts.NoIndex {
		if list := c.indexList(test); list != nil || c.testKnownEmpty(test) {
			fs.card = int64(len(list))
			if lo, hi, ok := index.Span(list); ok {
				fs.spanLo, fs.spanHi, fs.hasSpan = lo, hi, true
			}
		}
	}
	c.add(fs)
	return fs
}

// fragCard returns the exact fragment cardinality of a pushable test
// when the index is available, -1 otherwise. Lookups memoize per node
// test: a query repeating a name across steps probes the index once.
func (c *compiler) fragCard(test xpath.NodeTest) int64 {
	if c.opts.NoIndex || !pushable(test) {
		return -1
	}
	key := test.String()
	if card, ok := c.cards[key]; ok {
		return card
	}
	card := int64(-1)
	if list := c.indexList(test); list != nil {
		card = int64(len(list))
	} else if c.testKnownEmpty(test) {
		card = 0
	}
	if c.cards == nil {
		c.cards = make(map[string]int64)
	}
	c.cards[key] = card
	return card
}

// indexList fetches the index-served fragment list of a pushable test
// (nil when the tag is absent or the test is not pushable).
func (c *compiler) indexList(test xpath.NodeTest) []int32 {
	d := c.env.Doc
	switch test.Kind {
	case xpath.TestName:
		if id, ok := d.Names().Lookup(test.Name); ok {
			return d.TagIndex().Tag(id)
		}
		return nil
	case xpath.TestText:
		return d.TagIndex().KindList(uint8(doc.Text))
	case xpath.TestComment:
		return d.TagIndex().KindList(uint8(doc.Comment))
	case xpath.TestPI:
		if test.Name == "" {
			return d.TagIndex().KindList(uint8(doc.PI))
		}
	}
	return nil
}

// testKnownEmpty reports whether a pushable name test names a tag
// absent from the document (exact zero cardinality).
func (c *compiler) testKnownEmpty(test xpath.NodeTest) bool {
	if test.Kind != xpath.TestName {
		return false
	}
	_, ok := c.env.Doc.Names().Lookup(test.Name)
	return !ok
}

// trySemiJoin applies the exists-semijoin rewrite to one predicate:
//
//	Filter(S, [axis::t])  =>  SemiJoin(S, inverse(axis), fragment(t))
//
// valid when the predicate is a bare existential single step on a
// partitioning axis with an index-servable node test, evaluated over
// an attribute-free context (any non-attribute owning axis). The
// rewrite replaces |S| per-node path evaluations with one staircase
// node-list join — the set-at-a-time discipline applied to predicates.
func (c *compiler) trySemiJoin(in op, meta *stepMeta, owningAxis axis.Axis, pred xpath.Predicate, estIn int64) *semiJoinOp {
	if !c.opts.Strategy.staircase() || owningAxis == axis.Attribute {
		return nil
	}
	ex, ok := pred.(xpath.Exists)
	if !ok || ex.Path.Absolute || len(ex.Path.Steps) != 1 {
		return nil
	}
	step := ex.Path.Steps[0]
	if !step.Axis.Partitioning() || len(step.Preds) > 0 || !pushable(step.Test) {
		return nil
	}
	inv := inverseAxis(step.Axis)
	sj := &semiJoinOp{
		in:         in,
		meta:       meta,
		pred:       pred.String(),
		existsAxis: step.Axis,
		inv:        inv,
		frag:       c.newFragScan(step.Test),
		variant:    variantFor(c.opts.Strategy),
		est:        estimates{In: estIn, Out: maxInt64(estIn/2, 1)},
	}
	c.add(sj)
	c.p.rewrites = append(c.p.rewrites, "exists-semijoin")
	return sj
}

// tryValueSemiJoin applies the value-semijoin rewrite to one
// predicate:
//
//	Filter(S, [axis::t op lit])  =>  ValueSemiJoin(S, axis, ValueScan(t, op, lit))
//
// valid for comparison ('=', '<', '<=', '>', '>=' — '!=' is not a
// B-tree range) and contains() predicates whose path is a bare
// relative single step on self, child, attribute or descendant(-or-
// self), with a name, '*', text() or node() test, over an
// attribute-free context. The rewrite applies independently of value-
// index availability — the operator falls back to per-node evaluation
// at execution time — so the canonical plan string stays stable
// across Options.NoValueIndex.
func (c *compiler) tryValueSemiJoin(in op, meta *stepMeta, owningAxis axis.Axis, pred xpath.Predicate, estIn int64) (*valueSemiJoinOp, error) {
	if !c.opts.Strategy.staircase() || owningAxis == axis.Attribute || c.opts.Pushdown == PushNever {
		return nil, nil
	}
	vs := &valueScan{}
	var path xpath.Path
	switch p := pred.(type) {
	case xpath.Compare:
		if p.Op == xpath.OpNe {
			return nil, nil
		}
		path = p.Path
		vs.op, vs.lit, vs.numeric = p.Op, p.Literal, p.Numeric
	case xpath.Contains:
		path = p.Path
		vs.contains, vs.lit = true, p.Literal
	default:
		return nil, nil
	}
	if path.Absolute || len(path.Steps) != 1 {
		return nil, nil
	}
	step := path.Steps[0]
	if len(step.Preds) > 0 {
		return nil, nil
	}
	switch step.Axis {
	case axis.Self, axis.Child, axis.Attribute, axis.Descendant, axis.DescendantOrSelf:
	default:
		return nil, nil
	}
	switch step.Test.Kind {
	case xpath.TestName, xpath.TestAny, xpath.TestText, xpath.TestNode:
	default:
		return nil, nil
	}
	vs.pa, vs.test = step.Axis, step.Test
	prog, err := compilePredProg(c.env, c.opts, pred)
	if err != nil {
		return nil, err
	}
	c.add(vs)
	vj := &valueSemiJoinOp{
		in:   in,
		meta: meta,
		pred: pred.String(),
		pa:   step.Axis,
		scan: vs,
		prog: prog,
		est:  estimates{In: estIn, Out: maxInt64(estIn/2, 1)},
	}
	c.add(vj)
	c.p.rewrites = append(c.p.rewrites, "value-semijoin")
	return vj, nil
}

// inverseAxis maps each partitioning axis to its inverse.
func inverseAxis(a axis.Axis) axis.Axis {
	switch a {
	case axis.Descendant:
		return axis.Ancestor
	case axis.Ancestor:
		return axis.Descendant
	case axis.Following:
		return axis.Preceding
	default:
		return axis.Following
	}
}

// opEstimate returns the estimated output cardinality of an operator.
func opEstimate(o op) int64 {
	switch t := o.(type) {
	case *joinOp:
		return t.est.Out
	case *axisStepOp:
		return t.est.Out
	case *predFilterOp:
		return t.est.Out
	case *semiJoinOp:
		return t.est.Out
	case *valueSemiJoinOp:
		return t.est.Out
	case *posFilterOp:
		return t.est.Out
	default:
		return 1
	}
}
