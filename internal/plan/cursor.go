// The cursor executor: the streaming face of the physical operators.
//
// Every operator implements open(ec) (cursor, error); a cursor yields
// the operator's result as a sequence of bounded, strictly increasing
// preorder batches (execBatchSize nodes per batch), pulled on demand.
// Downstream consumers that stop early — Plan.RunLimit, the engine's
// EvalFirst/EvalLimit, existence probes, positional [k] predicates —
// simply stop pulling, and the suspended staircase kernels
// (core.JoinCursor) never scan the document regions nobody asked for.
// Memory stays bounded by the batch size for the pipelined operators;
// the few inherently blocking spots (AxisStep's positional lookups,
// reverse-axis PosFilter, the context drains of following/preceding)
// materialize exactly what the semantics force them to.
//
// next additionally accepts a seekPre hint — the consumer's promise to
// ignore result nodes with pre < seekPre — which operators translate
// into scan-position jumps and node-list binary searches inside the
// core kernels (SemiJoin turns fragment spans into such hints; the
// public Plan cursor exposes it as Seek).
//
// The materializing executor (op.run) remains the EXPLAIN and
// full-result path; the differential suite pins cursor execution to
// byte-identical node sequences.

package plan

import (
	"context"
	"math"
	"time"

	"staircase/internal/axis"
	"staircase/internal/core"
	"staircase/internal/doc"
	"staircase/internal/fault"
	"staircase/internal/xpath"
)

// execBatchSize is the cursor batch capacity: small enough to keep
// first-result latency and per-operator memory bounded, large enough
// to amortise per-batch dispatch over the column scans.
const execBatchSize = 256

// execBatchMin is the first batch's capacity; batches grow
// geometrically toward execBatchSize so a LIMIT 1 / EvalFirst
// consumer pays for a 16-node buffer and scan, not the full batch.
const execBatchMin = 16

// growBuf hands out a reusable batch buffer that starts at
// execBatchMin and grows geometrically toward execBatchSize on each
// take: early-terminating consumers only pay for the batches they
// actually pull.
type growBuf struct{ buf []int32 }

func (g *growBuf) take() []int32 {
	switch {
	case g.buf == nil:
		g.buf = make([]int32, 0, execBatchMin)
	case cap(g.buf) < execBatchSize:
		g.buf = make([]int32, 0, cap(g.buf)*4)
	}
	return g.buf[:0]
}

// cursor is the streaming face of one physical operator. next returns
// the next batch (strictly increasing pre ranks, each batch continuing
// past the previous one) or nil when exhausted; batches are valid only
// until the following next call. seekPre is the consumer's promise to
// ignore nodes below it (0 disables). close releases the cursor chain;
// it is idempotent.
type cursor interface {
	next(seekPre int32) ([]int32, error)
	close()
}

// invariantChecks enables internal executor assertions (the
// equivalence suite turns it on; production code leaves it off).
var invariantChecks bool

// EnableInvariantChecks toggles internal executor assertions, such as
// the PosFilter sorted-concatenation invariant. Test-only.
func EnableInvariantChecks(on bool) { invariantChecks = on }

// assertSortedDedup panics unless nodes is strictly increasing — the
// invariant the PosFilter sort decay relies on.
func assertSortedDedup(nodes []int32) {
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] >= nodes[i] {
			panic("plan: PosFilter sort decay invariant violated: concatenation not strictly increasing")
		}
	}
}

// --- generic cursors -------------------------------------------------------

// sliceCursor batches out a materialised node sequence, honouring
// seek by binary search.
type sliceCursor struct {
	nodes  []int32
	pos    int
	onEmit func(n int)
}

func (c *sliceCursor) next(seek int32) ([]int32, error) {
	if seek > 0 && c.pos < len(c.nodes) && c.nodes[c.pos] < seek {
		c.pos += searchNodes(c.nodes[c.pos:], seek)
	}
	if c.pos >= len(c.nodes) {
		return nil, nil
	}
	end := c.pos + execBatchSize
	if end > len(c.nodes) {
		end = len(c.nodes)
	}
	b := c.nodes[c.pos:end]
	c.pos = end
	if c.onEmit != nil {
		c.onEmit(len(b))
	}
	return b, nil
}

func (c *sliceCursor) close() {}

// searchNodes returns the smallest index i with nodes[i] >= pre.
func searchNodes(nodes []int32, pre int32) int {
	lo, hi := 0, len(nodes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if nodes[mid] < pre {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// blockingCursor materializes its result on first use (a pipeline
// breaker) and then batches it out like a sliceCursor. in, when set,
// is the input pipeline the fill closure drains: close must propagate
// into it — a morsel join cursor abandoned mid-flight (LIMIT above a
// pipeline breaker) holds a worker pool until closed.
type blockingCursor struct {
	fill   func() ([]int32, error)
	in     cursor
	sc     sliceCursor
	inited bool
}

func (c *blockingCursor) next(seek int32) ([]int32, error) {
	if !c.inited {
		nodes, err := c.fill()
		if err != nil {
			return nil, err
		}
		c.sc.nodes = nodes
		c.inited = true
	}
	return c.sc.next(seek)
}

func (c *blockingCursor) close() {
	if c.in != nil {
		c.in.close()
	}
}

// newRunCursor falls back to the materializing executor for operators
// (or whole strategies — Naive, SQL) without a streaming
// implementation: run() evaluates the operator subtree eagerly and
// the result batches out.
func newRunCursor(ec *execCtx, o op) cursor {
	return &blockingCursor{fill: func() ([]int32, error) { return o.run(ec) }}
}

// drainAll pulls a cursor to exhaustion, materialising its sequence.
func drainAll(ec *execCtx, c cursor) ([]int32, error) {
	var out []int32
	for {
		b, err := c.next(0)
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		out = append(out, b...)
	}
}

// --- Source / fragment scans ----------------------------------------------

func (o *sourceOp) open(ec *execCtx) (cursor, error) {
	var nodes []int32
	if o.docRoot {
		nodes = []int32{ec.env.Doc.Root()}
	} else {
		nodes = ec.initial
	}
	ost := &ec.ops[o.id]
	ost.ran = true
	return &sliceCursor{nodes: nodes, onEmit: func(n int) {
		ost.in += n
		ost.out += n
	}}, nil
}

func (o *fragScan) open(ec *execCtx) (cursor, error) {
	list, _, _ := o.resolve(ec)
	// Batches are released to consumers, which may filter them in
	// place; the memoised fragment is shared.
	return &sliceCursor{nodes: append([]int32(nil), list...)}, nil
}

// --- StaircaseJoin ---------------------------------------------------------

// ctxSource adapts an input cursor to a core.NodeSource, optionally
// teeing every pulled context node that passes the or-self self test
// into a pending queue the join stream merges back in (the streaming
// form of core.MergeOrSelf over the context).
type ctxSource struct {
	ec     *execCtx
	in     cursor
	buf    []int32
	pos    int
	inDone bool
	pulled int
	// or-self self side
	selfOn bool
	a      axis.Axis
	test   xpath.NodeTest
	pend   []int32
}

func (s *ctxSource) pull() (int32, bool, error) {
	for {
		if s.pos < len(s.buf) {
			v := s.buf[s.pos]
			s.pos++
			s.pulled++
			if s.selfOn && nodePassesTest(s.ec.env.Doc, s.a, s.test, v) {
				s.pend = append(s.pend, v)
			}
			return v, true, nil
		}
		if s.inDone {
			return 0, false, nil
		}
		b, err := s.in.next(0)
		if err != nil {
			return 0, false, err
		}
		if b == nil {
			s.inDone = true
			return 0, false, nil
		}
		s.buf, s.pos = b, 0
	}
}

// drain exhausts the underlying input (populating the self queue).
func (s *ctxSource) drain() error {
	for {
		_, ok, err := s.pull()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

// drainContext pulls the whole context through the source (populating
// the or-self queue on the way) and returns it materialised — the
// morsel path needs the full pruned staircase before task cutting.
func (s *ctxSource) drainContext() ([]int32, error) {
	var out []int32
	for {
		v, ok, err := s.pull()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, v)
	}
}

// takePend pops the pending self nodes <= hi, dropping those below the
// seek hint.
func (s *ctxSource) takePend(hi, seek int32) []int32 {
	i := 0
	for i < len(s.pend) && s.pend[i] <= hi {
		i++
	}
	out := s.pend[:i]
	s.pend = s.pend[i:]
	j := 0
	for j < len(out) && out[j] < seek {
		j++
	}
	return out[j:]
}

// streamPush decides name-test pushdown for the cursor executor. The
// materializing path decides from the actual context's touch bound;
// a streaming join never sees its whole context up front, so the
// cursor pushes whenever the fragment comes from the shared index
// (binary-search bounded partitions beat rescans in every regime the
// cost model distinguishes) and under PushAlways even without it.
func streamPush(opts *Options, indexed bool) bool {
	return opts.Pushdown == PushAlways || indexed
}

func (o *joinOp) open(ec *execCtx) (cursor, error) {
	if !ec.opts.Strategy.staircase() {
		return newRunCursor(ec, o), nil
	}
	in, err := o.in.open(ec)
	if err != nil {
		return nil, err
	}
	d := ec.env.Doc
	st := &ec.steps[o.meta.ord-1]
	ost := &ec.ops[o.id]
	ost.ran = true
	co := &core.Options{Variant: o.variant, Stats: &st.Core}

	src := &ctxSource{ec: ec, in: in}
	if o.orSelf {
		src.selfOn = true
		src.test = o.test
		src.a = o.orSelfAxis
		if o.docNode {
			// The implicit document node of an absolute path: its
			// descendant(-or-self) set includes the root element itself.
			src.a = axis.DescendantOrSelf
		}
	}

	pushed := false
	var frag []int32
	if o.frag != nil && ec.opts.Pushdown != PushNever {
		if list, indexed, ok := o.frag.resolve(ec); ok && streamPush(ec.opts, indexed) {
			pushed = true
			st.Pushed, st.Indexed = true, indexed
			ost.pushed, ost.indexed = true, indexed
			ost.fragSize = len(list)
			frag = list
		}
	}
	var kernel core.JoinCursor
	if workers := morselWorkersFor(ec.opts); workers > 1 {
		// Morsel-driven execution needs the whole pruned staircase up
		// front to cut it into tasks, so the context is materialised
		// here (teeing the or-self queue as a side effect). The morsel
		// cursor's output is byte-identical to the serial kernels.
		ctxNodes, derr := src.drainContext()
		if derr != nil {
			in.close()
			return nil, derr
		}
		mk, merr := core.NewMorselJoinCursor(d, o.base, ctxNodes, frag, pushed, workers, co)
		if merr != nil {
			in.close()
			return nil, merr
		}
		ost.morsels, ost.morselWorkers = mk.Tasks(), mk.Workers()
		kernel = mk
	} else if pushed {
		kernel, err = core.NewJoinNodeListCursor(d, o.base, frag, src.pull, co)
	} else {
		kernel, err = core.NewJoinCursor(d, o.base, src.pull, co)
	}
	if err != nil {
		in.close()
		return nil, err
	}
	return &joinStreamCursor{
		ec: ec, o: o, st: st, ost: ost, src: src, kernel: kernel, pushed: pushed,
	}, nil
}

type joinStreamCursor struct {
	ec     *execCtx
	o      *joinOp
	st     *StepStats
	ost    *opStat
	src    *ctxSource
	kernel core.JoinCursor
	pushed bool
	buf    growBuf

	kernelDone bool
	done       bool
}

func (c *joinStreamCursor) next(seek int32) ([]int32, error) {
	if c.done {
		return nil, nil
	}
	start := time.Now()
	defer func() { c.st.Duration += time.Since(start) }()
	for {
		if err := c.ec.cancelled(); err != nil {
			return nil, err
		}
		var out []int32
		if !c.kernelDone {
			b, err := c.kernel.Next(c.buf.take(), seek)
			if err != nil {
				return nil, err
			}
			if b == nil {
				c.kernelDone = true
			} else {
				if !c.pushed {
					b = filterTest(c.ec.env.Doc, c.o.base, c.o.test, b)
				}
				out = b
			}
		}
		if c.src.selfOn {
			if c.kernelDone {
				// Kernels drain their context before finishing, except
				// over an empty fragment: finish the drain so the self
				// queue is complete, then flush it.
				if err := c.src.drain(); err != nil {
					return nil, err
				}
				out = core.MergeOrSelf(out, c.src.takePend(math.MaxInt32, seek))
			} else if len(out) > 0 {
				// Self nodes up to the batch ceiling can no longer be
				// interleaved by future kernel output (which is strictly
				// increasing past it).
				out = core.MergeOrSelf(out, c.src.takePend(out[len(out)-1], seek))
			}
		}
		if c.kernelDone && (!c.src.selfOn || len(c.src.pend) == 0) {
			c.done = true
		}
		c.ost.in = c.src.pulled
		c.st.InputSize = c.src.pulled
		c.ost.skipped = c.st.Core.Skipped
		if len(out) > 0 {
			c.ost.out += len(out)
			c.st.OutputSize = c.ost.out
			return out, nil
		}
		if c.done {
			return nil, nil
		}
	}
}

func (c *joinStreamCursor) close() {
	c.src.in.close()
	// Morsel kernels own a worker pool; early termination must wake
	// and join it (serial kernels have nothing to release).
	if k, ok := c.kernel.(interface{ Close() }); ok {
		k.Close()
	}
}

// --- SemiJoin --------------------------------------------------------------

func (o *semiJoinOp) open(ec *execCtx) (cursor, error) {
	if !ec.opts.Strategy.staircase() {
		return newRunCursor(ec, o), nil
	}
	if o.chain != nil {
		return openChain(ec, o.chain)
	}
	in, err := o.in.open(ec)
	if err != nil {
		return nil, err
	}
	st := &ec.steps[o.meta.ord-1]
	ost := &ec.ops[o.id]
	ost.ran = true
	list, indexed, _ := o.frag.resolve(ec)
	ost.indexed = indexed
	ost.fragSize = len(list)
	ost.probeDir = probeInputSeek // streaming is point-probe by nature
	return &semiJoinCursor{
		ec: ec, o: o, st: st, ost: ost, in: in,
		pr: newSemiProbe(ec.env.Doc, o.existsAxis, list),
	}, nil
}

// semiProbe is the point-probe form of the exists-semijoin: it decides
// per input node whether the node stands in the exists axis relation
// to a fragment, by binary search (descendant/ancestor) or against the
// fragment's reduction node (following/preceding) — the node-list
// join's partition arithmetic turned into point probes, plus seek
// hints derived from the fragment span. Shared by the streaming
// cursor, the materializing executor's input-probe direction, and the
// adaptive chain stages. Not safe for concurrent use (minSeek advances
// while probing): build one per execution.
type semiProbe struct {
	existsAxis axis.Axis
	d          *doc.Document
	post       []int32
	kind       []doc.Kind
	list       []int32

	prefixMax      []int32 // existsAxis == Ancestor
	minSeek        int32   // first input pre that can possibly qualify
	spanLo, spanHi int32
}

// newSemiProbe builds the probe state for one execution over a
// resolved (shared, read-only) fragment list.
func newSemiProbe(d *doc.Document, existsAxis axis.Axis, list []int32) *semiProbe {
	p := &semiProbe{
		existsAxis: existsAxis, d: d,
		post: d.PostSlice(), kind: d.KindSlice(), list: list,
	}
	if len(list) > 0 {
		p.spanLo, p.spanHi = list[0], list[len(list)-1]
		switch existsAxis {
		case axis.Ancestor:
			// prefixMax[i] = max subtree end over list[:i+1]: an input
			// node b has a fragment ancestor iff some fragment node
			// before it reaches at least b.
			p.prefixMax = make([]int32, len(list))
			m := int32(-1)
			for i, f := range list {
				if end := f + d.SubtreeSize(f); end > m {
					m = end
				}
				p.prefixMax[i] = m
			}
			p.minSeek = p.spanLo + 1
		case axis.Preceding:
			// Following-join reduction: only the minimum-post fragment
			// node matters; everything after its subtree qualifies.
			best := list[0]
			for _, f := range list[1:] {
				if p.post[f] < p.post[best] {
					best = f
				}
			}
			p.minSeek = best + 1 + d.SubtreeSize(best)
		}
	}
	return p
}

// qualifies decides the exists predicate for one input node and may
// raise p.minSeek (the next input pre that could qualify).
func (p *semiProbe) qualifies(v int32) bool {
	switch p.existsAxis {
	case axis.Descendant:
		if v >= p.spanHi {
			return false
		}
		i := searchNodes(p.list, v+1)
		return i < len(p.list) && p.list[i] <= v+p.d.SubtreeSize(v)
	case axis.Ancestor:
		i := searchNodes(p.list, v)
		if i > 0 && p.prefixMax[i-1] >= v {
			return true
		}
		// No fragment subtree reaches v; the next possible hit starts
		// after the next fragment node.
		if i < len(p.list) {
			if s := p.list[i] + 1; s > p.minSeek {
				p.minSeek = s
			}
		} else {
			p.minSeek = math.MaxInt32
		}
		return false
	case axis.Following:
		// Preceding-join reduction: compare against the maximum-pre
		// fragment node.
		f := p.spanHi
		return v < f && p.post[v] < p.post[f]
	default: // axis.Preceding
		return v >= p.minSeek
	}
}

// admit is the full per-node test: attribute nodes never qualify (the
// node-list join's output filter), below-minSeek nodes cannot stand in
// the relation, and the rest go through qualifies.
func (p *semiProbe) admit(v int32) bool {
	if v < p.minSeek || p.kind[v] == doc.Attr {
		return false
	}
	return p.qualifies(v)
}

// exhaustedAfter reports that no input node >= v can qualify, so the
// consumer may stop probing input entirely.
func (p *semiProbe) exhaustedAfter(v int32) bool {
	switch p.existsAxis {
	case axis.Descendant:
		return v >= p.spanHi
	case axis.Following:
		return v >= p.spanHi
	case axis.Ancestor:
		return p.minSeek == math.MaxInt32
	default:
		return false
	}
}

// semiJoinCursor streams the exists-semijoin: input nodes pass through
// iff they stand in the exists axis relation to the fragment, decided
// by the point probe.
type semiJoinCursor struct {
	ec   *execCtx
	o    *semiJoinOp
	st   *StepStats
	ost  *opStat
	in   cursor
	pr   *semiProbe
	done bool
}

func (c *semiJoinCursor) next(seek int32) ([]int32, error) {
	if c.done {
		return nil, nil
	}
	if len(c.pr.list) == 0 {
		c.done = true
		return nil, nil
	}
	if err := c.ec.cancelled(); err != nil {
		return nil, err
	}
	start := time.Now()
	defer func() { c.st.Duration += time.Since(start) }()
	for {
		s := seek
		if c.pr.minSeek > s {
			s = c.pr.minSeek
		}
		b, err := c.in.next(s)
		if err != nil {
			return nil, err
		}
		if b == nil {
			c.done = true
			return nil, nil
		}
		// Filter in place: b is the producing operator's batch buffer,
		// released to us until our next pull.
		out := b[:0]
		for _, v := range b {
			if c.pr.admit(v) {
				out = append(out, v)
			}
		}
		c.ost.in += len(b)
		c.st.InputSize = c.ost.in
		if c.pr.exhaustedAfter(b[len(b)-1]) {
			c.done = true
		}
		if len(out) > 0 {
			c.ost.out += len(out)
			c.st.OutputSize = c.ost.out
			return out, nil
		}
		if c.done {
			return nil, nil
		}
	}
}

func (c *semiJoinCursor) close() { c.in.close() }

// --- AxisStep (pipeline breaker) ------------------------------------------

func (o *axisStepOp) open(ec *execCtx) (cursor, error) {
	in, err := o.in.open(ec)
	if err != nil {
		return nil, err
	}
	return &blockingCursor{in: in, fill: func() ([]int32, error) {
		ctxNodes, err := drainAll(ec, in)
		if err != nil {
			return nil, err
		}
		if err := ec.cancelled(); err != nil {
			return nil, err
		}
		st := ec.step(o.meta, len(ctxNodes))
		start := time.Now()
		var out []int32
		if o.docNode {
			out, err = ec.docRootAxisTest(o.a, o.test, st)
		} else {
			out, err = ec.axisTest(o.a, o.test, ctxNodes, st)
		}
		st.Duration += time.Since(start)
		if err != nil {
			return nil, err
		}
		st.OutputSize = len(out)
		ec.ops[o.id].record(len(ctxNodes), len(out))
		return out, nil
	}}, nil
}

// --- PredFilter ------------------------------------------------------------

func (o *predFilterOp) open(ec *execCtx) (cursor, error) {
	if o.chain != nil {
		return openChain(ec, o.chain)
	}
	in, err := o.in.open(ec)
	if err != nil {
		return nil, err
	}
	return &predFilterCursor{
		ec: ec, o: o, in: in,
		st: &ec.steps[o.meta.ord-1], ost: &ec.ops[o.id],
	}, nil
}

type predFilterCursor struct {
	ec   *execCtx
	o    *predFilterOp
	in   cursor
	st   *StepStats
	ost  *opStat
	done bool
}

func (c *predFilterCursor) next(seek int32) ([]int32, error) {
	if c.done {
		return nil, nil
	}
	for {
		if err := c.ec.cancelled(); err != nil {
			return nil, err
		}
		b, err := c.in.next(seek)
		if err != nil {
			return nil, err
		}
		if b == nil {
			c.done = true
			return nil, nil
		}
		start := time.Now()
		// Filter in place: b is the producing operator's batch buffer,
		// released to us until our next pull.
		out := b[:0]
		for _, v := range b {
			ok, err := c.o.prog.holds(c.ec, v)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, v)
			}
		}
		c.st.Duration += time.Since(start)
		c.ost.ran = true
		c.ost.in += len(b)
		c.ost.out += len(out)
		c.st.OutputSize = c.ost.out
		if len(out) > 0 {
			return out, nil
		}
	}
}

func (c *predFilterCursor) close() { c.in.close() }

// --- PosFilter -------------------------------------------------------------

func (o *posFilterOp) open(ec *execCtx) (cursor, error) {
	in, err := o.in.open(ec)
	if err != nil {
		return nil, err
	}
	st := &ec.steps[o.meta.ord-1]
	ost := &ec.ops[o.id]
	if o.docNode || o.step.Axis.Reverse() {
		// Reverse axes number proximity positions backwards and emit
		// per-context results in reverse document order: inherently
		// blocking. The document-node case is a single evaluation.
		return &blockingCursor{in: in, fill: func() ([]int32, error) {
			ctxNodes, err := drainAll(ec, in)
			if err != nil {
				return nil, err
			}
			st.InputSize = len(ctxNodes)
			start := time.Now()
			out, err := o.evalContext(ec, ctxNodes, st)
			st.Duration += time.Since(start)
			if err != nil {
				return nil, err
			}
			st.OutputSize = len(out)
			ost.record(len(ctxNodes), len(out))
			return out, nil
		}}, nil
	}
	return &posFilterCursor{ec: ec, o: o, in: in, st: st, ost: ost}, nil
}

// posFilterCursor streams a forward-axis positional step: context
// nodes are pulled one at a time, each evaluated with proximity
// positions (stopping at the k-th axis candidate when the leading
// predicate is a plain [k]); results are released as soon as the next
// context node's pre rank proves no future result can precede them.
type posFilterCursor struct {
	ec  *execCtx
	o   *posFilterOp
	in  cursor
	st  *StepStats
	ost *opStat

	inBuf   []int32
	inPos   int
	inDone  bool
	pending []int32 // merged results awaiting release
	ready   []int32 // released, in emission
	rpos    int
	flushed bool
	done    bool
}

// peekCtx returns the next context node without consuming it.
func (c *posFilterCursor) peekCtx() (int32, bool, error) {
	for c.inPos >= len(c.inBuf) && !c.inDone {
		b, err := c.in.next(0)
		if err != nil {
			return 0, false, err
		}
		if b == nil {
			c.inDone = true
			break
		}
		c.inBuf, c.inPos = b, 0
	}
	if c.inPos < len(c.inBuf) {
		return c.inBuf[c.inPos], true, nil
	}
	return 0, false, nil
}

func (c *posFilterCursor) next(seek int32) ([]int32, error) {
	if c.done {
		return nil, nil
	}
	for {
		if err := c.ec.cancelled(); err != nil {
			return nil, err
		}
		if c.rpos < len(c.ready) {
			end := c.rpos + execBatchSize
			if end > len(c.ready) {
				end = len(c.ready)
			}
			b := c.ready[c.rpos:end]
			c.rpos = end
			c.ost.out += len(b)
			c.st.OutputSize = c.ost.out
			return b, nil
		}
		if c.flushed {
			c.done = true
			return nil, nil
		}
		v, ok, err := c.peekCtx()
		if err != nil {
			return nil, err
		}
		if !ok {
			c.ready, c.rpos = c.pending, 0
			c.pending = nil
			c.flushed = true
			continue
		}
		c.inPos++ // consume v
		c.ost.ran = true
		c.ost.in++
		c.st.InputSize = c.ost.in
		start := time.Now()
		rs, err := c.o.evalOneCapped(c.ec, v, c.st)
		c.st.Duration += time.Since(start)
		if err != nil {
			return nil, err
		}
		c.pending = mergeDedup(c.pending, rs)
		if nxt, ok, err := c.peekCtx(); err != nil {
			return nil, err
		} else if ok {
			// Future context nodes are > nxt... >= nxt, and forward-axis
			// results never precede their context node, so pending
			// entries below nxt are final.
			cut := searchNodes(c.pending, nxt)
			c.ready, c.rpos = c.pending[:cut], 0
			c.pending = c.pending[cut:]
		}
	}
}

func (c *posFilterCursor) close() { c.in.close() }

// mergeDedup merges two strictly increasing sequences into their
// strictly increasing union.
func mergeDedup(a, b []int32) []int32 {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	return core.MergeOrSelf(a, b)
}

// evalOneCapped is evalOne with the [k] early-stop enabled (cursor
// path only: the materializing executor keeps its exact work counters).
func (o *posFilterOp) evalOneCapped(ec *execCtx, c int32, st *StepStats) ([]int32, error) {
	if k := o.firstK(); k > 0 && !o.step.Axis.Reverse() && !o.docNode && ec.opts.Strategy.staircase() {
		nodes, err := ec.axisTestFirstK(o.step.Axis, o.step.Test, c, k, st)
		if err != nil {
			return nil, err
		}
		for _, prog := range o.progs {
			nodes, err = applyPositional(ec, nodes, prog)
			if err != nil {
				return nil, err
			}
		}
		return nodes, nil
	}
	return o.evalOne(ec, c, st)
}

// axisTestFirstK evaluates axis::test for one context node, stopping
// after the first k candidates. For the streaming partitioning axes
// the early stop reaches the staircase kernels — the rest of the
// partition is skipped, never scanned; the remaining (positional,
// cheap) axes evaluate normally and truncate.
func (ec *execCtx) axisTestFirstK(a axis.Axis, test xpath.NodeTest, c int32, k int, st *StepStats) ([]int32, error) {
	base := a
	switch a {
	case axis.Descendant, axis.Following:
	case axis.DescendantOrSelf:
		base = axis.Descendant
	default:
		nodes, err := ec.axisTest(a, test, []int32{c}, st)
		if err != nil {
			return nil, err
		}
		if len(nodes) > k {
			nodes = nodes[:k]
		}
		return nodes, nil
	}
	d := ec.env.Doc
	var out []int32
	if a == axis.DescendantOrSelf && nodePassesTest(d, a, test, c) {
		out = append(out, c)
	}
	var co *core.Options
	if st != nil {
		co = &core.Options{Variant: variantFor(ec.opts.Strategy), Stats: &st.Core}
	} else {
		co = &core.Options{Variant: variantFor(ec.opts.Strategy)}
	}
	pushed := false
	var kernel core.JoinCursor
	var err error
	if ec.opts.Pushdown != PushNever && pushable(test) {
		if list, indexed, ok := pushdownList(d, test, ec.opts); ok && streamPush(ec.opts, indexed) {
			pushed = true
			kernel, err = core.NewJoinNodeListCursor(d, base, list, core.SliceSource([]int32{c}), co)
		}
	}
	if kernel == nil && err == nil {
		kernel, err = core.NewJoinCursor(d, base, core.SliceSource([]int32{c}), co)
	}
	if err != nil {
		return nil, err
	}
	buf := make([]int32, 0, 64)
	for len(out) < k {
		b, err := kernel.Next(buf[:0], 0)
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if !pushed {
			b = filterTest(d, base, test, b)
		}
		take := k - len(out)
		if take > len(b) {
			take = len(b)
		}
		out = append(out, b[:take]...)
	}
	return out, nil
}

// --- Merge -----------------------------------------------------------------

func (o *mergeOp) open(ec *execCtx) (cursor, error) {
	ins := make([]cursor, len(o.ins))
	for i, in := range o.ins {
		c, err := in.open(ec)
		if err != nil {
			return nil, err
		}
		ins[i] = c
	}
	return &mergeCursor{
		ec: ec, ost: &ec.ops[o.id], ins: ins,
		heads: make([][]int32, len(ins)), pos: make([]int, len(ins)),
		fin: make([]bool, len(ins)),
	}, nil
}

// mergeCursor is the streaming '|' union: a k-way merge with
// duplicate elimination over the branch cursors.
type mergeCursor struct {
	ec    *execCtx
	ost   *opStat
	ins   []cursor
	heads [][]int32
	pos   []int
	fin   []bool
	buf   growBuf
	done  bool
}

func (c *mergeCursor) next(seek int32) ([]int32, error) {
	if c.done {
		return nil, nil
	}
	if err := c.ec.cancelled(); err != nil {
		return nil, err
	}
	out := c.buf.take()
	for len(out) < cap(out) {
		// Refill exhausted heads.
		for i := range c.ins {
			for !c.fin[i] && c.pos[i] >= len(c.heads[i]) {
				b, err := c.ins[i].next(seek)
				if err != nil {
					return nil, err
				}
				if b == nil {
					c.fin[i] = true
					break
				}
				c.ost.in += len(b)
				c.heads[i], c.pos[i] = b, 0
			}
		}
		min := int32(math.MaxInt32)
		found := false
		for i := range c.ins {
			if !c.fin[i] && c.pos[i] < len(c.heads[i]) && c.heads[i][c.pos[i]] < min {
				min = c.heads[i][c.pos[i]]
				found = true
			}
		}
		if !found {
			c.done = true
			break
		}
		for i := range c.ins {
			if !c.fin[i] && c.pos[i] < len(c.heads[i]) && c.heads[i][c.pos[i]] == min {
				c.pos[i]++
			}
		}
		out = append(out, min)
	}
	c.ost.ran = true
	c.ost.out += len(out)
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

func (c *mergeCursor) close() {
	for _, in := range c.ins {
		in.close()
	}
}

// --- public streaming surface ----------------------------------------------

// RunCursor is a streaming execution of a plan: an iterator over the
// result sequence in document-ordered batches. It is single-use and
// not safe for concurrent use (open a cursor per evaluation; the plan
// itself stays shareable).
type RunCursor struct {
	ec        *execCtx
	root      cursor
	seek      int32
	done      bool
	exhausted bool
}

// Cursor opens a streaming execution with the given initial context
// (nil ctx never cancels). The caller should Close the cursor when
// done; draining it closes it implicitly.
func (p *Plan) Cursor(ctx context.Context, initial []int32) (*RunCursor, error) {
	ec := p.newExecCtx(ctx, initial)
	root, err := p.root.open(ec)
	if err != nil {
		return nil, err
	}
	return &RunCursor{ec: ec, root: root}, nil
}

// CursorRoot opens a streaming execution with the document root as
// initial context.
func (p *Plan) CursorRoot(ctx context.Context) (*RunCursor, error) {
	return p.Cursor(ctx, []int32{p.env.Doc.Root()})
}

// Next returns the next batch of result nodes (strictly increasing
// pre ranks, valid until the following Next call), or nil when the
// result is exhausted. "cursor.next" is the fault-injection point for
// mid-stream operator failure.
func (c *RunCursor) Next() ([]int32, error) {
	if c.done {
		return nil, nil
	}
	if err := fault.HitCtx(c.ec.ctx, "cursor.next"); err != nil {
		c.done = true
		return nil, err
	}
	b, err := c.root.next(c.seek)
	if err != nil {
		c.done = true
		return nil, err
	}
	if b == nil {
		c.done, c.exhausted = true, true
	}
	return b, nil
}

// Seek hints that the caller will ignore result nodes with pre ranks
// below the given rank; subsequent batches may omit them, with the
// skipped document regions never scanned.
func (c *RunCursor) Seek(pre int32) {
	if pre > c.seek {
		c.seek = pre
	}
}

// Exhausted reports whether the cursor produced its complete result.
func (c *RunCursor) Exhausted() bool { return c.exhausted }

// Close releases the cursor. Idempotent; safe after exhaustion.
func (c *RunCursor) Close() { c.root.close() }

// Steps returns the per-step statistics accumulated so far (final
// after exhaustion or Close).
func (c *RunCursor) Steps() []StepStats { return c.ec.steps }

// RunLimit executes the plan through the cursor executor and stops
// after limit result nodes: the streaming LIMIT operator. The
// result's Truncated field reports whether further results may exist
// (exact when the limit was hit mid-batch; conservatively true when
// the cursor stopped exactly at the limit). limit <= 0 runs to
// completion via the materializing executor.
func (p *Plan) RunLimit(ctx context.Context, initial []int32, limit int) (*Result, error) {
	if limit <= 0 {
		return p.RunCtx(ctx, initial)
	}
	cur, err := p.Cursor(ctx, initial)
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	capHint := limit
	if capHint > 4096 {
		capHint = 4096
	}
	nodes := make([]int32, 0, capHint)
	truncated := false
	for len(nodes) < limit {
		b, err := cur.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		take := limit - len(nodes)
		if len(b) > take {
			truncated = true
			b = b[:take]
		}
		nodes = append(nodes, b...)
	}
	if !truncated && !cur.Exhausted() {
		truncated = true // stopped exactly at the limit: more may exist
	}
	return &Result{Nodes: nodes, Steps: cur.ec.steps, Truncated: truncated, ops: cur.ec.ops, replans: cur.ec.replans}, nil
}

// RunLimitRoot is RunLimit from the document root.
func (p *Plan) RunLimitRoot(ctx context.Context, limit int) (*Result, error) {
	return p.RunLimit(ctx, []int32{p.env.Doc.Root()}, limit)
}
