// Mid-flight adaptive re-planning: the cursor-executor face of the
// greedy ordering pass (order.go).
//
// A reordered filter chain executes through one chainCursor instead of
// a stack of per-operator cursors: each batch pulled from the operator
// below the chain is filtered through the member stages in the current
// stage order. The stages are conjunctive, order-independent point
// filters, so their application order is an execution attribute — it
// can be revised between batches without changing the result. At every
// batch boundary the cursor compares each stage's *observed*
// selectivity (Laplace-smoothed survivors/input) against its
// compile-time estimate; when any stage has diverged by replanRatio or
// more, the stage order for the remaining batches is re-sorted by
// observed selectivity, cheapest-surviving stage first. Adopted
// switches increment adaptive_replans_total and surface in EXPLAIN's
// reorder footer.

package plan

import (
	"fmt"
	"sort"

	"staircase/internal/axis"
)

// replanMinRows is the minimum number of input rows a stage must have
// observed before its selectivity is trusted for divergence checks.
const replanMinRows = 16

// chainStage is one filter of an adaptive chain during one execution:
// the operator's per-node test plus its seek/termination hints and the
// running observation counters EXPLAIN and re-planning read.
type chainStage struct {
	ost   *opStat
	est   estimates
	label string
	// apply decides one node; stages are conjunctive and commutable.
	apply func(v int32) (bool, error)
	// minSeek returns the smallest input pre that could still pass this
	// stage (0 when unknown); the chain seeks to the max over stages.
	minSeek func() int32
	// exhausted, when non-nil, reports that no input node >= v can pass
	// this stage — the whole chain may stop pulling input.
	exhausted func(v int32) bool
}

// newChainStage builds the execution stage of one chain member.
func newChainStage(ec *execCtx, o op) *chainStage {
	s := &chainStage{ost: &ec.ops[o.opID()], label: chainLabel(o)}
	switch t := o.(type) {
	case *semiJoinOp:
		s.est = t.est
		list, indexed, _ := t.frag.resolve(ec)
		s.ost.indexed = indexed
		s.ost.fragSize = len(list)
		s.ost.probeDir = probeInputSeek
		if len(list) == 0 {
			s.apply = func(int32) (bool, error) { return false, nil }
			s.exhausted = func(int32) bool { return true }
			s.minSeek = func() int32 { return 0 }
			return s
		}
		pr := newSemiProbe(ec.env.Doc, t.existsAxis, list)
		s.apply = func(v int32) (bool, error) { return pr.admit(v), nil }
		s.minSeek = func() int32 { return pr.minSeek }
		s.exhausted = pr.exhaustedAfter
	case *valueSemiJoinOp:
		s.est = t.est
		list, indexed := t.scan.resolve(ec)
		if indexed {
			s.ost.indexed = true
			s.ost.fragSize = len(list)
			s.ost.probeDir = probeInputSeek
			if len(list) == 0 {
				s.apply = func(int32) (bool, error) { return false, nil }
				s.exhausted = func(int32) bool { return true }
				s.minSeek = func() int32 { return 0 }
				return s
			}
			d := ec.env.Doc
			pa := t.pa
			spanHi := list[len(list)-1]
			var min int32
			if pa == axis.Self {
				min = list[0]
			}
			s.apply = func(v int32) (bool, error) { return valueQualifies(d, pa, list, v), nil }
			s.minSeek = func() int32 { return min }
			// Every supported predicate axis looks at pre ranks >= the
			// context node: past the fragment's last node nothing further
			// qualifies.
			s.exhausted = func(v int32) bool { return v >= spanHi }
			return s
		}
		prog := t.prog
		s.apply = func(v int32) (bool, error) { return prog.holds(ec, v) }
		s.minSeek = func() int32 { return 0 }
	case *predFilterOp:
		s.est = t.est
		prog := t.prog
		s.apply = func(v int32) (bool, error) { return prog.holds(ec, v) }
		s.minSeek = func() int32 { return 0 }
	}
	return s
}

// openChain opens the adaptive execution of a filter chain: the base
// operator's cursor feeding the member stages in (initially) the
// compile-time greedy order. Per-cursor stage state keeps the shared
// plan immutable under concurrent executions.
func openChain(ec *execCtx, m *chainMeta) (cursor, error) {
	in, err := m.base.open(ec)
	if err != nil {
		return nil, err
	}
	stages := make([]*chainStage, len(m.members))
	for i, mem := range m.members {
		stages[i] = newChainStage(ec, mem)
	}
	return &chainCursor{
		ec: ec, in: in, stages: stages,
		st:  &ec.steps[chainOrd(m.members[0])-1],
		ord: chainOrd(m.members[0]),
	}, nil
}

// chainCursor streams a commutable filter chain with an adjustable
// stage order.
type chainCursor struct {
	ec     *execCtx
	in     cursor
	stages []*chainStage
	st     *StepStats
	ord    int
	rows   int
	done   bool
}

func (c *chainCursor) next(seek int32) ([]int32, error) {
	if c.done {
		return nil, nil
	}
	for {
		if err := c.ec.cancelled(); err != nil {
			return nil, err
		}
		s := seek
		for _, stg := range c.stages {
			if ms := stg.minSeek(); ms > s {
				s = ms
			}
		}
		b, err := c.in.next(s)
		if err != nil {
			return nil, err
		}
		if b == nil {
			c.done = true
			return nil, nil
		}
		last := b[len(b)-1]
		c.rows += len(b)
		// Filter in place through the stages: b is the producing
		// operator's batch buffer, released to us until our next pull.
		out := b
		for _, stg := range c.stages {
			stg.ost.ran = true
			if len(out) == 0 {
				break
			}
			n := len(out)
			kept := out[:0]
			for _, v := range out {
				ok, err := stg.apply(v)
				if err != nil {
					return nil, err
				}
				if ok {
					kept = append(kept, v)
				}
			}
			out = kept
			stg.ost.in += n
			stg.ost.out += len(out)
		}
		for _, stg := range c.stages {
			if stg.exhausted != nil && stg.exhausted(last) {
				c.done = true
				break
			}
		}
		c.maybeReplan()
		if len(out) > 0 {
			c.st.OutputSize += len(out)
			return out, nil
		}
		if c.done {
			return nil, nil
		}
	}
}

func (c *chainCursor) close() { c.in.close() }

// obsSel is a stage's Laplace-smoothed observed selectivity.
func (s *chainStage) obsSel() float64 {
	return float64(s.ost.out+1) / float64(s.ost.in+1)
}

// estSel is a stage's compile-time selectivity estimate.
func (s *chainStage) estSel() float64 {
	return float64(s.est.Out+1) / float64(s.est.In+1)
}

// maybeReplan revises the stage order at a batch boundary when any
// sufficiently observed stage's actual selectivity has diverged from
// its compile-time estimate by replanRatio or more. The revised order
// sorts stages by observed selectivity (stable: ties keep the current
// order); an adopted switch counts toward adaptive_replans_total and
// is noted for EXPLAIN.
func (c *chainCursor) maybeReplan() {
	if c.done || len(c.stages) < 2 {
		return
	}
	diverged := false
	for _, stg := range c.stages {
		if stg.ost.in < replanMinRows {
			continue
		}
		r := stg.obsSel() / stg.estSel()
		if r < 1 {
			r = 1 / r
		}
		if r >= replanRatio {
			diverged = true
			break
		}
	}
	if !diverged {
		return
	}
	ns := append([]*chainStage(nil), c.stages...)
	sort.SliceStable(ns, func(i, j int) bool { return ns[i].obsSel() < ns[j].obsSel() })
	changed := false
	for i := range ns {
		if ns[i] != c.stages[i] {
			changed = true
			break
		}
	}
	if !changed {
		return
	}
	c.stages = ns
	adaptiveReplansTotal.Add(1)
	var order []string
	for _, stg := range ns {
		order = append(order, stg.label)
	}
	c.ec.replans = append(c.ec.replans, fmt.Sprintf(
		"step %d: adaptive re-plan after %d rows: stage order %v", c.ord, c.rows, order))
}
