// Cost model for the physical operators (the paper's §6: "Further
// research goes in the direction of a cost model to be able to
// intelligently choose between name/node test pushdown and related
// XPath rewriting laws"). Two kinds of quantities live here:
//
//   - execution-time bounds computed from the *actual* context
//     sequence an operator receives (estimateJoinTouches,
//     costPushdown, parallelWorkersFor). These drive the pushdown and
//     parallel-fan-out decisions inside StaircaseJoin, exactly as the
//     step interpreter decided them, so plan-based execution makes
//     identical choices;
//   - compile-time estimates derived from document statistics and the
//     tag/kind index's exact per-fragment cardinalities (estimate*).
//     These annotate the plan for EXPLAIN and would drive plan-level
//     reordering; they never change results.
//
// Both bound families follow from the skipping analysis of §3.3: a
// descendant staircase join touches at most |result| + |context|
// nodes, the ancestor join at most h·|context| plus one probe per
// skipped sibling subtree, following/preceding degenerate to a single
// region copy, and a fragment join touches at most the fragment.

package plan

import (
	"runtime"

	"staircase/internal/axis"
	"staircase/internal/doc"
)

// estimateJoinTouches bounds the nodes a staircase join over the full
// document touches for the given axis and actual context. An empty
// context touches nothing on any axis.
func estimateJoinTouches(d *doc.Document, a axis.Axis, context []int32) int64 {
	if len(context) == 0 {
		return 0
	}
	n := int64(d.Size())
	k := int64(len(context))
	switch a {
	case axis.Descendant:
		var sum int64
		for _, c := range context {
			sum += int64(d.SubtreeSize(c))
			if sum >= n {
				return n
			}
		}
		return sum + k
	case axis.Ancestor:
		// Result is at most h per context node; skipping probes one
		// node per jumped subtree, bounded by the pre rank of the last
		// context node. Use the optimistic result bound plus a probe
		// allowance.
		bound := int64(d.Height())*k + 2*k
		if last := int64(context[len(context)-1]); last < bound {
			return last
		}
		return bound
	case axis.Following:
		post := d.PostSlice()
		best := context[0]
		for _, c := range context[1:] {
			if post[c] < post[best] {
				best = c
			}
		}
		return n - int64(best)
	case axis.Preceding:
		return int64(context[len(context)-1])
	default:
		return n
	}
}

// costPushdown decides node-test pushdown: push when the fragment (the
// tag or kind node list) is smaller than `bound`, the
// estimateJoinTouches bound on what the full join would touch. The
// full join runs partition-parallel when the caller requested workers,
// so the comparison uses the *per-worker* scan bound.
func costPushdown(fragment, bound int64, workers int) bool {
	if workers < 1 {
		workers = 1
	}
	return fragment < bound/int64(workers)
}

// shouldPush decides node-test pushdown: forced by PushAlways/
// PushNever, otherwise delegated to the cost model.
func shouldPush(fragment, bound int64, mode Pushdown, workers int) bool {
	switch mode {
	case PushAlways:
		return true
	case PushNever:
		return false
	default:
		return costPushdown(fragment, bound, workers)
	}
}

// minParallelWork is the minimum estimated number of touched nodes per
// worker before the cost model lets a staircase join fan out: below
// it, goroutine spawn and per-worker result concatenation dominate the
// scan itself.
const minParallelWork = 1 << 11

// parallelWorkersFor resolves the requested Options.Parallelism into
// the worker count for one axis step whose estimateJoinTouches bound
// is `bound`: negative requests map to GOMAXPROCS, and the result is
// clamped so every worker gets at least minParallelWork estimated
// touched nodes.
func parallelWorkersFor(opts *Options, bound int64) int {
	w := opts.Parallelism
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w <= 1 {
		return 1
	}
	if maxW := bound / minParallelWork; int64(w) > maxW {
		w = int(maxW)
	}
	if w < 1 {
		return 1
	}
	return w
}

// morselWorkersFor resolves the requested Options.MorselWorkers into
// the worker-pool size for one streaming join cursor: negative
// requests map to GOMAXPROCS, 0/1 keep the cursor serial. The morsel
// cursor itself clamps further to its task count (small joins cut
// into fewer tasks than workers).
func morselWorkersFor(opts *Options) int {
	w := opts.MorselWorkers
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w <= 1 {
		return 1
	}
	return w
}

// estimates are the compile-time cardinality annotations of one
// operator, shown by EXPLAIN. In is the estimated context size flowing
// into the operator, Out its estimated output cardinality, and Bound
// (join operators only) the static full-join touch bound the pushdown
// comparison would use from a root-sized context.
type estimates struct {
	In, Out, Bound int64
}

// estimateStep estimates the output cardinality of an axis step given
// the estimated input cardinality. Fragment cardinalities are exact
// (index-served); everything else is a coarse structural bound — the
// estimates annotate EXPLAIN, they do not gate correctness.
func estimateStep(d *doc.Document, a axis.Axis, fragCard int64, estIn int64) int64 {
	n := int64(d.Size())
	capN := func(v int64) int64 {
		if v > n {
			return n
		}
		return v
	}
	switch a {
	case axis.Descendant, axis.DescendantOrSelf, axis.Following, axis.Preceding:
		if fragCard >= 0 {
			return fragCard
		}
		return n
	case axis.Ancestor, axis.AncestorOrSelf:
		hBound := capN(int64(d.Height()) * maxInt64(estIn, 1))
		if fragCard >= 0 && fragCard < hBound {
			return fragCard
		}
		return hBound
	case axis.Child, axis.FollowingSibling, axis.PrecedingSibling, axis.Attribute:
		return capN(4 * maxInt64(estIn, 1))
	case axis.Parent, axis.Self:
		return maxInt64(estIn, 1)
	case axis.Namespace:
		return 0
	default:
		return n
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
