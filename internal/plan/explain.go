// EXPLAIN rendering: the optimized physical plan tree in text and JSON
// form, annotated per operator with compile-time cardinality estimates
// and — when a Result from an execution is supplied — the actual
// cardinalities, pushdown decisions, fragment sources and staircase
// work counters. The text form is the human surface of xpathq -explain
// and the server's GET /explain; the JSON form is the machine surface
// (GET /explain?format=json).

package plan

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
)

// ExplainTree is the JSON form of an explained plan.
type ExplainTree struct {
	Query         string   `json:"query"`
	Canon         string   `json:"canon"`
	Strategy      string   `json:"strategy"`
	Pushdown      string   `json:"pushdown"`
	Parallelism   int      `json:"parallelism,omitempty"`
	MorselWorkers int      `json:"morselWorkers,omitempty"`
	NoIndex       bool     `json:"noIndex,omitempty"`
	NoValueIndex  bool     `json:"noValueIndex,omitempty"`
	NoReorder     bool     `json:"noReorder,omitempty"`
	Rewrites      []string `json:"rewrites,omitempty"`
	// Reorder lists the greedy ordering pass's fired decisions; Replans
	// the mid-flight adaptive re-plans of the supplied execution.
	Reorder     []string     `json:"reorder,omitempty"`
	Replans     []string     `json:"replans,omitempty"`
	Executed    bool         `json:"executed"`
	ResultCount int          `json:"resultCount"`
	Root        *ExplainNode `json:"root"`
}

// ExplainNode is one operator of the JSON plan tree.
type ExplainNode struct {
	Op      string `json:"op"`
	Step    int    `json:"step,omitempty"`
	Detail  string `json:"detail,omitempty"`
	Variant string `json:"variant,omitempty"`
	DocNode bool   `json:"docNode,omitempty"`
	EstIn   int64  `json:"estIn,omitempty"`
	EstOut  int64  `json:"estOut,omitempty"`
	Ran     bool   `json:"ran,omitempty"`
	In      int    `json:"in,omitempty"`
	Out     int    `json:"out,omitempty"`
	// Order is the greedy ordering pass's annotation for this operator
	// (hoisted position); ProbeDir the semijoin probe direction the
	// execution actually took.
	Order    string `json:"order,omitempty"`
	ProbeDir string `json:"probeDir,omitempty"`
	Skipped  int64  `json:"skipped,omitempty"`
	Pushed   bool   `json:"pushed,omitempty"`
	Indexed  bool   `json:"indexed,omitempty"`
	Fragment int    `json:"fragment,omitempty"`
	Bound    int64  `json:"bound,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	// Morsel-driven cursor execution (streaming runs only).
	Morsels       int `json:"morsels,omitempty"`
	MorselWorkers int `json:"morselWorkers,omitempty"`
	// Fragment-scan leaves: the fragment source and exact statistics.
	Source string `json:"source,omitempty"` // "shared tag/kind index" or "name-column scan"
	Count  int64  `json:"count,omitempty"`
	Span   string `json:"span,omitempty"`
	// Staircase work counters of the owning step (join operators).
	Pruning  string         `json:"pruning,omitempty"`
	Work     string         `json:"work,omitempty"`
	Children []*ExplainNode `json:"children,omitempty"`
}

// ExplainJSON builds the JSON plan tree; res carries the actual
// per-operator cardinalities of an execution and may be nil for a
// compile-only explanation.
func (p *Plan) ExplainJSON(res *Result) ([]byte, error) {
	t := p.explainTree(res)
	return json.MarshalIndent(t, "", "  ")
}

func (p *Plan) explainTree(res *Result) *ExplainTree {
	t := &ExplainTree{
		Query:         p.Query(),
		Canon:         p.Canon(),
		Strategy:      p.opts.Strategy.String(),
		Pushdown:      p.opts.Pushdown.String(),
		Parallelism:   p.opts.Parallelism,
		MorselWorkers: p.opts.MorselWorkers,
		NoIndex:       p.opts.NoIndex,
		NoValueIndex:  p.opts.NoValueIndex,
		NoReorder:     p.opts.NoReorder,
		Rewrites:      p.rewrites,
		Reorder:       p.orderNotes,
		Root:          p.explainNode(p.root, res),
	}
	if res != nil {
		t.Executed = true
		t.ResultCount = len(res.Nodes)
		t.Replans = res.replans
	}
	return t
}

// opDetail returns the cached detail rendering of an operator — the
// predicate, step or test string EXPLAIN repeats for it. Prepared
// plans are explained many times; the strings are rendered once,
// lazily, alongside the canon cache.
func (p *Plan) opDetail(o op) string {
	p.displayOnce.Do(func() {
		p.display = make([]string, len(p.ops))
		for i, q := range p.ops {
			switch t := q.(type) {
			case *joinOp:
				p.display[i] = fmt.Sprintf("%s::%s", t.stepAxis(), t.test)
			case *axisStepOp:
				p.display[i] = fmt.Sprintf("%s::%s", t.a, t.test)
			case *predFilterOp:
				p.display[i] = fmt.Sprintf("%s", t.pred)
			case *semiJoinOp:
				p.display[i] = fmt.Sprintf("%s", t.pred)
			case *valueSemiJoinOp:
				p.display[i] = fmt.Sprintf("%s", t.pred)
			case *posFilterOp:
				p.display[i] = t.step.String()
			case *valueScan:
				p.display[i] = t.predString()
			case *fragScan:
				p.display[i] = t.test.String()
			}
		}
	})
	return p.display[o.opID()]
}

// probeDirName names the semijoin probe direction an execution took.
func probeDirName(d int8) string {
	switch d {
	case probeFragSweep:
		return "fragment-sweep (fragment partitions the input)"
	case probeInputSeek:
		return "input-seek (input nodes binary-probe the fragment)"
	}
	return ""
}

func (p *Plan) explainNode(o op, res *Result) *ExplainNode {
	n := &ExplainNode{Op: opName(o, &p.opts)}
	var ost *opStat
	if res != nil {
		ost = &res.ops[o.opID()]
	}
	switch t := o.(type) {
	case *sourceOp:
		if t.docRoot {
			n.Detail = "document root"
		} else {
			n.Detail = "caller context"
		}
	case *joinOp:
		n.Step = t.meta.ord
		n.Detail = p.opDetail(t)
		if p.opts.Strategy.staircase() {
			n.Variant = t.variant.String()
		}
		n.DocNode = t.docNode
		n.EstIn, n.EstOut = t.est.In, t.est.Out
		if res != nil {
			st := &res.Steps[t.meta.ord-1]
			if st.Core.ContextSize > 0 {
				n.Pruning = fmt.Sprintf("%d -> %d staircase partitions", st.Core.ContextSize, st.Core.PrunedSize)
				n.Work = fmt.Sprintf("scanned %d (copied %d, compared %d), skipped %d",
					st.Core.Scanned, st.Core.Copied, st.Core.Compared, st.Core.Skipped)
			}
			n.Workers = int(st.Core.Workers)
		}
	case *axisStepOp:
		n.Step = t.meta.ord
		n.Detail = p.opDetail(t)
		n.DocNode = t.docNode
		n.EstIn, n.EstOut = t.est.In, t.est.Out
	case *predFilterOp:
		n.Step = t.meta.ord
		n.Detail = fmt.Sprintf("[%s]", p.opDetail(t))
		n.EstIn, n.EstOut = t.est.In, t.est.Out
	case *semiJoinOp:
		n.Step = t.meta.ord
		n.Detail = fmt.Sprintf("[%s] on inverse axis %s", p.opDetail(t), t.inv)
		n.Variant = t.variant.String()
		n.EstIn, n.EstOut = t.est.In, t.est.Out
	case *valueSemiJoinOp:
		n.Step = t.meta.ord
		n.Detail = fmt.Sprintf("[%s] probed on axis %s", p.opDetail(t), t.pa)
		n.EstIn, n.EstOut = t.est.In, t.est.Out
	case *valueScan:
		n.Detail = p.opDetail(t)
		n.Source = p.valueSource(t)
	case *posFilterOp:
		n.Step = t.meta.ord
		n.Detail = p.opDetail(t)
		n.DocNode = t.docNode
		n.EstIn, n.EstOut = t.est.In, t.est.Out
	case *emptyOp:
		n.Detail = fmt.Sprintf("provably empty: %s; downstream operators skipped", t.reason)
	case *fragScan:
		n.Detail = p.opDetail(t)
		n.Count = t.card
		if p.opts.NoIndex {
			n.Source = "name-column scan"
		} else {
			n.Source = "shared tag/kind index"
		}
		if t.hasSpan {
			n.Span = fmt.Sprintf("[%d..%d]", t.spanLo, t.spanHi)
		}
	}
	if note, ok := p.opOrder[o.opID()]; ok {
		n.Order = note
	}
	if ost != nil && ost.ran {
		n.Ran = true
		n.In, n.Out = ost.in, ost.out
		n.ProbeDir = probeDirName(ost.probeDir)
		n.Skipped = ost.skipped
		n.Pushed, n.Indexed = ost.pushed, ost.indexed
		if ost.fragSize > 0 {
			n.Fragment = ost.fragSize
		}
		n.Bound = ost.bound
		n.Morsels, n.MorselWorkers = ost.morsels, ost.morselWorkers
	}
	for _, kid := range o.kids() {
		n.Children = append(n.Children, p.explainNode(kid, res))
	}
	return n
}

// opName names the physical operator, resolving the strategy aliases
// of the join slot.
func opName(o op, opts *Options) string {
	switch t := o.(type) {
	case *sourceOp:
		return "Source"
	case *joinOp:
		switch opts.Strategy {
		case Naive:
			return "NaiveJoin"
		case SQL, SQLWindow:
			return "SQLJoin"
		default:
			return "StaircaseJoin"
		}
	case *axisStepOp:
		return "AxisStep"
	case *predFilterOp:
		return "PredFilter"
	case *semiJoinOp:
		return "SemiJoin"
	case *valueSemiJoinOp:
		return "ValueSemiJoin"
	case *valueScan:
		return "ValueScan"
	case *posFilterOp:
		return "PosFilter"
	case *emptyOp:
		return "EmptyResult"
	case *mergeOp:
		return "Merge"
	case *fragScan:
		if opts.NoIndex {
			return "ColumnScan"
		}
		_ = t
		return "IndexScan"
	default:
		return fmt.Sprintf("%T", o)
	}
}

// ExplainText renders the optimized plan tree as indented text, root
// operator first. res carries the actuals of an execution and may be
// nil for a compile-only explanation.
func (p *Plan) ExplainText(res *Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "query: %s\n", p.Query())
	fmt.Fprintf(&sb, "plan: strategy=%s pushdown=%s", p.opts.Strategy, p.opts.Pushdown)
	if p.opts.Parallelism != 0 {
		fmt.Fprintf(&sb, " parallelism=%d", p.opts.Parallelism)
	}
	if p.opts.MorselWorkers != 0 {
		fmt.Fprintf(&sb, " morsel-workers=%d", p.opts.MorselWorkers)
	}
	if p.opts.NoIndex {
		sb.WriteString(" no-index")
	}
	if p.opts.NoValueIndex {
		sb.WriteString(" no-value-index")
	}
	if p.opts.NoReorder {
		sb.WriteString(" no-reorder")
	}
	sb.WriteString("\n")
	if len(p.rewrites) > 0 {
		fmt.Fprintf(&sb, "rewrites: %s\n", strings.Join(p.rewrites, ", "))
	}
	if m, ok := p.root.(*mergeOp); ok {
		sb.WriteString("merge-union (document order preserved)\n")
		for i, in := range m.ins {
			fmt.Fprintf(&sb, "union branch %d: %s\n", i+1, p.logical.Query.Paths[i])
			p.renderOp(&sb, in, res, 1)
		}
	} else {
		p.renderOp(&sb, p.root, res, 0)
	}
	p.renderReorderFooter(&sb, res)
	return sb.String()
}

// renderReorderFooter prints the greedy ordering pass's fired
// decisions and — for an executed plan — the adaptive re-plans of
// that run.
func (p *Plan) renderReorderFooter(sb *strings.Builder, res *Result) {
	for _, note := range p.orderNotes {
		fmt.Fprintf(sb, "reorder: %s\n", note)
	}
	if res != nil {
		for _, note := range res.replans {
			fmt.Fprintf(sb, "reorder: %s\n", note)
		}
	}
}

// renderOp prints one operator and recurses into its inputs.
func (p *Plan) renderOp(sb *strings.Builder, o op, res *Result, depth int) {
	pad := strings.Repeat("  ", depth)
	line := func(format string, args ...any) {
		sb.WriteString(pad)
		fmt.Fprintf(sb, format, args...)
		sb.WriteByte('\n')
	}
	var ost *opStat
	if res != nil {
		ost = &res.ops[o.opID()]
	}
	card := func(est estimates) {
		if ost != nil && ost.ran {
			line("  cardinality: %d context -> est=%d actual=%d result (skipped=%d)", ost.in, est.Out, ost.out, ost.skipped)
		} else {
			line("  cardinality: est=%d context -> est=%d result", est.In, est.Out)
		}
	}
	order := func() {
		if note, ok := p.opOrder[o.opID()]; ok {
			line("  order: %s", note)
		}
		if ost != nil && ost.ran && ost.probeDir != probeUnset {
			line("  order: probe direction %s", probeDirName(ost.probeDir))
		}
	}
	switch t := o.(type) {
	case *sourceOp:
		if t.docRoot {
			line("Source (document root)")
		} else {
			line("Source (caller context)")
		}
	case *joinOp:
		p.renderJoin(sb, t, res, ost, depth, line, card)
	case *axisStepOp:
		label := fmt.Sprintf("step %d: %s::%s", t.meta.ord, t.a, t.test)
		if t.docNode {
			label += ", document node"
		}
		line("AxisStep (%s)", label)
		line("  operator: positional %s lookup (parent/size columns)", t.a)
		card(t.est)
	case *predFilterOp:
		line("PredFilter (step %d)", t.meta.ord)
		line("  predicate filter: [%s] (node at a time)", p.opDetail(t))
		card(t.est)
		order()
	case *semiJoinOp:
		line("SemiJoin (step %d)", t.meta.ord)
		line("  operator: staircase semijoin over the %s axis (exists-semijoin rewrite, set-at-a-time)", t.inv)
		line("  predicate filter: [%s] evaluated as fragment semijoin", p.opDetail(t))
		card(t.est)
		order()
	case *valueSemiJoinOp:
		line("ValueSemiJoin (step %d)", t.meta.ord)
		line("  operator: value semijoin, fragment probes on the %s axis (value-semijoin rewrite, set-at-a-time)", t.pa)
		line("  predicate filter: [%s] evaluated against the value fragment", p.opDetail(t))
		card(t.est)
		order()
	case *posFilterOp:
		label := fmt.Sprintf("step %d: %s", t.meta.ord, t.step)
		if t.docNode {
			label += ", document node"
		}
		line("PosFilter (%s)", label)
		line("  operator: per-context-node step with proximity positions (reverse axes count backwards)")
		card(t.est)
	case *emptyOp:
		line("EmptyResult (provably empty: %s; downstream operators skipped)", t.reason)
		card(estimates{})
	case *fragScan:
		p.renderFrag(sb, t, depth, line)
		return // leaves carry their detail on one block, no inputs
	case *valueScan:
		line("ValueScan (fragment %s; %s)", p.opDetail(t), p.valueSource(t))
		return
	case *mergeOp:
		line("Merge (union)")
	}
	for _, kid := range o.kids() {
		p.renderOp(sb, kid, res, depth+1)
	}
}

// renderJoin prints the join operator with its strategy, pushdown and
// parallel annotations — the physical-plan counterpart of the paper's
// Figure 3 plan analysis.
func (p *Plan) renderJoin(sb *strings.Builder, t *joinOp, res *Result, ost *opStat, depth int,
	line func(string, ...any), card func(estimates)) {
	label := fmt.Sprintf("step %d: %s::%s", t.meta.ord, t.stepAxis(), t.test)
	if t.docNode {
		label += ", document node"
	}
	switch p.opts.Strategy {
	case Naive:
		line("NaiveJoin (%s)", label)
		line("  operator: per-context region queries + sort + unique (tree-unaware)")
		line("  properties: may generate duplicates; plan appends unique over pre-sorted output")
		card(t.est)
		return
	case SQL:
		line("SQLJoin (%s)", label)
		line("  operator: B-tree indexed nested-loop semijoin (Figure 3 plan)")
		line("  properties: may generate duplicates; plan appends unique over pre-sorted output")
		card(t.est)
		return
	case SQLWindow:
		line("SQLJoin (%s)", label)
		line("  operator: B-tree indexed semijoin + Equation(1) window delimiter (§2.1 line 7)")
		line("  properties: may generate duplicates; plan appends unique over pre-sorted output")
		card(t.est)
		return
	}
	variant := map[Strategy]string{
		Staircase:       "estimation-based skipping (Algorithm 4)",
		StaircaseSkip:   "skipping (Algorithm 3)",
		StaircaseNoSkip: "basic scan (Algorithm 2)",
	}[p.opts.Strategy]
	line("StaircaseJoin (%s)", label)
	line("  operator: staircase join, %s", variant)
	line("  properties: no duplicates, document order (no unique/sort needed)")
	card(t.est)
	var st *StepStats
	if res != nil {
		st = &res.Steps[t.meta.ord-1]
		if st.Core.ContextSize > 0 {
			line("  pruning: %d -> %d staircase partitions", st.Core.ContextSize, st.Core.PrunedSize)
			line("  work: scanned %d (copied %d, compared %d), skipped %d",
				st.Core.Scanned, st.Core.Copied, st.Core.Compared, st.Core.Skipped)
		}
	}
	p.renderPushdown(t, ost, line)
	p.renderParallel(t, st, ost, line)
	if ost != nil && ost.morsels > 0 {
		line("  morsels=%d workers=%d (order-restoring merge; byte-identical to serial cursor)",
			ost.morsels, ost.morselWorkers)
	}
}

// renderPushdown prints the pushdown decision of a staircase join.
func (p *Plan) renderPushdown(t *joinOp, ost *opStat, line func(string, ...any)) {
	if !pushable(t.test) {
		return
	}
	testName := t.test.String()
	switch {
	case ost == nil || !ost.ran:
		if t.frag != nil {
			line("  pushdown: candidate fragment scan attached (policy %s, decided at execution from the context bound)", p.opts.Pushdown)
		} else {
			line("  pushdown: disabled (mode %s)", p.opts.Pushdown)
		}
	case ost.pushed && !p.opts.NoIndex:
		source := "shared tag/kind index"
		if t.frag != nil && t.frag.hasSpan {
			source += fmt.Sprintf(", pre span [%d..%d]", t.frag.spanLo, t.frag.spanHi)
		}
		line("  pushdown: test %s pushed below join (fragment %d < full-join bound %d; %s)",
			testName, ost.fragSize, ost.bound, source)
	case ost.pushed:
		line("  pushdown: test %s pushed below join (fragment %d < full-join bound %d; name-column scan, index disabled)",
			testName, ost.fragSize, ost.bound)
	case p.opts.Pushdown == PushNever:
		line("  pushdown: test %s applied after join (mode never)", testName)
	default:
		line("  pushdown: test %s applied after join (mode %s, fragment %d vs full-join bound %d)",
			testName, p.opts.Pushdown, ost.fragSize, ost.bound)
	}
}

// renderParallel prints the partition-parallel fan-out decision of a
// staircase join, mirroring the executor's cost-model branches.
func (p *Plan) renderParallel(t *joinOp, st *StepStats, ost *opStat, line func(string, ...any)) {
	if st == nil || st.Core.ContextSize == 0 {
		return
	}
	if st.Core.Workers > 1 {
		line("  parallel: %d workers over %d partitions (disjoint pre ranges, concat in document order)",
			st.Core.Workers, st.Core.PrunedSize)
		return
	}
	req := p.opts.Parallelism
	if req <= 1 && req >= 0 {
		return
	}
	if req < 0 {
		req = runtime.GOMAXPROCS(0)
	}
	switch {
	case ost != nil && ost.pushed:
		line("  parallel: n/a (name-test pushdown chose the serial fragment join)")
	case req <= 1:
		line("  parallel: n/a (GOMAXPROCS resolves to a single worker)")
	case st.Core.Workers == 1:
		line("  parallel: single chunk (%d staircase partition(s) do not split further)", st.Core.PrunedSize)
	default:
		line("  parallel: declined by cost model (step below %d touched nodes per worker)", int64(minParallelWork))
	}
}

// valueSource names where a value fragment comes from in this plan's
// configuration — the fragment-source line of ValueScan leaves.
func (p *Plan) valueSource(t *valueScan) string {
	if p.opts.NoValueIndex {
		return "per-node evaluation (value index disabled)"
	}
	switch {
	case t.contains:
		return "value index (string B-tree, substring scan)"
	case t.numeric:
		return "value index (numeric B-tree)"
	default:
		return "value index (string B-tree)"
	}
}

// renderFrag prints a fragment-scan leaf.
func (p *Plan) renderFrag(sb *strings.Builder, t *fragScan, depth int, line func(string, ...any)) {
	if p.opts.NoIndex {
		line("ColumnScan (fragment %s; name-column scan, index disabled)", t.test)
		return
	}
	detail := fmt.Sprintf("fragment %s", t.test)
	if t.card >= 0 {
		detail += fmt.Sprintf(": %d nodes", t.card)
	}
	if t.hasSpan {
		detail += fmt.Sprintf(", pre span [%d..%d]", t.spanLo, t.spanHi)
	}
	line("IndexScan (%s; shared tag/kind index)", detail)
}
