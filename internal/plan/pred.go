// Predicate programs: the compiled form of step qualifiers. Each
// predicate is compiled once per plan — existential and comparison
// predicates carry a full sub-plan for their relative path — and then
// evaluated per candidate node (PredFilter) or per proximity position
// (PosFilter). The exists-semijoin rewrite (ops.go) bypasses this
// machinery entirely for the predicates it covers.

package plan

import (
	"fmt"
	"strings"

	"staircase/internal/xpath"
)

// predProg kinds.
const (
	pgExists uint8 = iota
	pgCompare
	pgContains
	pgPosition
	pgLast
	pgNot
	pgAnd
	pgOr
)

// predProg is one compiled predicate.
type predProg struct {
	kind    uint8
	sub     *Plan // pgExists, pgCompare, pgContains: the relative path's sub-plan
	op      xpath.CompareOp
	lit     string
	numeric bool // pgCompare: number literal, compare as float64
	n       int
	kids    []*predProg
}

// compilePredProg compiles a predicate against the plan's environment
// and options.
func compilePredProg(env *Env, opts *Options, pred xpath.Predicate) (*predProg, error) {
	switch p := pred.(type) {
	case xpath.Exists:
		sub, err := compileSubPath(env, opts, p.Path)
		if err != nil {
			return nil, err
		}
		return &predProg{kind: pgExists, sub: sub}, nil
	case xpath.Compare:
		sub, err := compileSubPath(env, opts, p.Path)
		if err != nil {
			return nil, err
		}
		return &predProg{kind: pgCompare, sub: sub, op: p.Op, lit: p.Literal, numeric: p.Numeric}, nil
	case xpath.Contains:
		sub, err := compileSubPath(env, opts, p.Path)
		if err != nil {
			return nil, err
		}
		return &predProg{kind: pgContains, sub: sub, lit: p.Literal}, nil
	case xpath.Position:
		return &predProg{kind: pgPosition, n: p.N}, nil
	case xpath.Last:
		return &predProg{kind: pgLast}, nil
	case xpath.Not:
		kid, err := compilePredProg(env, opts, p.Inner)
		if err != nil {
			return nil, err
		}
		return &predProg{kind: pgNot, kids: []*predProg{kid}}, nil
	case xpath.And:
		kids, err := compilePredProgs(env, opts, p.Preds)
		if err != nil {
			return nil, err
		}
		return &predProg{kind: pgAnd, kids: kids}, nil
	case xpath.Or:
		kids, err := compilePredProgs(env, opts, p.Preds)
		if err != nil {
			return nil, err
		}
		return &predProg{kind: pgOr, kids: kids}, nil
	default:
		return nil, fmt.Errorf("plan: unsupported predicate %T", pred)
	}
}

func compilePredProgs(env *Env, opts *Options, preds []xpath.Predicate) ([]*predProg, error) {
	kids := make([]*predProg, 0, len(preds))
	for _, q := range preds {
		kid, err := compilePredProg(env, opts, q)
		if err != nil {
			return nil, err
		}
		kids = append(kids, kid)
	}
	return kids, nil
}

// compileSubPath compiles the relative (or absolute) path of a
// predicate into a sub-plan, sharing the parent plan's environment and
// options.
func compileSubPath(env *Env, opts *Options, path xpath.Path) (*Plan, error) {
	l := BuildLogical(xpath.Query{Paths: []xpath.Path{path}})
	Rewrite(l)
	return Compile(env, l, opts)
}

// evalSub runs a predicate sub-plan for one candidate node.
func (pg *predProg) evalSub(ec *execCtx, v int32) ([]int32, error) {
	res, err := pg.sub.Run([]int32{v})
	if err != nil {
		return nil, err
	}
	return res.Nodes, nil
}

// holds decides a non-positional predicate for one candidate node.
func (pg *predProg) holds(ec *execCtx, v int32) (bool, error) {
	switch pg.kind {
	case pgExists:
		nodes, err := pg.evalSub(ec, v)
		if err != nil {
			return false, err
		}
		return len(nodes) > 0, nil
	case pgCompare:
		nodes, err := pg.evalSub(ec, v)
		if err != nil {
			return false, err
		}
		for _, n := range nodes {
			if xpath.CompareValue(ec.env.Doc.StringValue(n), pg.op, pg.lit, pg.numeric) {
				return true, nil
			}
		}
		return false, nil
	case pgContains:
		nodes, err := pg.evalSub(ec, v)
		if err != nil {
			return false, err
		}
		for _, n := range nodes {
			if strings.Contains(ec.env.Doc.StringValue(n), pg.lit) {
				return true, nil
			}
		}
		return false, nil
	case pgNot:
		ok, err := pg.kids[0].holds(ec, v)
		return !ok, err
	case pgAnd:
		for _, kid := range pg.kids {
			ok, err := kid.holds(ec, v)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case pgOr:
		for _, kid := range pg.kids {
			ok, err := kid.holds(ec, v)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("plan: unsupported positional predicate in set mode")
	}
}

// holdsAt decides any predicate for a node at a known proximity
// position.
func (pg *predProg) holdsAt(ec *execCtx, v int32, pos, size int) (bool, error) {
	switch pg.kind {
	case pgPosition:
		return pos == pg.n, nil
	case pgLast:
		return pos == size, nil
	case pgNot:
		ok, err := pg.kids[0].holdsAt(ec, v, pos, size)
		return !ok, err
	case pgAnd:
		for _, kid := range pg.kids {
			ok, err := kid.holdsAt(ec, v, pos, size)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case pgOr:
		for _, kid := range pg.kids {
			ok, err := kid.holdsAt(ec, v, pos, size)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	default:
		return pg.holds(ec, v)
	}
}
