// The greedy ordering pass: statistics-exact reordering of commutable
// work, run after the rewrite rules as the last stage of Compile.
//
// The tag and value indexes expose *exact* fragment cardinalities, so
// there is no estimation problem to solve: the pass ranks the
// commutable filters stacked on one location step (non-positional
// predicates are conjunctive and order-independent) by exact fragment
// count and hoists cheap selective semijoins ahead of expensive
// per-node predicate programs — a greedy order over exact statistics,
// the "when greedy beats optimal" price/performance point. Semijoin
// probe *direction* (sweep the fragment vs. binary-probe each input
// node) is decided at execution time from the actual cardinalities
// (ops.go/value.go); and when any intermediate is provably empty —
// a name test over an absent tag, an empty semijoin fragment — the
// whole branch is replaced by a zero-cardinality EmptyOp and the
// downstream operators never execute.
//
// Ordering decisions are result-invariant and therefore excluded from
// Plan.Canon: the canonical string renders filter chains in source
// order regardless of the evaluation order chosen here, so equivalent
// query spellings keep sharing result-cache and shared-scan entries.
// Options.NoReorder disables the pass (ablation; the differential
// suite pins greedy ≡ left-to-right ≡ legacy).
//
// Mid-flight adaptive re-planning (adapt.go) builds on the chain
// metadata attached here: reordered filter chains execute through one
// chain cursor whose stage order can be revised at batch boundaries
// when observed selectivities diverge from the compile-time estimates.

package plan

import (
	"fmt"
	"sort"
	"sync/atomic"

	"staircase/internal/axis"
)

// reordersTotal counts plan compilations whose greedy pass changed an
// evaluation order (including empty-branch short-circuits);
// adaptiveReplansTotal counts mid-flight stage-order switches adopted
// by the cursor executor. Both feed the server's /metrics.
var (
	reordersTotal        atomic.Int64
	adaptiveReplansTotal atomic.Int64
)

// Reorders returns the process-wide count of greedy ordering decisions
// that changed a plan (plan_reorders_total).
func Reorders() int64 { return reordersTotal.Load() }

// AdaptiveReplans returns the process-wide count of adopted mid-flight
// re-planning switches (adaptive_replans_total).
func AdaptiveReplans() int64 { return adaptiveReplansTotal.Load() }

// replanRatio is the divergence threshold for adaptive re-planning:
// a stage's observed selectivity must differ from its compile-time
// estimate by at least this factor (either direction) before the chain
// cursor revises its stage order.
const replanRatio = 4.0

// chainMeta is the adaptive-execution metadata of a commutable filter
// chain, attached to the chain's topmost operator. base is the
// operator below the chain (its cursor feeds the stages); members are
// the filter operators in the greedy evaluation order. Immutable after
// compile: the chain cursor copies the member order per execution.
type chainMeta struct {
	base    op
	members []op
}

// emptyOp replaces a branch whose result is provably empty at compile
// time (zero-cardinality fragment on the spine): it emits nothing and
// the wrapped operators never execute. Canon renders through it
// transparently — emptiness is a property of the document binding, not
// of the result the plan identifies.
type emptyOp struct {
	opBase
	inner  op
	reason string
}

func (o *emptyOp) kids() []op { return []op{o.inner} }

func (o *emptyOp) run(ec *execCtx) ([]int32, error) {
	ec.ops[o.id].record(0, 0)
	return nil, nil
}

func (o *emptyOp) open(ec *execCtx) (cursor, error) {
	ec.ops[o.id].record(0, 0)
	return &sliceCursor{}, nil
}

// orderPlan is the greedy ordering pass entry point, run by Compile
// for staircase strategies unless Options.NoReorder. Per union branch:
// reorder the commutable filter chains, then short-circuit the branch
// entirely when its spine holds a provably empty intermediate.
func (c *compiler) orderPlan() {
	p := c.p
	wrap := func(b op) op {
		b = c.reorderFrom(b)
		if reason := c.branchEmptyReason(b); reason != "" {
			e := &emptyOp{inner: b, reason: reason}
			c.add(e)
			p.orderNotes = append(p.orderNotes, "empty: "+reason+"; downstream operators skipped")
			reordersTotal.Add(1)
			return e
		}
		return b
	}
	if m, ok := p.root.(*mergeOp); ok {
		for i, b := range m.ins {
			m.ins[i] = wrap(b)
		}
	} else {
		p.root = wrap(p.root)
	}
}

// chainable reports whether an operator is a commutable filter — a
// member of a reorderable chain. Positional filters are excluded (they
// are order-sensitive by definition).
func chainable(o op) bool {
	switch o.(type) {
	case *predFilterOp, *semiJoinOp, *valueSemiJoinOp:
		return true
	}
	return false
}

// primaryIn returns a chain member's input operator.
func primaryIn(o op) op {
	switch t := o.(type) {
	case *predFilterOp:
		return t.in
	case *semiJoinOp:
		return t.in
	case *valueSemiJoinOp:
		return t.in
	}
	return nil
}

// setChainIn rewires a chain member's input operator.
func setChainIn(o, in op) {
	switch t := o.(type) {
	case *predFilterOp:
		t.in = in
	case *semiJoinOp:
		t.in = in
	case *valueSemiJoinOp:
		t.in = in
	}
}

// setChainEst re-stamps a chain member's cardinality estimates after
// reordering (In = upstream Out, Out = the compile convention's half).
func setChainEst(o op, est estimates) {
	switch t := o.(type) {
	case *predFilterOp:
		t.est = est
	case *semiJoinOp:
		t.est = est
	case *valueSemiJoinOp:
		t.est = est
	}
}

// chainLabel renders a chain member for ordering notes.
func chainLabel(o op) string {
	switch t := o.(type) {
	case *predFilterOp:
		return "[" + t.pred.String() + "]"
	case *semiJoinOp:
		return "[" + t.pred + "]"
	case *valueSemiJoinOp:
		return "[" + t.pred + "]"
	}
	return "?"
}

// chainRank ranks a chain member for the greedy sort. Class 0 holds
// filters with an exact fragment count (exists-semijoins whose
// fragment the index counted at compile, value semijoins whose
// fragment is resident), ordered by that count ascending — smallest
// certified fragment first. Class 1 holds unknown-count semijoins
// (NoIndex compilations: still a set-at-a-time sweep, cheaper than
// per-node work). Class 2 holds per-node predicate programs and
// fallback value semijoins. Ties keep source order (stable sort).
type chainRank struct {
	cls   int
	count int64
	src   int
}

func (c *compiler) rankMember(o op) chainRank {
	switch t := o.(type) {
	case *semiJoinOp:
		if t.frag.card >= 0 {
			return chainRank{cls: 0, count: t.frag.card, src: t.srcOrd}
		}
		return chainRank{cls: 1, src: t.srcOrd}
	case *valueSemiJoinOp:
		if list, ok := t.scan.resolveWith(c.env.Doc, c.opts); ok {
			return chainRank{cls: 0, count: int64(len(list)), src: t.srcOrd}
		}
		return chainRank{cls: 2, src: t.srcOrd}
	case *predFilterOp:
		return chainRank{cls: 2, src: t.srcOrd}
	}
	return chainRank{cls: 3}
}

func (r chainRank) less(o chainRank) bool {
	if r.cls != o.cls {
		return r.cls < o.cls
	}
	if r.cls == 0 && r.count != o.count {
		return r.count < o.count
	}
	return r.src < o.src
}

// reorderFrom reorders every commutable filter chain in the subtree
// rooted at o, returning o's replacement (the new chain top when o
// itself headed a chain).
func (c *compiler) reorderFrom(o op) op {
	switch t := o.(type) {
	case *joinOp:
		t.in = c.reorderFrom(t.in)
		return o
	case *axisStepOp:
		t.in = c.reorderFrom(t.in)
		return o
	case *posFilterOp:
		t.in = c.reorderFrom(t.in)
		return o
	case *mergeOp:
		for i := range t.ins {
			t.ins[i] = c.reorderFrom(t.ins[i])
		}
		return o
	}
	if !chainable(o) {
		return o
	}
	// o heads a maximal filter chain (its consumer is not chainable).
	var members []op // top-down
	cur := o
	for chainable(cur) {
		members = append(members, cur)
		cur = primaryIn(cur)
	}
	base := c.reorderFrom(cur)
	// Reverse into evaluation order (bottom-up).
	for i, j := 0, len(members)-1; i < j; i, j = i+1, j-1 {
		members[i], members[j] = members[j], members[i]
	}
	return c.orderChain(base, members)
}

// orderChain greedily sorts one chain's members, rewires the operator
// links, re-stamps estimates, and attaches the adaptive chain
// metadata. members arrive in (source) evaluation order; the returned
// op is the new chain top.
func (c *compiler) orderChain(base op, members []op) op {
	ranks := make(map[op]chainRank, len(members))
	for _, m := range members {
		ranks[m] = c.rankMember(m)
	}
	sorted := append([]op(nil), members...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return ranks[sorted[i]].less(ranks[sorted[j]])
	})

	changed := false
	for i := range sorted {
		if sorted[i] != members[i] {
			changed = true
			break
		}
	}
	if changed {
		reordersTotal.Add(1)
		var labels []string
		for _, m := range sorted {
			labels = append(labels, chainLabel(m))
		}
		var src []string
		for _, m := range members {
			src = append(src, chainLabel(m))
		}
		c.p.orderNotes = append(c.p.orderNotes, fmt.Sprintf(
			"step %d: greedy filter order %v (source order %v)",
			chainOrd(members[0]), labels, src))
		if c.p.opOrder == nil {
			c.p.opOrder = make(map[int]string)
		}
		for i, m := range sorted {
			if m == members[i] {
				continue
			}
			r := ranks[m]
			note := fmt.Sprintf("eval position %d/%d (source position %d)", i+1, len(sorted), r.src+1)
			if r.cls == 0 {
				note += fmt.Sprintf(", fragment=%d", r.count)
			}
			c.p.opOrder[m.opID()] = note
		}
	}

	// Rewire and re-stamp estimates along the new order.
	in := base
	estIn := opEstimate(base)
	for _, m := range sorted {
		setChainIn(m, in)
		setChainEst(m, estimates{In: estIn, Out: maxInt64(estIn/2, 1)})
		estIn = maxInt64(estIn/2, 1)
		in = m
	}
	top := sorted[len(sorted)-1]
	if len(sorted) >= 2 {
		setChainMeta(top, &chainMeta{base: base, members: sorted})
	}
	return top
}

// setChainMeta attaches the adaptive-execution metadata to the chain's
// topmost member.
func setChainMeta(o op, m *chainMeta) {
	switch t := o.(type) {
	case *predFilterOp:
		t.chain = m
	case *semiJoinOp:
		t.chain = m
	case *valueSemiJoinOp:
		t.chain = m
	}
}

// chainOrd returns the step ordinal a chain member belongs to.
func chainOrd(o op) int {
	switch t := o.(type) {
	case *predFilterOp:
		return t.meta.ord
	case *semiJoinOp:
		return t.meta.ord
	case *valueSemiJoinOp:
		return t.meta.ord
	}
	return 0
}

// branchEmptyReason walks a branch's spine looking for a provably
// empty intermediate — an exact zero-cardinality fragment that forces
// every operator above it to emit nothing — and returns a description,
// or "" when the branch cannot be short-circuited. Soundness: every
// non-first-step operator's output is a function of its input that
// maps an empty sequence to an empty sequence, and first-step
// (document-node) operators sit below everything else on the spine, so
// emptiness anywhere on the spine forces an empty branch result.
// Attribute-axis steps are never judged by element fragments (the tag
// index counts elements only).
func (c *compiler) branchEmptyReason(o op) string {
	for o != nil {
		switch t := o.(type) {
		case *joinOp:
			// Partitioning-axis output passes the node test; an exact
			// zero-cardinality fragment means no document node does.
			if t.frag != nil && t.frag.card == 0 {
				return fmt.Sprintf("step %d (%s) matches no document node", t.meta.ord, t.meta.display)
			}
			o = t.in
		case *axisStepOp:
			if t.a != axis.Attribute && c.fragCard(t.test) == 0 {
				return fmt.Sprintf("step %d (%s) matches no document node", t.meta.ord, t.meta.display)
			}
			o = t.in
		case *posFilterOp:
			if t.step.Axis != axis.Attribute && c.fragCard(t.step.Test) == 0 {
				return fmt.Sprintf("step %d (%s) matches no document node", t.meta.ord, t.meta.display)
			}
			o = t.in
		case *semiJoinOp:
			if t.frag.card == 0 {
				return fmt.Sprintf("step %d predicate %s has an empty fragment", t.meta.ord, chainLabel(t))
			}
			o = t.in
		case *valueSemiJoinOp:
			if list, ok := t.scan.resolveWith(c.env.Doc, c.opts); ok && len(list) == 0 {
				return fmt.Sprintf("step %d predicate %s has an empty value fragment", t.meta.ord, chainLabel(t))
			}
			o = t.in
		case *predFilterOp:
			o = t.in
		default:
			return ""
		}
	}
	return ""
}
