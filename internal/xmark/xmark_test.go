package xmark

import (
	"bytes"
	"testing"

	"staircase/internal/doc"
	"staircase/internal/engine"
)

func genDoc(t testing.TB, mb float64) *doc.Document {
	t.Helper()
	d, err := Generate(Config{SizeMB: mb, Seed: 1, KeepValues: true})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateValidEncoding(t *testing.T) {
	d := genDoc(t, 0.2)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Size() < 1000 {
		t.Fatalf("document suspiciously small: %d nodes", d.Size())
	}
}

func TestHeightIsEleven(t *testing.T) {
	// The paper: "All documents were of height 11."
	for _, mb := range []float64{0.05, 0.2, 1.0} {
		d := genDoc(t, mb)
		if d.Height() != 11 {
			t.Errorf("height(%g MB) = %d, want 11", mb, d.Height())
		}
	}
}

func TestDeterminism(t *testing.T) {
	d1 := genDoc(t, 0.1)
	d2 := genDoc(t, 0.1)
	if d1.Size() != d2.Size() {
		t.Fatalf("sizes differ: %d vs %d", d1.Size(), d2.Size())
	}
	for v := int32(0); int(v) < d1.Size(); v++ {
		if d1.Post(v) != d2.Post(v) || d1.Name(v) != d2.Name(v) {
			t.Fatalf("node %d differs", v)
		}
	}
	d3, err := Generate(Config{SizeMB: 0.1, Seed: 2, KeepValues: true})
	if err != nil {
		t.Fatal(err)
	}
	if d3.Size() == d1.Size() {
		// Different seeds should (overwhelmingly) give different sizes;
		// identical sizes with identical content would mean the seed is
		// ignored.
		same := true
		for v := int32(0); int(v) < d1.Size(); v++ {
			if d1.Post(v) != d3.Post(v) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seed is ignored")
		}
	}
}

func TestStructuralStatistics(t *testing.T) {
	// The selectivities behind Table 1 (within generous tolerance).
	d := genDoc(t, 1.0)
	e := engine.New(d)
	count := func(q string) int {
		r, err := e.EvalString(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		return len(r.Nodes)
	}
	people := count("/site/people/person")
	profiles := count("//profile")
	educations := count("//education")
	increases := count("//increase")
	bidders := count("//bidder")
	auctions := count("//open_auction")

	if people < 200 || people > 300 {
		t.Errorf("people = %d, want ≈255", people)
	}
	// ≈ half the people carry a profile.
	if r := float64(profiles) / float64(people); r < 0.35 || r > 0.65 {
		t.Errorf("profile ratio = %.2f, want ≈0.5", r)
	}
	// ≈ half the profiles carry an education.
	if r := float64(educations) / float64(profiles); r < 0.35 || r > 0.65 {
		t.Errorf("education ratio = %.2f, want ≈0.5", r)
	}
	// Every increase has a bidder parent; exactly one increase per bidder.
	if increases != bidders {
		t.Errorf("increases = %d, bidders = %d, want equal", increases, bidders)
	}
	// ≈ 5 bidders per auction on average.
	if r := float64(bidders) / float64(auctions); r < 3.5 || r > 6.5 {
		t.Errorf("bidders/auction = %.2f, want ≈5", r)
	}
}

func TestIncreaseLevelIsFour(t *testing.T) {
	// Q2's context nodes: "the context sequence contains increase
	// nodes, which all appear on a path of length 4 up to the root,
	// i.e., for all context nodes c, level(c) = 4."
	d := genDoc(t, 0.3)
	e := engine.New(d)
	r, err := e.EvalString("//increase", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Nodes) == 0 {
		t.Fatal("no increase nodes generated")
	}
	for _, v := range r.Nodes {
		if d.Level(v) != 4 {
			t.Fatalf("level(increase %d) = %d, want 4", v, d.Level(v))
		}
		if d.Name(d.Parent(v)) != "bidder" {
			t.Fatalf("parent of increase is %q", d.Name(d.Parent(v)))
		}
	}
}

func TestSizeScalesLinearly(t *testing.T) {
	small := genDoc(t, 0.2)
	big := genDoc(t, 0.8)
	ratio := float64(big.Size()) / float64(small.Size())
	if ratio < 3.0 || ratio > 5.5 {
		t.Fatalf("4x config gave %.1fx nodes", ratio)
	}
}

func TestSerializedSizeRoughlyMatchesConfig(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Config{SizeMB: 0.5, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	mb := float64(buf.Len()) / (1 << 20)
	if mb < 0.15 || mb > 1.5 {
		t.Fatalf("requested 0.5 MB, wrote %.2f MB", mb)
	}
}

func TestWriteShredRoundTrip(t *testing.T) {
	cfg := Config{SizeMB: 0.05, Seed: 7, KeepValues: true}
	direct, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	shredded, err := doc.Shred(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Size() != shredded.Size() {
		t.Fatalf("direct %d nodes vs shredded %d nodes", direct.Size(), shredded.Size())
	}
	for v := int32(0); int(v) < direct.Size(); v++ {
		if direct.Post(v) != shredded.Post(v) ||
			direct.KindOf(v) != shredded.KindOf(v) ||
			direct.Name(v) != shredded.Name(v) {
			t.Fatalf("node %d differs: (%d,%v,%q) vs (%d,%v,%q)", v,
				direct.Post(v), direct.KindOf(v), direct.Name(v),
				shredded.Post(v), shredded.KindOf(v), shredded.Name(v))
		}
	}
	if direct.Height() != shredded.Height() {
		t.Fatalf("height %d vs %d", direct.Height(), shredded.Height())
	}
}

func TestWithoutValues(t *testing.T) {
	d, err := Generate(Config{SizeMB: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.HasValues() {
		t.Fatal("values should be dropped by default")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTinyConfigStillValid(t *testing.T) {
	d, err := Generate(Config{SizeMB: 0, Seed: 0, KeepValues: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}
