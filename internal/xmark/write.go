package xmark

import (
	"bufio"
	"encoding/xml"
	"io"
)

// xmlSink serializes generation events as XML text.
type xmlSink struct {
	w       *bufio.Writer
	openTag bool // start tag not yet closed with '>'
	stack   []string
	err     error
}

func (s *xmlSink) finishOpen() {
	if s.openTag {
		s.errIf(s.w.WriteByte('>'))
		s.openTag = false
	}
}

func (s *xmlSink) errIf(err error) {
	if s.err == nil && err != nil {
		s.err = err
	}
}

func (s *xmlSink) Open(tag string) {
	s.finishOpen()
	s.errIf(s.w.WriteByte('<'))
	_, err := s.w.WriteString(tag)
	s.errIf(err)
	s.openTag = true
	s.stack = append(s.stack, tag)
}

func (s *xmlSink) Attr(name, val string) {
	_, err := s.w.WriteString(" " + name + "=\"")
	s.errIf(err)
	s.errIf(xml.EscapeText(s.w, []byte(val)))
	s.errIf(s.w.WriteByte('"'))
}

func (s *xmlSink) Text(t string) {
	s.finishOpen()
	s.errIf(xml.EscapeText(s.w, []byte(t)))
}

func (s *xmlSink) Close() {
	tag := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	if s.openTag {
		_, err := s.w.WriteString("/>")
		s.errIf(err)
		s.openTag = false
		return
	}
	_, err := s.w.WriteString("</" + tag + ">")
	s.errIf(err)
}

// Write serializes a generated document as XML text to w. The byte
// stream is deterministic for a given Config and shreds back to exactly
// the document Generate builds (round-trip tested).
func Write(w io.Writer, cfg Config) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	s := &xmlSink{w: bw}
	g := newGen(cfg)
	g.document(s)
	if s.err != nil {
		return s.err
	}
	return bw.Flush()
}
