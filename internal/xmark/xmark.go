// Package xmark generates synthetic auction documents in the spirit of
// the XMark benchmark's XMLgen (Schmidt et al., VLDB 2002), which the
// staircase join paper uses for its entire evaluation ("To ensure the
// test runs to be reproducible, we used ... the XML generator XMLgen").
//
// The generator reproduces the structural statistics the paper's
// queries depend on (see DESIGN.md §5 Substitutions):
//
//   - site/open_auctions/open_auction/bidder/increase: every increase
//     sits at level 4 and has a bidder parent; auctions carry several
//     bidders whose ancestor paths share the level-3 prefix — the source
//     of the ≈75 % duplicate ratio in Experiment 1.
//   - site/people/person/profile/education: roughly half the persons
//     carry a profile, roughly half the profiles an education — the
//     selectivities behind Q1's intermediate result sizes (Table 1).
//   - Documents have height 11 (the paper: "All documents were of
//     height 11") via nested item descriptions; content size scales
//     linearly with the requested size like XMLgen's scaling factor.
//
// Generation is fully deterministic for a given Config (seeded
// math/rand, no global state), and can either build the pre/post
// encoded document directly (fast path for experiments) or serialize
// XML text (for the xmlgen CLI and shredder round-trip tests).
package xmark

import (
	"fmt"
	"math/rand"

	"staircase/internal/doc"
)

// Config controls document generation.
type Config struct {
	// SizeMB is the approximate serialized document size in megabytes;
	// it plays the role of XMark's scaling factor (the paper's sweep is
	// 1 MB – 1 GB). Entity counts scale linearly in SizeMB.
	SizeMB float64
	// Seed makes generation reproducible; equal configs generate
	// identical documents.
	Seed int64
	// KeepValues retains text/attribute content in the encoded
	// document. Disable for large benchmark documents (structure is
	// unaffected; serialization then emits empty content).
	KeepValues bool
}

// Entity counts per megabyte, following XMark's proportions
// (at scale factor 1.0 ≈ 100 MB: 25 500 people, 12 000 open auctions,
// 9 750 closed auctions, 21 750 items, 1 000 categories).
const (
	peoplePerMB     = 255
	auctionsPerMB   = 120
	closedPerMB     = 97
	itemsPerMB      = 217
	categoriesPerMB = 10
)

// sink receives generation events. Two implementations: the document
// builder (direct encoding) and the XML text writer.
type sink interface {
	Open(tag string)
	Attr(name, val string)
	Text(s string)
	Close()
}

// builderSink adapts doc.Builder to the sink interface.
type builderSink struct{ b *doc.Builder }

func (s builderSink) Open(tag string)       { s.b.OpenElem(tag) }
func (s builderSink) Attr(name, val string) { s.b.Attr(name, val) }
func (s builderSink) Text(t string)         { s.b.Text(t) }
func (s builderSink) Close()                { s.b.CloseElem() }

// Generate builds the pre/post encoded document directly, without
// materialising XML text — the fast path for experiments.
func Generate(cfg Config) (*doc.Document, error) {
	var opts []doc.BuilderOption
	if !cfg.KeepValues {
		opts = append(opts, doc.WithoutValues())
	}
	b := doc.NewBuilder(opts...)
	g := newGen(cfg)
	g.document(builderSink{b})
	if err := b.Err(); err != nil {
		return nil, err
	}
	return b.Done()
}

// gen holds generation state.
type gen struct {
	rng *rand.Rand
	cfg Config

	people   int
	auctions int
	closed   int
	items    int
	cats     int

	// force pins the current description to the deepest shape (used
	// once per document to guarantee height 11).
	force bool
}

func newGen(cfg Config) *gen {
	if cfg.SizeMB <= 0 {
		cfg.SizeMB = 0.1
	}
	g := &gen{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
	g.people = max(3, int(cfg.SizeMB*peoplePerMB))
	g.auctions = max(2, int(cfg.SizeMB*auctionsPerMB))
	g.closed = max(1, int(cfg.SizeMB*closedPerMB))
	g.items = max(2, int(cfg.SizeMB*itemsPerMB))
	g.cats = max(1, int(cfg.SizeMB*categoriesPerMB))
	return g
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// vocabulary is the word pool for text content (XMLgen draws from
// Shakespeare; any fixed pool gives the same structural behaviour).
var vocabulary = []string{
	"against", "ambitious", "answer", "bear", "brutus", "caesar", "cause",
	"censure", "country", "crown", "dead", "death", "did", "fault", "fortune",
	"friend", "glory", "grievous", "hath", "hear", "honour", "judge", "kill",
	"love", "lovers", "man", "men", "noble", "offence", "reply", "rome",
	"slew", "speak", "spoke", "tears", "valiant", "weep", "wisdom", "wrong",
}

// words emits n space-separated vocabulary words.
func (g *gen) words(n int) string {
	out := make([]byte, 0, n*8)
	for i := 0; i < n; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, vocabulary[g.rng.Intn(len(vocabulary))]...)
	}
	return string(out)
}

func (g *gen) chance(p float64) bool { return g.rng.Float64() < p }

// document emits the whole site document.
func (g *gen) document(s sink) {
	s.Open("site")
	g.regions(s)
	g.categories(s)
	g.peopleSection(s)
	g.openAuctions(s)
	g.closedAuctions(s)
	s.Close()
}

// regions splits the items over the six XMark continents.
func (g *gen) regions(s sink) {
	s.Open("regions")
	regions := []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}
	per := g.items / len(regions)
	extra := g.items % len(regions)
	itemID := 0
	for i, r := range regions {
		n := per
		if i < extra {
			n++
		}
		s.Open(r)
		for j := 0; j < n; j++ {
			g.item(s, itemID)
			itemID++
		}
		s.Close()
	}
	s.Close()
}

// item emits one item with a (sometimes deeply nested) description; the
// deep nesting realises document height 11, matching the paper's
// documents.
func (g *gen) item(s sink, id int) {
	s.Open("item")
	s.Attr("id", fmt.Sprintf("item%d", id))
	if g.chance(0.1) {
		s.Attr("featured", "yes")
	}
	g.leaf(s, "location", g.words(1))
	g.leaf(s, "quantity", fmt.Sprintf("%d", 1+g.rng.Intn(5)))
	g.leaf(s, "name", g.words(2))
	g.leaf(s, "payment", g.words(3))
	// The very first item always carries the maximally nested
	// description, pinning the document height to 11 (as in the
	// paper's XMark instances) independent of random choices.
	g.force = id == 0
	g.description(s, true)
	g.force = false
	g.leaf(s, "shipping", g.words(3))
	for k := 0; k < 1+g.rng.Intn(3); k++ {
		s.Open("incategory")
		s.Attr("category", fmt.Sprintf("category%d", g.rng.Intn(g.cats)))
		s.Close()
	}
	if g.chance(0.3) {
		s.Open("mailbox")
		for m := 0; m < 1+g.rng.Intn(2); m++ {
			s.Open("mail")
			g.leaf(s, "from", g.words(2))
			g.leaf(s, "to", g.words(2))
			g.leaf(s, "date", g.date())
			g.leaf(s, "text", g.words(8))
			s.Close()
		}
		s.Close()
	}
	s.Close()
}

// description emits description > (text | parlist); with deep=true the
// parlist recursion bottoms out at document level 11.
func (g *gen) description(s sink, deep bool) {
	s.Open("description")
	if deep && (g.force || g.chance(0.35)) {
		g.parlist(s, 2) // two nested parlist levels
	} else {
		g.textElem(s)
	}
	s.Close()
}

// parlist emits parlist > listitem (> parlist ...) nesting.
func (g *gen) parlist(s sink, levels int) {
	s.Open("parlist")
	n := 1 + g.rng.Intn(2)
	if g.force {
		n = 1
	}
	for i := 0; i < n; i++ {
		s.Open("listitem")
		if levels > 1 {
			g.parlist(s, levels-1)
		} else {
			g.textElem(s)
		}
		s.Close()
	}
	s.Close()
}

// textElem emits a text element, occasionally with an inline keyword —
// the deepest node of the document.
func (g *gen) textElem(s sink) {
	s.Open("text")
	s.Text(g.words(4 + g.rng.Intn(8)))
	if g.force || g.chance(0.3) {
		s.Open("keyword")
		s.Text(g.words(1))
		s.Close()
	}
	s.Close()
}

// leaf emits <tag>text</tag>.
func (g *gen) leaf(s sink, tag, text string) {
	s.Open(tag)
	s.Text(text)
	s.Close()
}

func (g *gen) date() string {
	return fmt.Sprintf("%02d/%02d/%d", 1+g.rng.Intn(12), 1+g.rng.Intn(28), 1998+g.rng.Intn(4))
}

// categories emits the category catalogue.
func (g *gen) categories(s sink) {
	s.Open("categories")
	for i := 0; i < g.cats; i++ {
		s.Open("category")
		s.Attr("id", fmt.Sprintf("category%d", i))
		g.leaf(s, "name", g.words(1))
		g.description(s, false)
		s.Close()
	}
	s.Close()
}

// peopleSection emits the persons; the profile/education probabilities
// reproduce Q1's selectivities (Table 1: ≈ half the people carry a
// profile, ≈ half the profiles an education).
func (g *gen) peopleSection(s sink) {
	s.Open("people")
	for i := 0; i < g.people; i++ {
		s.Open("person")
		s.Attr("id", fmt.Sprintf("person%d", i))
		g.leaf(s, "name", g.words(2))
		g.leaf(s, "emailaddress", "mailto:"+g.words(1)+"@example.com")
		if g.chance(0.5) {
			g.leaf(s, "phone", fmt.Sprintf("+%d (%d) %d", 1+g.rng.Intn(99), g.rng.Intn(1000), g.rng.Intn(10000000)))
		}
		if g.chance(0.4) {
			s.Open("address")
			g.leaf(s, "street", g.words(2))
			g.leaf(s, "city", g.words(1))
			g.leaf(s, "country", g.words(1))
			g.leaf(s, "zipcode", fmt.Sprintf("%d", g.rng.Intn(100000)))
			s.Close()
		}
		if g.chance(0.5) {
			s.Open("profile")
			s.Attr("income", fmt.Sprintf("%d.%02d", 9000+g.rng.Intn(90000), g.rng.Intn(100)))
			for k := 0; k < g.rng.Intn(3); k++ {
				s.Open("interest")
				s.Attr("category", fmt.Sprintf("category%d", g.rng.Intn(g.cats)))
				s.Close()
			}
			if g.chance(0.5) {
				g.leaf(s, "education", []string{"High School", "College", "Graduate School", "Other"}[g.rng.Intn(4)])
			}
			if g.chance(0.8) {
				g.leaf(s, "gender", []string{"male", "female"}[g.rng.Intn(2)])
			}
			g.leaf(s, "business", []string{"Yes", "No"}[g.rng.Intn(2)])
			if g.chance(0.6) {
				g.leaf(s, "age", fmt.Sprintf("%d", 18+g.rng.Intn(60)))
			}
			s.Close()
		}
		if g.chance(0.3) {
			s.Open("watches")
			for k := 0; k < 1+g.rng.Intn(3); k++ {
				s.Open("watch")
				s.Attr("open_auction", fmt.Sprintf("open_auction%d", g.rng.Intn(g.auctions)))
				s.Close()
			}
			s.Close()
		}
		s.Close()
	}
	s.Close()
}

// openAuctions emits the open auctions; bidder counts average 5
// (uniform 0..10), reproducing Q2's increase density and the shared
// ancestor paths of sibling bidders.
func (g *gen) openAuctions(s sink) {
	s.Open("open_auctions")
	for i := 0; i < g.auctions; i++ {
		s.Open("open_auction")
		s.Attr("id", fmt.Sprintf("open_auction%d", i))
		g.leaf(s, "initial", g.money())
		if g.chance(0.4) {
			g.leaf(s, "reserve", g.money())
		}
		for b := g.rng.Intn(11); b > 0; b-- {
			s.Open("bidder")
			g.leaf(s, "date", g.date())
			g.leaf(s, "time", fmt.Sprintf("%02d:%02d:%02d", g.rng.Intn(24), g.rng.Intn(60), g.rng.Intn(60)))
			s.Open("personref")
			s.Attr("person", fmt.Sprintf("person%d", g.rng.Intn(g.people)))
			s.Close()
			g.leaf(s, "increase", g.money())
			s.Close()
		}
		g.leaf(s, "current", g.money())
		s.Open("itemref")
		s.Attr("item", fmt.Sprintf("item%d", g.rng.Intn(g.items)))
		s.Close()
		s.Open("seller")
		s.Attr("person", fmt.Sprintf("person%d", g.rng.Intn(g.people)))
		s.Close()
		g.annotation(s)
		g.leaf(s, "quantity", fmt.Sprintf("%d", 1+g.rng.Intn(3)))
		g.leaf(s, "type", []string{"Regular", "Featured", "Dutch"}[g.rng.Intn(3)])
		s.Open("interval")
		g.leaf(s, "start", g.date())
		g.leaf(s, "end", g.date())
		s.Close()
		s.Close()
	}
	s.Close()
}

// closedAuctions emits the closed auctions.
func (g *gen) closedAuctions(s sink) {
	s.Open("closed_auctions")
	for i := 0; i < g.closed; i++ {
		s.Open("closed_auction")
		s.Open("seller")
		s.Attr("person", fmt.Sprintf("person%d", g.rng.Intn(g.people)))
		s.Close()
		s.Open("buyer")
		s.Attr("person", fmt.Sprintf("person%d", g.rng.Intn(g.people)))
		s.Close()
		s.Open("itemref")
		s.Attr("item", fmt.Sprintf("item%d", g.rng.Intn(g.items)))
		s.Close()
		g.leaf(s, "price", g.money())
		g.leaf(s, "date", g.date())
		g.leaf(s, "quantity", fmt.Sprintf("%d", 1+g.rng.Intn(3)))
		g.leaf(s, "type", []string{"Regular", "Featured"}[g.rng.Intn(2)])
		g.annotation(s)
		s.Close()
	}
	s.Close()
}

// annotation emits the annotation block shared by auctions.
func (g *gen) annotation(s sink) {
	s.Open("annotation")
	s.Open("author")
	s.Attr("person", fmt.Sprintf("person%d", g.rng.Intn(g.people)))
	s.Close()
	g.description(s, false)
	g.leaf(s, "happiness", fmt.Sprintf("%d", 1+g.rng.Intn(10)))
	s.Close()
}

func (g *gen) money() string {
	return fmt.Sprintf("%d.%02d", 1+g.rng.Intn(500), g.rng.Intn(100))
}
