package catalog

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"staircase/internal/doc"
	"staircase/internal/xmark"
)

const testXML = `<site><people>` +
	`<person id="p0"><profile><education>High School</education></profile></person>` +
	`<person id="p1"><profile><education>College</education></profile></person>` +
	`<person id="p2"><profile/></person>` +
	`</people></site>`

func writeXML(t *testing.T, name string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(testXML), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeBinary(t *testing.T, name string) string {
	t.Helper()
	d, err := doc.Shred(strings.NewReader(testXML))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := d.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLazyLoadAndQuery(t *testing.T) {
	c := New(0)
	if err := c.Register("people", writeXML(t, "p.xml"), FormatAuto); err != nil {
		t.Fatal(err)
	}
	info := c.Info()
	if len(info) != 1 || info[0].Resident || info[0].Loads != 0 {
		t.Fatalf("expected unloaded entry, got %+v", info)
	}
	h, err := c.Open("people")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	r, err := h.Engine().EvalString("/descendant::education", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Nodes) != 2 {
		t.Fatalf("got %d education nodes, want 2", len(r.Nodes))
	}
	info = c.Info()
	if !info[0].Resident || info[0].Loads != 1 || info[0].Format != "xml" || info[0].Generation != 1 {
		t.Fatalf("after load: %+v", info[0])
	}
	if info[0].Nodes != h.Document().Size() {
		t.Fatalf("info nodes %d != doc size %d", info[0].Nodes, h.Document().Size())
	}
}

func TestBinarySniffMatchesXML(t *testing.T) {
	c := New(0)
	if err := c.Register("xml", writeXML(t, "p.xml"), FormatAuto); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("bin", writeBinary(t, "p.scj"), FormatAuto); err != nil {
		t.Fatal(err)
	}
	hx, err := c.Open("xml")
	if err != nil {
		t.Fatal(err)
	}
	defer hx.Close()
	hb, err := c.Open("bin")
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	for _, e := range c.Info() {
		want := map[string]string{"xml": "xml", "bin": "binary"}[e.Name]
		if e.Format != want {
			t.Fatalf("doc %s: sniffed format %s, want %s", e.Name, e.Format, want)
		}
	}
	for _, q := range []string{"/descendant::person", "//person[profile/education]", "/descendant::education/ancestor::person"} {
		rx, err := hx.Engine().EvalString(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := hb.Engine().EvalString(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rx.Nodes) != len(rb.Nodes) {
			t.Fatalf("%s: xml %d nodes, binary %d", q, len(rx.Nodes), len(rb.Nodes))
		}
		for i := range rx.Nodes {
			if rx.Nodes[i] != rb.Nodes[i] {
				t.Fatalf("%s: node %d differs", q, i)
			}
		}
	}
}

func TestEvictionAndGeneration(t *testing.T) {
	c := New(1) // 1-byte budget: nothing stays resident once released
	if err := c.Register("a", writeXML(t, "a.xml"), FormatAuto); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("b", writeXML(t, "b.xml"), FormatAuto); err != nil {
		t.Fatal(err)
	}

	ha, err := c.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	// While referenced, a must survive even over budget.
	if hb, err := c.Open("b"); err != nil {
		t.Fatal(err)
	} else {
		hb.Close()
	}
	byName := func(name string) DocInfo {
		for _, e := range c.Info() {
			if e.Name == name {
				return e
			}
		}
		t.Fatalf("no entry %s", name)
		return DocInfo{}
	}
	if !byName("a").Resident {
		t.Fatal("entry a evicted while referenced")
	}
	if byName("b").Resident {
		t.Fatal("entry b not evicted after release over budget")
	}
	gen := ha.Generation()
	ha.Close()
	if byName("a").Resident {
		t.Fatal("entry a not evicted after release over budget")
	}
	ha2, err := c.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	defer ha2.Close()
	if ha2.Generation() != gen+1 {
		t.Fatalf("reload generation %d, want %d", ha2.Generation(), gen+1)
	}
	if e := byName("a"); e.Loads != 2 || e.Evictions != 1 {
		t.Fatalf("entry a stats: %+v", e)
	}
}

func TestAddDocumentPinned(t *testing.T) {
	c := New(1)
	d, err := xmark.Generate(xmark.Config{SizeMB: 0.05, Seed: 7, KeepValues: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddDocument("gen", d); err != nil {
		t.Fatal(err)
	}
	h, err := c.Open("gen")
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	if info := c.Info(); !info[0].Resident || !info[0].Pinned {
		t.Fatalf("pinned doc evicted: %+v", info[0])
	}
}

func TestErrors(t *testing.T) {
	c := New(0)
	if _, err := c.Open("missing"); err == nil {
		t.Fatal("Open of unknown doc succeeded")
	}
	if err := c.Register("", "x", FormatAuto); err == nil {
		t.Fatal("Register with empty name succeeded")
	}
	if err := c.Register("dup", writeXML(t, "d.xml"), FormatAuto); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("dup", "other", FormatAuto); err == nil {
		t.Fatal("duplicate Register succeeded")
	}
	if err := c.Register("bad", filepath.Join(t.TempDir(), "absent.xml"), FormatAuto); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open("bad"); err == nil {
		t.Fatal("Open of absent file succeeded")
	}
	// A failed load must not leak a reference: the entry stays evictable.
	for _, e := range c.Info() {
		if e.Name == "bad" && (e.Resident || e.Loads != 0) {
			t.Fatalf("failed load left state: %+v", e)
		}
	}
}

func TestConcurrentOpenLoadsOnce(t *testing.T) {
	c := New(0)
	if err := c.Register("p", writeXML(t, "p.xml"), FormatAuto); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := c.Open("p")
			if err != nil {
				t.Error(err)
				return
			}
			defer h.Close()
			r, err := h.Engine().EvalString("/descendant::person", nil)
			if err != nil {
				t.Error(err)
				return
			}
			if len(r.Nodes) != 3 {
				t.Errorf("got %d persons, want 3", len(r.Nodes))
			}
		}()
	}
	wg.Wait()
	if info := c.Info(); info[0].Loads != 1 {
		t.Fatalf("loaded %d times, want 1", info[0].Loads)
	}
}

func TestIndexResidencyAccounting(t *testing.T) {
	// Index bytes count against the budget and show up in stats, for
	// XML sources (index built at load) and SCJ2 sources (index
	// deserialized from the file) alike.
	for _, src := range []struct {
		name string
		path func(t *testing.T) string
	}{
		{"xml", func(t *testing.T) string { return writeXML(t, "d.xml") }},
		{"scj2", func(t *testing.T) string { return writeBinary(t, "d.scj") }},
	} {
		t.Run(src.name, func(t *testing.T) {
			c := New(0)
			if err := c.Register("d", src.path(t), FormatAuto); err != nil {
				t.Fatal(err)
			}
			h, err := c.Open("d")
			if err != nil {
				t.Fatal(err)
			}
			defer h.Close()
			d := h.Document()
			if !d.IndexBuilt() {
				t.Fatal("index not resident after load")
			}
			wantIdx := d.IndexBytes()
			if wantIdx <= 0 {
				t.Fatal("IndexBytes = 0 for a resident index")
			}
			if got := c.IndexBytes(); got != wantIdx {
				t.Fatalf("catalog IndexBytes = %d, want %d", got, wantIdx)
			}
			if !d.ValueIndexBuilt() {
				t.Fatal("value index not resident after load")
			}
			wantVIdx := d.ValueIndexBytes()
			if wantVIdx <= 0 {
				t.Fatal("ValueIndexBytes = 0 for a resident value index")
			}
			if got := c.ValueIndexBytes(); got != wantVIdx {
				t.Fatalf("catalog ValueIndexBytes = %d, want %d", got, wantVIdx)
			}
			if got, want := c.ResidentBytes(), d.EncodedBytes()+wantIdx+wantVIdx; got != want {
				t.Fatalf("ResidentBytes = %d, want encoding+indexes = %d", got, want)
			}
			info := c.Info()
			if len(info) != 1 || info[0].IndexBytes != wantIdx || info[0].VIndexBytes != wantVIdx ||
				info[0].Bytes != d.EncodedBytes()+wantIdx+wantVIdx {
				t.Fatalf("info = %+v", info[0])
			}
		})
	}
}

func TestWithoutIndexSkipsBuild(t *testing.T) {
	c := New(0, WithoutIndex())
	if err := c.Register("d", writeXML(t, "d.xml"), FormatAuto); err != nil {
		t.Fatal(err)
	}
	h, err := c.Open("d")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.Document().IndexBuilt() {
		t.Fatal("WithoutIndex catalog built the index at load")
	}
	if c.IndexBytes() != 0 {
		t.Fatalf("IndexBytes = %d, want 0", c.IndexBytes())
	}
	if got, want := c.ResidentBytes(), h.Document().EncodedBytes()+h.Document().ValueIndexBytes(); got != want {
		t.Fatalf("ResidentBytes = %d, want %d", got, want)
	}
}

func TestWithoutValueIndexSkipsBuild(t *testing.T) {
	c := New(0, WithoutValueIndex())
	if err := c.Register("d", writeXML(t, "d.xml"), FormatAuto); err != nil {
		t.Fatal(err)
	}
	h, err := c.Open("d")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.Document().ValueIndexBuilt() {
		t.Fatal("WithoutValueIndex catalog built the value index at load")
	}
	if c.ValueIndexBytes() != 0 {
		t.Fatalf("ValueIndexBytes = %d, want 0", c.ValueIndexBytes())
	}
	if got, want := c.ResidentBytes(), h.Document().EncodedBytes()+h.Document().IndexBytes(); got != want {
		t.Fatalf("ResidentBytes = %d, want %d", got, want)
	}
}

func TestEvictionReclaimsIndexBytes(t *testing.T) {
	d, err := xmark.Generate(xmark.Config{SizeMB: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "d.scj")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// Budget below one resident document: the entry must be evicted as
	// soon as it is unreferenced, and index bytes must drop to zero.
	c := New(1, Option(func(c *Catalog) {})) // exercise variadic options path
	if err := c.Register("d", path, FormatAuto); err != nil {
		t.Fatal(err)
	}
	h, err := c.Open("d")
	if err != nil {
		t.Fatal(err)
	}
	if c.IndexBytes() == 0 {
		t.Fatal("no index bytes while resident")
	}
	h.Close()
	if got := c.ResidentBytes(); got != 0 {
		t.Fatalf("ResidentBytes = %d after eviction", got)
	}
	if got := c.IndexBytes(); got != 0 {
		t.Fatalf("IndexBytes = %d after eviction", got)
	}
}

func TestIndexBytesNeverExceedResidentBytes(t *testing.T) {
	// Pinned AddDocument entries sit outside the residency budget, so
	// the catalog-level index gauge must skip them too — the index
	// share can never exceed the resident total (their footprint still
	// shows per entry in Info).
	d, err := xmark.Generate(xmark.Config{SizeMB: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := New(0)
	if err := c.AddDocument("mem", d); err != nil {
		t.Fatal(err)
	}
	if got := c.IndexBytes(); got != 0 {
		t.Fatalf("IndexBytes = %d for a pinned-only catalog, want 0 (resident = %d)", got, c.ResidentBytes())
	}
	info := c.Info()
	if len(info) != 1 || info[0].IndexBytes <= 0 {
		t.Fatalf("pinned entry must still report its index footprint: %+v", info)
	}
	if err := c.Register("disk", writeXML(t, "d.xml"), FormatAuto); err != nil {
		t.Fatal(err)
	}
	h, err := c.Open("disk")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if c.IndexBytes() <= 0 || c.IndexBytes() > c.ResidentBytes() {
		t.Fatalf("IndexBytes %d out of range (ResidentBytes %d)", c.IndexBytes(), c.ResidentBytes())
	}
}
