// Package catalog manages a named collection of pre/post encoded
// documents for the query server — the system-catalog layer the paper
// assumes when it talks about the staircase join living *inside* a
// relational DBMS serving many queries.
//
// Each entry names a document source on disk (XML text, or the SCJ1/
// SCJ2 binary formats written by doc.WriteBinary; the format is
// sniffed from the file's magic bytes). Loading is lazy: the first
// Open shreds or deserializes the file, later Opens share the resident
// *doc.Document and its *engine.Engine. Documents are immutable after
// loading, so any number of concurrent readers can evaluate queries
// against one entry without locking — the catalog only synchronises
// lookup, load, and eviction.
//
// Unless disabled with WithoutIndex, every load finishes by ensuring
// the document's shared tag/kind index (doc.TagIndex) is resident —
// deserialized from the SCJ2 index section when present, built with
// one O(n) pass otherwise — so queries never pay a name-column rescan,
// no matter how many engines or reloads the entry sees. The value
// index (doc.ValueIndex, serving comparison and contains() predicates)
// is handled the same way for documents that carry values, unless
// disabled with WithoutValueIndex.
//
// Residency is bounded: when the encoded bytes of loaded documents
// (structural columns plus their tag/kind index) exceed the budget,
// least-recently-used entries with no open handles are evicted
// (dropped; a later Open reloads from the source). Every load bumps
// the entry's generation — result caches key on it so a reload from a
// changed file can never serve stale cached results.
package catalog

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"staircase/internal/doc"
	"staircase/internal/engine"
	"staircase/internal/fault"
)

// ErrUnknownDocument is wrapped by Open when the name is not
// registered, so callers can distinguish "no such document" from load
// failures with errors.Is.
var ErrUnknownDocument = errors.New("unknown document")

// Format identifies a document source encoding.
type Format uint8

const (
	// FormatAuto sniffs the format from the file's first bytes.
	FormatAuto Format = iota
	// FormatXML shreds XML text via doc.Shred.
	FormatXML
	// FormatBinary deserializes the SCJ1/SCJ2 encoding via
	// doc.ReadBinary (an SCJ2 file carries its tag/kind index section).
	FormatBinary
)

// String names the format.
func (f Format) String() string {
	switch f {
	case FormatAuto:
		return "auto"
	case FormatXML:
		return "xml"
	case FormatBinary:
		return "binary"
	default:
		return fmt.Sprintf("Format(%d)", uint8(f))
	}
}

// DocInfo is a point-in-time snapshot of one catalog entry, served by
// the server's GET /docs endpoint.
type DocInfo struct {
	Name        string        `json:"name"`
	Path        string        `json:"path,omitempty"`
	Format      string        `json:"format"`
	Resident    bool          `json:"resident"`
	Pinned      bool          `json:"pinned"`
	Generation  uint64        `json:"generation"`
	Bytes       int64         `json:"bytes,omitempty"`
	IndexBytes  int64         `json:"indexBytes,omitempty"`
	VIndexBytes int64         `json:"valueIndexBytes,omitempty"`
	Nodes       int           `json:"nodes,omitempty"`
	Height      int32         `json:"height,omitempty"`
	Loads       int64         `json:"loads"`
	Evictions   int64         `json:"evictions"`
	Queries     int64         `json:"queries"`
	EvalTime    time.Duration `json:"evalTimeNs"`
}

// entry is one named document. All mutable fields are guarded by the
// catalog mutex; loadMu only serialises the expensive load itself so a
// slow shred never blocks the whole catalog, and so two concurrent
// Opens of a cold entry load it once.
type entry struct {
	name   string
	pinned bool // added via AddDocument: no source to reload, never evicted

	loadMu sync.Mutex

	// Guarded by Catalog.mu.
	path      string
	format    Format
	d         *doc.Document
	eng       *engine.Engine
	gen       uint64 // bumped on every load
	bytes     int64  // resident footprint: encoding + indexes
	idxBytes  int64  // tag/kind index share of bytes
	vidxBytes int64  // value index share of bytes
	refs      int
	lastUse   int64
	loads     int64
	evictions int64
	queries   int64
	evalTime  int64 // ns, accumulated via Handle.RecordQuery
}

// Catalog is a set of named documents with lazy loading and bounded
// residency. Safe for concurrent use.
type Catalog struct {
	mu       sync.Mutex
	entries  map[string]*entry
	maxBytes int64 // residency budget; 0 = unbounded
	resident int64
	clock    int64
	noIndex  bool
	noVIndex bool
}

// Option configures a Catalog.
type Option func(*Catalog)

// WithoutIndex disables eager tag/kind index residency: loads skip the
// index build (engines fall back to per-query scans when asked to
// evaluate with engine.Options.NoIndex; a query that does use the
// index still builds it lazily). Ablation/operations knob — the
// xpathd -index=false flag.
func WithoutIndex() Option {
	return func(c *Catalog) { c.noIndex = true }
}

// WithoutValueIndex disables eager value-index residency: loads skip
// the build, so value predicates fall back to per-node evaluation
// unless a query builds the index lazily. Ablation/operations knob —
// the xpathd -value-index=false flag.
func WithoutValueIndex() Option {
	return func(c *Catalog) { c.noVIndex = true }
}

// New returns an empty catalog. maxBytes bounds the total resident
// bytes of loaded documents — structural encoding plus tag/kind index
// (0 = unbounded); entries beyond the budget are evicted
// least-recently-used once unreferenced.
func New(maxBytes int64, opts ...Option) *Catalog {
	c := &Catalog{entries: make(map[string]*entry), maxBytes: maxBytes}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Register adds a named document source without loading it. The format
// is sniffed on first load when FormatAuto.
func (c *Catalog) Register(name, path string, format Format) error {
	if name == "" {
		return fmt.Errorf("catalog: empty document name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[name]; ok {
		return fmt.Errorf("catalog: document %q already registered", name)
	}
	c.entries[name] = &entry{name: name, path: path, format: format}
	return nil
}

// AddDocument registers an already-loaded document under a name. Such
// entries have no on-disk source, so they are pinned: never evicted and
// not counted against the residency budget's reloadable set.
func (c *Catalog) AddDocument(name string, d *doc.Document) error {
	if name == "" {
		return fmt.Errorf("catalog: empty document name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[name]; ok {
		return fmt.Errorf("catalog: document %q already registered", name)
	}
	e := &entry{name: name, pinned: true, d: d, eng: engine.New(d), gen: 1, loads: 1, bytes: d.EncodedBytes()}
	if !c.noIndex {
		e.idxBytes = d.TagIndex().Bytes()
		e.bytes += e.idxBytes
	}
	if !c.noVIndex && d.HasValues() {
		d.ValueIndex()
		e.vidxBytes = d.ValueIndexBytes()
		e.bytes += e.vidxBytes
	}
	c.entries[name] = e
	return nil
}

// Handle is a reference to a resident document. The document stays
// resident (safe from eviction) until Close.
type Handle struct {
	c *Catalog
	e *entry

	d   *doc.Document
	eng *engine.Engine
	gen uint64

	once sync.Once
}

// Open returns a handle on the named document, loading it if necessary.
// Callers must Close the handle when done.
func (c *Catalog) Open(name string) (*Handle, error) {
	c.mu.Lock()
	e, ok := c.entries[name]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("catalog: %w %q", ErrUnknownDocument, name)
	}
	e.refs++ // pin against eviction before dropping the catalog lock
	c.clock++
	e.lastUse = c.clock
	c.mu.Unlock()

	e.loadMu.Lock()
	c.mu.Lock()
	if e.d == nil {
		path, format := e.path, e.format
		buildIndex := !c.noIndex
		buildVIndex := !c.noVIndex
		c.mu.Unlock()
		d, format, err := safeLoad(path, format, buildIndex, buildVIndex)
		c.mu.Lock()
		if err != nil {
			e.refs--
			c.mu.Unlock()
			e.loadMu.Unlock()
			return nil, fmt.Errorf("catalog: load %q: %w", name, err)
		}
		e.d = d
		e.eng = engine.New(d)
		e.format = format
		e.gen++
		e.loads++
		e.idxBytes = d.IndexBytes()
		e.vidxBytes = d.ValueIndexBytes()
		e.bytes = d.EncodedBytes() + e.idxBytes + e.vidxBytes
		c.resident += e.bytes
	}
	h := &Handle{c: c, e: e, d: e.d, eng: e.eng, gen: e.gen}
	c.mu.Unlock()
	e.loadMu.Unlock()
	c.evict()
	return h, nil
}

// Document returns the resident document.
func (h *Handle) Document() *doc.Document { return h.d }

// Engine returns the shared evaluation engine over the document (safe
// for concurrent use; pushdown fragments come from the document's
// shared tag/kind index, so engines carry no per-engine caches).
func (h *Handle) Engine() *engine.Engine { return h.eng }

// Name returns the catalog name of the document.
func (h *Handle) Name() string { return h.e.name }

// Generation returns the load generation of the resident document.
// Result-cache keys include it so a reload (after eviction, possibly
// from a changed file) invalidates earlier cached results.
func (h *Handle) Generation() uint64 { return h.gen }

// RecordQuery accounts one query evaluation against the document's
// statistics.
func (h *Handle) RecordQuery(d time.Duration) {
	h.c.mu.Lock()
	h.e.queries++
	h.e.evalTime += int64(d)
	h.c.mu.Unlock()
}

// Close releases the handle. The document stays resident until the
// eviction policy reclaims it.
func (h *Handle) Close() {
	h.once.Do(func() {
		h.c.mu.Lock()
		h.e.refs--
		h.c.mu.Unlock()
		h.c.evict()
	})
}

// evict drops least-recently-used unreferenced entries until resident
// bytes fit the budget. Pinned entries (no source to reload from) are
// never dropped.
func (c *Catalog) evict() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxBytes <= 0 {
		return
	}
	for c.resident > c.maxBytes {
		var victim *entry
		for _, e := range c.entries {
			if e.pinned || e.refs > 0 || e.d == nil {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return // everything left is pinned or in use
		}
		victim.d = nil
		victim.eng = nil
		victim.evictions++
		c.resident -= victim.bytes
		victim.bytes = 0
		victim.idxBytes = 0
		victim.vidxBytes = 0
	}
}

// Names returns the registered document names, sorted.
func (c *Catalog) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.entries))
	for n := range c.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ResidentBytes returns the resident bytes of currently loaded
// documents (structural encoding plus tag/kind index).
func (c *Catalog) ResidentBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resident
}

// IndexBytes returns the tag/kind index share of ResidentBytes. Like
// ResidentBytes it covers only budget-tracked (reloadable) entries —
// pinned AddDocument entries sit outside the budget and report their
// index footprint per entry via Info instead — so the share can never
// exceed the total.
func (c *Catalog) IndexBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for _, e := range c.entries {
		if !e.pinned {
			total += e.idxBytes
		}
	}
	return total
}

// ValueIndexBytes returns the value-index share of ResidentBytes, with
// the same budget-tracked scope as IndexBytes.
func (c *Catalog) ValueIndexBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for _, e := range c.entries {
		if !e.pinned {
			total += e.vidxBytes
		}
	}
	return total
}

// Info snapshots every entry's statistics, sorted by name.
func (c *Catalog) Info() []DocInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]DocInfo, 0, len(c.entries))
	for _, e := range c.entries {
		format := e.format.String()
		if e.pinned {
			format = "memory"
		}
		info := DocInfo{
			Name:        e.name,
			Path:        e.path,
			Format:      format,
			Resident:    e.d != nil,
			Pinned:      e.pinned,
			Generation:  e.gen,
			Bytes:       e.bytes,
			IndexBytes:  e.idxBytes,
			VIndexBytes: e.vidxBytes,
			Loads:       e.loads,
			Evictions:   e.evictions,
			Queries:     e.queries,
			EvalTime:    time.Duration(e.evalTime),
		}
		if e.d != nil {
			info.Nodes = e.d.Size()
			info.Height = e.d.Height()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// safeLoad runs a load end to end — read, then ensure the shared
// tag/kind index is resident before the entry goes live (an SCJ2 file
// already carries it, anything else builds it here, once — queries
// never pay the rescan), and likewise the value index for documents
// that carry values — with panic containment: a panicking decoder
// (corrupt file, injected fault) becomes a load error on this Open,
// leaving the entry cold and cleanly retryable. "catalog.load" is the
// fault-injection point.
func safeLoad(path string, format Format, buildIndex, buildVIndex bool) (d *doc.Document, f Format, err error) {
	f = format
	defer func() {
		if v := recover(); v != nil {
			d, err = nil, fault.NewPanicError(v)
		}
	}()
	if err := fault.Hit("catalog.load"); err != nil {
		return nil, f, err
	}
	d, f, err = loadDocument(path, format)
	if err != nil {
		return nil, f, err
	}
	if buildIndex {
		d.TagIndex()
	}
	if buildVIndex && d.HasValues() {
		d.ValueIndex()
	}
	return d, f, nil
}

// OpenRefs returns the total open handle count across all entries —
// zero once every Open has been balanced by Close. The chaos suite
// asserts it to prove failing loads and recovered panics never leak
// document references.
func (c *Catalog) OpenRefs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, e := range c.entries {
		total += e.refs
	}
	return total
}

// loadDocument reads a document from disk, sniffing the SCJ1/SCJ2
// magic when the format is FormatAuto.
func loadDocument(path string, format Format) (*doc.Document, Format, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, format, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	if format == FormatAuto {
		magic, err := br.Peek(4)
		if err == nil && (string(magic) == "SCJ1" || string(magic) == "SCJ2") {
			format = FormatBinary
		} else {
			format = FormatXML
		}
	}
	switch format {
	case FormatBinary:
		d, err := doc.ReadBinary(br)
		return d, format, err
	default:
		d, err := doc.Shred(br)
		return d, FormatXML, err
	}
}
