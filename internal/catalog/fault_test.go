package catalog

import (
	"errors"
	"sync"
	"testing"

	"staircase/internal/fault"
)

// faults configures the injection harness for one test and restores
// the disarmed state afterwards.
func faults(t *testing.T, spec string) {
	t.Helper()
	t.Cleanup(fault.Reset)
	if err := fault.Configure(spec); err != nil {
		t.Fatalf("fault.Configure(%q): %v", spec, err)
	}
}

// TestFailingLoadLeaksNothing pins the load-failure contract under
// concurrency: when every load fails, no Open leaks a reference or a
// resident byte, and once the fault clears a fresh Open retries the
// load cleanly.
func TestFailingLoadLeaksNothing(t *testing.T) {
	faults(t, "catalog.load:error:n=1")
	c := New(0)
	if err := c.Register("p", writeXML(t, "p.xml"), FormatAuto); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := c.Open("p")
			if err == nil {
				h.Close()
				t.Error("Open succeeded with catalog.load faulted")
				return
			}
			if !errors.Is(err, fault.ErrInjected) {
				t.Errorf("Open error %v, want injected fault", err)
			}
		}()
	}
	wg.Wait()
	if refs := c.OpenRefs(); refs != 0 {
		t.Fatalf("failed loads leaked %d open refs", refs)
	}
	if b := c.ResidentBytes(); b != 0 {
		t.Fatalf("failed loads left %d resident bytes", b)
	}
	if info := c.Info(); info[0].Resident || info[0].Loads != 0 {
		t.Fatalf("failed loads left state: %+v", info[0])
	}

	fault.Reset()
	h, err := c.Open("p")
	if err != nil {
		t.Fatalf("Open after clearing fault: %v", err)
	}
	defer h.Close()
	if h.Generation() != 1 {
		t.Fatalf("generation %d after first successful load, want 1", h.Generation())
	}
	if info := c.Info(); !info[0].Resident || info[0].Loads != 1 {
		t.Fatalf("retry load state: %+v", info[0])
	}
}

// TestPanickingLoadBecomesError pins panic containment at the load
// boundary: a decoder panic surfaces as a load error on that Open —
// the process survives, no reference leaks, and the next Open retries.
func TestPanickingLoadBecomesError(t *testing.T) {
	faults(t, "catalog.load:panic:n=1")
	c := New(0)
	if err := c.Register("p", writeXML(t, "p.xml"), FormatAuto); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open("p"); err == nil {
		t.Fatal("Open succeeded with a panicking load")
	} else if !fault.IsPanic(err) {
		t.Fatalf("Open error %v, want a recovered panic", err)
	}
	if refs := c.OpenRefs(); refs != 0 {
		t.Fatalf("panicking load leaked %d open refs", refs)
	}

	fault.Reset()
	h, err := c.Open("p")
	if err != nil {
		t.Fatalf("Open after clearing fault: %v", err)
	}
	h.Close()
}

// TestFlakyLoadAlternates drives a load that fails every second
// attempt through repeated evict-reload cycles (a 1-byte residency
// budget evicts the document the moment it is unreferenced): failed
// and successful loads interleave, failures never disturb the
// following reload, and references stay balanced throughout.
func TestFlakyLoadAlternates(t *testing.T) {
	faults(t, "catalog.load:error:n=2")
	c := New(1)
	if err := c.Register("p", writeXML(t, "p.xml"), FormatAuto); err != nil {
		t.Fatal(err)
	}
	failures := 0
	for i := 0; i < 8; i++ {
		h, err := c.Open("p")
		if err != nil {
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("Open %d: %v, want injected fault", i, err)
			}
			failures++
			continue
		}
		if h.Document() == nil {
			t.Fatalf("Open %d returned nil document", i)
		}
		h.Close() // budget of 1 byte: evicted now, next Open reloads
	}
	if failures != 4 {
		t.Fatalf("%d of 8 loads failed, want 4 (every 2nd)", failures)
	}
	if refs := c.OpenRefs(); refs != 0 {
		t.Fatalf("flaky loads leaked %d open refs", refs)
	}
	if got, want := fault.Fired("catalog.load"), int64(4); got != want {
		t.Fatalf("catalog.load fired %d times, want %d", got, want)
	}
}
