package vindex

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// buildFrom builds an index over the given per-node values (pre rank =
// slice position).
func buildFrom(vals []string) *Index {
	var b Builder
	for i, v := range vals {
		b.Add(int32(i), v)
	}
	return b.Build(len(vals))
}

// compareValue is the test oracle's comparison: the same semantics
// xpath.CompareValue implements on top of ParseNumber (the engine's
// differential suite pins the two stacks against each other end to
// end).
func compareValue(s string, op Op, lit string, numeric bool) bool {
	if numeric {
		v, ok := ParseNumber(s)
		if !ok {
			return false
		}
		w, ok := ParseNumber(lit)
		if !ok {
			return false
		}
		switch op {
		case OpEq:
			return v == w
		case OpLt:
			return v < w
		case OpLe:
			return v <= w
		case OpGt:
			return v > w
		default:
			return v >= w
		}
	}
	switch op {
	case OpEq:
		return s == lit
	case OpLt:
		return s < lit
	case OpLe:
		return s <= lit
	case OpGt:
		return s > lit
	default:
		return s >= lit
	}
}

// oracle evaluates a lookup the slow way: every node's value compared
// via the shared semantics, overflow nodes included.
func oracle(vals []string, op Op, lit string, numeric bool) []int32 {
	var out []int32
	for i, v := range vals {
		if compareValue(v, op, lit, numeric) {
			out = append(out, int32(i))
		}
	}
	return out
}

// indexedLookup runs a lookup through the index, re-evaluating the
// overflow nodes per node the way the executor does.
func indexedLookup(ix *Index, vals []string, op Op, lit string, numeric bool) []int32 {
	var out []int32
	if numeric {
		if f, ok := ParseNumber(lit); ok {
			out = ix.LookupNumeric(op, f)
		}
	} else {
		out = ix.LookupString(op, lit)
	}
	for _, v := range ix.Overflow() {
		if compareValue(vals[v], op, lit, numeric) {
			out = append(out, v)
		}
	}
	return sortedMerge(out)
}

func sortedMerge(nodes []int32) []int32 {
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] > nodes[i] {
			// Overflow nodes appended out of order: insertion-sort back.
			for j := i; j > 0 && nodes[j-1] > nodes[j]; j-- {
				nodes[j-1], nodes[j] = nodes[j], nodes[j-1]
			}
		}
	}
	return nodes
}

func eq32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestParseNumber(t *testing.T) {
	cases := []struct {
		in string
		f  float64
		ok bool
	}{
		{"100", 100, true},
		{"10.5", 10.5, true},
		{" 42 ", 42, true},
		{"-3", -3, true},
		{"1e3", 1000, true},
		{"", 0, false},
		{"abc", 0, false},
		{"NaN", 0, false},
		{"Inf", 0, false},
	}
	for _, c := range cases {
		f, ok := ParseNumber(c.in)
		if ok != c.ok || (ok && f != c.f) {
			t.Errorf("ParseNumber(%q) = %v, %v; want %v, %v", c.in, f, ok, c.f, c.ok)
		}
	}
}

func TestLookupSmall(t *testing.T) {
	vals := []string{"", "100", "20", "abc", "100", " 100 ", "3.5", "abc", "xyz",
		strings.Repeat("v", MaxKeyLen+1)}
	ix := buildFrom(vals)
	if got := ix.Entries(); got != int64(len(vals)) {
		t.Fatalf("Entries() = %d, want %d", got, len(vals))
	}
	if len(ix.Overflow()) != 1 || ix.Overflow()[0] != 9 {
		t.Fatalf("Overflow() = %v, want [9]", ix.Overflow())
	}
	ops := []Op{OpEq, OpLt, OpLe, OpGt, OpGe}
	lits := []string{"", "100", "100.0", "20", "abc", "zz", "3.5"}
	for _, op := range ops {
		for _, lit := range lits {
			for _, numeric := range []bool{false, true} {
				got := indexedLookup(ix, vals, op, lit, numeric)
				want := oracle(vals, op, lit, numeric)
				if !eq32(got, want) {
					t.Errorf("lookup %s %q numeric=%v = %v, want %v", op, lit, numeric, got, want)
				}
			}
		}
	}
}

func TestContainsSubstr(t *testing.T) {
	vals := []string{"brutus and caesar", "caesar", "calpurnia", "", "brutus", "xbrutusx"}
	ix := buildFrom(vals)
	cases := []struct {
		sub  string
		want []int32
	}{
		{"brutus", []int32{0, 4, 5}},
		{"caesar", []int32{0, 1}},
		{"c", []int32{0, 1, 2}},
		{"", []int32{0, 1, 2, 3, 4, 5}},
		{"nope", nil},
	}
	for _, c := range cases {
		if got := ix.ContainsSubstr(c.sub); !eq32(got, c.want) {
			t.Errorf("ContainsSubstr(%q) = %v, want %v", c.sub, got, c.want)
		}
	}
}

func TestLookupRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	words := []string{"", "a", "ab", "b", "10", "9", "100", "100.0", " 7 ", "-3.25",
		"caesar", "brutus", strings.Repeat("long", 70)}
	for round := 0; round < 20; round++ {
		n := 1 + rng.Intn(200)
		vals := make([]string, n)
		for i := range vals {
			vals[i] = words[rng.Intn(len(words))]
		}
		ix := buildFrom(vals)
		for trial := 0; trial < 30; trial++ {
			op := Op(rng.Intn(5))
			lit := words[rng.Intn(len(words))]
			numeric := rng.Intn(2) == 0
			got := indexedLookup(ix, vals, op, lit, numeric)
			want := oracle(vals, op, lit, numeric)
			if !eq32(got, want) {
				t.Fatalf("round %d: lookup %s %q numeric=%v = %v, want %v",
					round, op, lit, numeric, got, want)
			}
		}
		// contains() against a substring oracle over the keyed values.
		for _, sub := range []string{"a", "es", "0", "zz"} {
			var want []int32
			for i, v := range vals {
				if len(v) <= MaxKeyLen && strings.Contains(v, sub) {
					want = append(want, int32(i))
				}
			}
			if got := ix.ContainsSubstr(sub); !eq32(got, want) {
				t.Fatalf("round %d: ContainsSubstr(%q) = %v, want %v", round, sub, got, want)
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	words := []string{"", "alpha", "10", "10.00", "beta", strings.Repeat("x", MaxKeyLen),
		strings.Repeat("y", MaxKeyLen+5)}
	for _, n := range []int{1, 5, 300} {
		vals := make([]string, n)
		for i := range vals {
			vals[i] = words[rng.Intn(len(words))]
		}
		ix := buildFrom(vals)
		var buf bytes.Buffer
		if err := ix.WriteSection(&buf); err != nil {
			t.Fatal(err)
		}
		first := append([]byte(nil), buf.Bytes()...)
		ix2, err := ReadSection(&buf, n)
		if err != nil {
			t.Fatalf("n=%d: ReadSection: %v", n, err)
		}
		var buf2 bytes.Buffer
		if err := ix2.WriteSection(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, buf2.Bytes()) {
			t.Fatalf("n=%d: write-read-write not byte identical", n)
		}
		for _, op := range []Op{OpEq, OpLt, OpGe} {
			for _, lit := range []string{"alpha", "10"} {
				if !eq32(ix.LookupString(op, lit), ix2.LookupString(op, lit)) {
					t.Fatalf("n=%d: reloaded index disagrees on %s %q", n, op, lit)
				}
			}
		}
		if !eq32(ix.Overflow(), ix2.Overflow()) {
			t.Fatalf("n=%d: reloaded overflow differs", n)
		}
	}
}

func TestReadSectionRejectsCorrupt(t *testing.T) {
	vals := []string{"b", "a", "c", "a", strings.Repeat("z", MaxKeyLen+1)}
	ix := buildFrom(vals)
	var buf bytes.Buffer
	if err := ix.WriteSection(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := ReadSection(bytes.NewReader(good), len(vals)); err != nil {
		t.Fatalf("pristine section rejected: %v", err)
	}
	// Wrong node count: partition no longer covers the document.
	if _, err := ReadSection(bytes.NewReader(good), len(vals)+1); err == nil {
		t.Error("section accepted for wrong node count")
	}
	// Truncations at every length must error, never panic.
	for cut := 0; cut < len(good); cut++ {
		if _, err := ReadSection(bytes.NewReader(good[:cut]), len(vals)); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Single-byte corruptions: either rejected or — when the flip lands
	// in string content without breaking ordering — still a structurally
	// valid section. They must never panic; semantic drift is caught by
	// the document-level cross-check.
	for off := 0; off < len(good); off++ {
		mut := append([]byte(nil), good...)
		mut[off] ^= 0xff
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("flip at %d: panic %v", off, r)
				}
			}()
			_, _ = ReadSection(bytes.NewReader(mut), len(vals))
		}()
	}
}

func TestBuilderPanics(t *testing.T) {
	t.Run("out of order", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("out-of-order Add did not panic")
			}
		}()
		var b Builder
		b.Add(1, "x")
		b.Add(1, "y")
	})
	t.Run("incomplete", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("incomplete Build did not panic")
			}
		}()
		var b Builder
		b.Add(0, "x")
		b.Build(2)
	})
}

func TestDerivedNumericPartition(t *testing.T) {
	vals := []string{"10", " 10 ", "10.0", "2", "abc", "1e1", ""}
	ix := buildFrom(vals)
	// "10", " 10 ", "10.0" and "1e1" all parse to 10; "2" to 2.
	if ix.NumNumeric() != 2 {
		t.Fatalf("NumNumeric() = %d, want 2", ix.NumNumeric())
	}
	var groups []string
	ix.ForEachNumeric(func(f float64, pres []int32) {
		groups = append(groups, fmt.Sprintf("%g:%v", f, pres))
	})
	want := []string{"2:[3]", "10:[0 1 2 5]"}
	if len(groups) != len(want) || groups[0] != want[0] || groups[1] != want[1] {
		t.Fatalf("numeric groups %v, want %v", groups, want)
	}
}
