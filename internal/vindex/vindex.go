// Package vindex implements the persistent per-document value index:
// every node's XPath string value, mapped to the pre-sorted list of
// preorder ranks carrying it, with a numeric partition derived for the
// values that parse as numbers.
//
// The tag/kind index (internal/index) makes name tests cheap; this
// package does the same for value predicates. A comparison predicate
// like [price > 100] or a contains() call normally forces the engine
// to compute the string value of every candidate node. With the value
// index, the predicate becomes a range over sorted distinct values —
// resolved to a rank interval by binary search and drained from a
// B+-tree (internal/btree) keyed (value rank, pre) — yielding a
// pre-sorted node fragment the staircase semijoin machinery can
// intersect with the context, exactly like a name-test fragment.
//
// Layout: the distinct string values are sorted and stored once; a CSR
// pair (offsets + node list) maps each value rank to its pre-sorted
// occupant list. Values longer than MaxKeyLen are not keyed — their
// nodes go to the overflow list and are re-evaluated per node at query
// time, so a pathological value (the root element's string value is
// the whole document text) costs one int32, not a copy of the
// document. The numeric partition (ranks whose value parses via
// ParseNumber — the canonical numeric-value semantics, which
// internal/xpath re-exports for the executors) is derived from the
// string partition, both at build and at load time, so the two can
// never disagree.
//
// Every node of the document is indexed: the keyed lists plus the
// overflow list form an exact partition of [0, n), which is what
// ReadSection validates — a corrupt section yields an error, never a
// silently incomplete fragment.
//
// Like internal/index, the package is doc-agnostic: it is built from
// (pre, string value) pairs so internal/doc can embed and persist it
// (the SCJ2 value section, see WriteSection) without an import cycle.
package vindex

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"staircase/internal/btree"
)

// ParseNumber parses a node string value (or literal) as a finite
// number: optional surrounding whitespace around a decimal float. NaN
// and infinities are rejected — they cannot appear as literals and
// admitting them from content would break the total order the numeric
// partition sorts by. This is the one definition of numeric-value
// semantics; internal/xpath re-exports it so index lookups and
// per-node comparison agree by construction.
func ParseNumber(s string) (float64, bool) {
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, false
	}
	return f, true
}

// MaxKeyLen is the longest string value that is keyed. Longer values
// overflow: their nodes are listed but their values are not stored,
// and predicates re-evaluate them per node.
const MaxKeyLen = 256

// Op is a value-comparison operator the index can answer with a range
// lookup. There is no Ne: `!=` selects the complement of a rank
// interval and is never rewritten to an index lookup.
type Op uint8

const (
	// OpEq selects nodes whose value equals the literal.
	OpEq Op = iota
	// OpLt selects values strictly below the literal.
	OpLt
	// OpLe selects values at or below the literal.
	OpLe
	// OpGt selects values strictly above the literal.
	OpGt
	// OpGe selects values at or above the literal.
	OpGe
)

// String renders the operator.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Index is the immutable value index of one document. Safe for
// concurrent readers after Build/ReadSection.
type Index struct {
	strs   []string // sorted distinct keyed values, each <= MaxKeyLen bytes
	strOff []uint32 // CSR offsets into strPre, len(strs)+1 entries
	strPre []int32  // node pre ranks, grouped by value rank, ascending per group

	// Numeric partition, derived from the string partition: the ranks
	// whose value parses as a finite number, re-sorted numerically.
	nums   []float64
	numOff []uint32
	numPre []int32

	overflow []int32 // nodes with values > MaxKeyLen, ascending

	strTree *btree.Tree // (string rank, pre) -> pre
	numTree *btree.Tree // (numeric rank, pre) -> pre

	nodes int // document size the index was built for
}

// Builder accumulates (pre, value) pairs in preorder and builds the
// index in one sort.
type Builder struct {
	entries  []entry
	overflow []int32
	last     int32
	started  bool
}

type entry struct {
	val string
	pre int32
}

// Add records one node's string value. Calls must arrive in strictly
// increasing pre order (the document pass), covering every node; Add
// panics on out-of-order input like btree.BulkLoad does.
func (b *Builder) Add(pre int32, val string) {
	if len(val) > MaxKeyLen {
		b.AddOverflow(pre)
		return
	}
	b.advance(pre)
	b.entries = append(b.entries, entry{val, pre})
}

// AddOverflow records a node whose string value exceeds MaxKeyLen
// without materialising the value (builders can stop concatenating
// element text at the cap). Same ordering contract as Add.
func (b *Builder) AddOverflow(pre int32) {
	b.advance(pre)
	b.overflow = append(b.overflow, pre)
}

func (b *Builder) advance(pre int32) {
	if b.started && pre <= b.last {
		panic(fmt.Sprintf("vindex: Add out of preorder: %d after %d", pre, b.last))
	}
	b.started, b.last = true, pre
}

// Build constructs the index for a document of n nodes. It panics
// unless the added entries cover exactly the pre ranks [0, n) — the
// partition invariant ReadSection later revalidates.
func (b *Builder) Build(n int) *Index {
	if len(b.entries)+len(b.overflow) != n {
		panic(fmt.Sprintf("vindex: %d entries for a document of %d nodes",
			len(b.entries)+len(b.overflow), n))
	}
	// Stable by value: Add delivered pres in preorder, so each value
	// group stays ascending.
	sort.SliceStable(b.entries, func(i, j int) bool { return b.entries[i].val < b.entries[j].val })
	var (
		strs   []string
		strOff = make([]uint32, 0, 16)
		strPre = make([]int32, 0, len(b.entries))
	)
	strOff = append(strOff, 0)
	for i, e := range b.entries {
		if i == 0 || e.val != b.entries[i-1].val {
			strs = append(strs, e.val)
			if i > 0 {
				strOff = append(strOff, uint32(i))
			}
		}
		strPre = append(strPre, e.pre)
	}
	strOff = append(strOff, uint32(len(strPre)))
	if len(strs) == 0 {
		strOff = strOff[:1]
	}
	return newIndex(strs, strOff, strPre, b.overflow, n)
}

// newIndex assembles an Index from a validated (or freshly built)
// string partition: it derives the numeric partition and bulk-loads
// the rank trees.
func newIndex(strs []string, strOff []uint32, strPre []int32, overflow []int32, n int) *Index {
	ix := &Index{
		strs: strs, strOff: strOff, strPre: strPre,
		overflow: overflow, nodes: n,
	}
	type numEntry struct {
		f   float64
		pre int32
	}
	var nes []numEntry
	for r, s := range strs {
		f, ok := ParseNumber(s)
		if !ok {
			continue
		}
		for _, p := range strPre[strOff[r]:strOff[r+1]] {
			nes = append(nes, numEntry{f, p})
		}
	}
	sort.Slice(nes, func(i, j int) bool {
		if nes[i].f != nes[j].f {
			return nes[i].f < nes[j].f
		}
		return nes[i].pre < nes[j].pre
	})
	ix.numOff = append(ix.numOff, 0)
	for i, e := range nes {
		if i == 0 || e.f != nes[i-1].f {
			ix.nums = append(ix.nums, e.f)
			if i > 0 {
				ix.numOff = append(ix.numOff, uint32(i))
			}
		}
		ix.numPre = append(ix.numPre, e.pre)
	}
	ix.numOff = append(ix.numOff, uint32(len(ix.numPre)))
	if len(ix.nums) == 0 {
		ix.numOff = ix.numOff[:1]
	}
	ix.strTree = bulkRankTree(ix.strOff, ix.strPre)
	ix.numTree = bulkRankTree(ix.numOff, ix.numPre)
	return ix
}

// bulkRankTree bulk-loads a (rank, pre) -> pre B+-tree from a CSR
// partition. The CSR order is exactly key order, so the load is a
// single bottom-up pass.
func bulkRankTree(off []uint32, pres []int32) *btree.Tree {
	keys := make([]btree.Key, len(pres))
	for r := 0; r+1 < len(off); r++ {
		for i := off[r]; i < off[r+1]; i++ {
			keys[i] = btree.Key{A: int32(r), B: pres[i]}
		}
	}
	return btree.BulkLoad(keys, pres, nil)
}

// Nodes returns the size of the document the index was built for.
func (ix *Index) Nodes() int { return ix.nodes }

// NumValues returns the number of distinct keyed string values.
func (ix *Index) NumValues() int { return len(ix.strs) }

// NumNumeric returns the number of distinct numeric values.
func (ix *Index) NumNumeric() int { return len(ix.nums) }

// Entries returns the number of indexed nodes: keyed plus overflow.
// For a complete index this equals the node count.
func (ix *Index) Entries() int64 {
	return int64(len(ix.strPre)) + int64(len(ix.overflow))
}

// Overflow returns the pre-sorted nodes whose values exceeded
// MaxKeyLen. Predicates must re-evaluate these per node; the returned
// slice must not be modified.
func (ix *Index) Overflow() []int32 { return ix.overflow }

// Bytes returns the in-memory footprint of the index (strings, CSR
// arrays, and the rank trees at ~20 bytes per entry). The catalog
// charges this against its residency budget alongside IndexBytes.
func (ix *Index) Bytes() int64 {
	const stringHeader = 16
	total := int64(0)
	for _, s := range ix.strs {
		total += stringHeader + int64(len(s))
	}
	total += 4 * int64(len(ix.strOff)+len(ix.numOff))
	total += 4 * int64(len(ix.strPre)+len(ix.numPre)+len(ix.overflow))
	total += 8 * int64(len(ix.nums))
	total += 20 * int64(len(ix.strPre)+len(ix.numPre)) // rank-tree entries
	return total
}

// LookupString returns the pre-sorted nodes whose string value stands
// in relation op to lit, among the keyed values (callers handle
// Overflow separately). The result is freshly allocated.
func (ix *Index) LookupString(op Op, lit string) []int32 {
	n := len(ix.strs)
	ge := sort.SearchStrings(ix.strs, lit) // first rank >= lit
	gt := ge                               // first rank > lit
	for gt < n && ix.strs[gt] == lit {
		gt++
	}
	lo, hi := rankInterval(op, ge, gt, n)
	return ix.scanRanks(ix.strTree, lo, hi)
}

// LookupNumeric returns the pre-sorted nodes whose value parses as a
// number standing in relation op to f. Values that do not parse never
// match (xpath.CompareValue semantics).
func (ix *Index) LookupNumeric(op Op, f float64) []int32 {
	n := len(ix.nums)
	ge := sort.SearchFloat64s(ix.nums, f)
	gt := ge
	for gt < n && ix.nums[gt] == f {
		gt++
	}
	lo, hi := rankInterval(op, ge, gt, n)
	return ix.scanRanks(ix.numTree, lo, hi)
}

// rankInterval turns the (first >= lit, first > lit) bracketing ranks
// into the inclusive rank interval an operator selects.
func rankInterval(op Op, ge, gt, n int) (lo, hi int) {
	switch op {
	case OpEq:
		return ge, gt - 1
	case OpLt:
		return 0, ge - 1
	case OpLe:
		return 0, gt - 1
	case OpGt:
		return gt, n - 1
	default: // OpGe
		return ge, n - 1
	}
}

// scanRanks drains the tree entries of the inclusive rank interval
// [lo, hi], restoring document order when the interval spans more than
// one value group.
func (ix *Index) scanRanks(t *btree.Tree, lo, hi int) []int32 {
	if lo > hi {
		return nil
	}
	var out []int32
	t.Scan(
		btree.Key{A: int32(lo), B: math.MinInt32},
		btree.Key{A: int32(hi), B: math.MaxInt32},
		func(_ btree.Key, v int32) bool { out = append(out, v); return true },
	)
	if lo != hi {
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	return out
}

// ContainsSubstr returns the pre-sorted nodes whose keyed string value
// contains sub. The scan over distinct values is O(#values × |value|);
// matching groups drain from the rank tree.
func (ix *Index) ContainsSubstr(sub string) []int32 {
	var out []int32
	groups := 0
	for r, s := range ix.strs {
		if !strings.Contains(s, sub) {
			continue
		}
		groups++
		ix.strTree.Scan(
			btree.Key{A: int32(r), B: math.MinInt32},
			btree.Key{A: int32(r), B: math.MaxInt32},
			func(_ btree.Key, v int32) bool { out = append(out, v); return true },
		)
	}
	if groups > 1 {
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	return out
}

// ForEachString visits every keyed value group in value order with its
// pre-sorted node list. The callback must not retain or modify pres.
func (ix *Index) ForEachString(f func(val string, pres []int32)) {
	for r, s := range ix.strs {
		f(s, ix.strPre[ix.strOff[r]:ix.strOff[r+1]])
	}
}

// ForEachNumeric visits every numeric value group in numeric order.
func (ix *Index) ForEachNumeric(f func(val float64, pres []int32)) {
	for r, n := range ix.nums {
		f(n, ix.numPre[ix.numOff[r]:ix.numOff[r+1]])
	}
}

// --- persistence (the SCJ2 value section) -----------------------------------
//
// Layout (little endian), written after the index section:
//
//	numValues u32 | numKeyed u32 | numOverflow u32
//	per value, ascending: len u32 | bytes
//	strOff  [numValues+1]u32 (absent when numValues == 0)
//	strPre  [numKeyed]i32
//	overflow [numOverflow]i32
//
// The encoding is canonical: values are strictly ascending and at most
// MaxKeyLen bytes, offsets are strictly increasing (every distinct
// value owns at least one node), per-group node lists are strictly
// ascending, and the keyed lists plus the overflow list partition
// [0, n) exactly. The numeric partition and the rank trees are not
// stored — they derive deterministically on load — so writing a
// freshly read index reproduces the input bytes exactly.

// WriteSection serializes the index.
func (ix *Index) WriteSection(w io.Writer) error {
	hdr := []uint32{uint32(len(ix.strs)), uint32(len(ix.strPre)), uint32(len(ix.overflow))}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, s := range ix.strs {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
			return err
		}
		if _, err := io.WriteString(w, s); err != nil {
			return err
		}
	}
	if len(ix.strs) > 0 {
		if err := binary.Write(w, binary.LittleEndian, ix.strOff); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, ix.strPre); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, ix.overflow)
}

// ReadSection deserializes and validates a value section for a
// document of n nodes. Corrupt input of any shape (bad lengths,
// unsorted values or node lists, out-of-range ranks, overlapping or
// incomplete partitions, truncation) yields an error, never a panic or
// an unbounded allocation.
func ReadSection(r io.Reader, n int) (*Index, error) {
	var numValues, numKeyed, numOverflow uint32
	for _, v := range []*uint32{&numValues, &numKeyed, &numOverflow} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("vindex: read section header: %w", err)
		}
	}
	if int64(numKeyed)+int64(numOverflow) != int64(n) {
		return nil, fmt.Errorf("vindex: %d keyed + %d overflow nodes for a document of %d",
			numKeyed, numOverflow, n)
	}
	if int64(numValues) > int64(numKeyed) {
		return nil, fmt.Errorf("vindex: %d distinct values but %d keyed nodes", numValues, numKeyed)
	}
	strs := make([]string, 0, numValues)
	buf := make([]byte, MaxKeyLen)
	for i := uint32(0); i < numValues; i++ {
		var l uint32
		if err := binary.Read(r, binary.LittleEndian, &l); err != nil {
			return nil, fmt.Errorf("vindex: read value length: %w", err)
		}
		if l > MaxKeyLen {
			return nil, fmt.Errorf("vindex: value %d has length %d > %d", i, l, MaxKeyLen)
		}
		if _, err := io.ReadFull(r, buf[:l]); err != nil {
			return nil, fmt.Errorf("vindex: read value %d: %w", i, err)
		}
		s := string(buf[:l])
		if i > 0 && s <= strs[i-1] {
			return nil, fmt.Errorf("vindex: values not strictly ascending at %d", i)
		}
		strs = append(strs, s)
	}
	strOff := []uint32{0}
	if numValues > 0 {
		var err error
		if strOff, err = readUint32Chunked(r, int(numValues)+1); err != nil {
			return nil, fmt.Errorf("vindex: read offsets: %w", err)
		}
		if strOff[0] != 0 || strOff[numValues] != numKeyed {
			return nil, fmt.Errorf("vindex: offsets span [%d,%d], want [0,%d]",
				strOff[0], strOff[numValues], numKeyed)
		}
		for i := 1; i <= int(numValues); i++ {
			if strOff[i] <= strOff[i-1] {
				return nil, fmt.Errorf("vindex: empty or descending value group %d", i-1)
			}
		}
	} else if numKeyed > 0 {
		return nil, fmt.Errorf("vindex: %d keyed nodes but no values", numKeyed)
	}
	strPre, err := readInt32Chunked(r, int(numKeyed))
	if err != nil {
		return nil, fmt.Errorf("vindex: read node lists: %w", err)
	}
	overflow, err := readInt32Chunked(r, int(numOverflow))
	if err != nil {
		return nil, fmt.Errorf("vindex: read overflow list: %w", err)
	}
	// Partition check: per-group ascending, all ranks in range, every
	// rank covered exactly once across keyed groups and overflow.
	seen := make([]bool, n)
	mark := func(v int32, what string) error {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("vindex: %s node %d outside [0,%d)", what, v, n)
		}
		if seen[v] {
			return fmt.Errorf("vindex: node %d indexed twice", v)
		}
		seen[v] = true
		return nil
	}
	for g := 0; g+1 < len(strOff); g++ {
		group := strPre[strOff[g]:strOff[g+1]]
		for i, v := range group {
			if i > 0 && v <= group[i-1] {
				return nil, fmt.Errorf("vindex: value group %d not strictly ascending", g)
			}
			if err := mark(v, "keyed"); err != nil {
				return nil, err
			}
		}
	}
	for i, v := range overflow {
		if i > 0 && v <= overflow[i-1] {
			return nil, fmt.Errorf("vindex: overflow list not strictly ascending")
		}
		if err := mark(v, "overflow"); err != nil {
			return nil, err
		}
	}
	return newIndex(strs, strOff, strPre, overflow, n), nil
}

// readInt32Chunked reads n little-endian int32s in bounded chunks so a
// forged length on a truncated stream errors out after one chunk's
// allocation.
func readInt32Chunked(r io.Reader, n int) ([]int32, error) {
	const chunk = 1 << 20
	col := make([]int32, 0, min(n, chunk))
	for remaining := n; remaining > 0; {
		c := min(remaining, chunk)
		part := make([]int32, c)
		if err := binary.Read(r, binary.LittleEndian, part); err != nil {
			return nil, err
		}
		col = append(col, part...)
		remaining -= c
	}
	return col, nil
}

// readUint32Chunked is readInt32Chunked for uint32 columns.
func readUint32Chunked(r io.Reader, n int) ([]uint32, error) {
	const chunk = 1 << 20
	col := make([]uint32, 0, min(n, chunk))
	for remaining := n; remaining > 0; {
		c := min(remaining, chunk)
		part := make([]uint32, c)
		if err := binary.Read(r, binary.LittleEndian, part); err != nil {
			return nil, err
		}
		col = append(col, part...)
		remaining -= c
	}
	return col, nil
}
