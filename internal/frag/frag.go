// Package frag implements the two extensions the staircase join paper
// sketches under Future Research (§6):
//
//   - Fragmentation by tag name: "An interesting strategy is to
//     fragment by tag name. First experiments are encouraging: the
//     execution time of Q1 could be brought down from 345 ms to 39 ms."
//     A Store keeps, for every tag, the pre-sorted list of its element
//     nodes (built in one pass at load time); axis steps with name
//     tests run the staircase join directly over the fragment.
//
//   - Partition-parallel execution: "it should be obvious that the
//     partitioned pre/post plane naturally leads to a parallel XPath
//     execution strategy" (§3.2). The implementation now lives in
//     internal/core (core.ParallelJoin and the PartitionStaircase
//     partitioner); this package re-exports thin wrappers so
//     fragmentation users keep a single import.
package frag

import (
	"runtime"

	"staircase/internal/axis"
	"staircase/internal/core"
	"staircase/internal/doc"
)

// Store is a tag-name fragmented view of a document: one pre-sorted
// node list per element tag, plus lists per non-element node kind.
// Stores are immutable after construction and safe for concurrent use.
type Store struct {
	d     *doc.Document
	elems map[int32][]int32 // name id -> element pres
	text  []int32
	comm  []int32
	pi    []int32
}

// NewStore fragments the document in a single pass.
func NewStore(d *doc.Document) *Store {
	s := &Store{d: d, elems: make(map[int32][]int32, d.Names().Len())}
	kind := d.KindSlice()
	name := d.NameSlice()
	for v := 0; v < d.Size(); v++ {
		switch kind[v] {
		case doc.Elem:
			s.elems[name[v]] = append(s.elems[name[v]], int32(v))
		case doc.Text:
			s.text = append(s.text, int32(v))
		case doc.Comment:
			s.comm = append(s.comm, int32(v))
		case doc.PI:
			s.pi = append(s.pi, int32(v))
		}
	}
	return s
}

// Document returns the underlying document.
func (s *Store) Document() *doc.Document { return s.d }

// Fragment returns the pre-sorted node list for an element tag (nil if
// the tag does not occur). Callers must not modify the returned slice.
func (s *Store) Fragment(tag string) []int32 {
	id, ok := s.d.Names().Lookup(tag)
	if !ok {
		return nil
	}
	return s.elems[id]
}

// TextFragment returns the pre-sorted list of text nodes.
func (s *Store) TextFragment() []int32 { return s.text }

// Fragments returns the number of element fragments.
func (s *Store) Fragments() int { return len(s.elems) }

// Step evaluates axis::tag for the context via a staircase join over
// the tag fragment — the fragmentation strategy's axis step.
func (s *Store) Step(a axis.Axis, tag string, context []int32, opts *core.Options) ([]int32, error) {
	list := s.Fragment(tag)
	if list == nil {
		return nil, nil
	}
	return core.JoinNodeList(s.d, a, list, context, opts)
}

// Path evaluates a chain of (axis, tag) steps starting from the
// document root, entirely over fragments.
func (s *Store) Path(steps []PathStep, opts *core.Options) ([]int32, error) {
	context := []int32{s.d.Root()}
	for _, st := range steps {
		var err error
		context, err = s.Step(st.Axis, st.Tag, context, opts)
		if err != nil {
			return nil, err
		}
	}
	return context, nil
}

// PathStep is one (axis, tag) step for Store.Path.
type PathStep struct {
	Axis axis.Axis
	Tag  string
}

// --- partition-parallel staircase join -------------------------------------

// The parallel join itself lives in internal/core (core.ParallelJoin
// and friends) since PR 1 promoted it from this package's sketch into a
// first-class operator; the wrappers below are kept so fragmentation
// users keep a single import.

// ParallelJoin evaluates a partitioning axis step for the context with
// the staircase join, splitting the partitioned plane across `workers`
// goroutines. workers <= 1 (or a single partition) degrades to the
// sequential join. Results are identical to core.Join. It delegates to
// core.ParallelJoin.
func ParallelJoin(d *doc.Document, a axis.Axis, context []int32, workers int, opts *core.Options) ([]int32, error) {
	return core.ParallelJoin(d, a, context, workers, opts)
}

// ParallelDescendantJoin is the parallel variant of core.DescendantJoin
// (see core.ParallelDescendantJoin).
func ParallelDescendantJoin(d *doc.Document, context []int32, workers int, opts *core.Options) []int32 {
	return core.ParallelDescendantJoin(d, context, workers, opts)
}

// ParallelAncestorJoin is the parallel variant of core.AncestorJoin
// (see core.ParallelAncestorJoin).
func ParallelAncestorJoin(d *doc.Document, context []int32, workers int, opts *core.Options) []int32 {
	return core.ParallelAncestorJoin(d, context, workers, opts)
}

// DefaultWorkers returns the worker count used when callers pass 0:
// the machine's CPU count.
func DefaultWorkers() int { return runtime.NumCPU() }
