// Package frag implements the two extensions the staircase join paper
// sketches under Future Research (§6):
//
//   - Fragmentation by tag name: "An interesting strategy is to
//     fragment by tag name. First experiments are encouraging: the
//     execution time of Q1 could be brought down from 345 ms to 39 ms."
//     A Store keeps, for every tag, the pre-sorted list of its element
//     nodes (built in one pass at load time); axis steps with name
//     tests run the staircase join directly over the fragment.
//
//   - Partition-parallel execution: "it should be obvious that the
//     partitioned pre/post plane naturally leads to a parallel XPath
//     execution strategy" (§3.2). The pruned context staircase is split
//     into contiguous slices, one per worker; partitions are disjoint
//     pre ranges, so per-worker results concatenate into document order
//     without any merge.
package frag

import (
	"fmt"
	"runtime"
	"sync"

	"staircase/internal/axis"
	"staircase/internal/core"
	"staircase/internal/doc"
)

// Store is a tag-name fragmented view of a document: one pre-sorted
// node list per element tag, plus lists per non-element node kind.
// Stores are immutable after construction and safe for concurrent use.
type Store struct {
	d     *doc.Document
	elems map[int32][]int32 // name id -> element pres
	text  []int32
	comm  []int32
	pi    []int32
}

// NewStore fragments the document in a single pass.
func NewStore(d *doc.Document) *Store {
	s := &Store{d: d, elems: make(map[int32][]int32, d.Names().Len())}
	kind := d.KindSlice()
	name := d.NameSlice()
	for v := 0; v < d.Size(); v++ {
		switch kind[v] {
		case doc.Elem:
			s.elems[name[v]] = append(s.elems[name[v]], int32(v))
		case doc.Text:
			s.text = append(s.text, int32(v))
		case doc.Comment:
			s.comm = append(s.comm, int32(v))
		case doc.PI:
			s.pi = append(s.pi, int32(v))
		}
	}
	return s
}

// Document returns the underlying document.
func (s *Store) Document() *doc.Document { return s.d }

// Fragment returns the pre-sorted node list for an element tag (nil if
// the tag does not occur). Callers must not modify the returned slice.
func (s *Store) Fragment(tag string) []int32 {
	id, ok := s.d.Names().Lookup(tag)
	if !ok {
		return nil
	}
	return s.elems[id]
}

// TextFragment returns the pre-sorted list of text nodes.
func (s *Store) TextFragment() []int32 { return s.text }

// Fragments returns the number of element fragments.
func (s *Store) Fragments() int { return len(s.elems) }

// Step evaluates axis::tag for the context via a staircase join over
// the tag fragment — the fragmentation strategy's axis step.
func (s *Store) Step(a axis.Axis, tag string, context []int32, opts *core.Options) ([]int32, error) {
	list := s.Fragment(tag)
	if list == nil {
		return nil, nil
	}
	return core.JoinNodeList(s.d, a, list, context, opts)
}

// Path evaluates a chain of (axis, tag) steps starting from the
// document root, entirely over fragments.
func (s *Store) Path(steps []PathStep, opts *core.Options) ([]int32, error) {
	context := []int32{s.d.Root()}
	for _, st := range steps {
		var err error
		context, err = s.Step(st.Axis, st.Tag, context, opts)
		if err != nil {
			return nil, err
		}
	}
	return context, nil
}

// PathStep is one (axis, tag) step for Store.Path.
type PathStep struct {
	Axis axis.Axis
	Tag  string
}

// --- partition-parallel staircase join -------------------------------------

// ParallelJoin evaluates a partitioning axis step for the context with
// the staircase join, splitting the pruned staircase across `workers`
// goroutines. workers <= 1 (or a single partition) degrades to the
// sequential join. Results are identical to core.Join.
func ParallelJoin(d *doc.Document, a axis.Axis, context []int32, workers int, opts *core.Options) ([]int32, error) {
	switch a {
	case axis.Descendant:
		return ParallelDescendantJoin(d, context, workers, opts), nil
	case axis.Ancestor:
		return ParallelAncestorJoin(d, context, workers, opts), nil
	case axis.Following, axis.Preceding:
		// Pruning reduces these to a single region query (§3.1);
		// nothing to parallelise.
		return core.Join(d, a, context, opts)
	default:
		return nil, fmt.Errorf("frag: parallel join does not handle axis %v", a)
	}
}

// chunkBounds splits k partitions into at most w contiguous chunks and
// returns the chunk boundary indexes (len = chunks+1, first 0, last k).
func chunkBounds(k, w int) []int {
	if w < 1 {
		w = 1
	}
	if w > k {
		w = k
	}
	bounds := make([]int, 0, w+1)
	for i := 0; i <= w; i++ {
		bounds = append(bounds, i*k/w)
	}
	return bounds
}

// ParallelDescendantJoin is the parallel variant of
// core.DescendantJoin. Worker i handles staircase steps
// [bounds[i], bounds[i+1]); its scan is delimited by the first context
// node of worker i+1 (partitions are disjoint pre ranges).
func ParallelDescendantJoin(d *doc.Document, context []int32, workers int, opts *core.Options) []int32 {
	o := defaultOpts(opts)
	pruned := core.PruneDescendant(d, context)
	if len(pruned) == 0 {
		return nil
	}
	bounds := chunkBounds(len(pruned), workers)
	nchunks := len(bounds) - 1
	if nchunks <= 1 {
		wo := *o
		wo.AssumePruned = true
		return core.DescendantJoin(d, pruned, &wo)
	}
	results := make([][]int32, nchunks)
	stats := make([]core.Stats, nchunks)
	var wg sync.WaitGroup
	for i := 0; i < nchunks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			chunk := pruned[bounds[i]:bounds[i+1]]
			wo := *o
			wo.AssumePruned = true
			wo.Stats = &stats[i]
			if i+1 < nchunks {
				// Stop before the next worker's first partition.
				wo.ScanLimit = pruned[bounds[i+1]] - 1
			}
			results[i] = core.DescendantJoin(d, chunk, &wo)
		}(i)
	}
	wg.Wait()
	mergeStats(o.Stats, stats)
	return concat(results)
}

// ParallelAncestorJoin is the parallel variant of core.AncestorJoin.
func ParallelAncestorJoin(d *doc.Document, context []int32, workers int, opts *core.Options) []int32 {
	o := defaultOpts(opts)
	pruned := core.PruneAncestor(d, context)
	if len(pruned) == 0 {
		return nil
	}
	bounds := chunkBounds(len(pruned), workers)
	nchunks := len(bounds) - 1
	if nchunks <= 1 {
		wo := *o
		wo.AssumePruned = true
		return core.AncestorJoin(d, pruned, &wo)
	}
	results := make([][]int32, nchunks)
	stats := make([]core.Stats, nchunks)
	var wg sync.WaitGroup
	for i := 0; i < nchunks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			chunk := pruned[bounds[i]:bounds[i+1]]
			wo := *o
			wo.AssumePruned = true
			wo.Stats = &stats[i]
			if i > 0 {
				// Earlier partitions belong to earlier workers: the
				// first partition of this worker starts right after
				// the previous worker's last context node.
				wo.ScanStart = pruned[bounds[i]-1] + 1
			}
			results[i] = core.AncestorJoin(d, chunk, &wo)
		}(i)
	}
	wg.Wait()
	mergeStats(o.Stats, stats)
	return concat(results)
}

// defaultOpts mirrors core's nil handling while keeping the caller's
// options value intact.
func defaultOpts(opts *core.Options) *core.Options {
	if opts == nil {
		return core.DefaultOptions()
	}
	return opts
}

// mergeStats folds per-worker counters into the caller's Stats.
func mergeStats(dst *core.Stats, parts []core.Stats) {
	if dst == nil {
		return
	}
	for _, p := range parts {
		dst.ContextSize += p.ContextSize
		dst.PrunedSize += p.PrunedSize
		dst.Scanned += p.Scanned
		dst.Copied += p.Copied
		dst.Compared += p.Compared
		dst.Skipped += p.Skipped
		dst.Result += p.Result
	}
}

// concat joins the per-worker result slices; partitions are disjoint
// ascending pre ranges, so plain concatenation preserves document order.
func concat(parts [][]int32) []int32 {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]int32, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// DefaultWorkers returns the worker count used when callers pass 0:
// the machine's CPU count.
func DefaultWorkers() int { return runtime.NumCPU() }
