package frag

import (
	"math/rand"
	"sort"
	"testing"

	"staircase/internal/axis"
	"staircase/internal/core"
	"staircase/internal/doc"
	"staircase/internal/engine"
	"staircase/internal/xmark"
)

func randomDoc(rng *rand.Rand, n int) *doc.Document {
	b := doc.NewBuilder()
	b.OpenElem("root")
	depth := 1
	tags := []string{"p", "q", "r"}
	for i := 0; i < n; i++ {
		switch r := rng.Intn(10); {
		case r < 5:
			b.OpenElem(tags[rng.Intn(len(tags))])
			if rng.Intn(4) == 0 {
				b.Attr("k", "v")
			}
			depth++
		case r < 7 && depth > 1:
			b.CloseElem()
			depth--
		default:
			b.Text("t")
		}
	}
	for depth > 0 {
		b.CloseElem()
		depth--
	}
	d, err := b.Done()
	if err != nil {
		panic(err)
	}
	return d
}

func randomContext(rng *rand.Rand, d *doc.Document, k int) []int32 {
	seen := map[int32]bool{}
	for len(seen) < k && len(seen) < d.Size() {
		seen[int32(rng.Intn(d.Size()))] = true
	}
	out := make([]int32, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func eq32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestStoreFragmentsPartitionElements(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := randomDoc(rng, 400)
	s := NewStore(d)
	// Every element appears in exactly its tag's fragment; fragments
	// are sorted.
	total := 0
	for _, tag := range []string{"root", "p", "q", "r"} {
		f := s.Fragment(tag)
		total += len(f)
		for i, v := range f {
			if d.KindOf(v) != doc.Elem || d.Name(v) != tag {
				t.Fatalf("fragment %q holds node %d (%v %q)", tag, v, d.KindOf(v), d.Name(v))
			}
			if i > 0 && f[i-1] >= v {
				t.Fatalf("fragment %q unsorted", tag)
			}
		}
	}
	elems := 0
	for v := 0; v < d.Size(); v++ {
		switch d.KindOf(int32(v)) {
		case doc.Elem:
			elems++
		}
	}
	if total != elems {
		t.Fatalf("fragments cover %d elements, document has %d", total, elems)
	}
	if s.Fragment("nosuch") != nil {
		t.Fatal("unknown tag should yield nil fragment")
	}
	if s.Fragments() == 0 || len(s.TextFragment()) == 0 {
		t.Fatal("fragment accounting broken")
	}
}

func TestStoreStepMatchesEngine(t *testing.T) {
	d, err := xmark.Generate(xmark.Config{SizeMB: 0.1, Seed: 5, KeepValues: true})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(d)
	e := engine.New(d)

	// Q1 over fragments vs engine.
	got, err := s.Path([]PathStep{
		{Axis: axis.Descendant, Tag: "profile"},
		{Axis: axis.Descendant, Tag: "education"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.EvalString("/descendant::profile/descendant::education", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !eq32(got, want.Nodes) {
		t.Fatalf("fragment Q1 = %d nodes, engine = %d nodes", len(got), len(want.Nodes))
	}

	// Q2.
	got, err = s.Path([]PathStep{
		{Axis: axis.Descendant, Tag: "increase"},
		{Axis: axis.Ancestor, Tag: "bidder"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err = e.EvalString("/descendant::increase/ancestor::bidder", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !eq32(got, want.Nodes) {
		t.Fatalf("fragment Q2 = %d nodes, engine = %d nodes", len(got), len(want.Nodes))
	}
}

func TestStoreStepUnknownTag(t *testing.T) {
	d := randomDoc(rand.New(rand.NewSource(2)), 100)
	s := NewStore(d)
	got, err := s.Step(axis.Descendant, "zzz", []int32{0}, nil)
	if err != nil || got != nil {
		t.Fatalf("unknown tag: %v, %v", got, err)
	}
	if _, err := s.Step(axis.Child, "p", []int32{0}, nil); err == nil {
		t.Fatal("expected error for non-partitioning axis")
	}
}

func TestParallelJoinMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 15; trial++ {
		d := randomDoc(rng, 600)
		context := randomContext(rng, d, 1+rng.Intn(40))
		for _, a := range []axis.Axis{axis.Descendant, axis.Ancestor, axis.Following, axis.Preceding} {
			want, err := core.Join(d, a, context, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 3, 4, 8, 100} {
				got, err := ParallelJoin(d, a, context, workers, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !eq32(got, want) {
					t.Fatalf("trial %d axis %v workers %d:\n got %v\nwant %v\ncontext %v",
						trial, a, workers, got, want, context)
				}
			}
		}
	}
}

func TestParallelJoinStatsMerged(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := randomDoc(rng, 2000)
	context := randomContext(rng, d, 30)
	var seq, par core.Stats
	core.DescendantJoin(d, context, &core.Options{Variant: core.Skip, Stats: &seq, KeepAttributes: true})
	ParallelDescendantJoin(d, context, 4, &core.Options{Variant: core.Skip, Stats: &par, KeepAttributes: true})
	if par.Result != seq.Result {
		t.Fatalf("result counters differ: %d vs %d", par.Result, seq.Result)
	}
	if par.Scanned == 0 {
		t.Fatal("parallel stats not merged")
	}
}

func TestParallelJoinVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	d := randomDoc(rng, 800)
	context := randomContext(rng, d, 25)
	for _, v := range []core.Variant{core.NoSkip, core.Skip, core.SkipEstimate} {
		want, _ := core.Join(d, axis.Descendant, context, &core.Options{Variant: v})
		got := ParallelDescendantJoin(d, context, 3, &core.Options{Variant: v})
		if !eq32(got, want) {
			t.Fatalf("variant %v: parallel differs", v)
		}
		wantA, _ := core.Join(d, axis.Ancestor, context, &core.Options{Variant: v})
		gotA := ParallelAncestorJoin(d, context, 3, &core.Options{Variant: v})
		if !eq32(gotA, wantA) {
			t.Fatalf("variant %v: parallel ancestor differs", v)
		}
	}
}

func TestParallelEmptyContext(t *testing.T) {
	d := randomDoc(rand.New(rand.NewSource(3)), 100)
	if got := ParallelDescendantJoin(d, nil, 4, nil); len(got) != 0 {
		t.Fatalf("empty context gave %v", got)
	}
	if got := ParallelAncestorJoin(d, nil, 4, nil); len(got) != 0 {
		t.Fatalf("empty context gave %v", got)
	}
}

func TestDefaultWorkers(t *testing.T) {
	// The chunking logic itself is exercised in core (PartitionStaircase
	// and the Parallel*Join property tests); here only the wrapper
	// plumbing remains.
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}
