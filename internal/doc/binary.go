package doc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"staircase/internal/fault"
	"staircase/internal/index"
	"staircase/internal/vindex"
)

// Binary persistence of the pre/post encoding. Shredding a large
// document is a parse-bound operation; the encoded columns themselves
// are compact (the paper, §4.1: "a document occupies only about 1.5×
// its size in Monet using our storage structure" — the void pre column
// costs nothing, post/level/parent are plain integer arrays). WriteBinary
// and ReadBinary store exactly those columns so a document loads back
// with a handful of bulk reads.
//
// Layout (little endian):
//
//	magic "SCJ2" | flags u32 | n u32 | height i32
//	post  [n]i32 | level [n]i32 | parent [n]i32 | kind [n]u8 | name [n]i32
//	dict: count u32, then per name: len u32 + bytes
//	values (flag bit 0): per node: len u32 + bytes
//	index (flag bit 1): the tag/kind node index, see index.WriteSection
//	value index (flag bit 2): the value index, see vindex.WriteSection
//
// Version 2 adds the optional index section: the per-tag and per-kind
// node lists of internal/index, persisted so a document loads with its
// name-test pushdown fragments ready — no O(n) rebuild scan. Version 1
// ("SCJ1") files are identical up to the dictionary/values sections
// and still load; their index is built in memory on first use.
// WriteBinary always writes the current version; WriteBinaryV1 keeps
// the ability to produce v1 files for compatibility tests and older
// readers.
//
// Value-bearing v2 documents additionally carry the value index
// section (flag bit 2, after the index section), so comparison and
// contains() predicates load with their value fragments ready. Files
// without it — including every file an older writer produced — still
// load; their value index is built in memory on first use.
const (
	binaryMagicV1 = "SCJ1"
	binaryMagicV2 = "SCJ2"
)

const (
	flagHasValues = 1 << 0
	flagHasIndex  = 1 << 1 // v2 only
	flagHasVIndex = 1 << 2 // v2 only, requires flagHasValues
)

// WriteBinary serializes the encoded document in the current (SCJ2)
// format, including the tag/kind index section (building the index
// first if the document does not have one yet).
func (d *Document) WriteBinary(w io.Writer) error {
	return d.writeBinary(w, 2)
}

// WriteBinaryV1 serializes the document in the legacy SCJ1 format,
// without an index section.
func (d *Document) WriteBinaryV1(w io.Writer) error {
	return d.writeBinary(w, 1)
}

func (d *Document) writeBinary(w io.Writer, version int) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	magic := binaryMagicV1
	if version == 2 {
		magic = binaryMagicV2
	}
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var flags uint32
	if d.value != nil {
		flags |= flagHasValues
	}
	if version == 2 {
		flags |= flagHasIndex
		if d.value != nil {
			flags |= flagHasVIndex
		}
	}
	n := uint32(len(d.post))
	for _, v := range []uint32{flags, n, uint32(d.height)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, col := range [][]int32{d.post, d.level, d.parent} {
		if err := binary.Write(bw, binary.LittleEndian, col); err != nil {
			return err
		}
	}
	kinds := make([]byte, len(d.kind))
	for i, k := range d.kind {
		kinds[i] = byte(k)
	}
	if _, err := bw.Write(kinds); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, d.name); err != nil {
		return err
	}
	// Dictionary.
	if err := binary.Write(bw, binary.LittleEndian, uint32(d.names.Len())); err != nil {
		return err
	}
	for id := 0; id < d.names.Len(); id++ {
		if err := writeString(bw, d.names.Name(int32(id))); err != nil {
			return err
		}
	}
	if d.value != nil {
		for _, v := range d.value {
			if err := writeString(bw, v); err != nil {
				return err
			}
		}
	}
	if flags&flagHasIndex != 0 {
		if err := d.TagIndex().WriteSection(bw); err != nil {
			return err
		}
	}
	if flags&flagHasVIndex != 0 {
		if err := d.ValueIndex().WriteSection(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<28 {
		return "", fmt.Errorf("doc: unreasonable string length %d", n)
	}
	// Read in bounded chunks: a forged length on a truncated stream
	// fails after one small allocation instead of committing 256 MB.
	const chunk = 1 << 16
	var sb strings.Builder
	buf := make([]byte, min(int(n), chunk))
	for remaining := int(n); remaining > 0; {
		c := min(remaining, chunk)
		if _, err := io.ReadFull(r, buf[:c]); err != nil {
			return "", err
		}
		sb.Write(buf[:c])
		remaining -= c
	}
	return sb.String(), nil
}

// readInt32Col reads n little-endian int32s in bounded chunks, so a
// corrupt node count on a short stream errors out after at most one
// chunk's allocation rather than up-front gigabytes.
func readInt32Col(r io.Reader, n int) ([]int32, error) {
	const chunk = 1 << 20 // entries per read
	if n <= chunk {
		col := make([]int32, n)
		if err := binary.Read(r, binary.LittleEndian, col); err != nil {
			return nil, err
		}
		return col, nil
	}
	col := make([]int32, 0, chunk)
	for remaining := n; remaining > 0; {
		c := min(remaining, chunk)
		part := make([]int32, c)
		if err := binary.Read(r, binary.LittleEndian, part); err != nil {
			return nil, err
		}
		col = append(col, part...)
		remaining -= c
	}
	return col, nil
}

// readByteCol is readInt32Col for byte columns.
func readByteCol(r io.Reader, n int) ([]byte, error) {
	const chunk = 1 << 22
	col := make([]byte, 0, min(n, chunk))
	for remaining := n; remaining > 0; {
		c := min(remaining, chunk)
		col = append(col, make([]byte, c)...)
		if _, err := io.ReadFull(r, col[len(col)-c:]); err != nil {
			return nil, err
		}
		remaining -= c
	}
	return col, nil
}

// ReadBinary deserializes a document written by WriteBinary (either
// format version, sniffed from the magic bytes) and validates the
// encoding before returning it. Corrupt or truncated input of any
// shape yields an error, never a panic or an unbounded allocation:
// column and string reads are chunked against the stream, the name
// dictionary must be duplicate-free and no larger than the node count,
// Validate rejects any encoding (ranks, levels, kinds, name ids,
// height) that the accessors could not serve safely, and a v2 index
// section must agree exactly with the kind/name columns — a corrupt
// index can never silently change query results.
func ReadBinary(r io.Reader) (*Document, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("doc: read magic: %w", err)
	}
	var version int
	switch string(magic) {
	case binaryMagicV1:
		version = 1
	case binaryMagicV2:
		version = 2
	default:
		return nil, fmt.Errorf("doc: bad magic %q", magic)
	}
	var flags, n uint32
	var height int32
	if err := binary.Read(br, binary.LittleEndian, &flags); err != nil {
		return nil, err
	}
	known := uint32(flagHasValues)
	if version == 2 {
		known |= flagHasIndex | flagHasVIndex
	}
	if flags&^known != 0 {
		return nil, fmt.Errorf("doc: unknown flags %#x", flags)
	}
	if flags&flagHasVIndex != 0 && flags&flagHasValues == 0 {
		return nil, fmt.Errorf("doc: value index section without node values")
	}
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &height); err != nil {
		return nil, err
	}
	if n == 0 || n > 1<<30 {
		return nil, fmt.Errorf("doc: unreasonable node count %d", n)
	}
	d := &Document{names: NewDict(), height: height}
	var err error
	for _, col := range []*[]int32{&d.post, &d.level, &d.parent} {
		if *col, err = readInt32Col(br, int(n)); err != nil {
			return nil, err
		}
	}
	kinds, err := readByteCol(br, int(n))
	if err != nil {
		return nil, err
	}
	d.kind = make([]Kind, n)
	for i, k := range kinds {
		d.kind[i] = Kind(k)
	}
	if d.name, err = readInt32Col(br, int(n)); err != nil {
		return nil, err
	}
	var dictLen uint32
	if err := binary.Read(br, binary.LittleEndian, &dictLen); err != nil {
		return nil, err
	}
	if dictLen > n {
		return nil, fmt.Errorf("doc: dictionary of %d names exceeds node count %d", dictLen, n)
	}
	for i := uint32(0); i < dictLen; i++ {
		s, err := readString(br)
		if err != nil {
			return nil, err
		}
		d.names.Intern(s)
		if d.names.Len() != int(i)+1 {
			return nil, fmt.Errorf("doc: duplicate dictionary entry %q", s)
		}
	}
	if flags&flagHasValues != 0 {
		vals := make([]string, 0, min(int(n), 1<<20))
		for i := 0; i < int(n); i++ {
			s, err := readString(br)
			if err != nil {
				return nil, err
			}
			vals = append(vals, s)
		}
		d.value = vals
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("doc: corrupt binary document: %w", err)
	}
	if flags&flagHasIndex != 0 {
		if err := fault.Hit("doc.index.read"); err != nil {
			return nil, err
		}
		ix, err := index.ReadSection(br, int(n), d.names.Len(), NumKinds, uint8(Elem))
		if err != nil {
			return nil, fmt.Errorf("doc: corrupt index section: %w", err)
		}
		if err := d.validateIndex(ix); err != nil {
			return nil, fmt.Errorf("doc: corrupt index section: %w", err)
		}
		d.idx.Store(ix)
	}
	if flags&flagHasVIndex != 0 {
		if err := fault.Hit("doc.vindex.read"); err != nil {
			return nil, err
		}
		vix, err := vindex.ReadSection(br, int(n))
		if err != nil {
			return nil, fmt.Errorf("doc: corrupt value index section: %w", err)
		}
		if err := d.validateValueIndex(vix); err != nil {
			return nil, fmt.Errorf("doc: corrupt value index section: %w", err)
		}
		d.vidx.Store(vix)
	}
	return d, nil
}

// validateIndex checks a deserialized index section against the
// document columns: every tag-list entry must be an element carrying
// that exact name id and every kind-list entry a node of that kind.
// Combined with the structural guarantees of index.ReadSection (strict
// sortedness, in-range ranks, total entries == node count) this pins
// the section to the one canonical index of the document.
func (d *Document) validateIndex(ix *index.Index) error {
	for id := 0; id < ix.NumTags(); id++ {
		for _, v := range ix.Tag(int32(id)) {
			if d.kind[v] != Elem || d.name[v] != int32(id) {
				return fmt.Errorf("index: tag list %d contains node %d (kind %v, name %d)",
					id, v, d.kind[v], d.name[v])
			}
		}
	}
	for k := 0; k < ix.NumKinds(); k++ {
		for _, v := range ix.KindList(uint8(k)) {
			if d.kind[v] != Kind(k) {
				return fmt.Errorf("index: kind list %d contains node %d of kind %v", k, v, d.kind[v])
			}
		}
	}
	return nil
}

// validateValueIndex checks a deserialized value section against the
// document: every keyed node's recomputed string value must equal the
// value it is listed under, and every overflow node's value must
// actually exceed vindex.MaxKeyLen. Combined with the structural
// guarantees of vindex.ReadSection (sortedness, exact partition of
// [0, n)) this pins the section to the one canonical value index of
// the document — a corrupt section can never silently change query
// results.
func (d *Document) validateValueIndex(ix *vindex.Index) error {
	var bad error
	ix.ForEachString(func(val string, pres []int32) {
		if bad != nil {
			return
		}
		for _, v := range pres {
			s, ok := d.boundedStringValue(v)
			if !ok || s != val {
				bad = fmt.Errorf("vindex: node %d keyed under %q but its string value differs", v, val)
				return
			}
		}
	})
	if bad != nil {
		return bad
	}
	for _, v := range ix.Overflow() {
		if _, ok := d.boundedStringValue(v); ok {
			return fmt.Errorf("vindex: node %d in overflow but its value fits a key", v)
		}
	}
	return nil
}

// EncodedBytes returns the in-memory footprint of the structural
// encoding in bytes (excluding string values and the tag/kind index,
// see IndexBytes): 13 bytes per node (post, level, parent, name id: 4
// each; kind: 1) plus the name dictionary. The pre column is void and
// costs nothing — this is the quantity behind the paper's "1.5×
// document size" storage claim.
func (d *Document) EncodedBytes() int64 {
	n := int64(len(d.post))
	bytes := n * (4 + 4 + 4 + 4 + 1)
	for id := 0; id < d.names.Len(); id++ {
		bytes += int64(len(d.names.Name(int32(id)))) + 4
	}
	return bytes
}
