package doc

import (
	"errors"
	"fmt"
)

// Builder constructs a pre/post encoded Document from a stream of
// open/attribute/text/close events (a SAX-style shredding interface).
// Ranks are assigned online: pre on node entry, post on node exit, so
// building is a single pass and never materialises a pointer-based tree.
//
// Attribute nodes are entered (and immediately exited) directly after
// their owner element, before any children — this keeps every encoding
// invariant (descendant window, Equation (1)) intact for attributes too.
type Builder struct {
	post   []int32
	level  []int32
	kind   []Kind
	name   []int32
	parent []int32
	value  []string

	names      *Dict
	keepValues bool

	stack       []int32 // pres of open elements
	postCounter int32
	height      int32
	attrsOK     bool // attributes only directly after OpenElem
	roots       int  // top-level nodes seen
	virtual     bool // building under a virtual root
	err         error
}

// BuilderOption configures a Builder.
type BuilderOption func(*Builder)

// WithoutValues drops node string values (text content, attribute
// values) to save memory; the structural encoding is unaffected. Large
// benchmark documents are built this way.
func WithoutValues() BuilderOption {
	return func(b *Builder) { b.keepValues = false }
}

// WithVirtualRoot opens a virtual root node before the first event, so
// several documents can be appended as siblings and queried as one
// plane (footnote 1 of the paper: multi-document databases).
func WithVirtualRoot() BuilderOption {
	return func(b *Builder) { b.virtual = true }
}

// WithDict makes the builder intern names into an existing dictionary
// (useful when several documents must share name ids).
func WithDict(d *Dict) BuilderOption {
	return func(b *Builder) { b.names = d }
}

// NewBuilder returns a Builder ready to receive events.
func NewBuilder(opts ...BuilderOption) *Builder {
	b := &Builder{keepValues: true}
	for _, o := range opts {
		o(b)
	}
	if b.names == nil {
		b.names = NewDict()
	}
	if b.keepValues {
		b.value = []string{}
	}
	if b.virtual {
		b.push(VRoot, NoName, "")
	}
	return b
}

// fail records the first error; subsequent events become no-ops.
func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// push enters a new node and returns its pre rank.
func (b *Builder) push(k Kind, nameID int32, val string) int32 {
	pre := int32(len(b.post))
	lvl := int32(len(b.stack))
	par := NoParent
	if len(b.stack) > 0 {
		par = b.stack[len(b.stack)-1]
	} else {
		b.roots++
	}
	b.post = append(b.post, -1) // patched on exit
	b.level = append(b.level, lvl)
	b.kind = append(b.kind, k)
	b.name = append(b.name, nameID)
	b.parent = append(b.parent, par)
	if b.keepValues {
		b.value = append(b.value, val)
	}
	if lvl > b.height {
		b.height = lvl
	}
	b.stack = append(b.stack, pre)
	return pre
}

// pop exits the innermost open node, assigning its post rank.
func (b *Builder) pop() {
	pre := b.stack[len(b.stack)-1]
	b.stack = b.stack[:len(b.stack)-1]
	b.post[pre] = b.postCounter
	b.postCounter++
}

// leaf enters and immediately exits a childless node.
func (b *Builder) leaf(k Kind, nameID int32, val string) {
	b.push(k, nameID, val)
	b.pop()
}

// OpenElem starts an element node with the given tag name.
func (b *Builder) OpenElem(tag string) {
	if b.err != nil {
		return
	}
	if len(b.stack) == 0 && b.roots > 0 {
		b.fail("doc: second root element %q (use WithVirtualRoot for collections)", tag)
		return
	}
	b.push(Elem, b.names.Intern(tag), "")
	b.attrsOK = true
}

// Attr adds an attribute node to the currently open element. Attributes
// must be added before any text or child events of that element.
func (b *Builder) Attr(name, val string) {
	if b.err != nil {
		return
	}
	if len(b.stack) == 0 || b.kind[b.stack[len(b.stack)-1]] != Elem || !b.attrsOK {
		b.fail("doc: attribute %q outside element start", name)
		return
	}
	b.leaf(Attr, b.names.Intern(name), val)
}

// Text adds a text node under the currently open element. Adjacent text
// is merged into a single node, keeping text nodes maximal as the XPath
// data model requires.
func (b *Builder) Text(s string) {
	if b.err != nil {
		return
	}
	if len(b.stack) == 0 {
		b.fail("doc: text content outside any element")
		return
	}
	if last := len(b.post) - 1; last >= 0 &&
		b.kind[last] == Text &&
		b.parent[last] == b.stack[len(b.stack)-1] &&
		b.post[last] == b.postCounter-1 {
		if b.keepValues {
			b.value[last] += s
		}
		b.attrsOK = false
		return
	}
	b.leaf(Text, NoName, s)
	b.attrsOK = false
}

// Comment adds a comment node.
func (b *Builder) Comment(s string) {
	if b.err != nil {
		return
	}
	if len(b.stack) == 0 && !b.virtual {
		// Comments outside the root are legal XML; we only keep them in
		// collections (they need a parent in the plane). Silently drop.
		return
	}
	b.leaf(Comment, NoName, s)
	b.attrsOK = false
}

// PI adds a processing-instruction node with the given target and data.
func (b *Builder) PI(target, data string) {
	if b.err != nil {
		return
	}
	if len(b.stack) == 0 && !b.virtual {
		return
	}
	b.leaf(PI, b.names.Intern(target), data)
	b.attrsOK = false
}

// CloseElem ends the innermost open element.
func (b *Builder) CloseElem() {
	if b.err != nil {
		return
	}
	if len(b.stack) == 0 || b.kind[b.stack[len(b.stack)-1]] != Elem {
		b.fail("doc: CloseElem without open element")
		return
	}
	b.pop()
	b.attrsOK = false
}

// Err returns the first event error, if any.
func (b *Builder) Err() error { return b.err }

// Done finalises the document. After Done the builder must not be used.
func (b *Builder) Done() (*Document, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.virtual {
		if len(b.stack) != 1 {
			return nil, errors.New("doc: unclosed elements at Done")
		}
		b.pop()
	} else if len(b.stack) != 0 {
		return nil, fmt.Errorf("doc: %d unclosed element(s) at Done", len(b.stack))
	}
	if len(b.post) == 0 {
		return nil, errors.New("doc: no content")
	}
	d := &Document{
		post:   b.post,
		level:  b.level,
		kind:   b.kind,
		name:   b.name,
		parent: b.parent,
		value:  b.value,
		names:  b.names,
		height: b.height,
	}
	return d, nil
}
