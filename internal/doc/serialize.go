package doc

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Serialize writes the subtree rooted at node root back out as XML.
// Serializing Root() round-trips the whole document (modulo whitespace
// dropped at shred time); serialization of documents built without
// values emits empty text/attribute content.
//
// Serialize demonstrates that the pre/post encoding is a lossless
// document store, not just an index: the single pre-ordered scan plus
// level information suffices to reconstruct the tree.
func (d *Document) Serialize(w io.Writer, root int32) error {
	if root < 0 || int(root) >= d.Size() {
		return fmt.Errorf("doc: serialize root %d out of range", root)
	}
	end := root + d.SubtreeSize(root)
	// Stack of currently open element pres.
	var open []int32
	closeTo := func(parent int32) error {
		for len(open) > 0 && open[len(open)-1] != parent {
			top := open[len(open)-1]
			open = open[:len(open)-1]
			if d.kind[top] == VRoot {
				continue
			}
			if _, err := fmt.Fprintf(w, "</%s>", d.Name(top)); err != nil {
				return err
			}
		}
		return nil
	}
	for v := root; v <= end; v++ {
		if d.kind[v] == Attr {
			continue // handled with the owner element
		}
		if v != root {
			if err := closeTo(d.parent[v]); err != nil {
				return err
			}
		}
		switch d.kind[v] {
		case Elem:
			if _, err := fmt.Fprintf(w, "<%s", d.Name(v)); err != nil {
				return err
			}
			for _, a := range d.Attributes(v) {
				if _, err := fmt.Fprintf(w, " %s=%q", d.Name(a), d.Value(a)); err != nil {
					return err
				}
			}
			if d.SubtreeSize(v) == int32(len(d.Attributes(v))) {
				// No non-attribute content: self-close.
				if _, err := io.WriteString(w, "/>"); err != nil {
					return err
				}
			} else {
				if _, err := io.WriteString(w, ">"); err != nil {
					return err
				}
				open = append(open, v)
			}
		case Text:
			if err := xml.EscapeText(w, []byte(d.Value(v))); err != nil {
				return err
			}
		case Comment:
			if _, err := fmt.Fprintf(w, "<!--%s-->", d.Value(v)); err != nil {
				return err
			}
		case PI:
			if _, err := fmt.Fprintf(w, "<?%s %s?>", d.Name(v), d.Value(v)); err != nil {
				return err
			}
		case VRoot:
			open = append(open, v)
		}
	}
	return closeTo(NoParent)
}

// XML returns the serialized subtree rooted at root as a string.
func (d *Document) XML(root int32) string {
	var sb strings.Builder
	if err := d.Serialize(&sb, root); err != nil {
		return "<!-- serialize error: " + err.Error() + " -->"
	}
	return sb.String()
}
