package doc

import (
	"testing"
)

func TestBATViewsShareStorage(t *testing.T) {
	d := figure1(t)
	post := d.PostBAT()
	if post.Len() != d.Size() || !post.Head().IsVoid() {
		t.Fatalf("PostBAT = %v", post)
	}
	for pre := 0; pre < d.Size(); pre++ {
		if post.Tail().Int(pre) != d.Post(int32(pre)) {
			t.Fatalf("PostBAT[%d] = %d", pre, post.Tail().Int(pre))
		}
	}
	lvl := d.LevelBAT()
	if lvl.Tail().Int(0) != 0 {
		t.Fatal("LevelBAT root level wrong")
	}
	nm := d.NameBAT()
	if nm.Tail().Int(0) != d.NameID(0) {
		t.Fatal("NameBAT wrong")
	}
	par := d.ParentBAT()
	if par.Tail().Int(1) != 0 {
		t.Fatal("ParentBAT wrong")
	}
}

func TestStringValue(t *testing.T) {
	d, err := ShredString(`<a x="attr"><b>one</b>mid<b>two</b><!--c--></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.StringValue(0); got != "onemidtwo" {
		t.Fatalf("StringValue(root) = %q", got)
	}
	// Attribute node.
	attr := d.Attributes(0)[0]
	if got := d.StringValue(attr); got != "attr" {
		t.Fatalf("StringValue(attr) = %q", got)
	}
	// Text node.
	var text int32 = -1
	for v := int32(0); int(v) < d.Size(); v++ {
		if d.KindOf(v) == Text && d.Value(v) == "mid" {
			text = v
		}
	}
	if got := d.StringValue(text); got != "mid" {
		t.Fatalf("StringValue(text) = %q", got)
	}
	// Without values: empty.
	b := NewBuilder(WithoutValues())
	b.OpenElem("a")
	b.Text("x")
	b.CloseElem()
	d2, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	if d2.StringValue(0) != "" {
		t.Fatal("StringValue without values should be empty")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fresh := func(t *testing.T) *Document { return figure1(t) }

	d := fresh(t)
	d.post[3] = d.post[4] // duplicate post rank
	if err := d.Validate(); err == nil {
		t.Error("duplicate post rank not caught")
	}

	d = fresh(t)
	d.post[3] = 99 // out of range
	if err := d.Validate(); err == nil {
		t.Error("out-of-range post not caught")
	}

	d = fresh(t)
	d.level[5] = 9 // inconsistent with parent
	if err := d.Validate(); err == nil {
		t.Error("level mismatch not caught")
	}

	d = fresh(t)
	d.parent[4] = 7 // parent after child
	if err := d.Validate(); err == nil {
		t.Error("forward parent not caught")
	}

	d = fresh(t)
	d.parent[0] = 3 // root with parent
	if err := d.Validate(); err == nil {
		t.Error("root parent not caught")
	}
}

func TestSubtreeTextAndLeaves(t *testing.T) {
	d := figure1(t)
	// Kind and name slices are exposed for operator loops.
	if len(d.KindSlice()) != d.Size() || len(d.NameSlice()) != d.Size() ||
		len(d.LevelSlice()) != d.Size() || len(d.ParentSlice()) != d.Size() ||
		len(d.PostSlice()) != d.Size() {
		t.Fatal("slice views wrong length")
	}
	if d.HasValues() != true {
		t.Fatal("figure1 should retain values")
	}
}
