package doc

import "staircase/internal/bat"

// Dict interns tag and attribute names, mapping each distinct name to a
// dense int32 id. Bulk node data stores ids only; the dictionary is the
// single place holding the strings (mirroring Monet's string-dictionary
// BATs).
type Dict struct {
	ids   map[string]int32
	names []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]int32)}
}

// Intern returns the id for name, assigning the next free id on first
// encounter.
func (d *Dict) Intern(name string) int32 {
	if id, ok := d.ids[name]; ok {
		return id
	}
	id := int32(len(d.names))
	d.ids[name] = id
	d.names = append(d.names, name)
	return id
}

// Lookup returns the id for name and whether it is present. Unlike
// Intern it never mutates the dictionary, so it is safe on shared
// documents.
func (d *Dict) Lookup(name string) (int32, bool) {
	id, ok := d.ids[name]
	return id, ok
}

// Name returns the name with the given id.
func (d *Dict) Name(id int32) string { return d.names[id] }

// Len returns the number of distinct interned names.
func (d *Dict) Len() int { return len(d.names) }

// BAT returns the [id(void)|name] dictionary as a BAT view.
func (d *Dict) BAT() bat.BAT {
	return bat.New(bat.NewVoid(0, len(d.names)), bat.NewStr(d.names))
}
