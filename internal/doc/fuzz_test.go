package doc

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// fuzzSeedDocs builds representative documents for the fuzz corpus:
// with and without values, single documents and collections.
func fuzzSeedDocs(f *testing.F) [][]byte {
	f.Helper()
	const xmlA = `<site><people><person id="p0"><profile><education>High School</education>` +
		`<interest category="c1"/></profile></person><person id="p1"/></people>` +
		`<!-- comment --><?pi data?></site>`
	const xmlB = `<a><b><c>text</c></b><b/></a>`
	var seeds [][]byte
	add := func(d *Document) {
		// Seed both format versions: v2 with the index section and the
		// legacy v1 layout, so the fuzzer explores both parse paths.
		var buf bytes.Buffer
		if err := d.WriteBinary(&buf); err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, buf.Bytes())
		var v1 bytes.Buffer
		if err := d.WriteBinaryV1(&v1); err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, v1.Bytes())
	}
	da, err := Shred(strings.NewReader(xmlA))
	if err != nil {
		f.Fatal(err)
	}
	add(da)
	db, err := Shred(strings.NewReader(xmlB), ShredWithoutValues())
	if err != nil {
		f.Fatal(err)
	}
	add(db)
	dc, err := ShredCollection([]io.Reader{strings.NewReader(xmlA), strings.NewReader(xmlB)})
	if err != nil {
		f.Fatal(err)
	}
	add(dc)
	return seeds
}

// FuzzReadBinary asserts that ReadBinary on arbitrary bytes (either
// format version) either fails with an error or yields a fully valid
// document that round-trips bit-identically through WriteBinary — i.e.
// corrupt input can never produce a document whose accessors panic,
// and the binary format has one canonical v2 encoding per document. A
// v2 input additionally carries an index section, which must agree
// exactly with the kind/name columns to be accepted.
func FuzzReadBinary(f *testing.F) {
	seeds := fuzzSeedDocs(f)
	for _, s := range seeds {
		f.Add(s)
		// Truncations and single-byte corruptions of valid encodings
		// steer the fuzzer toward the interesting failure surface.
		f.Add(s[:len(s)/2])
		if len(s) > 40 {
			mut := bytes.Clone(s)
			mut[24] ^= 0xff
			f.Add(mut)
		}
		// The index and value-index sections sit at the tail of v2
		// encodings: seed truncations and flips landing inside them
		// (value-bearing v2 seeds carry both sections).
		if len(s) > 40 {
			f.Add(s[:len(s)-7])
			mut := bytes.Clone(s)
			mut[len(s)-9] ^= 0xff
			f.Add(mut)
			mut2 := bytes.Clone(s)
			mut2[len(s)-2] ^= 0x01
			f.Add(mut2)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		// Accepted documents must be internally consistent...
		if err := d.Validate(); err != nil {
			t.Fatalf("ReadBinary accepted an invalid document: %v", err)
		}
		// ...and every accessor that indexes by column value must be
		// exercisable without panicking.
		for v := int32(0); int(v) < d.Size(); v++ {
			_ = d.Name(v)
			_ = d.Value(v)
			_ = d.KindOf(v)
			_ = d.SubtreeSize(v)
		}
		// Round-trip: write and re-read, byte-identical encoding.
		var buf bytes.Buffer
		if err := d.WriteBinary(&buf); err != nil {
			t.Fatalf("WriteBinary of accepted document: %v", err)
		}
		d2, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of written document: %v", err)
		}
		var buf2 bytes.Buffer
		if err := d2.WriteBinary(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("round-trip changed the encoding")
		}
	})
}
