package doc

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	inputs := []string{
		figure1XML,
		`<r id="1" x="y"><c a="b">text</c><!--note--><?pi data?></r>`,
	}
	for _, in := range inputs {
		d1, err := ShredString(in)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := d1.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		d2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if d1.Size() != d2.Size() || d1.Height() != d2.Height() {
			t.Fatalf("size/height mismatch for %q", in)
		}
		for v := int32(0); int(v) < d1.Size(); v++ {
			if d1.Post(v) != d2.Post(v) || d1.Level(v) != d2.Level(v) ||
				d1.KindOf(v) != d2.KindOf(v) || d1.Name(v) != d2.Name(v) ||
				d1.Parent(v) != d2.Parent(v) || d1.Value(v) != d2.Value(v) {
				t.Fatalf("node %d differs for %q", v, in)
			}
		}
	}
}

func TestBinaryRoundTripWithoutValues(t *testing.T) {
	b := NewBuilder(WithoutValues())
	b.OpenElem("a")
	b.Text("dropped")
	b.CloseElem()
	d1, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d1.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.HasValues() {
		t.Fatal("values flag should not survive")
	}
}

func TestBinaryRoundTripRandomDocs(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 10; trial++ {
		d1 := genRandomDoc(rng, 300)
		var buf bytes.Buffer
		if err := d1.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		d2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for v := int32(0); int(v) < d1.Size(); v++ {
			if d1.Post(v) != d2.Post(v) || d1.Name(v) != d2.Name(v) {
				t.Fatalf("trial %d node %d differs", trial, v)
			}
		}
	}
}

func TestBinaryV1StillLoads(t *testing.T) {
	d1, err := ShredString(figure1XML)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d1.WriteBinaryV1(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[:4]; string(got) != "SCJ1" {
		t.Fatalf("v1 magic = %q", got)
	}
	d2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.IndexBuilt() {
		t.Fatal("v1 file must not arrive with a persisted index")
	}
	// The index builds lazily and matches the v2-persisted one.
	ix := d2.TagIndex()
	if !d2.IndexBuilt() || ix.Entries() != int64(d2.Size()) {
		t.Fatalf("lazy index covers %d of %d nodes", ix.Entries(), d2.Size())
	}
	for v := int32(0); int(v) < d1.Size(); v++ {
		if d1.Post(v) != d2.Post(v) || d1.Name(v) != d2.Name(v) || d1.Value(v) != d2.Value(v) {
			t.Fatalf("node %d differs after v1 round trip", v)
		}
	}
}

func TestBinaryV2CarriesIndex(t *testing.T) {
	d1, err := ShredString(figure1XML)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d1.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[:4]; string(got) != "SCJ2" {
		t.Fatalf("v2 magic = %q", got)
	}
	d2, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !d2.IndexBuilt() {
		t.Fatal("v2 file must arrive with the index attached")
	}
	want, got := d1.TagIndex(), d2.TagIndex()
	if want.NumTags() != got.NumTags() || want.Entries() != got.Entries() {
		t.Fatalf("persisted index shape differs: %d/%d tags, %d/%d entries",
			got.NumTags(), want.NumTags(), got.Entries(), want.Entries())
	}
	for id := 0; id < want.NumTags(); id++ {
		w, g := want.Tag(int32(id)), got.Tag(int32(id))
		if len(w) != len(g) {
			t.Fatalf("tag %d: %d vs %d entries", id, len(g), len(w))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("tag %d entry %d differs", id, i)
			}
		}
	}
	if d2.IndexBytes() == 0 {
		t.Fatal("IndexBytes of a loaded v2 document must be non-zero")
	}
}

func TestBinaryV2CarriesValueIndex(t *testing.T) {
	d1, err := ShredString(figure1XML)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d1.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if !d1.ValueIndexBuilt() {
		t.Fatal("WriteBinary must build the value index it persists")
	}
	d2, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !d2.ValueIndexBuilt() {
		t.Fatal("v2 file of a value-bearing document must arrive with the value index attached")
	}
	want, got := d1.ValueIndex(), d2.ValueIndex()
	if want.Entries() != got.Entries() || want.NumValues() != got.NumValues() {
		t.Fatalf("persisted value index shape differs: %d/%d entries, %d/%d values",
			got.Entries(), want.Entries(), got.NumValues(), want.NumValues())
	}
	if got.Entries() != int64(d2.Size()) {
		t.Fatalf("value index covers %d of %d nodes", got.Entries(), d2.Size())
	}
	if d2.ValueIndexBytes() == 0 {
		t.Fatal("ValueIndexBytes of a loaded v2 document must be non-zero")
	}
	// A v1 file has no section; the value index builds lazily.
	var v1 bytes.Buffer
	if err := d1.WriteBinaryV1(&v1); err != nil {
		t.Fatal(err)
	}
	d3, err := ReadBinary(&v1)
	if err != nil {
		t.Fatal(err)
	}
	if d3.ValueIndexBuilt() {
		t.Fatal("v1 file must not arrive with a value index")
	}
	if ix := d3.ValueIndex(); ix == nil || ix.Entries() != int64(d3.Size()) {
		t.Fatal("lazy value index incomplete")
	}
}

func TestValueIndexNilWithoutValues(t *testing.T) {
	b := NewBuilder(WithoutValues())
	b.OpenElem("a")
	b.Text("dropped")
	b.CloseElem()
	d, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	if d.ValueIndex() != nil {
		t.Fatal("ValueIndex must be nil for documents built without values")
	}
	var buf bytes.Buffer
	if err := d.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.ValueIndexBuilt() || d2.ValueIndex() != nil {
		t.Fatal("value-less v2 file must not carry a value index")
	}
}

func TestReadBinaryRejectsCorruptIndexSection(t *testing.T) {
	d, err := ShredString(figure1XML)
	if err != nil {
		t.Fatal(err)
	}
	var v1, v2 bytes.Buffer
	if err := d.WriteBinaryV1(&v1); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBinary(&v2); err != nil {
		t.Fatal(err)
	}
	// Everything past the shared payload is the index section; corrupt
	// every byte of it in turn. Either the read errors, or (if the flip
	// happens to produce another canonical section — it cannot, but the
	// property we rely on is the error) it must not panic.
	sectionStart := v1.Len() // same payload length up to the section
	raw := v2.Bytes()
	for i := sectionStart; i < len(raw); i++ {
		mut := bytes.Clone(raw)
		mut[i] ^= 0x01
		if _, err := ReadBinary(bytes.NewReader(mut)); err == nil {
			t.Fatalf("corrupt index byte %d accepted", i)
		}
	}
	// Truncations inside the index section must also error.
	for cut := sectionStart; cut < len(raw); cut++ {
		if _, err := ReadBinary(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncated index section at %d accepted", cut)
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("SCJ1"), // truncated header
		append([]byte("SCJ1"), make([]byte, 12)...), // zero nodes
	}
	for i, in := range cases {
		if _, err := ReadBinary(bytes.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReadBinaryRejectsCorruptEncoding(t *testing.T) {
	d, err := ShredString(figure1XML)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt a post rank inside the column area; Validate must catch it.
	raw[20] ^= 0x55
	if _, err := ReadBinary(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected validation error on corrupt post column")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestEncodedBytesStorageClaim(t *testing.T) {
	// §4.1: "a document occupies only about 1.5× its size in Monet".
	// 13 bytes/node of structural encoding vs XML text that typically
	// weighs ≥ 9 bytes per node — sanity-check the accounting.
	d, err := ShredString(figure1XML)
	if err != nil {
		t.Fatal(err)
	}
	got := d.EncodedBytes()
	want := int64(10*17) + int64(len("abcdefghij")) + 10*4
	if got != want {
		t.Fatalf("EncodedBytes = %d, want %d", got, want)
	}
}
