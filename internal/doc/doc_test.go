package doc

import (
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// figure1XML is the 10-node document of Figure 1/2 of the paper:
//
//	a(b(c), d, e(f(g,h), i(j)))
//
// with the published encoding
//
//	pre : a0 b1 c2 d3 e4 f5 g6 h7 i8 j9
//	post: c0 b1 d2 g3 h4 f5 j6 i7 e8 a9
const figure1XML = `<a><b><c/></b><d/><e><f><g/><h/></f><i><j/></i></e></a>`

// figure1 returns the shredded paper example.
func figure1(t testing.TB) *Document {
	t.Helper()
	d, err := ShredString(figure1XML)
	if err != nil {
		t.Fatalf("shred figure 1: %v", err)
	}
	return d
}

// preOf resolves a tag of the figure-1 document to its preorder rank.
func preOf(t testing.TB, d *Document, tag string) int32 {
	t.Helper()
	for pre := 0; pre < d.Size(); pre++ {
		if d.Name(int32(pre)) == tag {
			return int32(pre)
		}
	}
	t.Fatalf("tag %q not found", tag)
	return -1
}

func TestFigure1Encoding(t *testing.T) {
	d := figure1(t)
	if d.Size() != 10 {
		t.Fatalf("size = %d, want 10", d.Size())
	}
	wantPost := map[string]int32{
		"a": 9, "b": 1, "c": 0, "d": 2, "e": 8,
		"f": 5, "g": 3, "h": 4, "i": 7, "j": 6,
	}
	wantPre := map[string]int32{
		"a": 0, "b": 1, "c": 2, "d": 3, "e": 4,
		"f": 5, "g": 6, "h": 7, "i": 8, "j": 9,
	}
	for tag, wp := range wantPost {
		pre := preOf(t, d, tag)
		if pre != wantPre[tag] {
			t.Errorf("pre(%s) = %d, want %d", tag, pre, wantPre[tag])
		}
		if got := d.Post(pre); got != wp {
			t.Errorf("post(%s) = %d, want %d", tag, got, wp)
		}
	}
	if d.Height() != 3 {
		t.Errorf("height = %d, want 3", d.Height())
	}
}

func TestFigure1Levels(t *testing.T) {
	d := figure1(t)
	want := map[string]int32{
		"a": 0, "b": 1, "c": 2, "d": 1, "e": 1,
		"f": 2, "g": 3, "h": 3, "i": 2, "j": 3,
	}
	for tag, wl := range want {
		if got := d.Level(preOf(t, d, tag)); got != wl {
			t.Errorf("level(%s) = %d, want %d", tag, got, wl)
		}
	}
}

func TestFigure1Equation1Exact(t *testing.T) {
	d := figure1(t)
	// |descendant(v)| = post(v) - pre(v) + level(v), exact (Equation 1).
	wantDesc := map[string]int32{
		"a": 9, "b": 1, "c": 0, "d": 0, "e": 5,
		"f": 2, "g": 0, "h": 0, "i": 1, "j": 0,
	}
	for tag, wd := range wantDesc {
		pre := preOf(t, d, tag)
		if got := d.SubtreeSize(pre); got != wd {
			t.Errorf("|desc(%s)| = %d, want %d", tag, got, wd)
		}
	}
}

func TestFigure1DescendantPredicate(t *testing.T) {
	d := figure1(t)
	f := preOf(t, d, "f")
	descOfF := map[string]bool{"g": true, "h": true}
	for tag := range map[string]int32{"a": 0, "b": 0, "c": 0, "d": 0, "e": 0, "g": 0, "h": 0, "i": 0, "j": 0} {
		got := d.IsDescendant(f, preOf(t, d, tag))
		if got != descOfF[tag] {
			t.Errorf("IsDescendant(f, %s) = %v, want %v", tag, got, descOfF[tag])
		}
	}
	// g/ancestor = (a, e, f) per the paper.
	g := preOf(t, d, "g")
	anc := map[string]bool{"a": true, "e": true, "f": true}
	for _, tag := range []string{"a", "b", "c", "d", "e", "f", "h", "i", "j"} {
		got := d.IsAncestor(g, preOf(t, d, tag))
		if got != anc[tag] {
			t.Errorf("IsAncestor(g, %s) = %v, want %v", tag, got, anc[tag])
		}
	}
}

func TestFigure1ParentsChildren(t *testing.T) {
	d := figure1(t)
	wantParent := map[string]string{
		"b": "a", "c": "b", "d": "a", "e": "a",
		"f": "e", "g": "f", "h": "f", "i": "e", "j": "i",
	}
	for c, p := range wantParent {
		if got := d.Parent(preOf(t, d, c)); got != preOf(t, d, p) {
			t.Errorf("parent(%s) = %d, want %s", c, got, p)
		}
	}
	if d.Parent(0) != NoParent {
		t.Error("root must have NoParent")
	}
	kids := d.Children(preOf(t, d, "e"))
	if len(kids) != 2 || d.Name(kids[0]) != "f" || d.Name(kids[1]) != "i" {
		t.Errorf("children(e) = %v", kids)
	}
	if sib := d.FollowingSibling(preOf(t, d, "f")); d.Name(sib) != "i" {
		t.Errorf("followingSibling(f) = %d", sib)
	}
	if sib := d.FollowingSibling(preOf(t, d, "i")); sib != -1 {
		t.Errorf("followingSibling(i) = %d, want -1", sib)
	}
	if sib := d.FollowingSibling(0); sib != -1 {
		t.Errorf("followingSibling(root) = %d, want -1", sib)
	}
}

func TestAttributesInPlane(t *testing.T) {
	d, err := ShredString(`<r id="1" x="y"><c a="b">t</c></r>`)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes: r, @id, @x, c, @a, text  => 6 nodes.
	if d.Size() != 6 {
		t.Fatalf("size = %d, want 6", d.Size())
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	attrs := d.Attributes(0)
	if len(attrs) != 2 || d.Name(attrs[0]) != "id" || d.Value(attrs[1]) != "y" {
		t.Fatalf("attributes(root) = %v", attrs)
	}
	// Attributes must not appear among children.
	kids := d.Children(0)
	if len(kids) != 1 || d.Name(kids[0]) != "c" {
		t.Fatalf("children(root) = %v", kids)
	}
	// Equation 1 must hold for attribute nodes too.
	for pre := int32(0); int(pre) < d.Size(); pre++ {
		want := int32(0)
		for v := int32(0); int(v) < d.Size(); v++ {
			if d.IsDescendant(pre, v) {
				want++
			}
		}
		if got := d.SubtreeSize(pre); got != want {
			t.Errorf("node %d (%s): Eq(1) size %d, want %d", pre, d.KindOf(pre), got, want)
		}
	}
}

func TestShredDropsWhitespaceByDefault(t *testing.T) {
	d, err := ShredString("<a>\n  <b/>\n</a>")
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 2 {
		t.Fatalf("size = %d, want 2 (whitespace dropped)", d.Size())
	}
	d2, err := ShredString("<a>\n  <b/>\n</a>", ShredKeepWhitespace())
	if err != nil {
		t.Fatal(err)
	}
	if d2.Size() != 4 {
		t.Fatalf("size = %d, want 4 (whitespace kept)", d2.Size())
	}
}

func TestShredCommentsAndPIs(t *testing.T) {
	d, err := ShredString(`<a><!--note--><?tgt data?><b/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 4 {
		t.Fatalf("size = %d, want 4", d.Size())
	}
	if d.KindOf(1) != Comment || d.Value(1) != "note" {
		t.Errorf("node 1 = %s %q", d.KindOf(1), d.Value(1))
	}
	if d.KindOf(2) != PI || d.Name(2) != "tgt" {
		t.Errorf("node 2 = %s %q", d.KindOf(2), d.Name(2))
	}
}

func TestShredRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		`<a><b></a></b>`, // mismatched nesting
		`<a>`,            // unclosed
		``,               // empty
		`<a/><b/>`,       // two roots without virtual root
	} {
		if _, err := ShredString(bad); err == nil {
			t.Errorf("ShredString(%q) succeeded, want error", bad)
		}
	}
}

func TestShredCollectionVirtualRoot(t *testing.T) {
	d, err := ShredCollection([]io.Reader{
		strings.NewReader(`<x><y/></x>`),
		strings.NewReader(`<p>q</p>`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.KindOf(0) != VRoot {
		t.Fatalf("node 0 kind = %s, want virtual-root", d.KindOf(0))
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	roots := d.Children(0)
	if len(roots) != 2 || d.Name(roots[0]) != "x" || d.Name(roots[1]) != "p" {
		t.Fatalf("collection roots = %v", roots)
	}
	// Document levels shift by one under the virtual root.
	if d.Level(roots[0]) != 1 {
		t.Errorf("level(x) = %d, want 1", d.Level(roots[0]))
	}
}

func TestBuilderWithoutValues(t *testing.T) {
	b := NewBuilder(WithoutValues())
	b.OpenElem("a")
	b.Attr("k", "v")
	b.Text("hello")
	b.CloseElem()
	d, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	if d.HasValues() {
		t.Fatal("HasValues should be false")
	}
	if d.Value(1) != "" || d.Value(2) != "" {
		t.Fatal("values must be empty when dropped")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestBuilderEventErrors(t *testing.T) {
	b := NewBuilder()
	b.OpenElem("a")
	b.Text("x")
	b.Attr("late", "1") // attribute after text: error
	if b.Err() == nil {
		t.Fatal("expected error for late attribute")
	}

	b2 := NewBuilder()
	b2.CloseElem()
	if b2.Err() == nil {
		t.Fatal("expected error for close without open")
	}

	b3 := NewBuilder()
	b3.Text("orphan")
	if b3.Err() == nil {
		t.Fatal("expected error for text outside element")
	}

	b4 := NewBuilder()
	b4.OpenElem("a")
	if _, err := b4.Done(); err == nil {
		t.Fatal("expected error for unclosed element")
	}
}

func TestSharedDict(t *testing.T) {
	dict := NewDict()
	d1, err := ShredString(`<a><b/></a>`, ShredWithDict(dict))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ShredString(`<b><a/></b>`, ShredWithDict(dict))
	if err != nil {
		t.Fatal(err)
	}
	id1, _ := d1.Names().Lookup("a")
	id2, _ := d2.Names().Lookup("a")
	if id1 != id2 {
		t.Fatalf("shared dict ids differ: %d vs %d", id1, id2)
	}
	if dict.Len() != 2 {
		t.Fatalf("dict size = %d, want 2", dict.Len())
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	inputs := []string{
		figure1XML,
		`<r id="1" x="y"><c a="b">text &amp; more</c><!--hey--><?pi data?></r>`,
		`<a><b>one</b>two<b>three</b></a>`,
	}
	for _, in := range inputs {
		d1, err := ShredString(in)
		if err != nil {
			t.Fatalf("shred %q: %v", in, err)
		}
		out := d1.XML(d1.Root())
		d2, err := ShredString(out)
		if err != nil {
			t.Fatalf("re-shred %q: %v", out, err)
		}
		if d1.Size() != d2.Size() {
			t.Fatalf("round trip size %d -> %d for %q -> %q", d1.Size(), d2.Size(), in, out)
		}
		for pre := int32(0); int(pre) < d1.Size(); pre++ {
			if d1.Post(pre) != d2.Post(pre) || d1.KindOf(pre) != d2.KindOf(pre) ||
				d1.Name(pre) != d2.Name(pre) || d1.Value(pre) != d2.Value(pre) {
				t.Fatalf("round trip mismatch at pre %d for %q -> %q", pre, in, out)
			}
		}
	}
}

func TestSerializeSubtree(t *testing.T) {
	d := figure1(t)
	e := preOf(t, d, "e")
	got := d.XML(e)
	want := `<e><f><g/><h/></f><i><j/></i></e>`
	if got != want {
		t.Fatalf("XML(e) = %q, want %q", got, want)
	}
}

// --- randomized structural testing ---------------------------------------

// genRandomDoc builds a random document with n element/text nodes using
// the deterministic source rng. It exercises deep nesting and wide
// fanout alike.
func genRandomDoc(rng *rand.Rand, n int) *Document {
	b := NewBuilder()
	tags := []string{"r", "s", "t", "u", "v"}
	b.OpenElem("root")
	depth := 1
	for i := 0; i < n; i++ {
		switch r := rng.Intn(10); {
		case r < 5: // open child
			b.OpenElem(tags[rng.Intn(len(tags))])
			if rng.Intn(3) == 0 {
				b.Attr("k", "v")
			}
			depth++
		case r < 7 && depth > 1: // close
			b.CloseElem()
			depth--
		default:
			b.Text("txt")
		}
	}
	for depth > 0 {
		b.CloseElem()
		depth--
	}
	d, err := b.Done()
	if err != nil {
		panic(err)
	}
	return d
}

func TestPropRandomDocsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		d := genRandomDoc(rng, 200)
		if err := d.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPropEquation1ExactOnRandomDocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		d := genRandomDoc(rng, 150)
		for pre := int32(0); int(pre) < d.Size(); pre++ {
			var want int32
			for v := int32(0); int(v) < d.Size(); v++ {
				if d.IsDescendant(pre, v) {
					want++
				}
			}
			if got := d.SubtreeSize(pre); got != want {
				t.Fatalf("trial %d node %d: Eq(1) = %d, want %d", trial, pre, got, want)
			}
		}
	}
}

func TestPropFourAxesPartitionPlane(t *testing.T) {
	// The context node plus its preceding/descendant/ancestor/following
	// regions cover all document nodes exactly once (Figure 1).
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		d := genRandomDoc(rng, 120)
		c := int32(rng.Intn(d.Size()))
		for v := int32(0); int(v) < d.Size(); v++ {
			inDesc := d.IsDescendant(c, v)
			inAnc := d.IsAncestor(c, v)
			inPrec := v < c && d.Post(v) < d.Post(c)
			inFoll := v > c && d.Post(v) > d.Post(c)
			count := 0
			for _, in := range []bool{inDesc, inAnc, inPrec, inFoll, v == c} {
				if in {
					count++
				}
			}
			if count != 1 {
				t.Fatalf("trial %d: node %d in %d regions of context %d", trial, v, count, c)
			}
		}
	}
}

func TestPropRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d1 := genRandomDoc(rng, 60)
		out := d1.XML(d1.Root())
		d2, err := ShredString(out)
		if err != nil || d1.Size() != d2.Size() {
			return false
		}
		for pre := int32(0); int(pre) < d1.Size(); pre++ {
			if d1.Post(pre) != d2.Post(pre) || d1.Level(pre) != d2.Level(pre) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDictBasics(t *testing.T) {
	d := NewDict()
	a := d.Intern("alpha")
	b := d.Intern("beta")
	if a == b {
		t.Fatal("distinct names share an id")
	}
	if d.Intern("alpha") != a {
		t.Fatal("re-intern changed id")
	}
	if d.Name(a) != "alpha" || d.Name(b) != "beta" {
		t.Fatal("Name lookup broken")
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Fatal("Lookup invented a name")
	}
	if d.BAT().Len() != 2 {
		t.Fatal("dict BAT wrong size")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Elem: "element", Attr: "attribute", Text: "text",
		Comment: "comment", PI: "processing-instruction", VRoot: "virtual-root",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
