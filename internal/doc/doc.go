// Package doc implements the XPath accelerator document store of
// Grust (SIGMOD 2002), the XML encoding the staircase join operates on.
//
// Every node v of an XML document is mapped to the pair
//
//	v  ->  <pre(v), post(v)>
//
// of its preorder and postorder traversal ranks, placing it on the
// two-dimensional pre/post plane (Figure 2 of the staircase join paper).
// The store additionally records level (root depth), node kind, tag name
// (interned) and parent, giving a group of BAT-style columns all indexed
// positionally by pre: the pre column itself is virtual (void), exactly
// as in the paper's Monet implementation (§4.1).
//
// Attribute nodes participate in the plane with their own pre/post ranks
// (visited as the first children of their owner element) but carry a
// distinct kind so that axis steps can filter them out, following the
// paper's "note on attributes" in §3.
//
// The encoding satisfies, for all nodes u, v (property-tested):
//
//	v ∈ descendant(u)  ⇔  pre(u) < pre(v) ∧ post(v) < post(u)
//	|descendant(v)| = post(v) − pre(v) + level(v)      (Equation 1, exact)
//	level(v) ≤ Height()                                (h, small constant)
package doc

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"staircase/internal/bat"
	"staircase/internal/index"
	"staircase/internal/vindex"
)

// Kind classifies a node in the pre/post plane.
type Kind uint8

const (
	// Elem is an XML element node.
	Elem Kind = iota
	// Attr is an attribute node. Attributes live in the plane but are
	// filtered from the result of every axis except `attribute`.
	Attr
	// Text is a text (character data) node.
	Text
	// Comment is an XML comment node.
	Comment
	// PI is a processing-instruction node.
	PI
	// VRoot is the virtual root installed above multi-document
	// collections (footnote 1 of the paper).
	VRoot
)

// String returns the XPath-ish name of the node kind.
func (k Kind) String() string {
	switch k {
	case Elem:
		return "element"
	case Attr:
		return "attribute"
	case Text:
		return "text"
	case Comment:
		return "comment"
	case PI:
		return "processing-instruction"
	case VRoot:
		return "virtual-root"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// NoName is the name id carried by unnamed nodes (text, comment, vroot).
const NoName int32 = -1

// NoParent is the parent rank carried by the root node.
const NoParent int32 = -1

// Document is a pre/post encoded XML document (or document collection
// under a virtual root). All per-node columns are indexed by preorder
// rank; the pre column itself is never stored (void column).
//
// A Document is immutable after construction; it is safe for concurrent
// readers.
type Document struct {
	post   []int32  // postorder rank, by pre
	level  []int32  // root distance, by pre
	kind   []Kind   // node kind, by pre
	name   []int32  // interned tag/attribute name id, NoName if unnamed
	parent []int32  // parent's pre, NoParent for the root
	value  []string // text/attr/comment/PI content; nil if not retained

	names  *Dict
	height int32 // h: max level, computed at load time (§2.1 footnote 3)

	// idx is the shared tag/kind node index (internal/index), built at
	// most once per document and immutable afterwards. idxMu only
	// serialises the build; readers go through the atomic pointer.
	idxMu sync.Mutex
	idx   atomic.Pointer[index.Index]

	// vidx is the shared value index (internal/vindex), following the
	// same build-once/read-lock-free discipline. Only value-bearing
	// documents carry one.
	vidxMu sync.Mutex
	vidx   atomic.Pointer[vindex.Index]
}

// NumKinds is the number of node kind values, the kind-list count of
// the tag/kind index and the SCJ2 index section.
const NumKinds = int(VRoot) + 1

// TagIndex returns the document's tag/kind node index: for each
// interned name the pre-sorted list of elements carrying it, and for
// each non-element kind the pre-sorted list of nodes of that kind,
// with exact counts and pre spans. The index is built at most once per
// document (documents loaded from an SCJ2 file arrive with it already
// attached) and shared lock-free by every engine over the document.
func (d *Document) TagIndex() *index.Index {
	if ix := d.idx.Load(); ix != nil {
		return ix
	}
	d.idxMu.Lock()
	defer d.idxMu.Unlock()
	if ix := d.idx.Load(); ix != nil {
		return ix
	}
	ix := index.Build(d.kind, d.name, d.names.Len(), NumKinds, Elem)
	d.idx.Store(ix)
	return ix
}

// IndexBuilt reports whether the tag/kind index has been built (or
// loaded) yet, without triggering a build.
func (d *Document) IndexBuilt() bool { return d.idx.Load() != nil }

// IndexBytes returns the in-memory footprint of the tag/kind index, 0
// if it has not been built yet. The catalog charges this against its
// residency budget alongside EncodedBytes.
func (d *Document) IndexBytes() int64 {
	if ix := d.idx.Load(); ix != nil {
		return ix.Bytes()
	}
	return 0
}

// ValueIndex returns the document's value index: every node's XPath
// string value mapped to its pre-sorted node list, with a derived
// numeric partition and an overflow list for values longer than
// vindex.MaxKeyLen (see internal/vindex). Like TagIndex it is built at
// most once per document (documents loaded from an SCJ2 file with a
// value section arrive with it attached) and shared lock-free by every
// engine over the document. Documents built without values return nil
// — callers fall back to per-node evaluation.
func (d *Document) ValueIndex() *vindex.Index {
	if d.value == nil {
		return nil
	}
	if ix := d.vidx.Load(); ix != nil {
		return ix
	}
	d.vidxMu.Lock()
	defer d.vidxMu.Unlock()
	if ix := d.vidx.Load(); ix != nil {
		return ix
	}
	ix := d.buildValueIndex()
	d.vidx.Store(ix)
	return ix
}

// buildValueIndex runs the document pass feeding the value index:
// every node, in pre order, keyed by its bounded string value.
func (d *Document) buildValueIndex() *vindex.Index {
	var b vindex.Builder
	for pre := range d.post {
		if s, ok := d.boundedStringValue(int32(pre)); ok {
			b.Add(int32(pre), s)
		} else {
			b.AddOverflow(int32(pre))
		}
	}
	return b.Build(len(d.post))
}

// boundedStringValue returns the node's XPath string value when it is
// at most vindex.MaxKeyLen bytes, or ("", false) when longer — element
// text concatenation stops at the cap, so a huge container element
// costs O(MaxKeyLen), not a copy of its subtree text.
func (d *Document) boundedStringValue(pre int32) (string, bool) {
	switch d.kind[pre] {
	case Text, Attr, Comment, PI:
		v := d.value[pre]
		if len(v) > vindex.MaxKeyLen {
			return "", false
		}
		return v, true
	default:
		var sb strings.Builder
		end := pre + d.SubtreeSize(pre)
		for v := pre + 1; v <= end; v++ {
			if d.kind[v] == Text {
				sb.WriteString(d.value[v])
				if sb.Len() > vindex.MaxKeyLen {
					return "", false
				}
			}
		}
		return sb.String(), true
	}
}

// RebuildValueIndex builds a fresh value index from the document's
// values without consulting or updating the shared cached one — the
// benchmarking hook for measuring construction cost (the tag/kind
// analogue times index.Build directly, but the value pass needs the
// private value column). Returns nil when values were dropped.
func (d *Document) RebuildValueIndex() *vindex.Index {
	if d.value == nil {
		return nil
	}
	return d.buildValueIndex()
}

// ValueIndexBuilt reports whether the value index has been built (or
// loaded) yet, without triggering a build.
func (d *Document) ValueIndexBuilt() bool { return d.vidx.Load() != nil }

// ValueIndexBytes returns the in-memory footprint of the value index,
// 0 if it has not been built. The catalog charges this against its
// residency budget alongside EncodedBytes and IndexBytes.
func (d *Document) ValueIndexBytes() int64 {
	if ix := d.vidx.Load(); ix != nil {
		return ix.Bytes()
	}
	return 0
}

// Size returns the number of nodes in the document (elements,
// attributes, text, comments, PIs, and the virtual root if present).
func (d *Document) Size() int { return len(d.post) }

// Height returns h, the height of the document tree (maximum level).
// The paper computes h at document loading time and reports h ≈ 10 for
// typical real-world XML.
func (d *Document) Height() int32 { return d.height }

// Names returns the tag/attribute name dictionary.
func (d *Document) Names() *Dict { return d.names }

// HasValues reports whether node string values were retained at build
// time (builders may drop them to save memory in large benchmarks).
func (d *Document) HasValues() bool { return d.value != nil }

// Post returns post(v) for the node with preorder rank pre.
func (d *Document) Post(pre int32) int32 { return d.post[pre] }

// Level returns level(v), the length of the path from the root.
func (d *Document) Level(pre int32) int32 { return d.level[pre] }

// Kind returns the node kind.
func (d *Document) KindOf(pre int32) Kind { return d.kind[pre] }

// NameID returns the interned name id of the node (NoName if unnamed).
func (d *Document) NameID(pre int32) int32 { return d.name[pre] }

// Name returns the tag or attribute name of the node, "" if unnamed.
func (d *Document) Name(pre int32) string {
	id := d.name[pre]
	if id == NoName {
		return ""
	}
	return d.names.Name(id)
}

// Parent returns the preorder rank of the node's parent, NoParent for
// the root.
func (d *Document) Parent(pre int32) int32 { return d.parent[pre] }

// Value returns the string value of a text/attribute/comment/PI node.
// It returns "" for elements and for documents built without values.
func (d *Document) Value(pre int32) string {
	if d.value == nil {
		return ""
	}
	return d.value[pre]
}

// SubtreeSize returns |descendant(v)| for the node with preorder rank
// pre, using Equation (1) of the paper:
//
//	|descendant(v)| = post(v) − pre(v) + level(v)
//
// which is exact for this encoding (attributes count as descendants).
func (d *Document) SubtreeSize(pre int32) int32 {
	return d.post[pre] - pre + d.level[pre]
}

// Root returns the preorder rank of the document root (always 0).
func (d *Document) Root() int32 { return 0 }

// StringValue returns the XPath string value of a node: the node's own
// content for text/attribute/comment/PI nodes, and the concatenation of
// all descendant text for elements (and the virtual root). Documents
// built without values yield "".
func (d *Document) StringValue(pre int32) string {
	switch d.kind[pre] {
	case Text, Attr, Comment, PI:
		return d.Value(pre)
	default:
		if d.value == nil {
			return ""
		}
		var sb strings.Builder
		end := pre + d.SubtreeSize(pre)
		for v := pre + 1; v <= end; v++ {
			if d.kind[v] == Text {
				sb.WriteString(d.value[v])
			}
		}
		return sb.String()
	}
}

// IsDescendant reports whether node v is a proper descendant of node u,
// decided purely by plane coordinates (two integer comparisons).
func (d *Document) IsDescendant(u, v int32) bool {
	return u < v && d.post[v] < d.post[u]
}

// IsAncestor reports whether node v is a proper ancestor of node u.
func (d *Document) IsAncestor(u, v int32) bool { return d.IsDescendant(v, u) }

// PostSlice exposes the raw post column for tight operator loops
// (staircase join scans it sequentially). Callers must not modify it.
func (d *Document) PostSlice() []int32 { return d.post }

// LevelSlice exposes the raw level column. Callers must not modify it.
func (d *Document) LevelSlice() []int32 { return d.level }

// KindSlice exposes the raw kind column. Callers must not modify it.
func (d *Document) KindSlice() []Kind { return d.kind }

// NameSlice exposes the raw name-id column. Callers must not modify it.
func (d *Document) NameSlice() []int32 { return d.name }

// ParentSlice exposes the raw parent column. Callers must not modify it.
func (d *Document) ParentSlice() []int32 { return d.parent }

// PostBAT returns the [pre(void)|post] BAT view of the document — the
// doc table of the paper, sharing storage with the Document.
func (d *Document) PostBAT() bat.BAT {
	return bat.New(bat.NewVoid(0, len(d.post)), bat.NewInt(d.post))
}

// LevelBAT returns the [pre(void)|level] BAT view.
func (d *Document) LevelBAT() bat.BAT {
	return bat.New(bat.NewVoid(0, len(d.level)), bat.NewInt(d.level))
}

// NameBAT returns the [pre(void)|nameid] BAT view.
func (d *Document) NameBAT() bat.BAT {
	return bat.New(bat.NewVoid(0, len(d.name)), bat.NewInt(d.name))
}

// ParentBAT returns the [pre(void)|parent] BAT view.
func (d *Document) ParentBAT() bat.BAT {
	return bat.New(bat.NewVoid(0, len(d.parent)), bat.NewInt(d.parent))
}

// Children returns the preorder ranks of the children of v (attributes
// excluded), in document order. The scan walks the subtree of v and
// skips nested subtrees in O(#children + #attributes) using Equation (1)
// jumps.
func (d *Document) Children(v int32) []int32 {
	var out []int32
	end := v + d.SubtreeSize(v) // last descendant's pre
	for c := v + 1; c <= end; c += 1 + d.SubtreeSize(c) {
		if d.kind[c] != Attr {
			out = append(out, c)
		}
	}
	return out
}

// Attributes returns the preorder ranks of the attribute nodes of v in
// document order.
func (d *Document) Attributes(v int32) []int32 {
	var out []int32
	end := v + d.SubtreeSize(v)
	for c := v + 1; c <= end && d.kind[c] == Attr; c++ {
		out = append(out, c)
	}
	return out
}

// FollowingSibling returns the preorder rank of the next sibling of v,
// or -1 if v is the last child. O(1) via Equation (1).
func (d *Document) FollowingSibling(v int32) int32 {
	p := d.parent[v]
	if p == NoParent {
		return -1
	}
	next := v + 1 + d.SubtreeSize(v)
	if next >= int32(d.Size()) || d.parent[next] != p {
		return -1
	}
	return next
}

// Validate performs a full consistency check of the encoding (column
// lengths, rank ranges, Equation (1), parent/level agreement). Intended
// for tests and document-loading assertions; cost is O(n).
func (d *Document) Validate() error {
	n := len(d.post)
	if len(d.level) != n || len(d.kind) != n || len(d.name) != n || len(d.parent) != n {
		return fmt.Errorf("doc: column length mismatch")
	}
	if d.value != nil && len(d.value) != n {
		return fmt.Errorf("doc: value column length mismatch")
	}
	if n == 0 {
		return fmt.Errorf("doc: empty document")
	}
	seenPost := make([]bool, n)
	var maxLevel int32
	for pre := 0; pre < n; pre++ {
		if d.kind[pre] > VRoot {
			return fmt.Errorf("doc: node %d: invalid kind %d", pre, d.kind[pre])
		}
		if id := d.name[pre]; id < NoName || int(id) >= d.names.Len() && id != NoName {
			return fmt.Errorf("doc: node %d: name id %d outside dictionary (%d names)",
				pre, id, d.names.Len())
		}
		if l := d.level[pre]; l > maxLevel {
			maxLevel = l
		}
		post := d.post[pre]
		if post < 0 || int(post) >= n {
			return fmt.Errorf("doc: node %d: post rank %d out of range", pre, post)
		}
		if seenPost[post] {
			return fmt.Errorf("doc: duplicate post rank %d", post)
		}
		seenPost[post] = true
		p := d.parent[pre]
		switch {
		case pre == 0:
			if p != NoParent {
				return fmt.Errorf("doc: root has parent %d", p)
			}
			if d.level[0] != 0 {
				return fmt.Errorf("doc: root level %d != 0", d.level[0])
			}
		case p < 0 || p >= int32(pre):
			return fmt.Errorf("doc: node %d: bad parent %d", pre, p)
		default:
			if d.level[pre] != d.level[p]+1 {
				return fmt.Errorf("doc: node %d: level %d but parent level %d",
					pre, d.level[pre], d.level[p])
			}
			if !d.IsDescendant(p, int32(pre)) {
				return fmt.Errorf("doc: node %d not in plane region of parent %d", pre, p)
			}
		}
		if d.level[pre] > d.height {
			return fmt.Errorf("doc: node %d: level %d exceeds height %d", pre, d.level[pre], d.height)
		}
		// Equation (1) must be exact: recount descendants cheaply via
		// the pre interval [pre+1, pre+size].
		size := d.SubtreeSize(int32(pre))
		if size < 0 || int(size) > n-pre-1 {
			return fmt.Errorf("doc: node %d: subtree size %d out of range", pre, size)
		}
		if int(size) > 0 {
			last := int32(pre) + size
			if !d.IsDescendant(int32(pre), last) {
				return fmt.Errorf("doc: node %d: node %d not a descendant but inside size window", pre, last)
			}
			if int(last)+1 < n && d.IsDescendant(int32(pre), last+1) {
				return fmt.Errorf("doc: node %d: descendant %d outside size window", pre, last+1)
			}
		}
	}
	if maxLevel != d.height {
		return fmt.Errorf("doc: height %d but maximum level is %d", d.height, maxLevel)
	}
	return nil
}
