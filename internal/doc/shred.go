package doc

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// ShredOption configures Shred / ShredCollection.
type ShredOption func(*shredConfig)

type shredConfig struct {
	keepValues bool
	keepSpace  bool
	dict       *Dict
}

// ShredWithoutValues drops node string values during shredding.
func ShredWithoutValues() ShredOption {
	return func(c *shredConfig) { c.keepValues = false }
}

// ShredKeepWhitespace retains whitespace-only text nodes. By default
// they are dropped (the usual setting for data-centric XML such as the
// XMark documents of the paper's evaluation).
func ShredKeepWhitespace() ShredOption {
	return func(c *shredConfig) { c.keepSpace = true }
}

// ShredWithDict interns names into an existing dictionary.
func ShredWithDict(d *Dict) ShredOption {
	return func(c *shredConfig) { c.dict = d }
}

// Shred parses one XML document from r (stdlib encoding/xml) and loads
// it into the pre/post plane. This is the "document loading" step of the
// paper: the resulting table group is pre-sorted by construction and h
// is computed on the fly.
func Shred(r io.Reader, opts ...ShredOption) (*Document, error) {
	cfg := shredConfig{keepValues: true}
	for _, o := range opts {
		o(&cfg)
	}
	var bopts []BuilderOption
	if !cfg.keepValues {
		bopts = append(bopts, WithoutValues())
	}
	if cfg.dict != nil {
		bopts = append(bopts, WithDict(cfg.dict))
	}
	b := NewBuilder(bopts...)
	if err := feed(b, r, cfg); err != nil {
		return nil, err
	}
	return b.Done()
}

// ShredCollection parses several XML documents and gathers them under a
// virtual root node, so that a single plane (and a single B-tree, as the
// paper notes) serves the whole collection.
func ShredCollection(readers []io.Reader, opts ...ShredOption) (*Document, error) {
	cfg := shredConfig{keepValues: true}
	for _, o := range opts {
		o(&cfg)
	}
	bopts := []BuilderOption{WithVirtualRoot()}
	if !cfg.keepValues {
		bopts = append(bopts, WithoutValues())
	}
	if cfg.dict != nil {
		bopts = append(bopts, WithDict(cfg.dict))
	}
	b := NewBuilder(bopts...)
	for i, r := range readers {
		if err := feed(b, r, cfg); err != nil {
			return nil, fmt.Errorf("document %d: %w", i, err)
		}
	}
	return b.Done()
}

// ShredString is a convenience wrapper around Shred for literals/tests.
func ShredString(s string, opts ...ShredOption) (*Document, error) {
	return Shred(strings.NewReader(s), opts...)
}

// feed streams one document's tokens into the builder.
func feed(b *Builder, r io.Reader, cfg shredConfig) error {
	dec := xml.NewDecoder(r)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("doc: XML parse error: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			b.OpenElem(t.Name.Local)
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue // namespace declarations are not attribute nodes
				}
				b.Attr(a.Name.Local, a.Value)
			}
		case xml.EndElement:
			b.CloseElem()
		case xml.CharData:
			s := string(t)
			if !cfg.keepSpace && strings.TrimSpace(s) == "" {
				continue
			}
			b.Text(s)
		case xml.Comment:
			b.Comment(string(t))
		case xml.ProcInst:
			if t.Target == "xml" {
				continue // XML declaration, not a PI node
			}
			b.PI(t.Target, string(t.Inst))
		case xml.Directive:
			// DOCTYPE etc.: no node in the XPath data model.
		}
		if b.Err() != nil {
			return b.Err()
		}
	}
	return b.Err()
}
