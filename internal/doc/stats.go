package doc

import "sort"

// Stats summarises a document's structure. The query engine's cost
// model (name-test pushdown, §6 of the paper) and the xmlgen CLI use
// these numbers; they are computed in one pass.
type Stats struct {
	// Nodes is the total node count (== Size()).
	Nodes int
	// Per-kind counts.
	Elements, Attributes, Texts, Comments, PIs int
	// Height is the maximum level (h of Equation (1)).
	Height int32
	// AvgLevel is the mean node depth.
	AvgLevel float64
	// MaxFanout is the largest number of children (attributes
	// excluded) of any element.
	MaxFanout int
	// DistinctTags is the number of distinct element/attribute names.
	DistinctTags int
	// TagCounts maps element tag names to their element counts, the
	// selectivity table behind name-test pushdown decisions.
	TagCounts map[string]int
}

// ComputeStats builds the statistics in a single scan.
func (d *Document) ComputeStats() Stats {
	st := Stats{
		Nodes:        d.Size(),
		Height:       d.height,
		DistinctTags: d.names.Len(),
		TagCounts:    make(map[string]int),
	}
	fanout := make(map[int32]int)
	var levelSum int64
	for v := 0; v < d.Size(); v++ {
		levelSum += int64(d.level[v])
		switch d.kind[v] {
		case Elem:
			st.Elements++
			st.TagCounts[d.Name(int32(v))]++
			if p := d.parent[v]; p != NoParent {
				fanout[p]++
			}
		case Attr:
			st.Attributes++
		case Text:
			st.Texts++
			if p := d.parent[v]; p != NoParent {
				fanout[p]++
			}
		case Comment:
			st.Comments++
		case PI:
			st.PIs++
		}
	}
	for _, f := range fanout {
		if f > st.MaxFanout {
			st.MaxFanout = f
		}
	}
	if d.Size() > 0 {
		st.AvgLevel = float64(levelSum) / float64(d.Size())
	}
	return st
}

// TopTags returns the n most frequent element tags with their counts,
// most frequent first (ties broken alphabetically, deterministic).
func (s Stats) TopTags(n int) []TagCount {
	out := make([]TagCount, 0, len(s.TagCounts))
	for tag, c := range s.TagCounts {
		out = append(out, TagCount{tag, c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Tag < out[j].Tag
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// TagCount pairs a tag name with its occurrence count.
type TagCount struct {
	Tag   string
	Count int
}
