package share

// Deterministic pace-car protocol tests over a controllable fake
// cursor: mid-flight attachment replays identical bytes, cancellation
// hands the wheel to a live follower, backpressure bounds how far the
// driver runs ahead of a slow follower, and abandonment cancels the
// flight without retiring. CI runs this package with -race -count=5
// across a GOMAXPROCS matrix.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"staircase/internal/fault"
)

var errBoom = errors.New("boom")

// fakeCursor yields a fixed batch sequence. With a step channel every
// Next call (including the terminal nil one) first blocks for a token,
// so tests control exactly when the pace car may produce.
type fakeCursor struct {
	batches  [][]int32
	errAt    int // Next index returning errBoom; -1 = never
	step     <-chan struct{}
	i        int
	produced *atomic.Int64
	closed   *atomic.Bool
}

func (c *fakeCursor) Next() ([]int32, error) {
	if c.step != nil {
		<-c.step
	}
	if c.errAt >= 0 && c.i == c.errAt {
		return nil, errBoom
	}
	if c.i >= len(c.batches) {
		return nil, nil
	}
	b := c.batches[c.i]
	c.i++
	if c.produced != nil {
		c.produced.Add(1)
	}
	return b, nil
}

func (c *fakeCursor) Close() {
	if c.closed != nil {
		c.closed.Store(true)
	}
}

func mkBatches(n int) [][]int32 {
	out := make([][]int32, n)
	v := int32(0)
	for i := range out {
		b := make([]int32, 3)
		for j := range b {
			b[j] = v
			v++
		}
		out[i] = b
	}
	return out
}

func concat(batches [][]int32) []int32 {
	var out []int32
	for _, b := range batches {
		out = append(out, b...)
	}
	return out
}

func eq32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// drain pulls a follower to exhaustion and closes it.
func drain(t *testing.T, f *Follower) []int32 {
	t.Helper()
	defer f.Close()
	var out []int32
	for {
		b, err := f.Next(context.Background())
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
		if b == nil {
			return out
		}
		out = append(out, b...)
	}
}

func openFake(c *fakeCursor) OpenFunc {
	return func(context.Context) (Cursor, error) { return c, nil }
}

func TestSoloDrainRetiresIntoCache(t *testing.T) {
	r := NewRegistry(0, Hooks{})
	batches := mkBatches(5)
	var retired []int32
	retires := 0
	f, created := r.Join("k", 1, openFake(&fakeCursor{batches: batches, errAt: -1}),
		func(nodes []int32) { retired = nodes; retires++ })
	if !created {
		t.Fatal("first Join did not create the flight")
	}
	got := drain(t, f)
	want := concat(batches)
	if !eq32(got, want) {
		t.Fatalf("solo drain = %v, want %v", got, want)
	}
	if retires != 1 || !eq32(retired, want) {
		t.Fatalf("retire: called %d times with %v, want once with %v", retires, retired, want)
	}
	if n := r.InFlight(); n != 0 {
		t.Fatalf("flight not removed after completion: %d in flight", n)
	}
	created64, coalesced, handoffs := r.Stats()
	if created64 != 1 || coalesced != 0 || handoffs != 0 {
		t.Fatalf("stats = %d/%d/%d, want 1/0/0", created64, coalesced, handoffs)
	}
}

func TestFollowerMidFlightSeesIdenticalBytes(t *testing.T) {
	r := NewRegistry(0, Hooks{})
	batches := mkBatches(6)
	want := concat(batches)
	step := make(chan struct{})
	pace, created := r.Join("k", 1, openFake(&fakeCursor{batches: batches, errAt: -1, step: step}), nil)
	if !created {
		t.Fatal("expected creation")
	}

	paceBatches := make(chan []int32)
	paceOut := make(chan []int32, 1)
	go func() {
		var out []int32
		defer func() { pace.Close(); paceOut <- out }()
		for {
			b, err := pace.Next(context.Background())
			if err != nil || b == nil {
				return
			}
			out = append(out, b...)
			paceBatches <- b
		}
	}()

	// Let the pace car produce and consume exactly two batches.
	for i := 0; i < 2; i++ {
		step <- struct{}{}
		<-paceBatches
	}

	// A follower attaching now must replay those two batches
	// immediately — before the throttled cursor produces anything more.
	follower, created := r.Join("k", 1, nil, nil)
	if created {
		t.Fatal("second Join created a new flight instead of coalescing")
	}
	var replay []int32
	for i := 0; i < 2; i++ {
		b, err := follower.Next(context.Background())
		if err != nil {
			t.Fatalf("follower replay: %v", err)
		}
		replay = append(replay, b...)
	}
	if !eq32(replay, want[:6]) {
		t.Fatalf("mid-flight replay = %v, want %v", replay, want[:6])
	}

	// Release the rest of the stream (4 batches + the terminal nil).
	followerOut := make(chan []int32, 1)
	go func() {
		out := replay
		defer func() { follower.Close(); followerOut <- out }()
		for {
			b, err := follower.Next(context.Background())
			if err != nil || b == nil {
				return
			}
			out = append(out, b...)
		}
	}()
	go func() {
		for range paceBatches { // keep the pace car unblocked
		}
	}()
	for i := 0; i < len(batches)-2+1; i++ {
		step <- struct{}{}
	}
	gotPace := <-paceOut
	close(paceBatches)
	gotFollower := <-followerOut
	if !eq32(gotPace, want) {
		t.Fatalf("pace car saw %v, want %v", gotPace, want)
	}
	if !eq32(gotFollower, want) {
		t.Fatalf("follower saw %v, want %v", gotFollower, want)
	}
	if _, coalesced, _ := statsOf(r); coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1", coalesced)
	}
}

func statsOf(r *Registry) (int64, int64, int64) { return r.Stats() }

func TestPaceCarCancelPromotesFollower(t *testing.T) {
	r := NewRegistry(0, Hooks{})
	batches := mkBatches(4)
	want := concat(batches)
	cur := &fakeCursor{batches: batches, errAt: -1}
	ctx, cancel := context.WithCancel(context.Background())

	pace, _ := r.Join("k", 1, openFake(cur), nil)
	b, err := pace.Next(ctx)
	if err != nil || !eq32(b, batches[0]) {
		t.Fatalf("pace car first batch = %v, %v", b, err)
	}
	follower, created := r.Join("k", 1, nil, nil)
	if created {
		t.Fatal("follower did not coalesce")
	}

	// Cancel the pace car between batches: its next call must release
	// the wheel without touching the cursor.
	cancel()
	if _, err := pace.Next(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled pace car Next = %v, want context.Canceled", err)
	}
	pace.Close()

	// The follower replays batch 0, then takes over the same cursor.
	got := drain(t, follower)
	if !eq32(got, want) {
		t.Fatalf("promoted follower saw %v, want %v", got, want)
	}
	if _, _, handoffs := r.Stats(); handoffs != 1 {
		t.Fatalf("handoffs = %d, want 1", handoffs)
	}
	if n := r.InFlight(); n != 0 {
		t.Fatalf("flight not removed: %d in flight", n)
	}
}

func TestBackpressureBoundsDriverLag(t *testing.T) {
	const maxLag = 2
	r := NewRegistry(maxLag, Hooks{})
	batches := mkBatches(10)
	var produced atomic.Int64
	cur := &fakeCursor{batches: batches, errAt: -1, produced: &produced}

	pace, _ := r.Join("k", 1, openFake(cur), nil)
	slow, created := r.Join("k", 1, nil, nil)
	if created {
		t.Fatal("slow follower did not coalesce")
	}

	// The driver may produce maxLag batches ahead of the slow follower
	// (which has consumed nothing), then must park.
	for i := 0; i < maxLag; i++ {
		if _, err := pace.Next(context.Background()); err != nil {
			t.Fatalf("pace Next: %v", err)
		}
	}
	blocked := make(chan []int32, 1)
	go func() {
		b, _ := pace.Next(context.Background())
		blocked <- b
	}()
	select {
	case <-blocked:
		t.Fatalf("driver produced past the lag bound (%d batches produced)", produced.Load())
	case <-time.After(100 * time.Millisecond):
	}
	if n := produced.Load(); n != maxLag {
		t.Fatalf("cursor produced %d batches while parked, want %d", n, maxLag)
	}

	// One consume by the slow follower frees exactly one slot.
	if b, err := slow.Next(context.Background()); err != nil || !eq32(b, batches[0]) {
		t.Fatalf("slow follower batch = %v, %v", b, err)
	}
	select {
	case b := <-blocked:
		if !eq32(b, batches[maxLag]) {
			t.Fatalf("driver resumed with %v, want %v", b, batches[maxLag])
		}
	case <-time.After(2 * time.Second):
		t.Fatal("driver did not resume after the slow follower consumed")
	}

	// Full drains still agree byte-for-byte.
	var wg sync.WaitGroup
	outs := make([][]int32, 2)
	wg.Add(2)
	go func() { defer wg.Done(); outs[0] = append(concat(batches[:maxLag+1]), drain(t, pace)...) }()
	go func() { defer wg.Done(); outs[1] = append(concat(batches[:1]), drain(t, slow)...) }()
	wg.Wait()
	want := concat(batches)
	if !eq32(outs[0], want) || !eq32(outs[1], want) {
		t.Fatalf("drains diverged:\n pace %v\n slow %v\n want %v", outs[0], outs[1], want)
	}
}

func TestAbandonCancelsFlightAndSkipsRetire(t *testing.T) {
	r := NewRegistry(0, Hooks{})
	var closed atomic.Bool
	var flightCtx context.Context
	retired := false
	open := func(ctx context.Context) (Cursor, error) {
		flightCtx = ctx
		return &fakeCursor{batches: mkBatches(8), errAt: -1, closed: &closed}, nil
	}
	f, _ := r.Join("k", 1, open, func([]int32) { retired = true })
	if _, err := f.Next(context.Background()); err != nil {
		t.Fatalf("Next: %v", err)
	}
	f.Close()

	if n := r.InFlight(); n != 0 {
		t.Fatalf("abandoned flight still registered: %d in flight", n)
	}
	select {
	case <-flightCtx.Done():
	default:
		t.Fatal("flight context not cancelled on abandon")
	}
	if !closed.Load() {
		t.Fatal("cursor not closed on abandon")
	}
	if retired {
		t.Fatal("abandoned flight retired a partial buffer")
	}
	// The key is free again: the next client re-executes from scratch.
	if _, created := r.Join("k", 1, open, nil); !created {
		t.Fatal("Join after abandon coalesced onto a dead flight")
	}
}

func TestCursorErrorReachesEveryFollower(t *testing.T) {
	r := NewRegistry(0, Hooks{})
	batches := mkBatches(3)
	cur := &fakeCursor{batches: batches, errAt: 2} // two good batches, then boom
	pace, _ := r.Join("k", 1, openFake(cur), nil)
	follower, _ := r.Join("k", 1, nil, nil)

	var paceErr error
	var got []int32
	for {
		b, err := pace.Next(context.Background())
		if err != nil {
			paceErr = err
			break
		}
		if b == nil {
			break
		}
		got = append(got, b...)
	}
	pace.Close()
	if !errors.Is(paceErr, errBoom) {
		t.Fatalf("pace car error = %v, want errBoom", paceErr)
	}
	if !eq32(got, concat(batches[:2])) {
		t.Fatalf("pace car pre-error batches = %v", got)
	}

	got = nil
	var folErr error
	for {
		b, err := follower.Next(context.Background())
		if err != nil {
			folErr = err
			break
		}
		if b == nil {
			break
		}
		got = append(got, b...)
	}
	follower.Close()
	if !errors.Is(folErr, errBoom) {
		t.Fatalf("follower error = %v, want errBoom", folErr)
	}
	if !eq32(got, concat(batches[:2])) {
		t.Fatalf("follower pre-error batches = %v", got)
	}
	if n := r.InFlight(); n != 0 {
		t.Fatalf("errored flight still registered: %d in flight", n)
	}
}

func TestCoalesceCounters(t *testing.T) {
	r := NewRegistry(0, Hooks{})
	step := make(chan struct{})
	batches := mkBatches(2)
	pace, created := r.Join("k", 1, openFake(&fakeCursor{batches: batches, errAt: -1, step: step}), nil)
	if !created {
		t.Fatal("expected creation")
	}
	followers := make([]*Follower, 7)
	for i := range followers {
		var c bool
		followers[i], c = r.Join("k", 1, nil, nil)
		if c {
			t.Fatalf("join %d created a duplicate flight", i)
		}
	}
	var wg sync.WaitGroup
	outs := make([][]int32, len(followers)+1)
	for i, f := range append([]*Follower{pace}, followers...) {
		wg.Add(1)
		go func(i int, f *Follower) { defer wg.Done(); outs[i] = drain(t, f) }(i, f)
	}
	for i := 0; i < len(batches)+1; i++ {
		step <- struct{}{}
	}
	wg.Wait()
	want := concat(batches)
	for i, out := range outs {
		if !eq32(out, want) {
			t.Fatalf("client %d saw %v, want %v", i, out, want)
		}
	}
	created64, coalesced, _ := r.Stats()
	if created64 != 1 || coalesced != 7 {
		t.Fatalf("created/coalesced = %d/%d, want 1/7", created64, coalesced)
	}
}

func TestWheelHooksBalance(t *testing.T) {
	var acquired, released atomic.Int64
	hooks := Hooks{
		OnWheel:     func(_ context.Context, cost int) error { acquired.Add(int64(cost)); return nil },
		OnWheelDone: func(cost int) { released.Add(int64(cost)) },
	}
	r := NewRegistry(0, hooks)
	batches := mkBatches(4)
	cur := &fakeCursor{batches: batches, errAt: -1}
	ctx, cancel := context.WithCancel(context.Background())
	pace, _ := r.Join("k", 3, openFake(cur), nil)
	if _, err := pace.Next(ctx); err != nil {
		t.Fatalf("Next: %v", err)
	}
	follower, _ := r.Join("k", 3, nil, nil)
	cancel()
	if _, err := pace.Next(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Next = %v", err)
	}
	pace.Close()
	drain(t, follower)
	// Two wheel tenures (creator, then the promoted follower), cost 3
	// units each, every acquire balanced by a release.
	if a, rl := acquired.Load(), released.Load(); a != 6 || rl != 6 {
		t.Fatalf("hook units acquired/released = %d/%d, want 6/6", a, rl)
	}
}

func TestNextAfterCloseFails(t *testing.T) {
	r := NewRegistry(0, Hooks{})
	f, _ := r.Join("k", 1, openFake(&fakeCursor{batches: mkBatches(1), errAt: -1}), nil)
	f.Close()
	if _, err := f.Next(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Next after Close = %v, want ErrClosed", err)
	}
}

// panicCursor panics on its nth Next call — the stand-in for a broken
// operator inside the pace car.
type panicCursor struct {
	fakeCursor
	panicAt int
}

func (c *panicCursor) Next() ([]int32, error) {
	if c.i == c.panicAt {
		panic("operator exploded")
	}
	return c.fakeCursor.Next()
}

// TestPanicInDriveAbortsFlight pins the pace-car containment
// boundary: a panicking cursor finishes the flight with a
// *fault.PanicError delivered to every follower, balances the wheel
// hooks, closes the cursor, and frees the registry slot — no wedged
// followers, no leaked capacity.
func TestPanicInDriveAbortsFlight(t *testing.T) {
	var acquired, released atomic.Int64
	hooks := Hooks{
		OnWheel:     func(_ context.Context, cost int) error { acquired.Add(int64(cost)); return nil },
		OnWheelDone: func(cost int) { released.Add(int64(cost)) },
	}
	r := NewRegistry(0, hooks)
	closed := &atomic.Bool{}
	cur := &panicCursor{fakeCursor: fakeCursor{batches: mkBatches(4), errAt: -1, closed: closed}, panicAt: 2}

	pace, _ := r.Join("k", 2, func(context.Context) (Cursor, error) { return cur, nil }, nil)
	follower, _ := r.Join("k", 2, nil, nil)
	defer pace.Close()
	defer follower.Close()

	errs := make(chan error, 2)
	for _, f := range []*Follower{pace, follower} {
		go func(f *Follower) {
			for {
				b, err := f.Next(context.Background())
				if err != nil || b == nil {
					errs <- err
					return
				}
			}
		}(f)
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; !fault.IsPanic(err) {
			t.Fatalf("follower %d got %v, want recovered panic", i, err)
		}
	}
	if !closed.Load() {
		t.Fatal("cursor not closed after panic")
	}
	if r.InFlight() != 0 {
		t.Fatalf("flight still registered after panic")
	}
	if a, rl := acquired.Load(), released.Load(); a != rl || a == 0 {
		t.Fatalf("hook units acquired/released = %d/%d, want balanced and nonzero", a, rl)
	}
}

// TestPanicInOpenAbortsFlight pins containment of a panicking
// OpenFunc: the flight finishes with the recovered panic as its error
// rather than unwinding with the wheel held.
func TestPanicInOpenAbortsFlight(t *testing.T) {
	r := NewRegistry(0, Hooks{})
	f, _ := r.Join("k", 1, func(context.Context) (Cursor, error) { panic("open exploded") }, nil)
	defer f.Close()
	if _, err := f.Next(context.Background()); !fault.IsPanic(err) {
		t.Fatalf("Next after panicking open = %v, want recovered panic", err)
	}
	if r.InFlight() != 0 {
		t.Fatal("flight still registered after open panic")
	}
}

// TestWheelDeniedFailsOnlyThatClient pins the admission interaction:
// when OnWheel rejects a candidate driver (shed or cancelled while
// queued), only that client fails — the flight stays live and the
// next follower takes the wheel and finishes the work.
func TestWheelDeniedFailsOnlyThatClient(t *testing.T) {
	var denials atomic.Int64
	hooks := Hooks{
		OnWheel: func(_ context.Context, cost int) error {
			if denials.Add(1) == 1 {
				return errBoom // first candidate is shed
			}
			return nil
		},
	}
	r := NewRegistry(0, hooks)
	batches := mkBatches(3)
	cur := &fakeCursor{batches: batches, errAt: -1}
	shedded, _ := r.Join("k", 1, openFake(cur), nil)
	survivor, _ := r.Join("k", 1, nil, nil)
	defer shedded.Close()

	if _, err := shedded.Next(context.Background()); !errors.Is(err, errBoom) {
		t.Fatalf("denied candidate got %v, want errBoom", err)
	}
	if got := drain(t, survivor); !eq32(got, concat(batches)) {
		t.Fatalf("survivor drained %v, want full result", got)
	}
}
