// Package share coalesces identical in-flight query executions: the
// pace-car protocol behind xpathd's shared-scan mode.
//
// N clients that miss the result cache on the same key today each run
// the full plan — N× the work for one answer. The registry here keeps
// one "flight" per key (the server keys flights exactly like result
// cache entries: document, generation, canonical plan, limit — so the
// generation stamp that guards the cache against reload-after-eviction
// guards the shared buffer too). The first client to need a batch
// becomes the pace car: it drives the underlying cursor and appends
// each batch to the flight's shared buffer. Followers that attach
// mid-flight replay the already-produced prefix immediately, then
// block on a broadcast for new batches — every client observes the
// exact byte sequence a solo execution would have produced, because
// there is only one execution.
//
// Three correctness traps shape the protocol:
//
//   - The wheel must survive its driver. The cursor is opened against
//     the flight's own context, not the pace car's request context; a
//     cancelled pace car releases the wheel between batches and the
//     next live follower picks it up and keeps driving the same cursor
//     (a "handoff"). Only when the last follower leaves is the flight
//     abandoned: its context is cancelled, the cursor closed, and the
//     registry slot freed for a fresh execution.
//
//   - Production is paced, not unbounded. The driver never runs more
//     than maxLag batches ahead of the slowest attached follower
//     (backpressure via the same broadcast channel), so one slow
//     client bounds speculative buffering instead of forcing the
//     flight to materialise arbitrarily far ahead of consumption. The
//     consumed prefix is retained — it is the future cache entry.
//
//   - Coalescing and caching share one entry. On completion the flight
//     retires its buffer through a callback (the server's cache.Put
//     under the identical key) and leaves the registry, so the next
//     cold client hits the cache instead of a dead flight.
//
// The drive is also a panic-containment boundary: a panicking cursor
// (or plan open) becomes a *fault.PanicError that finishes the flight
// like any execution error — every follower sees it, the wheel hooks
// balance, and no semaphore units leak — instead of unwinding through
// the registry with capacity held.
//
// Lock ordering: Registry.mu before flight.mu, never the reverse.
package share

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"staircase/internal/fault"
)

// Cursor is the execution a flight drives: a batch iterator in final
// output order. Next returns a nil batch at exhaustion; the returned
// slice may be reused by the next call (the flight copies it into the
// shared buffer before releasing the mutex).
type Cursor interface {
	Next() ([]int32, error)
	Close()
}

// OpenFunc starts the underlying execution. It receives the flight's
// context — cancelled only when the flight is abandoned, never when an
// individual client disconnects.
type OpenFunc func(ctx context.Context) (Cursor, error)

// Hooks let the owner account for the wheel: the server maps OnWheel /
// OnWheelDone to worker-semaphore acquire/release, so exactly one
// client of a flight — the current driver — holds worker units, while
// followers are just blocked handlers. Hooks are invoked outside all
// registry and flight locks; OnWheel may block, waiting on ctx — the
// candidate driver's own request context, so a queued wheel take
// abandons when that client disconnects. An OnWheel error (admission
// shed, cancellation) is returned to that candidate alone: the flight
// stays live and another follower may take the wheel.
type Hooks struct {
	OnWheel     func(ctx context.Context, cost int) error
	OnWheelDone func(cost int)
}

// DefaultMaxLag is the backpressure window when NewRegistry is given a
// non-positive one: the driver stays within this many batches of the
// slowest live follower.
const DefaultMaxLag = 8

// ErrClosed is returned by Next on a follower that was already closed.
var ErrClosed = errors.New("share: follower used after Close")

// Registry is the set of in-flight executions, one per key. Safe for
// concurrent use.
type Registry struct {
	mu      sync.Mutex
	flights map[string]*flight
	hooks   Hooks
	maxLag  int

	created   atomic.Int64
	coalesced atomic.Int64
	handoffs  atomic.Int64
}

// NewRegistry returns an empty registry. maxLag bounds how many
// batches the pace car may run ahead of the slowest follower
// (non-positive selects DefaultMaxLag).
func NewRegistry(maxLag int, hooks Hooks) *Registry {
	if maxLag <= 0 {
		maxLag = DefaultMaxLag
	}
	return &Registry{flights: make(map[string]*flight), hooks: hooks, maxLag: maxLag}
}

// Stats reports lifetime counters: flights created (cold executions
// actually started), joins coalesced onto an existing flight, and
// pace-car handoffs (wheel passed to a different client after the
// previous driver left mid-flight).
func (r *Registry) Stats() (created, coalesced, handoffs int64) {
	return r.created.Load(), r.coalesced.Load(), r.handoffs.Load()
}

// InFlight reports the number of live flights (tests, metrics).
func (r *Registry) InFlight() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.flights)
}

// Join attaches to the flight under key, creating it when absent (or
// when the resident flight is already abandoned and merely awaiting
// removal). The returned bool reports creation: the creating client is
// the one whose open/retire/cost are bound to the flight, and — being
// the first to call Next — almost always its initial pace car.
func (r *Registry) Join(key string, cost int, open OpenFunc, retire func(nodes []int32)) (*Follower, bool) {
	r.mu.Lock()
	if fl, ok := r.flights[key]; ok {
		fl.mu.Lock()
		if !fl.abandoned {
			f := &Follower{fl: fl}
			fl.followers[f] = struct{}{}
			fl.mu.Unlock()
			r.mu.Unlock()
			r.coalesced.Add(1)
			return f, false
		}
		fl.mu.Unlock() // dying flight: replace it below
	}
	ctx, cancel := context.WithCancel(context.Background())
	fl := &flight{
		reg:       r,
		key:       key,
		cost:      cost,
		open:      open,
		retire:    retire,
		ctx:       ctx,
		cancel:    cancel,
		notify:    make(chan struct{}),
		offs:      []int{0},
		followers: make(map[*Follower]struct{}),
	}
	f := &Follower{fl: fl}
	fl.followers[f] = struct{}{}
	r.flights[key] = fl
	r.mu.Unlock()
	r.created.Add(1)
	return f, true
}

// remove deletes fl from the registry unless it was already replaced.
func (r *Registry) remove(fl *flight) {
	r.mu.Lock()
	if r.flights[fl.key] == fl {
		delete(r.flights, fl.key)
	}
	r.mu.Unlock()
}

func (r *Registry) onWheel(ctx context.Context, cost int) error {
	if h := r.hooks.OnWheel; h != nil {
		return h(ctx, cost)
	}
	return nil
}

func (r *Registry) onWheelDone(cost int) {
	if h := r.hooks.OnWheelDone; h != nil {
		h(cost)
	}
}

// flight is one shared execution. The buffer is a flat node slice with
// batch boundaries in offs: batch i is flat[offs[i]:offs[i+1]], and
// batches are immutable once appended, so followers hand out subslices
// without copying (append may reallocate flat, which leaves previously
// returned views on the old backing array — still valid).
type flight struct {
	reg    *Registry
	key    string
	cost   int
	open   OpenFunc
	retire func(nodes []int32)
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	notify    chan struct{} // closed and replaced on every state change
	flat      []int32
	offs      []int
	done      bool
	err       error
	opened    bool
	cur       Cursor
	driver    *Follower
	last      *Follower // last client to hold the wheel (handoff accounting)
	lagWait   bool      // driver is parked on backpressure
	abandoned bool
	followers map[*Follower]struct{}
}

func (fl *flight) nbatches() int { return len(fl.offs) - 1 }

func (fl *flight) batch(i int) []int32 { return fl.flat[fl.offs[i]:fl.offs[i+1]] }

// broadcastLocked wakes every waiter (followers parked for new batches
// and a driver parked on backpressure).
func (fl *flight) broadcastLocked() {
	close(fl.notify)
	fl.notify = make(chan struct{})
}

// appendLocked copies one produced batch into the shared buffer.
func (fl *flight) appendLocked(b []int32) {
	fl.flat = append(fl.flat, b...)
	fl.offs = append(fl.offs, len(fl.flat))
}

// lagExceededLocked reports whether producing another batch would put
// the driver more than maxLag batches ahead of the slowest live
// follower other than the driver itself (which always sits at the tip).
func (fl *flight) lagExceededLocked(driver *Follower) bool {
	min, any := 0, false
	for f := range fl.followers {
		if f == driver {
			continue
		}
		if !any || f.pos < min {
			min, any = f.pos, true
		}
	}
	return any && fl.nbatches()-min >= fl.reg.maxLag
}

// Follower is one client's view of a flight. Not safe for concurrent
// use by multiple goroutines (each client holds its own follower).
type Follower struct {
	fl     *flight
	pos    int // next batch index to consume
	closed bool
}

// Next returns the next result batch in document order, nil at
// exhaustion. It serves the shared buffer when the follower lags
// behind it, takes the wheel and drives the cursor when the buffer is
// drained and nobody else is driving, and otherwise blocks until the
// driver produces more or ctx is cancelled. A driver keeps the wheel
// across calls; it releases it on completion, cursor error, or its own
// ctx cancellation — in the latter case the flight stays live for the
// remaining followers.
func (f *Follower) Next(ctx context.Context) ([]int32, error) {
	fl := f.fl
	fl.mu.Lock()
	for {
		if f.closed {
			fl.mu.Unlock()
			return nil, ErrClosed
		}
		if f.pos < fl.nbatches() {
			b := fl.batch(f.pos)
			f.pos++
			if fl.lagWait {
				fl.broadcastLocked() // un-park the driver
			}
			fl.mu.Unlock()
			return b, nil
		}
		if fl.done {
			err := fl.err
			fl.mu.Unlock()
			return nil, err
		}
		if fl.driver == f {
			// Still holding the wheel from a previous call.
			fl.mu.Unlock()
			return f.drive(ctx)
		}
		if fl.driver == nil {
			tookOver := fl.last != nil && fl.last != f
			fl.driver, fl.last = f, f
			fl.mu.Unlock()
			if err := fl.reg.onWheel(ctx, fl.cost); err != nil {
				// Admission denied this candidate the wheel (shed, or its
				// own ctx cancelled while queued): put the wheel back for
				// the next follower and fail only this client.
				fl.mu.Lock()
				if fl.driver == f {
					fl.driver = nil
				}
				fl.broadcastLocked()
				fl.mu.Unlock()
				return nil, err
			}
			if tookOver {
				fl.reg.handoffs.Add(1)
			}
			return f.drive(ctx)
		}
		ch := fl.notify
		fl.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		fl.mu.Lock()
	}
}

// safeOpen contains panics out of the flight's OpenFunc: a panicking
// plan open must abort the flight with an error, not unwind through
// the registry with the wheel still held.
func safeOpen(open OpenFunc, ctx context.Context) (cur Cursor, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fault.NewPanicError(v)
		}
	}()
	return open(ctx)
}

// safeNext pulls one batch from the flight cursor with the pace-car
// containment boundary around it: a panicking operator (or an
// injected share.drive fault) becomes an error that finishes the
// flight — propagated to every follower, wheel released, semaphore
// hooks balanced — instead of unwinding with capacity held.
func safeNext(ctx context.Context, cur Cursor) (b []int32, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fault.NewPanicError(v)
		}
	}()
	if err := fault.HitCtx(ctx, "share.drive"); err != nil {
		return nil, err
	}
	return cur.Next()
}

// safeClose closes the flight cursor, swallowing a panic from a
// cursor already broken by the failure that is being cleaned up.
func safeClose(cur Cursor) {
	defer func() { _ = recover() }()
	cur.Close()
}

// drive produces the next batch while f holds the wheel. Every return
// path except a successful batch releases the wheel (and balances the
// OnWheel hook); a successful batch keeps it for the next call.
func (f *Follower) drive(ctx context.Context) ([]int32, error) {
	fl := f.fl
	fl.mu.Lock()
	if !fl.opened {
		fl.mu.Unlock()
		cur, err := safeOpen(fl.open, fl.ctx) // flight ctx: outlives this client
		fl.mu.Lock()
		fl.opened = true
		if err != nil {
			return f.finishLocked(nil, err)
		}
		fl.cur = cur
	}
	// Backpressure: stay within maxLag batches of the slowest follower.
	for fl.lagExceededLocked(f) {
		if err := ctx.Err(); err != nil {
			return f.releaseWheelLocked(err)
		}
		fl.lagWait = true
		ch := fl.notify
		fl.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
		}
		fl.mu.Lock()
		fl.lagWait = false
	}
	if err := ctx.Err(); err != nil {
		return f.releaseWheelLocked(err)
	}
	cur := fl.cur
	fl.mu.Unlock()

	b, err := safeNext(ctx, cur) // the actual work happens outside all locks
	fl.mu.Lock()
	if err != nil {
		safeClose(cur)
		return f.finishLocked(nil, err)
	}
	if b == nil {
		safeClose(cur)
		return f.finishLocked(fl.flat, nil)
	}
	fl.appendLocked(b)
	f.pos = fl.nbatches()
	out := fl.batch(f.pos - 1)
	fl.broadcastLocked()
	fl.mu.Unlock()
	return out, nil
}

// releaseWheelLocked hands the wheel back mid-flight (driver ctx
// cancelled): the flight stays live and the next follower to wake
// takes over the same cursor. Called with fl.mu held; unlocks it.
func (f *Follower) releaseWheelLocked(err error) ([]int32, error) {
	fl := f.fl
	fl.driver = nil
	fl.broadcastLocked()
	fl.mu.Unlock()
	fl.reg.onWheelDone(fl.cost)
	return nil, err
}

// finishLocked terminates the flight: completion (err == nil, flat is
// the full result, which retires into the owner's cache) or execution
// error (propagated to every follower). Called with fl.mu held;
// unlocks it.
func (f *Follower) finishLocked(flat []int32, err error) ([]int32, error) {
	fl := f.fl
	fl.done = true
	fl.err = err
	fl.driver = nil
	fl.broadcastLocked()
	fl.mu.Unlock()
	fl.reg.remove(fl) // future clients go through the cache instead
	if err == nil && fl.retire != nil {
		fl.retire(flat)
	}
	fl.reg.onWheelDone(fl.cost)
	return nil, err
}

// Close detaches the follower. If it held the wheel, the wheel is
// released for the next follower; if it was the last follower of an
// unfinished flight, the flight is abandoned — context cancelled,
// cursor closed, registry slot freed — and nothing retires. Close is
// idempotent.
func (f *Follower) Close() {
	fl := f.fl
	fl.mu.Lock()
	if f.closed {
		fl.mu.Unlock()
		return
	}
	f.closed = true
	delete(fl.followers, f)
	wasDriver := fl.driver == f
	if wasDriver {
		fl.driver = nil
	}
	abandon := len(fl.followers) == 0 && !fl.done
	if abandon {
		fl.abandoned = true // Join treats the flight as gone from here on
	}
	cur := fl.cur
	fl.broadcastLocked()
	fl.mu.Unlock()
	if wasDriver {
		fl.reg.onWheelDone(fl.cost)
	}
	if abandon {
		fl.cancel()
		if cur != nil {
			safeClose(cur)
		}
		fl.reg.remove(fl)
	}
}
