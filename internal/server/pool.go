package server

import (
	"context"
	"errors"
	"sync"

	"staircase/internal/fault"
)

// errShed is returned by acquire when the admission queue is full:
// the server maps it to 503 + Retry-After, shedding load instead of
// queueing unboundedly.
var errShed = errors.New("server overloaded: worker queue full")

// wsem is a small weighted FIFO semaphore: the server's shared worker
// budget and its admission controller. Inter-query concurrency and
// intra-query partition parallelism compose through it — a request
// evaluating with engine parallelism p holds p units for the duration
// of its evaluation, so the total number of busy staircase-join
// workers across all in-flight queries never exceeds the budget.
//
// Waiters are served strictly in arrival order (like
// golang.org/x/sync/semaphore): a wide request at the head of the queue
// blocks narrower requests behind it until it gets its units, so a
// steady stream of narrow queries can never starve a wide one.
//
// Two overload behaviours distinguish admission (acquire) from wheel
// transfer (acquireWheel):
//
//   - acquire is context-aware and queue-bounded. A waiter whose ctx
//     is cancelled abandons its queue slot (a disconnected client can
//     never receive — and briefly hold — a grant it will not use), and
//     once maxQueue waiters are parked, further acquires fail with
//     errShed immediately instead of growing the queue.
//
//   - acquireWheel blocks unconditionally. It is reserved for shared
//     flights passing the wheel between already-admitted clients: the
//     work was admitted once, so a mid-flight driver change must not
//     be shed.
type wsem struct {
	mu       sync.Mutex
	cap      int
	used     int
	maxQueue int       // admission queue bound; 0 = unbounded
	waiters  []*waiter // FIFO
	shed     int64     // lifetime acquires rejected with errShed
}

type waiter struct {
	n     int
	ready chan struct{}
}

func newWsem(capacity, maxQueue int) *wsem {
	if capacity < 1 {
		capacity = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &wsem{cap: capacity, maxQueue: maxQueue}
}

// acquire blocks until n units are available and takes them,
// returning the granted count (n clamped to the capacity, so an
// over-wide request degrades to whole-pool exclusivity instead of
// deadlocking). It fails fast with errShed when the admission queue
// is at maxQueue, and with ctx.Err() when the context is cancelled
// while queued — abandoning the queue slot without ever holding
// units. A nil ctx never cancels.
func (s *wsem) acquire(ctx context.Context, n int) (int, error) {
	if err := fault.HitCtx(ctx, "pool.acquire"); err != nil {
		return 0, err
	}
	if n < 1 {
		n = 1
	}
	if n > s.cap {
		n = s.cap
	}
	var done <-chan struct{}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		done = ctx.Done()
	}
	s.mu.Lock()
	if len(s.waiters) == 0 && s.used+n <= s.cap {
		s.used += n
		s.mu.Unlock()
		return n, nil
	}
	if s.maxQueue > 0 && len(s.waiters) >= s.maxQueue {
		s.shed++
		s.mu.Unlock()
		return 0, errShed
	}
	w := &waiter{n: n, ready: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()
	select {
	case <-w.ready:
		return n, nil
	case <-done:
		s.mu.Lock()
		select {
		case <-w.ready:
			// The grant raced the cancellation: the units are ours, give
			// them straight back (and wake whoever they now unblock).
			s.used -= n
			s.grantLocked()
			s.mu.Unlock()
		default:
			for i, q := range s.waiters {
				if q == w {
					s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
					break
				}
			}
			// Removing a queue head may unblock the requests behind it.
			s.grantLocked()
			s.mu.Unlock()
		}
		return 0, ctx.Err()
	}
}

// acquireWheel blocks until n units are available and takes them,
// bypassing the admission bound: flight wheel transfers between
// already-admitted clients must never be shed.
func (s *wsem) acquireWheel(n int) int {
	if n < 1 {
		n = 1
	}
	if n > s.cap {
		n = s.cap
	}
	s.mu.Lock()
	if len(s.waiters) == 0 && s.used+n <= s.cap {
		s.used += n
		s.mu.Unlock()
		return n
	}
	w := &waiter{n: n, ready: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()
	<-w.ready
	return n
}

func (s *wsem) release(n int) {
	s.mu.Lock()
	s.used -= n
	s.grantLocked()
	s.mu.Unlock()
}

// grantLocked serves queued waiters in FIFO order while units last.
func (s *wsem) grantLocked() {
	for len(s.waiters) > 0 {
		w := s.waiters[0]
		if s.used+w.n > s.cap {
			break // FIFO: the head waits for its full grant
		}
		s.used += w.n
		s.waiters = s.waiters[1:]
		close(w.ready)
	}
}

// inUse reports the currently held units (metrics).
func (s *wsem) inUse() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// queueDepth reports the number of parked waiters — the
// worker_queue_depth gauge and the /readyz saturation signal.
func (s *wsem) queueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}

// shedCount reports the lifetime number of acquires rejected at the
// admission bound.
func (s *wsem) shedCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shed
}

// saturated reports whether the admission queue is at its bound — the
// /readyz "stop sending" signal. Always false when unbounded.
func (s *wsem) saturated() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxQueue > 0 && len(s.waiters) >= s.maxQueue
}
