package server

import "sync"

// wsem is a small weighted FIFO semaphore: the server's shared worker
// budget. Inter-query concurrency and intra-query partition parallelism
// compose through it — a request evaluating with engine parallelism p
// holds p units for the duration of its evaluation, so the total number
// of busy staircase-join workers across all in-flight queries never
// exceeds the budget.
//
// Waiters are served strictly in arrival order (like
// golang.org/x/sync/semaphore): a wide request at the head of the queue
// blocks narrower requests behind it until it gets its units, so a
// steady stream of narrow queries can never starve a wide one.
type wsem struct {
	mu      sync.Mutex
	cap     int
	used    int
	waiters []*waiter // FIFO
}

type waiter struct {
	n     int
	ready chan struct{}
}

func newWsem(capacity int) *wsem {
	if capacity < 1 {
		capacity = 1
	}
	return &wsem{cap: capacity}
}

// acquire blocks until n units are available and takes them. n is
// clamped to the capacity so an over-wide request degrades to whole-pool
// exclusivity instead of deadlocking.
func (s *wsem) acquire(n int) int {
	if n < 1 {
		n = 1
	}
	if n > s.cap {
		n = s.cap
	}
	s.mu.Lock()
	if len(s.waiters) == 0 && s.used+n <= s.cap {
		s.used += n
		s.mu.Unlock()
		return n
	}
	w := &waiter{n: n, ready: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()
	<-w.ready
	return n
}

func (s *wsem) release(n int) {
	s.mu.Lock()
	s.used -= n
	for len(s.waiters) > 0 {
		w := s.waiters[0]
		if s.used+w.n > s.cap {
			break // FIFO: the head waits for its full grant
		}
		s.used += w.n
		s.waiters = s.waiters[1:]
		close(w.ready)
	}
	s.mu.Unlock()
}

// inUse reports the currently held units (metrics).
func (s *wsem) inUse() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}
