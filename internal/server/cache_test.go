package server

import (
	"fmt"
	"testing"
)

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(0)
	c.Put("k", []int32{1, 2, 3})
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatal("disabled cache holds entries")
	}
}

func TestCachePutGetOverwrite(t *testing.T) {
	c := newResultCache(1 << 20)
	c.Put("k", []int32{1, 2, 3})
	got, ok := c.Get("k")
	if !ok || len(got) != 3 || got[0] != 1 {
		t.Fatalf("get: %v %v", got, ok)
	}
	c.Put("k", []int32{9})
	if got, _ := c.Get("k"); len(got) != 1 || got[0] != 9 {
		t.Fatalf("overwrite: %v", got)
	}
	if c.Len() != 1 {
		t.Fatalf("len %d after overwrite", c.Len())
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	// Budget small enough that shards overflow: each entry costs
	// ~64 + key + 4*nodes bytes, shard budget is total/16.
	c := newResultCache(16 * 400)
	nodes := make([]int32, 50) // ~270 bytes per entry
	for i := 0; i < 64; i++ {
		c.Put(fmt.Sprintf("key-%d", i), nodes)
	}
	if c.Len() >= 64 {
		t.Fatalf("no eviction happened: %d entries", c.Len())
	}
	if c.Bytes() > 16*400 {
		t.Fatalf("cache over budget: %d bytes", c.Bytes())
	}
	// An entry larger than a shard budget is refused outright.
	c.Put("huge", make([]int32, 1<<10))
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized entry was cached")
	}
}

func TestCacheRecencyOrder(t *testing.T) {
	// Single shard worth of keys: force same-shard collisions by using
	// a cache with a tiny budget and probing which keys share a shard.
	c := newResultCache(16 * 256)
	var keys []string
	for i := 0; len(keys) < 3 && i < 4096; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if c.shard(k) == &c.shards[0] {
			keys = append(keys, k)
		}
	}
	if len(keys) < 3 {
		t.Skip("hash seed produced too few shard-0 keys")
	}
	nodes := make([]int32, 30) // ~190 bytes: shard of 256 holds one
	c.Put(keys[0], nodes)
	c.Put(keys[1], nodes) // evicts keys[0]
	if _, ok := c.Get(keys[0]); ok {
		t.Fatal("LRU entry survived over-budget put")
	}
	if _, ok := c.Get(keys[1]); !ok {
		t.Fatal("most recent entry evicted")
	}
}
