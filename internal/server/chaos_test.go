package server

// The chaos suite: drive the server with randomized concurrent
// traffic while the fault harness injects errors, panics, and delays
// at every registered seam, then assert the survival invariants — no
// leaked worker units, no leaked catalog references, no wedged
// flights, and a well-formed response for every request. Run under
// -race in CI (the chaos job); STAIRCASE_CHAOS_REQUESTS boosts the
// request count for the nightly run.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"staircase/internal/catalog"
	"staircase/internal/fault"
	"staircase/internal/xmark"
)

// newChaosServer builds a server whose catalog has a pinned in-memory
// document and a disk-backed one under a 1-byte residency budget, so
// the disk document reloads on every Open and the catalog.load fault
// point stays hot. Returns the server, test listener, and catalog.
func newChaosServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *catalog.Catalog) {
	t.Helper()
	cat := catalog.New(1)
	dm, err := xmark.Generate(xmark.Config{SizeMB: 0.08, Seed: 1, KeepValues: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddDocument("mem", dm); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "disk.xml")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := xmark.Write(f, xmark.Config{SizeMB: 0.05, Seed: 2, KeepValues: true}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register("disk", path, catalog.FormatAuto); err != nil {
		t.Fatal(err)
	}
	cfg.Catalog = cat
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, cat
}

// chaosRequests returns the chaos-suite request count: 200 by
// default (the acceptance floor), boosted via STAIRCASE_CHAOS_REQUESTS
// in the nightly CI job.
func chaosRequests() int {
	if s := os.Getenv("STAIRCASE_CHAOS_REQUESTS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 200
}

// wellFormedStatus is the full set of statuses a request may
// legitimately receive under chaos.
var wellFormedStatus = map[int]bool{
	http.StatusOK:                  true,
	http.StatusBadRequest:          true,
	http.StatusNotFound:            true,
	http.StatusRequestTimeout:      true,
	http.StatusInternalServerError: true,
	http.StatusServiceUnavailable:  true,
}

// assertQuiesced waits for the post-traffic invariants: every worker
// unit released, no parked waiters, no live flights, no open catalog
// references. Failure here means a fault leaked a resource.
func assertQuiesced(t *testing.T, s *Server, cat *catalog.Catalog) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		inUse, depth := s.pool.inUse(), s.pool.queueDepth()
		inFlight, refs := s.flights.InFlight(), cat.OpenRefs()
		if inUse == 0 && depth == 0 && inFlight == 0 && refs == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("not quiesced: workers=%d queue=%d flights=%d refs=%d",
				inUse, depth, inFlight, refs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// chaosSpec arms every registered injection point at once: flaky
// loads, corrupt-read panics, mid-stream errors and panics, admission
// failures and stalls, and pace-car drive panics. Deterministic for
// the fixed seed and hit order.
const chaosSpec = "catalog.load:error:p=0.3;" +
	"cursor.next:error:p=0.05;" +
	"cursor.next:panic:p=0.02;" +
	"pool.acquire:error:p=0.04;" +
	"pool.acquire:delay:d=1ms:p=0.1;" +
	"share.drive:panic:p=0.05;" +
	"seed=7"

// TestChaosSurvival is the headline robustness test: randomized
// concurrent traffic (single queries, batches, streams, bad inputs,
// client disconnects, tiny deadlines) against a fully armed fault
// harness. The server must answer every surviving request with a
// well-formed response and quiesce with nothing leaked.
func TestChaosSurvival(t *testing.T) {
	t.Cleanup(fault.Reset)
	if err := fault.Configure(chaosSpec); err != nil {
		t.Fatal(err)
	}
	s, ts, cat := newChaosServer(t, Config{
		CacheBytes:     1 << 20,
		Workers:        4,
		MaxQueue:       32,
		ShareScans:     true,
		MorselWorkers:  2,
		RequestTimeout: 5 * time.Second,
	})

	queries := []string{
		"/descendant::person",
		"/descendant::profile/descendant::education",
		"/descendant::increase/ancestor::bidder",
		"//item[descendant::mail]",
		"//keyword",
		"not a query ((",
	}
	docs := []string{"mem", "disk", "mem", "disk", "nope"}

	total := chaosRequests()
	const workers = 16
	var wg sync.WaitGroup
	errc := make(chan error, total)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 1337))
			client := &http.Client{}
			for i := 0; i < total/workers; i++ {
				if err := chaosRequest(rng, client, ts.URL, queries, docs); err != nil {
					errc <- fmt.Errorf("worker %d request %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	fault.Reset()
	assertQuiesced(t, s, cat)

	// The server must still answer cleanly once the chaos stops.
	resp, code := postQuery(t, ts.URL, QueryRequest{Doc: "mem", Query: "/descendant::person", NoCache: true})
	if code != http.StatusOK || len(resp.Results) != 1 || resp.Results[0].Error != "" {
		t.Fatalf("post-chaos query: code=%d results=%+v", code, resp.Results)
	}
	if fault.InjectedTotal() == 0 {
		t.Fatal("chaos run injected nothing — the harness was not exercised")
	}
}

// chaosRequest issues one randomized request and validates the
// response shape. Requests this test cancels itself may fail at the
// transport layer; that is expected and not an error.
func chaosRequest(rng *rand.Rand, client *http.Client, baseURL string, queries, docs []string) error {
	req := QueryRequest{
		Doc:     docs[rng.Intn(len(docs))],
		NoCache: rng.Intn(3) == 0,
	}
	if rng.Intn(4) == 0 {
		req.Limit = 1 + rng.Intn(50)
	}
	if rng.Intn(8) == 0 {
		req.TimeoutMs = 1 + rng.Intn(5)
	}
	if rng.Intn(4) == 0 {
		req.Options = &QueryOptions{
			Parallelism:   rng.Intn(4),
			MorselWorkers: rng.Intn(4),
		}
	}
	stream := rng.Intn(4) == 0
	if stream || rng.Intn(3) > 0 {
		req.Query = queries[rng.Intn(len(queries))]
	} else {
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			req.Queries = append(req.Queries, queries[rng.Intn(len(queries))])
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}

	ctx := context.Background()
	cancelled := rng.Intn(10) == 0
	var cancel context.CancelFunc
	if cancelled {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(1+rng.Intn(10))*time.Millisecond)
	} else {
		ctx, cancel = context.WithTimeout(ctx, 30*time.Second)
	}
	defer cancel()

	endpoint := "/query"
	if stream {
		endpoint = "/stream"
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+endpoint, bytes.NewReader(body))
	if err != nil {
		return err
	}
	resp, err := client.Do(hreq)
	if err != nil {
		if cancelled || ctx.Err() != nil {
			return nil // our own disconnect: transport failure expected
		}
		return err
	}
	defer resp.Body.Close()
	if !wellFormedStatus[resp.StatusCode] {
		return fmt.Errorf("%s: unexpected status %d", endpoint, resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		if cancelled || ctx.Err() != nil {
			return nil
		}
		return err
	}
	if stream {
		if resp.StatusCode != http.StatusOK {
			return nil // pre-stream failure already shape-checked via status
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		for {
			var c StreamChunk
			if err := dec.Decode(&c); err == io.EOF {
				break
			} else if err != nil {
				return fmt.Errorf("stream: bad NDJSON line: %v (body %q)", err, truncateBody(raw))
			}
		}
		return nil
	}
	var out QueryResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		var e map[string]any
		if err2 := json.Unmarshal(raw, &e); err2 == nil && e["error"] != nil {
			return nil // error envelope: well-formed
		}
		return fmt.Errorf("query: undecodable %d response %q", resp.StatusCode, truncateBody(raw))
	}
	for _, r := range out.Results {
		if r.Error == "" && r.Count != len(r.Nodes) {
			return fmt.Errorf("query: count %d disagrees with %d nodes: %+v", r.Count, len(r.Nodes), r)
		}
	}
	return nil
}

func truncateBody(b []byte) string {
	s := string(b)
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}

// TestOverloadSheds pins the admission contract end to end: with the
// single worker held and the queue at its bound, further requests are
// shed with 503 + Retry-After without growing the queue, /readyz
// reports saturation, and once the worker frees the queued requests
// complete normally.
func TestOverloadSheds(t *testing.T) {
	s, ts, _ := newChaosServer(t, Config{
		Workers:  1,
		MaxQueue: 2,
	})

	// Hold the whole worker budget so every request parks.
	if _, err := s.pool.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}

	queued := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/query", "application/json",
				strings.NewReader(`{"doc":"mem","query":"/descendant::person","noCache":true}`))
			if err != nil {
				queued <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			queued <- resp.StatusCode
		}()
	}
	waitFor(t, "two queued requests", func() bool { return s.pool.queueDepth() == 2 })

	// /readyz must report saturation while /healthz stays green.
	if code := getStatus(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz at saturation: %d, want 503", code)
	}
	if code := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz at saturation: %d, want 200", code)
	}

	// Past the bound: immediate 503 + Retry-After, queue depth pinned.
	for i := 0; i < 5; i++ {
		resp, err := http.Post(ts.URL+"/query", "application/json",
			strings.NewReader(`{"doc":"mem","query":"/descendant::person","noCache":true}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("shed request %d: status %d, want 503", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("shed request %d: no Retry-After header", i)
		}
		if d := s.pool.queueDepth(); d > 2 {
			t.Fatalf("shed request grew the queue to %d", d)
		}
	}
	if s.pool.shedCount() < 5 {
		t.Fatalf("shedCount %d, want >= 5", s.pool.shedCount())
	}

	// Free the worker: the queued requests must complete normally.
	s.pool.release(1)
	for i := 0; i < 2; i++ {
		if code := <-queued; code != http.StatusOK {
			t.Fatalf("queued request finished with %d, want 200", code)
		}
	}
	if code := getStatus(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after drain: %d, want 200", code)
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestCancelledQueuedClientReleasesSlot pins the disconnected-client
// contract at the HTTP level: a client that gives up while queued
// leaves no units held and no queue slot behind.
func TestCancelledQueuedClientReleasesSlot(t *testing.T) {
	s, ts, cat := newChaosServer(t, Config{Workers: 1, MaxQueue: 8})
	if _, err := s.pool.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		body := strings.NewReader(`{"doc":"mem","query":"/descendant::person","noCache":true}`)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", body)
		if err != nil {
			t.Error(err)
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	waitFor(t, "request queued", func() bool { return s.pool.queueDepth() == 1 })
	cancel()
	<-done
	waitFor(t, "queue slot abandoned", func() bool { return s.pool.queueDepth() == 0 })
	s.pool.release(1)
	assertQuiesced(t, s, cat)
}

// TestRequestTimeoutAnswers408 pins the deadline contract: a request
// whose timeoutMs expires (helped along by an injected admission
// stall) gets 408, the timeout metric moves, and nothing leaks.
func TestRequestTimeoutAnswers408(t *testing.T) {
	t.Cleanup(fault.Reset)
	if err := fault.Configure("pool.acquire:delay:d=250ms:n=1"); err != nil {
		t.Fatal(err)
	}
	s, ts, cat := newChaosServer(t, Config{Workers: 2, RequestTimeout: time.Minute})
	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"doc":"mem","query":"/descendant::person","noCache":true,"timeoutMs":20}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("timed-out request: status %d, want 408", resp.StatusCode)
	}
	if s.timeouts.Load() == 0 {
		t.Fatal("timeout_queries_total did not move")
	}
	fault.Reset()
	assertQuiesced(t, s, cat)
}

// TestPanickingOperatorAnswers500 pins panic containment end to end:
// an injected panic in the streaming cursor costs that query a 500
// (with panics_recovered_total moving), and the very next request —
// same server, same pool — succeeds.
func TestPanickingOperatorAnswers500(t *testing.T) {
	t.Cleanup(fault.Reset)
	before := fault.Recovered()
	if err := fault.Configure("cursor.next:panic:n=1"); err != nil {
		t.Fatal(err)
	}
	s, ts, cat := newChaosServer(t, Config{Workers: 2})
	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"doc":"mem","query":"/descendant::person","noCache":true,"limit":5}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked query: status %d, want 500", resp.StatusCode)
	}
	if fault.Recovered() <= before {
		t.Fatal("panics_recovered_total did not move")
	}

	fault.Reset()
	out, code := postQuery(t, ts.URL, QueryRequest{Doc: "mem", Query: "/descendant::person", NoCache: true, Limit: 5})
	if code != http.StatusOK || out.Results[0].Error != "" {
		t.Fatalf("query after recovered panic: code=%d results=%+v", code, out.Results)
	}
	assertQuiesced(t, s, cat)
}

// TestDrainFlipsReadyz pins the shutdown sequence: BeginDrain flips
// /readyz to 503 while /healthz and in-flight evaluation stay live.
func TestDrainFlipsReadyz(t *testing.T) {
	s, ts, _ := newChaosServer(t, Config{Workers: 2})
	if code := getStatus(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz before drain: %d, want 200", code)
	}
	s.BeginDrain()
	if code := getStatus(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain: %d, want 503", code)
	}
	if code := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz during drain: %d, want 200", code)
	}
	// Draining refuses nothing by itself: in-flight and even new work
	// on the open listener still completes (the LB stops routing, the
	// server does not slam the door).
	if _, code := postQuery(t, ts.URL, QueryRequest{Doc: "mem", Query: "/descendant::person"}); code != http.StatusOK {
		t.Fatalf("query during drain: %d, want 200", code)
	}
}
