// Package server exposes the catalog and engine as a long-lived HTTP
// query service — the front door of cmd/xpathd. It is the layer the
// paper's framing implies but never builds: the staircase join as the
// axis-step workhorse *inside* a system answering many concurrent
// queries over many documents.
//
// The design leans on one fact: documents are immutable after
// shredding, so query evaluation needs no locking at all — concurrency
// control collapses into catalog lookup. Three shared structures do the
// rest:
//
//   - a compiled-query LRU (parse + logical rewrite once per distinct
//     query text) and a prepared-plan LRU (physical plan once per
//     document generation × options × query);
//   - a sharded LRU result cache keyed on (doc, generation, canonical
//     optimized-plan string) — equivalent query texts compile to the
//     same canonical plan and share one entry; see
//     docs/ARCHITECTURE.md for the key design;
//   - a weighted worker semaphore that both inter-query concurrency and
//     intra-query partition parallelism (engine.Options.Parallelism)
//     draw from, so a burst of wide parallel queries cannot oversubscribe
//     the machine;
//   - optionally (Config.ShareScans) a pace-car registry that coalesces
//     identical in-flight executions: concurrent cache misses on the
//     same (doc, generation, canonical plan, limit) key share one
//     driven cursor, and the completed buffer retires into the result
//     cache — see internal/share.
//
// Endpoints: POST /query (single or batched queries against one
// document), POST /stream (one query, results as NDJSON batches),
// GET /explain, GET /docs, GET /healthz (liveness), GET /readyz
// (readiness: 503 while draining or at the admission bound),
// GET /metrics.
//
// Request contexts propagate into plan execution: a client disconnect
// or server timeout cancels the running cursors between batches, so
// abandoned queries release their worker-semaphore units instead of
// scanning to completion. Limited queries (POST /query with limit=N,
// POST /stream) evaluate through the engine's streaming executor —
// the staircase kernels stop after the N-th result — and the result
// cache keys truncated results on (canonical plan, limit) so they
// never collide with full results.
//
// Failure model. The server survives overload and misbehaving
// operators rather than merely performing well on the happy path:
//
//   - Admission control: the worker semaphore's wait queue is bounded
//     (Config.MaxQueue). At the bound, new work is shed immediately
//     with 503 + Retry-After instead of queueing unboundedly, and a
//     queued waiter whose client disconnects abandons its slot without
//     ever holding units.
//   - Deadlines: Config.RequestTimeout bounds every request; a request
//     may lower (never raise) it with timeoutMs. Expiry surfaces as
//     408 and cancels the running cursors between batches.
//   - Panic containment: evaluation is recovered at every boundary —
//     per batch item, per stream batch, per flight drive, per morsel
//     worker — so a panicking operator costs one query a 500, not the
//     process; its semaphore units release and its flight aborts.
package server

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"staircase/internal/catalog"
	"staircase/internal/engine"
	"staircase/internal/fault"
	"staircase/internal/plan"
	"staircase/internal/share"
)

// Config configures a Server.
type Config struct {
	// Catalog provides the named documents. Required.
	Catalog *catalog.Catalog
	// CacheBytes is the result-cache budget in bytes; <= 0 disables the
	// cache.
	CacheBytes int64
	// Workers is the shared worker budget for query evaluation; <= 0
	// defaults to GOMAXPROCS.
	Workers int
	// DefaultParallelism is the engine parallelism applied when a
	// request does not set one (0 = serial, engine.AutoParallelism = all
	// cores, clamped by the worker budget).
	DefaultParallelism int
	// NoIndex disables the shared tag/kind index by default: pushdown
	// fragments are rebuilt by column scan per query (ablation knob,
	// xpathd -index=false). Individual requests may also set it.
	NoIndex bool
	// NoValueIndex disables value-index fragment service by default:
	// comparison and contains() predicates are re-evaluated per node
	// (ablation knob, xpathd -value-index=false). Individual requests
	// may also set it.
	NoValueIndex bool
	// NoReorder disables the planner's greedy filter ordering,
	// empty-fragment short-circuit and mid-flight adaptive re-planning
	// by default: predicates evaluate in source order (ablation knob,
	// xpathd -no-reorder). Individual requests may also set it.
	NoReorder bool
	// MaxBatch caps the number of queries in one POST /query request;
	// <= 0 defaults to 256.
	MaxBatch int
	// ShareScans coalesces identical in-flight executions: concurrent
	// cache-missing requests with the same (doc, generation, canonical
	// plan, limit) key share one pace-car execution instead of each
	// running the plan (xpathd -share-scans). Requests with NoCache
	// bypass coalescing along with the cache.
	ShareScans bool
	// MorselWorkers is the default intra-cursor morsel parallelism for
	// streaming execution when a request does not set one (0/1 serial,
	// N > 1 up to N workers, engine.AutoParallelism = all cores; clamped
	// by the worker budget).
	MorselWorkers int
	// RequestTimeout bounds every request's evaluation; <= 0 means no
	// server-side deadline. A request may lower (never raise) it with
	// timeoutMs. Expiry surfaces as 408.
	RequestTimeout time.Duration
	// MaxQueue bounds the worker semaphore's admission queue: past
	// MaxQueue parked waiters, new work is shed with 503 + Retry-After.
	// 0 queues unboundedly (the pre-admission-control behaviour);
	// < 0 picks an automatic bound of 8× the worker budget.
	MaxQueue int
	// MaxBodyBytes caps request bodies on POST /query and POST /stream;
	// <= 0 defaults to 1 MiB.
	MaxBodyBytes int64
}

// defaultMaxBodyBytes is the request-body cap applied when
// Config.MaxBodyBytes is unset.
const defaultMaxBodyBytes = 1 << 20

// statusClientClosed is the nginx-convention code for "client closed
// request": the client disconnected while queued or evaluating, so
// there is nobody to write a response to. Used for metrics and batch
// items; never written as an HTTP status.
const statusClientClosed = 499

// Server is the HTTP query service. Safe for concurrent use.
type Server struct {
	cfg     Config
	cat     *catalog.Catalog
	cache   *resultCache
	pool    *wsem
	flights *share.Registry
	start   time.Time

	compiledMu sync.Mutex
	compiled   map[string]*list.Element
	compiledLL *list.List // front = most recent; values are *compiledEntry

	preparedMu  sync.Mutex
	prepared    map[string]*list.Element
	preparedLL  *list.List        // front = most recent; values are *preparedEntry
	preparedGen map[string]uint64 // latest generation seen per document
	// preparedFast mirrors the prepared LRU for lock-free hits: the
	// result-cache fast path sits behind prepare(), so a hit here must
	// not serialise concurrent warm requests on preparedMu. Hits skip
	// the LRU recency bump (recency is maintained by slow-path touches
	// only — an approximation the 4096-entry budget tolerates).
	preparedFast sync.Map // key -> *preparedEntry

	queries     atomic.Int64
	batches     atomic.Int64
	streams     atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	planHits    atomic.Int64
	planMisses  atomic.Int64
	errors      atomic.Int64
	cancels     atomic.Int64
	timeouts    atomic.Int64
	draining    atomic.Bool
}

type preparedEntry struct {
	key string
	doc string
	gen uint64
	p   *engine.Prepared
}

type compiledEntry struct {
	src string
	c   *engine.Compiled
}

// maxCompiled bounds the compiled-query LRU; distinct query texts
// beyond this evict the least recently used handle.
const maxCompiled = 1024

// maxPrepared bounds the prepared-plan LRU; distinct (document
// generation, options, query) combinations beyond this evict the
// least recently used plan.
const maxPrepared = 4096

// New returns a server over the catalog.
func New(cfg Config) *Server {
	if cfg.Catalog == nil {
		panic("server: Config.Catalog is required")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	maxQueue := cfg.MaxQueue
	if maxQueue < 0 {
		maxQueue = 8 * workers
	}
	s := &Server{
		cfg:         cfg,
		cat:         cfg.Catalog,
		cache:       newResultCache(cfg.CacheBytes),
		pool:        newWsem(workers, maxQueue),
		start:       time.Now(),
		compiled:    make(map[string]*list.Element),
		compiledLL:  list.New(),
		prepared:    make(map[string]*list.Element),
		preparedLL:  list.New(),
		preparedGen: make(map[string]uint64),
	}
	// The pace car is the only client of a flight doing work, so it is
	// the only one charged against the worker budget: the wheel hooks
	// acquire and release the flight's cost as the wheel changes hands.
	// engineOptions clamps every cost to the pool capacity, so the
	// acquire can never deadlock on an over-wide grant. The take goes
	// through the bounded, context-aware acquire: a candidate driver
	// that is shed (or whose client is gone) fails alone — the flight
	// stays live for the other followers, one of whom takes the wheel.
	s.flights = share.NewRegistry(0, share.Hooks{
		OnWheel: func(ctx context.Context, cost int) error {
			_, err := s.pool.acquire(ctx, cost)
			return err
		},
		OnWheelDone: func(cost int) { s.pool.release(cost) },
	})
	return s
}

// Handler returns the HTTP routing table, wrapped in a panic-recovery
// middleware: a panic that escapes a handler (e.g. out of a catalog
// load) becomes a well-formed 500 instead of a dropped connection.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /stream", s.handleStream)
	mux.HandleFunc("GET /explain", s.handleExplain)
	mux.HandleFunc("GET /docs", s.handleDocs)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.recoverPanics(mux)
}

// recoverPanics is the handler-goroutine safety net. Evaluation paths
// recover closer to the panic (evalOne, the stream loops, flight
// drives, morsel workers) so they can release resources and answer
// precisely; this middleware catches what escapes anyway — net/http
// would only log it and sever the connection, which a load balancer
// cannot tell apart from a crash.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				// Best effort: if the handler already wrote headers the
				// status is lost, but the connection still ends cleanly.
				s.fail(w, http.StatusInternalServerError, "%v", fault.NewPanicError(v))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// BeginDrain flips /readyz to 503 so load balancers stop routing new
// work here; in-flight requests (including streams) keep running.
// xpathd calls it on SIGINT/SIGTERM before http.Server.Shutdown, which
// then waits for the in-flight handlers to finish.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called (tests, /readyz).
func (s *Server) Draining() bool { return s.draining.Load() }

// maxBody is the request-body cap for the JSON endpoints.
func (s *Server) maxBody() int64 {
	if s.cfg.MaxBodyBytes > 0 {
		return s.cfg.MaxBodyBytes
	}
	return defaultMaxBodyBytes
}

// requestCtx derives the evaluation context: the client's context
// bounded by the server default timeout, optionally lowered — never
// raised — by the request's timeoutMs.
func (s *Server) requestCtx(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	d := s.cfg.RequestTimeout
	if timeoutMs > 0 {
		rd := time.Duration(timeoutMs) * time.Millisecond
		if d <= 0 || rd < d {
			d = rd
		}
	}
	if d <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), d)
}

// QueryOptions selects the evaluation configuration, mirroring
// engine.Options with JSON-friendly names.
type QueryOptions struct {
	// Strategy: staircase (default), staircase-skip, staircase-noskip,
	// naive, sql, sql-window.
	Strategy string `json:"strategy,omitempty"`
	// Pushdown: auto (default), always, never.
	Pushdown string `json:"pushdown,omitempty"`
	// Parallelism: 0/1 serial, N > 1 up to N staircase-join workers,
	// -1 all cores. Clamped to the server's worker budget.
	Parallelism int `json:"parallelism,omitempty"`
	// MorselWorkers: 0/1 serial streaming, N > 1 up to N morsel workers
	// inside each streaming cursor, -1 all cores. Clamped to the
	// server's worker budget.
	MorselWorkers int `json:"morselWorkers,omitempty"`
	// NoIndex evaluates without the shared tag/kind index (per-query
	// column rescans; results are identical — ablation knob).
	NoIndex bool `json:"noIndex,omitempty"`
	// NoValueIndex evaluates value predicates without the value index
	// (per-node string comparison; results are identical — ablation
	// knob).
	NoValueIndex bool `json:"noValueIndex,omitempty"`
	// NoReorder evaluates predicates strictly in source order, without
	// greedy ordering or adaptive re-planning (results are identical —
	// ablation knob).
	NoReorder bool `json:"noReorder,omitempty"`
}

// QueryRequest is the POST /query body. Query and Queries may be
// combined; all run against the one named document.
type QueryRequest struct {
	Doc     string        `json:"doc"`
	Query   string        `json:"query,omitempty"`
	Queries []string      `json:"queries,omitempty"`
	Options *QueryOptions `json:"options,omitempty"`
	// NoCache bypasses the result cache (no lookup, no store).
	NoCache bool `json:"noCache,omitempty"`
	// Limit stops each query after its first N result nodes via the
	// streaming executor (the join kernels never scan past what the
	// limit needs); 0 returns all nodes. Limited results are cached
	// under (canonical plan, limit).
	Limit int `json:"limit,omitempty"`
	// TimeoutMs lowers the server's request timeout for this request;
	// it can never raise it. 0 keeps the server default.
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// QueryResult is the outcome of one query of a batch.
type QueryResult struct {
	Query string `json:"query"`
	// Count is the number of nodes returned (under a limit: at most
	// the limit — the full cardinality is deliberately not computed).
	Count int     `json:"count"`
	Nodes []int32 `json:"nodes"`
	// Truncated reports that the limit stopped the evaluation while
	// further results may exist.
	Truncated bool `json:"truncated,omitempty"`
	Cached    bool `json:"cached"`
	// Coalesced reports that the query attached to an in-flight
	// execution of the same plan instead of starting its own
	// (Config.ShareScans).
	Coalesced bool   `json:"coalesced,omitempty"`
	ElapsedNs int64  `json:"elapsedNs"`
	Error     string `json:"error,omitempty"`
	// status classifies the error for HTTP propagation: 0 on success,
	// else one of 400/408/499/500/503. Single-query requests surface it
	// as the response code; batches stay 200 with per-item errors.
	status int
}

// QueryResponse is the POST /query response. Results align with the
// request's query order (Query first, then Queries).
type QueryResponse struct {
	Doc        string        `json:"doc"`
	Generation uint64        `json:"generation"`
	Results    []QueryResult `json:"results"`
}

var strategies = map[string]engine.Strategy{
	"":                 engine.Staircase,
	"staircase":        engine.Staircase,
	"staircase-skip":   engine.StaircaseSkip,
	"staircase-noskip": engine.StaircaseNoSkip,
	"naive":            engine.Naive,
	"sql":              engine.SQL,
	"sql-window":       engine.SQLWindow,
}

var pushdowns = map[string]engine.Pushdown{
	"":       engine.PushAuto,
	"auto":   engine.PushAuto,
	"always": engine.PushAlways,
	"never":  engine.PushNever,
}

// engineOptions resolves request options against server defaults and
// clamps parallelism to the worker budget: the engine never spawns more
// join workers for one query than the units the query holds in the
// pool, keeping the "cannot oversubscribe the machine" contract honest.
func (s *Server) engineOptions(o *QueryOptions) (*engine.Options, error) {
	opts := &engine.Options{
		Parallelism:   s.cfg.DefaultParallelism,
		MorselWorkers: s.cfg.MorselWorkers,
		NoIndex:       s.cfg.NoIndex,
		NoValueIndex:  s.cfg.NoValueIndex,
		NoReorder:     s.cfg.NoReorder,
	}
	if o != nil {
		if o.NoIndex {
			opts.NoIndex = true
		}
		if o.NoValueIndex {
			opts.NoValueIndex = true
		}
		if o.NoReorder {
			opts.NoReorder = true
		}
		strat, ok := strategies[o.Strategy]
		if !ok {
			return nil, fmt.Errorf("unknown strategy %q", o.Strategy)
		}
		push, ok := pushdowns[o.Pushdown]
		if !ok {
			return nil, fmt.Errorf("unknown pushdown mode %q", o.Pushdown)
		}
		opts.Strategy = strat
		opts.Pushdown = push
		if o.Parallelism != 0 {
			opts.Parallelism = o.Parallelism
		}
		if o.MorselWorkers != 0 {
			opts.MorselWorkers = o.MorselWorkers
		}
	}
	p := opts.Parallelism
	if p < 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > s.pool.cap {
		p = s.pool.cap
	}
	if p < 1 {
		p = 1
	}
	opts.Parallelism = p
	mw := opts.MorselWorkers
	if mw < 0 {
		mw = runtime.GOMAXPROCS(0)
	}
	if mw > s.pool.cap {
		mw = s.pool.cap
	}
	if mw < 1 {
		mw = 1
	}
	opts.MorselWorkers = mw
	return opts, nil
}

// workerCost is the number of worker-budget units a query holds while
// evaluating: its effective intra-query parallelism — batch partition
// workers or streaming morsel workers, whichever is wider (engineOptions
// has already resolved and clamped both).
func workerCost(opts *engine.Options) int {
	cost := opts.Parallelism
	if opts.MorselWorkers > cost {
		cost = opts.MorselWorkers
	}
	return cost
}

// cacheKey builds the result-cache key from the canonical
// optimized-plan string. Document generation guards against
// reload-after-eviction serving stale results; the canonical plan
// covers the operator tree, strategy and pushdown policy, and — by
// construction — collapses equivalent query texts ("//a/b" vs its
// unabbreviated spelling) onto one entry, while parallelism and the
// NoIndex ablation knob stay excluded (both are property-tested to be
// byte-identical to the default evaluation).
func cacheKey(docName string, gen uint64, canon string) string {
	var sb strings.Builder
	sb.Grow(len(docName) + len(canon) + 24)
	sb.WriteString(docName)
	sb.WriteByte(0)
	sb.WriteString(strconv.FormatUint(gen, 10))
	sb.WriteByte(0)
	sb.WriteString(canon)
	return sb.String()
}

// preparedKey identifies a physical plan: document generation, full
// options signature (parallelism and NoIndex change how a plan
// executes, so prepared handles are per-knob even though results are
// not), and the query text.
func preparedKey(docName string, gen uint64, opts *engine.Options, query string) string {
	var sb strings.Builder
	sb.Grow(len(docName) + len(query) + 48)
	sb.WriteString(docName)
	sb.WriteByte(0)
	sb.WriteString(strconv.FormatUint(gen, 10))
	sb.WriteByte(0)
	sb.WriteString(opts.Strategy.String())
	sb.WriteByte(0)
	sb.WriteString(opts.Pushdown.String())
	sb.WriteByte(0)
	sb.WriteString(strconv.Itoa(opts.Parallelism))
	if opts.MorselWorkers > 1 {
		sb.WriteString(",morsels=")
		sb.WriteString(strconv.Itoa(opts.MorselWorkers))
	}
	if opts.NoIndex {
		sb.WriteString(",noindex")
	}
	if opts.NoValueIndex {
		sb.WriteString(",novalueindex")
	}
	if opts.NoReorder {
		sb.WriteString(",noreorder")
	}
	sb.WriteByte(0)
	sb.WriteString(query)
	return sb.String()
}

// compile returns a compiled handle for the query text, LRU-cached.
func (s *Server) compile(query string) (*engine.Compiled, error) {
	s.compiledMu.Lock()
	if el, ok := s.compiled[query]; ok {
		s.compiledLL.MoveToFront(el)
		c := el.Value.(*compiledEntry).c
		s.compiledMu.Unlock()
		return c, nil
	}
	s.compiledMu.Unlock()

	c, err := engine.Compile(query) // parse outside the lock
	if err != nil {
		return nil, err
	}

	s.compiledMu.Lock()
	defer s.compiledMu.Unlock()
	if el, ok := s.compiled[query]; ok { // raced: keep the first
		s.compiledLL.MoveToFront(el)
		return el.Value.(*compiledEntry).c, nil
	}
	s.compiled[query] = s.compiledLL.PushFront(&compiledEntry{src: query, c: c})
	for len(s.compiled) > maxCompiled {
		el := s.compiledLL.Back()
		e := s.compiledLL.Remove(el).(*compiledEntry)
		delete(s.compiled, e.src)
	}
	return c, nil
}

// prepare returns the physical plan for (document, options, query),
// LRU-cached per document generation: parse and logical rewrite come
// from the compiled-query cache, the optimizer runs once per
// generation × options × text.
func (s *Server) prepare(h *catalog.Handle, query string, opts *engine.Options) (*engine.Prepared, error) {
	key := preparedKey(h.Name(), h.Generation(), opts, query)
	if v, ok := s.preparedFast.Load(key); ok {
		// The key embeds the generation, so a fast hit can never serve
		// a stale document copy.
		s.planHits.Add(1)
		return v.(*preparedEntry).p, nil
	}
	s.preparedMu.Lock()
	s.dropStalePlansLocked(h.Name(), h.Generation())
	if el, ok := s.prepared[key]; ok {
		s.preparedLL.MoveToFront(el)
		p := el.Value.(*preparedEntry).p
		s.preparedMu.Unlock()
		s.planHits.Add(1)
		return p, nil
	}
	s.preparedMu.Unlock()
	s.planMisses.Add(1)

	c, err := s.compile(query)
	if err != nil {
		return nil, err
	}
	p, err := h.Engine().Prepare(c, opts) // optimize outside the lock
	if err != nil {
		return nil, err
	}

	s.preparedMu.Lock()
	defer s.preparedMu.Unlock()
	if el, ok := s.prepared[key]; ok { // raced: keep the first
		s.preparedLL.MoveToFront(el)
		return el.Value.(*preparedEntry).p, nil
	}
	entry := &preparedEntry{key: key, doc: h.Name(), gen: h.Generation(), p: p}
	s.prepared[key] = s.preparedLL.PushFront(entry)
	s.preparedFast.Store(key, entry)
	for len(s.prepared) > maxPrepared {
		el := s.preparedLL.Back()
		e := s.preparedLL.Remove(el).(*preparedEntry)
		delete(s.prepared, e.key)
		s.preparedFast.Delete(e.key)
	}
	return p, nil
}

// dropStalePlansLocked evicts every cached plan of a document whose
// generation is older than the one now resident. A prepared plan
// holds its document (encoding + index) alive, so without this a
// catalog reload would leave up to maxPrepared stale plans pinning
// the previous copy in memory alongside the new one. (Plans of a
// document that was evicted and never reopened age out of the LRU
// normally; until then they pin that document — the prepared cache
// trades that bounded residency for not re-optimizing on every
// request.)
func (s *Server) dropStalePlansLocked(doc string, gen uint64) {
	if s.preparedGen[doc] == gen {
		return
	}
	s.preparedGen[doc] = gen
	for el := s.preparedLL.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*preparedEntry); e.doc == doc && e.gen != gen {
			s.preparedLL.Remove(el)
			delete(s.prepared, e.key)
			s.preparedFast.Delete(e.key)
		}
		el = next
	}
}

// classifyEvalErr fills a result's error and status from an
// evaluation failure: shed → 503, deadline → 408, client gone → 499
// (each counted), anything else — injected faults, recovered panics,
// corrupt state — → 500.
func (s *Server) classifyEvalErr(ctx context.Context, res *QueryResult, err error) {
	res.Error = err.Error()
	switch {
	case errors.Is(err, errShed):
		res.status = http.StatusServiceUnavailable
	case ctx != nil && errors.Is(ctx.Err(), context.DeadlineExceeded):
		s.timeouts.Add(1)
		res.status = http.StatusRequestTimeout
	case ctx != nil && errors.Is(ctx.Err(), context.Canceled):
		s.cancels.Add(1)
		res.status = statusClientClosed
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
		res.status = http.StatusRequestTimeout
	default:
		res.status = http.StatusInternalServerError
	}
}

// evalOne answers a single query of a batch: prepare (plan caches),
// result cache on the canonical plan (extended with the limit for
// truncated results), then execute under the worker budget. ctx
// cancellation (request timeout, client disconnect) stops the
// execution between batches. A panic anywhere below — batch items run
// on their own goroutines, where an uncaught panic kills the process —
// is recovered into a 500-classified result; the deferred release
// keeps the worker budget balanced on that path.
func (s *Server) evalOne(ctx context.Context, h *catalog.Handle, query string, opts *engine.Options, noCache bool, limit int) (res QueryResult) {
	start := time.Now()
	res = QueryResult{Query: query}
	defer func() {
		if v := recover(); v != nil {
			res.Error = fault.NewPanicError(v).Error()
			res.status = http.StatusInternalServerError
			res.ElapsedNs = time.Since(start).Nanoseconds()
		}
	}()
	p, err := s.prepare(h, query, opts)
	if err != nil {
		res.Error = err.Error()
		res.status = http.StatusBadRequest
		return res
	}
	key := cacheKey(h.Name(), h.Generation(), p.Canon())
	if limit > 0 {
		// Truncated results must never collide with full ones (or with
		// other limits): the limit joins the key.
		key += "\x00limit=" + strconv.Itoa(limit)
	}
	if !noCache {
		if nodes, ok := s.cache.Get(key); ok {
			s.cacheHits.Add(1)
			res.Nodes = nodes
			res.Count = len(nodes)
			// A stored limited result of exactly `limit` nodes may have
			// more behind it — the same conservative report EvalLimit
			// itself gives at the boundary.
			res.Truncated = limit > 0 && len(nodes) >= limit
			res.Cached = true
			res.ElapsedNs = time.Since(start).Nanoseconds()
			return res
		}
		s.cacheMisses.Add(1)
	}
	if s.cfg.ShareScans && !noCache {
		nodes, coalesced, serr := s.sharedEval(ctx, p, key, opts, limit)
		elapsed := time.Since(start)
		h.RecordQuery(elapsed)
		res.ElapsedNs = elapsed.Nanoseconds()
		if serr != nil {
			s.classifyEvalErr(ctx, &res, serr)
			return res
		}
		res.Nodes = nodes
		res.Count = len(nodes)
		res.Truncated = limit > 0 && len(nodes) >= limit
		res.Coalesced = coalesced
		return res
	}
	cost, err := s.pool.acquire(ctx, workerCost(opts))
	if err != nil {
		res.ElapsedNs = time.Since(start).Nanoseconds()
		s.classifyEvalErr(ctx, &res, err)
		return res
	}
	// Deferred (not inline after eval) so a panicking operator cannot
	// leak its units past the recover above.
	defer s.pool.release(cost)
	var r *engine.Result
	if limit > 0 {
		r, err = p.EvalLimit(ctx, limit)
	} else {
		r, err = p.RunCtx(ctx)
	}
	elapsed := time.Since(start)
	h.RecordQuery(elapsed)
	res.ElapsedNs = elapsed.Nanoseconds()
	if err != nil {
		s.classifyEvalErr(ctx, &res, err)
		return res
	}
	res.Nodes = r.Nodes
	res.Count = len(r.Nodes)
	res.Truncated = r.Truncated
	if !noCache {
		s.cache.Put(key, r.Nodes)
	}
	return res
}

// limitCursor caps a streaming cursor at its flight's limit: the
// coalesced counterpart of EvalLimit. Reporting exhaustion at the cap
// makes the flight finish and close the underlying cursor, so the
// kernels never scan past what the limit needs.
type limitCursor struct {
	cur interface {
		Next() ([]int32, error)
		Close()
	}
	left int
}

func (l *limitCursor) Next() ([]int32, error) {
	if l.left <= 0 {
		return nil, nil
	}
	b, err := l.cur.Next()
	if err != nil || b == nil {
		return nil, err
	}
	if len(b) > l.left {
		b = b[:l.left]
	}
	l.left -= len(b)
	return b, nil
}

func (l *limitCursor) Close() { l.cur.Close() }

// sharedEval evaluates through the pace-car registry: identical
// concurrent cache misses share one execution keyed exactly like their
// cache entry, and the completed buffer retires into the cache through
// the flight. The returned bool reports coalescing (this client
// attached to a flight another request created).
func (s *Server) sharedEval(ctx context.Context, p *engine.Prepared, key string, opts *engine.Options, limit int) ([]int32, bool, error) {
	open := func(fctx context.Context) (share.Cursor, error) {
		cur, err := p.Cursor(fctx)
		if err != nil {
			return nil, err
		}
		if limit > 0 {
			return &limitCursor{cur: cur, left: limit}, nil
		}
		return cur, nil
	}
	retire := func(nodes []int32) { s.cache.Put(key, nodes) }
	f, created := s.flights.Join(key, workerCost(opts), open, retire)
	defer f.Close()
	var nodes []int32
	for {
		b, err := f.Next(ctx)
		if err != nil {
			return nil, !created, err
		}
		if b == nil {
			return nodes, !created, nil
		}
		nodes = append(nodes, b...)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody()))
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	queries := req.Queries
	if req.Query != "" {
		queries = append([]string{req.Query}, queries...)
	}
	if len(queries) == 0 {
		s.fail(w, http.StatusBadRequest, "no query given")
		return
	}
	if len(queries) > s.cfg.MaxBatch {
		s.fail(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(queries), s.cfg.MaxBatch)
		return
	}
	opts, err := s.engineOptions(req.Options)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	h, err := s.cat.Open(req.Doc)
	if err != nil {
		s.fail(w, openStatus(err), "%v", err)
		return
	}
	defer h.Close()

	ctx, cancel := s.requestCtx(r, req.TimeoutMs)
	defer cancel()
	ctx = fault.WithTag(ctx, "query")

	resp := QueryResponse{Doc: h.Name(), Generation: h.Generation(), Results: make([]QueryResult, len(queries))}
	// Each batch item is an independent goroutine; the worker semaphore
	// inside evalOne bounds how many actually evaluate at once.
	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q string) {
			defer wg.Done()
			resp.Results[i] = s.evalOne(ctx, h, q, opts, req.NoCache, req.Limit)
		}(i, q)
	}
	wg.Wait()

	s.queries.Add(int64(len(queries)))
	if len(queries) > 1 {
		s.batches.Add(1)
	}
	for i := range resp.Results {
		res := &resp.Results[i]
		if res.Error != "" {
			s.errors.Add(1)
		}
		if res.Nodes == nil {
			res.Nodes = []int32{} // marshal as [] rather than null
		}
	}
	// A single-query request surfaces its item's failure as the HTTP
	// status (503 carries Retry-After so clients back off; a gone
	// client gets nothing). Batches stay 200 with per-item errors: a
	// shed or timed-out item must not mask its siblings' results.
	if len(queries) == 1 && resp.Results[0].status != 0 {
		code := resp.Results[0].status
		if code == statusClientClosed {
			return
		}
		if code == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, code, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// StreamChunk is one NDJSON line of a POST /stream response: either a
// batch of result nodes, the terminal summary, or an error.
type StreamChunk struct {
	Nodes []int32 `json:"nodes,omitempty"`
	// Done marks the terminal line; Count is the total nodes streamed
	// and Truncated whether a limit stopped the stream early.
	Done      bool `json:"done,omitempty"`
	Count     int  `json:"count,omitempty"`
	Truncated bool `json:"truncated,omitempty"`
	// Coalesced (terminal line) reports that the stream attached to an
	// in-flight execution instead of starting its own; Cached that it
	// was served from the result cache (both Config.ShareScans).
	Coalesced bool   `json:"coalesced,omitempty"`
	Cached    bool   `json:"cached,omitempty"`
	ElapsedNs int64  `json:"elapsedNs,omitempty"`
	Error     string `json:"error,omitempty"`
}

// handleStream answers POST /stream: one query, evaluated through the
// streaming cursor executor, with each result batch written as one
// NDJSON line as soon as the kernels produce it. The stream holds its
// worker-budget units for its whole duration; a client disconnect
// cancels the request context, the cursor stops between batches, and
// the units release.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody()))
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Query == "" || len(req.Queries) > 0 {
		s.fail(w, http.StatusBadRequest, "POST /stream takes exactly one query")
		return
	}
	opts, err := s.engineOptions(req.Options)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	h, err := s.cat.Open(req.Doc)
	if err != nil {
		s.fail(w, openStatus(err), "%v", err)
		return
	}
	defer h.Close()
	p, err := s.prepare(h, req.Query, opts)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMs)
	defer cancel()
	ctx = fault.WithTag(ctx, "stream")
	if s.cfg.ShareScans && !req.NoCache {
		s.streamShared(w, ctx, h, p, opts, req)
		return
	}
	start := time.Now()
	cost, err := s.pool.acquire(ctx, workerCost(opts))
	if err != nil {
		s.failEval(w, ctx, err)
		return
	}
	defer s.pool.release(cost)
	cur, err := p.Cursor(ctx)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cur.Close()

	s.streams.Add(1)
	s.queries.Add(1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	count := 0
	truncated := false
	for {
		b, err := safeStreamNext(cur)
		if err != nil {
			s.streamError(enc, ctx, err)
			return
		}
		if b == nil {
			break
		}
		if req.Limit > 0 && count+len(b) >= req.Limit {
			b = b[:req.Limit-count]
			count += len(b)
			if len(b) > 0 {
				_ = enc.Encode(StreamChunk{Nodes: b})
			}
			truncated = true // limit reached; more may exist
			break
		}
		count += len(b)
		_ = enc.Encode(StreamChunk{Nodes: b})
		if flusher != nil {
			flusher.Flush()
		}
	}
	elapsed := time.Since(start)
	h.RecordQuery(elapsed)
	_ = enc.Encode(StreamChunk{Done: true, Count: count, Truncated: truncated, ElapsedNs: elapsed.Nanoseconds()})
}

// safeStreamNext pulls the next batch from a streaming cursor with
// panic containment: the stream loop runs on the handler goroutine
// mid-response, so a panicking operator must become an NDJSON error
// line, not a severed connection.
func safeStreamNext(cur interface{ Next() ([]int32, error) }) (b []int32, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fault.NewPanicError(v)
		}
	}()
	return cur.Next()
}

// streamError terminates a stream with an error line, counting
// timeouts and cancels like the batch path.
func (s *Server) streamError(enc *json.Encoder, ctx context.Context, err error) {
	var res QueryResult
	s.classifyEvalErr(ctx, &res, err)
	s.errors.Add(1)
	_ = enc.Encode(StreamChunk{Error: err.Error()})
}

// failEval maps an admission or deadline failure to an HTTP response,
// for endpoints that have not started writing a body: 503 carries
// Retry-After, a gone client (499) gets nothing.
func (s *Server) failEval(w http.ResponseWriter, ctx context.Context, err error) {
	var res QueryResult
	s.classifyEvalErr(ctx, &res, err)
	switch res.status {
	case statusClientClosed:
		s.errors.Add(1)
		return
	case http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", "1")
	}
	s.fail(w, res.status, "%v", err)
}

// streamShared answers POST /stream through the pace-car registry:
// the stream is keyed exactly like its result-cache entry, a cache hit
// replays the retired buffer of an earlier flight, and a miss joins
// (or creates) the in-flight execution — identical concurrent cold
// streams run the plan exactly once. Only the current driver holds
// worker-budget units (via the registry's wheel hooks); followers are
// blocked handlers replaying shared batches.
func (s *Server) streamShared(w http.ResponseWriter, ctx context.Context, h *catalog.Handle, p *engine.Prepared, opts *engine.Options, req QueryRequest) {
	key := cacheKey(h.Name(), h.Generation(), p.Canon())
	if req.Limit > 0 {
		key += "\x00limit=" + strconv.Itoa(req.Limit)
	}
	start := time.Now()
	s.streams.Add(1)
	s.queries.Add(1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	finish := func(count int, coalesced, cached bool) {
		elapsed := time.Since(start)
		h.RecordQuery(elapsed)
		_ = enc.Encode(StreamChunk{
			Done:      true,
			Count:     count,
			Truncated: req.Limit > 0 && count >= req.Limit,
			Coalesced: coalesced,
			Cached:    cached,
			ElapsedNs: elapsed.Nanoseconds(),
		})
	}
	if nodes, ok := s.cache.Get(key); ok {
		s.cacheHits.Add(1)
		const chunk = 1024
		for off := 0; off < len(nodes); off += chunk {
			end := min(off+chunk, len(nodes))
			_ = enc.Encode(StreamChunk{Nodes: nodes[off:end]})
		}
		finish(len(nodes), false, true)
		return
	}
	s.cacheMisses.Add(1)
	open := func(fctx context.Context) (share.Cursor, error) {
		cur, err := p.Cursor(fctx)
		if err != nil {
			return nil, err
		}
		if req.Limit > 0 {
			return &limitCursor{cur: cur, left: req.Limit}, nil
		}
		return cur, nil
	}
	retire := func(nodes []int32) { s.cache.Put(key, nodes) }
	f, created := s.flights.Join(key, workerCost(opts), open, retire)
	defer f.Close()
	count := 0
	for {
		b, err := f.Next(ctx)
		if err != nil {
			s.streamError(enc, ctx, err)
			return
		}
		if b == nil {
			break
		}
		count += len(b)
		_ = enc.Encode(StreamChunk{Nodes: b})
		if flusher != nil {
			flusher.Flush()
		}
	}
	finish(count, !created, false)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	query := q.Get("q")
	if query == "" {
		s.fail(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	par := 0
	if v := q.Get("parallelism"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "bad parallelism %q", v)
			return
		}
		par = n
	}
	morsels := 0
	if v := q.Get("morselWorkers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "bad morselWorkers %q", v)
			return
		}
		morsels = n
	}
	noIndex := false
	if v := q.Get("noIndex"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "bad noIndex %q", v)
			return
		}
		noIndex = b
	}
	noValueIndex := false
	if v := q.Get("noValueIndex"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "bad noValueIndex %q", v)
			return
		}
		noValueIndex = b
	}
	noReorder := false
	if v := q.Get("noReorder"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "bad noReorder %q", v)
			return
		}
		noReorder = b
	}
	opts, err := s.engineOptions(&QueryOptions{
		Strategy:      q.Get("strategy"),
		Pushdown:      q.Get("pushdown"),
		Parallelism:   par,
		MorselWorkers: morsels,
		NoIndex:       noIndex,
		NoValueIndex:  noValueIndex,
		NoReorder:     noReorder,
	})
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	h, err := s.cat.Open(q.Get("doc"))
	if err != nil {
		s.fail(w, openStatus(err), "%v", err)
		return
	}
	defer h.Close()
	p, err := s.prepare(h, query, opts)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Explain executes the plan, so it holds worker-budget units just
	// like POST /query — explain traffic cannot oversubscribe the
	// machine, and under overload it is shed the same way.
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	cost, err := s.pool.acquire(ctx, workerCost(opts))
	if err != nil {
		s.failEval(w, ctx, err)
		return
	}
	defer s.pool.release(cost)
	if q.Get("format") == "json" {
		out, err := p.ExplainJSON()
		if err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(out)
		return
	}
	out, err := p.Explain()
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, out)
	if s.cfg.ShareScans {
		created, coalesced, handoffs := s.flights.Stats()
		fmt.Fprintf(w, "share-scans: on flights=%d coalesced=%d handoffs=%d\n",
			created, coalesced, handoffs)
	}
}

func (s *Server) handleDocs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"docs": s.cat.Info()})
}

// handleHealthz is pure liveness: the process is up and serving HTTP.
// It deliberately touches no shared locks and always answers 200 —
// orchestrators restart on its failure, so it must not flap under
// load. Routability belongs to /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"uptimeSeconds": int64(time.Since(s.start).Seconds()),
	})
}

// handleReadyz is readiness: 503 while draining (shutdown in
// progress) or while the admission queue is saturated, so load
// balancers route new work elsewhere before it would be shed.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
	case s.pool.saturated():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":     "saturated",
			"queueDepth": s.pool.queueDepth(),
		})
	default:
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	emit := func(name string, v int64) { fmt.Fprintf(w, "xpathd_%s %d\n", name, v) }
	emit("queries_total", s.queries.Load())
	emit("batch_requests_total", s.batches.Load())
	emit("stream_requests_total", s.streams.Load())
	emit("cancelled_queries_total", s.cancels.Load())
	emit("cache_hits_total", s.cacheHits.Load())
	emit("cache_misses_total", s.cacheMisses.Load())
	emit("cache_entries", int64(s.cache.Len()))
	emit("cache_bytes", s.cache.Bytes())
	emit("plan_cache_hits_total", s.planHits.Load())
	emit("plan_cache_misses_total", s.planMisses.Load())
	s.preparedMu.Lock()
	emit("plan_cache_entries", int64(len(s.prepared)))
	s.preparedMu.Unlock()
	created, coalesced, handoffs := s.flights.Stats()
	emit("shared_flights_total", created)
	emit("coalesced_queries_total", coalesced)
	emit("pace_car_handoffs_total", handoffs)
	emit("shared_flights_in_flight", int64(s.flights.InFlight()))
	emit("errors_total", s.errors.Load())
	emit("shed_queries_total", s.pool.shedCount())
	emit("timeout_queries_total", s.timeouts.Load())
	emit("panics_recovered_total", fault.Recovered())
	emit("plan_reorders_total", plan.Reorders())
	emit("adaptive_replans_total", plan.AdaptiveReplans())
	emit("workers_in_use", int64(s.pool.inUse()))
	emit("workers_capacity", int64(s.pool.cap))
	emit("worker_queue_depth", int64(s.pool.queueDepth()))
	emit("catalog_resident_bytes", s.cat.ResidentBytes())
	emit("catalog_index_bytes", s.cat.IndexBytes())
	emit("catalog_value_index_bytes", s.cat.ValueIndexBytes())
	emit("uptime_seconds", int64(time.Since(s.start).Seconds()))
}

// CacheStats reports result-cache hit/miss counters (tests, benchmarks).
func (s *Server) CacheStats() (hits, misses int64) {
	return s.cacheHits.Load(), s.cacheMisses.Load()
}

// PlanCacheStats reports prepared-plan cache hit/miss counters (tests,
// benchmarks).
func (s *Server) PlanCacheStats() (hits, misses int64) {
	return s.planHits.Load(), s.planMisses.Load()
}

// ShareStats reports pace-car registry counters — flights created
// (cold executions started), queries coalesced onto an existing
// flight, and mid-flight wheel handoffs (tests, benchmarks).
func (s *Server) ShareStats() (created, coalesced, handoffs int64) {
	return s.flights.Stats()
}

// openStatus maps a catalog.Open error to an HTTP status: unknown
// names are the client's fault, load failures are the server's.
func openStatus(err error) int {
	if errors.Is(err, catalog.ErrUnknownDocument) {
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.errors.Add(1)
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
