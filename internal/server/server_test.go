package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"staircase/internal/catalog"
	"staircase/internal/engine"
	"staircase/internal/xmark"
)

// newTestServer builds a server over generated XMark documents: "mem"
// is pinned in memory, "disk" is registered from an XML file so the
// lazy-load path runs too. It returns the server, the HTTP test server,
// and a serial reference engine per document.
func newTestServer(t testing.TB, cacheBytes int64) (*Server, *httptest.Server, map[string]*engine.Engine) {
	t.Helper()
	cat := catalog.New(0)
	ref := make(map[string]*engine.Engine)

	dm, err := xmark.Generate(xmark.Config{SizeMB: 0.08, Seed: 1, KeepValues: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddDocument("mem", dm); err != nil {
		t.Fatal(err)
	}
	ref["mem"] = engine.New(dm)

	path := filepath.Join(t.TempDir(), "disk.xml")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := xmark.Write(f, xmark.Config{SizeMB: 0.12, Seed: 2, KeepValues: true}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register("disk", path, catalog.FormatAuto); err != nil {
		t.Fatal(err)
	}
	h, err := cat.Open("disk")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	ref["disk"] = engine.New(h.Document())

	s := New(Config{Catalog: cat, CacheBytes: cacheBytes})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, ref
}

func postQuery(t testing.TB, url string, req QueryRequest) (QueryResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out QueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return out, resp.StatusCode
}

func sameNodes(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestQuerySingleBatchAndCache(t *testing.T) {
	s, ts, ref := newTestServer(t, 1<<20)
	const q1 = "/descendant::profile/descendant::education"
	const q2 = "/descendant::increase/ancestor::bidder"

	want1, err := ref["mem"].EvalString(q1, nil)
	if err != nil {
		t.Fatal(err)
	}

	resp, code := postQuery(t, ts.URL, QueryRequest{Doc: "mem", Query: q1})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Results) != 1 || resp.Results[0].Error != "" {
		t.Fatalf("results: %+v", resp.Results)
	}
	if resp.Results[0].Cached {
		t.Fatal("first evaluation reported cached")
	}
	if !sameNodes(resp.Results[0].Nodes, want1.Nodes) {
		t.Fatal("server nodes differ from engine nodes")
	}

	// Second time: cache hit, identical nodes.
	resp, _ = postQuery(t, ts.URL, QueryRequest{Doc: "mem", Query: q1})
	if !resp.Results[0].Cached {
		t.Fatal("repeat evaluation not served from cache")
	}
	if !sameNodes(resp.Results[0].Nodes, want1.Nodes) {
		t.Fatal("cached nodes differ")
	}
	if hits, _ := s.CacheStats(); hits == 0 {
		t.Fatal("no cache hits recorded")
	}

	// Batch: order preserved, one bad query fails alone.
	resp, code = postQuery(t, ts.URL, QueryRequest{Doc: "mem", Queries: []string{q2, "///", q1}})
	if code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("batch returned %d results", len(resp.Results))
	}
	if resp.Results[0].Query != q2 || resp.Results[2].Query != q1 {
		t.Fatal("batch result order not preserved")
	}
	if resp.Results[1].Error == "" {
		t.Fatal("malformed query in batch did not report an error")
	}
	if resp.Results[1].Count != 0 || len(resp.Results[1].Nodes) != 0 {
		t.Fatal("failed query carried nodes")
	}
	if !sameNodes(resp.Results[2].Nodes, want1.Nodes) {
		t.Fatal("batch nodes differ")
	}

	// Limit stops the evaluation after the first node (streaming
	// executor): the response carries the prefix, count matches it,
	// and truncated reports that more results may exist. The truncated
	// result is cached under (plan, limit) — a full-result cache entry
	// must not be served.
	resp, _ = postQuery(t, ts.URL, QueryRequest{Doc: "mem", Query: q1, Limit: 1})
	r := resp.Results[0]
	if r.Count != 1 || len(r.Nodes) != 1 || !r.Truncated {
		t.Fatalf("limit handling: %+v", r)
	}
	if r.Nodes[0] != want1.Nodes[0] {
		t.Fatalf("limit returned %d, want prefix of %v", r.Nodes[0], want1.Nodes)
	}
	resp, _ = postQuery(t, ts.URL, QueryRequest{Doc: "mem", Query: q1, Limit: 1})
	r = resp.Results[0]
	if !r.Cached || r.Count != 1 || !r.Truncated {
		t.Fatalf("limited result not cached under its limit key: %+v", r)
	}
	// And the full result stays full after the limited run.
	resp, _ = postQuery(t, ts.URL, QueryRequest{Doc: "mem", Query: q1})
	if !sameNodes(resp.Results[0].Nodes, want1.Nodes) {
		t.Fatal("full result corrupted by limited cache entry")
	}
}

func TestQueryErrors(t *testing.T) {
	_, ts, _ := newTestServer(t, 0)
	if _, code := postQuery(t, ts.URL, QueryRequest{Doc: "nope", Query: "/descendant::a"}); code != http.StatusNotFound {
		t.Fatalf("unknown doc: status %d", code)
	}
	if _, code := postQuery(t, ts.URL, QueryRequest{Doc: "mem"}); code != http.StatusBadRequest {
		t.Fatalf("empty query: status %d", code)
	}
	if _, code := postQuery(t, ts.URL, QueryRequest{
		Doc: "mem", Query: "/descendant::a",
		Options: &QueryOptions{Strategy: "quantum"},
	}); code != http.StatusBadRequest {
		t.Fatalf("bad strategy: status %d", code)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: status %d", resp.StatusCode)
	}
}

func TestExplainDocsHealthMetrics(t *testing.T) {
	_, ts, _ := newTestServer(t, 1<<20)
	get := func(path string) (string, int) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b), resp.StatusCode
	}
	body, code := get("/explain?doc=mem&q=/descendant::increase/ancestor::bidder&parallelism=2")
	if code != http.StatusOK || !bytes.Contains([]byte(body), []byte("staircase join")) {
		t.Fatalf("explain: %d %q", code, body)
	}
	if _, code = get("/explain?doc=mem"); code != http.StatusBadRequest {
		t.Fatalf("explain without q: %d", code)
	}
	body, code = get("/docs")
	if code != http.StatusOK || !bytes.Contains([]byte(body), []byte(`"mem"`)) || !bytes.Contains([]byte(body), []byte(`"disk"`)) {
		t.Fatalf("docs: %d %q", code, body)
	}
	if body, code = get("/healthz"); code != http.StatusOK || !bytes.Contains([]byte(body), []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %q", code, body)
	}
	postQuery(t, ts.URL, QueryRequest{Doc: "mem", Query: "/descendant::person"})
	body, code = get("/metrics")
	if code != http.StatusOK || !bytes.Contains([]byte(body), []byte("xpathd_queries_total")) {
		t.Fatalf("metrics: %d %q", code, body)
	}
}

// xmarkTags is a slice of tag names the generator emits — the
// vocabulary for randomized queries.
var xmarkTags = []string{
	"person", "profile", "education", "bidder", "increase", "item",
	"open_auction", "closed_auction", "category", "keyword", "seller",
	"annotation", "description", "interest", "watch", "mail", "nosuchtag",
}

// randomQuery builds a parseable query from templates over the XMark
// vocabulary, covering all four partitioning axes, unions, predicates,
// and child/attribute steps.
func randomQuery(rng *rand.Rand) string {
	a := xmarkTags[rng.Intn(len(xmarkTags))]
	b := xmarkTags[rng.Intn(len(xmarkTags))]
	switch rng.Intn(8) {
	case 0:
		return fmt.Sprintf("/descendant::%s", a)
	case 1:
		return fmt.Sprintf("/descendant::%s/ancestor::%s", a, b)
	case 2:
		return fmt.Sprintf("/descendant::%s/descendant::%s", a, b)
	case 3:
		return fmt.Sprintf("/descendant::%s/following::%s", a, b)
	case 4:
		return fmt.Sprintf("/descendant::%s/preceding::%s", a, b)
	case 5:
		return fmt.Sprintf("//%s[%s]", a, b)
	case 6:
		return fmt.Sprintf("/descendant::%s | /descendant::%s", a, b)
	default:
		return fmt.Sprintf("/descendant::%s/child::%s", a, b)
	}
}

var propStrategies = []string{"staircase", "staircase-skip", "staircase-noskip", "sql", "sql-window"}

// TestConcurrentClientsMatchSerial is the server-concurrency property
// test: N concurrent clients issue randomized (doc, query, options)
// batches and every result must be byte-identical to a serial
// engine.Eval of the same query — across strategies, pushdown modes,
// parallelism degrees, and cache hits/misses. Run under -race in CI.
func TestConcurrentClientsMatchSerial(t *testing.T) {
	_, ts, ref := newTestServer(t, 1<<20)

	// Serial reference results, memoized per (doc, query).
	var memoMu sync.Mutex
	memo := make(map[string][]int32)
	expect := func(docName, query string) []int32 {
		memoMu.Lock()
		nodes, ok := memo[docName+"\x00"+query]
		memoMu.Unlock()
		if ok {
			return nodes
		}
		r, err := ref[docName].EvalString(query, nil) // serial defaults
		if err != nil {
			t.Errorf("reference eval %q: %v", query, err)
			return nil
		}
		memoMu.Lock()
		memo[docName+"\x00"+query] = r.Nodes
		memoMu.Unlock()
		return r.Nodes
	}

	const clients = 8
	reqs := 40
	if testing.Short() {
		reqs = 10
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			client := &http.Client{}
			for i := 0; i < reqs; i++ {
				docName := []string{"mem", "disk"}[rng.Intn(2)]
				n := 1 + rng.Intn(4)
				queries := make([]string, n)
				for j := range queries {
					queries[j] = randomQuery(rng)
				}
				req := QueryRequest{
					Doc:     docName,
					Queries: queries,
					NoCache: rng.Intn(3) == 0,
					Options: &QueryOptions{
						Strategy:    propStrategies[rng.Intn(len(propStrategies))],
						Pushdown:    []string{"auto", "always", "never"}[rng.Intn(3)],
						Parallelism: []int{0, 2, 4, -1}[rng.Intn(4)],
					},
				}
				body, err := json.Marshal(req)
				if err != nil {
					t.Error(err)
					return
				}
				resp, err := client.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				var out QueryResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: status %d", c, resp.StatusCode)
					return
				}
				for j, res := range out.Results {
					if res.Error != "" {
						t.Errorf("client %d: query %q: %s", c, queries[j], res.Error)
						continue
					}
					if want := expect(docName, queries[j]); !sameNodes(res.Nodes, want) {
						t.Errorf("client %d: %s %q (%+v): got %d nodes, want %d — results diverge from serial evaluation",
							c, docName, queries[j], *req.Options, len(res.Nodes), len(want))
					}
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestWarmCacheThroughput checks the acceptance bar: a warm result
// cache must serve at least 5× the queries/sec of the cold path for a
// repeated workload. Limit keeps response encoding out of the measured
// difference — the comparison is cache lookup vs staircase evaluation.
func TestWarmCacheThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement in -short mode")
	}
	cat := catalog.New(0)
	d, err := xmark.Generate(xmark.Config{SizeMB: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddDocument("x", d); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Catalog: cat, CacheBytes: 64 << 20})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	queries := make([]string, 0, 30)
	for _, tag := range []string{"education", "bidder", "increase", "item", "keyword"} {
		queries = append(queries,
			fmt.Sprintf("/descendant::profile/descendant::%s", tag),
			fmt.Sprintf("/descendant::%s/ancestor::open_auction", tag),
			fmt.Sprintf("/descendant::%s/following::bidder", tag),
		)
	}
	round := func(noCache bool) time.Duration {
		start := time.Now()
		resp, code := postQuery(t, ts.URL, QueryRequest{Doc: "x", Queries: queries, NoCache: noCache, Limit: 4})
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		for _, r := range resp.Results {
			if r.Error != "" {
				t.Fatalf("query %q: %s", r.Query, r.Error)
			}
		}
		return time.Since(start)
	}

	const coldRounds, warmRounds = 3, 9
	var cold time.Duration
	for i := 0; i < coldRounds; i++ {
		cold += round(true)
	}
	round(false) // prime the cache
	var warm time.Duration
	for i := 0; i < warmRounds; i++ {
		warm += round(false)
	}
	coldQPS := float64(coldRounds*len(queries)) / cold.Seconds()
	warmQPS := float64(warmRounds*len(queries)) / warm.Seconds()
	t.Logf("cold %.0f q/s, warm %.0f q/s (%.1fx)", coldQPS, warmQPS, warmQPS/coldQPS)
	// The bar was 5x when "cold" rounds re-planned every request; the
	// prepared-plan cache now serves cold (result-cache-bypassing)
	// rounds their compiled plans, so cold throughput rose and the
	// result cache's *additional* win over cached-plan evaluation is
	// what remains. 3x holds comfortably with the race detector on.
	if warmQPS < 3*coldQPS {
		t.Fatalf("warm cache %.0f q/s < 3x cold %.0f q/s", warmQPS, coldQPS)
	}
	if hits, _ := s.CacheStats(); hits == 0 {
		t.Fatal("warm rounds recorded no cache hits")
	}
}

// TestDocsReportIndexBytes: GET /docs must expose the tag/kind index
// footprint of resident documents, and /metrics the catalog total.
func TestDocsReportIndexBytes(t *testing.T) {
	_, ts, _ := newTestServer(t, 1<<20)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/docs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Docs []catalog.DocInfo `json:"docs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Docs) == 0 {
		t.Fatal("no docs")
	}
	for _, d := range out.Docs {
		if d.Resident && d.IndexBytes <= 0 {
			t.Fatalf("resident doc %q reports no index bytes: %+v", d.Name, d)
		}
		if d.Resident && d.Bytes <= d.IndexBytes {
			t.Fatalf("doc %q bytes %d must include index bytes %d on top of the encoding", d.Name, d.Bytes, d.IndexBytes)
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(body, []byte("xpathd_catalog_index_bytes")) {
		t.Fatalf("metrics missing catalog_index_bytes:\n%s", body)
	}
}

// TestExplainShowsIndexHit: /explain names the fragment source and the
// noIndex query parameter flips it to the scan fallback.
func TestExplainShowsIndexHit(t *testing.T) {
	_, ts, _ := newTestServer(t, 1<<20)
	defer ts.Close()

	get := func(url string) string {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s -> %d: %s", url, resp.StatusCode, b)
		}
		return string(b)
	}
	q := "/explain?doc=mem&pushdown=always&q=" + "%2Fdescendant%3A%3Aprofile%2Fdescendant%3A%3Aeducation"
	out := get(ts.URL + q)
	if !bytes.Contains([]byte(out), []byte("shared tag/kind index")) {
		t.Fatalf("explain missing index-hit strategy:\n%s", out)
	}
	out = get(ts.URL + q + "&noIndex=true")
	if !bytes.Contains([]byte(out), []byte("name-column scan, index disabled")) {
		t.Fatalf("explain missing scan fallback:\n%s", out)
	}
}

// TestQueryNoIndexMatchesDefault: the noIndex request knob must not
// change any result (and must not poison the shared result cache with
// a different key space — both run through the same cache).
func TestQueryNoIndexMatchesDefault(t *testing.T) {
	_, ts, ref := newTestServer(t, 0) // cache disabled: both paths evaluate
	defer ts.Close()

	for _, q := range []string{
		"/descendant::profile/descendant::education",
		"/descendant::increase/ancestor::bidder",
		"//person/name/text()",
	} {
		want, err := ref["mem"].EvalString(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, noIndex := range []bool{false, true} {
			body, _ := json.Marshal(QueryRequest{
				Doc:     "mem",
				Query:   q,
				Options: &QueryOptions{NoIndex: noIndex, Pushdown: "always"},
			})
			resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			var out QueryResponse
			err = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if len(out.Results) != 1 || out.Results[0].Error != "" {
				t.Fatalf("bad response: %+v", out)
			}
			if out.Results[0].Count != len(want.Nodes) {
				t.Fatalf("%s noIndex=%v: %d nodes, want %d", q, noIndex, out.Results[0].Count, len(want.Nodes))
			}
		}
	}
}

// TestQueryNoValueIndexMatchesDefault: the noValueIndex request knob
// must not change any result of a value-predicate query (index-served
// fragments and per-node re-evaluation are property-tested equal; this
// pins the HTTP threading of the knob).
func TestQueryNoValueIndexMatchesDefault(t *testing.T) {
	_, ts, ref := newTestServer(t, 0) // cache disabled: both paths evaluate
	defer ts.Close()

	for _, q := range []string{
		"//open_auction[current > 100]",
		"//person[contains(name, 'a')]/name",
		"//bidder[increase >= 10]",
	} {
		want, err := ref["mem"].EvalString(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, noVIdx := range []bool{false, true} {
			out, code := postQuery(t, ts.URL, QueryRequest{
				Doc:     "mem",
				Query:   q,
				Options: &QueryOptions{NoValueIndex: noVIdx},
			})
			if code != http.StatusOK {
				t.Fatalf("%s noValueIndex=%v: status %d", q, noVIdx, code)
			}
			if len(out.Results) != 1 || out.Results[0].Error != "" {
				t.Fatalf("bad response: %+v", out)
			}
			if out.Results[0].Count != len(want.Nodes) {
				t.Fatalf("%s noValueIndex=%v: %d nodes, want %d",
					q, noVIdx, out.Results[0].Count, len(want.Nodes))
			}
		}
	}
}

// TestExplainShowsValueIndexSource: /explain names the value-fragment
// source for a comparison predicate and the noValueIndex parameter
// flips it to the per-node fallback.
func TestExplainShowsValueIndexSource(t *testing.T) {
	_, ts, _ := newTestServer(t, 1<<20)
	defer ts.Close()

	get := func(url string) string {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s -> %d: %s", url, resp.StatusCode, b)
		}
		return string(b)
	}
	q := "/explain?doc=mem&q=" + url.QueryEscape("//open_auction[current > 100]")
	out := get(ts.URL + q)
	if !bytes.Contains([]byte(out), []byte("value index (numeric B-tree)")) {
		t.Fatalf("explain missing value-index source:\n%s", out)
	}
	out = get(ts.URL + q + "&noValueIndex=true")
	if !bytes.Contains([]byte(out), []byte("value index disabled")) {
		t.Fatalf("explain missing per-node fallback:\n%s", out)
	}
}

// TestEquivalentQueriesShareCacheEntries: the result cache keys on the
// canonical optimized-plan string, so differently spelled but
// plan-equivalent queries must hit one shared entry, while the
// prepared-plan cache stays per query text.
func TestEquivalentQueriesShareCacheEntries(t *testing.T) {
	s, ts, ref := newTestServer(t, 1<<20)
	defer ts.Close()

	post := func(query string) QueryResult {
		body, _ := json.Marshal(QueryRequest{Doc: "mem", Query: query})
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if len(out.Results) != 1 || out.Results[0].Error != "" {
			t.Fatalf("%s: %+v", query, out.Results)
		}
		return out.Results[0]
	}

	// Three spellings of one plan: the abbreviation, its expansion,
	// and the predicate-conjunction split.
	groups := [][]string{
		{"//person/profile", "/descendant-or-self::node()/child::person/child::profile"},
		{"//person[profile and name]", "//person[profile][name]"},
	}
	for _, group := range groups {
		h0, _ := s.CacheStats()
		first := post(group[0])
		if first.Cached {
			t.Fatalf("%s: first evaluation already cached", group[0])
		}
		for _, alt := range group[1:] {
			res := post(alt)
			if !res.Cached {
				t.Fatalf("%s did not hit the cache entry of %s", alt, group[0])
			}
			if res.Count != first.Count {
				t.Fatalf("%s: %d nodes, want %d", alt, res.Count, first.Count)
			}
		}
		h1, _ := s.CacheStats()
		if h1-h0 != int64(len(group)-1) {
			t.Fatalf("cache hits %d, want %d", h1-h0, len(group)-1)
		}
		// Equivalence is real: the reference engine agrees.
		want, err := ref["mem"].EvalString(group[0], nil)
		if err != nil {
			t.Fatal(err)
		}
		if first.Count != len(want.Nodes) {
			t.Fatalf("server %d nodes, engine %d", first.Count, len(want.Nodes))
		}
	}

	// Distinct semantics must NOT collide: //site excludes the root
	// element, /descendant::site includes it.
	a := post("//site")
	b := post("/descendant::site")
	if b.Cached {
		t.Fatal("/descendant::site wrongly shared a cache entry with //site")
	}
	if a.Count == b.Count {
		t.Fatalf("expected distinct results, both %d", a.Count)
	}

	// The prepared-plan cache serves repeats of the same text.
	ph0, _ := s.PlanCacheStats()
	post("//person/profile")
	ph1, _ := s.PlanCacheStats()
	if ph1 <= ph0 {
		t.Fatal("repeat query did not hit the prepared-plan cache")
	}
}

// TestExplainJSONFormat: GET /explain?format=json returns the plan
// tree with operators and canonical string.
func TestExplainJSONFormat(t *testing.T) {
	_, ts, _ := newTestServer(t, 1<<20)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/explain?doc=mem&format=json&q=%2Fdescendant%3A%3Aincrease%2Fancestor%3A%3Abidder")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("explain json: %d %s", resp.StatusCode, b)
	}
	var tree struct {
		Canon    string `json:"canon"`
		Strategy string `json:"strategy"`
		Root     *struct {
			Op       string          `json:"op"`
			Children json.RawMessage `json:"children"`
		} `json:"root"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tree); err != nil {
		t.Fatal(err)
	}
	if tree.Canon == "" || tree.Strategy != "staircase" || tree.Root == nil || tree.Root.Op == "" {
		t.Fatalf("explain json incomplete: %+v", tree)
	}
}

// TestStalePreparedPlansDropOnReload: a document reload (generation
// bump) must evict the previous generation's cached plans — they pin
// the old document copy in memory.
func TestStalePreparedPlansDropOnReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.xml")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := xmark.Write(f, xmark.Config{SizeMB: 0.05, Seed: 3, KeepValues: true}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	cat := catalog.New(1) // 1-byte budget: every unreferenced doc evicts
	if err := cat.Register("d", path, catalog.FormatAuto); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Catalog: cat, CacheBytes: 1 << 20})

	query := func() uint64 {
		h, err := cat.Open("d")
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		gen := h.Generation()
		for _, q := range []string{"//person", "//bidder", "//increase"} {
			if _, err := s.prepare(h, q, &engine.Options{Parallelism: 1}); err != nil {
				t.Fatal(err)
			}
		}
		return gen
	}
	g1 := query()
	g2 := query() // budget forced an eviction in between: generation bumped
	if g2 == g1 {
		t.Fatalf("expected a reload, generations %d == %d", g1, g2)
	}
	s.preparedMu.Lock()
	defer s.preparedMu.Unlock()
	if n := len(s.prepared); n != 3 {
		t.Fatalf("prepared cache holds %d entries, want 3 (stale generation dropped)", n)
	}
	for _, el := range s.prepared {
		if e := el.Value.(*preparedEntry); e.gen != g2 {
			t.Fatalf("stale plan survived: %s gen %d (current %d)", e.key, e.gen, g2)
		}
	}
}
