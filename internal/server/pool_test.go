package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

func (s *wsem) waiterCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// mustAcquire is the old blocking acquire for tests that exercise the
// FIFO discipline rather than admission control.
func (s *wsem) mustAcquire(t *testing.T, n int) int {
	t.Helper()
	got, err := s.acquire(context.Background(), n)
	if err != nil {
		t.Fatalf("acquire(%d): %v", n, err)
	}
	return got
}

// TestWsemFIFO pins the no-starvation property: a wide request at the
// head of the queue is served before narrower requests that arrived
// after it, even while units keep becoming available.
func TestWsemFIFO(t *testing.T) {
	s := newWsem(2, 0)
	if got := s.mustAcquire(t, 5); got != 2 {
		t.Fatalf("acquire clamped to %d, want 2", got)
	}
	if s.inUse() != 2 {
		t.Fatalf("inUse %d, want 2", s.inUse())
	}

	wide := make(chan struct{})
	go func() { s.acquire(context.Background(), 2); close(wide) }()
	waitFor(t, "wide waiter", func() bool { return s.waiterCount() == 1 })

	narrow := make(chan struct{})
	go func() { s.acquire(context.Background(), 1); close(narrow) }()
	waitFor(t, "narrow waiter", func() bool { return s.waiterCount() == 2 })

	// One unit free: the wide head still lacks units, and FIFO means the
	// narrow request behind it must NOT jump the queue.
	s.release(1)
	select {
	case <-wide:
		t.Fatal("wide waiter granted with only 1 unit free")
	case <-narrow:
		t.Fatal("narrow waiter jumped the FIFO queue")
	case <-time.After(20 * time.Millisecond):
	}

	s.release(1) // both units free: the wide head gets its grant
	<-wide
	select {
	case <-narrow:
		t.Fatal("narrow waiter granted while wide holds the full budget")
	case <-time.After(20 * time.Millisecond):
	}

	s.release(2)
	<-narrow
	s.release(1)
	if s.inUse() != 0 {
		t.Fatalf("inUse %d after all releases, want 0", s.inUse())
	}
}

// TestWsemShedsBeyondQueueBound pins the admission contract: with
// maxQueue waiters already parked, further acquires fail fast with
// errShed, the queue never grows past the bound, and shed requests
// never held units.
func TestWsemShedsBeyondQueueBound(t *testing.T) {
	s := newWsem(1, 2)
	s.mustAcquire(t, 1)

	granted := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			if _, err := s.acquire(context.Background(), 1); err == nil {
				granted <- struct{}{}
			}
		}()
	}
	waitFor(t, "two queued waiters", func() bool { return s.queueDepth() == 2 })
	if !s.saturated() {
		t.Fatal("queue at bound not reported saturated")
	}

	for i := 0; i < 5; i++ {
		if _, err := s.acquire(context.Background(), 1); !errors.Is(err, errShed) {
			t.Fatalf("acquire past the bound: err=%v, want errShed", err)
		}
		if s.queueDepth() != 2 {
			t.Fatalf("shed acquire grew the queue to %d", s.queueDepth())
		}
	}
	if s.shedCount() != 5 {
		t.Fatalf("shedCount %d, want 5", s.shedCount())
	}

	s.release(1)
	<-granted
	s.release(1)
	<-granted
	s.release(1)
	if s.inUse() != 0 || s.queueDepth() != 0 {
		t.Fatalf("inUse=%d depth=%d after drain, want 0/0", s.inUse(), s.queueDepth())
	}
}

// TestWsemCancelAbandonsQueueSlot pins the disconnected-client
// contract: a queued waiter whose ctx is cancelled leaves the queue
// without ever holding units, and waiters behind it are re-examined
// (a cancelled wide head must not block a narrow successor forever).
func TestWsemCancelAbandonsQueueSlot(t *testing.T) {
	s := newWsem(2, 0)
	s.mustAcquire(t, 1)

	// Wide head: needs both units, so it parks.
	ctx, cancel := context.WithCancel(context.Background())
	headErr := make(chan error, 1)
	go func() {
		_, err := s.acquire(ctx, 2)
		headErr <- err
	}()
	waitFor(t, "wide head queued", func() bool { return s.waiterCount() == 1 })

	// Narrow successor: one unit is free, but FIFO parks it behind the
	// head.
	narrow := make(chan struct{})
	go func() { s.acquire(context.Background(), 1); close(narrow) }()
	waitFor(t, "narrow waiter queued", func() bool { return s.waiterCount() == 2 })

	cancel()
	if err := <-headErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v", err)
	}
	// The abandoned head's departure must unblock the narrow waiter.
	select {
	case <-narrow:
	case <-time.After(2 * time.Second):
		t.Fatal("narrow waiter still parked after head abandoned")
	}
	s.release(1)
	s.release(1)
	if s.inUse() != 0 || s.queueDepth() != 0 {
		t.Fatalf("inUse=%d depth=%d, want 0/0 — cancelled waiter leaked units", s.inUse(), s.queueDepth())
	}
}

// TestWsemCancelAfterGrantReturnsUnits covers the race where the
// grant and the cancellation cross: the waiter must hand the units
// straight back rather than leak them.
func TestWsemCancelAfterGrantReturnsUnits(t *testing.T) {
	s := newWsem(1, 0)
	for i := 0; i < 200; i++ {
		s.mustAcquire(t, 1)
		ctx, cancel := context.WithCancel(context.Background())
		res := make(chan error, 1)
		go func() {
			_, err := s.acquire(ctx, 1)
			res <- err
		}()
		waitFor(t, "waiter queued", func() bool { return s.waiterCount() == 1 })
		// Release and cancel concurrently: whichever wins, the invariant
		// is that all units end up free.
		go s.release(1)
		cancel()
		if err := <-res; err == nil {
			s.release(1)
		}
		waitFor(t, "units returned", func() bool { return s.inUse() == 0 && s.queueDepth() == 0 })
	}
}

// TestWsemAcquireWheelBypassesBound pins that wheel transfers between
// already-admitted flight clients are never shed, even at a saturated
// admission queue.
func TestWsemAcquireWheelBypassesBound(t *testing.T) {
	s := newWsem(1, 1)
	s.mustAcquire(t, 1)
	go s.acquire(context.Background(), 1) // fills the admission queue
	waitFor(t, "admission queue full", func() bool { return s.saturated() })

	got := make(chan int, 1)
	go func() { got <- s.acquireWheel(1) }()
	waitFor(t, "wheel waiter queued", func() bool { return s.queueDepth() == 2 })
	s.release(1) // serves the admitted waiter first (FIFO)…
	s.release(1) // …then the wheel transfer
	if n := <-got; n != 1 {
		t.Fatalf("acquireWheel granted %d, want 1", n)
	}
	s.release(1)
}
