package server

import (
	"testing"
	"time"
)

func (s *wsem) waiterCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWsemFIFO pins the no-starvation property: a wide request at the
// head of the queue is served before narrower requests that arrived
// after it, even while units keep becoming available.
func TestWsemFIFO(t *testing.T) {
	s := newWsem(2)
	if got := s.acquire(5); got != 2 {
		t.Fatalf("acquire clamped to %d, want 2", got)
	}
	if s.inUse() != 2 {
		t.Fatalf("inUse %d, want 2", s.inUse())
	}

	wide := make(chan struct{})
	go func() { s.acquire(2); close(wide) }()
	waitFor(t, "wide waiter", func() bool { return s.waiterCount() == 1 })

	narrow := make(chan struct{})
	go func() { s.acquire(1); close(narrow) }()
	waitFor(t, "narrow waiter", func() bool { return s.waiterCount() == 2 })

	// One unit free: the wide head still lacks units, and FIFO means the
	// narrow request behind it must NOT jump the queue.
	s.release(1)
	select {
	case <-wide:
		t.Fatal("wide waiter granted with only 1 unit free")
	case <-narrow:
		t.Fatal("narrow waiter jumped the FIFO queue")
	case <-time.After(20 * time.Millisecond):
	}

	s.release(1) // both units free: the wide head gets its grant
	<-wide
	select {
	case <-narrow:
		t.Fatal("narrow waiter granted while wide holds the full budget")
	case <-time.After(20 * time.Millisecond):
	}

	s.release(2)
	<-narrow
	s.release(1)
	if s.inUse() != 0 {
		t.Fatalf("inUse %d after all releases, want 0", s.inUse())
	}
}
