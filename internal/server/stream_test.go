package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"staircase/internal/catalog"
	"staircase/internal/xmark"
)

// postStream posts one query to /stream and decodes the NDJSON lines.
func postStream(t *testing.T, url string, req QueryRequest) []StreamChunk {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	var chunks []StreamChunk
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var c StreamChunk
		if err := dec.Decode(&c); err != nil {
			t.Fatal(err)
		}
		chunks = append(chunks, c)
	}
	return chunks
}

func TestStreamEndpoint(t *testing.T) {
	_, ts, ref := newTestServer(t, 1<<20)
	const q = "/descendant::profile/descendant::education"
	want, err := ref["mem"].EvalString(q, nil)
	if err != nil {
		t.Fatal(err)
	}

	chunks := postStream(t, ts.URL, QueryRequest{Doc: "mem", Query: q})
	if len(chunks) == 0 {
		t.Fatal("no stream output")
	}
	last := chunks[len(chunks)-1]
	if !last.Done || last.Error != "" {
		t.Fatalf("stream did not finish cleanly: %+v", last)
	}
	var got []int32
	for _, c := range chunks[:len(chunks)-1] {
		if c.Done || c.Error != "" {
			t.Fatalf("unexpected mid-stream chunk: %+v", c)
		}
		got = append(got, c.Nodes...)
	}
	if !sameNodes(got, want.Nodes) {
		t.Fatalf("stream nodes differ:\n got %v\nwant %v", got, want.Nodes)
	}
	if last.Count != len(want.Nodes) || last.Truncated {
		t.Fatalf("stream summary: %+v", last)
	}

	// With a limit the stream stops at the prefix and reports
	// truncation.
	lim := 1
	if len(want.Nodes) < 2 {
		t.Fatalf("fixture query too small for limit test")
	}
	chunks = postStream(t, ts.URL, QueryRequest{Doc: "mem", Query: q, Limit: lim})
	last = chunks[len(chunks)-1]
	var limGot []int32
	for _, c := range chunks[:len(chunks)-1] {
		limGot = append(limGot, c.Nodes...)
	}
	if !sameNodes(limGot, want.Nodes[:lim]) || !last.Truncated || last.Count != lim {
		t.Fatalf("limited stream: got %v, summary %+v", limGot, last)
	}

	// Malformed: batch shapes are rejected.
	body, _ := json.Marshal(QueryRequest{Doc: "mem", Queries: []string{q, q}})
	resp, err := http.Post(ts.URL+"/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("batch stream accepted: %d", resp.StatusCode)
	}
}

// TestCancelledQueryReleasesWorkerSlot: a long-running query whose
// client goes away must stop between batches and give its
// worker-semaphore units back — the request context propagates into
// plan execution.
func TestCancelledQueryReleasesWorkerSlot(t *testing.T) {
	cat := catalog.New(0)
	d, err := xmark.Generate(xmark.Config{SizeMB: 16, Seed: 3, KeepValues: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddDocument("big", d); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Catalog: cat, Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// ~1s+ of per-node predicate evaluation over ~340k nodes; the
	// executor checks the context between predicate blocks.
	const slowQ = "//*[not(descendant::text() = 'a')][not(descendant::text() = 'b')]" +
		"[not(descendant::text() = 'c')][not(descendant::text() = 'd')]"

	body, _ := json.Marshal(QueryRequest{Doc: "big", Query: slowQ, NoCache: true})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")

	start := time.Now()
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
	}
	// The client-side request fails with the cancellation; the server
	// side must notice, abandon the evaluation and drain the pool.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if s.pool.inUse() == 0 && s.cancels.Load() >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.pool.inUse(); got != 0 {
		t.Fatalf("cancelled query still holds %d worker units", got)
	}
	if s.cancels.Load() < 1 {
		t.Fatalf("server never recorded the cancellation (query ran to completion?)")
	}
	if elapsed := time.Since(start); elapsed > 1200*time.Millisecond {
		t.Fatalf("cancellation took %v; evaluation was not interrupted", elapsed)
	}
}
