package server

import (
	"container/list"
	"hash/maphash"
	"sync"
)

// resultCache is a sharded LRU over evaluated node sequences. Sharding
// keeps lock contention off the hot read path when many clients hit the
// cache concurrently; each shard is an independent LRU with its own
// slice of the byte budget.
//
// Keys are built by cacheKey from (document name, load generation,
// strategy, pushdown, query text) — see docs/ARCHITECTURE.md for why
// parallelism is deliberately *not* part of the key. Values are the
// immutable result node slices; entries are charged 4 bytes per node
// plus the key.
type resultCache struct {
	seed   maphash.Seed
	shards []cacheShard
}

type cacheShard struct {
	mu       sync.Mutex
	ll       *list.List // front = most recent
	m        map[string]*list.Element
	bytes    int64
	maxBytes int64
}

type cacheEntry struct {
	key   string
	nodes []int32
	bytes int64
}

const cacheShards = 16

// newResultCache builds a cache with the given total byte budget.
// A budget <= 0 disables caching (Get always misses, Put drops).
func newResultCache(maxBytes int64) *resultCache {
	c := &resultCache{seed: maphash.MakeSeed()}
	if maxBytes <= 0 {
		return c
	}
	per := maxBytes / cacheShards
	if per < 1 {
		per = 1
	}
	c.shards = make([]cacheShard, cacheShards)
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].m = make(map[string]*list.Element)
		c.shards[i].maxBytes = per
	}
	return c
}

func (c *resultCache) shard(key string) *cacheShard {
	if len(c.shards) == 0 {
		return nil
	}
	return &c.shards[maphash.String(c.seed, key)%uint64(len(c.shards))]
}

// Get returns the cached nodes for key. Callers must not modify the
// returned slice.
func (c *resultCache) Get(key string) ([]int32, bool) {
	s := c.shard(key)
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).nodes, true
}

// Put stores nodes under key, evicting least-recently-used entries to
// stay within the shard budget. The slice is retained; callers must not
// modify it afterwards.
func (c *resultCache) Put(key string, nodes []int32) {
	s := c.shard(key)
	if s == nil {
		return
	}
	cost := int64(len(key)) + 4*int64(len(nodes)) + 64
	s.mu.Lock()
	defer s.mu.Unlock()
	if cost > s.maxBytes {
		return // would evict the whole shard for one entry
	}
	if el, ok := s.m[key]; ok {
		s.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		s.bytes += cost - e.bytes
		e.nodes, e.bytes = nodes, cost
	} else {
		s.m[key] = s.ll.PushFront(&cacheEntry{key: key, nodes: nodes, bytes: cost})
		s.bytes += cost
	}
	for s.bytes > s.maxBytes {
		el := s.ll.Back()
		if el == nil {
			break
		}
		e := s.ll.Remove(el).(*cacheEntry)
		delete(s.m, e.key)
		s.bytes -= e.bytes
	}
}

// Len returns the number of cached entries across all shards.
func (c *resultCache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}

// Bytes returns the charged bytes across all shards.
func (c *resultCache) Bytes() int64 {
	var n int64
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += c.shards[i].bytes
		c.shards[i].mu.Unlock()
	}
	return n
}
