package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"staircase/internal/catalog"
	"staircase/internal/engine"
	"staircase/internal/xmark"
)

// newShareServer builds a ShareScans server over one in-memory XMark
// document big enough that a predicate-heavy query runs long enough
// for concurrent clients to attach mid-flight.
func newShareServer(t testing.TB, sizeMB float64) (*Server, *httptest.Server, *engine.Engine) {
	t.Helper()
	cat := catalog.New(0)
	d, err := xmark.Generate(xmark.Config{SizeMB: sizeMB, Seed: 3, KeepValues: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddDocument("mem", d); err != nil {
		t.Fatal(err)
	}
	// 16MB: the sharded cache budgets per shard (total/16), and the big
	// coalescing fixture's answer must fit a shard so retirement sticks.
	s := New(Config{Catalog: cat, CacheBytes: 16 << 20, ShareScans: true})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, engine.New(d)
}

// slowShareQuery takes long enough (hundreds of ms on a few MB) that
// eight concurrently launched clients all land on one flight.
const slowShareQuery = "//*[not(descendant::text() = 'a')][not(descendant::text() = 'b')]" +
	"[not(descendant::text() = 'c')]"

// TestStreamShareScansCoalesce is the tentpole's server-level
// acceptance: N identical cold /stream clients execute the plan
// exactly once — one flight created, the other N-1 coalesced — and
// every client receives the byte-identical solo answer.
func TestStreamShareScansCoalesce(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-ms query")
	}
	s, ts, ref := newShareServer(t, 4)
	want, err := ref.EvalString(slowShareQuery, nil)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 8
	bodies := make([][]int32, clients)
	terminal := make([]StreamChunk, clients)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			chunks := postStream(t, ts.URL, QueryRequest{Doc: "mem", Query: slowShareQuery})
			if len(chunks) == 0 {
				t.Errorf("client %d: no output", i)
				return
			}
			last := chunks[len(chunks)-1]
			if !last.Done || last.Error != "" {
				t.Errorf("client %d: bad terminal chunk %+v", i, last)
				return
			}
			terminal[i] = last
			for _, c := range chunks[:len(chunks)-1] {
				bodies[i] = append(bodies[i], c.Nodes...)
			}
		}(i)
	}
	close(start)
	wg.Wait()

	for i := range bodies {
		if !sameNodes(bodies[i], want.Nodes) {
			t.Fatalf("client %d: coalesced stream differs from solo (%d vs %d nodes)",
				i, len(bodies[i]), len(want.Nodes))
		}
	}
	created, coalesced, _ := s.ShareStats()
	if created != 1 {
		t.Fatalf("plan executed %d times, want exactly 1", created)
	}
	if coalesced != clients-1 {
		t.Fatalf("coalesced = %d, want %d", coalesced, clients-1)
	}
	nCoalesced := 0
	for i := range terminal {
		if terminal[i].Coalesced {
			nCoalesced++
		}
		if terminal[i].Count != len(want.Nodes) {
			t.Fatalf("client %d: count %d, want %d", i, terminal[i].Count, len(want.Nodes))
		}
	}
	if nCoalesced != clients-1 {
		t.Fatalf("%d terminal chunks report coalesced, want %d", nCoalesced, clients-1)
	}

	// The completed flight retired into the result cache: the next
	// stream replays it without touching the registry.
	chunks := postStream(t, ts.URL, QueryRequest{Doc: "mem", Query: slowShareQuery})
	last := chunks[len(chunks)-1]
	if !last.Cached {
		t.Fatalf("post-flight stream not served from cache: %+v", last)
	}
	if created, _, _ := s.ShareStats(); created != 1 {
		t.Fatalf("cache-hit stream created a flight (created=%d)", created)
	}
}

// TestQueryShareScansCoalesce: the same coalescing on POST /query —
// concurrent identical cache misses share one execution and report it.
func TestQueryShareScansCoalesce(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-ms query")
	}
	s, ts, ref := newShareServer(t, 4)
	want, err := ref.EvalString(slowShareQuery, nil)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 8
	results := make([]QueryResult, clients)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, code := postQuery(t, ts.URL, QueryRequest{Doc: "mem", Query: slowShareQuery})
			if code != http.StatusOK || len(resp.Results) != 1 {
				t.Errorf("client %d: status %d results %d", i, code, len(resp.Results))
				return
			}
			results[i] = resp.Results[0]
		}(i)
	}
	close(start)
	wg.Wait()

	for i := range results {
		if results[i].Error != "" {
			t.Fatalf("client %d: %s", i, results[i].Error)
		}
		if !sameNodes(results[i].Nodes, want.Nodes) {
			t.Fatalf("client %d: coalesced result differs from solo", i)
		}
	}
	created, coalesced, _ := s.ShareStats()
	if created != 1 {
		t.Fatalf("plan executed %d times, want exactly 1", created)
	}
	if coalesced != clients-1 {
		t.Fatalf("coalesced = %d, want %d", coalesced, clients-1)
	}

	// NoCache bypasses coalescing entirely: a fresh solo execution.
	resp, _ := postQuery(t, ts.URL, QueryRequest{Doc: "mem", Query: slowShareQuery, NoCache: true})
	if resp.Results[0].Coalesced {
		t.Fatal("NoCache request reported coalesced")
	}
	if created, _, _ := s.ShareStats(); created != 1 {
		t.Fatalf("NoCache request went through the registry (created=%d)", created)
	}
}

// TestShareScansLimitKeying: flights are keyed like cache entries —
// the limit is part of the key, so limited and full streams never
// share a buffer, and the limited stream is the solo prefix.
func TestShareScansLimitKeying(t *testing.T) {
	_, ts, ref := newShareServer(t, 0.25)
	const q = "/descendant::profile/descendant::education"
	want, err := ref.EvalString(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Nodes) < 3 {
		t.Fatalf("fixture too small: %d nodes", len(want.Nodes))
	}
	lim := len(want.Nodes) / 2

	var limGot []int32
	chunks := postStream(t, ts.URL, QueryRequest{Doc: "mem", Query: q, Limit: lim})
	last := chunks[len(chunks)-1]
	for _, c := range chunks[:len(chunks)-1] {
		limGot = append(limGot, c.Nodes...)
	}
	if !sameNodes(limGot, want.Nodes[:lim]) || !last.Truncated || last.Count != lim {
		t.Fatalf("limited shared stream: got %d nodes, summary %+v", len(limGot), last)
	}

	var full []int32
	chunks = postStream(t, ts.URL, QueryRequest{Doc: "mem", Query: q})
	last = chunks[len(chunks)-1]
	for _, c := range chunks[:len(chunks)-1] {
		full = append(full, c.Nodes...)
	}
	if !sameNodes(full, want.Nodes) || last.Truncated {
		t.Fatalf("full stream after limited one: got %d nodes, summary %+v", len(full), last)
	}

	// Replaying the limited key now comes from the cache, still the
	// exact prefix with the truncation flag.
	chunks = postStream(t, ts.URL, QueryRequest{Doc: "mem", Query: q, Limit: lim})
	last = chunks[len(chunks)-1]
	limGot = limGot[:0]
	for _, c := range chunks[:len(chunks)-1] {
		limGot = append(limGot, c.Nodes...)
	}
	if !sameNodes(limGot, want.Nodes[:lim]) || !last.Truncated || !last.Cached {
		t.Fatalf("cached limited stream: got %d nodes, summary %+v", len(limGot), last)
	}
}

// TestMorselWorkersOption: a request-level morselWorkers option is
// accepted on /query and /stream and yields byte-identical results.
func TestMorselWorkersOption(t *testing.T) {
	s, ts, ref := newShareServer(t, 0.25)
	const q = "/descendant::open_auction/descendant::bidder"
	want, err := ref.EvalString(q, nil)
	if err != nil {
		t.Fatal(err)
	}

	resp, code := postQuery(t, ts.URL, QueryRequest{
		Doc: "mem", Query: q, NoCache: true,
		Options: &QueryOptions{MorselWorkers: 4},
	})
	if code != http.StatusOK || resp.Results[0].Error != "" {
		t.Fatalf("status %d results %+v", code, resp.Results)
	}
	if !sameNodes(resp.Results[0].Nodes, want.Nodes) {
		t.Fatal("morsel /query differs from serial reference")
	}

	var got []int32
	chunks := postStream(t, ts.URL, QueryRequest{
		Doc: "mem", Query: q,
		Options: &QueryOptions{MorselWorkers: 4},
	})
	for _, c := range chunks[:len(chunks)-1] {
		got = append(got, c.Nodes...)
	}
	if !sameNodes(got, want.Nodes) {
		t.Fatal("morsel /stream differs from serial reference")
	}

	// Distinct morsel widths must not collide in the prepared-plan
	// cache (the option changes how a plan executes).
	k2 := preparedKey("mem", 1, &engine.Options{Parallelism: 1, MorselWorkers: 2}, q)
	k4 := preparedKey("mem", 1, &engine.Options{Parallelism: 1, MorselWorkers: 4}, q)
	if k2 == k4 {
		t.Fatal("preparedKey ignores MorselWorkers")
	}
	_ = s
}

// TestShareMetricsExposed: the new counters appear on /metrics.
func TestShareMetricsExposed(t *testing.T) {
	_, ts, _ := newShareServer(t, 0.1)
	body, _ := json.Marshal(QueryRequest{Doc: "mem", Query: "/descendant::item"})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, mresp.Body); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, metric := range []string{
		"xpathd_shared_flights_total",
		"xpathd_coalesced_queries_total",
		"xpathd_pace_car_handoffs_total",
		"xpathd_shared_flights_in_flight",
	} {
		if !strings.Contains(out, metric) {
			t.Fatalf("/metrics lacks %s:\n%s", metric, out)
		}
	}

	// The explain footer reports registry state in share-scans mode.
	eresp, err := http.Get(ts.URL + "/explain?doc=mem&q=" + "%2Fdescendant%3A%3Aitem")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	sb.Reset()
	if _, err := io.Copy(&sb, eresp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "share-scans: on") ||
		!strings.Contains(sb.String(), "coalesced=") {
		t.Fatalf("/explain lacks share-scans footer:\n%s", sb.String())
	}
}
