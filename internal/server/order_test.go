package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"staircase/internal/catalog"
	"staircase/internal/doc"
)

// newOrderServer registers a synthetic document shaped for the ordering
// counters: item 0 holds the only z element (a 1-node fragment the
// greedy pass hoists), every item holds a b, and no item holds a c (the
// never-matching filter whose observed selectivity forces a mid-flight
// re-plan); 600 items push the streaming executor through several
// batches.
func newOrderServer(t *testing.T) (*httptest.Server, func()) {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<r><item><b/><z/></item>")
	for i := 0; i < 599; i++ {
		sb.WriteString("<item><b/></item>")
	}
	sb.WriteString("</r>")
	d, err := doc.ShredString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.New(0)
	if err := cat.AddDocument("mem", d); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Catalog: cat})
	ts := httptest.NewServer(s.Handler())
	return ts, ts.Close
}

// scrapeMetric fetches /metrics and returns the named counter value.
func scrapeMetric(t *testing.T, url, name string) int64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`(?m)^` + name + ` (\d+)$`).FindSubmatch(body)
	if m == nil {
		t.Fatalf("/metrics lacks %s:\n%s", name, body)
	}
	n, err := strconv.ParseInt(string(m[1]), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestOrderingMetricsExposed: compiling a reorderable query moves
// plan_reorders_total, and a streamed execution whose filter
// selectivities diverge from the estimates moves
// adaptive_replans_total.
func TestOrderingMetricsExposed(t *testing.T) {
	ts, done := newOrderServer(t)
	defer done()

	reordersBefore := scrapeMetric(t, ts.URL, "xpathd_plan_reorders_total")
	replansBefore := scrapeMetric(t, ts.URL, "xpathd_adaptive_replans_total")

	// Exact fragment counts hoist the 1-node z semijoin above the
	// 600-node b semijoin at compile time.
	body, _ := json.Marshal(QueryRequest{Doc: "mem", Query: "//item[descendant::b][descendant::z]"})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(qr.Results) != 1 || qr.Results[0].Error != "" || qr.Results[0].Count != 1 {
		t.Fatalf("reorder query: %+v", qr.Results)
	}
	if got := scrapeMetric(t, ts.URL, "xpathd_plan_reorders_total"); got <= reordersBefore {
		t.Errorf("plan_reorders_total %d -> %d, want increase", reordersBefore, got)
	}

	// Streaming the never-matching second filter: its observed
	// selectivity collapses against the halving estimate after the
	// first batch and the chain cursor adopts a new stage order.
	chunks := postStream(t, ts.URL, QueryRequest{Doc: "mem", Query: "//item[child::b][child::c]"})
	if len(chunks) == 0 {
		t.Fatal("no stream chunks")
	}
	if got := scrapeMetric(t, ts.URL, "xpathd_adaptive_replans_total"); got <= replansBefore {
		t.Errorf("adaptive_replans_total %d -> %d, want increase", replansBefore, got)
	}
}
