package bat

import (
	"fmt"
	"sort"
)

// Unbounded marks an open end of a Select range.
const (
	// MinInt32 / MaxInt32 are convenient open range bounds for Select.
	MinInt32 int32 = -1 << 31
	MaxInt32 int32 = 1<<31 - 1
)

// Select returns the pairs whose tail value t satisfies lo <= t <= hi
// (numeric tails only). Head and tail of qualifying pairs are preserved.
// If the tail is sorted the qualifying range is located by binary search,
// mirroring an index range scan; otherwise a full scan is used.
func (b BAT) Select(lo, hi int32) BAT {
	if b.tail.Type() == Str {
		panic("bat: Select on str tail")
	}
	if b.tail.IsSorted() {
		from := sort.Search(b.Len(), func(i int) bool { return b.tail.Int(i) >= lo })
		to := sort.Search(b.Len(), func(i int) bool { return b.tail.Int(i) > hi })
		if from > to {
			from = to
		}
		return b.Slice(from, to)
	}
	bu := NewBuilder(0)
	for i := 0; i < b.Len(); i++ {
		t := b.tail.Int(i)
		if t >= lo && t <= hi {
			bu.Append(b.head.Int(i), t)
		}
	}
	return bu.Build()
}

// SelectEqStr returns the pairs whose string tail equals v.
func (b BAT) SelectEqStr(v string) BAT {
	if b.tail.Type() != Str {
		panic("bat: SelectEqStr on non-str tail")
	}
	heads := NewBuilder(0)
	var strs []string
	for i := 0; i < b.Len(); i++ {
		if b.tail.Str(i) == v {
			heads.Append(b.head.Int(i), 0)
			strs = append(strs, v)
		}
	}
	hb := heads.Build()
	return BAT{head: hb.head, tail: NewStr(strs)}
}

// Uselect returns the head values of pairs whose tail t satisfies
// lo <= t <= hi, as a dense [void|head] BAT (Monet's uselect returns the
// qualifying oids only).
func (b BAT) Uselect(lo, hi int32) BAT {
	sel := b.Select(lo, hi)
	return NewDense(sel.head.Ints())
}

// Join computes the equi-join of b and o on b.tail == o.head and returns
// [b.head | o.tail]. When o has a void head, each b tail value is located
// positionally (Monet's fetch join); otherwise a hash join is used.
// Pair order follows the left operand, matching Monet's join semantics
// for void-head right operands.
func (b BAT) Join(o BAT) BAT {
	if b.tail.Type() == Str || o.head.Type() == Str {
		panic("bat: Join on str join columns")
	}
	if o.head.IsVoid() {
		return b.fetchJoin(o)
	}
	// Hash join: build on the right head.
	idx := make(map[int32][]int, o.Len())
	for j := 0; j < o.Len(); j++ {
		k := o.head.Int(j)
		idx[k] = append(idx[k], j)
	}
	bu := NewBuilder(b.Len())
	var strs []string
	strTail := o.tail.Type() == Str
	for i := 0; i < b.Len(); i++ {
		for _, j := range idx[b.tail.Int(i)] {
			if strTail {
				bu.Append(b.head.Int(i), 0)
				strs = append(strs, o.tail.Str(j))
			} else {
				bu.Append(b.head.Int(i), o.tail.Int(j))
			}
		}
	}
	res := bu.Build()
	if strTail {
		res.tail = NewStr(strs)
	}
	return res
}

// fetchJoin positionally dereferences b.tail into o (void head): the
// positional lookup that void columns enable (§4.1 of the paper).
func (b BAT) fetchJoin(o BAT) BAT {
	off := o.head.VoidOffset()
	n := o.Len()
	bu := NewBuilder(b.Len())
	var strs []string
	strTail := o.tail.Type() == Str
	for i := 0; i < b.Len(); i++ {
		p := int(b.tail.Int(i) - off)
		if p < 0 || p >= n {
			continue
		}
		if strTail {
			bu.Append(b.head.Int(i), 0)
			strs = append(strs, o.tail.Str(p))
		} else {
			bu.Append(b.head.Int(i), o.tail.Int(p))
		}
	}
	res := bu.Build()
	if strTail {
		res.tail = NewStr(strs)
	}
	return res
}

// SemiJoin returns the pairs of b whose head value appears as a head
// value in o.
func (b BAT) SemiJoin(o BAT) BAT {
	if b.head.Type() == Str || o.head.Type() == Str {
		panic("bat: SemiJoin on str heads")
	}
	if o.head.IsVoid() {
		off := o.head.VoidOffset()
		n := o.Len()
		bu := NewBuilder(0)
		for i := 0; i < b.Len(); i++ {
			h := b.head.Int(i)
			if p := int(h - off); p >= 0 && p < n {
				bu.Append(h, b.tail.Int(i))
			}
		}
		return bu.Build()
	}
	set := make(map[int32]struct{}, o.Len())
	for j := 0; j < o.Len(); j++ {
		set[o.head.Int(j)] = struct{}{}
	}
	bu := NewBuilder(0)
	for i := 0; i < b.Len(); i++ {
		if _, ok := set[b.head.Int(i)]; ok {
			bu.Append(b.head.Int(i), b.tail.Int(i))
		}
	}
	return bu.Build()
}

// SortTail returns the BAT reordered so that the tail column is
// non-decreasing; the sort is stable so equal tails keep their head
// order. Numeric tails only.
func (b BAT) SortTail() BAT {
	if b.tail.Type() == Str {
		panic("bat: SortTail on str tail")
	}
	if b.tail.IsSorted() {
		return b
	}
	n := b.Len()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(i, j int) bool {
		return b.tail.Int(perm[i]) < b.tail.Int(perm[j])
	})
	hs := make([]int32, n)
	ts := make([]int32, n)
	for i, p := range perm {
		hs[i] = b.head.Int(p)
		ts[i] = b.tail.Int(p)
	}
	return BAT{head: NewInt(hs), tail: NewInt(ts)}
}

// UniqueTail removes pairs with duplicate tail values, keeping the first
// occurrence in pair order. On a sorted tail this is a single linear
// pass (the plan-level "unique" operator of the paper's Figure 3 runs
// over pre-sorted input); otherwise a hash set is used.
func (b BAT) UniqueTail() BAT {
	if b.tail.Type() == Str {
		panic("bat: UniqueTail on str tail")
	}
	bu := NewBuilder(0)
	if b.tail.IsSorted() {
		for i := 0; i < b.Len(); i++ {
			t := b.tail.Int(i)
			if i > 0 && t == b.tail.Int(i-1) {
				continue
			}
			bu.Append(b.head.Int(i), t)
		}
		return bu.Build()
	}
	seen := make(map[int32]struct{}, b.Len())
	for i := 0; i < b.Len(); i++ {
		t := b.tail.Int(i)
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		bu.Append(b.head.Int(i), t)
	}
	return bu.Build()
}

// KUnion returns the pairs of b followed by the pairs of o whose head
// value does not occur in b (key-based union on heads).
func (b BAT) KUnion(o BAT) BAT {
	seen := make(map[int32]struct{}, b.Len())
	bu := NewBuilder(b.Len() + o.Len())
	for i := 0; i < b.Len(); i++ {
		h := b.head.Int(i)
		seen[h] = struct{}{}
		bu.Append(h, b.tail.Int(i))
	}
	for j := 0; j < o.Len(); j++ {
		h := o.head.Int(j)
		if _, ok := seen[h]; ok {
			continue
		}
		bu.Append(h, o.tail.Int(j))
	}
	return bu.Build()
}

// KDiff returns the pairs of b whose head value does not occur as a head
// value in o.
func (b BAT) KDiff(o BAT) BAT {
	drop := make(map[int32]struct{}, o.Len())
	for j := 0; j < o.Len(); j++ {
		drop[o.head.Int(j)] = struct{}{}
	}
	bu := NewBuilder(0)
	for i := 0; i < b.Len(); i++ {
		h := b.head.Int(i)
		if _, ok := drop[h]; ok {
			continue
		}
		bu.Append(h, b.tail.Int(i))
	}
	return bu.Build()
}

// Count returns the number of pairs (alias of Len in Monet style).
func (b BAT) Count() int { return b.Len() }

// Validate checks internal consistency (equal column lengths) and
// returns a descriptive error when violated. Operators maintain the
// invariant; Validate exists for tests and debugging.
func (b BAT) Validate() error {
	if b.head.Len() != b.tail.Len() {
		return fmt.Errorf("bat: head length %d != tail length %d", b.head.Len(), b.tail.Len())
	}
	return nil
}
