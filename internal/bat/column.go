// Package bat implements a small main-memory column-store kernel in the
// style of the Monet RDBMS (Boncz, 2002), the implementation platform of
// the staircase join paper (Grust, van Keulen, Teubner; VLDB 2003).
//
// The central data structure is the BAT (binary association table), a
// two-column table [head | tail]. Columns are typed; besides plain integer
// and string columns the kernel supports Monet's special column type
//
//	void: "virtual oid" — a contiguous sequence o, o+1, o+2, ...
//
// for which only the offset o is stored. Void columns cost no storage and
// turn many lookups into positional (O(1)) array accesses; the paper's
// document encoding stores the preorder rank as a void column (§4.1).
//
// The operator set (select, join, semijoin, sort, unique, mirror, mark,
// reverse, slice, ...) is the subset of the Monet Interpreter Language
// needed by the XPath accelerator and by the staircase join experiments.
package bat

import "fmt"

// ColType enumerates the physical column representations supported by the
// kernel.
type ColType uint8

const (
	// Void is Monet's virtual-oid type: a dense integer sequence
	// off, off+1, ..., off+n-1 represented only by its offset.
	Void ColType = iota
	// Int is a materialised 32-bit integer column.
	Int
	// Str is a materialised string column (used for tag-name
	// dictionaries; bulk data uses interned integer ids).
	Str
)

// String returns the Monet-style name of the column type.
func (t ColType) String() string {
	switch t {
	case Void:
		return "void"
	case Int:
		return "int"
	case Str:
		return "str"
	default:
		return fmt.Sprintf("ColType(%d)", uint8(t))
	}
}

// Column is a single typed column of a BAT. The zero value is an empty
// void column with offset 0.
//
// Columns are immutable once they participate in a BAT that has been
// handed out; operators always allocate fresh result columns. (Builders
// may append to a column they own exclusively.)
type Column struct {
	typ  ColType
	off  int32 // void: first value of the dense sequence
	n    int   // void: sequence length
	ints []int32
	strs []string
}

// NewVoid returns a dense void column off, off+1, ..., off+n-1.
func NewVoid(off int32, n int) Column {
	if n < 0 {
		panic("bat: negative void column length")
	}
	return Column{typ: Void, off: off, n: n}
}

// NewInt returns an integer column backed by vals. The column takes
// ownership of the slice; callers must not modify it afterwards.
func NewInt(vals []int32) Column {
	return Column{typ: Int, ints: vals}
}

// NewStr returns a string column backed by vals. The column takes
// ownership of the slice.
func NewStr(vals []string) Column {
	return Column{typ: Str, strs: vals}
}

// Type returns the physical type of the column.
func (c Column) Type() ColType { return c.typ }

// Len returns the number of values in the column.
func (c Column) Len() int {
	switch c.typ {
	case Void:
		return c.n
	case Int:
		return len(c.ints)
	default:
		return len(c.strs)
	}
}

// IsVoid reports whether the column is a virtual-oid (void) column.
func (c Column) IsVoid() bool { return c.typ == Void }

// VoidOffset returns the offset o of a void column (the value at
// position 0). It panics for materialised columns.
func (c Column) VoidOffset() int32 {
	if c.typ != Void {
		panic("bat: VoidOffset on non-void column")
	}
	return c.off
}

// Int returns the integer value at position i. Void columns yield
// off+i. It panics for string columns and out-of-range positions.
func (c Column) Int(i int) int32 {
	switch c.typ {
	case Void:
		if i < 0 || i >= c.n {
			panic(fmt.Sprintf("bat: void index %d out of range [0,%d)", i, c.n))
		}
		return c.off + int32(i)
	case Int:
		return c.ints[i]
	default:
		panic("bat: Int on str column")
	}
}

// Str returns the string value at position i of a string column.
func (c Column) Str(i int) string {
	if c.typ != Str {
		panic("bat: Str on non-str column")
	}
	return c.strs[i]
}

// Ints returns the backing slice of a materialised integer column.
// Void columns are materialised first (allocating). The caller must not
// modify the returned slice of an Int column.
func (c Column) Ints() []int32 {
	switch c.typ {
	case Void:
		out := make([]int32, c.n)
		for i := range out {
			out[i] = c.off + int32(i)
		}
		return out
	case Int:
		return c.ints
	default:
		panic("bat: Ints on str column")
	}
}

// Strs returns the backing slice of a string column. The caller must not
// modify it.
func (c Column) Strs() []string {
	if c.typ != Str {
		panic("bat: Strs on non-str column")
	}
	return c.strs
}

// Materialize converts a void column into an equivalent Int column;
// materialised columns are returned unchanged.
func (c Column) Materialize() Column {
	if c.typ != Void {
		return c
	}
	return NewInt(c.Ints())
}

// PosOf returns the position of value v in the column under the
// assumption that the column is sorted ascending (void columns always
// are). The second result reports whether v is present. Lookup is O(1)
// for void columns and O(log n) otherwise.
func (c Column) PosOf(v int32) (int, bool) {
	switch c.typ {
	case Void:
		p := int(v - c.off)
		if p < 0 || p >= c.n {
			return 0, false
		}
		return p, true
	case Int:
		lo, hi := 0, len(c.ints)
		for lo < hi {
			mid := (lo + hi) / 2
			if c.ints[mid] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(c.ints) && c.ints[lo] == v {
			return lo, true
		}
		return 0, false
	default:
		panic("bat: PosOf on str column")
	}
}

// IsSorted reports whether the column is non-decreasing. Void columns are
// sorted by construction.
func (c Column) IsSorted() bool {
	switch c.typ {
	case Void:
		return true
	case Int:
		for i := 1; i < len(c.ints); i++ {
			if c.ints[i-1] > c.ints[i] {
				return false
			}
		}
		return true
	default:
		for i := 1; i < len(c.strs); i++ {
			if c.strs[i-1] > c.strs[i] {
				return false
			}
		}
		return true
	}
}

// IsStrictlySorted reports whether the column is strictly increasing
// (sorted and duplicate-free). Void columns are strictly sorted by
// construction.
func (c Column) IsStrictlySorted() bool {
	switch c.typ {
	case Void:
		return true
	case Int:
		for i := 1; i < len(c.ints); i++ {
			if c.ints[i-1] >= c.ints[i] {
				return false
			}
		}
		return true
	default:
		for i := 1; i < len(c.strs); i++ {
			if c.strs[i-1] >= c.strs[i] {
				return false
			}
		}
		return true
	}
}

// Slice returns the sub-column [lo, hi). Void columns stay void; slicing
// a materialised column shares the backing store.
func (c Column) Slice(lo, hi int) Column {
	if lo < 0 || hi < lo || hi > c.Len() {
		panic(fmt.Sprintf("bat: column slice [%d,%d) out of range [0,%d)", lo, hi, c.Len()))
	}
	switch c.typ {
	case Void:
		return NewVoid(c.off+int32(lo), hi-lo)
	case Int:
		return Column{typ: Int, ints: c.ints[lo:hi]}
	default:
		return Column{typ: Str, strs: c.strs[lo:hi]}
	}
}

// eq reports whether the values at positions i (in c) and j (in d) are
// equal. Both columns must carry comparable types (void/int vs str).
func (c Column) eq(i int, d Column, j int) bool {
	if c.typ == Str || d.typ == Str {
		if c.typ != Str || d.typ != Str {
			panic("bat: comparing str column with numeric column")
		}
		return c.strs[i] == d.strs[j]
	}
	return c.Int(i) == d.Int(j)
}
