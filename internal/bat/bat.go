package bat

import (
	"fmt"
	"strings"
)

// BAT is a Monet-style binary association table: a sequence of
// (head, tail) pairs stored column-wise. Head and tail always have equal
// length.
//
// The conventional reading is head = object identifier (oid), tail =
// attribute value; a full n-ary relational table is represented by a
// group of BATs sharing their (usually void) head column. The document
// encoding table doc of the staircase join paper is exactly such a group:
//
//	doc = [pre|post] [pre|level] [pre|kind] [pre|tag] ...
//
// with pre stored as a void column (§4.1 of the paper).
type BAT struct {
	head Column
	tail Column
}

// New returns a BAT over the given head and tail columns. It panics if
// the column lengths differ.
func New(head, tail Column) BAT {
	if head.Len() != tail.Len() {
		panic(fmt.Sprintf("bat: head/tail length mismatch: %d vs %d", head.Len(), tail.Len()))
	}
	return BAT{head: head, tail: tail}
}

// NewDense returns a BAT with a void head starting at 0 over tail values
// vals — the normalised form produced by most kernel operators.
func NewDense(vals []int32) BAT {
	return New(NewVoid(0, len(vals)), NewInt(vals))
}

// NewDenseStr returns a BAT with a void head starting at 0 over string
// tail values.
func NewDenseStr(vals []string) BAT {
	return New(NewVoid(0, len(vals)), NewStr(vals))
}

// Head returns the head column.
func (b BAT) Head() Column { return b.head }

// Tail returns the tail column.
func (b BAT) Tail() Column { return b.tail }

// Len returns the number of (head, tail) pairs.
func (b BAT) Len() int { return b.head.Len() }

// Reverse swaps head and tail. This is a zero-cost view change, as in
// Monet.
func (b BAT) Reverse() BAT { return BAT{head: b.tail, tail: b.head} }

// Mirror returns the BAT [head|head]: both columns alias the original
// head. Used to turn an oid set into a join-ready BAT.
func (b BAT) Mirror() BAT { return BAT{head: b.head, tail: b.head} }

// Mark replaces the head by a fresh void column starting at off,
// producing the Monet "mark" of the tail: [off..|tail].
func (b BAT) Mark(off int32) BAT {
	return BAT{head: NewVoid(off, b.Len()), tail: b.tail}
}

// Slice returns the BAT restricted to pair positions [lo, hi).
func (b BAT) Slice(lo, hi int) BAT {
	return BAT{head: b.head.Slice(lo, hi), tail: b.tail.Slice(lo, hi)}
}

// Append returns a new BAT with the pair (h, t) appended. Head and tail
// must be numeric. Appending to a void head that the new value extends
// densely keeps the head void; otherwise the head is materialised.
// Append is O(n) when a copy is required; builders that append in bulk
// should use Builder instead.
func (b BAT) Append(h, t int32) BAT {
	var nh Column
	if b.head.IsVoid() && (b.head.Len() == 0 || b.head.off+int32(b.head.n) == h) {
		if b.head.Len() == 0 {
			nh = NewVoid(h, 1)
		} else {
			nh = NewVoid(b.head.off, b.head.n+1)
		}
	} else {
		hs := append(append([]int32(nil), b.head.Ints()...), h)
		nh = NewInt(hs)
	}
	ts := append(append([]int32(nil), b.tail.Ints()...), t)
	return BAT{head: nh, tail: NewInt(ts)}
}

// String renders the BAT in a compact debugging form, eliding long
// tables.
func (b BAT) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "BAT[%s|%s]#%d{", b.head.Type(), b.tail.Type(), b.Len())
	n := b.Len()
	show := n
	if show > 16 {
		show = 16
	}
	for i := 0; i < show; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		if b.head.Type() == Str {
			fmt.Fprintf(&sb, "%q->", b.head.Str(i))
		} else {
			fmt.Fprintf(&sb, "%d->", b.head.Int(i))
		}
		if b.tail.Type() == Str {
			fmt.Fprintf(&sb, "%q", b.tail.Str(i))
		} else {
			fmt.Fprintf(&sb, "%d", b.tail.Int(i))
		}
	}
	if show < n {
		sb.WriteString(", ...")
	}
	sb.WriteString("}")
	return sb.String()
}

// Builder accumulates (head, tail) pairs and produces a BAT. It keeps the
// head void as long as appended head values remain dense.
type Builder struct {
	heads     []int32
	tails     []int32
	headVoid  bool
	headOff   int32
	headCount int
}

// NewBuilder returns an empty builder with capacity hint n.
func NewBuilder(n int) *Builder {
	return &Builder{tails: make([]int32, 0, n), headVoid: true}
}

// Append adds the pair (h, t).
func (bu *Builder) Append(h, t int32) {
	if bu.headVoid {
		if bu.headCount == 0 {
			bu.headOff = h
		} else if h != bu.headOff+int32(bu.headCount) {
			// Density broken: materialise the head collected so far.
			bu.headVoid = false
			bu.heads = make([]int32, bu.headCount, cap(bu.tails))
			for i := range bu.heads {
				bu.heads[i] = bu.headOff + int32(i)
			}
		}
	}
	if !bu.headVoid {
		bu.heads = append(bu.heads, h)
	}
	bu.headCount++
	bu.tails = append(bu.tails, t)
}

// AppendDense adds the pair (next-dense-head, t) where the head value
// continues the dense sequence (or starts it at 0).
func (bu *Builder) AppendDense(t int32) {
	if bu.headVoid {
		bu.Append(bu.headOff+int32(bu.headCount), t)
		return
	}
	var h int32
	if len(bu.heads) > 0 {
		h = bu.heads[len(bu.heads)-1] + 1
	}
	bu.Append(h, t)
}

// Len returns the number of pairs appended so far.
func (bu *Builder) Len() int { return bu.headCount }

// Build finalises the builder into a BAT. The builder must not be used
// afterwards.
func (bu *Builder) Build() BAT {
	var head Column
	if bu.headVoid {
		head = NewVoid(bu.headOff, bu.headCount)
	} else {
		head = NewInt(bu.heads)
	}
	return BAT{head: head, tail: NewInt(bu.tails)}
}
