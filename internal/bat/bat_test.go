package bat

import (
	"testing"
	"testing/quick"
)

func TestVoidColumnBasics(t *testing.T) {
	c := NewVoid(5, 4)
	if got := c.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if !c.IsVoid() {
		t.Fatal("expected void column")
	}
	if got := c.VoidOffset(); got != 5 {
		t.Fatalf("VoidOffset = %d, want 5", got)
	}
	for i := 0; i < 4; i++ {
		if got := c.Int(i); got != int32(5+i) {
			t.Fatalf("Int(%d) = %d, want %d", i, got, 5+i)
		}
	}
	if !c.IsSorted() || !c.IsStrictlySorted() {
		t.Fatal("void column must be strictly sorted")
	}
}

func TestVoidColumnPosOf(t *testing.T) {
	c := NewVoid(10, 3)
	for _, tc := range []struct {
		v   int32
		pos int
		ok  bool
	}{
		{10, 0, true}, {11, 1, true}, {12, 2, true},
		{9, 0, false}, {13, 0, false},
	} {
		pos, ok := c.PosOf(tc.v)
		if ok != tc.ok || (ok && pos != tc.pos) {
			t.Errorf("PosOf(%d) = (%d,%v), want (%d,%v)", tc.v, pos, ok, tc.pos, tc.ok)
		}
	}
}

func TestIntColumnPosOf(t *testing.T) {
	c := NewInt([]int32{2, 4, 4, 7, 9})
	pos, ok := c.PosOf(4)
	if !ok || pos != 1 {
		t.Fatalf("PosOf(4) = (%d,%v), want (1,true)", pos, ok)
	}
	if _, ok := c.PosOf(5); ok {
		t.Fatal("PosOf(5) should miss")
	}
	if _, ok := c.PosOf(1); ok {
		t.Fatal("PosOf(1) should miss")
	}
	if _, ok := c.PosOf(10); ok {
		t.Fatal("PosOf(10) should miss")
	}
}

func TestColumnMaterialize(t *testing.T) {
	c := NewVoid(3, 3).Materialize()
	if c.IsVoid() {
		t.Fatal("Materialize left column void")
	}
	want := []int32{3, 4, 5}
	for i, w := range want {
		if c.Int(i) != w {
			t.Fatalf("materialised value %d = %d, want %d", i, c.Int(i), w)
		}
	}
}

func TestColumnSliceVoidStaysVoid(t *testing.T) {
	c := NewVoid(0, 10).Slice(4, 8)
	if !c.IsVoid() {
		t.Fatal("slice of void should be void")
	}
	if c.VoidOffset() != 4 || c.Len() != 4 {
		t.Fatalf("slice = (off=%d,len=%d), want (4,4)", c.VoidOffset(), c.Len())
	}
}

func TestBATReverseMirrorMark(t *testing.T) {
	b := New(NewVoid(0, 3), NewInt([]int32{9, 8, 7}))
	r := b.Reverse()
	if r.Head().Int(0) != 9 || r.Tail().Int(0) != 0 {
		t.Fatal("Reverse did not swap columns")
	}
	m := b.Mirror()
	if m.Tail().Int(2) != 2 {
		t.Fatal("Mirror tail should alias head")
	}
	k := b.Reverse().Mark(100)
	if !k.Head().IsVoid() || k.Head().VoidOffset() != 100 {
		t.Fatal("Mark should install fresh void head")
	}
	if k.Tail().Int(1) != 1 {
		t.Fatal("Mark must keep tail")
	}
}

func TestBuilderKeepsDenseHeadVoid(t *testing.T) {
	bu := NewBuilder(4)
	for i := int32(7); i < 11; i++ {
		bu.Append(i, i*10)
	}
	b := bu.Build()
	if !b.Head().IsVoid() {
		t.Fatal("dense heads should stay void")
	}
	if b.Head().VoidOffset() != 7 || b.Len() != 4 {
		t.Fatalf("head = (off=%d,len=%d), want (7,4)", b.Head().VoidOffset(), b.Len())
	}
}

func TestBuilderMaterialisesOnGap(t *testing.T) {
	bu := NewBuilder(4)
	bu.Append(0, 1)
	bu.Append(1, 2)
	bu.Append(5, 3) // gap
	b := bu.Build()
	if b.Head().IsVoid() {
		t.Fatal("gapped head must be materialised")
	}
	want := []int32{0, 1, 5}
	for i, w := range want {
		if b.Head().Int(i) != w {
			t.Fatalf("head[%d] = %d, want %d", i, b.Head().Int(i), w)
		}
	}
}

func TestAppendExtendsVoidHead(t *testing.T) {
	b := NewDense([]int32{10, 20})
	b = b.Append(2, 30)
	if !b.Head().IsVoid() || b.Len() != 3 {
		t.Fatal("dense append should keep head void")
	}
	b = b.Append(9, 40)
	if b.Head().IsVoid() {
		t.Fatal("gap append must materialise head")
	}
	if b.Head().Int(3) != 9 || b.Tail().Int(3) != 40 {
		t.Fatal("append lost the pair")
	}
}

func TestSelectSortedUsesRange(t *testing.T) {
	b := New(NewVoid(0, 6), NewInt([]int32{1, 3, 5, 7, 9, 11}))
	sel := b.Select(4, 9)
	if sel.Len() != 3 {
		t.Fatalf("Select returned %d pairs, want 3", sel.Len())
	}
	if sel.Head().Int(0) != 2 || sel.Tail().Int(2) != 9 {
		t.Fatal("Select returned wrong range")
	}
	if empty := b.Select(100, 200); empty.Len() != 0 {
		t.Fatal("out-of-range Select should be empty")
	}
	if empty := b.Select(9, 4); empty.Len() != 0 {
		t.Fatal("inverted Select bounds should be empty")
	}
}

func TestSelectUnsorted(t *testing.T) {
	b := New(NewVoid(0, 5), NewInt([]int32{9, 1, 5, 3, 7}))
	sel := b.Select(3, 7)
	if sel.Len() != 3 {
		t.Fatalf("Select returned %d pairs, want 3", sel.Len())
	}
	// Order preserved: tails 5, 3, 7 at heads 2, 3, 4.
	wantH := []int32{2, 3, 4}
	wantT := []int32{5, 3, 7}
	for i := range wantH {
		if sel.Head().Int(i) != wantH[i] || sel.Tail().Int(i) != wantT[i] {
			t.Fatalf("pair %d = (%d,%d), want (%d,%d)",
				i, sel.Head().Int(i), sel.Tail().Int(i), wantH[i], wantT[i])
		}
	}
}

func TestUselect(t *testing.T) {
	b := New(NewVoid(10, 4), NewInt([]int32{5, 6, 7, 8}))
	u := b.Uselect(6, 7)
	if u.Len() != 2 || u.Tail().Int(0) != 11 || u.Tail().Int(1) != 12 {
		t.Fatalf("Uselect = %v", u)
	}
}

func TestFetchJoinPositional(t *testing.T) {
	// left: [void|ref] with refs into right's void head.
	left := New(NewVoid(0, 3), NewInt([]int32{12, 10, 11}))
	right := New(NewVoid(10, 3), NewInt([]int32{100, 101, 102}))
	j := left.Join(right)
	if j.Len() != 3 {
		t.Fatalf("join size %d, want 3", j.Len())
	}
	want := []int32{102, 100, 101}
	for i, w := range want {
		if j.Tail().Int(i) != w {
			t.Fatalf("join tail[%d] = %d, want %d", i, j.Tail().Int(i), w)
		}
	}
}

func TestFetchJoinDropsDanglingRefs(t *testing.T) {
	left := New(NewVoid(0, 3), NewInt([]int32{10, 99, 11}))
	right := New(NewVoid(10, 2), NewInt([]int32{7, 8}))
	j := left.Join(right)
	if j.Len() != 2 {
		t.Fatalf("join size %d, want 2 (dangling ref dropped)", j.Len())
	}
}

func TestHashJoin(t *testing.T) {
	left := New(NewInt([]int32{1, 2, 3}), NewInt([]int32{20, 10, 20}))
	right := New(NewInt([]int32{10, 20}), NewInt([]int32{100, 200}))
	j := left.Join(right)
	if j.Len() != 3 {
		t.Fatalf("join size %d, want 3", j.Len())
	}
	wantH := []int32{1, 2, 3}
	wantT := []int32{200, 100, 200}
	for i := range wantH {
		if j.Head().Int(i) != wantH[i] || j.Tail().Int(i) != wantT[i] {
			t.Fatalf("pair %d = (%d,%d), want (%d,%d)",
				i, j.Head().Int(i), j.Tail().Int(i), wantH[i], wantT[i])
		}
	}
}

func TestJoinStrTail(t *testing.T) {
	left := New(NewVoid(0, 2), NewInt([]int32{1, 0}))
	right := New(NewVoid(0, 2), NewStr([]string{"a", "b"}))
	j := left.Join(right)
	if j.Tail().Str(0) != "b" || j.Tail().Str(1) != "a" {
		t.Fatalf("str fetch join wrong: %v", j)
	}
}

func TestSemiJoin(t *testing.T) {
	b := New(NewInt([]int32{1, 2, 3, 4}), NewInt([]int32{10, 20, 30, 40}))
	o := New(NewInt([]int32{2, 4, 9}), NewInt([]int32{0, 0, 0}))
	s := b.SemiJoin(o)
	if s.Len() != 2 || s.Head().Int(0) != 2 || s.Head().Int(1) != 4 {
		t.Fatalf("SemiJoin = %v", s)
	}
}

func TestSemiJoinVoidRight(t *testing.T) {
	b := New(NewInt([]int32{1, 5, 9}), NewInt([]int32{10, 50, 90}))
	o := New(NewVoid(4, 3), NewInt([]int32{0, 0, 0})) // heads 4,5,6
	s := b.SemiJoin(o)
	if s.Len() != 1 || s.Head().Int(0) != 5 || s.Tail().Int(0) != 50 {
		t.Fatalf("SemiJoin = %v", s)
	}
}

func TestSortTailStable(t *testing.T) {
	b := New(NewInt([]int32{1, 2, 3, 4}), NewInt([]int32{5, 3, 5, 1}))
	s := b.SortTail()
	wantH := []int32{4, 2, 1, 3}
	wantT := []int32{1, 3, 5, 5}
	for i := range wantH {
		if s.Head().Int(i) != wantH[i] || s.Tail().Int(i) != wantT[i] {
			t.Fatalf("pair %d = (%d,%d), want (%d,%d)",
				i, s.Head().Int(i), s.Tail().Int(i), wantH[i], wantT[i])
		}
	}
}

func TestUniqueTailSortedAndUnsorted(t *testing.T) {
	sorted := New(NewInt([]int32{1, 2, 3, 4}), NewInt([]int32{1, 1, 2, 2}))
	u := sorted.UniqueTail()
	if u.Len() != 2 || u.Head().Int(0) != 1 || u.Head().Int(1) != 3 {
		t.Fatalf("sorted UniqueTail = %v", u)
	}
	unsorted := New(NewInt([]int32{1, 2, 3}), NewInt([]int32{7, 5, 7}))
	u2 := unsorted.UniqueTail()
	if u2.Len() != 2 || u2.Tail().Int(0) != 7 || u2.Tail().Int(1) != 5 {
		t.Fatalf("unsorted UniqueTail = %v", u2)
	}
}

func TestKUnionKDiff(t *testing.T) {
	a := New(NewInt([]int32{1, 2}), NewInt([]int32{10, 20}))
	b := New(NewInt([]int32{2, 3}), NewInt([]int32{99, 30}))
	u := a.KUnion(b)
	if u.Len() != 3 || u.Tail().Int(1) != 20 || u.Head().Int(2) != 3 {
		t.Fatalf("KUnion = %v", u)
	}
	d := a.KDiff(b)
	if d.Len() != 1 || d.Head().Int(0) != 1 {
		t.Fatalf("KDiff = %v", d)
	}
}

func TestSelectEqStr(t *testing.T) {
	b := New(NewVoid(0, 4), NewStr([]string{"x", "y", "x", "z"}))
	s := b.SelectEqStr("x")
	if s.Len() != 2 || s.Head().Int(0) != 0 || s.Head().Int(1) != 2 {
		t.Fatalf("SelectEqStr = %v", s)
	}
}

// --- property-based tests -------------------------------------------------

// propTails bounds generated tail values so range predicates hit often.
func propTails(vals []int16) []int32 {
	out := make([]int32, len(vals))
	for i, v := range vals {
		out[i] = int32(v % 100)
	}
	return out
}

func TestPropSelectMatchesNaiveFilter(t *testing.T) {
	f := func(vals []int16, loRaw, hiRaw int16) bool {
		tails := propTails(vals)
		lo, hi := int32(loRaw%100), int32(hiRaw%100)
		b := NewDense(tails)
		sel := b.Select(lo, hi)
		var want []int32
		for i, v := range tails {
			if v >= lo && v <= hi {
				want = append(want, int32(i))
			}
		}
		if sel.Len() != len(want) {
			return false
		}
		for i, w := range want {
			if sel.Head().Int(i) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropSortTailSortsAndPreservesMultiset(t *testing.T) {
	f := func(vals []int16) bool {
		tails := propTails(vals)
		b := NewDense(tails)
		s := b.SortTail()
		if s.Len() != len(tails) || !s.Tail().IsSorted() {
			return false
		}
		count := map[int32]int{}
		for _, v := range tails {
			count[v]++
		}
		for i := 0; i < s.Len(); i++ {
			count[s.Tail().Int(i)]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropUniqueAfterSortIsStrict(t *testing.T) {
	f := func(vals []int16) bool {
		b := NewDense(propTails(vals)).SortTail().UniqueTail()
		return b.Tail().IsStrictlySorted()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropReverseIsInvolution(t *testing.T) {
	f := func(vals []int16) bool {
		b := NewDense(propTails(vals))
		r := b.Reverse().Reverse()
		if r.Len() != b.Len() {
			return false
		}
		for i := 0; i < b.Len(); i++ {
			if r.Head().Int(i) != b.Head().Int(i) || r.Tail().Int(i) != b.Tail().Int(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropFetchJoinMatchesHashJoin(t *testing.T) {
	f := func(refsRaw []int16, tails []int16) bool {
		if len(tails) == 0 {
			return true
		}
		n := len(tails)
		refs := make([]int32, len(refsRaw))
		for i, r := range refsRaw {
			refs[i] = int32(int(r%int16(n)+int16(n)) % n) // in-range refs
		}
		rtails := propTails(tails)
		left := NewDense(refs)
		rightVoid := New(NewVoid(0, n), NewInt(rtails))
		rightMat := New(NewVoid(0, n).Materialize(), NewInt(rtails))
		a := left.Join(rightVoid)
		b := left.Join(rightMat)
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if a.Head().Int(i) != b.Head().Int(i) || a.Tail().Int(i) != b.Tail().Int(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	good := NewDense([]int32{1})
	if err := good.Validate(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	bad := BAT{head: NewVoid(0, 2), tail: NewInt([]int32{1})}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}
