package bat

import (
	"strings"
	"testing"
)

func TestNewDenseStrAndStrs(t *testing.T) {
	b := NewDenseStr([]string{"x", "y"})
	if b.Len() != 2 || b.Tail().Str(1) != "y" {
		t.Fatalf("NewDenseStr = %v", b)
	}
	strs := b.Tail().Strs()
	if len(strs) != 2 || strs[0] != "x" {
		t.Fatalf("Strs = %v", strs)
	}
	if b.Count() != b.Len() {
		t.Fatal("Count != Len")
	}
}

func TestBATString(t *testing.T) {
	b := New(NewVoid(0, 2), NewStr([]string{"a", "b"}))
	s := b.String()
	if !strings.Contains(s, "void") || !strings.Contains(s, `"a"`) {
		t.Fatalf("String = %q", s)
	}
	// Long BATs elide.
	long := NewDense(make([]int32, 100))
	if !strings.Contains(long.String(), "...") {
		t.Fatalf("long String should elide: %q", long.String())
	}
	// Str heads render too.
	sh := New(NewStr([]string{"k"}), NewInt([]int32{1}))
	if !strings.Contains(sh.String(), `"k"->1`) {
		t.Fatalf("String = %q", sh.String())
	}
}

func TestColTypeString(t *testing.T) {
	if Void.String() != "void" || Int.String() != "int" || Str.String() != "str" {
		t.Fatal("ColType names wrong")
	}
	if !strings.Contains(ColType(9).String(), "ColType") {
		t.Fatal("unknown ColType should render numerically")
	}
}

func TestBuilderAppendDense(t *testing.T) {
	bu := NewBuilder(0)
	bu.AppendDense(5)
	bu.AppendDense(6)
	if bu.Len() != 2 {
		t.Fatalf("Len = %d", bu.Len())
	}
	b := bu.Build()
	if !b.Head().IsVoid() || b.Head().VoidOffset() != 0 {
		t.Fatalf("AppendDense head = %v", b.Head())
	}
	// AppendDense after a gap continues from the last materialised head.
	bu2 := NewBuilder(0)
	bu2.Append(0, 1)
	bu2.Append(7, 2)
	bu2.AppendDense(3)
	b2 := bu2.Build()
	if b2.Head().Int(2) != 8 {
		t.Fatalf("AppendDense after gap = %d, want 8", b2.Head().Int(2))
	}
	// AppendDense on an empty materialised-path builder starts at 0.
	bu3 := NewBuilder(0)
	bu3.Append(3, 1) // void with offset 3
	bu3.AppendDense(2)
	if got := bu3.Build().Head().Int(1); got != 4 {
		t.Fatalf("AppendDense continued at %d, want 4", got)
	}
}

func TestStrEqPanicsOnMixedTypes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := NewStr([]string{"x"})
	b := NewInt([]int32{1})
	a.eq(0, b, 0)
}

func TestStrEq(t *testing.T) {
	a := NewStr([]string{"x", "y"})
	if !a.eq(0, a, 0) || a.eq(0, a, 1) {
		t.Fatal("str eq broken")
	}
	n := NewInt([]int32{4})
	v := NewVoid(4, 1)
	if !n.eq(0, v, 0) {
		t.Fatal("int/void eq broken")
	}
}

func TestIsSortedStrColumns(t *testing.T) {
	if !NewStr([]string{"a", "b"}).IsSorted() {
		t.Fatal("sorted str reported unsorted")
	}
	if NewStr([]string{"b", "a"}).IsSorted() {
		t.Fatal("unsorted str reported sorted")
	}
	if !NewStr([]string{"a", "b"}).IsStrictlySorted() {
		t.Fatal("strict str broken")
	}
	if NewStr([]string{"a", "a"}).IsStrictlySorted() {
		t.Fatal("duplicate str reported strict")
	}
	if NewInt([]int32{1, 1}).IsStrictlySorted() {
		t.Fatal("duplicate int reported strict")
	}
}

func TestColumnPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("VoidOffset on int", func() { NewInt(nil).VoidOffset() })
	mustPanic("Int on str", func() { NewStr([]string{"a"}).Int(0) })
	mustPanic("Str on int", func() { NewInt([]int32{1}).Str(0) })
	mustPanic("Strs on int", func() { NewInt([]int32{1}).Strs() })
	mustPanic("Ints on str", func() { NewStr([]string{"a"}).Ints() })
	mustPanic("void index range", func() { NewVoid(0, 1).Int(5) })
	mustPanic("negative void", func() { NewVoid(0, -1) })
	mustPanic("slice range", func() { NewVoid(0, 2).Slice(0, 5) })
	mustPanic("length mismatch", func() { New(NewVoid(0, 2), NewInt([]int32{1})) })
	mustPanic("PosOf str", func() { NewStr([]string{"a"}).PosOf(0) })
	mustPanic("Select str", func() { NewDenseStr([]string{"a"}).Select(0, 1) })
	mustPanic("SelectEqStr int", func() { NewDense([]int32{1}).SelectEqStr("x") })
	mustPanic("SortTail str", func() { NewDenseStr([]string{"a"}).SortTail() })
	mustPanic("UniqueTail str", func() { NewDenseStr([]string{"a"}).UniqueTail() })
}
