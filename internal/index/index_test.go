package index

import (
	"bytes"
	"math/rand"
	"testing"
)

// Kinds for test documents; mirrors internal/doc without importing it
// (the index package is deliberately doc-agnostic).
const (
	kElem uint8 = iota
	kAttr
	kText
	kComment
	kPI
	kVRoot
	numKinds
)

// randomColumns generates a plausible kind/name column pair: elements
// with tag ids in [0, names), interleaved with non-element nodes.
func randomColumns(rng *rand.Rand, n, names int) (kinds []uint8, nameCol []int32) {
	kinds = make([]uint8, n)
	nameCol = make([]int32, n)
	for v := 0; v < n; v++ {
		switch rng.Intn(10) {
		case 0:
			kinds[v], nameCol[v] = kAttr, int32(rng.Intn(names))
		case 1:
			kinds[v], nameCol[v] = kComment, -1
		case 2:
			kinds[v], nameCol[v] = kPI, int32(rng.Intn(names))
		case 3, 4, 5:
			kinds[v], nameCol[v] = kText, -1
		default:
			kinds[v], nameCol[v] = kElem, int32(rng.Intn(names))
		}
	}
	return kinds, nameCol
}

func TestBuildMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(500)
		names := 1 + rng.Intn(8)
		kinds, nameCol := randomColumns(rng, n, names)
		ix := Build(kinds, nameCol, names, int(numKinds), kElem)

		for id := int32(0); int(id) < names; id++ {
			var want []int32
			for v := 0; v < n; v++ {
				if kinds[v] == kElem && nameCol[v] == id {
					want = append(want, int32(v))
				}
			}
			got := ix.Tag(id)
			if len(got) != len(want) || ix.TagCount(id) != len(want) {
				t.Fatalf("trial %d tag %d: %d entries, want %d", trial, id, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d tag %d entry %d: %d vs %d", trial, id, i, got[i], want[i])
				}
			}
		}
		for k := uint8(0); k < numKinds; k++ {
			var want []int32
			if k != kElem {
				for v := 0; v < n; v++ {
					if kinds[v] == k {
						want = append(want, int32(v))
					}
				}
			}
			got := ix.KindList(k)
			if len(got) != len(want) {
				t.Fatalf("trial %d kind %d: %d entries, want %d", trial, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d kind %d entry %d differs", trial, k, i)
				}
			}
		}
		if ix.Entries() != int64(n) {
			t.Fatalf("trial %d: %d entries indexed, want %d", trial, ix.Entries(), n)
		}
	}
}

func TestSpanAndBytes(t *testing.T) {
	kinds := []uint8{kElem, kText, kElem, kElem, kText}
	names := []int32{0, -1, 1, 0, -1}
	ix := Build(kinds, names, 2, int(numKinds), kElem)
	if min, max, ok := Span(ix.Tag(0)); !ok || min != 0 || max != 3 {
		t.Fatalf("tag 0 span = [%d,%d] ok=%v", min, max, ok)
	}
	if min, max, ok := Span(ix.Tag(1)); !ok || min != 2 || max != 2 {
		t.Fatalf("tag 1 span = [%d,%d] ok=%v", min, max, ok)
	}
	if _, _, ok := Span(nil); ok {
		t.Fatal("empty span must report !ok")
	}
	if ix.Bytes() < 4*5 {
		t.Fatalf("Bytes = %d, want at least the entry payload", ix.Bytes())
	}
	if ix.KindCount(kText) != 2 || ix.TagCount(0) != 2 || ix.TagCount(1) != 1 {
		t.Fatal("bad counts")
	}
	// Out-of-range lookups are nil, not panics.
	if ix.Tag(-1) != nil || ix.Tag(99) != nil || ix.KindList(99) != nil {
		t.Fatal("out-of-range lookups must be nil")
	}
}

func TestSectionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(400)
		names := 1 + rng.Intn(6)
		kinds, nameCol := randomColumns(rng, n, names)
		ix := Build(kinds, nameCol, names, int(numKinds), kElem)

		var buf bytes.Buffer
		if err := ix.WriteSection(&buf); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		got, err := ReadSection(bytes.NewReader(raw), n, names, int(numKinds), kElem)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var buf2 bytes.Buffer
		if err := got.WriteSection(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, buf2.Bytes()) {
			t.Fatalf("trial %d: section round trip changed the encoding", trial)
		}
	}
}

func TestReadSectionRejectsCorruption(t *testing.T) {
	kinds := []uint8{kElem, kElem, kText, kElem, kComment}
	names := []int32{0, 1, -1, 0, -1}
	ix := Build(kinds, names, 2, int(numKinds), kElem)
	var buf bytes.Buffer
	if err := ix.WriteSection(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	n := len(kinds)

	if _, err := ReadSection(bytes.NewReader(valid), n, 2, int(numKinds), kElem); err != nil {
		t.Fatalf("valid section rejected: %v", err)
	}

	// Wrong shape parameters.
	if _, err := ReadSection(bytes.NewReader(valid), n, 3, int(numKinds), kElem); err == nil {
		t.Fatal("accepted wrong dictionary size")
	}
	if _, err := ReadSection(bytes.NewReader(valid), n, 2, int(numKinds)+1, kElem); err == nil {
		t.Fatal("accepted wrong kind count")
	}
	if _, err := ReadSection(bytes.NewReader(valid), n-1, 2, int(numKinds), kElem); err == nil {
		t.Fatal("accepted entry total exceeding node count")
	}

	// Truncations at every byte boundary must error, never panic.
	for cut := 0; cut < len(valid); cut++ {
		if _, err := ReadSection(bytes.NewReader(valid[:cut]), n, 2, int(numKinds), kElem); err == nil {
			t.Fatalf("accepted truncation at %d bytes", cut)
		}
	}

	// Single-byte corruptions must never be silently accepted as a
	// different index: any accepted mutation must re-serialize
	// canonically (and in practice the span/sortedness/total checks
	// reject these).
	for i := range valid {
		mut := bytes.Clone(valid)
		mut[i] ^= 0x01
		got, err := ReadSection(bytes.NewReader(mut), n, 2, int(numKinds), kElem)
		if err != nil {
			continue
		}
		var re bytes.Buffer
		if err := got.WriteSection(&re); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re.Bytes(), mut) {
			t.Fatalf("byte %d: accepted non-canonical section", i)
		}
	}
}
