// Package index implements the persistent per-document tag/kind node
// index: for every interned element name, and for every non-element
// node kind, the pre-sorted list of preorder ranks carrying it.
//
// This is the paper's §4.4/§6 observation promoted to a first-class
// storage structure: the name-test pushdown rewrite
//
//	nametest(staircasejoin(doc, cs), n) -> staircasejoin(nametest(doc, n), cs)
//
// only pays off if nametest(doc, n) — the tag's node list — is already
// materialised. The engine used to rebuild each list with an O(n) scan
// of the name column per Engine instance; the Index is built exactly
// once per document (a single O(n) pass at shred/load time), is
// immutable afterwards, and is shared lock-free by every engine over
// the document. Since node lists keep their pre/post coordinates, every
// staircase join property (pruning, skipping, duplicate freedom) holds
// on them unchanged.
//
// Each list additionally records its cardinality and pre span
// (first/last rank) so the pushdown cost model reads exact numbers
// instead of estimating — the "fragment statistics" a relational
// optimizer would keep in its catalog.
//
// The Index is doc-agnostic on purpose: it is built from the raw kind
// and name columns, so internal/doc can embed and persist it (the SCJ2
// index section, see WriteSection) without an import cycle.
package index

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Index holds one pre-sorted node list per element tag and per
// non-element node kind. Immutable after Build/ReadSection; safe for
// concurrent readers.
type Index struct {
	tags  [][]int32 // by interned name id; element nodes only
	kinds [][]int32 // by kind value; the element kind's slot stays empty
	elem  uint8     // kind value of element nodes
	nodes int       // document size the index was built for
}

// Build constructs the index in one pass over the kind and name
// columns. numNames is the dictionary size, numKinds the number of
// kind values (all in [0, numKinds)), elem the kind value of element
// nodes — elements are indexed by tag, every other kind by its kind
// value. Entries are appended in pre order, so every list is sorted by
// construction.
func Build[K ~uint8](kinds []K, names []int32, numNames, numKinds int, elem K) *Index {
	ix := &Index{
		tags:  make([][]int32, numNames),
		kinds: make([][]int32, numKinds),
		elem:  uint8(elem),
		nodes: len(kinds),
	}
	// Counting pass: exact list sizes, so the fill pass allocates one
	// backing array per list with no append growth.
	tagCount := make([]int32, numNames)
	kindCount := make([]int32, numKinds)
	for v, k := range kinds {
		if k == elem {
			if id := names[v]; id >= 0 && int(id) < numNames {
				tagCount[id]++
			}
			continue
		}
		if int(k) < numKinds {
			kindCount[k]++
		}
	}
	for id, c := range tagCount {
		ix.tags[id] = make([]int32, 0, c)
	}
	for k, c := range kindCount {
		if c > 0 {
			ix.kinds[k] = make([]int32, 0, c)
		}
	}
	for v, k := range kinds {
		if k == elem {
			if id := names[v]; id >= 0 && int(id) < numNames {
				ix.tags[id] = append(ix.tags[id], int32(v))
			}
			continue
		}
		if int(k) < numKinds {
			ix.kinds[k] = append(ix.kinds[k], int32(v))
		}
	}
	return ix
}

// NumTags returns the number of tag lists (the dictionary size at
// build time).
func (ix *Index) NumTags() int { return len(ix.tags) }

// NumKinds returns the number of kind slots.
func (ix *Index) NumKinds() int { return len(ix.kinds) }

// Nodes returns the size of the document the index was built for.
func (ix *Index) Nodes() int { return ix.nodes }

// Tag returns the pre-sorted element node list of the given name id
// (nil for out-of-range ids and absent tags). Callers must not modify
// the returned slice.
func (ix *Index) Tag(id int32) []int32 {
	if id < 0 || int(id) >= len(ix.tags) {
		return nil
	}
	return ix.tags[id]
}

// TagCount returns the number of elements carrying the name id — the
// exact fragment cardinality the pushdown cost model needs.
func (ix *Index) TagCount(id int32) int { return len(ix.Tag(id)) }

// KindList returns the pre-sorted node list of a non-element kind
// value (nil for out-of-range kinds and for the element kind itself).
// Callers must not modify the returned slice.
func (ix *Index) KindList(k uint8) []int32 {
	if int(k) >= len(ix.kinds) {
		return nil
	}
	return ix.kinds[k]
}

// KindCount returns the number of nodes of a non-element kind.
func (ix *Index) KindCount(k uint8) int { return len(ix.KindList(k)) }

// Span returns the pre span [min, max] of a node list and whether the
// list is non-empty. Lists are sorted, so the span is the first and
// last entry.
func Span(list []int32) (min, max int32, ok bool) {
	if len(list) == 0 {
		return 0, -1, false
	}
	return list[0], list[len(list)-1], true
}

// Bytes returns the in-memory footprint of the index: 4 bytes per
// entry plus a slice header per list. This is the quantity the catalog
// charges against its residency budget.
func (ix *Index) Bytes() int64 {
	const sliceHeader = 24
	total := int64(len(ix.tags)+len(ix.kinds)) * sliceHeader
	for _, l := range ix.tags {
		total += 4 * int64(len(l))
	}
	for _, l := range ix.kinds {
		total += 4 * int64(len(l))
	}
	return total
}

// Entries returns the total number of indexed nodes across all lists.
// For an index over a full document this equals the node count: every
// node is an element (one tag list) or a non-element (one kind list).
func (ix *Index) Entries() int64 {
	var total int64
	for _, l := range ix.tags {
		total += int64(len(l))
	}
	for _, l := range ix.kinds {
		total += int64(len(l))
	}
	return total
}

// --- persistence (the SCJ2 index section) ----------------------------------
//
// Layout (little endian), written after the document payload:
//
//	numTags u32 | numKinds u32 | elemKind u8
//	then per list, tags in name-id order followed by kinds in kind order:
//	  count u32 | minPre i32 | maxPre i32 | entries [count]i32
//
// The encoding is canonical: lists are strictly ascending, min/max are
// the first/last entry (0/-1 for empty lists), and the total entry
// count equals the node count. ReadSection rejects anything else, so a
// corrupt index section can never silently change query results — and
// writing a freshly read index reproduces the input bytes exactly.

// WriteSection serializes the index.
func (ix *Index) WriteSection(w io.Writer) error {
	hdr := []uint32{uint32(len(ix.tags)), uint32(len(ix.kinds))}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if _, err := w.Write([]byte{ix.elem}); err != nil {
		return err
	}
	writeList := func(list []int32) error {
		min, max, _ := Span(list)
		if err := binary.Write(w, binary.LittleEndian, uint32(len(list))); err != nil {
			return err
		}
		for _, v := range []int32{min, max} {
			if err := binary.Write(w, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return binary.Write(w, binary.LittleEndian, list)
	}
	for _, l := range ix.tags {
		if err := writeList(l); err != nil {
			return err
		}
	}
	for _, l := range ix.kinds {
		if err := writeList(l); err != nil {
			return err
		}
	}
	return nil
}

// ReadSection deserializes and validates an index section for a
// document of n nodes with numNames dictionary entries, numKinds kind
// values and element kind elem (the stored shape must match the
// caller's expectation exactly). Corrupt input of any shape (bad
// lengths, unsorted lists, out-of-range ranks, span mismatches,
// truncation) yields an error, never a panic or an unbounded
// allocation.
func ReadSection(r io.Reader, n, numNames, numKinds int, elem uint8) (*Index, error) {
	var numTags, nk uint32
	if err := binary.Read(r, binary.LittleEndian, &numTags); err != nil {
		return nil, fmt.Errorf("index: read section header: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &nk); err != nil {
		return nil, fmt.Errorf("index: read section header: %w", err)
	}
	if int(numTags) != numNames {
		return nil, fmt.Errorf("index: section has %d tag lists, dictionary has %d names", numTags, numNames)
	}
	if int(nk) != numKinds {
		return nil, fmt.Errorf("index: section has %d kind lists, want %d", nk, numKinds)
	}
	var stored [1]byte
	if _, err := io.ReadFull(r, stored[:]); err != nil {
		return nil, fmt.Errorf("index: read element kind: %w", err)
	}
	if stored[0] != elem {
		return nil, fmt.Errorf("index: section element kind %d, want %d", stored[0], elem)
	}
	ix := &Index{
		tags:  make([][]int32, numNames),
		kinds: make([][]int32, numKinds),
		elem:  elem,
		nodes: n,
	}
	var total int64
	readList := func(what string) ([]int32, error) {
		var count uint32
		if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
			return nil, fmt.Errorf("index: read %s length: %w", what, err)
		}
		if int64(count) > int64(n) {
			return nil, fmt.Errorf("index: %s has %d entries, document has %d nodes", what, count, n)
		}
		var min, max int32
		if err := binary.Read(r, binary.LittleEndian, &min); err != nil {
			return nil, err
		}
		if err := binary.Read(r, binary.LittleEndian, &max); err != nil {
			return nil, err
		}
		list, err := readInt32Chunked(r, int(count))
		if err != nil {
			return nil, fmt.Errorf("index: read %s entries: %w", what, err)
		}
		prev := int32(-1)
		for _, v := range list {
			if v <= prev || int(v) >= n {
				return nil, fmt.Errorf("index: %s not strictly ascending within [0,%d)", what, n)
			}
			prev = v
		}
		wantMin, wantMax, _ := Span(list)
		if min != wantMin || max != wantMax {
			return nil, fmt.Errorf("index: %s span [%d,%d] does not match entries [%d,%d]",
				what, min, max, wantMin, wantMax)
		}
		total += int64(count)
		if total > int64(n) {
			return nil, fmt.Errorf("index: lists index %d entries, document has %d nodes", total, n)
		}
		return list, nil
	}
	for id := range ix.tags {
		l, err := readList(fmt.Sprintf("tag list %d", id))
		if err != nil {
			return nil, err
		}
		ix.tags[id] = l
	}
	for k := range ix.kinds {
		l, err := readList(fmt.Sprintf("kind list %d", k))
		if err != nil {
			return nil, err
		}
		if k == int(ix.elem) && len(l) > 0 {
			return nil, fmt.Errorf("index: element kind %d has a kind list (elements are indexed by tag)", k)
		}
		ix.kinds[k] = l
	}
	if total != int64(n) {
		return nil, fmt.Errorf("index: lists index %d entries, document has %d nodes", total, n)
	}
	return ix, nil
}

// readInt32Chunked reads n little-endian int32s in bounded chunks so a
// forged length on a truncated stream errors out after one chunk's
// allocation.
func readInt32Chunked(r io.Reader, n int) ([]int32, error) {
	const chunk = 1 << 20
	if n <= chunk {
		col := make([]int32, n)
		if err := binary.Read(r, binary.LittleEndian, col); err != nil {
			return nil, err
		}
		return col, nil
	}
	col := make([]int32, 0, chunk)
	for remaining := n; remaining > 0; {
		c := chunk
		if remaining < c {
			c = remaining
		}
		part := make([]int32, c)
		if err := binary.Read(r, binary.LittleEndian, part); err != nil {
			return nil, err
		}
		col = append(col, part...)
		remaining -= c
	}
	return col, nil
}
