package axis

import (
	"math/rand"
	"testing"

	"staircase/internal/doc"
)

// figure1 shreds the running example of the paper (Figures 1 and 2).
func figure1(t testing.TB) *doc.Document {
	t.Helper()
	d, err := doc.ShredString(`<a><b><c/></b><d/><e><f><g/><h/></f><i><j/></i></e></a>`)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// nodesOn collects pre ranks on axis a of context c via the In predicate.
func nodesOn(d *doc.Document, a Axis, c int32) []int32 {
	var out []int32
	for v := int32(0); int(v) < d.Size(); v++ {
		if In(d, a, c, v) {
			out = append(out, v)
		}
	}
	return out
}

func names(d *doc.Document, pres []int32) []string {
	out := make([]string, len(pres))
	for i, p := range pres {
		out[i] = d.Name(p)
	}
	return out
}

func eqStrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFigure1Regions(t *testing.T) {
	d := figure1(t)
	f := int32(5) // context node f, as in Figure 1
	cases := []struct {
		a    Axis
		want []string
	}{
		{Preceding, []string{"b", "c", "d"}},
		{Descendant, []string{"g", "h"}},
		{Ancestor, []string{"a", "e"}},
		{Following, []string{"i", "j"}},
	}
	for _, tc := range cases {
		got := names(d, nodesOn(d, tc.a, f))
		if !eqStrs(got, tc.want) {
			t.Errorf("f/%s = %v, want %v", tc.a, got, tc.want)
		}
	}
	// g/ancestor = (a, e, f) — the paper's second example.
	if got := names(d, nodesOn(d, Ancestor, 6)); !eqStrs(got, []string{"a", "e", "f"}) {
		t.Errorf("g/ancestor = %v, want [a e f]", got)
	}
}

func TestNonPartitioningAxes(t *testing.T) {
	d := figure1(t)
	e := int32(4)
	if got := names(d, nodesOn(d, Child, e)); !eqStrs(got, []string{"f", "i"}) {
		t.Errorf("e/child = %v", got)
	}
	if got := names(d, nodesOn(d, Parent, e)); !eqStrs(got, []string{"a"}) {
		t.Errorf("e/parent = %v", got)
	}
	if got := names(d, nodesOn(d, Self, e)); !eqStrs(got, []string{"e"}) {
		t.Errorf("e/self = %v", got)
	}
	if got := names(d, nodesOn(d, AncestorOrSelf, e)); !eqStrs(got, []string{"a", "e"}) {
		t.Errorf("e/ancestor-or-self = %v", got)
	}
	if got := names(d, nodesOn(d, DescendantOrSelf, e)); !eqStrs(got, []string{"e", "f", "g", "h", "i", "j"}) {
		t.Errorf("e/descendant-or-self = %v", got)
	}
	if got := names(d, nodesOn(d, FollowingSibling, int32(1))); !eqStrs(got, []string{"d", "e"}) {
		t.Errorf("b/following-sibling = %v", got)
	}
	if got := names(d, nodesOn(d, PrecedingSibling, int32(4))); !eqStrs(got, []string{"b", "d"}) {
		t.Errorf("e/preceding-sibling = %v", got)
	}
	if got := nodesOn(d, FollowingSibling, 0); len(got) != 0 {
		t.Errorf("root/following-sibling = %v, want empty", got)
	}
	if got := nodesOn(d, Namespace, e); len(got) != 0 {
		t.Errorf("namespace axis yielded %v", got)
	}
}

func TestAttributeAxisAndFiltering(t *testing.T) {
	d, err := doc.ShredString(`<r id="1"><c a="x" b="y"><s/></c></r>`)
	if err != nil {
		t.Fatal(err)
	}
	var cPre int32 = -1
	for v := int32(0); int(v) < d.Size(); v++ {
		if d.Name(v) == "c" && d.KindOf(v) == doc.Elem {
			cPre = v
		}
	}
	attrs := nodesOn(d, Attribute, cPre)
	if len(attrs) != 2 || d.Name(attrs[0]) != "a" || d.Name(attrs[1]) != "b" {
		t.Fatalf("c/attribute = %v", names(d, attrs))
	}
	// No other axis may deliver attribute nodes.
	for _, a := range All() {
		if a == Attribute {
			continue
		}
		for v := int32(0); int(v) < d.Size(); v++ {
			for _, res := range nodesOn(d, a, v) {
				if d.KindOf(res) == doc.Attr {
					t.Fatalf("axis %v produced attribute node %d", a, res)
				}
			}
		}
	}
}

func TestParseAndString(t *testing.T) {
	for _, a := range All() {
		got, err := Parse(a.String())
		if err != nil || got != a {
			t.Errorf("Parse(%q) = (%v, %v)", a.String(), got, err)
		}
	}
	if _, err := Parse("sideways"); err == nil {
		t.Error("Parse accepted bogus axis")
	}
}

func TestReverseAndPartitioningFlags(t *testing.T) {
	rev := map[Axis]bool{Parent: true, Ancestor: true, AncestorOrSelf: true, Preceding: true, PrecedingSibling: true}
	for _, a := range All() {
		if a.Reverse() != rev[a] {
			t.Errorf("%v.Reverse() = %v", a, a.Reverse())
		}
	}
	part := map[Axis]bool{Descendant: true, Ancestor: true, Following: true, Preceding: true}
	for _, a := range All() {
		if a.Partitioning() != part[a] {
			t.Errorf("%v.Partitioning() = %v", a, a.Partitioning())
		}
	}
}

func TestRegionWindowMatchesIn(t *testing.T) {
	d := figure1(t)
	for _, a := range []Axis{Descendant, Ancestor, Following, Preceding} {
		for c := int32(0); int(c) < d.Size(); c++ {
			w := RegionWindow(d, a, c)
			for v := int32(0); int(v) < d.Size(); v++ {
				inWin := w.Contains(v, d.Post(v))
				if inWin != In(d, a, c, v) {
					t.Fatalf("axis %v c=%d v=%d: window %v says %v, In says %v",
						a, c, v, w, inWin, In(d, a, c, v))
				}
			}
		}
	}
}

func TestTightWindowSoundAndTighter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := randomDoc(rng, 300)
	for _, a := range []Axis{Descendant, Ancestor, Following, Preceding} {
		for trial := 0; trial < 40; trial++ {
			c := int32(rng.Intn(d.Size()))
			tw := TightWindow(d, a, c)
			rw := RegionWindow(d, a, c)
			if tw.PreLo < rw.PreLo || tw.PreHi > rw.PreHi || tw.PostLo < rw.PostLo || tw.PostHi > rw.PostHi {
				t.Fatalf("tight window %v exceeds region window %v", tw, rw)
			}
			for v := int32(0); int(v) < d.Size(); v++ {
				if In(d, a, c, v) && !tw.Contains(v, d.Post(v)) {
					t.Fatalf("axis %v c=%d: tight window %v excludes result node %d", a, c, tw, v)
				}
			}
		}
	}
}

func TestExactDescendantWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := randomDoc(rng, 300)
	for trial := 0; trial < 50; trial++ {
		c := int32(rng.Intn(d.Size()))
		w := ExactDescendantWindow(d, c)
		// Exactly the nodes with pre in (c, c+size] are descendants.
		for v := int32(0); int(v) < d.Size(); v++ {
			inWin := v >= w.PreLo && v <= w.PreHi
			if inWin != d.IsDescendant(c, v) {
				t.Fatalf("c=%d v=%d: exact window pre range wrong (%v)", c, v, w)
			}
		}
	}
}

func TestWindowEmptyAndString(t *testing.T) {
	w := Window{PreLo: 5, PreHi: 4, PostLo: 0, PostHi: 10}
	if !w.Empty() {
		t.Error("inverted window should be empty")
	}
	if w.String() == "" {
		t.Error("String should render")
	}
	ok := Window{PreLo: 0, PreHi: 4, PostLo: 0, PostHi: 10}
	if ok.Empty() {
		t.Error("proper window reported empty")
	}
}

func TestKindOK(t *testing.T) {
	if KindOK(Descendant, doc.Attr) {
		t.Error("descendant must filter attributes")
	}
	if !KindOK(Descendant, doc.Text) {
		t.Error("descendant must keep text")
	}
	if !KindOK(Attribute, doc.Attr) {
		t.Error("attribute axis must keep attributes")
	}
	if KindOK(Attribute, doc.Elem) {
		t.Error("attribute axis must reject elements")
	}
}

// TestFigure7EmptyRegions verifies the empty-region lemmas skipping is
// built on: for a, b on the ancestor/descendant axis, regions S and U
// are empty; for a, b on preceding/following, region Z is empty.
func TestFigure7EmptyRegions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		d := randomDoc(rng, 150)
		n := int32(d.Size())
		for i := 0; i < 200; i++ {
			a := int32(rng.Intn(int(n)))
			b := int32(rng.Intn(int(n)))
			if a >= b {
				continue
			}
			if d.IsDescendant(a, b) {
				// S: pre > b, post > post(b), pre < ... region S = following(a) ∩ ancestor(b):
				for v := int32(0); v < n; v++ {
					if In(d, Following, a, v) && In(d, Ancestor, b, v) {
						t.Fatalf("region S not empty: a=%d b=%d v=%d", a, b, v)
					}
					if In(d, Preceding, a, v) && In(d, Ancestor, b, v) {
						t.Fatalf("region U not empty: a=%d b=%d v=%d", a, b, v)
					}
				}
			} else if d.Post(b) > d.Post(a) {
				// a precedes b: common descendants (region Z) impossible.
				for v := int32(0); v < n; v++ {
					if In(d, Descendant, a, v) && In(d, Descendant, b, v) {
						t.Fatalf("region Z not empty: a=%d b=%d v=%d", a, b, v)
					}
				}
			}
		}
	}
}

// randomDoc builds a random document for property tests.
func randomDoc(rng *rand.Rand, n int) *doc.Document {
	b := doc.NewBuilder()
	b.OpenElem("root")
	depth := 1
	tags := []string{"p", "q", "r"}
	for i := 0; i < n; i++ {
		switch r := rng.Intn(10); {
		case r < 5:
			b.OpenElem(tags[rng.Intn(len(tags))])
			if rng.Intn(4) == 0 {
				b.Attr("k", "v")
			}
			depth++
		case r < 7 && depth > 1:
			b.CloseElem()
			depth--
		default:
			b.Text("t")
		}
	}
	for depth > 0 {
		b.CloseElem()
		depth--
	}
	d, err := b.Done()
	if err != nil {
		panic(err)
	}
	return d
}
