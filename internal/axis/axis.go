// Package axis defines the XPath axes as regions of the pre/post plane.
//
// For a context node c, the four partitioning axes carve the plane into
// four rectangular regions (Figure 1/2 of the staircase join paper):
//
//	ancestor   : pre(v) < pre(c) ∧ post(v) > post(c)   (upper left)
//	preceding  : pre(v) < pre(c) ∧ post(v) < post(c)   (lower left)
//	descendant : pre(v) > pre(c) ∧ post(v) < post(c)   (lower right)
//	following  : pre(v) > pre(c) ∧ post(v) > post(c)   (upper right)
//
// All remaining axes are super-/subsets of these regions or are answered
// via the parent column. The package also provides the Equation (1)
// windows used to delimit index range scans (§2.1) and the
// empty-region lemmas of Figure 7 that skipping builds on (§3.3).
package axis

import (
	"fmt"
	"strings"

	"staircase/internal/doc"
)

// Axis enumerates the 13 XPath axes.
type Axis uint8

const (
	// Child selects the element/text/comment/PI children of c.
	Child Axis = iota
	// Descendant selects all nodes in the subtree below c.
	Descendant
	// DescendantOrSelf is Descendant plus c itself.
	DescendantOrSelf
	// Parent selects the parent of c.
	Parent
	// Ancestor selects all nodes on the path from c's parent to the root.
	Ancestor
	// AncestorOrSelf is Ancestor plus c itself.
	AncestorOrSelf
	// Following selects nodes that begin after c ends.
	Following
	// Preceding selects nodes that end before c begins.
	Preceding
	// FollowingSibling selects later children of c's parent.
	FollowingSibling
	// PrecedingSibling selects earlier children of c's parent.
	PrecedingSibling
	// Self selects c itself.
	Self
	// Attribute selects the attribute nodes of c.
	Attribute
	// Namespace is accepted for completeness; the store does not model
	// namespace nodes, so the axis is always empty.
	Namespace
)

// axisNames maps Axis values to their XPath spellings.
var axisNames = [...]string{
	Child:            "child",
	Descendant:       "descendant",
	DescendantOrSelf: "descendant-or-self",
	Parent:           "parent",
	Ancestor:         "ancestor",
	AncestorOrSelf:   "ancestor-or-self",
	Following:        "following",
	Preceding:        "preceding",
	FollowingSibling: "following-sibling",
	PrecedingSibling: "preceding-sibling",
	Self:             "self",
	Attribute:        "attribute",
	Namespace:        "namespace",
}

// String returns the XPath spelling of the axis.
func (a Axis) String() string {
	if int(a) < len(axisNames) {
		return axisNames[a]
	}
	return fmt.Sprintf("Axis(%d)", uint8(a))
}

// Parse resolves an XPath axis name (e.g. "descendant-or-self").
func Parse(name string) (Axis, error) {
	for a, n := range axisNames {
		if n == name {
			return Axis(a), nil
		}
	}
	return 0, fmt.Errorf("axis: unknown axis %q", name)
}

// All lists every supported axis (useful for exhaustive tests).
func All() []Axis {
	out := make([]Axis, len(axisNames))
	for i := range out {
		out[i] = Axis(i)
	}
	return out
}

// Reverse reports whether the axis is a reverse axis (delivers nodes
// before the context node in document order). XPath semantics still
// require results in document order, which the evaluation layer ensures.
func (a Axis) Reverse() bool {
	switch a {
	case Parent, Ancestor, AncestorOrSelf, Preceding, PrecedingSibling:
		return true
	}
	return false
}

// Partitioning reports whether the axis is one of the four plane
// partitioning axes handled by the staircase join.
func (a Axis) Partitioning() bool {
	switch a {
	case Descendant, Ancestor, Following, Preceding:
		return true
	}
	return false
}

// In reports whether node v lies on axis a of context node c, fully
// honouring kind filtering (attribute nodes appear only on the
// attribute axis; the attribute axis yields only attributes of c).
// This is the specification predicate: O(1) per pair but O(n·|context|)
// when used for evaluation — exactly the tree-unaware behaviour the
// staircase join avoids. Baselines and property tests rely on it.
func In(d *doc.Document, a Axis, c, v int32) bool {
	isAttr := d.KindOf(v) == doc.Attr
	if a == Attribute {
		return isAttr && d.Parent(v) == c
	}
	if isAttr {
		return false
	}
	switch a {
	case Self:
		return v == c
	case Child:
		return d.Parent(v) == c
	case Parent:
		return d.Parent(c) == v
	case Descendant:
		return d.IsDescendant(c, v)
	case DescendantOrSelf:
		return v == c || d.IsDescendant(c, v)
	case Ancestor:
		return d.IsAncestor(c, v)
	case AncestorOrSelf:
		return v == c || d.IsAncestor(c, v)
	case Following:
		return v > c && d.Post(v) > d.Post(c)
	case Preceding:
		return v < c && d.Post(v) < d.Post(c)
	case FollowingSibling:
		return v > c && d.Parent(v) == d.Parent(c) && d.Parent(c) != doc.NoParent
	case PrecedingSibling:
		return v < c && d.Parent(v) == d.Parent(c) && d.Parent(c) != doc.NoParent
	case Namespace:
		return false
	default:
		panic(fmt.Sprintf("axis: In: unhandled axis %v", a))
	}
}

// Window is a closed pre-rank interval [PreLo, PreHi] together with a
// closed post-rank interval [PostLo, PostHi]; a node is inside iff both
// rank constraints hold. Windows delimit index range scans (§2.1).
type Window struct {
	PreLo, PreHi   int32
	PostLo, PostHi int32
}

// Contains reports whether (pre, post) lies in the window.
func (w Window) Contains(pre, post int32) bool {
	return pre >= w.PreLo && pre <= w.PreHi && post >= w.PostLo && post <= w.PostHi
}

// Empty reports whether the window can contain no node.
func (w Window) Empty() bool { return w.PreLo > w.PreHi || w.PostLo > w.PostHi }

// String renders the window for diagnostics.
func (w Window) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pre∈[%d,%d] post∈[%d,%d]", w.PreLo, w.PreHi, w.PostLo, w.PostHi)
	return sb.String()
}

// RegionWindow returns the plane window of the partitioning axis a with
// respect to context node c, without Equation (1) tightening: the
// "tree-unaware" rectangle of Figure 2.
func RegionWindow(d *doc.Document, a Axis, c int32) Window {
	n := int32(d.Size())
	post := d.Post(c)
	switch a {
	case Descendant:
		return Window{PreLo: c + 1, PreHi: n - 1, PostLo: 0, PostHi: post - 1}
	case Ancestor:
		return Window{PreLo: 0, PreHi: c - 1, PostLo: post + 1, PostHi: n - 1}
	case Following:
		return Window{PreLo: c + 1, PreHi: n - 1, PostLo: post + 1, PostHi: n - 1}
	case Preceding:
		return Window{PreLo: 0, PreHi: c - 1, PostLo: 0, PostHi: post - 1}
	default:
		panic(fmt.Sprintf("axis: RegionWindow: %v is not a partitioning axis", a))
	}
}

// TightWindow returns the Equation (1)-delimited window for axis a and
// context c: the additional range predicate of §2.1 (query line 7),
//
//	pre(v) ≤ post(c) + h   and   post(v) ≥ pre(c) − h
//
// for the descendant axis, which makes the scan range proportional to
// the context subtree instead of the document (the paper reports up to
// three orders of magnitude from this delimiter alone). Both bounds
// follow from Equation (1) with 0 ≤ level ≤ h. The other axes admit no
// comparable window tightening and return the plain region window.
func TightWindow(d *doc.Document, a Axis, c int32) Window {
	w := RegionWindow(d, a, c)
	if a == Descendant {
		h := d.Height()
		if hi := d.Post(c) + h; hi < w.PreHi {
			w.PreHi = hi
		}
		if lo := c - h; lo > w.PostLo {
			w.PostLo = lo
		}
	}
	return w
}

// ExactDescendantWindow uses the exact subtree size (Equation (1) with
// the true level) to delimit the descendant pre range: descendants of c
// occupy exactly pre ∈ [c+1, c+|subtree|].
func ExactDescendantWindow(d *doc.Document, c int32) Window {
	w := RegionWindow(d, Descendant, c)
	w.PreHi = c + d.SubtreeSize(c)
	return w
}

// KindOK reports whether a node of the given kind may appear in the
// result of axis a (the paper's attribute filtering rule: except for
// the attribute axis itself, no axis produces attribute nodes).
func KindOK(a Axis, k doc.Kind) bool {
	if a == Attribute {
		return k == doc.Attr
	}
	return k != doc.Attr
}
