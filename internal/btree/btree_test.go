package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKeyOrdering(t *testing.T) {
	cases := []struct {
		a, b Key
		less bool
	}{
		{Key{1, 0, 0}, Key{2, 0, 0}, true},
		{Key{1, 5, 0}, Key{1, 6, 0}, true},
		{Key{1, 5, 2}, Key{1, 5, 3}, true},
		{Key{2, 0, 0}, Key{1, 9, 9}, false},
		{Key{1, 1, 1}, Key{1, 1, 1}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
	if MinKey.Compare(MaxKey) != -1 || MaxKey.Compare(MinKey) != 1 || MinKey.Compare(MinKey) != 0 {
		t.Error("sentinel comparison broken")
	}
}

func TestBulkLoadSmall(t *testing.T) {
	keys := []Key{{1, 0, 0}, {2, 0, 0}, {3, 0, 0}}
	tr := BulkLoad(keys, []int32{10, 20, 30}, nil)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	var got []int32
	tr.Scan(MinKey, MaxKey, func(_ Key, v int32) bool { got = append(got, v); return true })
	if len(got) != 3 || got[0] != 10 || got[2] != 30 {
		t.Fatalf("scan = %v", got)
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	tr := BulkLoad(nil, nil, nil)
	if tr.Len() != 0 {
		t.Fatal("empty tree has entries")
	}
	if it := tr.Seek(MinKey); it.Valid() {
		t.Fatal("iterator on empty tree is valid")
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsorted bulk load")
		}
	}()
	BulkLoad([]Key{{2, 0, 0}, {1, 0, 0}}, []int32{0, 0}, nil)
}

func TestBulkLoadLargeAndDepth(t *testing.T) {
	n := 100_000
	keys := make([]Key, n)
	vals := make([]int32, n)
	for i := range keys {
		keys[i] = Key{A: int32(i), B: int32(i % 7)}
		vals[i] = int32(i)
	}
	tr := BulkLoad(keys, vals, nil)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() < 2 || tr.Depth() > 4 {
		t.Fatalf("depth = %d, want small logarithmic depth", tr.Depth())
	}
	// Point-ish range scan.
	got := tr.Count(Key{A: 500}, Key{A: 599, B: 1 << 30})
	if got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
}

func TestInsertAndScan(t *testing.T) {
	tr := New(nil)
	rng := rand.New(rand.NewSource(1))
	var ref []Key
	for i := 0; i < 5000; i++ {
		k := Key{A: int32(rng.Intn(1000)), B: int32(rng.Intn(10))}
		tr.Insert(k, int32(i))
		ref = append(ref, k)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	sort.Slice(ref, func(i, j int) bool { return ref[i].Less(ref[j]) })
	var got []Key
	tr.Scan(MinKey, MaxKey, func(k Key, _ int32) bool { got = append(got, k); return true })
	if len(got) != len(ref) {
		t.Fatalf("scan length %d, want %d", len(got), len(ref))
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("scan[%d] = %v, want %v", i, got[i], ref[i])
		}
	}
}

func TestSeekLowerBound(t *testing.T) {
	keys := []Key{{10, 0, 0}, {20, 0, 0}, {30, 0, 0}}
	tr := BulkLoad(keys, []int32{1, 2, 3}, nil)
	it := tr.Seek(Key{15, 0, 0})
	if !it.Valid() || it.Key().A != 20 {
		t.Fatalf("Seek(15) at %v", it.Key())
	}
	it = tr.Seek(Key{30, 0, 0})
	if !it.Valid() || it.Key().A != 30 {
		t.Fatalf("Seek(30) at %v", it.Key())
	}
	it = tr.Seek(Key{31, 0, 0})
	if it.Valid() {
		t.Fatal("Seek past end should be invalid")
	}
}

func TestScanEarlyStop(t *testing.T) {
	keys := make([]Key, 100)
	vals := make([]int32, 100)
	for i := range keys {
		keys[i] = Key{A: int32(i)}
	}
	tr := BulkLoad(keys, vals, nil)
	n := 0
	tr.Scan(MinKey, MaxKey, func(Key, int32) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestDuplicateKeys(t *testing.T) {
	keys := []Key{{1, 1, 0}, {1, 1, 0}, {1, 1, 0}, {2, 0, 0}}
	tr := BulkLoad(keys, []int32{1, 2, 3, 4}, nil)
	got := tr.Count(Key{1, 1, 0}, Key{1, 1, 0})
	if got != 3 {
		t.Fatalf("duplicate count = %d, want 3", got)
	}
}

func TestStatsCounting(t *testing.T) {
	var st Stats
	n := 10_000
	keys := make([]Key, n)
	vals := make([]int32, n)
	for i := range keys {
		keys[i] = Key{A: int32(i)}
	}
	tr := BulkLoad(keys, vals, &st)
	tr.Scan(Key{A: 100}, Key{A: 199}, func(Key, int32) bool { return true })
	if st.Seeks != 1 {
		t.Fatalf("Seeks = %d, want 1", st.Seeks)
	}
	if st.NodesVisited < int64(tr.Depth()) {
		t.Fatalf("NodesVisited = %d < depth %d", st.NodesVisited, tr.Depth())
	}
	if st.KeysScanned < 100 {
		t.Fatalf("KeysScanned = %d, want >= 100", st.KeysScanned)
	}
	st.Reset()
	if st.Seeks != 0 || st.NodesVisited != 0 || st.KeysScanned != 0 {
		t.Fatal("Reset did not zero counters")
	}
}

func TestPropInsertMatchesSortedReference(t *testing.T) {
	f := func(raw []uint16) bool {
		tr := New(nil)
		ref := make([]Key, 0, len(raw))
		for i, r := range raw {
			k := Key{A: int32(r % 256), B: int32(r / 256)}
			tr.Insert(k, int32(i))
			ref = append(ref, k)
		}
		if err := tr.Validate(); err != nil {
			return false
		}
		sort.Slice(ref, func(i, j int) bool { return ref[i].Less(ref[j]) })
		i := 0
		okOrder := true
		tr.Scan(MinKey, MaxKey, func(k Key, _ int32) bool {
			if i >= len(ref) || k != ref[i] {
				okOrder = false
				return false
			}
			i++
			return true
		})
		return okOrder && i == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroValueTree(t *testing.T) {
	var tr Tree
	if tr.Len() != 0 || tr.Depth() != 0 {
		t.Fatalf("zero tree Len=%d Depth=%d", tr.Len(), tr.Depth())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	it := tr.Seek(MinKey)
	if it.Valid() {
		t.Fatal("zero tree iterator is valid")
	}
	if it.Key() != (Key{}) || it.Value() != 0 {
		t.Fatal("exhausted iterator Key/Value not zero")
	}
	if got := tr.Count(MinKey, MaxKey); got != 0 {
		t.Fatalf("zero tree Count = %d", got)
	}
	tr.Scan(MinKey, MaxKey, func(Key, int32) bool { t.Fatal("zero tree scan visited an entry"); return false })
	tr.Insert(Key{1, 0, 0}, 7)
	if tr.Len() != 1 || tr.Depth() != 1 {
		t.Fatalf("after insert Len=%d Depth=%d", tr.Len(), tr.Depth())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExhaustedIteratorSafe(t *testing.T) {
	tr := BulkLoad([]Key{{1, 0, 0}}, []int32{9}, nil)
	it := tr.Seek(Key{2, 0, 0})
	if it.Valid() {
		t.Fatal("Seek past end valid")
	}
	if it.Key() != (Key{}) || it.Value() != 0 {
		t.Fatal("exhausted iterator Key/Value not zero")
	}
	it.Next() // advancing an exhausted iterator must be a no-op
	if it.Valid() {
		t.Fatal("exhausted iterator became valid")
	}
}

// TestEdgeCaseRanges drives Count over trees and bounds chosen to hit
// the boundary conditions: empty trees, duplicate runs crossing leaf
// boundaries, and ranges delimited by MinKey/MaxKey sentinels.
func TestEdgeCaseRanges(t *testing.T) {
	dupRun := make([]Key, 3*order) // one key repeated across >2 leaves
	for i := range dupRun {
		dupRun[i] = Key{A: 5}
	}
	mixed := []Key{{1, 0, 0}, {1, 0, 0}, {2, 0, 0}, {2, 1, 0}, {2, 1, 1}, {9, 0, 0}}
	cases := []struct {
		name   string
		keys   []Key
		lo, hi Key
		want   int
	}{
		{"empty/full-range", nil, MinKey, MaxKey, 0},
		{"empty/point", nil, Key{1, 0, 0}, Key{1, 0, 0}, 0},
		{"dup-run/all", dupRun, MinKey, MaxKey, 3 * order},
		{"dup-run/point", dupRun, Key{A: 5}, Key{A: 5}, 3 * order},
		{"dup-run/below", dupRun, MinKey, Key{A: 4, B: 1<<31 - 1, C: 1<<31 - 1}, 0},
		{"dup-run/above", dupRun, Key{A: 6}, MaxKey, 0},
		{"mixed/inclusive-both-ends", mixed, Key{1, 0, 0}, Key{9, 0, 0}, 6},
		{"mixed/exclusive-above-lo", mixed, Key{1, 0, 1}, Key{9, 0, 0}, 4},
		{"mixed/prefix-bound", mixed, Key{2, 0, 0}, Key{2, 1, 0}, 2},
		{"mixed/min-sentinel-lo", mixed, MinKey, Key{1, 0, 0}, 2},
		{"mixed/max-sentinel-hi", mixed, Key{9, 0, 0}, MaxKey, 1},
		{"mixed/inverted", mixed, Key{9, 0, 0}, Key{1, 0, 0}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			vals := make([]int32, len(c.keys))
			tr := BulkLoad(c.keys, vals, nil)
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			if got := tr.Count(c.lo, c.hi); got != c.want {
				t.Fatalf("Count(%v, %v) = %d, want %d", c.lo, c.hi, got, c.want)
			}
		})
	}
}

// TestInsertSplitsKeepLeafChain grows a tree through repeated splits
// and checks the leaf chain (walked by Validate) and scan order after
// every growth spurt.
func TestInsertSplitsKeepLeafChain(t *testing.T) {
	tr := New(nil)
	rng := rand.New(rand.NewSource(7))
	for n := 1; n <= 4*order*order; n *= 4 {
		for tr.Len() < n {
			tr.Insert(Key{A: int32(rng.Intn(97)), B: int32(tr.Len())}, int32(tr.Len()))
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("after %d inserts: %v", tr.Len(), err)
		}
	}
	if tr.Depth() < 3 {
		t.Fatalf("depth = %d, want >= 3 after %d inserts", tr.Depth(), tr.Len())
	}
}

func TestPropRangeScanMatchesFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 3000
	keys := make([]Key, n)
	vals := make([]int32, n)
	for i := range keys {
		keys[i] = Key{A: int32(i / 3), B: int32(i % 3)}
		vals[i] = int32(i)
	}
	tr := BulkLoad(keys, vals, nil)
	for trial := 0; trial < 100; trial++ {
		lo := Key{A: int32(rng.Intn(1100) - 50), B: int32(rng.Intn(4) - 1)}
		hi := Key{A: int32(rng.Intn(1100) - 50), B: int32(rng.Intn(4) - 1)}
		want := 0
		for _, k := range keys {
			if !k.Less(lo) && !hi.Less(k) {
				want++
			}
		}
		if got := tr.Count(lo, hi); got != want {
			t.Fatalf("Count(%v,%v) = %d, want %d", lo, hi, got, want)
		}
	}
}
