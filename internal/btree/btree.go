// Package btree implements a B+-tree over composite integer keys, the
// index structure the tree-unaware SQL baseline of the staircase join
// paper relies on.
//
// The paper's analysis of the IBM DB2 plan (Figure 3) shows the RDBMS
// maintaining "a B-tree using concatenated (pre, post) keys" — and, for
// the early name test of Experiment 3, "(pre, post, tag name) keys".
// This package provides exactly that: keys are triples ordered
// lexicographically, values are node pre ranks, and range scans walk the
// linked leaf level. Access counters (nodes visited, keys compared)
// feed the experiment harness.
//
// The tree is built bottom-up from sorted input (bulk loading, the way
// a document-order index is created at load time) and also supports
// incremental insertion. Beyond the SQL baseline, the value index
// (internal/vindex) bulk-loads rank→pre trees from it and serves
// range lookups through Seek/Scan.
//
// The zero Tree value is an empty tree ready for use: Seek, Scan,
// Count, Len, Depth and Validate treat it as empty, and Insert
// establishes the root lazily. New only differs in attaching a Stats
// counter.
package btree

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Key is a composite key of up to three int32 components compared
// lexicographically. Unused components should be left 0 (or use Min/Max
// sentinels for range bounds).
type Key struct {
	A, B, C int32
}

// Less reports whether k orders strictly before o.
func (k Key) Less(o Key) bool {
	if k.A != o.A {
		return k.A < o.A
	}
	if k.B != o.B {
		return k.B < o.B
	}
	return k.C < o.C
}

// Compare returns -1, 0, or +1.
func (k Key) Compare(o Key) int {
	switch {
	case k.Less(o):
		return -1
	case o.Less(k):
		return +1
	default:
		return 0
	}
}

// String renders the key for diagnostics.
func (k Key) String() string { return fmt.Sprintf("(%d,%d,%d)", k.A, k.B, k.C) }

// MinKey and MaxKey are range-bound sentinels.
var (
	MinKey = Key{A: -1 << 31, B: -1 << 31, C: -1 << 31}
	MaxKey = Key{A: 1<<31 - 1, B: 1<<31 - 1, C: 1<<31 - 1}
)

// Stats counts index work. Counters accumulate across operations; the
// experiment harness resets them between measurements. Increments are
// atomic so a tree shared by concurrent readers stays race-free;
// reading the counters while scans are in flight yields approximate
// values.
type Stats struct {
	// NodesVisited counts inner and leaf nodes touched ("index pages").
	NodesVisited int64
	// KeysScanned counts leaf entries inspected during range scans.
	KeysScanned int64
	// Seeks counts root-to-leaf descents.
	Seeks int64
}

// Reset zeroes all counters.
func (s *Stats) Reset() { *s = Stats{} }

// order is the fan-out of inner nodes and capacity of leaves. 64 keys ×
// 16 bytes ≈ 1 KiB nodes, a plausible page fraction; the exact value
// only scales constants in the experiments.
const order = 64

type node struct {
	// keys[i] separates children[i] (< keys[i]) from children[i+1]
	// (>= keys[i]) in inner nodes; in leaves, keys[i] pairs with
	// vals[i].
	keys     []Key
	children []*node // inner nodes only
	vals     []int32 // leaves only
	next     *node   // leaf chain
	leaf     bool
}

// Tree is a B+-tree mapping composite keys to int32 values. Duplicate
// keys are allowed (multi-map), preserving insertion order within equal
// keys for bulk loads.
type Tree struct {
	root  *node
	size  int
	depth int
	stats *Stats
}

// New returns an empty tree. If st is non-nil, index work is counted
// into it.
func New(st *Stats) *Tree {
	return &Tree{root: &node{leaf: true}, depth: 1, stats: st}
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Depth returns the current height of the tree (leaf level = 1).
func (t *Tree) Depth() int { return t.depth }

// BulkLoad builds a tree from entries sorted by key. It panics if the
// input is unsorted (the caller is expected to deliver index-order
// input, e.g. the pre-sorted document table). Values pair positionally
// with keys.
func BulkLoad(keys []Key, vals []int32, st *Stats) *Tree {
	if len(keys) != len(vals) {
		panic("btree: BulkLoad length mismatch")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i].Less(keys[i-1]) {
			panic(fmt.Sprintf("btree: BulkLoad input unsorted at %d: %v < %v", i, keys[i], keys[i-1]))
		}
	}
	t := New(st)
	if len(keys) == 0 {
		return t
	}
	// Build the leaf level.
	var leaves []*node
	for i := 0; i < len(keys); i += order {
		j := i + order
		if j > len(keys) {
			j = len(keys)
		}
		lf := &node{
			leaf: true,
			keys: append([]Key(nil), keys[i:j]...),
			vals: append([]int32(nil), vals[i:j]...),
		}
		if len(leaves) > 0 {
			leaves[len(leaves)-1].next = lf
		}
		leaves = append(leaves, lf)
	}
	// Build inner levels bottom-up.
	level := leaves
	depth := 1
	for len(level) > 1 {
		var upper []*node
		for i := 0; i < len(level); i += order {
			j := i + order
			if j > len(level) {
				j = len(level)
			}
			in := &node{children: append([]*node(nil), level[i:j]...)}
			for _, ch := range in.children[1:] {
				in.keys = append(in.keys, firstKey(ch))
			}
			upper = append(upper, in)
		}
		level = upper
		depth++
	}
	t.root = level[0]
	t.depth = depth
	t.size = len(keys)
	return t
}

// firstKey returns the smallest key reachable under n.
func firstKey(n *node) Key {
	for !n.leaf {
		n = n.children[0]
	}
	return n.keys[0]
}

// Insert adds an entry. Duplicate keys are permitted.
func (t *Tree) Insert(k Key, v int32) {
	if t.root == nil { // zero-value Tree
		t.root = &node{leaf: true}
		t.depth = 1
	}
	nk, nc := t.insert(t.root, k, v)
	if nc != nil {
		t.root = &node{keys: []Key{nk}, children: []*node{t.root, nc}}
		t.depth++
	}
	t.size++
}

// insert descends into n; on child split it returns the separator key
// and the new right sibling.
func (t *Tree) insert(n *node, k Key, v int32) (Key, *node) {
	if n.leaf {
		pos := sort.Search(len(n.keys), func(i int) bool { return k.Less(n.keys[i]) })
		n.keys = append(n.keys, Key{})
		copy(n.keys[pos+1:], n.keys[pos:])
		n.keys[pos] = k
		n.vals = append(n.vals, 0)
		copy(n.vals[pos+1:], n.vals[pos:])
		n.vals[pos] = v
		if len(n.keys) <= order {
			return Key{}, nil
		}
		mid := len(n.keys) / 2
		right := &node{
			leaf: true,
			keys: append([]Key(nil), n.keys[mid:]...),
			vals: append([]int32(nil), n.vals[mid:]...),
			next: n.next,
		}
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = right
		return right.keys[0], right
	}
	pos := sort.Search(len(n.keys), func(i int) bool { return k.Less(n.keys[i]) })
	sk, sc := t.insert(n.children[pos], k, v)
	if sc == nil {
		return Key{}, nil
	}
	n.keys = append(n.keys, Key{})
	copy(n.keys[pos+1:], n.keys[pos:])
	n.keys[pos] = sk
	n.children = append(n.children, nil)
	copy(n.children[pos+2:], n.children[pos+1:])
	n.children[pos+1] = sc
	if len(n.children) <= order {
		return Key{}, nil
	}
	mid := len(n.keys) / 2
	upKey := n.keys[mid]
	right := &node{
		keys:     append([]Key(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return upKey, right
}

// Iterator walks leaf entries in key order starting at a lower bound.
type Iterator struct {
	t    *Tree
	n    *node
	pos  int
	done bool
}

// Seek positions an iterator at the first entry with key >= lower.
// On an empty (or zero-value) tree the returned iterator is immediately
// invalid.
func (t *Tree) Seek(lower Key) *Iterator {
	if t.stats != nil {
		atomic.AddInt64(&t.stats.Seeks, 1)
	}
	n := t.root
	if n == nil { // zero-value Tree: no root was ever allocated
		return &Iterator{t: t, done: true}
	}
	for {
		if t.stats != nil {
			atomic.AddInt64(&t.stats.NodesVisited, 1)
		}
		if n.leaf {
			break
		}
		// Descend at the first separator >= lower: with duplicate keys
		// the left sibling of an equal separator may still hold equal
		// entries.
		pos := sort.Search(len(n.keys), func(i int) bool { return !n.keys[i].Less(lower) })
		n = n.children[pos]
	}
	pos := sort.Search(len(n.keys), func(i int) bool { return !n.keys[i].Less(lower) })
	it := &Iterator{t: t, n: n, pos: pos}
	it.skipToData()
	return it
}

// skipToData advances across exhausted leaves.
func (it *Iterator) skipToData() {
	for it.n != nil && it.pos >= len(it.n.keys) {
		it.n = it.n.next
		it.pos = 0
		if it.n != nil && it.t.stats != nil {
			atomic.AddInt64(&it.t.stats.NodesVisited, 1)
		}
	}
	if it.n == nil {
		it.done = true
	}
}

// Valid reports whether the iterator currently points at an entry.
func (it *Iterator) Valid() bool { return !it.done }

// Key returns the current entry's key, or the zero Key when the
// iterator is exhausted.
func (it *Iterator) Key() Key {
	if it.done {
		return Key{}
	}
	return it.n.keys[it.pos]
}

// Value returns the current entry's value, or 0 when the iterator is
// exhausted.
func (it *Iterator) Value() int32 {
	if it.done {
		return 0
	}
	return it.n.vals[it.pos]
}

// Next advances to the following entry in key order.
func (it *Iterator) Next() {
	if it.done {
		return
	}
	if it.t.stats != nil {
		atomic.AddInt64(&it.t.stats.KeysScanned, 1)
	}
	it.pos++
	it.skipToData()
}

// Scan visits all entries with lower <= key <= upper in key order,
// stopping early if f returns false.
func (t *Tree) Scan(lower, upper Key, f func(Key, int32) bool) {
	for it := t.Seek(lower); it.Valid(); it.Next() {
		k := it.Key()
		if upper.Less(k) {
			if t.stats != nil {
				atomic.AddInt64(&t.stats.KeysScanned, 1) // the delimiting probe
			}
			return
		}
		if !f(k, it.Value()) {
			return
		}
	}
}

// Count returns the number of entries in [lower, upper].
func (t *Tree) Count(lower, upper Key) int {
	n := 0
	t.Scan(lower, upper, func(Key, int32) bool { n++; return true })
	return n
}

// Validate checks B+-tree structural invariants (key ordering, leaf
// chain consistency, entry count). For tests.
func (t *Tree) Validate() error {
	if t.root == nil { // zero-value Tree
		if t.size != 0 {
			return fmt.Errorf("btree: nil root but size %d", t.size)
		}
		return nil
	}
	count := 0
	var prev *Key
	var leaves []*node // left-to-right leaf order, for the chain check
	var walk func(n *node, lo, hi *Key) error
	walk = func(n *node, lo, hi *Key) error {
		if n.leaf {
			leaves = append(leaves, n)
			for i, k := range n.keys {
				if lo != nil && k.Less(*lo) {
					return fmt.Errorf("btree: leaf key %v below bound %v", k, *lo)
				}
				// With duplicate keys a leaf entry may equal the
				// separator above it, so the upper bound is inclusive.
				if hi != nil && hi.Less(k) {
					return fmt.Errorf("btree: leaf key %v above bound %v", k, *hi)
				}
				if prev != nil && k.Less(*prev) {
					return fmt.Errorf("btree: leaf order violation at %v", k)
				}
				kc := k
				prev = &kc
				count++
				_ = i
			}
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("btree: inner node fan-out mismatch")
		}
		for i, ch := range n.children {
			var clo, chi *Key
			if i > 0 {
				clo = &n.keys[i-1]
			} else {
				clo = lo
			}
			if i < len(n.keys) {
				chi = &n.keys[i]
			} else {
				chi = hi
			}
			if err := walk(ch, clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, nil, nil); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d but %d reachable entries", t.size, count)
	}
	// The leaf chain must link exactly the tree's leaves, in
	// left-to-right order, and terminate — a broken chain would make
	// range scans skip or repeat entries even when per-node ordering
	// holds.
	for i, lf := range leaves {
		var want *node
		if i+1 < len(leaves) {
			want = leaves[i+1]
		}
		if lf.next != want {
			return fmt.Errorf("btree: leaf chain broken after leaf %d of %d", i, len(leaves))
		}
	}
	return nil
}
