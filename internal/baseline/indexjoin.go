package baseline

import (
	"sort"

	"staircase/internal/btree"
	"staircase/internal/doc"
)

// Indexed structural join in the style of Chien et al. (VLDB 2002),
// the §5 related-work comparator that supports "ancestor or descendant
// step evaluation with skipping" through a B+-tree built over context
// and document. Unlike the staircase join it
//
//   - relies on index probes (root-to-leaf descents) instead of pure
//     sequential scans,
//   - does not prune the context, so nested context nodes re-visit
//     shared regions and produce duplicate output that a final
//     sort/unique pass must remove.
//
// Simplification vs the original: Chien et al. thread extra sibling
// pointers through a modified B+-tree; we use ordinary Seek operations
// on the (pre, post) index, which gives the same skipping behaviour
// with an O(log n) probe instead of a pointer chase. The index work is
// counted in the tree's Stats so experiments can compare probes and
// touched keys against the staircase join's counters.

// IndexJoinStats counts the work of the indexed structural join.
type IndexJoinStats struct {
	// Probes counts B-tree descents (seeks).
	Probes int64
	// Touched counts leaf entries inspected.
	Touched int64
	// Produced counts output nodes before duplicate elimination.
	Produced int64
	// Result counts distinct result nodes.
	Result int64
}

// IndexedDescendantJoin computes the distinct descendants of the
// context nodes by seeking into a (pre, post)-keyed B+-tree per context
// node and scanning its containment interval.
func IndexedDescendantJoin(d *doc.Document, tree *btree.Tree, context []int32, st *IndexJoinStats) []int32 {
	post := d.PostSlice()
	kind := d.KindSlice()
	var all []int32
	for _, c := range context {
		bound := post[c]
		if st != nil {
			st.Probes++
		}
		it := tree.Seek(btree.Key{A: c + 1, B: btree.MinKey.B})
		for ; it.Valid(); it.Next() {
			if st != nil {
				st.Touched++
			}
			k := it.Key()
			if k.B > bound {
				break // first following node: interval exhausted
			}
			v := it.Value()
			if kind[v] != doc.Attr {
				all = append(all, v)
			}
		}
	}
	if st != nil {
		st.Produced += int64(len(all))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out := make([]int32, 0, len(all))
	for i, v := range all {
		if i > 0 && v == all[i-1] {
			continue
		}
		out = append(out, v)
	}
	if st != nil {
		st.Result += int64(len(out))
	}
	return out
}

// IndexedAncestorJoin computes the distinct ancestors of the context
// nodes: per context node it walks the parent chain implied by the
// index — seeking, for each level, the last node with pre < current
// whose post exceeds the context's post. For simplicity (and because
// the parent column is how any real system would do it) we use the
// parent pointers but charge one index probe per ancestor, matching
// the probe pattern of the ancestor-list algorithms of [5].
func IndexedAncestorJoin(d *doc.Document, tree *btree.Tree, context []int32, st *IndexJoinStats) []int32 {
	var all []int32
	for _, c := range context {
		for p := d.Parent(c); p != doc.NoParent; p = d.Parent(p) {
			if st != nil {
				st.Probes++
				st.Touched++
			}
			all = append(all, p)
		}
	}
	if st != nil {
		st.Produced += int64(len(all))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out := make([]int32, 0, len(all))
	for i, v := range all {
		if i > 0 && v == all[i-1] {
			continue
		}
		out = append(out, v)
	}
	if st != nil {
		st.Result += int64(len(out))
	}
	_ = tree
	return out
}
