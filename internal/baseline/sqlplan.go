package baseline

import (
	"fmt"
	"sort"
	"sync/atomic"

	"staircase/internal/axis"
	"staircase/internal/btree"
	"staircase/internal/doc"
)

// SQLEngine evaluates axis steps the way the paper's analyzed IBM DB2
// plan does (Figure 3): a nested-loop join whose inner input is a
// B-tree index range scan, with the region predicates acting as scan
// delimiters, followed by duplicate elimination over pre-sorted output.
//
// Two indexes are kept, mirroring the paper:
//
//	prepost: concatenated (pre, post) keys          — the base index
//	tagged:  concatenated (tag, pre, post) keys     — the early name
//	         test index DB2 actually used (Experiment 3 note)
//
// The engine is "tree-unaware with a knob": SQLOptions.UseWindow adds
// the Equation (1) predicate of §2.1 (query line 7) that a tree-aware
// optimizer could derive, shrinking the descendant scan range from the
// document tail to the context subtree.
type SQLEngine struct {
	d       *doc.Document
	prepost *btree.Tree
	tagged  *btree.Tree
	// Stats accumulates index work across Step calls.
	Stats btree.Stats
	// JoinStats accumulates join-level work across Step calls.
	JoinStats SQLJoinStats
}

// SQLJoinStats counts plan-level work of the SQL baseline.
type SQLJoinStats struct {
	// Produced counts join output tuples before duplicate elimination.
	Produced int64
	// Duplicates counts tuples removed by the unique operator.
	Duplicates int64
	// Result counts distinct result nodes.
	Result int64
}

// SQLOptions configures one Step evaluation.
type SQLOptions struct {
	// UseWindow applies the Equation (1) window predicate (§2.1 line 7)
	// to delimit descendant index scans.
	UseWindow bool
	// Tag, when non-empty, evaluates the step with an early name test
	// over the (tag, pre, post) index: only nodes with this tag are
	// scanned and returned.
	Tag string
}

// NewSQLEngine builds both indexes over the document. Index build is
// the analogue of CREATE INDEX at document load time.
func NewSQLEngine(d *doc.Document) *SQLEngine {
	e := &SQLEngine{d: d}
	n := d.Size()
	post := d.PostSlice()

	keys := make([]btree.Key, n)
	vals := make([]int32, n)
	for i := 0; i < n; i++ {
		keys[i] = btree.Key{A: int32(i), B: post[i]}
		vals[i] = int32(i)
	}
	e.prepost = btree.BulkLoad(keys, vals, &e.Stats)

	// Tag index: (tag, pre, post), elements only, sorted by tag then pre.
	name := d.NameSlice()
	kind := d.KindSlice()
	type ent struct{ tag, pre, post int32 }
	var ents []ent
	for i := 0; i < n; i++ {
		if kind[i] == doc.Elem && name[i] != doc.NoName {
			ents = append(ents, ent{name[i], int32(i), post[i]})
		}
	}
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].tag != ents[j].tag {
			return ents[i].tag < ents[j].tag
		}
		return ents[i].pre < ents[j].pre
	})
	tkeys := make([]btree.Key, len(ents))
	tvals := make([]int32, len(ents))
	for i, en := range ents {
		tkeys[i] = btree.Key{A: en.tag, B: en.pre, C: en.post}
		tvals[i] = en.pre
	}
	e.tagged = btree.BulkLoad(tkeys, tvals, &e.Stats)
	return e
}

// Step evaluates one axis step for the whole context sequence: the
// outer loop iterates the pre-sorted context, the inner input is an
// index range scan per context node, results are concatenated, sorted
// and made distinct (the unique operator the paper's plan needs).
// Supported axes are the four partitioning axes.
func (e *SQLEngine) Step(a axis.Axis, context []int32, opts SQLOptions) ([]int32, error) {
	if !a.Partitioning() {
		return nil, fmt.Errorf("baseline: SQL plan handles partitioning axes only, got %v", a)
	}
	var all []int32
	for _, c := range context {
		w := axis.RegionWindow(e.d, a, c)
		if opts.UseWindow {
			w = axis.TightWindow(e.d, a, c)
		}
		if w.Empty() {
			continue
		}
		if opts.Tag != "" {
			tagID, ok := e.d.Names().Lookup(opts.Tag)
			if !ok {
				continue
			}
			lo := btree.Key{A: tagID, B: w.PreLo, C: -1 << 31}
			hi := btree.Key{A: tagID, B: w.PreHi, C: 1<<31 - 1}
			e.tagged.Scan(lo, hi, func(k btree.Key, v int32) bool {
				if k.C >= w.PostLo && k.C <= w.PostHi {
					all = append(all, v)
				}
				return true
			})
			continue
		}
		lo := btree.Key{A: w.PreLo, B: -1 << 31}
		hi := btree.Key{A: w.PreHi, B: 1<<31 - 1}
		kind := e.d.KindSlice()
		e.prepost.Scan(lo, hi, func(k btree.Key, v int32) bool {
			// The post predicate is "sufficiently simple to be
			// evaluated during the B-tree index scan" (§2.1).
			if k.B >= w.PostLo && k.B <= w.PostHi && kind[v] != doc.Attr {
				all = append(all, v)
			}
			return true
		})
	}
	// ORDER BY v.pre + DISTINCT: sort and unique.
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out := make([]int32, 0, len(all))
	for i, v := range all {
		if i > 0 && v == all[i-1] {
			continue
		}
		out = append(out, v)
	}
	atomic.AddInt64(&e.JoinStats.Produced, int64(len(all)))
	atomic.AddInt64(&e.JoinStats.Result, int64(len(out)))
	atomic.AddInt64(&e.JoinStats.Duplicates, int64(len(all)-len(out)))
	return out, nil
}

// Path evaluates a multi-step path of (axis, tag) steps starting from
// the given context, feeding each step's result into the next — the
// "series of n region queries" of §2.1. Name tests are evaluated early
// via the (tag, pre, post) index, matching the paper's DB2 observation.
// An empty tag means node().
func (e *SQLEngine) Path(context []int32, steps []SQLStep, opts SQLOptions) ([]int32, error) {
	cur := context
	for _, s := range steps {
		o := opts
		o.Tag = s.Tag
		var err error
		cur, err = e.Step(s.Axis, cur, o)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// SQLStep is one location step for SQLEngine.Path.
type SQLStep struct {
	Axis axis.Axis
	Tag  string // empty = node()
}
