package baseline

import (
	"math/rand"
	"testing"

	"staircase/internal/axis"
	"staircase/internal/btree"
	"staircase/internal/core"
	"staircase/internal/doc"
)

// prepostTree builds the (pre, post) index used by the indexed joins.
func prepostTree(d *doc.Document) *btree.Tree {
	n := d.Size()
	post := d.PostSlice()
	keys := make([]btree.Key, n)
	vals := make([]int32, n)
	for i := 0; i < n; i++ {
		keys[i] = btree.Key{A: int32(i), B: post[i]}
		vals[i] = int32(i)
	}
	return btree.BulkLoad(keys, vals, nil)
}

func TestIndexedJoinsMatchSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		d := randomDoc(rng, 250)
		tree := prepostTree(d)
		context := randomContext(rng, d, 1+rng.Intn(15))
		gotD := IndexedDescendantJoin(d, tree, context, nil)
		wantD := specJoin(d, axis.Descendant, context)
		if !eq32(gotD, wantD) {
			t.Fatalf("trial %d descendant: got %v want %v", trial, gotD, wantD)
		}
		gotA := IndexedAncestorJoin(d, tree, context, nil)
		wantA := specJoin(d, axis.Ancestor, context)
		if !eq32(gotA, wantA) {
			t.Fatalf("trial %d ancestor: got %v want %v", trial, gotA, wantA)
		}
	}
}

func TestIndexedJoinStatsAndDuplicates(t *testing.T) {
	d := figure1(t)
	tree := prepostTree(d)
	// Nested context (a contains e contains f): the un-pruned indexed
	// join re-visits shared regions and produces duplicates.
	context := []int32{0, 4, 5}
	var st IndexJoinStats
	res := IndexedDescendantJoin(d, tree, context, &st)
	if st.Produced <= st.Result {
		t.Fatalf("nested context should produce duplicates: %+v", st)
	}
	if st.Probes != 3 {
		t.Fatalf("probes = %d, want one per context node", st.Probes)
	}
	if int64(len(res)) != st.Result {
		t.Fatalf("result accounting: %d vs %d", len(res), st.Result)
	}
}

// TestIndexedJoinTouchesMoreThanStaircase pins the §5 ordering: the
// staircase join touches fewer nodes than the per-context indexed join
// on nested contexts (pruning removes the covered context nodes).
func TestIndexedJoinTouchesMoreThanStaircase(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	d := randomDoc(rng, 3000)
	tree := prepostTree(d)
	// Build a deliberately nested context: a root-to-leaf chain.
	var context []int32
	v := int32(0)
	for {
		context = append(context, v)
		kids := d.Children(v)
		if len(kids) == 0 {
			break
		}
		v = kids[0]
	}
	var is IndexJoinStats
	IndexedDescendantJoin(d, tree, context, &is)
	var ss core.Stats
	core.DescendantJoin(d, context, &core.Options{Variant: core.Skip, Stats: &ss, KeepAttributes: true})
	if ss.Scanned >= is.Touched {
		t.Fatalf("staircase scanned %d >= indexed join touched %d", ss.Scanned, is.Touched)
	}
}
