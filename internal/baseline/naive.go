// Package baseline implements the tree-unaware comparators the staircase
// join is evaluated against in the paper:
//
//   - Naive per-context-node region queries with subsequent sort and
//     duplicate elimination (Experiment 1, Figure 11 (a)): the context
//     regions overlap, so the same node is produced many times.
//   - The SQL query plan of Figure 3 — a B-tree indexed nested-loop
//     (semi)join with range-delimited index scans, optionally tightened
//     by the Equation (1) window predicate (§2.1, query line 7) and
//     optionally using concatenated (tag, pre, post) keys for the early
//     name test the paper observed in IBM DB2 (Experiment 3).
//   - MPMGJN, the multi-predicate merge join of Zhang et al. (SIGMOD
//     2001), the closest related structural join (§5): interval
//     containment aware, but without pruning and skipping.
package baseline

import (
	"sort"

	"staircase/internal/axis"
	"staircase/internal/doc"
)

// NaiveStats counts the work of the naive evaluation strategy.
type NaiveStats struct {
	// Produced is the total number of result nodes across all
	// per-context region queries, duplicates included.
	Produced int64
	// Duplicates is Produced minus the distinct result size — the
	// nodes the staircase join never generates (Figure 11 (a)).
	Duplicates int64
	// Scanned counts document nodes touched by the region scans.
	Scanned int64
	// Result is the distinct result size.
	Result int64
}

// NaiveJoin evaluates an axis step the naive way: one region query per
// context node, concatenation, sort, duplicate elimination. The result
// equals the staircase join result; the cost does not. Attribute nodes
// are filtered as in the paper.
func NaiveJoin(d *doc.Document, a axis.Axis, context []int32, st *NaiveStats) []int32 {
	post := d.PostSlice()
	kind := d.KindSlice()
	var all []int32
	for _, c := range context {
		w := axis.RegionWindow(d, a, c)
		if w.Empty() {
			continue
		}
		lo, hi := w.PreLo, w.PreHi
		if lo < 0 {
			lo = 0
		}
		if n := int32(d.Size()); hi >= n {
			hi = n - 1
		}
		for v := lo; v <= hi; v++ {
			if st != nil {
				st.Scanned++
			}
			if post[v] < w.PostLo || post[v] > w.PostHi {
				continue
			}
			if kind[v] == doc.Attr {
				continue
			}
			all = append(all, v)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out := all[:0]
	for i, v := range all {
		if i > 0 && v == all[i-1] {
			continue
		}
		out = append(out, v)
	}
	// Copy to release the (possibly much larger) backing array.
	res := append([]int32(nil), out...)
	if st != nil {
		st.Produced += int64(len(all))
		st.Result += int64(len(res))
		st.Duplicates += int64(len(all)) - int64(len(res))
	}
	return res
}
