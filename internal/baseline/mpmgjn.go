package baseline

import (
	"sort"

	"staircase/internal/doc"
)

// MPMGJNStats counts the work of the multi-predicate merge join.
type MPMGJNStats struct {
	// Touched counts list entries inspected, including the re-scans of
	// the inner list that staircase join avoids (§5: MPMGJN "lacks
	// further tree awareness: due to pruning and skipping, staircase
	// join touches and tests less nodes").
	Touched int64
	// Produced counts output pairs before duplicate elimination.
	Produced int64
	// Result counts distinct result nodes.
	Result int64
}

// MPMGJNDescendant computes the distinct descendants of any context
// node with the multi-predicate merge join of Zhang et al. (SIGMOD
// 2001). The ancestor list is the context, the descendant list is the
// document in pre order; interval containment is tested on (pre, post).
//
// The algorithm merges both pre-sorted lists but, unlike the staircase
// join, restarts the inner cursor for every ancestor that overlaps the
// previous one's interval (nested context nodes), and it produces one
// pair per (ancestor, descendant) match, so duplicate elimination is
// still required for XPath node-sequence semantics.
func MPMGJNDescendant(d *doc.Document, context []int32, st *MPMGJNStats) []int32 {
	post := d.PostSlice()
	kind := d.KindSlice()
	n := int32(d.Size())
	var all []int32

	di := int32(0) // outer merge cursor over the document list
	for ai := 0; ai < len(context); ai++ {
		a := context[ai]
		aEnd := post[a]
		// Advance the outer cursor to the first potential match of a.
		for di < n && di <= a {
			di++
			if st != nil {
				st.Touched++
			}
		}
		// Inner scan from the merge cursor: all nodes with pre > pre(a)
		// whose post < post(a). A following node ends the containment
		// interval — but unlike staircase skipping, MPMGJN re-derives
		// this per ancestor and re-scans shared regions for nested
		// ancestors (the cursor is *not* advanced past them globally).
		for dj := di; dj < n; dj++ {
			if st != nil {
				st.Touched++
			}
			if post[dj] > aEnd {
				break
			}
			if kind[dj] != doc.Attr {
				all = append(all, dj)
			}
		}
	}
	if st != nil {
		st.Produced += int64(len(all))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out := make([]int32, 0, len(all))
	for i, v := range all {
		if i > 0 && v == all[i-1] {
			continue
		}
		out = append(out, v)
	}
	if st != nil {
		st.Result += int64(len(out))
	}
	return out
}

// MPMGJNAncestor computes the distinct ancestors of any context node
// with the merge-join strategy: the document list provides potential
// ancestors in pre order, the context provides the descendants. For
// each potential ancestor the context is scanned from the current merge
// position for a contained node (the multi-predicate check).
func MPMGJNAncestor(d *doc.Document, context []int32, st *MPMGJNStats) []int32 {
	post := d.PostSlice()
	kind := d.KindSlice()
	n := int32(d.Size())
	var out []int32

	ci := 0 // merge cursor over the context list
	for a := int32(0); a < n; a++ {
		if st != nil {
			st.Touched++
		}
		if kind[a] == doc.Attr {
			continue
		}
		aEnd := post[a]
		// Advance the context cursor past nodes that precede a.
		for ci < len(context) && context[ci] <= a {
			// context[ci] == a cannot be its own ancestor; nodes with
			// pre <= pre(a) can never be contained in a's interval.
			ci++
			if st != nil {
				st.Touched++
			}
		}
		// Scan the context from the merge position for a witness
		// contained in a's interval; stop once beyond the interval.
		for cj := ci; cj < len(context); cj++ {
			if st != nil {
				st.Touched++
			}
			c := context[cj]
			if c > a+d.SubtreeSize(a) { // past a's subtree window
				break
			}
			if post[c] < aEnd {
				out = append(out, a)
				break
			}
		}
	}
	if st != nil {
		st.Produced += int64(len(out))
		st.Result += int64(len(out))
	}
	return out
}
