package baseline

import (
	"math/rand"
	"sort"
	"testing"

	"staircase/internal/axis"
	"staircase/internal/core"
	"staircase/internal/doc"
)

func figure1(t testing.TB) *doc.Document {
	t.Helper()
	d, err := doc.ShredString(`<a><b><c/></b><d/><e><f><g/><h/></f><i><j/></i></e></a>`)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func eq32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func specJoin(d *doc.Document, a axis.Axis, context []int32) []int32 {
	var out []int32
	for v := int32(0); int(v) < d.Size(); v++ {
		for _, c := range context {
			if axis.In(d, a, c, v) {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

func randomDoc(rng *rand.Rand, n int) *doc.Document {
	b := doc.NewBuilder()
	b.OpenElem("root")
	depth := 1
	tags := []string{"p", "q", "r"}
	for i := 0; i < n; i++ {
		switch r := rng.Intn(10); {
		case r < 5:
			b.OpenElem(tags[rng.Intn(len(tags))])
			if rng.Intn(4) == 0 {
				b.Attr("k", "v")
			}
			depth++
		case r < 7 && depth > 1:
			b.CloseElem()
			depth--
		default:
			b.Text("t")
		}
	}
	for depth > 0 {
		b.CloseElem()
		depth--
	}
	d, err := b.Done()
	if err != nil {
		panic(err)
	}
	return d
}

func randomContext(rng *rand.Rand, d *doc.Document, k int) []int32 {
	seen := map[int32]bool{}
	for len(seen) < k && len(seen) < d.Size() {
		seen[int32(rng.Intn(d.Size()))] = true
	}
	out := make([]int32, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestNaiveJoinMatchesSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		d := randomDoc(rng, 200)
		context := randomContext(rng, d, 1+rng.Intn(15))
		for _, a := range []axis.Axis{axis.Descendant, axis.Ancestor, axis.Following, axis.Preceding} {
			got := NaiveJoin(d, a, context, nil)
			want := specJoin(d, a, context)
			if !eq32(got, want) {
				t.Fatalf("trial %d axis %v: got %v want %v", trial, a, got, want)
			}
		}
	}
}

func TestNaiveDuplicateCounting(t *testing.T) {
	d := figure1(t)
	// Paper Figure 4: ancestor step over (d,e,f,h,i,j) produces 11
	// ancestor-path nodes of which the distinct result has... the
	// ancestor (not -or-self) result is (a,b?,e,f,i?) — compute both
	// sides from the spec instead of hardcoding, then check the
	// counters are consistent.
	context := []int32{3, 4, 5, 7, 8, 9}
	var st NaiveStats
	res := NaiveJoin(d, axis.Ancestor, context, &st)
	if st.Result != int64(len(res)) {
		t.Fatalf("Result counter %d != len %d", st.Result, len(res))
	}
	if st.Produced-st.Duplicates != st.Result {
		t.Fatalf("counter identity violated: %+v", st)
	}
	if st.Duplicates == 0 {
		t.Fatal("overlapping ancestor paths must produce duplicates")
	}
	// Counters accumulate across calls without corruption.
	prev := st
	NaiveJoin(d, axis.Ancestor, context, &st)
	if st.Produced != 2*prev.Produced || st.Duplicates != 2*prev.Duplicates {
		t.Fatalf("accumulation broken: %+v after %+v", st, prev)
	}
}

func TestNaiveDuplicateRatioFigure4(t *testing.T) {
	// The ancestor-or-self evaluation of Figure 4 (a): context
	// (d,e,f,h,i,j): the plain-ancestor paths are d:(a), e:(a),
	// f:(a,e), h:(a,e,f), i:(a,e), j:(a,e,i) = 12 produced, distinct
	// (a,e,f,i) = 4, so 8 duplicates are generated and removed.
	d := figure1(t)
	var st NaiveStats
	res := NaiveJoin(d, axis.Ancestor, []int32{3, 4, 5, 7, 8, 9}, &st)
	if st.Produced != 12 {
		t.Fatalf("Produced = %d, want 12", st.Produced)
	}
	if len(res) != 4 {
		t.Fatalf("distinct = %d, want 4", len(res))
	}
	if st.Duplicates != 8 {
		t.Fatalf("Duplicates = %d, want 8", st.Duplicates)
	}
}

func TestSQLEngineMatchesSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 15; trial++ {
		d := randomDoc(rng, 250)
		e := NewSQLEngine(d)
		context := randomContext(rng, d, 1+rng.Intn(10))
		for _, a := range []axis.Axis{axis.Descendant, axis.Ancestor, axis.Following, axis.Preceding} {
			for _, useWindow := range []bool{false, true} {
				got, err := e.Step(a, context, SQLOptions{UseWindow: useWindow})
				if err != nil {
					t.Fatal(err)
				}
				want := specJoin(d, a, context)
				if !eq32(got, want) {
					t.Fatalf("trial %d axis %v window=%v: got %v want %v", trial, a, useWindow, got, want)
				}
			}
		}
	}
}

func TestSQLEngineTagIndexMatchesSpecPlusNameTest(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 15; trial++ {
		d := randomDoc(rng, 250)
		e := NewSQLEngine(d)
		context := randomContext(rng, d, 1+rng.Intn(10))
		for _, a := range []axis.Axis{axis.Descendant, axis.Ancestor} {
			got, err := e.Step(a, context, SQLOptions{Tag: "q"})
			if err != nil {
				t.Fatal(err)
			}
			var want []int32
			for _, v := range specJoin(d, a, context) {
				if d.Name(v) == "q" && d.KindOf(v) == doc.Elem {
					want = append(want, v)
				}
			}
			if !eq32(got, want) {
				t.Fatalf("trial %d axis %v: got %v want %v", trial, a, got, want)
			}
		}
	}
}

func TestSQLEngineUnknownTagEmpty(t *testing.T) {
	d := figure1(t)
	e := NewSQLEngine(d)
	got, err := e.Step(axis.Descendant, []int32{0}, SQLOptions{Tag: "nosuch"})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestSQLEngineRejectsNonPartitioningAxis(t *testing.T) {
	d := figure1(t)
	e := NewSQLEngine(d)
	if _, err := e.Step(axis.Child, []int32{0}, SQLOptions{}); err == nil {
		t.Fatal("expected error")
	}
}

// TestSQLWindowReducesKeysScanned verifies the §2.1 claim: the
// Equation (1) window delimits the descendant index scan, sharply
// reducing the keys touched for small subtrees.
func TestSQLWindowReducesKeysScanned(t *testing.T) {
	// The window tightens the scan to ~subtree size + h, so it only
	// bites when h is small relative to the document — as in real XML
	// (paper: h ≈ 10). Build a shallow, wide document.
	b := doc.NewBuilder()
	b.OpenElem("root")
	for i := 0; i < 1000; i++ {
		b.OpenElem("branch")
		b.OpenElem("leafy")
		b.Text("t")
		b.CloseElem()
		b.OpenElem("leafy")
		b.Text("t")
		b.CloseElem()
		b.CloseElem()
	}
	b.CloseElem()
	d, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	// Pick a context node with a small subtree, not near the end.
	var c int32 = -1
	for v := int32(100); int(v) < d.Size()/2; v++ {
		if s := d.SubtreeSize(v); s > 0 && s < 10 {
			c = v
			break
		}
	}
	if c < 0 {
		t.Skip("no suitable context node found")
	}
	e := NewSQLEngine(d)
	e.Stats.Reset()
	if _, err := e.Step(axis.Descendant, []int32{c}, SQLOptions{}); err != nil {
		t.Fatal(err)
	}
	without := e.Stats.KeysScanned
	e.Stats.Reset()
	if _, err := e.Step(axis.Descendant, []int32{c}, SQLOptions{UseWindow: true}); err != nil {
		t.Fatal(err)
	}
	with := e.Stats.KeysScanned
	if with*10 > without {
		t.Fatalf("window did not delimit scan: %d keys with window vs %d without", with, without)
	}
}

func TestSQLPath(t *testing.T) {
	d := figure1(t)
	e := NewSQLEngine(d)
	// (c)/following::node()/descendant::node() = (f,g,h,i,j) — §2.1.
	got, err := e.Path([]int32{2}, []SQLStep{
		{Axis: axis.Following},
		{Axis: axis.Descendant},
	}, SQLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !eq32(got, []int32{5, 6, 7, 8, 9}) {
		t.Fatalf("path = %v, want [5..9]", got)
	}
}

func TestMPMGJNMatchesSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		d := randomDoc(rng, 220)
		context := randomContext(rng, d, 1+rng.Intn(15))
		gotD := MPMGJNDescendant(d, context, nil)
		wantD := specJoin(d, axis.Descendant, context)
		if !eq32(gotD, wantD) {
			t.Fatalf("trial %d descendant: got %v want %v", trial, gotD, wantD)
		}
		gotA := MPMGJNAncestor(d, context, nil)
		wantA := specJoin(d, axis.Ancestor, context)
		if !eq32(gotA, wantA) {
			t.Fatalf("trial %d ancestor: got %v want %v", trial, gotA, wantA)
		}
	}
}

// TestMPMGJNTouchesMoreThanStaircase pins the §5 claim: staircase join
// touches and tests fewer nodes than MPMGJN on nested contexts.
func TestMPMGJNTouchesMoreThanStaircase(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	d := randomDoc(rng, 3000)
	// A nested context: a chain of ancestors plus scattered nodes.
	var context []int32
	v := int32(0)
	for {
		kids := d.Children(v)
		if len(kids) == 0 {
			break
		}
		context = append(context, v)
		v = kids[len(kids)/2]
	}
	context = append(context, randomContext(rng, d, 10)...)
	sort.Slice(context, func(i, j int) bool { return context[i] < context[j] })
	// Deduplicate.
	dedup := context[:0]
	for i, c := range context {
		if i > 0 && c == context[i-1] {
			continue
		}
		dedup = append(dedup, c)
	}
	context = dedup

	var ms MPMGJNStats
	MPMGJNDescendant(d, context, &ms)
	var ss core.Stats
	core.DescendantJoin(d, context, &core.Options{Variant: core.Skip, Stats: &ss})
	if ss.Scanned >= ms.Touched {
		t.Fatalf("staircase scanned %d, MPMGJN touched %d — expected staircase < MPMGJN",
			ss.Scanned, ms.Touched)
	}
	if ms.Produced < ms.Result {
		t.Fatalf("MPMGJN produced %d < distinct %d", ms.Produced, ms.Result)
	}
}
