package fault

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// reset arms the spec for the test and disarms on cleanup, so fault
// state never leaks across tests in the package.
func reset(t *testing.T, spec string) {
	t.Helper()
	if err := Configure(spec); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(Reset)
}

func TestDisarmedIsNoop(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("enabled after Reset")
	}
	for i := 0; i < 1000; i++ {
		if err := Hit("cursor.next"); err != nil {
			t.Fatalf("disarmed Hit returned %v", err)
		}
	}
}

func TestEveryNthDeterministic(t *testing.T) {
	reset(t, "p:error:n=3")
	var errs []int
	for i := 1; i <= 9; i++ {
		if err := Hit("p"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error does not wrap ErrInjected: %v", err)
			}
			errs = append(errs, i)
		}
	}
	if fmt.Sprint(errs) != "[3 6 9]" {
		t.Fatalf("every-3rd fired at %v, want [3 6 9]", errs)
	}
	if Fired("p") != 3 {
		t.Fatalf("Fired = %d, want 3", Fired("p"))
	}
}

func TestProbabilityReproducible(t *testing.T) {
	run := func() []int {
		if err := Configure("p:error:p=0.5;seed=7"); err != nil {
			t.Fatal(err)
		}
		var fired []int
		for i := 0; i < 32; i++ {
			if Hit("p") != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(), run()
	Reset()
	if len(a) == 0 || len(a) == 32 {
		t.Fatalf("p=0.5 over 32 hits fired %d times", len(a))
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
}

func TestPanicMode(t *testing.T) {
	reset(t, "p:panic:n=1")
	err := func() (err error) {
		defer func() {
			if v := recover(); v != nil {
				err = NewPanicError(v)
			}
		}()
		return Hit("p")
	}()
	if !IsPanic(err) {
		t.Fatalf("want recovered panic, got %v", err)
	}
	if !IsInjectedPanic(err) {
		t.Fatalf("injected panic not recognised: %v", err)
	}
	if IsInjectedPanic(errors.New("x")) {
		t.Fatal("organic error classified as injected panic")
	}
	// Re-wrapping a contained panic at a second boundary must not
	// recount it.
	before := Recovered()
	if NewPanicError(err.(*PanicError)) != err.(*PanicError) {
		t.Fatal("NewPanicError did not pass through an existing PanicError")
	}
	if Recovered() != before {
		t.Fatal("pass-through recounted the panic")
	}
}

func TestDelayMode(t *testing.T) {
	reset(t, "p:delay:d=30ms:n=1")
	start := time.Now()
	if err := Hit("p"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("delay injected only %v", d)
	}
	// A cancelled ctx cuts the injected stall short.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start = time.Now()
	if err := HitCtx(ctx, "p"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("cancelled ctx still stalled %v", d)
	}
}

func TestCtxTags(t *testing.T) {
	reset(t, "p:error:n=1:tag=stream")
	if err := Hit("p"); err != nil {
		t.Fatalf("untagged hit fired tagged rule: %v", err)
	}
	if err := HitCtx(context.Background(), "p"); err != nil {
		t.Fatalf("untagged ctx fired tagged rule: %v", err)
	}
	ctx := WithTag(context.Background(), "query")
	if err := HitCtx(ctx, "p"); err != nil {
		t.Fatalf("wrong tag fired rule: %v", err)
	}
	ctx = WithTag(ctx, "stream") // stamps nest
	if err := HitCtx(ctx, "p"); err == nil {
		t.Fatal("tagged hit did not fire")
	}
}

func TestSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"p",                  // no mode
		"p:explode",          // unknown mode
		":error",             // empty point
		"p:error:p=2",        // probability out of range
		"p:error:n=0",        // bad every-N
		"p:delay",            // delay without duration
		"p:error:wat",        // option without value
		"p:error:q=1",        // unknown option
		"seed=x",             // bad seed
		"p:error:n=1;q:bang", // error in later item
	} {
		if err := Configure(spec); err == nil {
			Reset()
			t.Fatalf("spec %q accepted", spec)
		}
	}
	if err := Configure(""); err != nil || Enabled() {
		t.Fatalf("empty spec: err=%v enabled=%v", err, Enabled())
	}
}
