// Package fault is the deterministic fault-injection harness behind
// the chaos suite: named injection points compiled into the server
// stack that stay no-ops in production (one atomic load) and, when
// armed, inject errors, panics, or delays under a reproducible
// trigger discipline.
//
// A point is a string name at a failure-relevant seam — the stack
// registers these today:
//
//	catalog.load    before a catalog entry loads its document
//	doc.index.read  before a SCJ2 tag/kind index section is parsed
//	doc.vindex.read before a SCJ2 value-index section is parsed
//	cursor.next     on every public plan-cursor batch pull
//	pool.acquire    on every worker-semaphore admission
//	share.drive     before the pace car pulls a batch for its flight
//
// Rules bind actions to points. A rule fires on every Nth hit of its
// point (deterministic, the chaos suite's workhorse), with a given
// probability per hit (seeded PRNG, reproducible for a fixed seed and
// hit order), or both (either trigger fires it). A rule may carry a
// ctx tag: it then fires only for hits whose context was stamped with
// WithTag — targeting one request class without touching the rest of
// the traffic.
//
// Configuration is a spec string — from the STAIRCASE_FAULTS
// environment variable at startup, or Configure in tests:
//
//	point:mode[:p=F][:n=N][:d=DUR][:tag=T][;more...]
//
// where mode is error, panic, or delay. Examples:
//
//	cursor.next:error:p=0.05            5% of batch pulls error
//	catalog.load:panic:n=7              every 7th load panics
//	pool.acquire:delay:d=2ms:p=0.5      half the admissions stall 2ms
//	cursor.next:error:n=13:tag=stream   every 13th *stream* pull errors
//	seed=42                             PRNG seed (default 1)
//
// Injected errors wrap ErrInjected; injected panics carry a
// *PanicError-convertible value recognisable by IsInjectedPanic. The
// package also owns PanicError — the error a recovered panic is
// reported as throughout the stack — and the process-wide
// recovered-panic counter behind the server's
// panics_recovered_total metric, so every containment boundary
// (evalOne, stream loops, pace-car drive, morsel workers) counts
// through one place.
package fault

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is wrapped by every injected error, so tests and
// operators can tell injected failures from organic ones with
// errors.Is.
var ErrInjected = errors.New("injected fault")

// Mode is the action a rule takes when it fires.
type Mode uint8

const (
	// ModeError makes the point return an error wrapping ErrInjected.
	ModeError Mode = iota
	// ModePanic makes the point panic (the containment boundaries are
	// expected to recover it into a *PanicError).
	ModePanic
	// ModeDelay makes the point sleep for the rule's duration, then
	// continue normally — the slow-disk / scheduler-stall simulator.
	ModeDelay
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeDelay:
		return "delay"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// rule is one armed action at one point.
type rule struct {
	point  string
	mode   Mode
	prob   float64       // fire with this probability per hit (0 = off)
	everyN int64         // fire on every Nth hit (0 = off)
	delay  time.Duration // ModeDelay sleep
	tag    string        // only fire for contexts stamped WithTag(tag)

	hits  atomic.Int64
	fired atomic.Int64
}

// registry is the armed configuration. All of it swaps atomically
// under mu on Configure/Reset; Hit reads under mu only after the
// lock-free armed check.
var (
	armed atomic.Bool

	mu    sync.Mutex
	rules map[string][]*rule
	rng   *rand.Rand

	injected  atomic.Int64
	recovered atomic.Int64
)

func init() {
	if spec := os.Getenv("STAIRCASE_FAULTS"); spec != "" {
		if err := Configure(spec); err != nil {
			// A bad spec must not silently run a fault-free "chaos" job.
			panic(fmt.Sprintf("fault: bad STAIRCASE_FAULTS: %v", err))
		}
	}
}

// Configure replaces the armed rule set from a spec string (see the
// package comment for the grammar). An empty spec disarms everything,
// like Reset.
func Configure(spec string) error {
	newRules := make(map[string][]*rule)
	seed := int64(1)
	for _, item := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == '\n' }) {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if v, ok := strings.CutPrefix(item, "seed="); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return fmt.Errorf("fault: bad seed %q", v)
			}
			seed = n
			continue
		}
		r, err := parseRule(item)
		if err != nil {
			return err
		}
		newRules[r.point] = append(newRules[r.point], r)
	}
	mu.Lock()
	rules = newRules
	rng = rand.New(rand.NewSource(seed))
	mu.Unlock()
	armed.Store(len(newRules) > 0)
	return nil
}

// parseRule parses one point:mode[:opt...] item.
func parseRule(item string) (*rule, error) {
	parts := strings.Split(item, ":")
	if len(parts) < 2 {
		return nil, fmt.Errorf("fault: want point:mode[:opts], got %q", item)
	}
	r := &rule{point: parts[0]}
	switch parts[1] {
	case "error":
		r.mode = ModeError
	case "panic":
		r.mode = ModePanic
	case "delay":
		r.mode = ModeDelay
	default:
		return nil, fmt.Errorf("fault: unknown mode %q in %q", parts[1], item)
	}
	if r.point == "" {
		return nil, fmt.Errorf("fault: empty point name in %q", item)
	}
	for _, opt := range parts[2:] {
		k, v, ok := strings.Cut(opt, "=")
		if !ok {
			return nil, fmt.Errorf("fault: want key=value, got %q in %q", opt, item)
		}
		switch k {
		case "p":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("fault: bad probability %q in %q", v, item)
			}
			r.prob = p
		case "n":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("fault: bad every-N %q in %q", v, item)
			}
			r.everyN = n
		case "d":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("fault: bad delay %q in %q", v, item)
			}
			r.delay = d
		case "tag":
			r.tag = v
		default:
			return nil, fmt.Errorf("fault: unknown option %q in %q", k, item)
		}
	}
	if r.prob == 0 && r.everyN == 0 {
		r.everyN = 1 // a bare rule fires on every hit
	}
	if r.mode == ModeDelay && r.delay == 0 {
		return nil, fmt.Errorf("fault: delay rule without d= in %q", item)
	}
	return r, nil
}

// Reset disarms every rule and zeroes nothing — lifetime counters
// survive so tests can assert over windows.
func Reset() {
	mu.Lock()
	rules = nil
	rng = nil
	mu.Unlock()
	armed.Store(false)
}

// Enabled reports whether any rule is armed. The disabled fast path of
// Hit is exactly this one atomic load.
func Enabled() bool { return armed.Load() }

// InjectedTotal reports the lifetime count of fired rules (all points,
// all modes).
func InjectedTotal() int64 { return injected.Load() }

// tagKey carries WithTag stamps through a context.
type tagKey struct{}

// WithTag stamps ctx so rules carrying tag=T fire for hits under it.
// Multiple stamps nest; a hit matches a tagged rule when any stamp on
// the chain equals the rule's tag. While the package is disarmed the
// stamp is skipped entirely (no per-request allocation on the
// production path) — arm before the requests you want to tag.
func WithTag(ctx context.Context, tag string) context.Context {
	if !armed.Load() {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	tags, _ := ctx.Value(tagKey{}).([]string)
	return context.WithValue(ctx, tagKey{}, append(tags[:len(tags):len(tags)], tag))
}

// hasTag reports whether ctx carries the tag.
func hasTag(ctx context.Context, tag string) bool {
	if ctx == nil {
		return false
	}
	tags, _ := ctx.Value(tagKey{}).([]string)
	for _, t := range tags {
		if t == tag {
			return true
		}
	}
	return false
}

// Hit evaluates the point with no context: tagged rules never fire.
// It returns an injected error, panics, or sleeps per the first armed
// rule that triggers; nil means "carry on". When the package is
// disarmed this is a single atomic load.
func Hit(point string) error { return HitCtx(nil, point) }

// HitCtx evaluates the point for a request context (nil behaves like
// Hit). See Hit.
func HitCtx(ctx context.Context, point string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	rs := rules[point]
	var act *rule
	for _, r := range rs {
		if r.tag != "" && !hasTag(ctx, r.tag) {
			continue
		}
		hits := r.hits.Add(1)
		fire := r.everyN > 0 && hits%r.everyN == 0
		if !fire && r.prob > 0 && rng.Float64() < r.prob {
			fire = true
		}
		if fire {
			act = r
			break
		}
	}
	mu.Unlock()
	if act == nil {
		return nil
	}
	act.fired.Add(1)
	injected.Add(1)
	switch act.mode {
	case ModePanic:
		panic(&injectedPanic{point: point})
	case ModeDelay:
		sleepCtx(ctx, act.delay)
		return nil
	default:
		return fmt.Errorf("fault: %s: %w", point, ErrInjected)
	}
}

// sleepCtx sleeps for d but returns early when ctx is cancelled — an
// injected delay must not outlive the request it is stalling.
func sleepCtx(ctx context.Context, d time.Duration) {
	if ctx == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// injectedPanic is the value an armed ModePanic rule panics with.
type injectedPanic struct{ point string }

func (p *injectedPanic) String() string {
	return fmt.Sprintf("fault: injected panic at %s", p.point)
}

// PanicError is the error a recovered panic is reported as: every
// containment boundary in the stack (request evaluation, stream
// loops, the pace-car drive, morsel workers) converts panics to this
// type via NewPanicError, so callers can both classify them
// (errors.As / IsPanic) and read the captured stack.
type PanicError struct {
	// Val is the recovered panic value.
	Val any
	// Stack is the goroutine stack captured at the recovery site.
	Stack []byte
}

// Error summarises the panic; the stack is available on the field for
// logging.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v [recovered]", e.Val)
}

// NewPanicError wraps a recovered panic value, capturing the current
// stack and counting it in Recovered. Call it inside the deferred
// recover so the stack is the panicking goroutine's. Passing an
// existing *PanicError (a contained panic crossing a second boundary)
// returns it unchanged without recounting.
func NewPanicError(v any) *PanicError {
	if pe, ok := v.(*PanicError); ok {
		return pe
	}
	recovered.Add(1)
	return &PanicError{Val: v, Stack: debug.Stack()}
}

// IsPanic reports whether err carries a recovered panic.
func IsPanic(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}

// IsInjectedPanic reports whether err is a recovered panic that this
// package injected (as opposed to an organic bug) — the chaos suite's
// way to tell expected chaos from real breakage.
func IsInjectedPanic(err error) bool {
	var pe *PanicError
	if !errors.As(err, &pe) {
		return false
	}
	_, ok := pe.Val.(*injectedPanic)
	return ok
}

// Recovered reports the lifetime count of panics converted to
// *PanicError across every containment boundary — the
// panics_recovered_total metric.
func Recovered() int64 { return recovered.Load() }

// Fired reports how many times rules on the named point have fired
// (tests).
func Fired(point string) int64 {
	mu.Lock()
	defer mu.Unlock()
	var n int64
	for _, r := range rules[point] {
		n += r.fired.Load()
	}
	return n
}
