// Differential tests for the value index: every value predicate must
// produce byte-identical results whether it is served from B-tree
// fragments (the value-semijoin rewrite), re-evaluated per node with
// the index disabled (Options.NoValueIndex), or run through the
// legacy evaluator. Streaming (cursor drain, EvalLimit prefixes) is
// checked against batch execution on every knob combination, and the
// whole suite spawns one goroutine per query so `go test -race`
// exercises concurrent plan execution against the lazily built index.
package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"staircase/internal/doc"
)

// valueTexts is the pool of text/attribute values for random
// documents. It deliberately mixes clean integers, decimals,
// whitespace-padded numerics, negatives, scientific notation,
// non-numeric words, multi-word strings, and a value longer than
// vindex.MaxKeyLen (320 bytes) so lookups have to consult the
// overflow list.
var valueTexts = []string{
	"5", "10", "10.5", "100", " 42 ", "-3.25", "1e2", "0",
	"alpha", "beta", "caesar", "brutus and caesar", "t", "Zulu",
	strings.Repeat("long", 80),
}

// randomValueDoc is like randomDoc but with varied text and attribute
// values, so comparison predicates and contains() partition the node
// set non-trivially.
func randomValueDoc(rng *rand.Rand, n int) *doc.Document {
	b := doc.NewBuilder()
	b.OpenElem("root")
	depth := 1
	tags := []string{"item", "price", "name", "val"}
	for i := 0; i < n; i++ {
		switch r := rng.Intn(10); {
		case r < 4:
			b.OpenElem(tags[rng.Intn(len(tags))])
			if rng.Intn(3) == 0 {
				b.Attr("price", valueTexts[rng.Intn(len(valueTexts))])
			}
			if rng.Intn(4) == 0 {
				b.Attr("cat", valueTexts[rng.Intn(len(valueTexts))])
			}
			depth++
		case r < 6 && depth > 1:
			b.CloseElem()
			depth--
		default:
			b.Text(valueTexts[rng.Intn(len(valueTexts))])
		}
	}
	for depth > 0 {
		b.CloseElem()
		depth--
	}
	d, err := b.Done()
	if err != nil {
		panic(err)
	}
	return d
}

// randValuePred builds a random value predicate. It covers every
// comparison operator (including != which is never index-served),
// contains(), numeric and string literals, and both rewrite-eligible
// paths (self, child, attribute, descendant) and ineligible ones
// (ancestor, following-sibling, multi-step) so the per-node fallback
// is exercised alongside the fragment probes.
func randValuePred(rng *rand.Rand) string {
	path := "."
	if rng.Intn(4) != 0 {
		axes := []string{
			"attribute", "child", "self",
			"descendant", "descendant-or-self",
			"ancestor", "following-sibling",
		}
		a := axes[rng.Intn(len(axes))]
		var test string
		switch rng.Intn(6) {
		case 0:
			test = "*"
		case 1:
			test = "node()"
		case 2:
			test = "text()"
		default:
			tags := []string{"item", "price", "name", "cat"}
			test = tags[rng.Intn(len(tags))]
		}
		path = a + "::" + test
		if rng.Intn(5) == 0 {
			path += "/child::node()" // multi-step: not rewritten
		}
	}
	if rng.Intn(4) == 0 {
		subs := []string{"alpha", "caesar", "a", "long", "1"}
		return fmt.Sprintf("contains(%s, '%s')", path, subs[rng.Intn(len(subs))])
	}
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	op := ops[rng.Intn(len(ops))]
	if rng.Intn(2) == 0 {
		// No negative literals: the grammar has no unary minus.
		nums := []string{"5", "10", "42", "100", "10.5", "0"}
		return fmt.Sprintf("%s %s %s", path, op, nums[rng.Intn(len(nums))])
	}
	lits := []string{"alpha", "beta", "caesar", "t", "10", "Zulu"}
	return fmt.Sprintf("%s %s '%s'", path, op, lits[rng.Intn(len(lits))])
}

func randValueQuery(rng *rand.Rand) string {
	bases := []string{
		"//item", "//*", "/descendant::item", "//price",
		"//item/descendant-or-self::*", "//name", "//val",
	}
	q := bases[rng.Intn(len(bases))]
	q += "[" + randValuePred(rng) + "]"
	if rng.Intn(3) == 0 {
		q += "[" + randValuePred(rng) + "]"
	}
	switch rng.Intn(4) {
	case 0:
		q += "/child::node()"
	case 1:
		q += "/@price"
	}
	return q
}

// TestValuePushdownEquivalence is the differential property suite:
// random value-rich documents x random value-predicate queries,
// checking that the index-served plan, the NoValueIndex plan, and the
// legacy evaluator agree, and that cursors and EvalLimit prefixes
// match batch output under every knob combination.
func TestValuePushdownEquivalence(t *testing.T) {
	trials := 5
	queriesPer := 40
	if testing.Short() {
		trials, queriesPer = 2, 12
	}
	knobs := []Options{
		{},
		{NoValueIndex: true},
		{NoIndex: true},
		{NoValueIndex: true, NoIndex: true},
		{Pushdown: PushAlways},
		{Strategy: StaircaseNoSkip, Parallelism: 2},
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(7300 + trial)))
		d := randomValueDoc(rng, 300+rng.Intn(500))
		e := New(d)
		var wg sync.WaitGroup
		for qi := 0; qi < queriesPer; qi++ {
			q := randValueQuery(rng)
			wg.Add(1)
			go func(q string) {
				defer wg.Done()
				want, err := e.EvalString(q, &Options{LegacyEval: true})
				if err != nil {
					t.Errorf("legacy %s: %v", q, err)
					return
				}
				for i := range knobs {
					opts := knobs[i]
					got, err := e.EvalString(q, &opts)
					if err != nil {
						t.Errorf("%s %+v: %v", q, opts, err)
						return
					}
					if !eq32(got.Nodes, want.Nodes) {
						t.Errorf("%s %+v:\n got %v\nwant %v", q, opts, got.Nodes, want.Nodes)
						return
					}
					checkStreaming(t, e, q, &opts, want.Nodes)
				}
			}(q)
		}
		wg.Wait()
	}
}

// TestValueSemiJoinRewriteFires pins that eligible predicates are
// compiled to the value-semijoin form, that EXPLAIN reports the
// fragment source, and that disabling the index changes neither the
// canonical plan nor the result.
func TestValueSemiJoinRewriteFires(t *testing.T) {
	d := fixture(t)
	e := New(d)
	cases := []struct {
		q      string
		source string // substring expected in EXPLAIN text
	}{
		{"//open_auction[current > 10]", "numeric B-tree"},
		{"//bidder[increase >= 10]", "numeric B-tree"},
		{"//person[@id >= 'p2']", "string B-tree"},
		{"//person[contains(name, 'aro')]", "substring scan"},
		{"//name[. = 'Alice']", "string B-tree"},
	}
	for _, tc := range cases {
		p, err := e.PrepareString(tc.q, nil)
		if err != nil {
			t.Fatalf("prepare %s: %v", tc.q, err)
		}
		found := false
		for _, rw := range p.Rewrites() {
			if rw == "value-semijoin" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: rewrite list %v lacks value-semijoin", tc.q, p.Rewrites())
		}
		txt, err := p.Explain()
		if err != nil {
			t.Fatalf("explain %s: %v", tc.q, err)
		}
		if !strings.Contains(txt, "ValueScan") {
			t.Errorf("%s: explain lacks ValueScan:\n%s", tc.q, txt)
		}
		if !strings.Contains(txt, tc.source) {
			t.Errorf("%s: explain lacks source %q:\n%s", tc.q, tc.source, txt)
		}

		// Canonical string must be identical with the index disabled,
		// and the plain/no-index runs must agree node for node.
		pNo, err := e.PrepareString(tc.q, &Options{NoValueIndex: true})
		if err != nil {
			t.Fatalf("prepare noindex %s: %v", tc.q, err)
		}
		if p.Canon() != pNo.Canon() {
			t.Errorf("%s: canon differs with NoValueIndex:\n %s\n %s", tc.q, p.Canon(), pNo.Canon())
		}
		txtNo, err := pNo.Explain()
		if err != nil {
			t.Fatalf("explain noindex %s: %v", tc.q, err)
		}
		if !strings.Contains(txtNo, "value index disabled") {
			t.Errorf("%s: NoValueIndex explain lacks disabled marker:\n%s", tc.q, txtNo)
		}
		got, err := p.Run()
		if err != nil {
			t.Fatalf("run %s: %v", tc.q, err)
		}
		gotNo, err := pNo.Run()
		if err != nil {
			t.Fatalf("run noindex %s: %v", tc.q, err)
		}
		if !eq32(got.Nodes, gotNo.Nodes) {
			t.Errorf("%s: indexed %v != rescan %v", tc.q, got.Nodes, gotNo.Nodes)
		}
		if len(got.Nodes) == 0 {
			t.Errorf("%s: expected non-empty result on fixture", tc.q)
		}
	}
}

// TestValueSemiJoinNotRewritten pins the eligibility guards: nested
// paths, != comparisons, and reverse axes must stay on the per-node
// PredFilter path (and still produce correct results — covered by the
// fixture matrix; here we only assert the rewrite did not fire).
func TestValueSemiJoinNotRewritten(t *testing.T) {
	d := fixture(t)
	e := New(d)
	for _, q := range []string{
		"//person[profile/age > 35]",         // multi-step path
		"//open_auction[current != 10]",      // != is not range-servable
		"//name[ancestor::person = 'x']",     // reverse axis
		"//open_auction[bidder[increase=5]]", // nested predicate
	} {
		p, err := e.PrepareString(q, nil)
		if err != nil {
			t.Fatalf("prepare %s: %v", q, err)
		}
		for _, rw := range p.Rewrites() {
			if rw == "value-semijoin" {
				t.Errorf("%s: unexpectedly rewritten to value-semijoin", q)
			}
		}
	}
}
