package engine

import (
	"strings"
	"testing"

	"staircase/internal/axis"
	"staircase/internal/xmark"
)

// parallelQueries exercises every partitioning axis plus pushdown and
// or-self merging on top of the parallel join.
var parallelQueries = []string{
	"/descendant::profile",
	"/descendant::profile/descendant::education",
	"/descendant::increase/ancestor::bidder",
	"//person//education",
	"/descendant::increase/following::item",
	"/descendant::bidder/preceding::increase",
	"/descendant::profile/ancestor-or-self::person",
}

// TestParallelEvalMatchesSerial checks the engine acceptance bar:
// parallel evaluation is byte-identical to serial evaluation on an
// XMark-generated document for every query and worker setting.
func TestParallelEvalMatchesSerial(t *testing.T) {
	d, err := xmark.Generate(xmark.Config{SizeMB: 0.4, Seed: 21, KeepValues: true})
	if err != nil {
		t.Fatal(err)
	}
	e := New(d)
	for _, q := range parallelQueries {
		want, err := e.EvalString(q, &Options{Pushdown: PushNever})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 4, 8, AutoParallelism} {
			got, err := e.EvalString(q, &Options{Pushdown: PushNever, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Nodes) != len(want.Nodes) {
				t.Fatalf("%s parallelism=%d: %d nodes vs %d serial", q, par, len(got.Nodes), len(want.Nodes))
			}
			for i := range got.Nodes {
				if got.Nodes[i] != want.Nodes[i] {
					t.Fatalf("%s parallelism=%d: node %d differs (%d vs %d)", q, par, i, got.Nodes[i], want.Nodes[i])
				}
			}
		}
	}
}

// TestParallelWorkersReported checks that a large enough descendant
// step actually fans out and records the worker count in the report.
func TestParallelWorkersReported(t *testing.T) {
	// open_auction subtrees cover ~9k nodes at 1 MB: enough estimated
	// work for the cost model to grant all four requested workers.
	d, err := xmark.Generate(xmark.Config{SizeMB: 1, Seed: 21, KeepValues: true})
	if err != nil {
		t.Fatal(err)
	}
	e := New(d)
	res, err := e.EvalString("/descendant::open_auction/descendant::bidder",
		&Options{Pushdown: PushNever, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	var sawParallel bool
	for _, s := range res.Steps {
		if s.Core.Workers > 1 {
			sawParallel = true
		}
	}
	if !sawParallel {
		t.Fatalf("no step reported parallel workers; steps: %+v", res.Steps)
	}
}

// TestParallelCostModelDeclinesTinySteps: on a tiny document every step
// is below minParallelWork, so requesting workers must not fan out.
func TestParallelCostModelDeclinesTinySteps(t *testing.T) {
	d := shred(t, `<r><a><b/><b/></a><a><b/></a></r>`)
	e := New(d)
	res, err := e.EvalString("/descendant::b", &Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Steps {
		if s.Core.Workers > 1 {
			t.Fatalf("tiny step fanned out to %d workers", s.Core.Workers)
		}
	}
}

// TestExplainShowsParallel checks the EXPLAIN surface for the parallel
// operator: worker fan-out with partition counts when it runs, and the
// cost-model decline note when it does not.
func TestExplainShowsParallel(t *testing.T) {
	d, err := xmark.Generate(xmark.Config{SizeMB: 1, Seed: 21, KeepValues: true})
	if err != nil {
		t.Fatal(err)
	}
	e := New(d)
	out, err := e.Explain("/descendant::open_auction/descendant::bidder",
		&Options{Pushdown: PushNever, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "parallel: 4 workers over") {
		t.Fatalf("explain missing parallel fan-out line:\n%s", out)
	}
	if !strings.Contains(out, "partitions (disjoint pre ranges") {
		t.Fatalf("explain missing partition count:\n%s", out)
	}

	tiny := New(shred(t, `<r><a><b/></a></r>`))
	out, err = tiny.Explain("/descendant::b", &Options{Parallelism: 8, Pushdown: PushNever})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "declined by cost model") {
		t.Fatalf("explain missing cost-model decline:\n%s", out)
	}
}

// TestEmptyContextAncestorStep: an intermediate step producing no
// nodes followed by ancestor::<existing-tag> must evaluate to an empty
// result, not panic in the cost model (estimateJoinTouches used to
// index context[len-1] for the ancestor axis without an empty guard).
func TestEmptyContextAncestorStep(t *testing.T) {
	d := shred(t, `<r><b><c/></b></r>`)
	e := New(d)
	for _, q := range []string{
		"/descendant::nosuchtag/ancestor::b",
		"/descendant::nosuchtag/preceding::b",
		"/descendant::nosuchtag/following::b",
		"/descendant::nosuchtag/descendant::b",
	} {
		res, err := e.EvalString(q, nil)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(res.Nodes) != 0 {
			t.Fatalf("%s: expected empty result, got %v", q, res.Nodes)
		}
		if _, err := e.Explain(q, nil); err != nil {
			t.Fatalf("explain %s: %v", q, err)
		}
	}
}

// TestParallelPushdownCostInteraction: parallelism divides the
// full-join bound, so a borderline fragment that wins serially can
// lose once the join fans out. We only check consistency: the auto
// decision with workers w equals costPushdown with that w.
func TestParallelPushdownCostInteraction(t *testing.T) {
	d, err := xmark.Generate(xmark.Config{SizeMB: 0.3, Seed: 9, KeepValues: true})
	if err != nil {
		t.Fatal(err)
	}
	e := New(d)
	root := []int32{d.Root()}
	bound := e.estimateJoinTouches(axis.Descendant, root)
	id, ok := d.Names().Lookup("education")
	if !ok {
		t.Fatal("no education tag")
	}
	frag := int64(d.TagIndex().TagCount(id))
	for _, w := range []int{1, 2, 8, 64} {
		want := costPushdown(frag, bound, w)
		got := shouldPush(frag, bound, PushAuto, w)
		if got != want {
			t.Fatalf("workers=%d: shouldPush=%v costPushdown=%v", w, got, want)
		}
	}
}
