package engine

import (
	"context"
	"math"

	"staircase/internal/plan"
	"staircase/internal/xpath"
)

// Compiled is a parsed, reusable query handle: the AST plus the
// rewritten logical plan. Both are document-independent — parsing and
// the logical rewrites reference no document — so one Compiled can be
// prepared or evaluated many times, concurrently, and against
// different engines. Long-lived callers (the query server, benchmark
// loops) compile once and skip the per-request parser and rewriter
// work.
type Compiled struct {
	src     string
	q       xpath.Query
	logical *plan.Logical
}

// Compile parses a query (a location path, or a union of paths
// combined with '|') into a reusable handle, building and rewriting
// its logical plan.
func Compile(query string) (*Compiled, error) {
	q, err := xpath.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	l := plan.BuildLogical(q)
	plan.Rewrite(l)
	return &Compiled{src: query, q: q, logical: l}, nil
}

// Source returns the query text the handle was compiled from.
func (c *Compiled) Source() string { return c.src }

// Query returns the parsed form.
func (c *Compiled) Query() xpath.Query { return c.q }

// Logical returns the rewritten logical plan (shared, read-only).
func (c *Compiled) Logical() *plan.Logical { return c.logical }

// EvalCompiled evaluates a compiled query with the document root as the
// initial context, exactly as EvalString would for the same text.
func (e *Engine) EvalCompiled(c *Compiled, opts *Options) (*Result, error) {
	if opts != nil && opts.LegacyEval {
		return e.EvalQuery(c.q, []int32{e.d.Root()}, opts)
	}
	p, err := e.Prepare(c, opts)
	if err != nil {
		return nil, err
	}
	return p.Run()
}

// Prepared is a physical plan bound to one engine's document under one
// options configuration: the product of logical plan + optimizer.
// Prepared plans are immutable and safe for concurrent Run calls; the
// query server caches them per (document generation, options, query).
type Prepared struct {
	eng  *Engine
	pl   *plan.Plan
	opts Options
}

// Prepare compiles the query's logical plan into a physical plan for
// this engine's document.
func (e *Engine) Prepare(c *Compiled, opts *Options) (*Prepared, error) {
	if opts == nil {
		opts = &Options{}
	}
	pl, err := plan.Compile(e.env, c.logical, planOptions(opts))
	if err != nil {
		return nil, err
	}
	return &Prepared{eng: e, pl: pl, opts: *opts}, nil
}

// PrepareString parses, rewrites and prepares in one call.
func (e *Engine) PrepareString(query string, opts *Options) (*Prepared, error) {
	c, err := Compile(query)
	if err != nil {
		return nil, err
	}
	return e.Prepare(c, opts)
}

// Plan returns the underlying physical plan.
func (p *Prepared) Plan() *plan.Plan { return p.pl }

// Canon returns the canonical optimized-plan string — the result-cache
// key under which equivalent queries collide (see plan.Plan.Canon).
func (p *Prepared) Canon() string { return p.pl.Canon() }

// Rewrites lists the rewrite rules applied to this plan.
func (p *Prepared) Rewrites() []string { return p.pl.Rewrites() }

// Run executes the plan with the document root as initial context.
func (p *Prepared) Run() (*Result, error) {
	r, err := p.pl.RunRoot()
	if err != nil {
		return nil, err
	}
	return planResult(r), nil
}

// RunContext executes the plan with an explicit initial context
// (relative paths evaluate from these nodes; absolute paths still
// reset to the document root).
func (p *Prepared) RunContext(context []int32) (*Result, error) {
	r, err := p.pl.Run(context)
	if err != nil {
		return nil, err
	}
	return planResult(r), nil
}

// RunCtx executes the plan with the document root as initial context
// and cancellation: the execution checks ctx between operator batches
// and per-node loops, so server timeouts and client disconnects stop
// running joins.
func (p *Prepared) RunCtx(ctx context.Context) (*Result, error) {
	r, err := p.pl.RunCtx(ctx, []int32{p.eng.d.Root()})
	if err != nil {
		return nil, err
	}
	return planResult(r), nil
}

// EvalFirst executes the plan through the streaming cursor executor
// and stops after the first result node — the existence/top-1 probe.
// Equivalent to EvalLimit(ctx, 1).
func (p *Prepared) EvalFirst(ctx context.Context) (*Result, error) {
	return p.EvalLimit(ctx, 1)
}

// EvalLimit executes the plan through the streaming cursor executor,
// stopping after limit result nodes: the staircase kernels suspend
// mid-partition and the document regions beyond the limit are never
// scanned. Result.Nodes is a prefix of the full evaluation's nodes;
// Result.Truncated reports whether further results may exist. A
// limit <= 0 evaluates fully (identical to Run).
func (p *Prepared) EvalLimit(ctx context.Context, limit int) (*Result, error) {
	r, err := p.pl.RunLimitRoot(ctx, limit)
	if err != nil {
		return nil, err
	}
	return planResult(r), nil
}

// EvalLimitContext is EvalLimit with an explicit initial context.
func (p *Prepared) EvalLimitContext(ctx context.Context, nodes []int32, limit int) (*Result, error) {
	r, err := p.pl.RunLimit(ctx, nodes, limit)
	if err != nil {
		return nil, err
	}
	return planResult(r), nil
}

// Cursor opens a streaming execution of the plan from the document
// root: an iterator over the result in document-ordered batches. The
// cursor is single-use; the Prepared plan stays shareable.
func (p *Prepared) Cursor(ctx context.Context) (*plan.RunCursor, error) {
	return p.pl.CursorRoot(ctx)
}

// CursorContext is Cursor with an explicit initial context.
func (p *Prepared) CursorContext(ctx context.Context, nodes []int32) (*plan.RunCursor, error) {
	return p.pl.Cursor(ctx, nodes)
}

// explainRun produces the Result an explanation annotates. Morsel
// annotations only exist on the streaming executor's Result, so a
// morsel-enabled preparation explains a full cursor drain; everything
// else keeps the batch executor.
func (p *Prepared) explainRun() (*plan.Result, error) {
	if p.opts.MorselWorkers > 1 || p.opts.MorselWorkers < 0 {
		return p.pl.RunLimitRoot(context.Background(), math.MaxInt)
	}
	return p.pl.RunRoot()
}

// Explain executes the plan and renders the optimized operator tree
// with per-operator fragment sources and actual cardinalities.
func (p *Prepared) Explain() (string, error) {
	r, err := p.explainRun()
	if err != nil {
		return "", err
	}
	return p.pl.ExplainText(r), nil
}

// ExplainJSON is Explain in machine-readable form.
func (p *Prepared) ExplainJSON() ([]byte, error) {
	r, err := p.explainRun()
	if err != nil {
		return nil, err
	}
	return p.pl.ExplainJSON(r)
}
