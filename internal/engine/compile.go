package engine

import "staircase/internal/xpath"

// Compiled is a parsed, reusable query handle. Parsing an XPath query
// is pure — the AST references no document — so one Compiled can be
// evaluated many times, concurrently, and against different engines.
// Long-lived callers (the query server, benchmark loops) compile once
// and skip the per-request parser work.
type Compiled struct {
	src string
	q   xpath.Query
}

// Compile parses a query (a location path, or a union of paths combined
// with '|') into a reusable handle.
func Compile(query string) (*Compiled, error) {
	q, err := xpath.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	return &Compiled{src: query, q: q}, nil
}

// Source returns the query text the handle was compiled from.
func (c *Compiled) Source() string { return c.src }

// Query returns the parsed form.
func (c *Compiled) Query() xpath.Query { return c.q }

// EvalCompiled evaluates a compiled query with the document root as the
// initial context, exactly as EvalString would for the same text.
func (e *Engine) EvalCompiled(c *Compiled, opts *Options) (*Result, error) {
	return e.EvalQuery(c.q, []int32{e.d.Root()}, opts)
}
