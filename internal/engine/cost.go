package engine

import (
	"runtime"

	"staircase/internal/axis"
)

// FROZEN LEGACY COPY — the live cost model lives in internal/plan
// (cost.go); these duplicates exist only so the Options.LegacyEval
// oracle path stays bit-for-bit what the plan compiler was verified
// against. Do not evolve them: change internal/plan and let the
// differential suite (plan_equiv_test.go) catch any drift. They go
// away with LegacyEval.
//
// Cost model for name-test pushdown (the paper's §6: "Further research
// goes in the direction of a cost model to be able to intelligently
// choose between name/node test pushdown and related XPath rewriting
// laws"). The model compares upper bounds on the nodes each plan
// touches; both bounds follow from the skipping analysis of §3.3:
//
//	no pushdown:  the descendant staircase join touches at most
//	              |result| + |context| nodes; |result| is bounded by
//	              Σ |subtree(c)| (Equation (1), O(|context|) to compute).
//	              The ancestor join touches at most h·|context| result
//	              nodes plus one probe per skipped sibling subtree.
//	              Following/preceding degenerate to a single region copy.
//	              Afterwards the name test filters the result.
//
//	pushdown:     the join over the tag fragment touches at most
//	              min(fragment size, the same result bound) entries,
//	              plus O(log) binary searches per partition.
//
// Pushdown wins when the fragment is smaller than the expected axis
// result — "selective name tests only", quantified.

// estimateJoinTouches bounds the nodes a staircase join over the full
// document touches for the given axis and context. An empty context
// touches nothing on any axis.
func (e *Engine) estimateJoinTouches(a axis.Axis, context []int32) int64 {
	if len(context) == 0 {
		return 0
	}
	d := e.d
	n := int64(d.Size())
	k := int64(len(context))
	switch a {
	case axis.Descendant:
		var sum int64
		for _, c := range context {
			sum += int64(d.SubtreeSize(c))
			if sum >= n {
				return n
			}
		}
		return sum + k
	case axis.Ancestor:
		// Result is at most h per context node; skipping probes one
		// node per jumped subtree, bounded by the pre rank of the last
		// context node. Use the optimistic result bound plus a probe
		// allowance.
		bound := int64(d.Height())*k + 2*k
		if last := int64(context[len(context)-1]); last < bound {
			return last
		}
		return bound
	case axis.Following:
		c, _ := coreReduceFollowing(e, context)
		return n - int64(c)
	case axis.Preceding:
		return int64(context[len(context)-1])
	default:
		return n
	}
}

// coreReduceFollowing picks the minimum-post context node (kept local
// to avoid exporting more of core's internals into the cost model).
func coreReduceFollowing(e *Engine, context []int32) (int32, bool) {
	post := e.d.PostSlice()
	if len(context) == 0 {
		return 0, false
	}
	best := context[0]
	for _, c := range context[1:] {
		if post[c] < post[best] {
			best = c
		}
	}
	return best, true
}

// costPushdown decides node-test pushdown with the cost model: push
// when the fragment (the tag or kind node list) is smaller than
// `bound`, the estimateJoinTouches bound on what the full join would
// touch. The fragment cardinality is exact — the shared tag/kind index
// keeps per-list counts, so the decision reads a length instead of
// scanning the name column. The full join runs partition-parallel when
// the caller requested workers, so the comparison uses the
// *per-worker* scan bound — a wide parallel join can beat a serial
// fragment join even when the fragment is nominally smaller.
func costPushdown(fragment, bound int64, workers int) bool {
	if workers < 1 {
		workers = 1
	}
	return fragment < bound/int64(workers)
}

// minParallelWork is the minimum estimated number of touched nodes per
// worker before the cost model lets a staircase join fan out: below it,
// goroutine spawn and per-worker result concatenation dominate the scan
// itself (a few µs of overhead vs ~1 ns per copied node).
const minParallelWork = 1 << 11

// parallelWorkersFor resolves the requested Options.Parallelism into
// the worker count for one axis step whose estimateJoinTouches bound is
// `bound`: negative requests map to GOMAXPROCS, and the result is
// clamped so every worker gets at least minParallelWork estimated
// touched nodes (the parallel operators' entry in the cost model).
func parallelWorkersFor(opts *Options, bound int64) int {
	w := opts.Parallelism
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w <= 1 {
		return 1
	}
	if maxW := bound / minParallelWork; int64(w) > maxW {
		w = int(maxW)
	}
	if w < 1 {
		return 1
	}
	return w
}
