package engine

import (
	"strings"
	"testing"
)

func TestExplainStaircasePlan(t *testing.T) {
	e := New(fixture(t))
	out, err := e.Explain("/descendant::increase/ancestor::bidder", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"step 1", "step 2",
		"staircase join",
		"no duplicates, document order",
		"pruning:",
		"cardinality:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainPushdownDecision(t *testing.T) {
	e := New(fixture(t))
	out, err := e.Explain("/descendant::education", &Options{Pushdown: PushAlways})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "pushed below join") {
		t.Errorf("expected pushdown note:\n%s", out)
	}
	out, err = e.Explain("/descendant::education", &Options{Pushdown: PushNever})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "applied after join") {
		t.Errorf("expected post-filter note:\n%s", out)
	}
}

func TestExplainSQLPlan(t *testing.T) {
	e := New(fixture(t))
	out, err := e.Explain("/descendant::bidder", &Options{Strategy: SQL})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "B-tree indexed") || !strings.Contains(out, "unique") {
		t.Errorf("expected SQL plan description:\n%s", out)
	}
}

func TestExplainUnionAndPredicates(t *testing.T) {
	e := New(fixture(t))
	out, err := e.Explain("//person[profile and name] | //bidder", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "union branch 1") || !strings.Contains(out, "union branch 2") {
		t.Errorf("expected union branches:\n%s", out)
	}
	if !strings.Contains(out, "predicate filter") {
		t.Errorf("expected predicate note:\n%s", out)
	}
	if !strings.Contains(out, "merge-union") {
		t.Errorf("expected merge-union note:\n%s", out)
	}
}

func TestExplainNonPartitioningAxis(t *testing.T) {
	e := New(fixture(t))
	out, err := e.Explain("//profile/parent::person/@id", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "positional parent lookup") {
		t.Errorf("expected positional lookup note:\n%s", out)
	}
	if !strings.Contains(out, "positional attribute lookup") {
		t.Errorf("expected attribute lookup note:\n%s", out)
	}
}

func TestExplainParseError(t *testing.T) {
	e := New(fixture(t))
	if _, err := e.Explain("//[", nil); err == nil {
		t.Fatal("expected parse error")
	}
}
