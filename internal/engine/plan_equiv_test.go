package engine

// Differential property suite for the plan compiler: for randomly
// generated documents and randomly generated queries — covering every
// axis, the node-test kinds, predicate forms (existential, compare,
// positional, not/and/or) and the NoIndex / Parallelism knobs — the
// plan pipeline (build → rewrite → compile → execute) must produce
// exactly the node sequence of the pre-plan step interpreter
// (Options.LegacyEval). Run under -race in CI, this also exercises
// concurrent plan execution over one shared engine.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"staircase/internal/axis"
	"staircase/internal/plan"
	"staircase/internal/xpath"
)

func init() {
	// Assert executor invariants (e.g. the PosFilter sort-decay
	// monotonicity) throughout the differential suite.
	plan.EnableInvariantChecks(true)
}

// drainPrepared runs a prepared plan through the streaming cursor
// executor to exhaustion.
func drainPrepared(p *Prepared) ([]int32, error) {
	cur, err := p.Cursor(context.Background())
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	var out []int32
	for {
		b, err := cur.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		out = append(out, b...)
	}
}

// checkStreaming pins the cursor executor to the legacy result: a full
// drain must be byte-identical, and EvalLimit(k) must return exactly
// the k-prefix with a consistent Truncated report.
func checkStreaming(t *testing.T, e *Engine, q string, opts *Options, want []int32) {
	t.Helper()
	p, err := e.PrepareString(q, opts)
	if err != nil {
		t.Errorf("prepare %s %+v: %v", q, *opts, err)
		return
	}
	got, err := drainPrepared(p)
	if err != nil {
		t.Errorf("cursor drain %s %+v: %v", q, *opts, err)
		return
	}
	if !eq32(got, want) {
		t.Errorf("cursor drain != legacy for %s under %+v:\n got %v\nwant %v", q, *opts, got, want)
		return
	}
	// A deterministic pseudo-random limit in [1, len(want)+2].
	lim := 1 + (len(q)*7+len(want)*3)%(len(want)+2)
	lr, err := p.EvalLimit(context.Background(), lim)
	if err != nil {
		t.Errorf("EvalLimit(%d) %s %+v: %v", lim, q, *opts, err)
		return
	}
	wantPrefix := want
	if lim < len(want) {
		wantPrefix = want[:lim]
	}
	if !eq32(lr.Nodes, wantPrefix) {
		t.Errorf("EvalLimit(%d) != legacy prefix for %s under %+v:\n got %v\nwant %v",
			lim, q, *opts, lr.Nodes, wantPrefix)
		return
	}
	if !lr.Truncated && len(lr.Nodes) != len(want) {
		t.Errorf("EvalLimit(%d) for %s under %+v: Truncated=false but %d of %d nodes returned",
			lim, q, *opts, len(lr.Nodes), len(want))
	}
	if lr.Truncated && len(lr.Nodes) < lim && len(lr.Nodes) < len(want) {
		t.Errorf("EvalLimit(%d) for %s under %+v: Truncated=true but stopped early with %d nodes",
			lim, q, *opts, len(lr.Nodes))
	}
}

// randAxes spans every axis the parser can produce.
var randAxes = []axis.Axis{
	axis.Child, axis.Descendant, axis.DescendantOrSelf, axis.Parent,
	axis.Ancestor, axis.AncestorOrSelf, axis.Following, axis.Preceding,
	axis.FollowingSibling, axis.PrecedingSibling, axis.Self, axis.Attribute,
}

// randTest picks a node test; the tag vocabulary matches randomDoc.
func randTest(rng *rand.Rand) string {
	switch rng.Intn(8) {
	case 0:
		return "*"
	case 1:
		return "node()"
	case 2:
		return "text()"
	default:
		return []string{"p", "q", "r", "s", "zz"}[rng.Intn(5)]
	}
}

// randPred builds a predicate string; depth bounds nesting.
func randPred(rng *rand.Rand, depth int) string {
	switch rng.Intn(7) {
	case 0:
		return fmt.Sprintf("%d", 1+rng.Intn(3))
	case 1:
		return "last()"
	case 2:
		return fmt.Sprintf("position()=%d", 1+rng.Intn(3))
	case 3:
		if depth > 0 {
			return "not(" + randPred(rng, depth-1) + ")"
		}
		return randStep(rng)
	case 4:
		if depth > 0 {
			return randPred(rng, depth-1) + " and " + randPred(rng, depth-1)
		}
		return randStep(rng)
	case 5:
		return randStep(rng) + " = 't'"
	default:
		// Existential paths, including the single-partitioning-step
		// form the exists-semijoin rewrite targets.
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("%s::%s", randAxes[rng.Intn(len(randAxes))], randTest(rng))
		}
		return randStep(rng)
	}
}

// randStep builds one step without predicates.
func randStep(rng *rand.Rand) string {
	a := randAxes[rng.Intn(len(randAxes))]
	t := randTest(rng)
	if a == axis.Attribute && rng.Intn(2) == 0 {
		return "@k"
	}
	return fmt.Sprintf("%s::%s", a, t)
}

// randQuery builds a full query: 1-2 union branches of 1-4 steps with
// 0-2 predicates each, absolute or relative, with '//' abbreviations
// mixed in to exercise the collapse rewrite.
func randQuery(rng *rand.Rand) string {
	branch := func() string {
		var out string
		if rng.Intn(2) == 0 {
			out = "/"
			if rng.Intn(3) == 0 {
				out = "//"
			}
		}
		steps := 1 + rng.Intn(4)
		for i := 0; i < steps; i++ {
			if i > 0 {
				if rng.Intn(4) == 0 {
					out += "//"
				} else {
					out += "/"
				}
			}
			s := randStep(rng)
			for p := 0; p < rng.Intn(3); p++ {
				s += "[" + randPred(rng, 1) + "]"
			}
			out += s
		}
		return out
	}
	q := branch()
	if rng.Intn(4) == 0 {
		q += " | " + branch()
	}
	return q
}

// TestPlanEquivalentToLegacyEval is the acceptance property: for every
// generated query and every knob combination, plan-based execution
// returns byte-identical node sequences to the step interpreter.
func TestPlanEquivalentToLegacyEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials := quickTrials(6)
	const queriesPerDoc = 60
	for trial := 0; trial < trials; trial++ {
		d := randomDoc(rng, 200)
		e := New(d)
		var queries []string
		for len(queries) < queriesPerDoc {
			q := randQuery(rng)
			if _, err := xpath.ParseQuery(q); err != nil {
				continue // rare: generator emitted something the grammar rejects
			}
			queries = append(queries, q)
		}
		knobs := []Options{
			{},
			{NoIndex: true},
			{Parallelism: 3},
			{Parallelism: AutoParallelism, NoIndex: true},
			{Pushdown: PushAlways},
			{Pushdown: PushNever, Parallelism: 2},
			{Strategy: StaircaseNoSkip},
			{MorselWorkers: 3},
			{MorselWorkers: AutoParallelism, Pushdown: PushAlways},
			{MorselWorkers: 2, NoIndex: true, Strategy: StaircaseSkip},
			{NoReorder: true},
			{NoReorder: true, NoIndex: true},
			{NoReorder: true, MorselWorkers: 3},
		}
		var wg sync.WaitGroup
		for _, q := range queries {
			wg.Add(1)
			go func(q string) {
				defer wg.Done()
				legacy, err := e.EvalString(q, &Options{LegacyEval: true})
				if err != nil {
					t.Errorf("legacy %s: %v", q, err)
					return
				}
				for _, k := range knobs {
					k := k
					got, err := e.EvalString(q, &k)
					if err != nil {
						t.Errorf("plan %s %+v: %v", q, k, err)
						return
					}
					if !eq32(got.Nodes, legacy.Nodes) {
						t.Errorf("plan != legacy for %s under %+v:\n got %v\nwant %v",
							q, k, got.Nodes, legacy.Nodes)
						return
					}
					checkStreaming(t, e, q, &k, legacy.Nodes)
				}
			}(q)
		}
		wg.Wait()
		if t.Failed() {
			t.Fatalf("trial %d failed", trial)
		}
	}
}

// randFilterStep builds one step stacking 2-4 commutable predicates —
// the shape the greedy ordering pass reorders: existential steps
// (semijoin candidates), value comparisons (value-semijoin candidates)
// and per-node programs, in random source order.
func randFilterStep(rng *rand.Rand) string {
	s := randStep(rng)
	for p, n := 0, 2+rng.Intn(3); p < n; p++ {
		switch rng.Intn(3) {
		case 0:
			s += fmt.Sprintf("[%s::%s]", randAxes[rng.Intn(len(randAxes))], randTest(rng))
		case 1:
			s += "[" + randStep(rng) + " = 't']"
		default:
			s += "[" + randPred(rng, 1) + "]"
		}
	}
	return s
}

// randFilterQuery: 1-3 steps, the last stacking a reorderable
// predicate chain.
func randFilterQuery(rng *rand.Rand) string {
	var out string
	if rng.Intn(2) == 0 {
		out = "/"
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		out += randStep(rng) + "/"
	}
	return out + randFilterStep(rng)
}

// TestReorderEquivalence is the ordering pass's differential property:
// for randomly generated multi-predicate queries, greedy-ordered
// evaluation, source-order evaluation (NoReorder) and the legacy step
// interpreter return byte-identical node sequences; the streaming
// chain cursor (with mid-flight re-planning armed) matches too; and
// ordering never changes the canonical plan string (the result-cache
// key).
func TestReorderEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	trials := quickTrials(4)
	const queriesPerDoc = 40
	for trial := 0; trial < trials; trial++ {
		d := randomDoc(rng, 250)
		e := New(d)
		var queries []string
		for len(queries) < queriesPerDoc {
			q := randFilterQuery(rng)
			if _, err := xpath.ParseQuery(q); err != nil {
				continue
			}
			queries = append(queries, q)
		}
		var wg sync.WaitGroup
		for _, q := range queries {
			wg.Add(1)
			go func(q string) {
				defer wg.Done()
				legacy, err := e.EvalString(q, &Options{LegacyEval: true})
				if err != nil {
					t.Errorf("legacy %s: %v", q, err)
					return
				}
				ordered, err := e.EvalString(q, &Options{})
				if err != nil {
					t.Errorf("ordered %s: %v", q, err)
					return
				}
				if !eq32(ordered.Nodes, legacy.Nodes) {
					t.Errorf("ordered != legacy for %s:\n got %v\nwant %v", q, ordered.Nodes, legacy.Nodes)
					return
				}
				plain, err := e.EvalString(q, &Options{NoReorder: true})
				if err != nil {
					t.Errorf("no-reorder %s: %v", q, err)
					return
				}
				if !eq32(plain.Nodes, legacy.Nodes) {
					t.Errorf("no-reorder != legacy for %s:\n got %v\nwant %v", q, plain.Nodes, legacy.Nodes)
					return
				}
				checkStreaming(t, e, q, &Options{}, legacy.Nodes)
				po, err := e.PrepareString(q, &Options{})
				if err != nil {
					t.Errorf("prepare %s: %v", q, err)
					return
				}
				pp, err := e.PrepareString(q, &Options{NoReorder: true})
				if err != nil {
					t.Errorf("prepare no-reorder %s: %v", q, err)
					return
				}
				if po.Canon() != pp.Canon() {
					t.Errorf("canon changed by ordering for %s:\n ordered %s\n   plain %s",
						q, po.Canon(), pp.Canon())
				}
			}(q)
		}
		wg.Wait()
		if t.Failed() {
			t.Fatalf("trial %d failed", trial)
		}
	}
}

// TestPlanEquivalenceOnFixtureMatrix re-runs the curated fixture
// queries through the full strategy × pushdown matrix, comparing plan
// and legacy node sequences (the strategies already agree with the
// spec evaluator; this pins plan == legacy per configuration).
func TestPlanEquivalenceOnFixtureMatrix(t *testing.T) {
	d := fixture(t)
	e := New(d)
	for _, q := range fixtureQueries {
		for _, s := range allStrategies {
			for _, push := range []Pushdown{PushAuto, PushAlways, PushNever} {
				opts := Options{Strategy: s, Pushdown: push}
				legacyOpts := opts
				legacyOpts.LegacyEval = true
				legacy, err := e.EvalString(q, &legacyOpts)
				if err != nil {
					t.Fatalf("legacy %s: %v", q, err)
				}
				got, err := e.EvalString(q, &opts)
				if err != nil {
					t.Fatalf("plan %s: %v", q, err)
				}
				if !eq32(got.Nodes, legacy.Nodes) {
					t.Fatalf("plan != legacy for %s [%v/%v]:\n got %v\nwant %v",
						q, s, push, got.Nodes, legacy.Nodes)
				}
				checkStreaming(t, e, q, &opts, legacy.Nodes)
			}
		}
	}
}
