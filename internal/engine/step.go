// FROZEN LEGACY COPY — the pre-plan step interpreter, kept verbatim
// behind Options.LegacyEval as the oracle of the plan ≡ legacy
// differential suite. The live evaluation machinery is
// internal/plan/ops.go; do not evolve this file.

package engine

import (
	"fmt"
	"sort"

	"staircase/internal/axis"
	"staircase/internal/baseline"
	"staircase/internal/core"
	"staircase/internal/doc"
	"staircase/internal/xpath"
)

// evalAxisTest evaluates axis::nodetest for the whole context.
func (e *Engine) evalAxisTest(a axis.Axis, test xpath.NodeTest, context []int32, opts *Options, rep *StepReport) ([]int32, error) {
	switch a {
	case axis.Descendant, axis.Ancestor, axis.Following, axis.Preceding:
		return e.evalPartitioning(a, test, context, opts, rep)
	case axis.DescendantOrSelf, axis.AncestorOrSelf:
		base := axis.Descendant
		if a == axis.AncestorOrSelf {
			base = axis.Ancestor
		}
		nodes, err := e.evalPartitioning(base, test, context, opts, rep)
		if err != nil {
			return nil, err
		}
		selfPart := e.filterTest(a, test, append([]int32(nil), context...))
		return core.MergeOrSelf(nodes, selfPart), nil
	case axis.Child:
		var out []int32
		for _, c := range context {
			out = append(out, e.d.Children(c)...)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return e.filterTest(a, test, out), nil
	case axis.Parent:
		var out []int32
		for _, c := range context {
			if p := e.d.Parent(c); p != doc.NoParent {
				out = append(out, p)
			}
		}
		out = sortDedup(out)
		return e.filterTest(a, test, out), nil
	case axis.Self:
		return e.filterTest(a, test, append([]int32(nil), context...)), nil
	case axis.Attribute:
		var out []int32
		for _, c := range context {
			out = append(out, e.d.Attributes(c)...)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return e.filterTest(a, test, out), nil
	case axis.FollowingSibling:
		var out []int32
		for _, c := range context {
			for s := e.d.FollowingSibling(c); s != -1; s = e.d.FollowingSibling(s) {
				out = append(out, s)
			}
		}
		out = sortDedup(out)
		return e.filterTest(a, test, out), nil
	case axis.PrecedingSibling:
		var out []int32
		for _, c := range context {
			p := e.d.Parent(c)
			if p == doc.NoParent {
				continue
			}
			for _, s := range e.d.Children(p) {
				if s >= c {
					break
				}
				out = append(out, s)
			}
		}
		out = sortDedup(out)
		return e.filterTest(a, test, out), nil
	case axis.Namespace:
		return nil, nil
	default:
		return nil, fmt.Errorf("engine: unsupported axis %v", a)
	}
}

// evalPartitioning evaluates one of the four partitioning axes with the
// configured strategy, applying the name test before or after the join.
func (e *Engine) evalPartitioning(a axis.Axis, test xpath.NodeTest, context []int32, opts *Options, rep *StepReport) ([]int32, error) {
	switch opts.Strategy {
	case Staircase, StaircaseSkip, StaircaseNoSkip:
		co := &core.Options{Variant: coreVariant(opts.Strategy)}
		if rep != nil {
			co.Stats = &rep.Core
		}
		bound := e.estimateJoinTouches(a, context)
		workers := parallelWorkersFor(opts, bound)
		if opts.Pushdown != PushNever {
			if list, indexed, ok := e.pushdownList(test, opts); ok &&
				shouldPush(int64(len(list)), bound, opts.Pushdown, workers) {
				if len(list) == 0 {
					return nil, nil // tag/kind absent: empty result
				}
				if rep != nil {
					rep.Pushed = true
					rep.Indexed = indexed
				}
				// Fragment joins stay serial: the node list is binary-
				// search bounded and the cost model only chose this path
				// because it beats even the parallel full-document join.
				return core.JoinNodeList(e.d, a, list, context, co)
			}
		}
		var nodes []int32
		var err error
		if workers > 1 {
			nodes, err = core.ParallelJoin(e.d, a, context, workers, co)
		} else {
			nodes, err = core.Join(e.d, a, context, co)
		}
		if err != nil {
			return nil, err
		}
		return e.filterTest(a, test, nodes), nil
	case Naive:
		var nst *baseline.NaiveStats
		if rep != nil {
			nst = &rep.Naive
		}
		nodes := baseline.NaiveJoin(e.d, a, context, nst)
		return e.filterTest(a, test, nodes), nil
	case SQL, SQLWindow:
		so := baseline.SQLOptions{UseWindow: opts.Strategy == SQLWindow}
		if test.Kind == xpath.TestName {
			// The paper's DB2 observation: the B-tree uses concatenated
			// (pre, post, tag name) keys, so the name test is early.
			so.Tag = test.Name
			if rep != nil {
				rep.Pushed = true
			}
			return e.sqlEngine().Step(a, context, so)
		}
		nodes, err := e.sqlEngine().Step(a, context, so)
		if err != nil {
			return nil, err
		}
		return e.filterTest(a, test, nodes), nil
	default:
		return nil, fmt.Errorf("engine: unknown strategy %v", opts.Strategy)
	}
}

// coreVariant maps engine strategies to staircase join variants.
func coreVariant(s Strategy) core.Variant {
	switch s {
	case StaircaseNoSkip:
		return core.NoSkip
	case StaircaseSkip:
		return core.Skip
	default:
		return core.SkipEstimate
	}
}

// pushdownList resolves the fragment node list for a pushable node
// test — the nametest(doc, n) (or kind-test) operand of the §4.4
// rewrite. Name tests map to the tag list of the interned name; the
// non-element kind tests text(), comment() and processing-instruction()
// map to the kind lists the index keeps alongside. With the shared
// index the list is a slice fetch with exact cardinality and pre span;
// with Options.NoIndex it is rebuilt by an O(n) column scan (and an
// absent tag yields an empty list, making the step trivially empty).
// ok is false for tests that cannot be pushed (*, node(), and named
// processing instructions, which would need a kind∩name list).
func (e *Engine) pushdownList(test xpath.NodeTest, opts *Options) (list []int32, indexed, ok bool) {
	switch test.Kind {
	case xpath.TestName:
		id, found := e.d.Names().Lookup(test.Name)
		if !found {
			return nil, !opts.NoIndex, true // absent tag: empty fragment
		}
		if opts.NoIndex {
			return e.scanTagList(id), false, true
		}
		return e.d.TagIndex().Tag(id), true, true
	case xpath.TestText:
		return e.kindFragment(doc.Text, opts)
	case xpath.TestComment:
		return e.kindFragment(doc.Comment, opts)
	case xpath.TestPI:
		if test.Name != "" {
			return nil, false, false
		}
		return e.kindFragment(doc.PI, opts)
	default:
		return nil, false, false
	}
}

// kindFragment serves a non-element kind list from the index or by
// scan.
func (e *Engine) kindFragment(k doc.Kind, opts *Options) (list []int32, indexed, ok bool) {
	if opts.NoIndex {
		return e.scanKindList(k), false, true
	}
	return e.d.TagIndex().KindList(uint8(k)), true, true
}

// shouldPush decides node-test pushdown: forced by PushAlways/PushNever,
// otherwise delegated to the cost model (cost.go). fragment is the
// exact fragment cardinality, bound the estimateJoinTouches bound for
// the step, and workers the parallelism the full-document join would
// run with, which lowers its effective cost.
func shouldPush(fragment, bound int64, mode Pushdown, workers int) bool {
	switch mode {
	case PushAlways:
		return true
	case PushNever:
		return false
	default:
		return costPushdown(fragment, bound, workers)
	}
}

// filterTest filters nodes by the node test in place (the slice is
// reused) and returns the filtered prefix.
func (e *Engine) filterTest(a axis.Axis, test xpath.NodeTest, nodes []int32) []int32 {
	principal := doc.Elem
	if a == axis.Attribute {
		principal = doc.Attr
	}
	out := nodes[:0]
	for _, v := range nodes {
		k := e.d.KindOf(v)
		// Axis-level kind filtering for axes evaluated outside the
		// staircase join (child, self, siblings): attributes appear
		// only on the attribute axis.
		if a != axis.Attribute && k == doc.Attr {
			continue
		}
		switch test.Kind {
		case xpath.TestName:
			if k == principal && e.d.Name(v) == test.Name {
				out = append(out, v)
			}
		case xpath.TestAny:
			if k == principal {
				out = append(out, v)
			}
		case xpath.TestNode:
			out = append(out, v)
		case xpath.TestText:
			if k == doc.Text {
				out = append(out, v)
			}
		case xpath.TestComment:
			if k == doc.Comment {
				out = append(out, v)
			}
		case xpath.TestPI:
			if k == doc.PI && (test.Name == "" || e.d.Name(v) == test.Name) {
				out = append(out, v)
			}
		}
	}
	return out
}

// sortDedup sorts a pre-rank slice and removes duplicates in place.
func sortDedup(nodes []int32) []int32 {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	out := nodes[:0]
	for i, v := range nodes {
		if i > 0 && v == nodes[i-1] {
			continue
		}
		out = append(out, v)
	}
	return out
}
