package engine

import (
	"fmt"
	"sort"

	"staircase/internal/axis"
	"staircase/internal/baseline"
	"staircase/internal/core"
	"staircase/internal/doc"
	"staircase/internal/xpath"
)

// evalAxisTest evaluates axis::nodetest for the whole context.
func (e *Engine) evalAxisTest(a axis.Axis, test xpath.NodeTest, context []int32, opts *Options, rep *StepReport) ([]int32, error) {
	switch a {
	case axis.Descendant, axis.Ancestor, axis.Following, axis.Preceding:
		return e.evalPartitioning(a, test, context, opts, rep)
	case axis.DescendantOrSelf, axis.AncestorOrSelf:
		base := axis.Descendant
		if a == axis.AncestorOrSelf {
			base = axis.Ancestor
		}
		nodes, err := e.evalPartitioning(base, test, context, opts, rep)
		if err != nil {
			return nil, err
		}
		selfPart := e.filterTest(a, test, append([]int32(nil), context...))
		return core.MergeOrSelf(nodes, selfPart), nil
	case axis.Child:
		var out []int32
		for _, c := range context {
			out = append(out, e.d.Children(c)...)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return e.filterTest(a, test, out), nil
	case axis.Parent:
		var out []int32
		for _, c := range context {
			if p := e.d.Parent(c); p != doc.NoParent {
				out = append(out, p)
			}
		}
		out = sortDedup(out)
		return e.filterTest(a, test, out), nil
	case axis.Self:
		return e.filterTest(a, test, append([]int32(nil), context...)), nil
	case axis.Attribute:
		var out []int32
		for _, c := range context {
			out = append(out, e.d.Attributes(c)...)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return e.filterTest(a, test, out), nil
	case axis.FollowingSibling:
		var out []int32
		for _, c := range context {
			for s := e.d.FollowingSibling(c); s != -1; s = e.d.FollowingSibling(s) {
				out = append(out, s)
			}
		}
		out = sortDedup(out)
		return e.filterTest(a, test, out), nil
	case axis.PrecedingSibling:
		var out []int32
		for _, c := range context {
			p := e.d.Parent(c)
			if p == doc.NoParent {
				continue
			}
			for _, s := range e.d.Children(p) {
				if s >= c {
					break
				}
				out = append(out, s)
			}
		}
		out = sortDedup(out)
		return e.filterTest(a, test, out), nil
	case axis.Namespace:
		return nil, nil
	default:
		return nil, fmt.Errorf("engine: unsupported axis %v", a)
	}
}

// evalPartitioning evaluates one of the four partitioning axes with the
// configured strategy, applying the name test before or after the join.
func (e *Engine) evalPartitioning(a axis.Axis, test xpath.NodeTest, context []int32, opts *Options, rep *StepReport) ([]int32, error) {
	switch opts.Strategy {
	case Staircase, StaircaseSkip, StaircaseNoSkip:
		co := &core.Options{Variant: coreVariant(opts.Strategy)}
		if rep != nil {
			co.Stats = &rep.Core
		}
		bound := e.estimateJoinTouches(a, context)
		workers := parallelWorkersFor(opts, bound)
		if test.Kind == xpath.TestName && e.shouldPush(test.Name, bound, opts.Pushdown, workers) {
			id, ok := e.d.Names().Lookup(test.Name)
			if !ok {
				return nil, nil // tag absent: empty result
			}
			if rep != nil {
				rep.Pushed = true
			}
			// Fragment joins stay serial: the tag list is binary-search
			// bounded and the cost model only chose this path because it
			// beats even the parallel full-document join.
			return core.JoinNodeList(e.d, a, e.TagList(id), context, co)
		}
		var nodes []int32
		var err error
		if workers > 1 {
			nodes, err = core.ParallelJoin(e.d, a, context, workers, co)
		} else {
			nodes, err = core.Join(e.d, a, context, co)
		}
		if err != nil {
			return nil, err
		}
		return e.filterTest(a, test, nodes), nil
	case Naive:
		var nst *baseline.NaiveStats
		if rep != nil {
			nst = &rep.Naive
		}
		nodes := baseline.NaiveJoin(e.d, a, context, nst)
		return e.filterTest(a, test, nodes), nil
	case SQL, SQLWindow:
		so := baseline.SQLOptions{UseWindow: opts.Strategy == SQLWindow}
		if test.Kind == xpath.TestName {
			// The paper's DB2 observation: the B-tree uses concatenated
			// (pre, post, tag name) keys, so the name test is early.
			so.Tag = test.Name
			if rep != nil {
				rep.Pushed = true
			}
			return e.sqlEngine().Step(a, context, so)
		}
		nodes, err := e.sqlEngine().Step(a, context, so)
		if err != nil {
			return nil, err
		}
		return e.filterTest(a, test, nodes), nil
	default:
		return nil, fmt.Errorf("engine: unknown strategy %v", opts.Strategy)
	}
}

// coreVariant maps engine strategies to staircase join variants.
func coreVariant(s Strategy) core.Variant {
	switch s {
	case StaircaseNoSkip:
		return core.NoSkip
	case StaircaseSkip:
		return core.Skip
	default:
		return core.SkipEstimate
	}
}

// shouldPush decides name-test pushdown: forced by PushAlways/PushNever,
// otherwise delegated to the cost model (cost.go). bound is the
// estimateJoinTouches bound for the step and workers the parallelism
// the full-document join would run with, which lowers its effective
// cost.
func (e *Engine) shouldPush(tag string, bound int64, mode Pushdown, workers int) bool {
	switch mode {
	case PushAlways:
		return true
	case PushNever:
		return false
	default:
		return e.costPushdown(tag, bound, workers)
	}
}

// filterTest filters nodes by the node test in place (the slice is
// reused) and returns the filtered prefix.
func (e *Engine) filterTest(a axis.Axis, test xpath.NodeTest, nodes []int32) []int32 {
	principal := doc.Elem
	if a == axis.Attribute {
		principal = doc.Attr
	}
	out := nodes[:0]
	for _, v := range nodes {
		k := e.d.KindOf(v)
		// Axis-level kind filtering for axes evaluated outside the
		// staircase join (child, self, siblings): attributes appear
		// only on the attribute axis.
		if a != axis.Attribute && k == doc.Attr {
			continue
		}
		switch test.Kind {
		case xpath.TestName:
			if k == principal && e.d.Name(v) == test.Name {
				out = append(out, v)
			}
		case xpath.TestAny:
			if k == principal {
				out = append(out, v)
			}
		case xpath.TestNode:
			out = append(out, v)
		case xpath.TestText:
			if k == doc.Text {
				out = append(out, v)
			}
		case xpath.TestComment:
			if k == doc.Comment {
				out = append(out, v)
			}
		case xpath.TestPI:
			if k == doc.PI && (test.Name == "" || e.d.Name(v) == test.Name) {
				out = append(out, v)
			}
		}
	}
	return out
}

// sortDedup sorts a pre-rank slice and removes duplicates in place.
func sortDedup(nodes []int32) []int32 {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	out := nodes[:0]
	for i, v := range nodes {
		if i > 0 && v == nodes[i-1] {
			continue
		}
		out = append(out, v)
	}
	return out
}
