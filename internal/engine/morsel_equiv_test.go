package engine

// Morsel≡serial differential at the engine level: streaming execution
// with MorselWorkers > 1 must produce byte-identical node sequences to
// serial streaming and to batch evaluation, across random documents,
// random queries, worker counts and limits. Run under -race this also
// stresses the morsel worker pool's claim/publish/close protocol.

import (
	"context"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"staircase/internal/xpath"
)

// quickTrials returns the iteration count for the heavyweight property
// suites: the default in ordinary runs, or STAIRCASE_QUICK_MAX when
// set (the nightly CI job cranks the suites up through this knob).
func quickTrials(def int) int {
	if s := os.Getenv("STAIRCASE_QUICK_MAX"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func TestMorselStreamingEqualsSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1312))
	trials := quickTrials(4)
	for trial := 0; trial < trials; trial++ {
		d := randomDoc(rng, 1500)
		e := New(d)
		for n := 0; n < 30; n++ {
			q := randQuery(rng)
			if _, err := xpath.ParseQuery(q); err != nil {
				continue
			}
			serial, err := e.PrepareString(q, &Options{})
			if err != nil {
				t.Fatalf("prepare %s: %v", q, err)
			}
			want, err := drainPrepared(serial)
			if err != nil {
				t.Fatalf("serial drain %s: %v", q, err)
			}
			for _, workers := range []int{2, 4, 8} {
				opts := &Options{MorselWorkers: workers}
				p, err := e.PrepareString(q, opts)
				if err != nil {
					t.Fatalf("prepare %s workers=%d: %v", q, workers, err)
				}
				got, err := drainPrepared(p)
				if err != nil {
					t.Fatalf("morsel drain %s workers=%d: %v", q, workers, err)
				}
				if !eq32(got, want) {
					t.Fatalf("morsel != serial for %s workers=%d:\n got %v\nwant %v",
						q, workers, got, want)
				}
				// Early termination joins the worker pool via Close.
				lim := 1 + rng.Intn(len(want)+2)
				lr, err := p.EvalLimit(context.Background(), lim)
				if err != nil {
					t.Fatalf("morsel EvalLimit(%d) %s: %v", lim, q, err)
				}
				wantPrefix := want
				if lim < len(want) {
					wantPrefix = want[:lim]
				}
				if !eq32(lr.Nodes, wantPrefix) {
					t.Fatalf("morsel EvalLimit(%d) != serial prefix for %s workers=%d",
						lim, q, workers)
				}
			}
		}
	}
}

// TestMorselExplainReportsTasks pins the EXPLAIN surface: a morsel run
// over a large descendant scan must report morsels= on the join.
func TestMorselExplainReportsTasks(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	d := randomDoc(rng, 9000)
	e := New(d)
	p, err := e.PrepareString("//node()", &Options{MorselWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	text, err := p.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "morsels=") {
		t.Fatalf("EXPLAIN lacks morsels= line:\n%s", text)
	}
	if !strings.Contains(text, "morsel-workers=4") {
		t.Fatalf("EXPLAIN lacks morsel-workers=4 header:\n%s", text)
	}
}
