package engine

// Golden EXPLAIN tests: committed plan-tree snapshots for the paper's
// benchmark queries Q1 and Q2 (Table 1) and the manually rewritten Q2
// of §4.4, in text and JSON form, over the fixed test fixture. Any
// planner change that alters operator selection, pushdown decisions,
// cardinalities or rendering shows up as a golden diff. Regenerate
// deliberately with
//
//	go test ./internal/engine -run TestExplainGolden -update-golden
import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden EXPLAIN snapshots")

var goldenQueries = []struct {
	name  string
	query string
}{
	{"q1", "/descendant::profile/descendant::education"},
	{"q2", "/descendant::increase/ancestor::bidder"},
	{"q2_rewritten", "/descendant::bidder[descendant::increase]"},
	{"value_range", "//open_auction[current > 10]"},
	{"value_contains", "//person[contains(name, 'aro')]/name"},
	// The greedy ordering pass hoists the exact-count value semijoin
	// above the source-first unknown-cost predicate filter.
	{"reordered", "//person[profile][name = 'Carol']"},
	// A fragment statistic proves the branch empty at compile time: the
	// plan short-circuits under an EmptyResult operator.
	{"empty_intermediate", "//annotation/ancestor::person"},
}

func TestExplainGolden(t *testing.T) {
	e := New(fixture(t))
	for _, tc := range goldenQueries {
		text, err := e.Explain(tc.query, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.query, err)
		}
		jsonOut, err := e.ExplainJSON(tc.query, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.query, err)
		}
		checkGolden(t, "explain_"+tc.name+".txt", []byte(text))
		checkGolden(t, "explain_"+tc.name+".json", append(jsonOut, '\n'))
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update-golden): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: plan changed.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}
