package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"staircase/internal/axis"
	"staircase/internal/core"
	"staircase/internal/xmark"
	"staircase/internal/xpath"
)

// TestQuickIndexPushdownEqualsScanThenFilter is the index acceptance
// bar: for random documents, index-backed JoinNodeList pushdown is
// byte-identical to scan-then-filter evaluation for every partitioning
// axis × staircase variant × pushable node test — with the shared
// index and with the Options.NoIndex scan fallback.
func TestQuickIndexPushdownEqualsScanThenFilter(t *testing.T) {
	axes := []axis.Axis{axis.Descendant, axis.Ancestor, axis.Following, axis.Preceding}
	variants := []Strategy{Staircase, StaircaseSkip, StaircaseNoSkip}
	tests := []xpath.NodeTest{
		{Kind: xpath.TestName, Name: "p"},
		{Kind: xpath.TestName, Name: "q"},
		{Kind: xpath.TestName, Name: "nosuchtag"},
		{Kind: xpath.TestText},
		{Kind: xpath.TestComment},
	}
	f := func(seed int64, ctxBits uint16, axisPick, variantPick, testPick uint8) bool {
		rng := rand.New(rand.NewSource(seed ^ int64(ctxBits)<<17))
		d := randomDoc(rng, 60+int(uint16(seed)%150))
		var context []int32
		for v := 0; v < d.Size(); v++ {
			if rng.Intn(2+int(ctxBits%10)) == 0 {
				context = append(context, int32(v))
			}
		}
		if len(context) == 0 {
			context = []int32{int32(int(ctxBits) % d.Size())}
		}
		a := axes[axisPick%4]
		strat := variants[variantPick%3]
		test := tests[testPick%uint8(len(tests))]
		e := New(d)
		path := xpath.Path{Steps: []xpath.Step{{Axis: a, Test: test}}}

		want, err := e.Eval(path, context, &Options{Strategy: strat, Pushdown: PushNever})
		if err != nil {
			return false
		}
		for _, opts := range []*Options{
			{Strategy: strat, Pushdown: PushAlways},
			{Strategy: strat, Pushdown: PushAlways, NoIndex: true},
			{Strategy: strat, Pushdown: PushAuto},
			{Strategy: strat, Pushdown: PushAuto, NoIndex: true},
		} {
			got, err := e.Eval(path, context, opts)
			if err != nil || !eq32(got.Nodes, want.Nodes) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentPushdownOneEngine is the -race regression test for the
// shared index: one engine queried from many goroutines with name-test
// pushdown forced, so every goroutine races for the first index use.
// With the old per-engine lazy tag-list map this was the contended
// path; with the shared immutable index there is nothing left to race
// on (the build itself is serialised inside doc.TagIndex).
func TestConcurrentPushdownOneEngine(t *testing.T) {
	d, err := xmark.Generate(xmark.Config{SizeMB: 0.2, Seed: 33, KeepValues: true})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"/descendant::profile/descendant::education",
		"/descendant::increase/ancestor::bidder",
		"//person//education",
		"//bidder/following::item",
		"//bidder/preceding::increase",
		"//person/name/text()",
	}
	// Fresh document + engine per mode so the index build itself is
	// raced, not just the reads.
	for _, pd := range []Pushdown{PushAlways, PushAuto} {
		d2, err := xmark.Generate(xmark.Config{SizeMB: 0.2, Seed: 33, KeepValues: true})
		if err != nil {
			t.Fatal(err)
		}
		e := New(d2)
		ref := New(d)
		want := map[string][]int32{}
		for _, q := range queries {
			r, err := ref.EvalString(q, &Options{Pushdown: PushNever})
			if err != nil {
				t.Fatal(err)
			}
			want[q] = r.Nodes
		}
		var wg sync.WaitGroup
		errs := make(chan error, 64)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 4; i++ {
					q := queries[(w+i)%len(queries)]
					r, err := e.EvalString(q, &Options{Pushdown: pd})
					if err != nil {
						errs <- fmt.Errorf("%s: %w", q, err)
						return
					}
					if !eq32(r.Nodes, want[q]) {
						errs <- fmt.Errorf("%s: concurrent pushdown diverged", q)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	}
}

// TestKindTestPushdown: the index's kind lists let text()/comment()
// steps run as fragment joins; check the step report records the
// pushdown and that results match the filter path.
func TestKindTestPushdown(t *testing.T) {
	d, err := xmark.Generate(xmark.Config{SizeMB: 0.2, Seed: 12, KeepValues: true})
	if err != nil {
		t.Fatal(err)
	}
	e := New(d)
	q := "/descendant::person/descendant::text()"
	want, err := e.EvalString(q, &Options{Pushdown: PushNever})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.EvalString(q, &Options{Pushdown: PushAlways})
	if err != nil {
		t.Fatal(err)
	}
	if !eq32(got.Nodes, want.Nodes) {
		t.Fatalf("kind-test pushdown changed the result: %d vs %d nodes", len(got.Nodes), len(want.Nodes))
	}
	last := got.Steps[len(got.Steps)-1]
	if !last.Pushed || !last.Indexed {
		t.Fatalf("text() step not index-pushed: %+v", last)
	}
}

// TestExplainShowsIndexStrategy: EXPLAIN must name the fragment source
// — shared index with its pre span, or the scan fallback.
func TestExplainShowsIndexStrategy(t *testing.T) {
	d, err := xmark.Generate(xmark.Config{SizeMB: 0.2, Seed: 12, KeepValues: true})
	if err != nil {
		t.Fatal(err)
	}
	e := New(d)
	out, err := e.Explain("/descendant::profile/descendant::education", &Options{Pushdown: PushAlways})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shared tag/kind index") || !strings.Contains(out, "pre span [") {
		t.Fatalf("explain missing index-hit strategy:\n%s", out)
	}
	out, err = e.Explain("/descendant::profile/descendant::education", &Options{Pushdown: PushAlways, NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "name-column scan, index disabled") {
		t.Fatalf("explain missing scan fallback note:\n%s", out)
	}
}

// TestIndexedFragmentMatchesCoreJoin pins the engine's fragment source
// to core.JoinNodeList over the document index — the exact §4.4
// rewrite — on a non-random document for easier debugging.
func TestIndexedFragmentMatchesCoreJoin(t *testing.T) {
	d := shred(t, `<r><p><q/><q><p/></q></p><q/><p><s/><q/></p></r>`)
	id, ok := d.Names().Lookup("q")
	if !ok {
		t.Fatal("no q")
	}
	ctx := []int32{0}
	want, err := core.JoinNodeList(d, axis.Descendant, d.TagIndex().Tag(id), ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := New(d)
	res, err := e.EvalString("/descendant::q", &Options{Pushdown: PushAlways})
	if err != nil {
		t.Fatal(err)
	}
	if !eq32(res.Nodes, want) {
		t.Fatalf("engine fragment join diverges from core: %v vs %v", res.Nodes, want)
	}
	if !res.Steps[0].Pushed || !res.Steps[0].Indexed {
		t.Fatalf("step not index-pushed: %+v", res.Steps[0])
	}
}
