package engine

import (
	"testing"

	"staircase/internal/axis"
	"staircase/internal/doc"
	"staircase/internal/xmark"
)

func TestCostModelPushesSelectiveTags(t *testing.T) {
	d, err := xmark.Generate(xmark.Config{SizeMB: 0.3, Seed: 9, KeepValues: true})
	if err != nil {
		t.Fatal(err)
	}
	e := New(d)
	root := []int32{d.Root()}

	// `education` is rare; the whole-document descendant join from the
	// root would touch everything => push.
	if !shouldPushTag(e, "education", e.estimateJoinTouches(axis.Descendant, root), PushAuto, 1) {
		t.Error("expected pushdown for selective tag from root context")
	}
	// Absent tag: trivially pushed (empty fragment).
	if !shouldPushTag(e, "nosuchtag", e.estimateJoinTouches(axis.Descendant, root), PushAuto, 1) {
		t.Error("expected pushdown for absent tag")
	}
	// Forced modes override the model.
	if shouldPushTag(e, "education", e.estimateJoinTouches(axis.Descendant, root), PushNever, 1) {
		t.Error("PushNever must not push")
	}
	if !shouldPushTag(e, "nosuchtag", e.estimateJoinTouches(axis.Descendant, root), PushAlways, 1) {
		t.Error("PushAlways must push")
	}
}

// shouldPushTag mirrors the evaluation path's pushdown decision for a
// tag name: exact fragment cardinality from the shared index, then the
// shouldPush policy/cost gate.
func shouldPushTag(e *Engine, tag string, bound int64, mode Pushdown, workers int) bool {
	var frag int64
	if id, ok := e.Document().Names().Lookup(tag); ok {
		frag = int64(e.Document().TagIndex().TagCount(id))
	}
	return shouldPush(frag, bound, mode, workers)
}

func TestCostModelAvoidsPushForTinyContexts(t *testing.T) {
	d, err := xmark.Generate(xmark.Config{SizeMB: 0.3, Seed: 9, KeepValues: true})
	if err != nil {
		t.Fatal(err)
	}
	e := New(d)
	// A context of one small-subtree leaf: the full join touches a
	// handful of nodes, while the `item` fragment is large => no push.
	r, err := e.EvalString("//education", nil)
	if err != nil || len(r.Nodes) == 0 {
		t.Fatalf("no education nodes: %v", err)
	}
	leaf := r.Nodes[0]
	if d.SubtreeSize(leaf) > 4 {
		t.Skip("education unexpectedly large")
	}
	if shouldPushTag(e, "item", e.estimateJoinTouches(axis.Descendant, []int32{leaf}), PushAuto, 1) {
		t.Error("pushed a large fragment for a tiny context subtree")
	}
}

func TestEstimateJoinTouchesBounds(t *testing.T) {
	d, err := xmark.Generate(xmark.Config{SizeMB: 0.2, Seed: 3, KeepValues: true})
	if err != nil {
		t.Fatal(err)
	}
	e := New(d)
	n := int64(d.Size())
	root := []int32{d.Root()}
	// From the root, the descendant bound saturates at the document.
	if got := e.estimateJoinTouches(axis.Descendant, root); got != n {
		t.Errorf("descendant estimate from root = %d, want %d", got, n)
	}
	// Ancestor bound never exceeds the last context pre rank.
	last := int32(d.Size() - 1)
	if got := e.estimateJoinTouches(axis.Ancestor, []int32{last}); got > int64(last) {
		t.Errorf("ancestor estimate %d > %d", got, last)
	}
	// Following/preceding estimates are complementary-ish regions.
	mid := int32(d.Size() / 2)
	f := e.estimateJoinTouches(axis.Following, []int32{mid})
	p := e.estimateJoinTouches(axis.Preceding, []int32{mid})
	if f <= 0 || p <= 0 || f > n || p > n {
		t.Errorf("following/preceding estimates out of range: %d, %d", f, p)
	}
	if e.estimateJoinTouches(axis.Following, nil) != 0 {
		t.Error("empty context should cost 0")
	}
	if e.estimateJoinTouches(axis.Preceding, nil) != 0 {
		t.Error("empty context should cost 0")
	}
}

func TestComputeStats(t *testing.T) {
	d, err := doc.ShredString(`<r a="1"><x>t</x><x/><!--c--><?p d?></r>`)
	if err != nil {
		t.Fatal(err)
	}
	st := d.ComputeStats()
	if st.Nodes != 7 || st.Elements != 3 || st.Attributes != 1 ||
		st.Texts != 1 || st.Comments != 1 || st.PIs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.TagCounts["x"] != 2 || st.TagCounts["r"] != 1 {
		t.Fatalf("tag counts = %v", st.TagCounts)
	}
	// Fanout counts element+text children: r has x, x (comment and PI
	// are not counted).
	if st.MaxFanout != 2 {
		t.Fatalf("fanout = %d, want 2", st.MaxFanout)
	}
	top := st.TopTags(1)
	if len(top) != 1 || top[0].Tag != "x" || top[0].Count != 2 {
		t.Fatalf("TopTags = %v", top)
	}
	// Deepest node is the text inside <x>: level 2.
	if st.Height != 2 {
		t.Fatalf("height = %d, want 2", st.Height)
	}
	if st.AvgLevel <= 0 {
		t.Fatalf("avg level = %f", st.AvgLevel)
	}
}
