package engine

// EXPLAIN renders the optimized physical plan the engine runs for a
// query — the counterpart of the DB2 plan analysis in the paper's
// Figure 3, now produced by the plan compiler: the operator tree with
// the rewrite rules that fired, each operator's fragment source
// (shared tag/kind index vs name-column scan), the pushdown and
// parallel decisions with the cost model's bounds, and per-operator
// cardinalities.
//
// The context sizes the cost model decides with are unknown before
// execution, so Explain *executes the plan* (plans in this engine are
// cheap to run relative to parsing a 100 MB document) and reports the
// actual decision taken and the actual cardinality at each operator,
// next to the compile-time estimates.

// Explain returns the executed plan tree in text form.
func (e *Engine) Explain(query string, opts *Options) (string, error) {
	p, err := e.PrepareString(query, opts)
	if err != nil {
		return "", err
	}
	return p.Explain()
}

// ExplainJSON returns the executed plan tree in JSON form.
func (e *Engine) ExplainJSON(query string, opts *Options) ([]byte, error) {
	p, err := e.PrepareString(query, opts)
	if err != nil {
		return nil, err
	}
	return p.ExplainJSON()
}
