package engine

import (
	"fmt"
	"runtime"
	"strings"

	"staircase/internal/axis"
	"staircase/internal/doc"
	"staircase/internal/index"
	"staircase/internal/xpath"
)

// Explain renders the physical plan the engine would run for a query —
// the counterpart of the DB2 plan analysis in the paper's Figure 3.
// For each location step it shows the chosen operator (staircase join
// variant, naive region queries, or the B-tree semijoin), the
// name-test pushdown decision with the cost model's estimates, and the
// post-processing the operator saves or needs (unique/sort).
//
// The context sizes used by the cost model are unknown before
// execution, so Explain *evaluates the path step by step* (plans in
// this engine are cheap to run relative to parsing a 100 MB document)
// and reports the actual decision taken at each step.
func (e *Engine) Explain(query string, opts *Options) (string, error) {
	q, err := xpath.ParseQuery(query)
	if err != nil {
		return "", err
	}
	if opts == nil {
		opts = &Options{}
	}
	var sb strings.Builder
	for pi, p := range q.Paths {
		if len(q.Paths) > 1 {
			fmt.Fprintf(&sb, "union branch %d: %s\n", pi+1, p)
		}
		if err := e.explainPath(&sb, p, opts); err != nil {
			return "", err
		}
		if len(q.Paths) > 1 {
			sb.WriteString("merge-union (document order preserved)\n")
		}
	}
	return sb.String(), nil
}

func (e *Engine) explainPath(sb *strings.Builder, p xpath.Path, opts *Options) error {
	cur := []int32{e.d.Root()}
	for i, step := range p.Steps {
		rep := StepReport{}
		var next []int32
		var err error
		if i == 0 && p.Absolute && e.d.KindOf(e.d.Root()) != doc.VRoot {
			next, err = e.evalDocRootStep(step, opts, &rep)
		} else {
			next, err = e.evalStep(step, cur, opts, &rep)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(sb, "step %d: %s\n", i+1, step)
		fmt.Fprintf(sb, "  operator: %s\n", e.describeOperator(step, cur, opts, rep))
		fmt.Fprintf(sb, "  cardinality: %d context -> %d result\n", len(cur), len(next))
		if step.Axis.Partitioning() {
			switch opts.Strategy {
			case Staircase, StaircaseSkip, StaircaseNoSkip:
				fmt.Fprintf(sb, "  properties: no duplicates, document order (no unique/sort needed)\n")
				if rep.Core.ContextSize > 0 {
					fmt.Fprintf(sb, "  pruning: %d -> %d staircase partitions\n",
						rep.Core.ContextSize, rep.Core.PrunedSize)
					fmt.Fprintf(sb, "  work: scanned %d (copied %d, compared %d), skipped %d\n",
						rep.Core.Scanned, rep.Core.Copied, rep.Core.Compared, rep.Core.Skipped)
					if rep.Core.Workers > 1 {
						fmt.Fprintf(sb, "  parallel: %d workers over %d partitions (disjoint pre ranges, concat in document order)\n",
							rep.Core.Workers, rep.Core.PrunedSize)
					} else if req := opts.Parallelism; req > 1 || req < 0 {
						if req < 0 {
							req = runtime.GOMAXPROCS(0)
						}
						switch {
						case rep.Pushed:
							fmt.Fprintf(sb, "  parallel: n/a (name-test pushdown chose the serial fragment join)\n")
						case req <= 1:
							fmt.Fprintf(sb, "  parallel: n/a (GOMAXPROCS resolves to a single worker)\n")
						case rep.Core.Workers == 1:
							fmt.Fprintf(sb, "  parallel: single chunk (%d staircase partition(s) do not split further)\n",
								rep.Core.PrunedSize)
						default:
							fmt.Fprintf(sb, "  parallel: declined by cost model (step below %d touched nodes per worker)\n",
								int64(minParallelWork))
						}
					}
				}
			default:
				fmt.Fprintf(sb, "  properties: may generate duplicates; plan appends unique over pre-sorted output\n")
			}
		}
		if len(step.Preds) > 0 {
			for _, pred := range step.Preds {
				fmt.Fprintf(sb, "  predicate filter: [%s]\n", pred)
			}
		}
		cur = next
	}
	return nil
}

// describeOperator names the physical operator of a step.
func (e *Engine) describeOperator(step xpath.Step, context []int32, opts *Options, rep StepReport) string {
	a := step.Axis
	if !a.Partitioning() && a != axis.DescendantOrSelf && a != axis.AncestorOrSelf {
		return fmt.Sprintf("positional %s lookup (parent/size columns)", a)
	}
	switch opts.Strategy {
	case Naive:
		return "per-context region queries + sort + unique (tree-unaware)"
	case SQL:
		return "B-tree indexed nested-loop semijoin (Figure 3 plan)"
	case SQLWindow:
		return "B-tree indexed semijoin + Equation(1) window delimiter (§2.1 line 7)"
	}
	variant := map[Strategy]string{
		Staircase:       "estimation-based skipping (Algorithm 4)",
		StaircaseSkip:   "skipping (Algorithm 3)",
		StaircaseNoSkip: "basic scan (Algorithm 2)",
	}[opts.Strategy]
	desc := "staircase join, " + variant
	if list, _, ok := e.pushdownList(step.Test, opts); ok {
		base := a
		if a == axis.DescendantOrSelf {
			base = axis.Descendant
		}
		if a == axis.AncestorOrSelf {
			base = axis.Ancestor
		}
		testName := step.Test.String()
		full := e.estimateJoinTouches(base, context)
		pushed := rep.Pushed || (base.Partitioning() && opts.Pushdown != PushNever &&
			shouldPush(int64(len(list)), full, opts.Pushdown, parallelWorkersFor(opts, full)))
		switch {
		case pushed && !opts.NoIndex:
			source := "shared tag/kind index"
			if min, max, nonEmpty := index.Span(list); nonEmpty {
				source += fmt.Sprintf(", pre span [%d..%d]", min, max)
			}
			desc += fmt.Sprintf("\n  pushdown: test %s pushed below join (fragment %d < full-join bound %d; %s)",
				testName, len(list), full, source)
		case pushed:
			desc += fmt.Sprintf("\n  pushdown: test %s pushed below join (fragment %d < full-join bound %d; name-column scan, index disabled)",
				testName, len(list), full)
		case base.Partitioning():
			desc += fmt.Sprintf("\n  pushdown: test %s applied after join (mode %s, fragment %d vs full-join bound %d)",
				testName, opts.Pushdown, len(list), full)
		}
	}
	return desc
}
