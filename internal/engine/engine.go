// Package engine evaluates XPath location paths over pre/post encoded
// documents, with the staircase join as the axis-step workhorse.
//
// The engine is the evaluation façade over the plan compiler
// (internal/plan): Eval and EvalString build the logical plan, apply
// the rewrite rules, compile the physical plan against the document
// and execute it; Compile returns a reusable parse+rewrite handle and
// Prepare a bound physical plan for callers that run one query many
// times (the query server, benchmark loops). A per-step strategy knob
// selects between the staircase join variants and the tree-unaware
// baselines, which is exactly the comparison matrix of the paper's
// Experiments 1–3. The pre-plan recursive step interpreter is kept,
// verbatim, behind Options.LegacyEval as the oracle of the plan ≡
// legacy differential property suite (plan_equiv_test.go).
//
// Name-test pushdown (§4.4): for a step like ancestor::bidder the
// engine may rewrite
//
//	nametest(staircasejoin_anc(doc, cs), "bidder")
//	  -> staircasejoin_anc(nametest(doc, "bidder"), cs)
//
// running the join over the (much smaller) tag node list. A simple
// selectivity heuristic decides automatically — the cost-model stub the
// paper lists as future research — and can be overridden for ablation.
//
// Parallel execution (§3.2/§6): Options.Parallelism > 1 evaluates the
// four partitioning axes with the partition-parallel staircase join
// (core.ParallelJoin). The cost model clamps the requested worker count
// so that each worker has enough estimated scan work to amortise the
// fan-out, and factors the per-worker scan bound into the name-test
// pushdown decision. Results are identical to serial evaluation —
// pruning leaves staircase partitions that scan disjoint document
// regions, so per-worker results concatenate in document order.
//
// Pushdown fragments come from the document's shared tag/kind index
// (doc.TagIndex, internal/index): built at most once per document —
// or loaded straight from an SCJ2 file — and shared lock-free by every
// engine over the document, so no engine ever rescans the name column.
// Options.NoIndex restores the pre-index behaviour (an O(n) scan per
// pushed step) for ablation; results are identical either way.
package engine

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"staircase/internal/axis"
	"staircase/internal/baseline"
	"staircase/internal/core"
	"staircase/internal/doc"
	"staircase/internal/plan"
	"staircase/internal/xpath"
)

// Strategy selects the axis-step algorithm for partitioning axes. It
// is an alias of plan.Strategy: the planner owns the strategy space,
// the engine re-exports it for its callers.
type Strategy = plan.Strategy

const (
	// Staircase is the paper's full configuration: staircase join with
	// estimation-based skipping.
	Staircase = plan.Staircase
	// StaircaseSkip uses plain skipping (Algorithm 3).
	StaircaseSkip = plan.StaircaseSkip
	// StaircaseNoSkip uses the basic algorithm (Algorithm 2).
	StaircaseNoSkip = plan.StaircaseNoSkip
	// Naive evaluates one region query per context node and removes
	// duplicates afterwards (Experiment 1's strawman).
	Naive = plan.Naive
	// SQL mimics the tree-unaware indexed plan of Figure 3.
	SQL = plan.SQL
	// SQLWindow is SQL plus the Equation (1) window predicate (§2.1).
	SQLWindow = plan.SQLWindow
)

// Pushdown controls name-test pushdown for staircase strategies (an
// alias of plan.Pushdown).
type Pushdown = plan.Pushdown

const (
	// PushAuto decides by tag selectivity (the cost-model heuristic).
	PushAuto = plan.PushAuto
	// PushAlways forces pushdown whenever a name test is present.
	PushAlways = plan.PushAlways
	// PushNever evaluates the join first and filters afterwards.
	PushNever = plan.PushNever
)

// AutoParallelism requests one staircase-join worker per available CPU
// (runtime.GOMAXPROCS) when assigned to Options.Parallelism.
const AutoParallelism = -1

// Options configures evaluation. The zero value is the paper default:
// full staircase join with automatic pushdown, serial execution.
type Options struct {
	Strategy Strategy
	Pushdown Pushdown
	// Parallelism is the worker count for partition-parallel staircase
	// joins on the descendant/ancestor/following/preceding axes: 0 or 1
	// evaluates serially, > 1 uses at most that many workers, and any
	// negative value (canonically AutoParallelism) uses GOMAXPROCS. The
	// cost model may use fewer workers on steps too small to amortise
	// the goroutine fan-out; StepReport.Core.Workers records the count
	// actually used.
	Parallelism int
	// MorselWorkers is the worker count for morsel-driven parallel
	// execution inside streaming (cursor-based) evaluation: > 1 lets a
	// single cursor pipeline cut each staircase join into many small
	// tasks drained by that many workers through an order-restoring
	// merge, a negative value (canonically AutoParallelism) uses
	// GOMAXPROCS. Results are byte-identical to serial cursors; batch
	// evaluation is unaffected (it uses Parallelism).
	MorselWorkers int
	// NoIndex disables the document's shared tag/kind index for this
	// evaluation: pushdown fragments are rebuilt with an O(n) column
	// scan per step (the pre-index behaviour). Results are identical;
	// the knob exists for ablation and the rescan-baseline benchmarks.
	NoIndex bool
	// NoValueIndex disables the document's value index for this
	// evaluation: comparison and contains() predicates fall back to
	// per-node evaluation instead of value-fragment semijoins. Results
	// are identical; the knob exists for ablation and the value-rescan
	// benchmarks.
	NoValueIndex bool
	// NoReorder disables the planner's statistics-driven greedy
	// ordering of commutable filter chains, the empty-fragment
	// short-circuit and mid-flight adaptive re-planning: predicates
	// evaluate strictly in source order, semijoins always sweep their
	// fragment. Results are identical; the knob exists for ablation and
	// the ordering benchmarks.
	NoReorder bool
	// LegacyEval bypasses the plan compiler and evaluates with the
	// pre-plan recursive step interpreter. Results are identical — the
	// property suite asserts plan ≡ legacy across random queries — and
	// the knob exists only for that differential testing; it will be
	// removed once the interpreter is retired.
	LegacyEval bool
}

// planOptions converts engine options to planner options.
func planOptions(o *Options) *plan.Options {
	return &plan.Options{
		Strategy:      o.Strategy,
		Pushdown:      o.Pushdown,
		Parallelism:   o.Parallelism,
		MorselWorkers: o.MorselWorkers,
		NoIndex:       o.NoIndex,
		NoValueIndex:  o.NoValueIndex,
		NoReorder:     o.NoReorder,
	}
}

// StepReport records per-step evaluation statistics.
type StepReport struct {
	// Step is the canonical rendering of the location step.
	Step string
	// Axis of the step.
	Axis axis.Axis
	// InputSize and OutputSize are the context and result sequence
	// lengths (after predicates).
	InputSize, OutputSize int
	// Pushed reports whether the name/kind test was pushed below the
	// join; Indexed reports whether the pushed fragment came from the
	// document's shared tag/kind index (false: name-column scan).
	Pushed, Indexed bool
	// Core holds staircase join work counters (staircase strategies,
	// partitioning axes only).
	Core core.Stats
	// Naive holds naive-strategy counters.
	Naive baseline.NaiveStats
	// Duration is the wall-clock time of the step.
	Duration time.Duration
}

// Result is the outcome of a path evaluation.
type Result struct {
	// Nodes is the result sequence: pre ranks in document order,
	// duplicate-free (XPath node-sequence semantics).
	Nodes []int32
	// Steps reports per-step statistics in evaluation order.
	Steps []StepReport
	// Truncated reports that a limited evaluation (EvalFirst,
	// EvalLimit) stopped at its limit while further results may exist.
	Truncated bool
}

// Engine evaluates XPath paths over one document. Engines are safe for
// concurrent use: the only mutable state is the lazily built SQL
// baseline (mutex-guarded); pushdown fragments live in the document's
// shared immutable tag/kind index, not in the engine.
type Engine struct {
	d   *doc.Document
	env *plan.Env
}

// New returns an engine over the document.
func New(d *doc.Document) *Engine {
	return &Engine{d: d, env: plan.NewEnv(d)}
}

// Env returns the plan execution environment of the engine (shared
// per-document runtime state for the planner's operators).
func (e *Engine) Env() *plan.Env { return e.env }

// Document returns the engine's document.
func (e *Engine) Document() *doc.Document { return e.d }

// sqlEngine lazily builds the B-tree indexes of the SQL baseline
// (shared with the planner via the engine's Env).
func (e *Engine) sqlEngine() *baseline.SQLEngine {
	return e.env.SQL()
}

// TagList returns the pre-sorted list of element nodes carrying the
// given name id — the nametest(doc, n) fragment of §4.4, served by the
// document's shared index (built at most once per document).
func (e *Engine) TagList(nameID int32) []int32 {
	return e.d.TagIndex().Tag(nameID)
}

// scanTagList rebuilds a tag fragment with an O(n) column scan — the
// pre-index behaviour behind Options.NoIndex.
func (e *Engine) scanTagList(nameID int32) []int32 {
	kind := e.d.KindSlice()
	name := e.d.NameSlice()
	var list []int32
	for v := 0; v < e.d.Size(); v++ {
		if kind[v] == doc.Elem && name[v] == nameID {
			list = append(list, int32(v))
		}
	}
	return list
}

// scanKindList is scanTagList for a non-element node kind.
func (e *Engine) scanKindList(k doc.Kind) []int32 {
	kind := e.d.KindSlice()
	var list []int32
	for v := 0; v < e.d.Size(); v++ {
		if kind[v] == k {
			list = append(list, int32(v))
		}
	}
	return list
}

// EvalString parses and evaluates a query (a location path, or a union
// of paths combined with '|'). Absolute paths start at the document
// root; relative paths are evaluated with the root as the initial
// context node as well (the conventional CLI behaviour).
func (e *Engine) EvalString(query string, opts *Options) (*Result, error) {
	c, err := Compile(query)
	if err != nil {
		return nil, err
	}
	return e.EvalCompiled(c, opts)
}

// EvalQuery evaluates a union of paths: each path runs independently
// and the node sets merge into one document-ordered duplicate-free
// sequence (XPath '|' semantics). Step reports concatenate in path
// order.
func (e *Engine) EvalQuery(q xpath.Query, context []int32, opts *Options) (*Result, error) {
	if opts == nil {
		opts = &Options{}
	}
	if !opts.LegacyEval {
		return e.evalPlan(q, context, opts)
	}
	if len(q.Paths) == 1 {
		return e.Eval(q.Paths[0], context, opts)
	}
	res := &Result{}
	for _, p := range q.Paths {
		r, err := e.Eval(p, context, opts)
		if err != nil {
			return nil, err
		}
		res.Nodes = core.MergeOrSelf(res.Nodes, r.Nodes)
		res.Steps = append(res.Steps, r.Steps...)
	}
	return res, nil
}

// evalPlan evaluates a query through the plan pipeline: build the
// logical plan, rewrite, compile against this document, execute.
func (e *Engine) evalPlan(q xpath.Query, context []int32, opts *Options) (*Result, error) {
	l := plan.BuildLogical(q)
	plan.Rewrite(l)
	pl, err := plan.Compile(e.env, l, planOptions(opts))
	if err != nil {
		return nil, err
	}
	r, err := pl.Run(context)
	if err != nil {
		return nil, err
	}
	return planResult(r), nil
}

// planResult converts a plan execution result to the engine's report
// form (the two are field-compatible by construction).
func planResult(r *plan.Result) *Result {
	res := &Result{Nodes: r.Nodes, Steps: make([]StepReport, len(r.Steps)), Truncated: r.Truncated}
	for i, s := range r.Steps {
		res.Steps[i] = StepReport{
			Step:       s.Step,
			Axis:       s.Axis,
			InputSize:  s.InputSize,
			OutputSize: s.OutputSize,
			Pushed:     s.Pushed,
			Indexed:    s.Indexed,
			Core:       s.Core,
			Naive:      s.Naive,
			Duration:   s.Duration,
		}
	}
	return res
}

// Eval evaluates a parsed path against an initial context sequence
// (document order, duplicate free). Absolute paths reset the context
// to the document root. The default route is the plan pipeline
// (build, rewrite, compile, execute); Options.LegacyEval selects the
// pre-plan recursive step interpreter below, kept for differential
// testing.
func (e *Engine) Eval(p xpath.Path, context []int32, opts *Options) (*Result, error) {
	if opts == nil {
		opts = &Options{}
	}
	if !opts.LegacyEval {
		return e.evalPlan(xpath.Query{Paths: []xpath.Path{p}}, context, opts)
	}
	cur := context
	if p.Absolute {
		cur = []int32{e.d.Root()}
	}
	res := &Result{}
	for i, step := range p.Steps {
		rep := StepReport{Step: step.String(), Axis: step.Axis, InputSize: len(cur)}
		start := time.Now()
		var next []int32
		var err error
		if i == 0 && p.Absolute && e.d.KindOf(e.d.Root()) != doc.VRoot {
			// XPath's "/" denotes the document node above the root
			// element, which the encoding does not materialise (a
			// virtual root of a collection plays that role when
			// present). Give the first step document-node semantics.
			next, err = e.evalDocRootStep(step, opts, &rep)
		} else {
			next, err = e.evalStep(step, cur, opts, &rep)
		}
		if err != nil {
			return nil, err
		}
		rep.Duration = time.Since(start)
		rep.OutputSize = len(next)
		res.Steps = append(res.Steps, rep)
		cur = next
	}
	res.Nodes = cur
	return res, nil
}

// evalDocRootStep evaluates the first step of an absolute path against
// the implicit document node: its only child is the root element, its
// descendants are all nodes including the root element, and every other
// axis is empty from there.
func (e *Engine) evalDocRootStep(step xpath.Step, opts *Options, rep *StepReport) ([]int32, error) {
	root := e.d.Root()
	var nodes []int32
	var err error
	switch step.Axis {
	case axis.Child:
		nodes = e.filterTest(step.Axis, step.Test, []int32{root})
	case axis.Descendant, axis.DescendantOrSelf:
		nodes, err = e.evalAxisTest(axis.DescendantOrSelf, step.Test, []int32{root}, opts, rep)
		if err != nil {
			return nil, err
		}
	case axis.Self, axis.AncestorOrSelf:
		if step.Test.Kind == xpath.TestNode {
			nodes = []int32{root} // stand-in for the document node
		}
	default:
		// ancestor, parent, siblings, following, preceding, attribute,
		// namespace: empty from the document node.
	}
	if step.Axis.Reverse() {
		for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
			nodes[i], nodes[j] = nodes[j], nodes[i]
		}
	}
	for _, pred := range step.Preds {
		nodes, err = e.applyPredPositional(nodes, pred, opts)
		if err != nil {
			return nil, err
		}
	}
	return sortDedup(nodes), nil
}

// evalStep evaluates one location step including predicates.
func (e *Engine) evalStep(step xpath.Step, context []int32, opts *Options, rep *StepReport) ([]int32, error) {
	if hasPositional(step.Preds) {
		return e.evalStepPositional(step, context, opts, rep)
	}
	nodes, err := e.evalAxisTest(step.Axis, step.Test, context, opts, rep)
	if err != nil {
		return nil, err
	}
	for _, pred := range step.Preds {
		nodes, err = e.filterPred(nodes, pred, opts)
		if err != nil {
			return nil, err
		}
	}
	return nodes, nil
}

// hasPositional reports whether any predicate (also inside not(...))
// is position-sensitive, requiring per-context evaluation.
func hasPositional(preds []xpath.Predicate) bool {
	for _, p := range preds {
		switch q := p.(type) {
		case xpath.Position, xpath.Last:
			return true
		case xpath.Not:
			if hasPositional([]xpath.Predicate{q.Inner}) {
				return true
			}
		case xpath.And:
			if hasPositional(q.Preds) {
				return true
			}
		case xpath.Or:
			if hasPositional(q.Preds) {
				return true
			}
		}
	}
	return false
}

// evalStepPositional evaluates the step context node by context node,
// maintaining XPath proximity positions (reverse axes count backwards).
func (e *Engine) evalStepPositional(step xpath.Step, context []int32, opts *Options, rep *StepReport) ([]int32, error) {
	var all []int32
	for _, c := range context {
		nodes, err := e.evalAxisTest(step.Axis, step.Test, []int32{c}, opts, rep)
		if err != nil {
			return nil, err
		}
		if step.Axis.Reverse() {
			for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
				nodes[i], nodes[j] = nodes[j], nodes[i]
			}
		}
		for _, pred := range step.Preds {
			nodes, err = e.applyPredPositional(nodes, pred, opts)
			if err != nil {
				return nil, err
			}
		}
		all = append(all, nodes...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out := all[:0]
	for i, v := range all {
		if i > 0 && v == all[i-1] {
			continue
		}
		out = append(out, v)
	}
	return append([]int32(nil), out...), nil
}

// applyPredPositional applies one predicate to an axis-ordered node
// sequence of a single context node, maintaining proximity positions:
// each node is tested with its 1-based position and the sequence size
// (XPath semantics; subsequent predicates see renumbered sequences).
func (e *Engine) applyPredPositional(nodes []int32, pred xpath.Predicate, opts *Options) ([]int32, error) {
	var out []int32
	for i, v := range nodes {
		ok, err := e.predHoldsAt(v, pred, i+1, len(nodes), opts)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, v)
		}
	}
	return out, nil
}

// predHoldsAt decides any predicate for a node at a known proximity
// position.
func (e *Engine) predHoldsAt(v int32, pred xpath.Predicate, pos, size int, opts *Options) (bool, error) {
	switch p := pred.(type) {
	case xpath.Position:
		return pos == p.N, nil
	case xpath.Last:
		return pos == size, nil
	case xpath.Not:
		ok, err := e.predHoldsAt(v, p.Inner, pos, size, opts)
		return !ok, err
	case xpath.And:
		for _, q := range p.Preds {
			ok, err := e.predHoldsAt(v, q, pos, size, opts)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case xpath.Or:
		for _, q := range p.Preds {
			ok, err := e.predHoldsAt(v, q, pos, size, opts)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	default:
		return e.predHolds(v, pred, opts)
	}
}

// filterPred filters a document-ordered node set by a non-positional
// predicate.
func (e *Engine) filterPred(nodes []int32, pred xpath.Predicate, opts *Options) ([]int32, error) {
	out := nodes[:0]
	for _, v := range nodes {
		ok, err := e.predHolds(v, pred, opts)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, v)
		}
	}
	return out, nil
}

// predHolds decides a non-positional predicate for one candidate node.
func (e *Engine) predHolds(v int32, pred xpath.Predicate, opts *Options) (bool, error) {
	switch p := pred.(type) {
	case xpath.Exists:
		r, err := e.Eval(p.Path, []int32{v}, opts)
		if err != nil {
			return false, err
		}
		return len(r.Nodes) > 0, nil
	case xpath.Compare:
		r, err := e.Eval(p.Path, []int32{v}, opts)
		if err != nil {
			return false, err
		}
		for _, n := range r.Nodes {
			if xpath.CompareValue(e.d.StringValue(n), p.Op, p.Literal, p.Numeric) {
				return true, nil
			}
		}
		return false, nil
	case xpath.Contains:
		r, err := e.Eval(p.Path, []int32{v}, opts)
		if err != nil {
			return false, err
		}
		for _, n := range r.Nodes {
			if strings.Contains(e.d.StringValue(n), p.Literal) {
				return true, nil
			}
		}
		return false, nil
	case xpath.Not:
		ok, err := e.predHolds(v, p.Inner, opts)
		return !ok, err
	case xpath.And:
		for _, q := range p.Preds {
			ok, err := e.predHolds(v, q, opts)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case xpath.Or:
		for _, q := range p.Preds {
			ok, err := e.predHolds(v, q, opts)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("engine: unsupported predicate %T in set mode", pred)
	}
}
