package engine

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"staircase/internal/axis"
	"staircase/internal/doc"
	"staircase/internal/xpath"
)

// allStrategies is the engine comparison matrix.
var allStrategies = []Strategy{Staircase, StaircaseSkip, StaircaseNoSkip, Naive, SQL, SQLWindow}

func shred(t testing.TB, s string) *doc.Document {
	t.Helper()
	d, err := doc.ShredString(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// specEval is a brute-force reference evaluator: axis.In over all node
// pairs, node tests and predicates applied literally.
func specEval(d *doc.Document, p xpath.Path, context []int32) []int32 {
	cur := context
	if p.Absolute {
		cur = []int32{d.Root()}
	}
	for i, step := range p.Steps {
		if i == 0 && p.Absolute && d.KindOf(d.Root()) != doc.VRoot {
			cur = specDocRootStep(d, step)
			continue
		}
		cur = specStep(d, step, cur)
	}
	return cur
}

// specDocRootStep mirrors the engine's document-node semantics for the
// first step of an absolute path.
func specDocRootStep(d *doc.Document, step xpath.Step) []int32 {
	var nodes []int32
	switch step.Axis {
	case axis.Child:
		if specTest(d, step.Axis, step.Test, d.Root()) {
			nodes = []int32{d.Root()}
		}
	case axis.Descendant, axis.DescendantOrSelf:
		for v := int32(0); int(v) < d.Size(); v++ {
			if d.KindOf(v) != doc.Attr && specTest(d, step.Axis, step.Test, v) {
				nodes = append(nodes, v)
			}
		}
	case axis.Self, axis.AncestorOrSelf:
		if step.Test.Kind == xpath.TestNode {
			nodes = []int32{d.Root()}
		}
	}
	for _, pred := range step.Preds {
		var kept []int32
		for i, v := range nodes {
			if specPred(d, v, pred, i+1, len(nodes)) {
				kept = append(kept, v)
			}
		}
		nodes = kept
	}
	return nodes
}

func specStep(d *doc.Document, step xpath.Step, context []int32) []int32 {
	var all []int32
	for _, c := range context {
		var nodes []int32
		for v := int32(0); int(v) < d.Size(); v++ {
			if axis.In(d, step.Axis, c, v) && specTest(d, step.Axis, step.Test, v) {
				nodes = append(nodes, v)
			}
		}
		if step.Axis.Reverse() {
			for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
				nodes[i], nodes[j] = nodes[j], nodes[i]
			}
		}
		for _, pred := range step.Preds {
			var kept []int32
			for i, v := range nodes {
				if specPred(d, v, pred, i+1, len(nodes)) {
					kept = append(kept, v)
				}
			}
			nodes = kept
		}
		all = append(all, nodes...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var out []int32
	for i, v := range all {
		if i > 0 && v == all[i-1] {
			continue
		}
		out = append(out, v)
	}
	return out
}

func specTest(d *doc.Document, a axis.Axis, test xpath.NodeTest, v int32) bool {
	principal := doc.Elem
	if a == axis.Attribute {
		principal = doc.Attr
	}
	k := d.KindOf(v)
	switch test.Kind {
	case xpath.TestName:
		return k == principal && d.Name(v) == test.Name
	case xpath.TestAny:
		return k == principal
	case xpath.TestNode:
		return true
	case xpath.TestText:
		return k == doc.Text
	case xpath.TestComment:
		return k == doc.Comment
	case xpath.TestPI:
		return k == doc.PI && (test.Name == "" || d.Name(v) == test.Name)
	}
	return false
}

func specPred(d *doc.Document, v int32, pred xpath.Predicate, pos, size int) bool {
	switch p := pred.(type) {
	case xpath.Position:
		return pos == p.N
	case xpath.Last:
		return pos == size
	case xpath.Exists:
		return len(specEval(d, p.Path, []int32{v})) > 0
	case xpath.Compare:
		for _, n := range specEval(d, p.Path, []int32{v}) {
			if xpath.CompareValue(d.StringValue(n), p.Op, p.Literal, p.Numeric) {
				return true
			}
		}
		return false
	case xpath.Contains:
		for _, n := range specEval(d, p.Path, []int32{v}) {
			if strings.Contains(d.StringValue(n), p.Literal) {
				return true
			}
		}
		return false
	case xpath.Not:
		return !specPred(d, v, p.Inner, pos, size)
	case xpath.And:
		for _, q := range p.Preds {
			if !specPred(d, v, q, pos, size) {
				return false
			}
		}
		return true
	case xpath.Or:
		for _, q := range p.Preds {
			if specPred(d, v, q, pos, size) {
				return true
			}
		}
		return false
	}
	return false
}

func eq32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// fixtureXML is a small auction-flavoured document exercising every
// query feature: nesting, attributes, text, repeated tags.
const fixtureXML = `
<site>
  <people>
    <person id="p1"><name>Alice</name><profile><education>BSc</education><age>30</age></profile></person>
    <person id="p2"><name>Bob</name><profile><age>41</age></profile></person>
    <person id="p3"><name>Carol</name><profile><education>PhD</education></profile></person>
  </people>
  <open_auctions>
    <open_auction id="a1">
      <bidder><increase>5</increase></bidder>
      <bidder><increase>10</increase></bidder>
      <current>15</current>
    </open_auction>
    <open_auction id="a2">
      <current>0</current>
    </open_auction>
  </open_auctions>
</site>`

func fixture(t testing.TB) *doc.Document {
	return shred(t, fixtureXML)
}

var fixtureQueries = []string{
	"/descendant::profile/descendant::education",
	"/descendant::increase/ancestor::bidder",
	"/descendant::bidder[descendant::increase]",
	"//person[profile/education]/name",
	"//open_auction[not(descendant::bidder)]",
	"/site/people/person[@id = 'p2']/name",
	"//person[position()=2]",
	"//bidder[last()]",
	"//increase/ancestor-or-self::node()",
	"//education/preceding::person",
	"//person[1]/following::open_auction",
	"//name[. != 'Bob']",
	"//profile/parent::person",
	"//person/child::*",
	"//bidder/following-sibling::bidder",
	"//current/preceding-sibling::node()",
	"//person/attribute::id",
	"//person/@id",
	"/descendant-or-self::increase",
	"//people/descendant::text()",
	"//person[name = 'Carol']/descendant::education",
	"//nosuchtag/descendant::a",
	"//person[profile and name]",
	"//open_auction[bidder or current]/@id",
	"//person[name = 'Alice' or name = 'Bob']/name",
	"//person[profile and not(profile/education)]",
	"//bidder[position()=1 or last()]",
	"//person[name and position()=2]",
	// Value predicates: the value-semijoin rewrite and its fallbacks.
	"//open_auction[current > 10]",
	"//open_auction[current < 1]/@id",
	"//bidder[increase >= 10]",
	"//person[@id >= 'p2']/name",
	"//person[contains(name, 'aro')]/name",
	"//person[profile/age > 35]", // two-step path: PredFilter, not rewritten
	"//name[. > 'Bob']",
	"//increase[self::node() = 5]",
	"//person[not(@id = 'p1')][age <= 100]",
}

func TestEngineMatchesSpecOnFixture(t *testing.T) {
	d := fixture(t)
	for _, q := range fixtureQueries {
		p, err := xpath.Parse(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want := specEval(d, p, []int32{0})
		for _, s := range allStrategies {
			for _, push := range []Pushdown{PushAuto, PushAlways, PushNever} {
				e := New(d)
				got, err := e.EvalString(q, &Options{Strategy: s, Pushdown: push})
				if err != nil {
					t.Fatalf("%s [%v/%v]: %v", q, s, push, err)
				}
				if !eq32(got.Nodes, want) {
					t.Fatalf("%s [%v/%v]:\n got %v\nwant %v", q, s, push, got.Nodes, want)
				}
			}
		}
	}
}

func randomDoc(rng *rand.Rand, n int) *doc.Document {
	b := doc.NewBuilder()
	b.OpenElem("root")
	depth := 1
	tags := []string{"p", "q", "r", "s"}
	for i := 0; i < n; i++ {
		switch r := rng.Intn(10); {
		case r < 5:
			b.OpenElem(tags[rng.Intn(len(tags))])
			if rng.Intn(4) == 0 {
				b.Attr("k", "v")
			}
			depth++
		case r < 7 && depth > 1:
			b.CloseElem()
			depth--
		default:
			b.Text("t")
		}
	}
	for depth > 0 {
		b.CloseElem()
		depth--
	}
	d, err := b.Done()
	if err != nil {
		panic(err)
	}
	return d
}

var randomQueries = []string{
	"/descendant::p/descendant::q",
	"/descendant::q/ancestor::p",
	"//p//q",
	"//p[q]/r",
	"//q/following::r",
	"//r/preceding::q",
	"//p/child::q/child::r",
	"//q[2]",
	"//p[last()]/descendant::text()",
	"//p/ancestor-or-self::p",
	"//q/@k",
	"//p[not(q)]",
	"//r/parent::node()",
	"//p/following-sibling::q",
	"//s/preceding-sibling::*",
}

func TestEngineMatchesSpecOnRandomDocs(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 8; trial++ {
		d := randomDoc(rng, 150)
		e := New(d)
		for _, q := range randomQueries {
			p, err := xpath.Parse(q)
			if err != nil {
				t.Fatal(err)
			}
			want := specEval(d, p, []int32{0})
			for _, s := range allStrategies {
				got, err := e.EvalString(q, &Options{Strategy: s})
				if err != nil {
					t.Fatalf("%s [%v]: %v", q, s, err)
				}
				if !eq32(got.Nodes, want) {
					t.Fatalf("trial %d %s [%v]:\n got %v\nwant %v", trial, q, s, got.Nodes, want)
				}
			}
		}
	}
}

func TestEngineStepReports(t *testing.T) {
	d := fixture(t)
	e := New(d)
	res, err := e.EvalString("/descendant::increase/ancestor::bidder", &Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("steps = %d", len(res.Steps))
	}
	s0, s1 := res.Steps[0], res.Steps[1]
	if s0.Axis != axis.Descendant || s1.Axis != axis.Ancestor {
		t.Fatalf("axes = %v, %v", s0.Axis, s1.Axis)
	}
	if s0.InputSize != 1 || s0.OutputSize != 2 {
		t.Fatalf("step 0 sizes = %d -> %d", s0.InputSize, s0.OutputSize)
	}
	if s1.InputSize != 2 || s1.OutputSize != 2 {
		t.Fatalf("step 1 sizes = %d -> %d", s1.InputSize, s1.OutputSize)
	}
	if s0.Core.Scanned == 0 {
		t.Fatal("staircase stats not collected")
	}
}

func TestEnginePushdownFlagAndEquivalence(t *testing.T) {
	d := fixture(t)
	e := New(d)
	always, err := e.EvalString("/descendant::increase", &Options{Pushdown: PushAlways})
	if err != nil {
		t.Fatal(err)
	}
	never, err := e.EvalString("/descendant::increase", &Options{Pushdown: PushNever})
	if err != nil {
		t.Fatal(err)
	}
	if !always.Steps[0].Pushed {
		t.Fatal("PushAlways did not push")
	}
	if never.Steps[0].Pushed {
		t.Fatal("PushNever pushed")
	}
	if !eq32(always.Nodes, never.Nodes) {
		t.Fatal("pushdown changed the result")
	}
}

func TestEngineRelativeEval(t *testing.T) {
	d := fixture(t)
	e := New(d)
	people, err := e.EvalString("//person", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(people.Nodes) != 3 {
		t.Fatalf("persons = %d", len(people.Nodes))
	}
	names, err := e.Eval(xpath.MustParse("name"), people.Nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(names.Nodes) != 3 {
		t.Fatalf("names = %d", len(names.Nodes))
	}
	var got []string
	for _, n := range names.Nodes {
		got = append(got, d.StringValue(n))
	}
	if strings.Join(got, ",") != "Alice,Bob,Carol" {
		t.Fatalf("names = %v", got)
	}
}

func TestEngineTagListCachedAndSorted(t *testing.T) {
	d := fixture(t)
	e := New(d)
	id, ok := d.Names().Lookup("person")
	if !ok {
		t.Fatal("person not interned")
	}
	l1 := e.TagList(id)
	l2 := e.TagList(id)
	if &l1[0] != &l2[0] {
		t.Fatal("tag list not cached")
	}
	if !sort.SliceIsSorted(l1, func(i, j int) bool { return l1[i] < l1[j] }) {
		t.Fatal("tag list unsorted")
	}
	if len(l1) != 3 {
		t.Fatalf("person list = %v", l1)
	}
}

func TestEngineUnionQueries(t *testing.T) {
	d := fixture(t)
	e := New(d)
	cases := []struct {
		union string
		parts []string
	}{
		{"//education | //increase", []string{"//education", "//increase"}},
		{"//name | //person/@id | //current", []string{"//name", "//person/@id", "//current"}},
		{"//bidder | //bidder", []string{"//bidder"}}, // duplicates merge away
	}
	for _, tc := range cases {
		var want []int32
		for _, part := range tc.parts {
			p, err := xpath.Parse(part)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range specEval(d, p, []int32{0}) {
				want = append(want, v)
			}
		}
		want = dedupSorted(want)
		got, err := e.EvalString(tc.union, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.union, err)
		}
		if !eq32(got.Nodes, want) {
			t.Fatalf("%s:\n got %v\nwant %v", tc.union, got.Nodes, want)
		}
	}
}

func dedupSorted(nodes []int32) []int32 {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	out := nodes[:0]
	for i, v := range nodes {
		if i > 0 && v == nodes[i-1] {
			continue
		}
		out = append(out, v)
	}
	return out
}

func TestEngineParseError(t *testing.T) {
	e := New(fixture(t))
	if _, err := e.EvalString("///", nil); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestEngineNamespaceAxisEmpty(t *testing.T) {
	e := New(fixture(t))
	res, err := e.EvalString("/namespace::node()", nil)
	if err != nil || len(res.Nodes) != 0 {
		t.Fatalf("namespace axis: %v, %v", res, err)
	}
}

func TestStrategyAndPushdownStrings(t *testing.T) {
	for _, s := range allStrategies {
		if s.String() == "" || strings.HasPrefix(s.String(), "Strategy(") {
			t.Errorf("missing name for strategy %d", s)
		}
	}
	for _, p := range []Pushdown{PushAuto, PushAlways, PushNever} {
		if p.String() == "" || strings.HasPrefix(p.String(), "Pushdown(") {
			t.Errorf("missing name for pushdown %d", p)
		}
	}
}
