// Command xpathd is the XPath query daemon: it serves a catalog of
// pre/post encoded documents over an HTTP/JSON API, answering single
// and batched XPath queries concurrently with a shared result cache
// and a bounded worker pool.
//
// Usage:
//
//	xpathd -addr :8080 -doc auction=auction.xml -doc big=big.scj
//	xpathd -addr :8080 -gen demo=1        # generated XMark document
//
// Document sources may be XML text or the SCJ1/SCJ2 binary formats
// written by doc.WriteBinary (xpathq/examples); the format is sniffed
// from the file, and an SCJ2 file loads with its tag/kind pushdown
// index already materialised. -gen name=sizeMB registers a generated
// XMark-style document — handy for demos and load tests without files
// on disk. -index=false disables the shared index (per-query rescans;
// results identical — ablation/ops knob).
//
//	curl -s localhost:8080/query -d '{
//	  "doc": "auction",
//	  "queries": ["/descendant::profile/descendant::education",
//	              "/descendant::increase/ancestor::bidder"]
//	}'
//	curl -s localhost:8080/query -d '{"doc":"auction","query":"//bidder","limit":5}'
//	curl -sN localhost:8080/stream -d '{"doc":"auction","query":"//bidder[descendant::increase]"}'
//	curl -s 'localhost:8080/explain?doc=auction&q=//bidder'
//	curl -s 'localhost:8080/explain?doc=auction&q=//bidder&format=json'
//	curl -s localhost:8080/docs
//	curl -s localhost:8080/metrics
//
// A query limit evaluates through the streaming executor (the join
// kernels stop after the limit-th result), and POST /stream writes
// result batches as NDJSON lines as the kernels produce them. Request
// cancellation (timeouts, client disconnects) propagates into running
// plans and frees their worker-pool slots.
//
// -share-scans (default on) coalesces identical in-flight executions:
// concurrent cache misses on the same (doc, plan, limit) key share one
// pace-car execution, visible as coalesced_queries_total and
// pace_car_handoffs_total in /metrics. -morsel-workers N parallelizes
// inside each streaming cursor with an order-restoring merge; output
// is byte-identical to serial.
//
// Overload and failure behaviour: -request-timeout bounds every
// evaluation (a request may lower it with timeoutMs; expiry answers
// 408), -max-queue bounds the admission queue (beyond it new work is
// shed with 503 + Retry-After, and GET /readyz reports saturation),
// and -max-body-bytes caps request bodies. On SIGINT/SIGTERM the
// daemon drains: /readyz flips to 503 so load balancers stop routing
// here, then in-flight queries and streams finish within
// -drain-timeout. Deterministic fault injection for chaos testing is
// available through the STAIRCASE_FAULTS environment variable (see
// internal/fault).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"staircase"
)

// pairList collects repeatable name=value flags.
type pairList []pair

type pair struct{ name, value string }

func (p *pairList) String() string {
	var parts []string
	for _, kv := range *p {
		parts = append(parts, kv.name+"="+kv.value)
	}
	return strings.Join(parts, ",")
}

func (p *pairList) Set(s string) error {
	name, value, ok := strings.Cut(s, "=")
	if !ok || name == "" || value == "" {
		return fmt.Errorf("want name=value, got %q", s)
	}
	*p = append(*p, pair{name, value})
	return nil
}

func main() {
	var docs, gens pairList
	addr := flag.String("addr", ":8080", "listen address")
	flag.Var(&docs, "doc", "register a document: name=path (XML or SCJ1/SCJ2 binary, repeatable)")
	flag.Var(&gens, "gen", "register a generated XMark document: name=sizeMB (repeatable)")
	cacheMB := flag.Int64("cache-mb", 64, "result cache budget in MB (0 disables)")
	catalogMB := flag.Int64("catalog-mb", 0, "resident document budget in MB (0 = unbounded)")
	workers := flag.Int("workers", 0, "worker budget for query evaluation (0 = GOMAXPROCS)")
	parallel := flag.Int("parallel", 0, "default staircase-join parallelism per query (0/1 serial, -1 all cores)")
	useIndex := flag.Bool("index", true, "keep the shared tag/kind index resident per document (false: per-query column rescans; results identical)")
	useVIndex := flag.Bool("value-index", true, "keep the value index resident per document (false: value predicates re-evaluate per node; results identical)")
	noReorder := flag.Bool("no-reorder", false, "disable greedy filter ordering and adaptive re-planning (source-order predicate evaluation; results identical)")
	shareScans := flag.Bool("share-scans", true, "coalesce identical in-flight executions: concurrent cache misses on one (doc, plan, limit) key share a single pace-car execution")
	morsels := flag.Int("morsel-workers", 0, "default morsel parallelism inside each streaming cursor (0/1 serial, -1 all cores; output identical to serial)")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request evaluation deadline; requests may lower it with timeoutMs, expiry answers 408 (0 = none)")
	maxQueue := flag.Int("max-queue", -1, "admission queue bound: past this many waiting requests new work is shed with 503 + Retry-After (-1 = 8x workers, 0 = unbounded)")
	maxBody := flag.Int64("max-body-bytes", 1<<20, "request body cap on the JSON endpoints")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight requests and streams to finish")
	flag.Parse()

	if len(docs) == 0 && len(gens) == 0 {
		fmt.Fprintln(os.Stderr, "xpathd: no documents; use -doc name=path or -gen name=sizeMB")
		os.Exit(2)
	}

	var catOpts []staircase.CatalogOption
	if !*useIndex {
		catOpts = append(catOpts, staircase.WithoutIndex())
	}
	if !*useVIndex {
		catOpts = append(catOpts, staircase.WithoutValueIndex())
	}
	cat := staircase.NewCatalog(*catalogMB<<20, catOpts...)
	for _, kv := range docs {
		if err := cat.Register(kv.name, kv.value); err != nil {
			fmt.Fprintln(os.Stderr, "xpathd:", err)
			os.Exit(1)
		}
	}
	for _, kv := range gens {
		mb, err := strconv.ParseFloat(kv.value, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xpathd: bad -gen size %q: %v\n", kv.value, err)
			os.Exit(1)
		}
		d, err := staircase.GenerateXMark(mb, 42)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xpathd:", err)
			os.Exit(1)
		}
		if err := cat.Add(kv.name, d); err != nil {
			fmt.Fprintln(os.Stderr, "xpathd:", err)
			os.Exit(1)
		}
	}

	srv := staircase.NewServer(staircase.ServerConfig{
		Catalog:            cat,
		CacheBytes:         *cacheMB << 20,
		Workers:            *workers,
		DefaultParallelism: *parallel,
		NoIndex:            !*useIndex,
		NoValueIndex:       !*useVIndex,
		NoReorder:          *noReorder,
		ShareScans:         *shareScans,
		MorselWorkers:      *morsels,
		RequestTimeout:     *reqTimeout,
		MaxQueue:           *maxQueue,
		MaxBodyBytes:       *maxBody,
	})
	// No WriteTimeout: POST /stream responses legitimately run for as
	// long as the evaluation deadline allows; slow-client protection on
	// the read side comes from the header/body timeouts and the body
	// size cap instead.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	// Shutdown makes ListenAndServe return immediately, so main must
	// wait for the drain to finish before exiting. BeginDrain flips
	// /readyz to 503 first, so load balancers stop sending work before
	// Shutdown starts waiting on the in-flight handlers (including
	// streams, which hold their connection for the whole evaluation).
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "xpathd: draining")
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "xpathd: drain timed out:", err)
		}
	}()

	fmt.Fprintf(os.Stderr, "xpathd: serving %d document(s) on %s\n", len(cat.Names()), *addr)
	if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "xpathd:", err)
		os.Exit(1)
	}
	<-drained
}
