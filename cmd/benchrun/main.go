// Command benchrun regenerates every table and figure of the staircase
// join paper's evaluation (see DESIGN.md for the experiment index), and
// doubles as the CI benchmark-regression gate.
//
// Usage:
//
//	benchrun [-exp all|table1|fig3|fig11a|fig11b|fig11c|fig11d|fig11e|fig11f|window|frag|index|value|order|parallel|copyscan|mpmgjn|storage|server|stream|share]
//	         [-sizes 0.5,1,2,4] [-parallel-size 4] [-workers 1,2,4,8] [-clients 1,2,4,8]
//	         [-parallel N] [-out file] [-json]
//
// -parallel N runs the query-evaluation experiments (fig11b/e/f) with N
// partition-parallel staircase-join workers (-1 = GOMAXPROCS); the
// dedicated "parallel" experiment sweeps -workers explicitly, and the
// "server" experiment sweeps -clients concurrent HTTP clients against
// the xpathd query server (cold vs warm result cache). The "share"
// experiment sweeps -clients identical cold /stream requests through
// the pace-car coalescing registry against the solo fan-out baseline.
//
// Sizes are megabyte equivalents of the XMark-substitute generator; the
// paper sweeps 1.1–1111 MB. Larger sizes reproduce the same shapes with
// more headroom: try -sizes 1,4,16,64 on a machine with a few GB of RAM.
//
// Regression gate:
//
//	benchrun -write-baseline BENCH_baseline.json [-gate-runs 5]
//	benchrun -gate BENCH_baseline.json [-gate-runs 5] [-gate-tol 0.25]
//	         [-gate-out current.json] [-compare-out compare.json]
//
// The gate measures the staircase-join benchmark family (the four
// partitioning-axis joins, Q1/Q2 engine evaluation, the tag/kind
// index family: warm index-backed pushdown, the cold rescan baseline,
// and index construction, and the value-index family: warm value
// fragment semijoin, the per-node re-evaluation baseline, value-index
// construction, and top-1 contains() latency, and the ordering family:
// warm greedy-reordered evaluation, the source-order baseline, and the
// adaptive re-planning cursor drain), takes the fastest
// ns/op of -gate-runs runs
// per benchmark, normalises for the speed difference between the
// baseline host and this host (the family-median ratio), and exits
// non-zero if any benchmark regresses by more than -gate-tol versus
// the baseline. -compare-out records the full per-benchmark comparison
// (baseline, current, raw and normalised ratios, verdict) as JSON — CI
// publishes it as a per-PR artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"staircase/bench"
)

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %w", part, err)
		}
		out = append(out, f)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad worker count %q: %w", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

// runGate executes the benchmark-regression gate and returns the
// process exit code.
func runGate(c *bench.Corpus, baselinePath, writePath, outPath, comparePath string, runs int, tol float64) int {
	if writePath != "" {
		points := bench.RunSmoke(c, runs)
		f, err := os.Create(writePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			return 1
		}
		defer f.Close()
		if err := bench.WriteBaseline(f, points, runs); err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			return 1
		}
		fmt.Printf("wrote %d benchmark points (fastest of %d runs each) to %s\n", len(points), runs, writePath)
		return 0
	}
	f, err := os.Open(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		return 1
	}
	baseline, err := bench.ReadBaseline(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrun: %s: %v\n", baselinePath, err)
		return 1
	}
	points := bench.RunSmoke(c, runs)
	if outPath != "" {
		of, err := os.Create(outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			return 1
		}
		err = bench.WriteBaseline(of, points, runs)
		of.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			return 1
		}
	}
	cmp := bench.Compare(baseline, points, tol)
	for _, p := range cmp.Points {
		switch {
		case p.New:
			fmt.Printf("%-22s %12.0f ns/op  (new vs baseline)\n", p.Name, p.CurrentNs)
		case p.Missing:
			fmt.Printf("%-22s %12s         (in baseline, not measured)\n", p.Name, "-")
		default:
			fmt.Printf("%-22s %12.0f ns/op  (%+.1f%% vs baseline)\n", p.Name, p.CurrentNs, 100*(p.Ratio-1))
		}
	}
	if comparePath != "" {
		// The full baseline-vs-current record: CI publishes it per PR so
		// the perf trajectory of the gated family stays inspectable.
		cf, err := os.Create(comparePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			return 1
		}
		enc := json.NewEncoder(cf)
		enc.SetIndent("", "  ")
		err = enc.Encode(cmp)
		cf.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			return 1
		}
	}
	if !cmp.Passed {
		fmt.Fprintln(os.Stderr, "benchrun: benchmark regression gate FAILED:")
		for _, f := range cmp.Failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		return 1
	}
	fmt.Printf("gate passed: no benchmark regressed by more than %.0f%% (machine scale %.2fx)\n", 100*tol, cmp.Scale)
	return 0
}

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	sizesFlag := flag.String("sizes", "0.5,1,2,4", "document sizes in MB equivalents")
	parSize := flag.Float64("parallel-size", 4, "document size for the parallel and server experiments")
	workersFlag := flag.String("workers", "1,2,4,8", "worker counts for the parallel experiment")
	clientsFlag := flag.String("clients", "1,2,4,8", "client counts for the server experiment")
	parallel := flag.Int("parallel", 0, "staircase-join workers for query experiments: 0/1 = serial, N > 1 = up to N workers, -1 = GOMAXPROCS")
	out := flag.String("out", "", "also write output to this file")
	jsonOut := flag.Bool("json", false, "emit experiment results as JSON instead of formatted tables")
	gate := flag.String("gate", "", "run the benchmark-regression gate against this baseline file")
	writeBaseline := flag.String("write-baseline", "", "measure the gate family and write a baseline file")
	gateOut := flag.String("gate-out", "", "with -gate: also write the current measurements to this file")
	compareOut := flag.String("compare-out", "", "with -gate: write the full baseline-vs-current comparison (per-benchmark ratios, machine scale, verdict) as JSON")
	gateRuns := flag.Int("gate-runs", 5, "gate runs per benchmark (the fastest run is compared)")
	gateTol := flag.Float64("gate-tol", 0.25, "allowed fractional ns/op regression before the gate fails")
	flag.Parse()
	bench.Parallelism = *parallel

	if *gate != "" || *writeBaseline != "" {
		os.Exit(runGate(bench.NewCorpus(), *gate, *writeBaseline, *gateOut, *compareOut, *gateRuns, *gateTol))
	}

	sizes, err := parseFloats(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(2)
	}
	workers, err := parseInts(*workersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(2)
	}
	clients, err := parseInts(*clientsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	c := bench.NewCorpus()
	runs := map[string]func() bench.Table{
		"table1":   func() bench.Table { return bench.Table1(c, sizes) },
		"fig3":     func() bench.Table { return bench.Fig3(c, sizes) },
		"fig11a":   func() bench.Table { return bench.Fig11a(c, sizes) },
		"fig11b":   func() bench.Table { return bench.Fig11b(c, sizes) },
		"fig11c":   func() bench.Table { return bench.Fig11c(c, sizes) },
		"fig11d":   func() bench.Table { return bench.Fig11d(c, sizes) },
		"fig11e":   func() bench.Table { return bench.Fig11e(c, sizes) },
		"fig11f":   func() bench.Table { return bench.Fig11f(c, sizes) },
		"window":   func() bench.Table { return bench.Window(c, sizes) },
		"frag":     func() bench.Table { return bench.Fragmentation(c, sizes) },
		"index":    func() bench.Table { return bench.IndexPushdown(c, sizes) },
		"value":    func() bench.Table { return bench.ValuePushdown(c, sizes) },
		"order":    func() bench.Table { return bench.Ordering(c, sizes) },
		"parallel": func() bench.Table { return bench.Parallel(c, *parSize, workers) },
		"copyscan": func() bench.Table { return bench.CopyVsScan(c, sizes) },
		"mpmgjn":   func() bench.Table { return bench.MPMGJN(c, sizes) },
		"storage":  func() bench.Table { return bench.Storage(c, sizes) },
		"server":   func() bench.Table { return bench.ServerThroughput(c, *parSize, clients) },
		"stream":   func() bench.Table { return bench.Stream(c, sizes) },
		"share":    func() bench.Table { return bench.Share(c, *parSize, clients) },
	}
	order := []string{"table1", "fig3", "fig11a", "fig11b", "fig11c", "fig11d",
		"fig11e", "fig11f", "window", "frag", "index", "value", "order", "parallel", "copyscan", "mpmgjn", "storage", "server", "stream", "share"}

	emitJSON := func(tables []bench.Table) {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			os.Exit(1)
		}
	}

	if *exp == "all" {
		if *jsonOut {
			tables := make([]bench.Table, 0, len(order))
			for _, id := range order {
				tables = append(tables, runs[id]())
			}
			emitJSON(tables)
			return
		}
		// Text mode streams each table as its experiment completes — a
		// full sweep runs for minutes and partial output is valuable.
		for _, id := range order {
			fmt.Fprintln(w, runs[id]().Format())
		}
		return
	}
	run, ok := runs[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "benchrun: unknown experiment %q (known: %s, all)\n",
			*exp, strings.Join(order, ", "))
		os.Exit(2)
	}
	if *jsonOut {
		emitJSON([]bench.Table{run()})
		return
	}
	fmt.Fprintln(w, run().Format())
}
