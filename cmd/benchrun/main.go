// Command benchrun regenerates every table and figure of the staircase
// join paper's evaluation (see DESIGN.md for the experiment index).
//
// Usage:
//
//	benchrun [-exp all|table1|fig3|fig11a|fig11b|fig11c|fig11d|fig11e|fig11f|window|frag|parallel|copyscan|mpmgjn]
//	         [-sizes 0.5,1,2,4] [-parallel-size 4] [-workers 1,2,4,8] [-parallel N] [-out file]
//
// -parallel N runs the query-evaluation experiments (fig11b/e/f) with N
// partition-parallel staircase-join workers (-1 = GOMAXPROCS); the
// dedicated "parallel" experiment sweeps -workers explicitly.
//
// Sizes are megabyte equivalents of the XMark-substitute generator; the
// paper sweeps 1.1–1111 MB. Larger sizes reproduce the same shapes with
// more headroom: try -sizes 1,4,16,64 on a machine with a few GB of RAM.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"staircase/internal/bench"
)

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %w", part, err)
		}
		out = append(out, f)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad worker count %q: %w", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	sizesFlag := flag.String("sizes", "0.5,1,2,4", "document sizes in MB equivalents")
	parSize := flag.Float64("parallel-size", 4, "document size for the parallel experiment")
	workersFlag := flag.String("workers", "1,2,4,8", "worker counts for the parallel experiment")
	parallel := flag.Int("parallel", 0, "staircase-join workers for query experiments: 0/1 = serial, N > 1 = up to N workers, -1 = GOMAXPROCS")
	out := flag.String("out", "", "also write output to this file")
	flag.Parse()
	bench.Parallelism = *parallel

	sizes, err := parseFloats(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(2)
	}
	workers, err := parseInts(*workersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	c := bench.NewCorpus()
	runs := map[string]func() bench.Table{
		"table1":   func() bench.Table { return bench.Table1(c, sizes) },
		"fig3":     func() bench.Table { return bench.Fig3(c, sizes) },
		"fig11a":   func() bench.Table { return bench.Fig11a(c, sizes) },
		"fig11b":   func() bench.Table { return bench.Fig11b(c, sizes) },
		"fig11c":   func() bench.Table { return bench.Fig11c(c, sizes) },
		"fig11d":   func() bench.Table { return bench.Fig11d(c, sizes) },
		"fig11e":   func() bench.Table { return bench.Fig11e(c, sizes) },
		"fig11f":   func() bench.Table { return bench.Fig11f(c, sizes) },
		"window":   func() bench.Table { return bench.Window(c, sizes) },
		"frag":     func() bench.Table { return bench.Fragmentation(c, sizes) },
		"parallel": func() bench.Table { return bench.Parallel(c, *parSize, workers) },
		"copyscan": func() bench.Table { return bench.CopyVsScan(c, sizes) },
		"mpmgjn":   func() bench.Table { return bench.MPMGJN(c, sizes) },
		"storage":  func() bench.Table { return bench.Storage(c, sizes) },
	}
	order := []string{"table1", "fig3", "fig11a", "fig11b", "fig11c", "fig11d",
		"fig11e", "fig11f", "window", "frag", "parallel", "copyscan", "mpmgjn", "storage"}

	if *exp == "all" {
		for _, id := range order {
			fmt.Fprintln(w, runs[id]().Format())
		}
		return
	}
	run, ok := runs[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "benchrun: unknown experiment %q (known: %s, all)\n",
			*exp, strings.Join(order, ", "))
		os.Exit(2)
	}
	fmt.Fprintln(w, run().Format())
}
