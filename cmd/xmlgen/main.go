// Command xmlgen generates XMark-style auction documents, standing in
// for the XMLgen generator the paper's evaluation uses ("For a fixed
// DTD, this generator produces instances of controllable size").
//
// Usage:
//
//	xmlgen -size 10 -seed 42 -o auctions.xml
//	xmlgen -size 1 | head
//	xmlgen -size 10 -stats        # don't write XML, print structure stats
package main

import (
	"flag"
	"fmt"
	"os"

	"staircase"
)

func main() {
	size := flag.Float64("size", 1.0, "approximate document size in MB")
	seed := flag.Int64("seed", 42, "generator seed (same seed = same document)")
	out := flag.String("o", "", "output file (default stdout)")
	stats := flag.Bool("stats", false, "print structural statistics instead of XML")
	flag.Parse()

	if *stats {
		d, err := staircase.GenerateXMark(*size, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmlgen:", err)
			os.Exit(1)
		}
		st := d.Stats()
		fmt.Printf("nodes:      %d (elements %d, attributes %d, text %d)\n",
			st.Nodes, st.Elements, st.Attributes, st.Texts)
		fmt.Printf("height:     %d, avg depth %.1f, max fanout %d\n",
			st.Height, st.AvgLevel, st.MaxFanout)
		fmt.Printf("tags:       %d distinct\n", st.DistinctTags)
		fmt.Printf("encoded:    %d bytes (%.1f bytes/node)\n",
			d.EncodedBytes(), float64(d.EncodedBytes())/float64(st.Nodes))
		fmt.Println("top tags:")
		for _, tc := range st.TopTags(8) {
			fmt.Printf("  %8d  %s\n", tc.Count, tc.Tag)
		}
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmlgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := staircase.WriteXMark(w, *size, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "xmlgen:", err)
		os.Exit(1)
	}
}
