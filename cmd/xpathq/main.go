// Command xpathq loads an XML document into the XPath accelerator
// encoding and evaluates XPath queries against it with a selectable
// axis-step strategy — a tiny interactive face for the public
// staircase package.
//
// Usage:
//
//	xpathq -f doc.xml '//person[profile/education]/name'
//	xpathq -f doc.xml -strategy sql -stats '/descendant::increase/ancestor::bidder'
//	xpathq -f doc.xml -parallel -1 -stats '/descendant::open_auction/descendant::bidder'
//	xpathq -f doc.xml -explain '//bidder[descendant::increase]'
//	xpathq -f doc.xml -explain -json '//bidder'
//	xmlgen -size 1 | xpathq '/descendant::profile/descendant::education'
//
// Output: one line per result node with pre rank, kind, name and (for
// small results) the serialized node. -explain prints the optimized
// plan tree instead (text, or JSON with -json).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"staircase"
)

// strategies maps flag values to engine strategies.
var strategies = map[string]staircase.Strategy{
	"staircase":        staircase.Staircase,
	"staircase-skip":   staircase.StaircaseSkip,
	"staircase-noskip": staircase.StaircaseNoSkip,
	"naive":            staircase.NaiveStrategy,
	"sql":              staircase.SQLStrategy,
	"sql-window":       staircase.SQLWindowStrategy,
}

var pushdowns = map[string]staircase.PushdownMode{
	"auto":   staircase.PushAuto,
	"always": staircase.PushAlways,
	"never":  staircase.PushNever,
}

func main() {
	file := flag.String("f", "", "XML or SCJ binary file (default: stdin; format sniffed)")
	strategy := flag.String("strategy", "staircase", "axis-step strategy: staircase, staircase-skip, staircase-noskip, naive, sql, sql-window")
	pushdown := flag.String("pushdown", "auto", "name-test pushdown: auto, always, never")
	stats := flag.Bool("stats", false, "print per-step statistics")
	explain := flag.Bool("explain", false, "print the optimized physical plan instead of results")
	asJSON := flag.Bool("json", false, "with -explain: print the plan tree as JSON")
	limit := flag.Int("limit", 20, "max result nodes to print (0 = all)")
	parallel := flag.Int("parallel", 0, "staircase-join workers: 0/1 = serial, N > 1 = up to N workers, -1 = GOMAXPROCS")
	morsels := flag.Int("morsel-workers", 0, "morsel workers inside each streaming cursor: 0/1 = serial, N > 1 = up to N workers, -1 = GOMAXPROCS (output identical to serial)")
	useIndex := flag.Bool("index", true, "use the shared tag/kind index for name-test pushdown (false: per-step column rescan; results identical)")
	useVIndex := flag.Bool("value-index", true, "use the value index for comparison and contains() predicates (false: per-node re-evaluation; results identical)")
	noReorder := flag.Bool("no-reorder", false, "disable greedy filter ordering and adaptive re-planning (source-order predicate evaluation; results identical)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: xpathq [-f doc.xml] [flags] 'xpath-query'")
		os.Exit(2)
	}
	query := flag.Arg(0)

	strat, ok := strategies[*strategy]
	if !ok {
		fmt.Fprintf(os.Stderr, "xpathq: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}
	push, ok := pushdowns[*pushdown]
	if !ok {
		fmt.Fprintf(os.Stderr, "xpathq: unknown pushdown mode %q\n", *pushdown)
		os.Exit(2)
	}

	var d *staircase.Document
	var err error
	if *file != "" {
		d, err = staircase.Open(*file)
	} else {
		d, err = staircase.Load(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xpathq:", err)
		os.Exit(1)
	}

	opts := &staircase.Options{
		Strategy:      strat,
		Pushdown:      push,
		Parallelism:   *parallel,
		MorselWorkers: *morsels,
		NoIndex:       !*useIndex,
		NoValueIndex:  !*useVIndex,
		NoReorder:     *noReorder,
	}
	if *explain {
		var out []byte
		if *asJSON {
			out, err = d.ExplainJSON(query, opts)
			out = append(out, '\n')
		} else {
			var text string
			text, err = d.Explain(query, opts)
			out = []byte(text)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "xpathq:", err)
			os.Exit(1)
		}
		os.Stdout.Write(out)
		return
	}
	// Morsel workers only exist in the streaming executor, so the flag
	// routes evaluation through a full cursor drain (same bytes out).
	var res *staircase.Result
	if *morsels > 1 || *morsels < 0 {
		var pl *staircase.Plan
		pl, err = d.Prepare(query, opts)
		if err == nil {
			res, err = pl.RunLimit(math.MaxInt)
		}
	} else {
		res, err = d.Query(query, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xpathq:", err)
		os.Exit(1)
	}

	fmt.Printf("%d node(s)\n", len(res.Nodes))
	shown := len(res.Nodes)
	if *limit > 0 && shown > *limit {
		shown = *limit
	}
	for _, v := range res.Nodes[:shown] {
		line := fmt.Sprintf("pre=%-8d %-22s %s", v, d.Kind(v), d.Name(v))
		if d.Kind(v) != staircase.ElemNode || d.SubtreeSize(v) < 16 {
			if x := d.XML(v); len(x) < 120 {
				line += "  " + x
			}
		}
		fmt.Println(line)
	}
	if shown < len(res.Nodes) {
		fmt.Printf("... %d more\n", len(res.Nodes)-shown)
	}

	if *stats {
		fmt.Println("\nper-step statistics:")
		for i, s := range res.Steps {
			fmt.Printf("  step %d: %-40s %6d -> %-6d  %8.3fms  pushed=%v indexed=%v\n",
				i+1, s.Step, s.InputSize, s.OutputSize,
				float64(s.Duration.Microseconds())/1000, s.Pushed, s.Indexed)
			if s.Core.Scanned > 0 {
				fmt.Printf("          staircase: pruned %d->%d, scanned %d (copied %d, compared %d), skipped %d\n",
					s.Core.ContextSize, s.Core.PrunedSize, s.Core.Scanned,
					s.Core.Copied, s.Core.Compared, s.Core.Skipped)
				if s.Core.Workers > 1 {
					fmt.Printf("          parallel: %d workers\n", s.Core.Workers)
				}
			}
			if s.Naive.Produced > 0 {
				fmt.Printf("          naive: produced %d, duplicates %d\n",
					s.Naive.Produced, s.Naive.Duplicates)
			}
		}
	}
}
