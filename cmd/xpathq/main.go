// Command xpathq loads an XML document into the XPath accelerator
// encoding and evaluates XPath queries against it with a selectable
// axis-step strategy — a tiny interactive face for the library.
//
// Usage:
//
//	xpathq -f doc.xml '//person[profile/education]/name'
//	xpathq -f doc.xml -strategy sql -stats '/descendant::increase/ancestor::bidder'
//	xpathq -f doc.xml -parallel -1 -stats '/descendant::open_auction/descendant::bidder'
//	xmlgen -size 1 | xpathq '/descendant::profile/descendant::education'
//
// Output: one line per result node with pre rank, kind, name and (for
// small results) the serialized node.
package main

import (
	"flag"
	"fmt"
	"os"

	"staircase/internal/doc"
	"staircase/internal/engine"
)

// strategies maps flag values to engine strategies.
var strategies = map[string]engine.Strategy{
	"staircase":        engine.Staircase,
	"staircase-skip":   engine.StaircaseSkip,
	"staircase-noskip": engine.StaircaseNoSkip,
	"naive":            engine.Naive,
	"sql":              engine.SQL,
	"sql-window":       engine.SQLWindow,
}

var pushdowns = map[string]engine.Pushdown{
	"auto":   engine.PushAuto,
	"always": engine.PushAlways,
	"never":  engine.PushNever,
}

func main() {
	file := flag.String("f", "", "XML file (default: stdin)")
	strategy := flag.String("strategy", "staircase", "axis-step strategy: staircase, staircase-skip, staircase-noskip, naive, sql, sql-window")
	pushdown := flag.String("pushdown", "auto", "name-test pushdown: auto, always, never")
	stats := flag.Bool("stats", false, "print per-step statistics")
	explain := flag.Bool("explain", false, "print the physical plan instead of results")
	limit := flag.Int("limit", 20, "max result nodes to print (0 = all)")
	parallel := flag.Int("parallel", 0, "staircase-join workers: 0/1 = serial, N > 1 = up to N workers, -1 = GOMAXPROCS")
	useIndex := flag.Bool("index", true, "use the shared tag/kind index for name-test pushdown (false: per-step column rescan; results identical)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: xpathq [-f doc.xml] [flags] 'xpath-query'")
		os.Exit(2)
	}
	query := flag.Arg(0)

	strat, ok := strategies[*strategy]
	if !ok {
		fmt.Fprintf(os.Stderr, "xpathq: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}
	push, ok := pushdowns[*pushdown]
	if !ok {
		fmt.Fprintf(os.Stderr, "xpathq: unknown pushdown mode %q\n", *pushdown)
		os.Exit(2)
	}

	in := os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xpathq:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	d, err := doc.Shred(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xpathq:", err)
		os.Exit(1)
	}

	e := engine.New(d)
	eopts := &engine.Options{Strategy: strat, Pushdown: push, Parallelism: *parallel, NoIndex: !*useIndex}
	if *explain {
		out, err := e.Explain(query, eopts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xpathq:", err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}
	res, err := e.EvalString(query, eopts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xpathq:", err)
		os.Exit(1)
	}

	fmt.Printf("%d node(s)\n", len(res.Nodes))
	shown := len(res.Nodes)
	if *limit > 0 && shown > *limit {
		shown = *limit
	}
	for _, v := range res.Nodes[:shown] {
		line := fmt.Sprintf("pre=%-8d %-22s %s", v, d.KindOf(v), d.Name(v))
		if d.KindOf(v) != doc.Elem || d.SubtreeSize(v) < 16 {
			if x := d.XML(v); len(x) < 120 {
				line += "  " + x
			}
		}
		fmt.Println(line)
	}
	if shown < len(res.Nodes) {
		fmt.Printf("... %d more\n", len(res.Nodes)-shown)
	}

	if *stats {
		fmt.Println("\nper-step statistics:")
		for i, s := range res.Steps {
			fmt.Printf("  step %d: %-40s %6d -> %-6d  %8.3fms  pushed=%v indexed=%v\n",
				i+1, s.Step, s.InputSize, s.OutputSize,
				float64(s.Duration.Microseconds())/1000, s.Pushed, s.Indexed)
			if s.Core.Scanned > 0 {
				fmt.Printf("          staircase: pruned %d->%d, scanned %d (copied %d, compared %d), skipped %d\n",
					s.Core.ContextSize, s.Core.PrunedSize, s.Core.Scanned,
					s.Core.Copied, s.Core.Compared, s.Core.Skipped)
				if s.Core.Workers > 1 {
					fmt.Printf("          parallel: %d workers\n", s.Core.Workers)
				}
			}
			if s.Naive.Produced > 0 {
				fmt.Printf("          naive: produced %d, duplicates %d\n",
					s.Naive.Produced, s.Naive.Duplicates)
			}
		}
	}
}
