package bench

import (
	"testing"

	"staircase/internal/engine"
)

// TestValuePushdownSpeedup is the PR's acceptance bar: on the 0.5 MB
// smoke document (values retained), the warm value-index fragment
// semijoin must run the numeric range query at least 5x faster than
// per-node re-evaluation (Options.NoValueIndex), both through prepared
// plans (the server's steady state). The real ratio is far larger —
// the rescan runs the predicate sub-plan once per candidate auction,
// the warm plan binary-searches its memoised pre-sorted fragment — and
// 5x leaves room for noisy CI runners and the race detector.
func TestValuePushdownSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement in -short mode")
	}
	c := NewCorpus()
	d := c.ValueDoc(smokeSizeMB)
	e := engine.New(d)
	d.TagIndex()
	d.ValueIndex() // warm

	prep := func(opts *engine.Options) *engine.Prepared {
		p, err := e.PrepareString(QValueRange, opts)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	run := func(p *engine.Prepared) int {
		r, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return len(r.Nodes)
	}
	warmP := prep(nil)
	rescanP := prep(&engine.Options{NoValueIndex: true})
	n := run(warmP)
	if n == 0 {
		t.Fatalf("%s matched nothing on the value corpus", QValueRange)
	}
	if n != run(rescanP) {
		t.Fatal("warm and rescan evaluation disagree")
	}
	rescan := timeIt(7, func() { run(rescanP) })
	warm := timeIt(7, func() { run(warmP) })
	ratio := float64(rescan.Nanoseconds()) / float64(warm.Nanoseconds())
	t.Logf("rescan %v, warm %v, speedup %.1fx", rescan, warm, ratio)
	if ratio < 5 {
		t.Fatalf("warm value pushdown only %.1fx faster than rescan, want >= 5x", ratio)
	}
}
