package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestCheckRegression(t *testing.T) {
	baseline := []BenchPoint{
		{Name: "A", NsPerOp: 1000}, {Name: "B", NsPerOp: 1000},
		{Name: "C", NsPerOp: 1000}, {Name: "D", NsPerOp: 1000},
		{Name: "E", NsPerOp: 1000}, {Name: "F", NsPerOp: 1000},
	}
	current := []BenchPoint{
		{Name: "A", NsPerOp: 1050}, // +5%: fine
		{Name: "B", NsPerOp: 1400}, // +40%: regression
		{Name: "C", NsPerOp: 1000}, {Name: "D", NsPerOp: 990},
		{Name: "E", NsPerOp: 1010}, {Name: "F", NsPerOp: 1020},
		{Name: "New", NsPerOp: 999}, // not in baseline: ignored
	}
	failures := CheckRegression(baseline, current, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "B:") {
		t.Fatalf("want exactly one failure for B, got %v", failures)
	}

	// A uniformly slower machine shifts the whole family: no failures.
	slower := make([]BenchPoint, len(baseline))
	for i, b := range baseline {
		slower[i] = BenchPoint{Name: b.Name, NsPerOp: b.NsPerOp * 1.6}
	}
	if f := CheckRegression(baseline, slower, 0.25); len(f) != 0 {
		t.Fatalf("uniform machine slowdown flagged as regression: %v", f)
	}
	// ...but one benchmark regressing on top of that still sticks out.
	slower[1].NsPerOp = baseline[1].NsPerOp * 1.6 * 1.5
	if f := CheckRegression(baseline, slower, 0.25); len(f) != 1 || !strings.Contains(f[0], "B:") {
		t.Fatalf("regression on slow machine not isolated: %v", f)
	}

	// A uniformly faster machine must not flag an unchanged benchmark.
	faster := make([]BenchPoint, len(baseline))
	for i, b := range baseline {
		faster[i] = BenchPoint{Name: b.Name, NsPerOp: b.NsPerOp * 0.5}
	}
	faster[0].NsPerOp = baseline[0].NsPerOp // A unchanged while family sped up
	if f := CheckRegression(baseline, faster, 0.25); len(f) != 0 {
		t.Fatalf("faster machine produced false regressions: %v", f)
	}

	if f := CheckRegression(baseline, current[:3], 10.0); len(f) != 3 {
		t.Fatalf("missing benchmarks not reported: %v", f)
	}
	if f := CheckRegression(nil, current, 0.25); len(f) != 0 {
		t.Fatalf("empty baseline produced failures: %v", f)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	points := []BenchPoint{{Name: "X", NsPerOp: 123.5}, {Name: "Y", NsPerOp: 9}}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, points, 3); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Family != "staircase-join-smoke" || b.Runs != 3 || len(b.Points) != 2 {
		t.Fatalf("round-trip: %+v", b)
	}
	if b.Points[0] != points[0] || b.Points[1] != points[1] {
		t.Fatalf("points changed: %+v", b.Points)
	}
	if _, err := ReadBaseline(strings.NewReader(`{"family":"x","points":[]}`)); err == nil {
		t.Fatal("empty baseline accepted")
	}
}

func TestSmokeFamilyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark measurement in -short mode")
	}
	// One b.N=1-scale run per family member just to prove the gate's
	// benchmark bodies execute; the real measurement happens in CI.
	c := NewCorpus()
	fam := smokeFamily(c)
	if len(fam) != 22 {
		t.Fatalf("family has %d members, want 22", len(fam))
	}
	for _, bm := range fam {
		bm.fn(&testing.B{N: 1})
	}
}

func TestCompareRecordsTrajectory(t *testing.T) {
	base := Baseline{
		Family: "f", SizeMB: 0.5, Runs: 5,
		Points: []BenchPoint{
			{Name: "A", NsPerOp: 100}, {Name: "B", NsPerOp: 100},
			{Name: "C", NsPerOp: 100}, {Name: "Gone", NsPerOp: 50},
		},
	}
	current := []BenchPoint{
		{Name: "A", NsPerOp: 100}, // unchanged
		{Name: "B", NsPerOp: 200}, // regressed 2x (sticks out of the family median)
		{Name: "C", NsPerOp: 100}, // unchanged
		{Name: "New", NsPerOp: 10},
	}
	cmp := Compare(base, current, 0.25)
	if cmp.Passed {
		t.Fatal("comparison with a regression and a missing benchmark must fail")
	}
	if cmp.Family != "f" || cmp.SizeMB != 0.5 || cmp.Runs != 5 || cmp.Tolerance != 0.25 {
		t.Fatalf("metadata not carried: %+v", cmp)
	}
	byName := map[string]ComparisonPoint{}
	for _, p := range cmp.Points {
		byName[p.Name] = p
	}
	if p := byName["A"]; p.Regressed || p.Ratio != 1 {
		t.Fatalf("A misjudged: %+v", p)
	}
	if p := byName["B"]; !p.Regressed || p.Ratio != 2 {
		t.Fatalf("B misjudged: %+v", p)
	}
	if p := byName["Gone"]; !p.Missing {
		t.Fatalf("Gone misjudged: %+v", p)
	}
	if p := byName["New"]; !p.New || p.CurrentNs != 10 {
		t.Fatalf("New misjudged: %+v", p)
	}
	// Compare and CheckRegression agree by construction.
	if got := CheckRegression(base.Points, current, 0.25); len(got) != len(cmp.Failures) {
		t.Fatalf("CheckRegression diverged: %v vs %v", got, cmp.Failures)
	}
}
