package bench

import (
	"strings"
	"testing"
	"time"
)

// tinySizes keeps unit tests fast; the experiments themselves run at
// larger scale via cmd/benchrun and the repo-level benchmarks.
var tinySizes = []float64{0.05, 0.1}

func TestAllExperimentsRunAndRender(t *testing.T) {
	c := NewCorpus()
	tables := []Table{
		Table1(c, tinySizes),
		Fig3(c, tinySizes),
		Fig11a(c, tinySizes),
		Fig11b(c, tinySizes),
		Fig11c(c, tinySizes),
		Fig11d(c, tinySizes),
		Fig11e(c, tinySizes),
		Fig11f(c, tinySizes),
		Window(c, tinySizes),
		Fragmentation(c, tinySizes),
		Parallel(c, 0.1, []int{1, 2}),
		CopyVsScan(c, tinySizes),
		MPMGJN(c, tinySizes),
		Storage(c, tinySizes),
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("%s: no rows", tb.ID)
		}
		out := tb.Format()
		if !strings.Contains(out, tb.ID) || !strings.Contains(out, tb.Header[0]) {
			t.Errorf("%s: bad rendering:\n%s", tb.ID, out)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Errorf("%s: row width %d != header width %d", tb.ID, len(row), len(tb.Header))
			}
		}
	}
}

func TestCorpusCaches(t *testing.T) {
	c := NewCorpus()
	d1 := c.Doc(0.05)
	d2 := c.Doc(0.05)
	if d1 != d2 {
		t.Fatal("corpus did not cache")
	}
}

func TestFig11aShowsDuplicates(t *testing.T) {
	c := NewCorpus()
	tb := Fig11a(c, []float64{0.2})
	// naive-produced > staircase: duplicates exist on Q2 (sibling
	// bidders share ancestor paths).
	row := tb.Rows[0]
	if row[2] <= row[3] && len(row[2]) <= len(row[3]) {
		t.Fatalf("expected naive-produced > staircase: %v", row)
	}
}

func TestFig11cSkipBeatsNoSkip(t *testing.T) {
	c := NewCorpus()
	tb := Fig11c(c, []float64{0.2})
	row := tb.Rows[0]
	noskip, skip := row[1], row[2]
	if len(skip) > len(noskip) || (len(skip) == len(noskip) && skip > noskip) {
		t.Fatalf("skip (%s) should scan fewer nodes than no-skip (%s)", skip, noskip)
	}
}

func TestTimeItReturnsPositive(t *testing.T) {
	d := timeIt(3, func() { time.Sleep(time.Microsecond) })
	if d <= 0 {
		t.Fatal("timeIt returned non-positive duration")
	}
	if timeIt(0, func() {}) < 0 {
		t.Fatal("timeIt with 0 reps broken")
	}
}
